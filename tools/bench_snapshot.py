#!/usr/bin/env python3
"""Record a comparable performance snapshot of the sweep driver.

Runs a pinned set of scenario groups through ``icsim_sweep --metrics`` and
distills the host-side numbers (wall ms, events/sec) plus the determinism
digest of the aggregated report into ``BENCH_<n>.json``.  Later PRs run the
same script with the next snapshot number; because the group set, jobs
count and ICSIM_FAST setting are pinned here, the series stays comparable.

Usage:
    tools/bench_snapshot.py --snapshot 7 [--sweep build/bench/icsim_sweep]
                            [--out BENCH_7.json] [--runs 3]

The snapshot records the *best* wall time of ``--runs`` runs (minimum is
the standard noise reducer for wall-clock microbenchmarks); simulated
results are identical across runs by the determinism contract and are
checked to be so.
"""

import argparse
import hashlib
import json
import os
import subprocess
import sys

# Pinned benchmark surface: microbenchmarks, one app study per app family,
# and the replay group.  Append only — never remove or reorder, or the
# series breaks.
SWEEP_GROUPS = [
    "fig1_latency",
    "fig1_bandwidth",
    "fig2_ljs",
    "fig4_sweep3d",
    "fig6_npb_cg",
    "replay",
    "traffic",
    "fig8_simulated",
]
JOBS = 1  # single-threaded: measures the simulator, not the thread pool


def run_once(sweep, groups, env):
    cmd = [sweep, f"-j{JOBS}", "--quiet", "--json", "-", "--metrics",
           "/dev/null"] + groups
    proc = subprocess.run(cmd, capture_output=True, text=True, env=env,
                          check=True)
    report = json.loads(proc.stdout)
    # Wall ms is in the stderr trailer:
    #   [sweep] 36 points, 0 errors, -j1, 18 ms wall, 23112 events (...)
    wall_ms = None
    for line in proc.stderr.splitlines():
        if line.startswith("[sweep]") and " ms wall" in line:
            toks = line.split()
            wall_ms = float(toks[toks.index("ms") - 1])
    events = 0
    points = 0
    digest = hashlib.sha256()
    for group in report["groups"]:
        for point in group["points"]:
            events += point["events"]
            points += 1
            digest.update(point["digest"].encode())
    return {
        "wall_ms": wall_ms,
        "events": events,
        "points": points,
        "digest": digest.hexdigest()[:16],
    }


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--snapshot", type=int, required=True,
                    help="snapshot number n for BENCH_<n>.json")
    ap.add_argument("--sweep", default="build/bench/icsim_sweep")
    ap.add_argument("--out", default=None)
    ap.add_argument("--runs", type=int, default=3)
    args = ap.parse_args()

    env = dict(os.environ)
    env["ICSIM_FAST"] = "1"  # pinned: the fast problem sizes
    env.pop("ICSIM_CHECK", None)  # invariant auditing would skew wall time
    # Pin the parallel engine's worker count to the scenarios' configured
    # value (simulated results are thread-count invariant, wall time is not).
    env.pop("ICSIM_PAR_THREADS", None)

    runs = [run_once(args.sweep, SWEEP_GROUPS, env)
            for _ in range(args.runs)]
    digests = {r["digest"] for r in runs}
    if len(digests) != 1:
        sys.exit(f"bench_snapshot: nondeterministic sweep digests: {digests}")
    best = min(runs, key=lambda r: r["wall_ms"])

    snapshot = {
        "snapshot": args.snapshot,
        "sweep_groups": SWEEP_GROUPS,
        "jobs": JOBS,
        "fast_mode": True,
        "runs": args.runs,
        "points": best["points"],
        "events_total": best["events"],
        "wall_ms_best": best["wall_ms"],
        "events_per_sec": round(best["events"] / best["wall_ms"] * 1e3)
        if best["wall_ms"] else None,
        "digest": best["digest"],
    }
    out = args.out or f"BENCH_{args.snapshot}.json"
    with open(out, "w") as f:
        json.dump(snapshot, f, indent=2)
        f.write("\n")
    print(f"wrote {out}: {snapshot['points']} points, "
          f"{snapshot['wall_ms_best']} ms, "
          f"{snapshot['events_per_sec']} events/s")


if __name__ == "__main__":
    main()
