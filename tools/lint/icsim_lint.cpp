// icsim_lint — determinism lint for the icsim discrete-event simulator.
//
// The repository's reproduction claims (PAPER.md Figs. 1-14) rest on runs
// being bit-reproducible for a fixed seed.  This tool enforces, over the
// token stream of src/, the coding rules that keep the DES deterministic:
//
//   wall-clock           no std::chrono clocks, time(), rand(),
//                        std::random_device, gettimeofday, ... outside
//                        sim/rng (every stochastic draw must flow from an
//                        explicitly seeded sim::Rng);
//   unordered-iteration  no range-for / .begin() traversal of a variable
//                        declared as unordered_map/unordered_set — hash
//                        iteration order is implementation-defined, so
//                        event emission ordered by it is nondeterministic;
//   raw-time-param       no `double`/`float` function parameters with
//                        time/bandwidth-ish names in sim-facing code —
//                        durations must be sim::Time, rates sim::Bandwidth
//                        (the unit-safe types round identically everywhere);
//   nodiscard-time       declarations returning sim::Time / sim::Bandwidth
//                        must be [[nodiscard]] — a silently dropped Time is
//                        how timing bugs (uncharged costs) slip in.
//
// Diagnostics print as `file:line: rule: message` and a nonzero exit means
// at least one violation.  A finding is suppressed by a comment on the same
// or the preceding line:
//
//   // icsim-lint: allow(<rule>)      (or allow(*) for any rule)
//
// Deliberately libclang-free: a lightweight lexer (comments, string/char
// literals, raw strings, preprocessor lines, identifiers, punctuation) is
// enough for these rules and keeps the tool a single-file, dependency-free
// binary that builds everywhere the simulator builds.

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

namespace fs = std::filesystem;

namespace {

// ---------------------------------------------------------------------------
// Token stream

enum class TokKind { identifier, number, string, punct };

struct Token {
  TokKind kind;
  std::string text;
  int line;
};

struct Suppression {
  int line;
  std::string rule;  // "*" allows every rule
};

struct LexedFile {
  std::vector<Token> tokens;
  std::vector<Suppression> suppressions;
};

bool ident_start(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_';
}
bool ident_char(char c) { return ident_start(c) || (c >= '0' && c <= '9'); }

/// Record `// icsim-lint: allow(rule1, rule2)` comments.
void scan_comment(const std::string& text, int line, LexedFile& out) {
  const std::string marker = "icsim-lint:";
  auto pos = text.find(marker);
  if (pos == std::string::npos) return;
  pos = text.find("allow", pos);
  if (pos == std::string::npos) return;
  const auto open = text.find('(', pos);
  const auto close = text.find(')', open == std::string::npos ? pos : open);
  if (open == std::string::npos || close == std::string::npos) return;
  std::string inner = text.substr(open + 1, close - open - 1);
  std::string rule;
  std::istringstream ss(inner);
  while (std::getline(ss, rule, ',')) {
    rule.erase(std::remove_if(rule.begin(), rule.end(),
                              [](char c) { return c == ' ' || c == '\t'; }),
               rule.end());
    if (!rule.empty()) out.suppressions.push_back({line, rule});
  }
}

/// Lex one source file.  Comments feed the suppression table; string and
/// char literals become opaque `string` tokens; preprocessor lines are
/// skipped wholesale (includes and macros are not rule targets).
LexedFile lex(const std::string& src) {
  LexedFile out;
  int line = 1;
  std::size_t i = 0;
  const std::size_t n = src.size();
  bool at_line_start = true;

  auto peek = [&](std::size_t k) -> char { return i + k < n ? src[i + k] : '\0'; };

  while (i < n) {
    const char c = src[i];
    if (c == '\n') {
      ++line;
      ++i;
      at_line_start = true;
      continue;
    }
    if (c == ' ' || c == '\t' || c == '\r' || c == '\v' || c == '\f') {
      ++i;
      continue;
    }
    if (at_line_start && c == '#') {  // preprocessor line (with continuations)
      while (i < n && src[i] != '\n') {
        if (src[i] == '\\' && peek(1) == '\n') {
          ++line;
          i += 2;
          continue;
        }
        ++i;
      }
      continue;
    }
    at_line_start = false;
    if (c == '/' && peek(1) == '/') {
      const std::size_t start = i;
      while (i < n && src[i] != '\n') ++i;
      scan_comment(src.substr(start, i - start), line, out);
      continue;
    }
    if (c == '/' && peek(1) == '*') {
      const int start_line = line;
      const std::size_t start = i;
      i += 2;
      while (i < n && !(src[i] == '*' && peek(1) == '/')) {
        if (src[i] == '\n') ++line;
        ++i;
      }
      i = i < n ? i + 2 : n;
      scan_comment(src.substr(start, i - start), start_line, out);
      continue;
    }
    if (c == '"' || c == '\'') {
      if (c == '"' && i > 0 && src[i - 1] == 'R') {  // raw string R"delim(...)delim"
        const auto open = src.find('(', i);
        if (open != std::string::npos) {
          std::string delim = ")";
          delim.append(src, i + 1, open - i - 1);
          delim += '"';
          const auto close = src.find(delim, open);
          const std::size_t end = close == std::string::npos ? n : close + delim.size();
          line += static_cast<int>(std::count(src.begin() + static_cast<long>(i),
                                              src.begin() + static_cast<long>(end), '\n'));
          i = end;
          out.tokens.push_back({TokKind::string, "\"\"", line});
          continue;
        }
      }
      const char quote = c;
      ++i;
      while (i < n && src[i] != quote) {
        if (src[i] == '\\') ++i;
        if (src[i] == '\n') ++line;
        ++i;
      }
      if (i < n) ++i;
      out.tokens.push_back({TokKind::string, quote == '"' ? "\"\"" : "''", line});
      continue;
    }
    if (ident_start(c)) {
      const std::size_t start = i;
      while (i < n && ident_char(src[i])) ++i;
      out.tokens.push_back({TokKind::identifier, src.substr(start, i - start), line});
      continue;
    }
    if (c >= '0' && c <= '9') {
      const std::size_t start = i;
      while (i < n && (ident_char(src[i]) || src[i] == '.' ||
                       ((src[i] == '+' || src[i] == '-') && i > start &&
                        (src[i - 1] == 'e' || src[i - 1] == 'E' ||
                         src[i - 1] == 'p' || src[i - 1] == 'P')))) {
        ++i;
      }
      out.tokens.push_back({TokKind::number, src.substr(start, i - start), line});
      continue;
    }
    // Punctuation; `::` is one token so qualified names are easy to walk.
    if (c == ':' && peek(1) == ':') {
      out.tokens.push_back({TokKind::punct, "::", line});
      i += 2;
      continue;
    }
    if (c == '-' && peek(1) == '>') {
      out.tokens.push_back({TokKind::punct, "->", line});
      i += 2;
      continue;
    }
    if (c == '[' && peek(1) == '[') {
      out.tokens.push_back({TokKind::punct, "[[", line});
      i += 2;
      continue;
    }
    if (c == ']' && peek(1) == ']') {
      out.tokens.push_back({TokKind::punct, "]]", line});
      i += 2;
      continue;
    }
    out.tokens.push_back({TokKind::punct, std::string(1, c), line});
    ++i;
  }
  return out;
}

// ---------------------------------------------------------------------------
// Diagnostics

struct Diagnostic {
  std::string file;
  int line;
  std::string rule;
  std::string message;
};

bool suppressed(const LexedFile& lf, int line, const std::string& rule) {
  for (const auto& s : lf.suppressions) {
    if ((s.line == line || s.line == line - 1) && (s.rule == "*" || s.rule == rule)) {
      return true;
    }
  }
  return false;
}

void report(std::vector<Diagnostic>& diags, const LexedFile& lf,
            const std::string& file, int line, const std::string& rule,
            const std::string& message) {
  if (suppressed(lf, line, rule)) return;
  diags.push_back({file, line, rule, message});
}

bool path_contains(const std::string& path, const char* needle) {
  return path.find(needle) != std::string::npos;
}

// ---------------------------------------------------------------------------
// Rule: wall-clock

const std::set<std::string> kClockFunctions = {
    "time",       "clock",         "rand",        "srand",
    "random",     "gettimeofday",  "clock_gettime", "timespec_get",
    "ftime",      "localtime",     "gmtime",
};
const std::set<std::string> kClockTypes = {
    "random_device", "system_clock", "high_resolution_clock", "steady_clock",
};

void rule_wall_clock(const LexedFile& lf, const std::string& file,
                     std::vector<Diagnostic>& diags) {
  // sim/rng is the one sanctioned randomness boundary.
  if (path_contains(file, "sim/rng")) return;
  const auto& t = lf.tokens;
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (t[i].kind != TokKind::identifier) continue;
    const bool member_access =
        i > 0 && (t[i - 1].text == "." || t[i - 1].text == "->");
    if (member_access) continue;  // obj.time() is a model method, not ::time
    if (kClockTypes.count(t[i].text) != 0) {
      report(diags, lf, file, t[i].line, "wall-clock",
             "'" + t[i].text +
                 "' is a nondeterministic entropy/clock source; derive all "
                 "randomness from a seeded sim::Rng (sim/rng.hpp)");
      continue;
    }
    if (kClockFunctions.count(t[i].text) != 0 && i + 1 < t.size() &&
        t[i + 1].text == "(") {
      report(diags, lf, file, t[i].line, "wall-clock",
             "call to '" + t[i].text +
                 "()' reads wall-clock/global-entropy state; simulated time "
                 "is Engine::now() and randomness is sim::Rng");
    }
  }
}

// ---------------------------------------------------------------------------
// Rule: unordered-iteration

const std::set<std::string> kUnorderedTypes = {
    "unordered_map", "unordered_set", "unordered_multimap", "unordered_multiset"};

/// Names of variables declared in this file with an unordered container type
/// (members, locals, and reference parameters all match the same shape:
/// `unordered_xxx < ... > [&*]* name`).
std::set<std::string> unordered_vars(const std::vector<Token>& t) {
  std::set<std::string> names;
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (t[i].kind != TokKind::identifier || kUnorderedTypes.count(t[i].text) == 0) {
      continue;
    }
    std::size_t j = i + 1;
    if (j >= t.size() || t[j].text != "<") continue;
    int depth = 0;
    for (; j < t.size(); ++j) {
      if (t[j].text == "<") ++depth;
      if (t[j].text == ">") {
        --depth;
        if (depth == 0) break;
      }
    }
    ++j;
    while (j < t.size() && (t[j].text == "&" || t[j].text == "*")) ++j;
    if (j < t.size() && t[j].kind == TokKind::identifier) {
      names.insert(t[j].text);
    }
  }
  return names;
}

void rule_unordered_iteration(const LexedFile& lf, const std::string& file,
                              const std::set<std::string>& header_vars,
                              std::vector<Diagnostic>& diags) {
  const auto& t = lf.tokens;
  std::set<std::string> vars = unordered_vars(t);
  vars.insert(header_vars.begin(), header_vars.end());
  if (vars.empty()) return;
  for (std::size_t i = 0; i + 2 < t.size(); ++i) {
    // Range-for whose range expression names an unordered container.
    if (t[i].text == "for" && t[i + 1].text == "(") {
      int depth = 0;
      std::size_t colon = 0;
      for (std::size_t j = i + 1; j < t.size(); ++j) {
        if (t[j].text == "(") ++depth;
        if (t[j].text == ")") {
          --depth;
          if (depth == 0) break;
        }
        if (t[j].text == ":" && depth == 1) {
          colon = j;
          break;
        }
        if (t[j].text == ";" && depth == 1) break;  // classic for
      }
      if (colon != 0) {
        int depth2 = 1;
        for (std::size_t j = colon + 1; j < t.size() && depth2 > 0; ++j) {
          if (t[j].text == "(") ++depth2;
          if (t[j].text == ")") {
            --depth2;
            if (depth2 == 0) break;
          }
          if (t[j].kind == TokKind::identifier && vars.count(t[j].text) != 0) {
            report(diags, lf, file, t[j].line, "unordered-iteration",
                   "range-for over unordered container '" + t[j].text +
                       "': hash iteration order is implementation-defined and "
                       "makes event emission order nondeterministic; use "
                       "std::map / sorted traversal");
            break;
          }
        }
      }
    }
    // Explicit iterator walk: var.begin() / var.cbegin() / var.rbegin().
    if (t[i].kind == TokKind::identifier && vars.count(t[i].text) != 0 &&
        (t[i + 1].text == "." || t[i + 1].text == "->") && i + 3 < t.size() &&
        (t[i + 2].text == "begin" || t[i + 2].text == "cbegin" ||
         t[i + 2].text == "rbegin") &&
        t[i + 3].text == "(") {
      report(diags, lf, file, t[i].line, "unordered-iteration",
             "iterator traversal of unordered container '" + t[i].text +
                 "' is order-nondeterministic; use std::map / sorted traversal");
    }
  }
}

// ---------------------------------------------------------------------------
// Rule: raw-time-param

bool timeish_name(const std::string& name) {
  static const std::set<std::string> exact = {
      "time",     "seconds", "sec",      "secs",    "usec",  "usecs",
      "nsec",     "msec",    "delay",    "latency", "timeout",
      "duration", "interval", "period",  "elapsed", "bandwidth", "rate_bps",
  };
  if (exact.count(name) != 0) return true;
  static const std::vector<std::string> suffixes = {
      "_time", "_seconds", "_sec", "_secs", "_us", "_ns", "_ms",
      "_latency", "_delay", "_timeout", "_duration", "_bandwidth", "_bps",
  };
  for (const auto& s : suffixes) {
    if (name.size() > s.size() &&
        name.compare(name.size() - s.size(), s.size(), s) == 0) {
      return true;
    }
  }
  return false;
}

void rule_raw_time_param(const LexedFile& lf, const std::string& file,
                         std::vector<Diagnostic>& diags) {
  // sim/time.hpp defines the unit-safe types; its factory parameters are
  // the sanctioned double<->Time boundary.
  if (path_contains(file, "sim/time.")) return;
  const auto& t = lf.tokens;
  for (std::size_t i = 1; i + 1 < t.size(); ++i) {
    if (t[i].text != "double" && t[i].text != "float") continue;
    // Parameter position: the previous significant token opens or continues
    // a parameter list.
    const std::string& prev = t[i - 1].text;
    if (prev != "(" && prev != ",") continue;
    if (t[i + 1].kind != TokKind::identifier) continue;
    if (!timeish_name(t[i + 1].text)) continue;
    report(diags, lf, file, t[i].line, "raw-time-param",
           "parameter '" + t[i + 1].text + "' is a raw " + t[i].text +
               " duration/rate; sim-facing APIs must take sim::Time / "
               "sim::Bandwidth so units and rounding stay exact");
  }
}

// ---------------------------------------------------------------------------
// Rule: nodiscard-time

const std::set<std::string> kSkippableSpecifiers = {
    "static", "constexpr", "inline", "virtual", "friend", "explicit", "const"};

void rule_nodiscard_time(const LexedFile& lf, const std::string& file,
                         std::vector<Diagnostic>& diags) {
  const auto& t = lf.tokens;
  for (std::size_t i = 0; i + 2 < t.size(); ++i) {
    if (t[i].kind != TokKind::identifier ||
        (t[i].text != "Time" && t[i].text != "Bandwidth")) {
      continue;
    }
    // Return type must be the bare value type: `Time name (` — a following
    // `&`, `*`, `::` or non-identifier means this is not such a declaration.
    std::size_t j = i + 1;
    if (j >= t.size() || t[j].kind != TokKind::identifier) continue;
    if (t[j].text == "operator") continue;  // operators stay unannotated
    std::size_t k = j + 1;
    if (k >= t.size() || t[k].text != "(") {
      // Qualified name => out-of-line definition; [[nodiscard]] belongs on
      // the in-class declaration, which is checked separately.
      continue;
    }
    // Walk backwards over `sim ::` qualification and declaration specifiers.
    bool has_nodiscard = false;
    std::size_t b = i;
    while (b > 0) {
      const Token& p = t[b - 1];
      if (p.text == "::" && b >= 2 && t[b - 2].kind == TokKind::identifier) {
        b -= 2;  // namespace qualifier on the return type
        continue;
      }
      if (p.kind == TokKind::identifier && kSkippableSpecifiers.count(p.text) != 0) {
        --b;
        continue;
      }
      if (p.text == "]]") {  // attribute block: scan it for nodiscard
        std::size_t a = b - 1;
        while (a > 0 && t[a - 1].text != "[[") {
          if (t[a - 1].text == "nodiscard") has_nodiscard = true;
          --a;
        }
        b = a > 0 ? a - 1 : 0;
        continue;
      }
      break;
    }
    if (has_nodiscard) continue;
    // The declaration must start at a boundary; `Time` appearing mid-
    // expression (casts, parameter types, template args) is not flagged.
    if (b > 0) {
      const std::string& boundary = t[b - 1].text;
      if (boundary != ";" && boundary != "{" && boundary != "}" &&
          boundary != ":" && boundary != ">") {
        continue;
      }
      // `public:` / `private:` / label colons qualify; a ternary `:` would
      // be mid-expression but cannot be followed by a two-identifier
      // declaration shape, so the colon case is safe.
    }
    report(diags, lf, file, t[j].line, "nodiscard-time",
           "'" + t[j].text + "' returns sim::" + t[i].text +
               " but is not [[nodiscard]]; a dropped " + t[i].text +
               " usually means an uncharged cost");
  }
}

// ---------------------------------------------------------------------------
// Driver

const std::vector<std::string> kRuleNames = {
    "wall-clock", "unordered-iteration", "raw-time-param", "nodiscard-time"};

bool slurp(const fs::path& path, std::string& out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  out = ss.str();
  return true;
}

void lint_file(const fs::path& path, std::vector<Diagnostic>& diags) {
  std::string src;
  if (!slurp(path, src)) {
    std::cerr << "icsim_lint: cannot read " << path.string() << "\n";
    return;
  }
  const LexedFile lf = lex(src);
  // A .cpp's unordered members usually live in its header: merge the
  // sibling header's declarations so traversals in the implementation file
  // are still caught.
  std::set<std::string> header_vars;
  const std::string ext = path.extension().string();
  if (ext == ".cpp" || ext == ".cc") {
    for (const char* hext : {".hpp", ".h"}) {
      fs::path header = path;
      header.replace_extension(hext);
      std::string hsrc;
      if (slurp(header, hsrc)) {
        const LexedFile hlf = lex(hsrc);
        const auto vars = unordered_vars(hlf.tokens);
        header_vars.insert(vars.begin(), vars.end());
      }
    }
  }
  const std::string name = path.generic_string();
  rule_wall_clock(lf, name, diags);
  rule_unordered_iteration(lf, name, header_vars, diags);
  rule_raw_time_param(lf, name, diags);
  rule_nodiscard_time(lf, name, diags);
}

bool source_file(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".hpp" || ext == ".cpp" || ext == ".h" || ext == ".cc";
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--list-rules") {
      for (const auto& r : kRuleNames) std::cout << r << "\n";
      return 0;
    }
    if (arg == "--help" || arg == "-h") {
      std::cout << "usage: icsim_lint [--list-rules] <file-or-dir>...\n"
                   "Lints C++ sources for DES determinism violations.\n"
                   "Suppress with: // icsim-lint: allow(<rule>)\n";
      return 0;
    }
    paths.push_back(arg);
  }
  if (paths.empty()) {
    std::cerr << "icsim_lint: no inputs (try --help)\n";
    return 2;
  }

  std::vector<Diagnostic> diags;
  std::size_t files = 0;
  for (const auto& p : paths) {
    const fs::path path(p);
    std::error_code ec;
    if (fs::is_directory(path, ec)) {
      std::vector<fs::path> found;
      for (const auto& entry : fs::recursive_directory_iterator(path)) {
        if (entry.is_regular_file() && source_file(entry.path())) {
          found.push_back(entry.path());
        }
      }
      std::sort(found.begin(), found.end());  // stable diagnostic order
      for (const auto& f : found) {
        lint_file(f, diags);
        ++files;
      }
    } else if (fs::exists(path, ec)) {
      lint_file(path, diags);
      ++files;
    } else {
      std::cerr << "icsim_lint: no such file or directory: " << p << "\n";
      return 2;
    }
  }

  for (const auto& d : diags) {
    std::cout << d.file << ":" << d.line << ": " << d.rule << ": " << d.message
              << "\n";
  }
  if (!diags.empty()) {
    std::cout << "icsim_lint: " << diags.size() << " violation"
              << (diags.size() == 1 ? "" : "s") << " in " << files << " file"
              << (files == 1 ? "" : "s") << "\n";
    return 1;
  }
  return 0;
}
