// icsim_lint — model-safety static analyzer for the icsim discrete-event
// simulator.
//
// The repository's reproduction claims (PAPER.md Figs. 1-8) rest on runs
// being a pure function of (scenario, seed). This tool builds a lightweight
// per-TU symbol table and a project-wide call graph over the sources and
// enforces the coding rules that keep the DES deterministic — see
// rules_legacy.cpp (PR 3 token rules) and rules_model.cpp (host-state-leak,
// parallel-purity, unit-discipline, blocking-context).
//
// Diagnostics print as `file:line: rule: message`. A finding is suppressed
// by a comment on the same or the preceding line:
//
//   // icsim-lint: allow(<rule>)      (or allow(*) for any rule)
//
// or accepted with a written justification in a baseline file
// (tools/lint/baseline.txt; see --baseline / --write-baseline).
//
// Exit codes (CI distinguishes analyzer breakage from real findings):
//   0  clean (every finding suppressed or baselined)
//   1  unbaselined findings
//   2  usage / IO / parse error (missing input, unreadable file or baseline)

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>

#include "ir.hpp"
#include "output.hpp"
#include "rules.hpp"

namespace fs = std::filesystem;

namespace icsim_lint {

const std::vector<RuleInfo>& rule_catalog() {
  static const std::vector<RuleInfo> catalog = {
      {"wall-clock",
       "No wall-clock/entropy reads outside sim/rng; randomness flows from a "
       "seeded sim::Rng"},
      {"unordered-iteration",
       "No order-dependent traversal of unordered containers"},
      {"raw-time-param",
       "No raw double/float duration or rate parameters in sim-facing APIs"},
      {"nodiscard-time",
       "Declarations returning sim::Time / sim::Bandwidth must be "
       "[[nodiscard]]"},
      {"host-state-leak",
       "Host pointer values (keys, hashes, integer casts, folded addresses) "
       "must not influence model behavior"},
      {"parallel-purity",
       "Mutable namespace-scope/static state must be const, thread_local, or "
       "mutex-guarded"},
      {"unit-discipline",
       "No integer-smuggled durations/rates in signatures; no sim::Time "
       "round-trips through double"},
      {"blocking-context",
       "Fiber-blocking APIs must be unreachable from engine event-handler "
       "lambdas"},
      {"shared-state",
       "Writes to statics/globals reachable from event/fiber entry points "
       "must be sharded, locked, or forbidden before the engine is "
       "partitioned"},
      {"determinism-taint",
       "Host-nondeterministic values (pointer casts, pointer hashes, host "
       "clocks, unordered iteration, uninitialized reads) must not flow into "
       "simulated-time sinks"},
      {"closure-lifetime",
       "Closures deferred via post/schedule/post_cross/acquire/fiber spawn "
       "must not capture the enclosing frame by reference; this-captures at "
       "cancellable sinks need same-frame or destructor cancellation"},
      {"cross-shard-conformance",
       "Shard-classified state must be indexed by the executing partition, "
       "mutex-disciplined sites written only under their guard, and every "
       "post_cross delay must trace to the lookahead constant"},
  };
  return catalog;
}

bool suppressed(const LexedFile& lf, int line, const std::string& rule) {
  for (const auto& s : lf.suppressions) {
    if ((s.line == line || s.line == line - 1) &&
        (s.rule == "*" || s.rule == rule)) {
      return true;
    }
  }
  return false;
}

void report(std::vector<Diagnostic>& diags, const TranslationUnit& tu, int line,
            const std::string& rule, const std::string& symbol,
            const std::string& message) {
  if (suppressed(tu.lex, line, rule)) return;
  diags.push_back({tu.file, line, rule, symbol, message, false});
}

namespace {

bool slurp(const fs::path& path, std::string& out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  out = ss.str();
  return true;
}

bool source_file(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".hpp" || ext == ".cpp" || ext == ".h" || ext == ".cc";
}

struct Options {
  std::vector<std::string> paths;
  std::string baseline_path;
  std::string write_baseline_path;
  std::string sarif_path;
  std::string manifest_path;
  std::string manifest_check_path;
  std::string root;
  bool explain_blocking = false;
};

int usage(std::ostream& os, int code) {
  os << "usage: icsim_lint [options] <file-or-dir>...\n"
        "Model-safety static analysis for DES determinism violations.\n"
        "  --baseline FILE        accept findings listed in FILE\n"
        "  --write-baseline FILE  write unbaselined findings as new entries\n"
        "  --sarif FILE           also emit SARIF 2.1.0 (for code scanning)\n"
        "  --manifest FILE        emit partition-manifest.json (the certified\n"
        "                         shard/lock/forbid inventory of shared-mutable\n"
        "                         state; consumed by the parallel DES work)\n"
        "  --manifest-check FILE  regenerate the manifest in-memory and exit 1\n"
        "                         if the committed FILE is stale (drift gate)\n"
        "  --root DIR             repo root for relative SARIF paths\n"
        "  --list-rules           print the rule catalog and exit\n"
        "Suppress inline with: // icsim-lint: allow(<rule>)\n"
        "Exit codes: 0 clean, 1 findings, 2 usage/IO/parse error.\n";
  return code;
}

}  // namespace

int run(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::cerr << "icsim_lint: " << flag << " needs an argument\n";
        return nullptr;
      }
      return argv[++i];
    };
    if (arg == "--list-rules") {
      for (const auto& r : rule_catalog()) std::cout << r.id << "\n";
      return 0;
    }
    if (arg == "--help" || arg == "-h") return usage(std::cout, 0);
    if (arg == "--baseline") {
      const char* v = value("--baseline");
      if (v == nullptr) return 2;
      opt.baseline_path = v;
      continue;
    }
    if (arg == "--write-baseline") {
      const char* v = value("--write-baseline");
      if (v == nullptr) return 2;
      opt.write_baseline_path = v;
      continue;
    }
    if (arg == "--sarif") {
      const char* v = value("--sarif");
      if (v == nullptr) return 2;
      opt.sarif_path = v;
      continue;
    }
    if (arg == "--manifest") {
      const char* v = value("--manifest");
      if (v == nullptr) return 2;
      opt.manifest_path = v;
      continue;
    }
    if (arg == "--manifest-check") {
      const char* v = value("--manifest-check");
      if (v == nullptr) return 2;
      opt.manifest_check_path = v;
      continue;
    }
    if (arg == "--explain-blocking") {
      opt.explain_blocking = true;
      continue;
    }
    if (arg == "--root") {
      const char* v = value("--root");
      if (v == nullptr) return 2;
      opt.root = v;
      continue;
    }
    if (!arg.empty() && arg[0] == '-') {
      std::cerr << "icsim_lint: unknown option " << arg << "\n";
      return usage(std::cerr, 2);
    }
    opt.paths.push_back(arg);
  }
  if (opt.paths.empty()) {
    std::cerr << "icsim_lint: no inputs (try --help)\n";
    return 2;
  }

  // ---- collect and parse ------------------------------------------------
  bool io_error = false;
  std::vector<fs::path> files;
  for (const auto& p : opt.paths) {
    const fs::path path(p);
    std::error_code ec;
    if (fs::is_directory(path, ec)) {
      for (const auto& entry : fs::recursive_directory_iterator(path)) {
        if (entry.is_regular_file() && source_file(entry.path())) {
          files.push_back(entry.path());
        }
      }
    } else if (fs::exists(path, ec)) {
      files.push_back(path);
    } else {
      std::cerr << "icsim_lint: no such file or directory: " << p << "\n";
      io_error = true;
    }
  }
  std::sort(files.begin(), files.end());  // stable diagnostic order

  Project project;
  for (const auto& f : files) {
    std::string src;
    if (!slurp(f, src)) {
      std::cerr << "icsim_lint: cannot read " << f.string() << "\n";
      io_error = true;
      continue;
    }
    project.tus.push_back(parse_tu(f.generic_string(), lex(src)));
  }
  build_call_graph(project);
  blocking_closure(project, {"sleep_for", "sleep_until", "yield", "wait"});
  if (opt.explain_blocking) {
    for (const auto& name : project.blocking) {
      std::cout << "blocking: " << name;
      auto it = project.call_graph.find(name);
      if (it != project.call_graph.end()) {
        for (const auto& c : it->second) {
          if (project.blocking.count(c) != 0) std::cout << " <- " << c;
        }
      }
      std::cout << "\n";
    }
    return 0;
  }

  // ---- run the rule packs ----------------------------------------------
  std::vector<Diagnostic> diags;
  for (const auto& tu : project.tus) {
    // A .cpp's unordered members usually live in its header: merge the
    // sibling header's declarations so traversals in the implementation
    // file are still caught.
    std::set<std::string> header_vars;
    const fs::path path(tu.file);
    const std::string ext = path.extension().string();
    if (ext == ".cpp" || ext == ".cc") {
      for (const char* hext : {".hpp", ".h"}) {
        fs::path header = path;
        header.replace_extension(hext);
        std::string hsrc;
        if (slurp(header, hsrc)) {
          const auto vars = unordered_vars(lex(hsrc));
          header_vars.insert(vars.begin(), vars.end());
        }
      }
    }
    run_legacy_rules(tu, header_vars, diags);
    run_model_rules(tu, project, diags);
  }
  // Interprocedural passes run once over the whole project: shared-state +
  // determinism-taint (PR 8), then closure-lifetime and
  // cross-shard-conformance (the latter consumes the manifest the
  // shared-state pass just classified).
  std::vector<ManifestSite> manifest;
  run_partition_rules(project, diags, manifest);
  run_closure_rules(project, diags);
  run_conformance_rules(project, manifest, diags);
  std::sort(diags.begin(), diags.end(), [](const Diagnostic& a, const Diagnostic& b) {
    if (a.file != b.file) return a.file < b.file;
    if (a.line != b.line) return a.line < b.line;
    if (a.rule != b.rule) return a.rule < b.rule;
    return a.symbol < b.symbol;
  });

  // ---- baseline ---------------------------------------------------------
  Baseline baseline;
  if (!opt.baseline_path.empty()) {
    std::string error;
    if (!load_baseline(opt.baseline_path, baseline, error)) {
      std::cerr << "icsim_lint: " << error << "\n";
      return 2;
    }
    apply_baseline(baseline, diags);
    for (const auto* e : stale_entries(baseline)) {
      std::cerr << "icsim_lint: stale baseline entry (no longer matches): "
                << e->rule << "|" << e->file << "|" << e->symbol << "\n";
    }
  }
  if (!opt.write_baseline_path.empty() &&
      !write_baseline(opt.write_baseline_path, diags)) {
    std::cerr << "icsim_lint: cannot write baseline "
              << opt.write_baseline_path << "\n";
    io_error = true;
  }

  // ---- output -----------------------------------------------------------
  std::size_t open = 0, accepted = 0;
  for (const auto& d : diags) {
    if (d.baselined) {
      ++accepted;
      continue;
    }
    ++open;
    std::cout << d.file << ":" << d.line << ": " << d.rule << ": " << d.message
              << " [" << d.symbol << "]\n";
  }

  std::string root = opt.root;
  if (root.empty()) {
    std::error_code ec;
    root = fs::current_path(ec).generic_string();
  }
  if (!opt.sarif_path.empty()) {
    if (!write_sarif(opt.sarif_path, diags, root)) {
      std::cerr << "icsim_lint: cannot write SARIF " << opt.sarif_path << "\n";
      io_error = true;
    } else {
      std::cerr << "icsim_lint: sarif: wrote " << diags.size() << " result"
                << (diags.size() == 1 ? "" : "s") << " to " << opt.sarif_path
                << "\n";
    }
  }
  if (!opt.manifest_path.empty()) {
    if (!write_manifest(opt.manifest_path, manifest, root)) {
      std::cerr << "icsim_lint: cannot write manifest " << opt.manifest_path
                << "\n";
      io_error = true;
    } else {
      std::cerr << "icsim_lint: manifest: wrote " << manifest.size()
                << " shared-mutable site" << (manifest.size() == 1 ? "" : "s")
                << " to " << opt.manifest_path << "\n";
    }
  }
  // Drift gate: the committed manifest must byte-match what this scan would
  // regenerate, so the shard/lock/forbid contract ratchets with the code.
  bool manifest_stale = false;
  if (!opt.manifest_check_path.empty()) {
    std::string committed;
    if (!slurp(opt.manifest_check_path, committed)) {
      std::cerr << "icsim_lint: cannot read manifest "
                << opt.manifest_check_path << "\n";
      return 2;
    }
    if (committed != manifest_json(manifest, root)) {
      manifest_stale = true;
      std::cerr << "icsim_lint: manifest drift: " << opt.manifest_check_path
                << " is stale (scan found " << manifest.size()
                << " shared-mutable site" << (manifest.size() == 1 ? "" : "s")
                << "); regenerate with --manifest " << opt.manifest_check_path
                << " --root <repo-root> and commit the result\n";
    } else {
      std::cerr << "icsim_lint: manifest " << opt.manifest_check_path
                << " is up to date (" << manifest.size() << " site"
                << (manifest.size() == 1 ? "" : "s") << ")\n";
    }
  }

  if (open != 0 || accepted != 0) {
    std::cout << "icsim_lint: " << open << " finding" << (open == 1 ? "" : "s")
              << " (" << accepted << " baselined) in " << project.tus.size()
              << " file" << (project.tus.size() == 1 ? "" : "s") << "\n";
  }
  if (io_error) return 2;
  return open != 0 || manifest_stale ? 1 : 0;
}

}  // namespace icsim_lint

int main(int argc, char** argv) { return icsim_lint::run(argc, argv); }
