// Interprocedural partition-safety passes (see dataflow.hpp).
//
// shared-state       — walk the call graph from every event/fiber entry
//                      point; every write to a static, global, or static
//                      class member reachable from one is a site the
//                      partitioned engine must shard, lock, or forbid.  The
//                      diagnostic carries the full call path from the entry
//                      point to the writing function, and every site lands
//                      in the partition manifest (write_manifest).
// determinism-taint  — dataflow from host-nondeterministic sources (pointer
//                      values materialized as integers, std::hash of a
//                      pointer, host clocks/entropy, unordered-container
//                      iteration order, reads of uninitialized locals)
//                      through assignments, returns, arguments and shared
//                      variables into simulated-time sinks (sim::Time
//                      factories, Engine::post_*/schedule_*, Rng seeding,
//                      digest folds, and branches that select time-relevant
//                      behavior — the PR 4 reg-cache hit/miss shape).
//
// Both passes are fixpoints over monotone fact sets with first-wins
// provenance, so they terminate and their output is deterministic.

#include <algorithm>
#include <optional>
#include <sstream>

#include "dataflow.hpp"
#include "rules.hpp"

namespace icsim_lint {

namespace {

// ---------------------------------------------------------------------------
// Common helpers

struct Def {
  const TranslationUnit* tu;
  const FunctionDecl* fn;
};

/// fn_key -> every definition with that key (overloads collapse together —
/// fine for a heuristic: facts about any overload apply to all).
using DefIndex = std::map<std::string, std::vector<Def>>;

DefIndex build_def_index(const Project& p) {
  DefIndex out;
  for (const auto& tu : p.tus) {
    for (const auto& fn : tu.functions) {
      if (!fn.is_definition) continue;
      out[fn_key(fn)].push_back({&tu, &fn});
    }
  }
  return out;
}

std::string basename_of(const std::string& path) {
  const auto slash = path.rfind('/');
  return slash == std::string::npos ? path : path.substr(slash + 1);
}

std::string stem_of(const std::string& path) {
  const std::string base = basename_of(path);
  const auto dot = base.rfind('.');
  return dot == std::string::npos ? base : base.substr(0, dot);
}

bool type_has(const VarDecl& v, const char* name) {
  return std::find(v.type.begin(), v.type.end(), name) != v.type.end();
}

std::string joined_type(const VarDecl& v) {
  std::string out;
  for (const auto& tok : v.type) {
    if (!out.empty() && (isalnum(static_cast<unsigned char>(tok[0])) != 0 ||
                         tok[0] == '_') &&
        (isalnum(static_cast<unsigned char>(out.back())) != 0 ||
         out.back() == '_')) {
      out += ' ';
    }
    out += tok;
  }
  return out;
}

bool in_handler_range(const TranslationUnit& tu, std::size_t tok) {
  for (const auto& h : tu.handlers) {
    if (tok >= h.begin && tok < h.end) return true;
  }
  return false;
}

std::string join_path(const std::vector<std::string>& path) {
  std::string out;
  for (const auto& n : path) {
    if (!out.empty()) out += " -> ";
    out += n;
  }
  return out;
}

}  // namespace

// ---------------------------------------------------------------------------
// Reachability from event/fiber entry points

std::vector<std::string> Reachability::path_to(const std::string& key) const {
  std::vector<std::string> chain;
  std::string cur = key;
  while (!cur.empty()) {
    chain.push_back(cur);
    const auto it = parent.find(cur);
    if (it == parent.end()) break;
    cur = it->second;
  }
  std::reverse(chain.begin(), chain.end());
  const auto e = entry.find(key);
  if (e != entry.end() && (chain.empty() || e->second != chain.front())) {
    chain.insert(chain.begin(), e->second);
  }
  return chain;
}

Reachability compute_reachability(const Project& project) {
  Reachability r;
  const DefIndex defs = build_def_index(project);
  std::vector<std::string> queue;
  auto add_root = [&](const std::string& key, const std::string& label) {
    if (r.parent.count(key) != 0) return;
    r.parent[key] = "";
    r.entry[key] = label;
    queue.push_back(key);
  };

  // (b)/(c) — named seeds: MPI progress engines and Fabric serialization.
  for (const auto& tu : project.tus) {
    for (const auto& fn : tu.functions) {
      if (!fn.is_definition) continue;
      if (fn.name == "progress" || fn.owner == "Fabric") {
        add_root(fn_key(fn), fn_key(fn));
      }
    }
  }
  // (a) — callees of every event-handler lambda.
  for (const auto& tu : project.tus) {
    for (const auto& h : tu.handlers) {
      const std::string label =
          "handler@" + basename_of(tu.file) + ":" + std::to_string(h.line);
      for (const auto& fn : tu.functions) {
        for (const auto& c : fn.calls) {
          if (c.tok < h.begin || c.tok >= h.end) continue;
          for (const auto& target :
               resolve_call_targets(project, h.owner, c)) {
            if (defs.count(target) != 0) add_root(target, label);
          }
        }
      }
    }
  }
  // BFS over the call graph (definitions only — an undefined callee has no
  // body to write anything from).
  for (std::size_t q = 0; q < queue.size(); ++q) {
    const std::string cur = queue[q];
    const auto it = project.call_graph.find(cur);
    if (it == project.call_graph.end()) continue;
    for (const auto& next : it->second) {
      if (r.parent.count(next) != 0 || defs.count(next) == 0) continue;
      r.parent[next] = cur;
      r.entry[next] = r.entry[cur];
      queue.push_back(next);
    }
  }
  return r;
}

// ---------------------------------------------------------------------------
// shared-state pass

namespace {

struct SharedVar {
  const TranslationUnit* tu;
  const VarDecl* var;
};

bool shared_mutable(const VarDecl& v) {
  if (v.is_const || v.is_thread_local || v.is_sync_primitive) return false;
  switch (v.var_scope) {
    case VarScope::namespace_scope: return true;
    case VarScope::class_member: return v.is_static;
    case VarScope::static_local: return true;
  }
  return false;
}

const char* var_kind(const VarDecl& v) {
  switch (v.var_scope) {
    case VarScope::namespace_scope: return "namespace-scope";
    case VarScope::class_member: return "static-member";
    case VarScope::static_local: return "static-local";
  }
  return "?";
}

/// Does this write site refer to this shared variable?  Name match plus a
/// scope filter: static locals bind within their function, namespace-scope
/// variables within their TU (or a sibling header/impl pair), static members
/// to methods of the owning class or `Owner::name` qualified writes.
bool write_matches(const Def& d, const WriteSite& w, const SharedVar& sv) {
  const VarDecl& v = *sv.var;
  if (w.name != v.name) return false;
  switch (v.var_scope) {
    case VarScope::static_local:
      return sv.tu == d.tu && v.func == d.fn->name && v.owner == d.fn->owner;
    case VarScope::namespace_scope:
      return sv.tu == d.tu || stem_of(sv.tu->file) == stem_of(d.tu->file);
    case VarScope::class_member:
      if (!w.owner.empty()) return w.owner == v.owner;
      return d.fn->owner == v.owner;
  }
  return false;
}

bool model_visible_type(const VarDecl& v) {
  for (const char* name : {"Time", "Bandwidth", "Rng", "Fnv1a", "Engine"}) {
    if (type_has(v, name)) return true;
  }
  return false;
}

int severity(PartitionClass c) {
  switch (c) {
    case PartitionClass::lock: return 0;
    case PartitionClass::shard: return 1;
    case PartitionClass::forbid: return 2;
  }
  return 0;
}

PartitionClass classify_write(const Def& d, const WriteSite& w,
                              const VarDecl& v) {
  if (in_handler_range(*d.tu, w.tok) || model_visible_type(v)) {
    return PartitionClass::forbid;
  }
  if (d.fn->body_has_lock) return PartitionClass::lock;
  return PartitionClass::shard;
}

void shared_state_pass(const Project& project, const Reachability& reach,
                       std::vector<Diagnostic>& diags,
                       std::vector<ManifestSite>& manifest) {
  // Deterministic variable order: file, then declaration line.
  std::vector<SharedVar> vars;
  for (const auto& tu : project.tus) {
    for (const auto& v : tu.vars) {
      if (shared_mutable(v)) vars.push_back({&tu, &v});
    }
  }
  std::sort(vars.begin(), vars.end(), [](const SharedVar& a, const SharedVar& b) {
    if (a.tu->file != b.tu->file) return a.tu->file < b.tu->file;
    if (a.var->line != b.var->line) return a.var->line < b.var->line;
    return a.var->name < b.var->name;
  });

  for (const auto& sv : vars) {
    const VarDecl& v = *sv.var;
    ManifestSite site;
    site.variable = v.name;
    site.var_kind = var_kind(v);
    site.type = joined_type(v);
    site.file = sv.tu->file;
    site.line = v.line;
    site.cls = PartitionClass::lock;  // weakest; writes raise it
    bool any_write = false;

    for (const auto& tu : project.tus) {
      for (const auto& fn : tu.functions) {
        if (!fn.is_definition) continue;
        const Def d{&tu, &fn};
        const std::string key = fn_key(fn);
        for (const auto& w : fn.writes) {
          if (!write_matches(d, w, sv)) continue;
          any_write = true;
          const PartitionClass cls = classify_write(d, w, v);
          const bool direct_handler = in_handler_range(tu, w.tok);
          const bool reachable = direct_handler || reach.contains(key);
          if (severity(cls) > severity(site.cls)) site.cls = cls;
          if (reachable) {
            std::vector<std::string> path =
                direct_handler && !reach.contains(key)
                    ? std::vector<std::string>{
                          "handler@" + basename_of(tu.file) + ":" +
                              std::to_string(w.line),
                          key}
                    : reach.path_to(key);
            if (!site.reachable || severity(cls) >= severity(site.cls)) {
              site.call_path = path;
            }
            site.reachable = true;
            // In the partitioned tier a shard-classified site written
            // through a single executing-partition subscript IS the
            // per-partition instance realized; cross-shard-conformance
            // polices the index, so the blanket finding would be noise.
            const bool sharded_access =
                cls == PartitionClass::shard && partition_tier(tu.file) &&
                write_index_shape(tu, w) == IndexShape::simple;
            if (cls != PartitionClass::lock && !sharded_access) {
              report(diags, tu, w.line, "shared-state", v.name,
                     "'" + v.name + "' (" + var_kind(v) + ", " +
                         basename_of(sv.tu->file) + ":" +
                         std::to_string(v.line) +
                         ") is mutable shared state " + w.how +
                         " on the event/fiber path [" + join_path(path) +
                         "]; partition-safety: " + to_string(cls) +
                         (cls == PartitionClass::forbid
                              ? " — the value can reach model behavior; the "
                                "parallel engine must not share it at all"
                              : " — give each partition (or Engine) its own "
                                "instance, or guard it with a mutex and "
                                "justify the ordering"));
            }
          }
        }
      }
    }

    if (!any_write) {
      // Never observed being written: default to shard (per-partition
      // copies are always sound) rather than claiming a lock exists.
      site.cls = PartitionClass::shard;
      site.reason =
          "no write site observed by the analyzer; per-partition copies are "
          "the safe default";
      manifest.push_back(site);
      continue;
    }
    switch (site.cls) {
      case PartitionClass::lock:
        site.reason =
            "every observed write is mutex-guarded and the value never "
            "reaches model behavior";
        break;
      case PartitionClass::shard:
        site.reason =
            "plain mutable shared state; the partitioned engine must give "
            "each partition its own instance";
        break;
      case PartitionClass::forbid:
        site.reason =
            "written on the event path or model-visible type; must not be "
            "shared across partitions in any form";
        break;
    }
    manifest.push_back(site);
  }
}

// ---------------------------------------------------------------------------
// determinism-taint pass

const std::set<std::string>& host_entropy_names() {
  static const std::set<std::string> names = {
      "steady_clock",  "system_clock", "high_resolution_clock",
      "gettimeofday",  "clock_gettime", "rdtsc",
      "__rdtsc",       "random_device"};
  return names;
}

bool integral_type_name(const std::string& name) {
  static const std::set<std::string> names = {
      "uintptr_t", "intptr_t", "size_t",    "uint64_t", "int64_t",
      "uint32_t",  "int32_t",  "ptrdiff_t", "long",     "int",
      "unsigned",  "short"};
  return names.count(name) != 0;
}

bool scalar_type_name(const std::string& name) {
  static const std::set<std::string> names = {
      "int",      "long",     "short",    "unsigned", "double",   "float",
      "bool",     "size_t",   "uint8_t",  "uint16_t", "uint32_t", "uint64_t",
      "int8_t",   "int16_t",  "int32_t",  "int64_t",  "uintptr_t",
      "intptr_t", "ptrdiff_t"};
  return names.count(name) != 0;
}

/// Monotone interprocedural facts.  All provenance strings are first-wins:
/// once a fact is recorded its chain never changes, which makes the fixpoint
/// terminate and keeps diagnostics stable.
struct TaintState {
  std::map<std::string, std::string> returns;  ///< fn_key -> provenance
  std::map<std::string, std::map<std::size_t, std::string>> params;
  std::map<std::string, std::string> vars;  ///< shared/member name -> prov
  bool grew = false;

  void add_return(const std::string& key, const std::string& prov) {
    if (returns.emplace(key, prov).second) grew = true;
  }
  void add_param(const std::string& key, std::size_t idx,
                 const std::string& prov) {
    if (params[key].emplace(idx, prov).second) grew = true;
  }
  void add_var(const std::string& name, const std::string& prov) {
    if (vars.emplace(name, prov).second) grew = true;
  }
};

struct SinkHit {
  const TranslationUnit* tu;
  int line;
  std::string symbol;
  std::string message;
};

/// What a tainted expression carries: the provenance chain and the source
/// anchor (the identifier or cast that made it tainted) for the diagnostic
/// symbol.
struct TaintEval {
  std::string prov;
  std::string anchor;
  [[nodiscard]] bool tainted() const { return !prov.empty(); }
};

class FnTaint {
 public:
  FnTaint(const Project& p, const DefIndex& defs, const TranslationUnit& tu,
          const FunctionDecl& fn, TaintState& st,
          const std::set<std::string>& unordered_names,
          const std::set<std::string>& member_names,
          std::map<std::string, SinkHit>& sinks)
      : p_(p),
        defs_(defs),
        tu_(tu),
        fn_(fn),
        st_(st),
        unordered_(unordered_names),
        members_(member_names),
        sinks_(sinks),
        t_(tu.lex.tokens),
        key_(fn_key(fn)) {}

  void run() {
    seed_params();
    // Two forward passes per round pick up simple loop-carried flows
    // (assigned late in the body, read earlier on the next iteration).
    for (int pass = 0; pass < 2; ++pass) {
      uninit_.clear();
      scan();
    }
  }

 private:
  [[nodiscard]] std::string text(std::size_t i) const {
    return i < t_.size() ? t_[i].text : "";
  }
  [[nodiscard]] bool is_ident(std::size_t i) const {
    return i < t_.size() && t_[i].kind == TokKind::identifier;
  }

  std::size_t skip_balanced(std::size_t i, const char* open,
                            const char* close) const {
    int depth = 0;
    for (; i < t_.size(); ++i) {
      if (t_[i].text == open) ++depth;
      else if (t_[i].text == close) {
        --depth;
        if (depth == 0) return i + 1;
      }
    }
    return t_.size();
  }

  /// End of the statement starting at i: the `;` at balance zero.
  std::size_t statement_end(std::size_t i) const {
    int paren = 0, brace = 0, bracket = 0;
    for (; i < fn_.body_end && i < t_.size(); ++i) {
      const std::string& x = t_[i].text;
      if (x == "(") ++paren;
      else if (x == ")") --paren;
      else if (x == "{") ++brace;
      else if (x == "}") { if (brace == 0) return i; --brace; }
      else if (x == "[") ++bracket;
      else if (x == "]") --bracket;
      else if (x == ";" && paren == 0 && brace == 0 && bracket == 0) return i;
    }
    return std::min(fn_.body_end, t_.size());
  }

  void seed_params() {
    const auto it = st_.params.find(key_);
    if (it == st_.params.end()) return;
    for (const auto& [idx, prov] : it->second) {
      if (idx >= fn_.params.size()) continue;
      const std::string& name = fn_.params[idx].name;
      if (!name.empty()) local_.emplace(name, prov);
    }
  }

  /// Taint of the expression tokens [b, e): first tainted thing wins.
  TaintEval eval(std::size_t b, std::size_t e) {
    for (std::size_t j = b; j < e && j < t_.size(); ++j) {
      if (!is_ident(j)) continue;
      const std::string& x = t_[j].text;
      const int line = t_[j].line;
      if (const auto it = local_.find(x); it != local_.end()) {
        return {it->second, x};
      }
      if (const auto it = st_.vars.find(x); it != st_.vars.end()) {
        return {it->second, x};
      }
      if (uninit_.count(x) != 0) {
        return {"read of uninitialized local '" + x + "' (" +
                    basename_of(tu_.file) + ":" + std::to_string(line) + ")",
                x};
      }
      if (host_entropy_names().count(x) != 0) {
        return {"host clock/entropy '" + x + "' (" + basename_of(tu_.file) +
                    ":" + std::to_string(line) + ")",
                x};
      }
      if ((x == "reinterpret_cast" || x == "bit_cast") && text(j + 1) == "<") {
        std::string last_ident;
        bool to_pointer = false;
        int depth = 0;
        for (std::size_t k = j + 1; k < e; ++k) {
          if (t_[k].text == "<") { ++depth; continue; }
          if (t_[k].text == ">") { if (--depth == 0) break; continue; }
          if (is_ident(k)) last_ident = t_[k].text;
          if (t_[k].text == "*") to_pointer = true;
        }
        if (!to_pointer && integral_type_name(last_ident)) {
          return {"host pointer materialized as integer via " + x + "<" +
                      last_ident + "> (" + basename_of(tu_.file) + ":" +
                      std::to_string(line) + ")",
                  x + "<" + last_ident + ">"};
        }
      }
      if (x == "hash" && text(j + 1) == "<") {
        bool ptr = false;
        int depth = 0;
        for (std::size_t k = j + 1; k < e; ++k) {
          if (t_[k].text == "<") { ++depth; continue; }
          if (t_[k].text == ">") { if (--depth == 0) break; continue; }
          if (t_[k].text == "*") ptr = true;
        }
        if (ptr) {
          return {"std::hash of a host pointer (" + basename_of(tu_.file) +
                      ":" + std::to_string(line) + ")",
                  "hash<*>"};
        }
      }
      if (text(j + 1) == "(") {
        CallSite cs;
        cs.callee = x;
        cs.line = line;
        cs.tok = j;
        cs.member = j > 0 && (t_[j - 1].text == "." || t_[j - 1].text == "->");
        cs.qualified = j > 0 && t_[j - 1].text == "::";
        for (const auto& target : resolve_call_targets(p_, fn_.owner, cs)) {
          if (const auto it = st_.returns.find(target);
              it != st_.returns.end()) {
            return {it->second + " -> via " + x + "() (" +
                        basename_of(tu_.file) + ":" + std::to_string(line) +
                        ")",
                    x};
          }
        }
      }
    }
    return {};
  }

  void add_sink(int line, const std::string& symbol,
                const std::string& message) {
    const std::string k =
        tu_.file + ":" + std::to_string(line) + ":" + symbol;
    sinks_.emplace(k, SinkHit{&tu_, line, symbol, message});
  }

  /// Argument token ranges of the call whose `(` is at open_paren.
  std::vector<std::pair<std::size_t, std::size_t>> arg_ranges(
      std::size_t open_paren) const {
    std::vector<std::pair<std::size_t, std::size_t>> out;
    int paren = 0, bracket = 0, brace = 0;
    std::size_t start = open_paren + 1;
    for (std::size_t k = open_paren; k < t_.size(); ++k) {
      const std::string& x = t_[k].text;
      if (x == "(") { ++paren; continue; }
      if (x == ")") {
        --paren;
        if (paren == 0) {
          if (k > start) out.emplace_back(start, k);
          break;
        }
        continue;
      }
      if (x == "[") ++bracket;
      else if (x == "]") --bracket;
      else if (x == "{") ++brace;
      else if (x == "}") --brace;
      else if (x == "," && paren == 1 && bracket == 0 && brace == 0) {
        out.emplace_back(start, k);
        start = k + 1;
      }
    }
    return out;
  }

  void handle_call(std::size_t j) {
    const std::string& callee = t_[j].text;
    const int line = t_[j].line;
    const auto args = arg_ranges(j + 1);
    std::vector<TaintEval> evals;
    evals.reserve(args.size());
    bool any = false;
    for (const auto& [b, e] : args) {
      evals.push_back(eval(b, e));
      any = any || evals.back().tainted();
    }
    if (!any) return;
    const TaintEval* first = nullptr;
    std::size_t first_idx = 0;
    for (std::size_t i = 0; i < evals.size(); ++i) {
      if (evals[i].tainted()) { first = &evals[i]; first_idx = i; break; }
    }

    static const std::set<std::string> kSchedulers = {
        "post_at", "post_in", "schedule_at", "schedule_in"};
    static const std::set<std::string> kTimeFactories = {"ns", "us", "ms",
                                                         "sec"};
    static const std::set<std::string> kRngSinks = {"seed", "fork"};
    static const std::set<std::string> kDigestSinks = {"fold", "mix",
                                                       "hash_combine"};

    if (kSchedulers.count(callee) != 0 && evals[0].tainted()) {
      add_sink(line, evals[0].anchor,
               "host-nondeterministic value determines an event time: " +
                   callee + "() receives [" + evals[0].prov +
                   "]; simulated time must be a pure function of "
                   "(scenario, seed)");
    } else if (kTimeFactories.count(callee) != 0 && j >= 2 &&
               t_[j - 1].text == "::" && t_[j - 2].text == "Time") {
      add_sink(line, first->anchor,
               "host-nondeterministic value feeds sim::Time::" + callee +
                   "(): [" + first->prov + "]");
    } else if (kRngSinks.count(callee) != 0 || callee == "Rng") {
      add_sink(line, first->anchor,
               "host-nondeterministic value seeds the deterministic RNG via " +
                   callee + "(): [" + first->prov + "]");
    } else if (kDigestSinks.count(callee) != 0) {
      add_sink(line, first->anchor,
               "host-nondeterministic value folded into a digest via " +
                   callee + "(): [" + first->prov + "]");
    }

    // Propagate into callee parameters.
    CallSite cs;
    cs.callee = callee;
    cs.line = line;
    cs.tok = j;
    cs.member = j > 0 && (t_[j - 1].text == "." || t_[j - 1].text == "->");
    cs.qualified = j > 0 && t_[j - 1].text == "::";
    for (const auto& target : resolve_call_targets(p_, fn_.owner, cs)) {
      if (defs_.count(target) == 0) continue;
      for (std::size_t i = 0; i < evals.size(); ++i) {
        if (!evals[i].tainted()) continue;
        st_.add_param(target, i,
                      evals[i].prov + " -> argument " + std::to_string(i) +
                          " of " + target + "() (" + basename_of(tu_.file) +
                          ":" + std::to_string(line) + ")");
      }
    }
    (void)first_idx;
  }

  void handle_branch(std::size_t j) {
    // j is `if` or `while`; condition is the balanced paren group after it.
    const std::size_t close = skip_balanced(j + 1, "(", ")");
    const TaintEval cond = eval(j + 2, close > 0 ? close - 1 : j + 2);
    if (!cond.tainted()) return;
    // Guarded region: `{...}` block or single statement.
    std::size_t rb = close, re = close;
    if (text(close) == "{") {
      rb = close + 1;
      re = skip_balanced(close, "{", "}") - 1;
    } else {
      re = statement_end(close);
    }
    bool time_relevant = false;
    bool has_return = false;
    static const std::set<std::string> kSchedulers = {
        "post_at", "post_in", "schedule_at", "schedule_in"};
    for (std::size_t k = rb; k < re && k < t_.size(); ++k) {
      if (!is_ident(k)) continue;
      if (t_[k].text == "Time" || kSchedulers.count(t_[k].text) != 0) {
        time_relevant = true;
        break;
      }
      if (t_[k].text == "return") has_return = true;
    }
    const bool returns_time =
        std::find(fn_.return_type.begin(), fn_.return_type.end(), "Time") !=
        fn_.return_type.end();
    if (time_relevant || (returns_time && has_return)) {
      add_sink(t_[j].line, cond.anchor,
               "branch on a host-nondeterministic value selects "
               "simulated-time behavior (the reg-cache hit/miss shape): "
               "condition tainted by [" +
                   cond.prov + "]");
    }
  }

  void handle_return(std::size_t j) {
    const std::size_t end = statement_end(j + 1);
    const TaintEval v = eval(j + 1, end);
    if (!v.tainted()) return;
    st_.add_return(key_, v.prov + " -> returned from " + key_ + "()");
    const bool returns_time =
        std::find(fn_.return_type.begin(), fn_.return_type.end(), "Time") !=
        fn_.return_type.end();
    if (returns_time) {
      add_sink(t_[j].line, fn_.name,
               "host-nondeterministic value returned as sim::Time from " +
                   key_ + "(): [" + v.prov + "]");
    }
  }

  void handle_range_for(std::size_t j) {
    // `for ( decl : container )` — `::` is a single lexer token, so a bare
    // `:` here is the range-for separator.
    const std::size_t close = skip_balanced(j + 1, "(", ")");
    std::size_t colon = 0;
    int depth = 0;
    for (std::size_t k = j + 1; k < close; ++k) {
      const std::string& x = t_[k].text;
      if (x == "(") { ++depth; continue; }
      if (x == ")") { --depth; continue; }
      if (x == ":" && depth == 1) { colon = k; break; }
    }
    if (colon == 0) return;
    std::string loop_var;
    for (std::size_t k = colon; k-- > j + 2;) {
      if (is_ident(k)) { loop_var = t_[k].text; break; }
    }
    if (loop_var.empty()) return;
    // Tainted container (or any unordered container): the iteration order
    // itself is host state.
    for (std::size_t k = colon + 1; k < close - 1; ++k) {
      if (!is_ident(k)) continue;
      const std::string& c = t_[k].text;
      if (unordered_.count(c) != 0) {
        local_.emplace(loop_var, "iteration order of unordered container '" +
                                     c + "' (" + basename_of(tu_.file) + ":" +
                                     std::to_string(t_[k].line) + ")");
        return;
      }
      if (const auto it = local_.find(c); it != local_.end()) {
        local_.emplace(loop_var, it->second);
        return;
      }
    }
  }

  void handle_assignment(std::size_t j) {
    const std::string& name = t_[j].text;
    std::size_t m = j + 1;
    while (m < fn_.body_end && text(m) == "[") m = skip_balanced(m, "[", "]");
    bool is_assign = false;
    std::size_t rhs_begin = 0;
    if (text(m) == "=" && text(m + 1) != "=") {
      is_assign = true;
      rhs_begin = m + 1;
    } else {
      static const std::set<std::string> kCompound = {"+", "-", "*", "/",
                                                      "%", "&", "|", "^"};
      if (kCompound.count(text(m)) != 0 && text(m + 1) == "=" &&
          text(m + 2) != "=") {
        is_assign = true;
        rhs_begin = m + 2;
      }
    }
    if (!is_assign) return;
    uninit_.erase(name);
    const std::size_t rhs_end = statement_end(rhs_begin);
    const TaintEval v = eval(rhs_begin, rhs_end);
    if (!v.tainted()) return;
    local_.emplace(name, v.prov);
    // Cross-function propagation through member ("name_") and shared
    // variables.
    if (members_.count(name) != 0) {
      st_.add_var(name, v.prov + " -> stored in '" + name + "' (" +
                            basename_of(tu_.file) + ":" +
                            std::to_string(t_[j].line) + ")");
    }
  }

  void scan() {
    static const std::set<std::string> kNotValue = {
        "if",     "for",   "while",  "switch", "return", "sizeof",
        "catch",  "new",   "delete", "throw",  "else",   "do",
        "case",   "break", "continue"};
    for (std::size_t j = fn_.body_begin;
         j < fn_.body_end && j < t_.size(); ++j) {
      if (!is_ident(j)) continue;
      const std::string& x = t_[j].text;
      if (x == "for" && text(j + 1) == "(") {
        handle_range_for(j);
        continue;
      }
      if ((x == "if" || x == "while") && text(j + 1) == "(") {
        handle_branch(j);
        continue;
      }
      if (x == "return") {
        handle_return(j);
        continue;
      }
      // Uninitialized scalar local: `double x;`
      if (scalar_type_name(x) && is_ident(j + 1) && text(j + 2) == ";") {
        uninit_.insert(t_[j + 1].text);
        j += 2;
        continue;
      }
      if (kNotValue.count(x) != 0) continue;
      if (text(j + 1) == "(") {
        handle_call(j);
        continue;
      }
      handle_assignment(j);
    }
  }

  const Project& p_;
  const DefIndex& defs_;
  const TranslationUnit& tu_;
  const FunctionDecl& fn_;
  TaintState& st_;
  const std::set<std::string>& unordered_;
  const std::set<std::string>& members_;
  std::map<std::string, SinkHit>& sinks_;
  const std::vector<Token>& t_;
  const std::string key_;
  std::map<std::string, std::string> local_;
  std::set<std::string> uninit_;
};

void taint_pass(const Project& project, const DefIndex& defs,
                std::vector<Diagnostic>& diags) {
  // Names of unordered containers (declared anywhere) and of member/shared
  // variables that carry taint across function boundaries.  Members follow
  // the repo's trailing-underscore convention, which keeps a tainted member
  // name from colliding with unrelated locals.
  std::set<std::string> unordered_names;
  std::set<std::string> member_names;
  for (const auto& tu : project.tus) {
    const auto uv = unordered_vars(tu.lex);
    unordered_names.insert(uv.begin(), uv.end());
    for (const auto& v : tu.vars) {
      for (const auto& tok : v.type) {
        if (tok.rfind("unordered_", 0) == 0) unordered_names.insert(v.name);
      }
      const bool member_like =
          v.var_scope != VarScope::class_member ||
          (!v.name.empty() && v.name.back() == '_');
      if (member_like) member_names.insert(v.name);
    }
  }

  TaintState st;
  std::map<std::string, SinkHit> sinks;
  for (int round = 0; round < 30; ++round) {
    st.grew = false;
    for (const auto& tu : project.tus) {
      for (const auto& fn : tu.functions) {
        if (!fn.is_definition) continue;
        FnTaint(project, defs, tu, fn, st, unordered_names, member_names,
                sinks)
            .run();
      }
    }
    if (!st.grew) break;
  }
  for (const auto& [k, hit] : sinks) {
    (void)k;
    report(diags, *hit.tu, hit.line, "determinism-taint", hit.symbol,
           hit.message);
  }
}

}  // namespace

const char* to_string(PartitionClass c) {
  switch (c) {
    case PartitionClass::shard: return "shard";
    case PartitionClass::lock: return "lock";
    case PartitionClass::forbid: return "forbid";
  }
  return "?";
}

void run_partition_rules(const Project& project, std::vector<Diagnostic>& diags,
                         std::vector<ManifestSite>& manifest) {
  const DefIndex defs = build_def_index(project);
  const Reachability reach = compute_reachability(project);
  shared_state_pass(project, reach, diags, manifest);
  taint_pass(project, defs, diags);
}

}  // namespace icsim_lint
