#pragma once
// icsim_lint rule packs and diagnostics.
//
// Every diagnostic carries a `symbol` — a stable, line-number-free anchor
// (the offending function, parameter, variable, or cast target) — so a
// baseline entry keeps matching while unrelated edits move lines around.

#include <string>
#include <vector>

#include "ir.hpp"

namespace icsim_lint {

struct Diagnostic {
  std::string file;
  int line = 0;
  std::string rule;
  std::string symbol;   // stable anchor for baseline matching
  std::string message;
  bool baselined = false;  // matched a baseline entry (reported, not fatal)
};

struct RuleInfo {
  const char* id;
  const char* summary;
};

/// The full catalog, in reporting order (drives --list-rules and the SARIF
/// rules array).
const std::vector<RuleInfo>& rule_catalog();

/// True if an `// icsim-lint: allow(<rule>)` comment on `line` or the line
/// above it suppresses `rule`.
bool suppressed(const LexedFile& lf, int line, const std::string& rule);

/// Append a diagnostic unless suppressed in-source.
void report(std::vector<Diagnostic>& diags, const TranslationUnit& tu, int line,
            const std::string& rule, const std::string& symbol,
            const std::string& message);

/// Legacy determinism pack (PR 3 rules, reimplemented on the IR):
/// wall-clock, unordered-iteration, raw-time-param, nodiscard-time.
void run_legacy_rules(const TranslationUnit& tu,
                      const std::set<std::string>& sibling_unordered_vars,
                      std::vector<Diagnostic>& diags);

/// Names of unordered-container variables declared in `lf` (token-level;
/// used to merge a .cpp's sibling-header declarations).
std::set<std::string> unordered_vars(const LexedFile& lf);

/// Model-safety pack: host-state-leak, parallel-purity, unit-discipline
/// (per-TU) and blocking-context (needs the project call graph).
void run_model_rules(const TranslationUnit& tu, const Project& project,
                     std::vector<Diagnostic>& diags);

/// Partition-safety classification of a shared-mutable site (docs/MODEL.md
/// §13):
///   shard  — per-partition copies are sound (no cross-partition meaning);
///   lock   — mutex-guarded and model-invisible; a lock keeps it correct;
///   forbid — the value (or the order of writes) can reach model behavior;
///            the parallel engine must not share it at all.
enum class PartitionClass { shard, lock, forbid };

[[nodiscard]] const char* to_string(PartitionClass c);

/// One shared-mutable site in the partition manifest — the certified
/// inventory the ROADMAP-item-1 parallel engine consumes.
struct ManifestSite {
  std::string variable;
  std::string var_kind;  // "namespace-scope" / "static-member" / "static-local"
  std::string type;      // declared type, tokens joined
  std::string file;
  int line = 0;
  PartitionClass cls = PartitionClass::shard;
  bool reachable = false;  // writable from an event/fiber entry point
  std::vector<std::string> call_path;  // entry -> ... -> writing function
  std::string reason;
};

/// Interprocedural partition-safety passes (dataflow.cpp): the
/// shared-state pass (call-graph walk from event/fiber entry points to
/// writes of shared mutable state, shard/lock/forbid classification) and the
/// determinism-taint pass (host-nondeterminism sources -> simulated-time
/// sinks).  Appends diagnostics and fills the manifest inventory.
void run_partition_rules(const Project& project, std::vector<Diagnostic>& diags,
                         std::vector<ManifestSite>& manifest);

/// Closure-lifetime pass (closure_lifetime.cpp): classify every capture of
/// every lambda flowing into a deferred-execution sink (Engine::post_at /
/// post_in / schedule_at / schedule_in, ParEngine::post_cross, resource
/// acquire callbacks, fiber spawn).  By-reference capture of an enclosing
/// frame variable is an error (the DES use-after-free class); a raw `this`
/// capture at a cancellable sink needs same-frame or destructor
/// cancellation; by-value captures are clean (docs/MODEL.md §15).
void run_closure_rules(const Project& project, std::vector<Diagnostic>& diags);

/// True when `file` belongs to the partitioned tier — src/par/ sources and
/// par_*-named fixtures — where sharded-by-index access to shard-classified
/// state is legal and policed by cross-shard-conformance.
[[nodiscard]] bool partition_tier(const std::string& file);

/// Shape of the subscript on a write site: `none` (unsubscripted), `simple`
/// (a single identifier or member chain, modulo casts/parens — the
/// executing-partition idiom), or `compound` (arithmetic on the index — a
/// cross-partition reach).
enum class IndexShape { none, simple, compound };
[[nodiscard]] IndexShape write_index_shape(const TranslationUnit& tu,
                                           const WriteSite& w);

/// Cross-shard-conformance pass (cross_shard.cpp): every write to a
/// shard-classified manifest site in the partitioned tier must be indexed by
/// the executing partition; every mutex-disciplined site must be written
/// only under its guarding mutex (guarded-by inference over the call
/// graph); and every post_cross delay must trace to the lookahead constant.
void run_conformance_rules(const Project& project,
                           const std::vector<ManifestSite>& manifest,
                           std::vector<Diagnostic>& diags);

}  // namespace icsim_lint
