#pragma once
// icsim_lint rule packs and diagnostics.
//
// Every diagnostic carries a `symbol` — a stable, line-number-free anchor
// (the offending function, parameter, variable, or cast target) — so a
// baseline entry keeps matching while unrelated edits move lines around.

#include <string>
#include <vector>

#include "ir.hpp"

namespace icsim_lint {

struct Diagnostic {
  std::string file;
  int line = 0;
  std::string rule;
  std::string symbol;   // stable anchor for baseline matching
  std::string message;
  bool baselined = false;  // matched a baseline entry (reported, not fatal)
};

struct RuleInfo {
  const char* id;
  const char* summary;
};

/// The full catalog, in reporting order (drives --list-rules and the SARIF
/// rules array).
const std::vector<RuleInfo>& rule_catalog();

/// True if an `// icsim-lint: allow(<rule>)` comment on `line` or the line
/// above it suppresses `rule`.
bool suppressed(const LexedFile& lf, int line, const std::string& rule);

/// Append a diagnostic unless suppressed in-source.
void report(std::vector<Diagnostic>& diags, const TranslationUnit& tu, int line,
            const std::string& rule, const std::string& symbol,
            const std::string& message);

/// Legacy determinism pack (PR 3 rules, reimplemented on the IR):
/// wall-clock, unordered-iteration, raw-time-param, nodiscard-time.
void run_legacy_rules(const TranslationUnit& tu,
                      const std::set<std::string>& sibling_unordered_vars,
                      std::vector<Diagnostic>& diags);

/// Names of unordered-container variables declared in `lf` (token-level;
/// used to merge a .cpp's sibling-header declarations).
std::set<std::string> unordered_vars(const LexedFile& lf);

/// Model-safety pack: host-state-leak, parallel-purity, unit-discipline
/// (per-TU) and blocking-context (needs the project call graph).
void run_model_rules(const TranslationUnit& tu, const Project& project,
                     std::vector<Diagnostic>& diags);

/// Partition-safety classification of a shared-mutable site (docs/MODEL.md
/// §13):
///   shard  — per-partition copies are sound (no cross-partition meaning);
///   lock   — mutex-guarded and model-invisible; a lock keeps it correct;
///   forbid — the value (or the order of writes) can reach model behavior;
///            the parallel engine must not share it at all.
enum class PartitionClass { shard, lock, forbid };

[[nodiscard]] const char* to_string(PartitionClass c);

/// One shared-mutable site in the partition manifest — the certified
/// inventory the ROADMAP-item-1 parallel engine consumes.
struct ManifestSite {
  std::string variable;
  std::string var_kind;  // "namespace-scope" / "static-member" / "static-local"
  std::string type;      // declared type, tokens joined
  std::string file;
  int line = 0;
  PartitionClass cls = PartitionClass::shard;
  bool reachable = false;  // writable from an event/fiber entry point
  std::vector<std::string> call_path;  // entry -> ... -> writing function
  std::string reason;
};

/// Interprocedural partition-safety passes (dataflow.cpp): the
/// shared-state pass (call-graph walk from event/fiber entry points to
/// writes of shared mutable state, shard/lock/forbid classification) and the
/// determinism-taint pass (host-nondeterminism sources -> simulated-time
/// sinks).  Appends diagnostics and fills the manifest inventory.
void run_partition_rules(const Project& project, std::vector<Diagnostic>& diags,
                         std::vector<ManifestSite>& manifest);

}  // namespace icsim_lint
