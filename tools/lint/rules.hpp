#pragma once
// icsim_lint rule packs and diagnostics.
//
// Every diagnostic carries a `symbol` — a stable, line-number-free anchor
// (the offending function, parameter, variable, or cast target) — so a
// baseline entry keeps matching while unrelated edits move lines around.

#include <string>
#include <vector>

#include "ir.hpp"

namespace icsim_lint {

struct Diagnostic {
  std::string file;
  int line = 0;
  std::string rule;
  std::string symbol;   // stable anchor for baseline matching
  std::string message;
  bool baselined = false;  // matched a baseline entry (reported, not fatal)
};

struct RuleInfo {
  const char* id;
  const char* summary;
};

/// The full catalog, in reporting order (drives --list-rules and the SARIF
/// rules array).
const std::vector<RuleInfo>& rule_catalog();

/// True if an `// icsim-lint: allow(<rule>)` comment on `line` or the line
/// above it suppresses `rule`.
bool suppressed(const LexedFile& lf, int line, const std::string& rule);

/// Append a diagnostic unless suppressed in-source.
void report(std::vector<Diagnostic>& diags, const TranslationUnit& tu, int line,
            const std::string& rule, const std::string& symbol,
            const std::string& message);

/// Legacy determinism pack (PR 3 rules, reimplemented on the IR):
/// wall-clock, unordered-iteration, raw-time-param, nodiscard-time.
void run_legacy_rules(const TranslationUnit& tu,
                      const std::set<std::string>& sibling_unordered_vars,
                      std::vector<Diagnostic>& diags);

/// Names of unordered-container variables declared in `lf` (token-level;
/// used to merge a .cpp's sibling-header declarations).
std::set<std::string> unordered_vars(const LexedFile& lf);

/// Model-safety pack: host-state-leak, parallel-purity, unit-discipline
/// (per-TU) and blocking-context (needs the project call graph).
void run_model_rules(const TranslationUnit& tu, const Project& project,
                     std::vector<Diagnostic>& diags);

}  // namespace icsim_lint
