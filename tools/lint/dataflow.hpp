#pragma once
// Interprocedural dataflow layer for the partition-safety passes
// (shared-state and determinism-taint) — see rules.hpp for the public entry
// point run_partition_rules() and docs/MODEL.md §13 for the model.
//
// Everything here is a heuristic over the token-level IR (ir.hpp): name-based
// call resolution, name-based variable matching, first-wins provenance.  The
// passes are deliberately conservative in what they *track* (sets only grow,
// provenance is immutable once recorded) so the fixpoint terminates and the
// diagnostic output is deterministic for a given source tree.

#include <map>
#include <set>
#include <string>
#include <vector>

#include "ir.hpp"

namespace icsim_lint {

/// Reachability from event/fiber entry points over the project call graph.
/// Entry points are (a) the callees of every lambda posted to
/// Engine::post_at / post_in / schedule_at / schedule_in (code that runs on
/// the event loop), (b) every definition named `progress` (the MPI progress
/// engines), and (c) every method of `Fabric` (chunk serialization — the
/// code a partitioned engine runs concurrently per partition).
struct Reachability {
  /// node -> BFS parent ("" for a root).  Presence means reachable.
  std::map<std::string, std::string> parent;
  /// node -> entry label ("handler@file:line" or the seed's own key).
  std::map<std::string, std::string> entry;

  [[nodiscard]] bool contains(const std::string& key) const {
    return parent.count(key) != 0;
  }
  /// Entry label followed by the call chain down to `key`.
  [[nodiscard]] std::vector<std::string> path_to(const std::string& key) const;
};

/// Compute reachability over Project::call_graph (definitions only).
[[nodiscard]] Reachability compute_reachability(const Project& project);

}  // namespace icsim_lint
