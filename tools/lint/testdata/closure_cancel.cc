// Detection fixture for the closure-lifetime this-capture rule: a
// cancellable event (schedule_at / schedule_in returns an EventHandle)
// armed with `this` but never cancelled — destroying the owner leaves a
// live event holding a dangling this.  The clean counterparts (same-frame
// cancel, destructor cancel) live in closure_clean.cc.  Never compiled —
// it exists for the `lint_detects_closure_cancel` ctest case.
#include "sim/engine.hpp"
#include "sim/time.hpp"

namespace fixture {

class Retry {
 public:
  void arm(icsim::sim::Engine& engine);
  void arm_implicit(icsim::sim::Engine& engine, icsim::sim::Time deadline);

 private:
  void fire();
  int attempts_ = 0;
};

// [this] into schedule_in, handle discarded, no ~Retry() anywhere: nothing
// ties the event's lifetime to the object's.
void Retry::arm(icsim::sim::Engine& engine) {
  engine.schedule_in(icsim::sim::Time::us(5), [this] { fire(); });
}

// [=] in a member function captures `this` implicitly — same hazard, one
// token harder to see in review.
void Retry::arm_implicit(icsim::sim::Engine& engine,
                         icsim::sim::Time deadline) {
  engine.schedule_at(deadline, [=] { fire(); });
}

}  // namespace fixture
