// Lint fixture: blocking-context must fire on fiber-blocking work reached
// from engine event-handler lambdas.  Never compiled — it exists for the
// `lint_detects_blocking_context` ctest case.
#include "sim/blocking.hpp"
#include "sim/engine.hpp"

namespace fixture {

class Retransmitter {
 public:
  explicit Retransmitter(icsim::sim::Engine& engine) : engine_(engine) {}

  // Transitively blocking: charges simulated time on the current fiber.
  void charge(icsim::sim::Time t) { icsim::sim::sleep_for(engine_, t); }

  void arm(icsim::sim::Time timeout) {
    // Handler lambdas run on the engine's event loop, outside any fiber:
    // both the direct sleep and the transitive charge() must be flagged.
    engine_.post_in(timeout, [this, timeout] {
      icsim::sim::sleep_for(engine_, timeout);  // blocking-context
    });
    engine_.schedule_in(timeout, [this, timeout] {
      charge(timeout);                          // blocking-context
    });
  }

 private:
  icsim::sim::Engine& engine_;
};

}  // namespace fixture
