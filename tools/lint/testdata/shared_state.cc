// Regression fixture for the interprocedural shared-state pass: mutable
// shared state written on the event path, one site per classification that
// must block the parallel DES engine.  `g_chunks_in_flight` is plain shared
// state (per-partition copies would be sound => `shard`); `g_last_arrival`
// is model-visible sim::Time (the value can steer simulated time from any
// partition => `forbid`).  Both writes sit behind a call chain rooted in an
// event-handler lambda, so the pass has to walk the call graph — a per-TU
// scan would see neither.  Never compiled — it exists for the
// `lint_detects_shared_state` ctest case.
#include <cstdint>

#include "sim/engine.hpp"
#include "sim/time.hpp"

namespace fixture {

std::uint64_t g_chunks_in_flight = 0;  // shard: plain counter

icsim::sim::Time g_last_arrival;  // forbid: model-visible type

class Port {
 public:
  void arm(icsim::sim::Engine& engine, icsim::sim::Time t) {
    engine.post_in(t, [this] { on_deliver(); });
  }

 private:
  void on_deliver() {
    account();
    g_last_arrival = deadline_;
  }
  void account() { g_chunks_in_flight += 1; }

  icsim::sim::Time deadline_;
};

}  // namespace fixture
