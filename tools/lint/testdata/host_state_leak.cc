// Lint fixture: every host-state-leak pattern must fire.  Never compiled —
// it exists for the `lint_detects_host_state_leak` ctest case.
#include <cstdint>
#include <functional>
#include <map>
#include <set>
#include <unordered_map>

#include "sim/rng.hpp"
#include "sim/time.hpp"

namespace fixture {

struct Region {
  std::uint64_t bytes = 0;
};

struct PinTracker {
  // (a) containers keyed by host pointers: iteration order / hash placement
  //     depends on ASLR and the allocator.
  std::map<void*, Region> by_addr;                  // host-state-leak
  std::set<const Region*> live;                     // host-state-leak
  std::unordered_map<char*, int> slots;             // host-state-leak

  // (b) pointer value materialized as an integer.
  std::uint64_t key_of(const Region* r) {
    return reinterpret_cast<std::uint64_t>(r);      // host-state-leak
  }

  // (c) hashing the host address itself.
  std::size_t place(Region* r) const {
    return std::hash<Region*>{}(r);                 // host-state-leak
  }

  // (d) folding an object address into an RNG seed / digest.
  void reseed(icsim::sim::Rng& rng, Region& r) {
    rng.seed(&r);                                   // host-state-leak
  }
};

}  // namespace fixture
