// Near-miss fixture for the closure-lifetime pass: every sanctioned idiom
// adjacent to the closure_uaf.cc / closure_cancel.cc shapes, all of which
// must scan clean (exit 0).  Exercised by
// `lint_closure_clean_fixture_passes`.
#include <cstdint>
#include <utility>

#include "sim/engine.hpp"
#include "sim/time.hpp"

namespace fixture {

struct Request {
  bool complete;
  void finish();
};

// By-value capture: the closure owns its copy of the frame state.
void arm_value(icsim::sim::Engine& engine, int budget) {
  int snapshot = budget;
  engine.post_in(icsim::sim::Time::us(1), [snapshot] { (void)snapshot; });
}

// [rp = &req] where `req` is a reference parameter: the pointer targets the
// caller-owned referent, not this frame — the sanctioned fix idiom for the
// watchdog shape (the arming frame cancels or outlives it by contract).
void arm_watchdog(icsim::sim::Engine& engine, Request& req) {
  icsim::sim::EventHandle wd =
      engine.schedule_in(icsim::sim::Time::us(9), [rp = &req] {
        if (!rp->complete) rp->finish();
      });
  wd.cancel();
}

// A named by-value lambda moved into the sink later in the body.
void arm_named(icsim::sim::Engine& engine, std::uint64_t bytes) {
  auto done = [bytes] { (void)bytes; };
  engine.post_in(icsim::sim::Time::us(3), std::move(done));
}

class Pump {
 public:
  void kick(icsim::sim::Engine& engine);
  void probe(icsim::sim::Engine& engine, icsim::sim::Time deadline);

 private:
  void drain();
  int level_ = 0;
};

// [this] at a fire-and-forget sink: ownership convention — handler objects
// outlive the queue drain (clean.cc exercises the same shape inline).
void Pump::kick(icsim::sim::Engine& engine) {
  engine.post_in(icsim::sim::Time::us(2), [this] { drain(); });
}

// [this] at a cancellable sink, but the arming frame keeps the handle and
// cancels it before returning.
void Pump::probe(icsim::sim::Engine& engine, icsim::sim::Time deadline) {
  icsim::sim::EventHandle h = engine.schedule_at(deadline, [this] { drain(); });
  drain();
  h.cancel();
}

class Watchdog {
 public:
  ~Watchdog();
  void arm(icsim::sim::Engine& engine);

 private:
  void expire();
  icsim::sim::EventHandle handle_;
};

// [this] at a cancellable sink with the handle stored on the owner: the
// destructor-cancel pairing ties the event's lifetime to the object's.
void Watchdog::arm(icsim::sim::Engine& engine) {
  handle_ = engine.schedule_in(icsim::sim::Time::us(50), [this] { expire(); });
}

Watchdog::~Watchdog() { handle_.cancel(); }

}  // namespace fixture
