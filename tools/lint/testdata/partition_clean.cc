// Near-miss fixture for the partition-safety passes: shapes adjacent to
// shared_state.cc and taint_regcache.cc that must NOT fire any rule.
// Exercised by `lint_partition_clean_fixture_passes` (exit 0).
#include <cstdint>
#include <map>
#include <mutex>

#include "sim/engine.hpp"
#include "sim/time.hpp"

namespace fixture {

std::mutex g_meter_mutex;

class Meter {
 public:
  // Mutex-guarded static local written from an event handler: the
  // shared-state pass classifies it `lock` — a manifest entry, not a
  // diagnostic.
  void bump() {
    std::lock_guard<std::mutex> lk(g_meter_mutex);
    static std::uint64_t posted_events = 0;
    posted_events += 1;
  }
  void arm(icsim::sim::Engine& engine, icsim::sim::Time t) {
    engine.post_in(t, [this] { bump(); });
  }
};

// Guarded-by inference clean counterpart to lock_unguarded.cc: the helper
// never locks g_audit_mutex itself, but its only caller holds the lock
// across the call — the caller-holds fixpoint in cross-shard-conformance
// must mark it guarded, not racy.
std::mutex g_audit_mutex;
// icsim-lint: allow(parallel-purity)
long g_audit_rows = 0;

void audit_append_held(long n) { g_audit_rows += n; }

void audit_append(long n) {
  std::lock_guard<std::mutex> lk(g_audit_mutex);
  g_audit_rows += 1;
  audit_append_held(n - 1);
}

// The PR 4 fix shape: the registration cache keyed by the deterministic
// logical envelope id, so hit/miss — and the charged latency — is a pure
// function of the scenario.  Same control flow as TaintedRegCache, but no
// taint source feeds the key, so the branch sink must stay quiet.
class LogicalRegCache {
 public:
  [[nodiscard]] icsim::sim::Time pin(std::uint64_t envelope_id) {
    auto it = cache_.find(envelope_id);
    if (it != cache_.end()) {
      return icsim::sim::Time::zero();
    }
    cache_[envelope_id] = 1;
    return icsim::sim::Time::us(9);
  }

 private:
  std::map<std::uint64_t, int> cache_;
};

}  // namespace fixture
