// Detection fixture for the guarded-by inference in the
// cross-shard-conformance pass: two writers of the same shared counter, one
// takes the adjacent mutex, the other races.  The inferred guard
// (`g_stats_mu`, because an actual writer locks it) makes the unguarded
// writer a finding — the lock classification in the manifest would be
// unsound.  The clean counterpart (caller-holds-the-lock) lives in
// partition_clean.cc.  Never compiled — exists for
// `lint_detects_unguarded_write`.
#include <cstdint>
#include <mutex>

#include "sim/engine.hpp"
#include "sim/time.hpp"

namespace fixture {

std::mutex g_stats_mu;
std::uint64_t g_total_bytes = 0;

void account_locked(std::uint64_t n) {
  std::lock_guard<std::mutex> lk(g_stats_mu);
  g_total_bytes += n;
}

// Same site, no lock: the racy writer the inference must catch.
void account_racy(std::uint64_t n) {
  g_total_bytes += n;
}

void arm(icsim::sim::Engine& engine) {
  engine.post_in(icsim::sim::Time::us(2), [] { account_locked(64); });
  engine.post_in(icsim::sim::Time::us(3), [] { account_racy(64); });
}

}  // namespace fixture
