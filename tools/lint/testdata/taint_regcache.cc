// Regression fixture for the determinism-taint pass: the PR 4 MVAPICH
// registration-cache bug distilled to its dataflow skeleton.  The host
// virtual address of the application buffer becomes the cache key
// (reinterpret_cast source, in a helper); cache hit/miss — a function of
// ASLR and the allocator, not the scenario — then selects the pinning
// latency charged to sim::Time (branch sink).  Unlike the token-level
// regcache_bug.cc fixture, nothing here keys a container on a raw pointer
// type: the leak only appears once taint is tracked through key_of()'s
// return value into the branch condition, so this is the interprocedural
// pass's job.  The exit-code driver also asserts this scan exits exactly 1.
// Never compiled — it exists for the `lint_detects_determinism_taint` case.
#include <cstdint>
#include <map>

#include "sim/time.hpp"

namespace fixture {

class TaintedRegCache {
 public:
  [[nodiscard]] icsim::sim::Time pin(const void* host_buf) {
    const std::uint64_t key = key_of(host_buf);
    if (pinned_.count(key) != 0) {
      return icsim::sim::Time::zero();  // hit: already registered
    }
    pinned_[key] = 1;
    return icsim::sim::Time::us(9);  // miss: pin-down cost
  }

 private:
  // Source: the pointer VALUE becomes model-visible data.
  static std::uint64_t key_of(const void* host_buf) {
    return reinterpret_cast<std::uint64_t>(host_buf);
  }

  std::map<std::uint64_t, int> pinned_;
};

}  // namespace fixture
