// Lint fixture: one violation per model-safety rule, each silenced with an
// `icsim-lint: allow(<rule>)` comment — the scan must exit 0.  Never
// compiled — it exists for the `lint_suppressed_fixture_passes` ctest case.
#include <cstdint>
#include <map>

#include "sim/blocking.hpp"
#include "sim/engine.hpp"
#include "sim/time.hpp"

namespace fixture {

// icsim-lint: allow(host-state-leak)
std::map<void*, int> g_pin_table;  // icsim-lint: allow(parallel-purity)

class Knobs {
 public:
  // icsim-lint: allow(unit-discipline)
  void set_timeout(std::int64_t timeout_us);

  void arm(icsim::sim::Engine& engine, icsim::sim::Time t) {
    // icsim-lint: allow(closure-lifetime)
    engine.post_in(t, [this, &engine, t] {
      // icsim-lint: allow(blocking-context)
      icsim::sim::sleep_for(engine, t);
    });
  }
};

}  // namespace fixture
