// Regression fixture: the exact shape of the PR 4 MVAPICH registration-cache
// bug, which keyed pinned regions on host buffer addresses.  Cache hit/miss
// — and therefore the pinning latency charged to sim::Time — depended on
// ASLR and allocator layout, so identical (scenario, seed) runs produced
// different event digests.  The fix keyed the cache on a deterministic
// logical-buffer envelope id; the analyzer must catch any reintroduction.
// Never compiled — it exists for the `lint_detects_regcache_bug` ctest case.
#include <cstdint>
#include <list>
#include <map>

#include "sim/time.hpp"

namespace fixture {

class BadRegCache {
 public:
  // Hit: the buffer is already pinned, charge nothing.  Miss: charge the
  // registration cost.  Keying on the host pointer makes that choice — and
  // the returned sim::Time — a function of the allocator, not the scenario.
  icsim::sim::Time pin(const void* buf, std::uint64_t len) {
    auto it = cache_.find(buf);
    if (it != cache_.end() && it->second.len >= len) {
      touch(it);
      return icsim::sim::Time::zero();
    }
    cache_[buf] = Entry{len};
    return reg_base_cost_ + reg_per_page_ * static_cast<std::int64_t>(
                                len / page_bytes_ + 1);
  }

 private:
  struct Entry {
    std::uint64_t len = 0;
  };

  void touch(std::map<const void*, Entry>::iterator it);   // host-state-leak

  std::map<const void*, Entry> cache_;                     // host-state-leak
  std::list<const void*> lru_;
  std::uint64_t page_bytes_ = 4096;
  icsim::sim::Time reg_base_cost_;
  icsim::sim::Time reg_per_page_;
};

}  // namespace fixture
