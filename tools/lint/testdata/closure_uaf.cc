// Detection fixture for the closure-lifetime pass: every shape here captures
// the enclosing frame into a closure whose execution is deferred past the
// frame's lifetime — the canonical DES use-after-free.  Never compiled — it
// exists for the `lint_detects_closure_lifetime` ctest case.
#include <cstdint>
#include <memory>
#include <utility>

#include "par/par_engine.hpp"
#include "sim/engine.hpp"
#include "sim/fiber.hpp"
#include "sim/time.hpp"

namespace fixture {

void consume(int n);

// [&x] on a stack local: `pending` dies when arm_counter() returns; the
// event fires later and scribbles on a dead frame.
void arm_counter(icsim::sim::Engine& engine) {
  int pending = 0;
  engine.post_in(icsim::sim::Time::us(1), [&pending] { pending += 1; });
}

struct Stats {
  int hits;
};

// [s = &x] materializes a pointer to the dying frame — by-value init-capture
// syntax, by-reference lifetime.
void arm_pointer(icsim::sim::Engine& engine, icsim::sim::Time t) {
  Stats local{};
  engine.post_at(t, [s = &local] { s->hits += 1; });
}

// [&] default capture: the body's use of `budget` is what dangles.
void arm_default(icsim::sim::Engine& engine, int budget) {
  engine.post_in(icsim::sim::Time::us(2), [&] { consume(budget); });
}

// Named lambda handed to post_cross later in the body (the forward shape):
// the pass must resolve `std::move(cont)` back to its capture list.  The
// delay routes through lookahead(), so only closure-lifetime fires here.
void forward_credit(icsim::par::ParEngine& eng, std::uint32_t from,
                    std::uint32_t to) {
  int credits = 4;
  auto cont = [&credits] { credits -= 1; };
  eng.post_cross(from, to, eng.lookahead(), std::move(cont));
}

// Fiber bodies outlive the arming frame exactly like posted closures.
std::unique_ptr<icsim::sim::Fiber> spawn_worker() {
  int steps = 0;
  return std::make_unique<icsim::sim::Fiber>([&steps] { steps += 1; });
}

}  // namespace fixture
