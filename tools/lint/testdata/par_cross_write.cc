// Detection fixture for the cross-shard-conformance pass (the `par_`
// filename prefix puts it in the partitioned tier).  Two violations:
//
//   * a write to a shard-classified manifest site whose index does
//     arithmetic on the executing-partition id — partition `self` mutating
//     partition `self + 1`'s slot is a cross-partition write that bypasses
//     post_cross();
//   * a post_cross() whose delay is a bare constant instead of dataflowing
//     from the lookahead window — the conservative-parallel safety argument
//     only holds when every cross-partition event is at least one lookahead
//     ahead.
//
// Never compiled — exists for `lint_detects_cross_shard_write`.
#include <cstdint>
#include <vector>

#include "par/par_engine.hpp"
#include "sim/engine.hpp"
#include "sim/time.hpp"

namespace fixture {

// Per-partition credit counters: `shard` in the manifest.
std::vector<std::uint64_t> g_credits;

// Reached from the handler below; writes a *neighbour's* slot.
void credit_neighbor(std::uint32_t self, std::uint64_t n) {
  g_credits[self + 1] += n;
}

void arm(icsim::sim::Engine& engine, std::uint32_t self) {
  engine.post_in(icsim::sim::Time::us(1), [self] { credit_neighbor(self, 1); });
}

// Hand-rolled 40ns hop instead of the lookahead accessor: even if the value
// happens to be safe today, nothing ties it to wire+switch latency when the
// config changes.
void forward_bad(icsim::par::ParEngine& eng, std::uint32_t from,
                 std::uint32_t to) {
  const icsim::sim::Time hop = icsim::sim::Time::ns(40);
  eng.post_cross(from, to, hop, [] {});
}

}  // namespace fixture
