// Lint fixture: every parallel-purity pattern must fire.  Never compiled —
// it exists for the `lint_detects_parallel_purity` ctest case.
#include <cstdint>
#include <string>

namespace fixture {

// Namespace-scope mutables: shared across the sweep driver's worker threads.
int g_run_counter = 0;                    // parallel-purity
std::string g_last_scenario;              // parallel-purity

struct Registry {
  // Mutable static class member: same hazard with extra steps.
  static std::uint64_t live_instances;    // parallel-purity

  int lookup(int id) {
    // Unguarded function-local static: lazily-built shared cache.
    static int cache[64];                 // parallel-purity
    return cache[id & 63];
  }
};

}  // namespace fixture
