// Lint fixture: every unit-discipline pattern must fire.  Never compiled —
// it exists for the `lint_detects_unit_discipline` ctest case.
#include <cstdint>

#include "sim/time.hpp"

namespace fixture {

class LinkModel {
 public:
  // Integer-smuggled durations and rates in public signatures.
  void set_timeout(std::int64_t timeout_us);         // unit-discipline
  void set_latency(std::uint64_t wire_ns);           // unit-discipline
  void set_rate(std::uint64_t link_gbps);            // unit-discipline
  // Fractional byte count.
  void reserve(double window_bytes);                 // unit-discipline

  // Round-trip: Time exported to double and fed back into a Time factory.
  icsim::sim::Time scaled(icsim::sim::Time d, double k) {
    return icsim::sim::Time::sec(d.to_seconds() * k);  // unit-discipline
  }
};

}  // namespace fixture
