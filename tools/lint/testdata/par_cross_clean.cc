// Near-miss fixture for the cross-shard-conformance pass: the partitioned
// tier done right, adjacent to every par_cross_write.cc shape.  Must scan
// clean (exit 0) — notably the shard-classified write below is exactly the
// shape the shared-state pass exempts once the index reduces to the
// executing partition.  Exercised by `lint_par_cross_clean_fixture_passes`.
#include <cstdint>
#include <vector>

#include "par/par_engine.hpp"
#include "sim/engine.hpp"
#include "sim/time.hpp"

namespace fixture {

// Per-partition slot counters: `shard` in the manifest, and every write is
// subscripted by the executing partition itself.  The per-TU
// parallel-purity rule cannot see that; in the partitioned tier the
// manifest plus the cross-shard-conformance pass police this state.
// icsim-lint: allow(parallel-purity)
std::vector<std::uint64_t> g_slots;

void bump_slot(std::uint32_t self, std::uint64_t n) {
  g_slots[self] += n;
}

// Casts and parens around the executing-partition index are transparent.
void bump_slot_cast(std::uint32_t self) {
  g_slots[static_cast<std::size_t>(self)] += 1;
}

void arm(icsim::sim::Engine& engine, std::uint32_t self) {
  engine.post_in(icsim::sim::Time::us(1), [self] { bump_slot(self, 1); });
}

// Cross-partition traffic routes through post_cross with the delay
// dataflowing from the lookahead accessor — through a local, which the
// provenance scan must follow.
void forward(icsim::par::ParEngine& eng, std::uint32_t from,
             std::uint32_t to) {
  const icsim::sim::Time arrival = eng.now() + eng.lookahead();
  eng.post_cross(from, to, arrival, [] {});
}

// wire + switch latency is the lookahead constant by definition.
void forward_terms(icsim::par::ParEngine& eng, std::uint32_t from,
                   std::uint32_t to, icsim::sim::Time wire_latency,
                   icsim::sim::Time switch_latency) {
  eng.post_cross(from, to, wire_latency + switch_latency, [] {});
}

}  // namespace fixture
