// Lint fixture: near-miss patterns that must NOT fire any rule.  Never
// compiled — it exists for the `lint_clean_fixture_passes` ctest case and
// the exit-code contract (clean scan => exit 0).
#include <cstdint>
#include <map>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "sim/blocking.hpp"
#include "sim/engine.hpp"
#include "sim/time.hpp"

namespace fixture {

// Immutable / thread-confined / synchronized globals are all fine.
constexpr int kMaxRanks = 4096;
const char* const kSuiteName = "clean";
thread_local int tls_scratch = 0;
std::mutex g_registry_mutex;

struct Stable {
  // Keyed by a deterministic logical id, not a host pointer.
  std::map<std::uint64_t, int> by_id;
  // Pointer VALUES as mapped type are harmless; only pointer KEYS leak.
  std::unordered_map<std::uint64_t, const Stable*> peers;

  // Lookup by key: no order-dependent traversal of the unordered map.
  int lookup(std::uint64_t id) const {
    auto it = peers.find(id);
    return it == peers.end() ? 0 : 1;
  }

  int cached(int id) {
    // Guarded static local: the mutex makes the shared cache safe.
    std::lock_guard<std::mutex> lk(g_registry_mutex);
    static std::vector<int> cache;
    if (cache.empty()) cache.resize(64);
    return cache[id & 63];
  }
};

// Integer-to-pointer casts do not materialize an address as model state.
inline Stable* from_cookie(std::uintptr_t cookie) {
  return reinterpret_cast<Stable*>(cookie);
}

// Integer byte counts and typed durations are the approved vocabulary.
class Shaper {
 public:
  void reserve(std::uint64_t capacity_bytes);
  void configure(icsim::sim::Time timeout, icsim::sim::Bandwidth rate);

  // Scaling a Time directly never leaves picosecond space.
  [[nodiscard]] icsim::sim::Time backoff(icsim::sim::Time base, int attempt) {
    return base * (attempt + 1);
  }

  // Non-blocking work may be posted to the engine queue; a blocking
  // `charge` elsewhere in the project must not taint this plain call,
  // which resolves to Shaper::charge (same-class preference).
  void arm(icsim::sim::Engine& engine, icsim::sim::Time t) {
    engine.post_in(t, [this] { charge(); });
  }
  void charge() { ++armed_; }

 private:
  int armed_ = 0;
};

// A different class whose same-named member really blocks: without
// owner-aware resolution this definition would poison Shaper::charge.
class FiberShaper {
 public:
  explicit FiberShaper(icsim::sim::Engine& engine) : engine_(engine) {}
  void charge() { icsim::sim::sleep_for(engine_, icsim::sim::Time::us(1)); }

 private:
  icsim::sim::Engine& engine_;
};

}  // namespace fixture
