// Lint fixture: every rule must fire at least once in this file.  Never
// compiled — it only exists for the `lint_detects_violations` ctest case.
#include <chrono>
#include <cstdlib>
#include <ctime>
#include <random>
#include <unordered_map>

#include "sim/time.hpp"

namespace fixture {

// wall-clock: global entropy and wall-clock reads.
inline int bad_entropy() {
  std::random_device rd;                            // wall-clock
  const auto t = std::time(nullptr);                // wall-clock
  const auto wc = std::chrono::system_clock::now(); // wall-clock
  (void)wc;
  return rand() + static_cast<int>(t) + static_cast<int>(rd());  // wall-clock
}

// wall-clock suppression must work:
inline unsigned ok_entropy() {
  return static_cast<unsigned>(rand());  // icsim-lint: allow(wall-clock)
}

struct State {
  std::unordered_map<int, int> table;

  // unordered-iteration: order-dependent traversal of a hash map.
  int bad_sum() const {
    int s = 0;
    for (const auto& [k, v] : table) s += v;  // unordered-iteration
    return s;
  }

  int bad_iter_sum() const {
    int s = 0;
    for (auto it = table.begin(); it != table.end(); ++it) s += it->second;
    return s;
  }

  // Lookup (no traversal) is fine:
  int ok_lookup(int k) const {
    auto it = table.find(k);
    return it == table.end() ? 0 : it->second;
  }
};

// raw-time-param: durations must be sim::Time, rates sim::Bandwidth.
inline void bad_sleep(double seconds) { (void)seconds; }          // raw-time-param
inline void bad_link(float link_bandwidth) { (void)link_bandwidth; }  // raw-time-param
inline void ok_sleep(icsim::sim::Time d) { (void)d; }

// nodiscard-time: Time-returning declaration without [[nodiscard]].
icsim::sim::Time bad_cost();
[[nodiscard]] icsim::sim::Time ok_cost();

}  // namespace fixture
