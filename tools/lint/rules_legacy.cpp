// The four PR 3 determinism rules, reimplemented on the analyzer IR.
// Inline `// icsim-lint: allow(<rule>)` suppressions carry over unchanged.

#include <set>

#include "rules.hpp"

namespace icsim_lint {

namespace {

bool path_contains(const std::string& path, const char* needle) {
  return path.find(needle) != std::string::npos;
}

// ---------------------------------------------------------------------------
// Rule: wall-clock

const std::set<std::string> kClockFunctions = {
    "time",   "clock",        "rand",          "srand",        "random",
    "gettimeofday", "clock_gettime", "timespec_get", "ftime", "localtime",
    "gmtime",
};
const std::set<std::string> kClockTypes = {
    "random_device", "system_clock", "high_resolution_clock", "steady_clock",
};

void rule_wall_clock(const TranslationUnit& tu, std::vector<Diagnostic>& diags) {
  // sim/rng is the one sanctioned randomness boundary.
  if (path_contains(tu.file, "sim/rng")) return;
  const auto& t = tu.lex.tokens;
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (t[i].kind != TokKind::identifier) continue;
    const bool member_access =
        i > 0 && (t[i - 1].text == "." || t[i - 1].text == "->");
    if (member_access) continue;  // obj.time() is a model method, not ::time
    if (kClockTypes.count(t[i].text) != 0) {
      report(diags, tu, t[i].line, "wall-clock", t[i].text,
             "'" + t[i].text +
                 "' is a nondeterministic entropy/clock source; derive all "
                 "randomness from a seeded sim::Rng (sim/rng.hpp)");
      continue;
    }
    if (kClockFunctions.count(t[i].text) != 0 && i + 1 < t.size() &&
        t[i + 1].text == "(") {
      report(diags, tu, t[i].line, "wall-clock", t[i].text,
             "call to '" + t[i].text +
                 "()' reads wall-clock/global-entropy state; simulated time "
                 "is Engine::now() and randomness is sim::Rng");
    }
  }
}

// ---------------------------------------------------------------------------
// Rule: unordered-iteration

const std::set<std::string> kUnorderedTypes = {
    "unordered_map", "unordered_set", "unordered_multimap", "unordered_multiset"};

void rule_unordered_iteration(const TranslationUnit& tu,
                              const std::set<std::string>& header_vars,
                              std::vector<Diagnostic>& diags) {
  const auto& t = tu.lex.tokens;
  std::set<std::string> vars = unordered_vars(tu.lex);
  vars.insert(header_vars.begin(), header_vars.end());
  if (vars.empty()) return;
  for (std::size_t i = 0; i + 2 < t.size(); ++i) {
    // Range-for whose range expression names an unordered container.
    if (t[i].text == "for" && t[i + 1].text == "(") {
      int depth = 0;
      std::size_t colon = 0;
      for (std::size_t j = i + 1; j < t.size(); ++j) {
        if (t[j].text == "(") ++depth;
        if (t[j].text == ")") {
          --depth;
          if (depth == 0) break;
        }
        if (t[j].text == ":" && depth == 1) {
          colon = j;
          break;
        }
        if (t[j].text == ";" && depth == 1) break;  // classic for
      }
      if (colon != 0) {
        int depth2 = 1;
        for (std::size_t j = colon + 1; j < t.size() && depth2 > 0; ++j) {
          if (t[j].text == "(") ++depth2;
          if (t[j].text == ")") {
            --depth2;
            if (depth2 == 0) break;
          }
          if (t[j].kind == TokKind::identifier && vars.count(t[j].text) != 0) {
            report(diags, tu, t[j].line, "unordered-iteration", t[j].text,
                   "range-for over unordered container '" + t[j].text +
                       "': hash iteration order is implementation-defined and "
                       "makes event emission order nondeterministic; use "
                       "std::map / sorted traversal");
            break;
          }
        }
      }
    }
    // Explicit iterator walk: var.begin() / var.cbegin() / var.rbegin().
    if (t[i].kind == TokKind::identifier && vars.count(t[i].text) != 0 &&
        (t[i + 1].text == "." || t[i + 1].text == "->") && i + 3 < t.size() &&
        (t[i + 2].text == "begin" || t[i + 2].text == "cbegin" ||
         t[i + 2].text == "rbegin") &&
        t[i + 3].text == "(") {
      report(diags, tu, t[i].line, "unordered-iteration", t[i].text,
             "iterator traversal of unordered container '" + t[i].text +
                 "' is order-nondeterministic; use std::map / sorted traversal");
    }
  }
}

// ---------------------------------------------------------------------------
// Rule: raw-time-param (now on parsed parameter lists)

bool timeish_name(const std::string& name) {
  static const std::set<std::string> exact = {
      "time",     "seconds", "sec",      "secs",    "usec",  "usecs",
      "nsec",     "msec",    "delay",    "latency", "timeout",
      "duration", "interval", "period",  "elapsed", "bandwidth", "rate_bps",
  };
  if (exact.count(name) != 0) return true;
  static const std::vector<std::string> suffixes = {
      "_time", "_seconds", "_sec", "_secs", "_us", "_ns", "_ms",
      "_latency", "_delay", "_timeout", "_duration", "_bandwidth", "_bps",
  };
  for (const auto& s : suffixes) {
    if (name.size() > s.size() &&
        name.compare(name.size() - s.size(), s.size(), s) == 0) {
      return true;
    }
  }
  return false;
}

void rule_raw_time_param(const TranslationUnit& tu,
                         std::vector<Diagnostic>& diags) {
  // sim/time.hpp defines the unit-safe types; its factory parameters are
  // the sanctioned double<->Time boundary.
  if (path_contains(tu.file, "sim/time.")) return;
  for (const auto& fn : tu.functions) {
    for (const auto& p : fn.params) {
      if (p.name.empty() || p.type.empty()) continue;
      std::string base;
      for (auto it = p.type.rbegin(); it != p.type.rend(); ++it) {
        if (*it != "&" && *it != "*") { base = *it; break; }
      }
      if (base != "double" && base != "float") continue;
      if (!timeish_name(p.name)) continue;
      report(diags, tu, p.line, "raw-time-param", p.name,
             "parameter '" + p.name + "' of " + fn.name + "() is a raw " +
                 base +
                 " duration/rate; sim-facing APIs must take sim::Time / "
                 "sim::Bandwidth so units and rounding stay exact");
    }
  }
}

// ---------------------------------------------------------------------------
// Rule: nodiscard-time (now on parsed declarations)

void rule_nodiscard_time(const TranslationUnit& tu,
                         std::vector<Diagnostic>& diags) {
  for (const auto& fn : tu.functions) {
    if (fn.is_operator || fn.qualified_name || fn.has_nodiscard) continue;
    if (fn.return_type.empty()) continue;
    const std::string& last = fn.return_type.back();
    if (last != "Time" && last != "Bandwidth") continue;
    // References / pointers to Time are accessors, not computed costs.
    bool indirect = false;
    for (const auto& tok : fn.return_type) {
      if (tok == "*" || tok == "&" || tok == "<") indirect = true;
    }
    if (indirect) continue;
    report(diags, tu, fn.line, "nodiscard-time", fn.name,
           "'" + fn.name + "' returns sim::" + last +
               " but is not [[nodiscard]]; a dropped " + last +
               " usually means an uncharged cost");
  }
}

}  // namespace

std::set<std::string> unordered_vars(const LexedFile& lf) {
  const auto& t = lf.tokens;
  std::set<std::string> names;
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (t[i].kind != TokKind::identifier ||
        kUnorderedTypes.count(t[i].text) == 0) {
      continue;
    }
    std::size_t j = i + 1;
    if (j >= t.size() || t[j].text != "<") continue;
    int depth = 0;
    for (; j < t.size(); ++j) {
      if (t[j].text == "<") ++depth;
      if (t[j].text == ">") {
        --depth;
        if (depth == 0) break;
      }
    }
    ++j;
    while (j < t.size() && (t[j].text == "&" || t[j].text == "*")) ++j;
    if (j < t.size() && t[j].kind == TokKind::identifier) {
      names.insert(t[j].text);
    }
  }
  return names;
}

void run_legacy_rules(const TranslationUnit& tu,
                      const std::set<std::string>& sibling_unordered_vars,
                      std::vector<Diagnostic>& diags) {
  rule_wall_clock(tu, diags);
  rule_unordered_iteration(tu, sibling_unordered_vars, diags);
  rule_raw_time_param(tu, diags);
  rule_nodiscard_time(tu, diags);
}

}  // namespace icsim_lint
