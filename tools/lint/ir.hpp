#pragma once
// icsim_lint IR — a lightweight declaration/scope model built on top of the
// token stream.
//
// One pass walks each translation unit at namespace/class scope and records
//   * function declarations and definitions (name, scope, return type,
//     parameters, [[nodiscard]], body token range),
//   * variables at namespace scope, static class members, and
//     function-local statics (with const / constexpr / thread_local and
//     sync-primitive classification),
//   * per-function call sites (identifier followed by `(`), and
//   * "event-handler ranges": the bodies of lambdas passed to
//     Engine::post_at / post_in / schedule_at / schedule_in — code that runs
//     on the engine's event loop, never on a fiber.
//
// A project-wide call graph is then assembled by name matching with one
// refinement: a *plain* call (no `.`/`->`/`::` before the name) inside class
// C resolves to C::name when such a definition exists — otherwise every
// same-named definition is a candidate. Precise overload resolution is out
// of scope for a heuristic linter; the same-class preference is what stops
// an application-level `forward()` that blocks on MPI from tainting
// `Fabric::forward()` through a shared name. Calls to a name matching a
// blocking seed (sleep_for / wait / ...) are always treated as blocking.

#include <cstddef>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "lexer.hpp"

namespace icsim_lint {

struct Param {
  std::vector<std::string> type;  // type tokens, qualifiers stripped
  std::string name;               // empty for unnamed parameters
  int line = 0;
};

struct CallSite {
  std::string callee;  // unqualified name
  int line = 0;
  std::size_t tok = 0;     // index of the callee identifier token
  bool member = false;     // preceded by `.` or `->`
  bool qualified = false;  // preceded by `::`
};

/// A mutation of a named object inside a function body: assignment (plain or
/// compound), increment/decrement, or a mutating member call (insert /
/// push_back / clear / ...).  Subscripts between the name and the operator
/// are skipped, so `counts[key]++` is a write to `counts`.
struct WriteSite {
  std::string name;     // the written identifier
  std::string owner;    // `Owner::name = ...` qualification ("" otherwise)
  std::string how;      // "assigned" / "incremented" / "mutated via insert()"
  int line = 0;
  std::size_t tok = 0;  // index of the written identifier token
};

struct FunctionDecl {
  std::string name;                      // unqualified ("operator+" for operators)
  std::string scope;                     // "icsim::sim::Engine" style join
  std::string owner;                     // owning class ("" for free functions)
  std::vector<std::string> return_type;  // tokens; empty for ctors/dtors
  std::vector<Param> params;
  bool has_nodiscard = false;
  bool is_definition = false;
  bool is_operator = false;
  bool qualified_name = false;  // out-of-line `Foo::bar` definition
  int line = 0;
  std::size_t body_begin = 0;  // token range of `{...}` body (definitions)
  std::size_t body_end = 0;
  std::vector<CallSite> calls;    // definitions only
  std::vector<WriteSite> writes;  // definitions only
  bool body_has_lock = false;     // lock_guard / scoped_lock / unique_lock seen
};

enum class VarScope { namespace_scope, class_member, static_local };

struct VarDecl {
  std::string name;
  std::vector<std::string> type;
  VarScope var_scope = VarScope::namespace_scope;
  bool is_static = false;
  bool is_const = false;      // const or constexpr
  bool is_thread_local = false;
  bool is_sync_primitive = false;  // mutex / atomic / once_flag / condition_variable
  std::string func;   // enclosing function (static locals)
  std::string owner;  // enclosing class (class members)
  int line = 0;
};

/// Token range of a lambda body passed to a scheduling API.
struct HandlerRange {
  std::size_t begin = 0;  // first token inside `{`
  std::size_t end = 0;    // index of the closing `}`
  int line = 0;           // line of the scheduling call
  std::string owner;      // owning class of the enclosing function
};

struct TranslationUnit {
  std::string file;
  LexedFile lex;
  std::vector<FunctionDecl> functions;
  std::vector<VarDecl> vars;
  std::vector<HandlerRange> handlers;
};

struct Project {
  std::vector<TranslationUnit> tus;
  /// Graph node id ("Owner::name", or bare "name" for free functions) ->
  /// resolved callee node ids. Undefined callees appear by bare name.
  std::map<std::string, std::set<std::string>> call_graph;
  /// unqualified name -> node ids of its definitions.
  std::map<std::string, std::set<std::string>> defs_by_name;
  /// Node ids from which a fiber-blocking API is reachable (see
  /// blocking_closure).
  std::set<std::string> blocking;
  /// The seed API names (any call to one of these is blocking by fiat).
  std::set<std::string> blocking_seeds;
};

/// Call-graph node id for a definition: "Owner::name" or bare "name".
[[nodiscard]] std::string fn_key(const FunctionDecl& fn);

/// True when `call`, made from inside class `caller_owner` ("" for a free
/// function), can reach a fiber-blocking API: the callee name is itself a
/// blocking seed, or the call resolves (same-class preferred for plain
/// calls) to a definition in Project::blocking.
[[nodiscard]] bool call_blocks(const Project& project,
                               const std::string& caller_owner,
                               const CallSite& call);

/// Candidate definition node ids for a call site: the same-class definition
/// alone when a plain call has one, every same-named definition otherwise,
/// the bare callee name when nothing in the project defines it.
[[nodiscard]] std::set<std::string> resolve_call_targets(
    const Project& project, const std::string& caller_owner,
    const CallSite& call);

/// Parse one lexed file into declarations. Never throws: unparseable
/// constructs are skipped (heuristic analysis degrades, it does not abort).
TranslationUnit parse_tu(std::string file, LexedFile lexed);

/// Build Project::call_graph from every parsed TU.
void build_call_graph(Project& project);

/// Compute Project::blocking: the fixpoint of `calls something blocking`
/// seeded with `seeds` (e.g. sleep_for / sleep_until / yield / wait).
void blocking_closure(Project& project, const std::set<std::string>& seeds);

}  // namespace icsim_lint
