#pragma once
// icsim_lint output backends: baseline matching, text, and SARIF 2.1.0.

#include <string>
#include <vector>

#include "rules.hpp"

namespace icsim_lint {

/// One accepted finding. Matching is (rule, path-suffix, symbol) — no line
/// numbers, so unrelated edits do not invalidate the baseline. The
/// justification is mandatory in the checked-in file: a baseline without a
/// written reason is a bug that has been promoted to policy.
struct BaselineEntry {
  std::string rule;
  std::string file;  // path suffix, e.g. "src/sim/fiber.cpp"
  std::string symbol;
  std::string justification;
  mutable bool used = false;
};

struct Baseline {
  std::vector<BaselineEntry> entries;
};

/// Parse `rule|path|symbol|justification` lines (# comments, blank lines
/// ignored). Returns false on IO failure or a malformed line (parse error —
/// exit code 2 territory).
bool load_baseline(const std::string& path, Baseline& out, std::string& error);

/// Mark diagnostics that match a baseline entry (sets Diagnostic::baselined
/// and BaselineEntry::used).
void apply_baseline(const Baseline& baseline, std::vector<Diagnostic>& diags);

/// Entries that matched nothing this run — stale, should be pruned.
std::vector<const BaselineEntry*> stale_entries(const Baseline& baseline);

/// Write every unbaselined finding as a baseline line (justification TODO).
bool write_baseline(const std::string& path,
                    const std::vector<Diagnostic>& diags);

/// Write a SARIF 2.1.0 log of all findings; baselined ones carry an
/// external suppression so code-scanning shows them as suppressed rather
/// than open. Paths are emitted relative to `root` when they live under it.
bool write_sarif(const std::string& path, const std::vector<Diagnostic>& diags,
                 const std::string& root);

/// Serialize partition-manifest.json: the certified inventory of every
/// shared-mutable site with its shard/lock/forbid classification and the
/// call path from an event/fiber entry point (docs/MODEL.md §13 has the
/// schema).  Paths are emitted relative to `root` when they live under it.
/// Byte-stable for a given source tree — the --manifest-check drift gate
/// compares the committed file against this string.
std::string manifest_json(const std::vector<ManifestSite>& sites,
                          const std::string& root);

/// Write manifest_json() to `path`.
bool write_manifest(const std::string& path,
                    const std::vector<ManifestSite>& sites,
                    const std::string& root);

}  // namespace icsim_lint
