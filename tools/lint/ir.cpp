#include "ir.hpp"

#include <algorithm>

namespace icsim_lint {

namespace {

const std::set<std::string> kSpecifiers = {
    "static",   "constexpr", "const",    "inline",       "virtual",
    "explicit", "friend",    "mutable",  "thread_local", "extern",
    "register", "typename",  "volatile", "consteval",    "constinit"};

const std::set<std::string> kNotCallable = {
    "if",       "for",      "while",    "switch",   "return",  "sizeof",
    "catch",    "new",      "delete",   "throw",    "alignof", "decltype",
    "int",      "void",     "bool",     "char",     "double",  "float",
    "long",     "short",    "unsigned", "signed",   "auto",    "co_await",
    "co_yield", "co_return", "alignas",  "noexcept", "requires"};

const std::set<std::string> kSyncTypes = {
    "mutex",        "recursive_mutex", "shared_mutex", "timed_mutex",
    "atomic",       "atomic_flag",     "once_flag",    "condition_variable",
    "counting_semaphore", "binary_semaphore"};

const std::set<std::string> kSchedulers = {"post_at", "post_in", "schedule_at",
                                           "schedule_in"};

const std::set<std::string> kMutatingCalls = {
    "insert",  "erase",         "clear",    "push_back", "pop_back",
    "emplace", "emplace_back",  "push",     "pop",       "push_front",
    "pop_front", "emplace_front", "resize", "assign",    "reset",
    "store",   "fetch_add",     "fetch_sub", "exchange",
    "try_emplace", "insert_or_assign"};

bool is_ident(const Token& t) { return t.kind == TokKind::identifier; }

struct Parser {
  const std::vector<Token>& t;
  TranslationUnit& tu;
  std::size_t n;

  struct Scope {
    enum Kind { ns, cls, other } kind;
    std::string name;
  };
  std::vector<Scope> scopes;

  explicit Parser(TranslationUnit& unit) : t(unit.lex.tokens), tu(unit), n(unit.lex.tokens.size()) {}

  [[nodiscard]] std::string text(std::size_t i) const { return i < n ? t[i].text : ""; }

  [[nodiscard]] bool in_class() const {
    return !scopes.empty() && scopes.back().kind == Scope::cls;
  }

  [[nodiscard]] std::string scope_name() const {
    std::string out;
    for (const auto& s : scopes) {
      if (s.name.empty()) continue;
      if (!out.empty()) out += "::";
      out += s.name;
    }
    return out;
  }

  /// Skip a balanced token group starting at an opener at index i.
  /// Returns the index just past the matching closer.
  std::size_t skip_balanced(std::size_t i, const char* open, const char* close) const {
    int depth = 0;
    for (; i < n; ++i) {
      if (t[i].text == open) ++depth;
      else if (t[i].text == close) {
        --depth;
        if (depth == 0) return i + 1;
      }
    }
    return n;
  }

  /// Skip to the `;` that terminates the construct starting at i, balancing
  /// parens and braces (template angles never contain `;`).
  std::size_t skip_to_semi(std::size_t i) const {
    int paren = 0, brace = 0;
    for (; i < n; ++i) {
      const std::string& x = t[i].text;
      if (x == "(") ++paren;
      else if (x == ")") { if (paren > 0) --paren; }
      else if (x == "{") ++brace;
      else if (x == "}") {
        if (brace == 0) return i;  // ran into enclosing scope close
        --brace;
      } else if (x == ";" && paren == 0 && brace == 0) {
        return i + 1;
      }
    }
    return n;
  }

  /// Heuristic template-angle tracking: `<` opens only after an identifier
  /// or `::` or `>` (a template-name position), which is always true inside
  /// declarations — the only context this parser reads.
  static void track_angles(const std::vector<Token>& toks, std::size_t i, int& angle) {
    const std::string& x = toks[i].text;
    if (x == "<") {
      if (i > 0 && (is_ident(toks[i - 1]) || toks[i - 1].text == "::" ||
                    toks[i - 1].text == ">")) {
        ++angle;
      }
    } else if (x == ">") {
      if (angle > 0) --angle;
    }
  }

  // -------------------------------------------------------------------------
  // Parameter lists

  /// Parse `( ... )` starting at the opening paren index. Returns index just
  /// past the closing paren and fills `params`.
  std::size_t parse_params(std::size_t i, std::vector<Param>& params) const {
    std::size_t j = i + 1;
    int paren = 1, angle = 0;
    std::vector<Token> piece;
    auto flush = [&]() {
      if (piece.empty()) return;
      Param p;
      p.line = piece.front().line;
      // Strip default argument.
      std::size_t end = piece.size();
      int a2 = 0;
      for (std::size_t k = 0; k < piece.size(); ++k) {
        if (piece[k].text == "<") ++a2;
        else if (piece[k].text == ">" && a2 > 0) --a2;
        else if (piece[k].text == "=" && a2 == 0) { end = k; break; }
      }
      std::vector<Token> body(piece.begin(), piece.begin() + static_cast<long>(end));
      if (!body.empty() && is_ident(body.back()) &&
          kSpecifiers.count(body.back().text) == 0 &&
          kNotCallable.count(body.back().text) == 0 && body.size() >= 2) {
        p.name = body.back().text;
        p.line = body.back().line;
        body.pop_back();
      }
      for (const auto& tok : body) {
        if (kSpecifiers.count(tok.text) != 0 || tok.text == "struct" ||
            tok.text == "class") {
          continue;
        }
        p.type.push_back(tok.text);
      }
      if (!p.type.empty() || !p.name.empty()) params.push_back(p);
      piece.clear();
    };
    for (; j < n; ++j) {
      const std::string& x = t[j].text;
      if (x == "(") ++paren;
      else if (x == ")") {
        --paren;
        if (paren == 0) { flush(); return j + 1; }
      }
      track_angles(t, j, angle);
      if (x == "," && paren == 1 && angle == 0) {
        flush();
        continue;
      }
      piece.push_back(t[j]);
    }
    flush();
    return n;
  }

  // -------------------------------------------------------------------------
  // Function bodies

  void scan_body(FunctionDecl& fn, std::size_t begin, std::size_t end) {
    for (std::size_t k = begin; k < end; ++k) {
      if (!is_ident(t[k])) continue;
      const std::string& x = t[k].text;
      if (x == "lock_guard" || x == "scoped_lock" || x == "unique_lock") {
        fn.body_has_lock = true;
      }
      if (x == "static" && k + 1 < end && text(k + 1) != "cast") {
        k = parse_static_local(fn, k, end);
        continue;
      }
      if (k + 1 < n && text(k + 1) == "(" && kNotCallable.count(x) == 0 &&
          kSpecifiers.count(x) == 0) {
        CallSite cs;
        cs.callee = x;
        cs.line = t[k].line;
        cs.tok = k;
        cs.member = k > 0 && (t[k - 1].text == "." || t[k - 1].text == "->");
        cs.qualified = k > 0 && t[k - 1].text == "::";
        fn.calls.push_back(cs);
        if (kSchedulers.count(x) != 0) {
          scan_scheduler_args(fn, k + 1, t[k].line);
        }
        continue;
      }
      if (kNotCallable.count(x) == 0 && kSpecifiers.count(x) == 0) {
        detect_write(fn, k, end);
      }
    }
  }

  /// Mutation of the identifier at k: `x = ...` / `x += ...` / `++x` / `x++`
  /// / `x.insert(...)`, with subscripts between the name and the operator
  /// skipped (`counts[key]++` writes `counts`).  The lexer emits multi-char
  /// operators as single-char punctuation (`==` is `=` `=`), so every match
  /// peeks one token further to reject comparisons.
  void detect_write(FunctionDecl& fn, std::size_t k, std::size_t end) {
    const std::string& x = t[k].text;
    WriteSite w;
    w.name = x;
    w.line = t[k].line;
    w.tok = k;
    if (k >= 2 && t[k - 1].text == "::" && is_ident(t[k - 2])) {
      w.owner = t[k - 2].text;
    }
    // Prefix increment/decrement.
    if (k >= 2 && ((t[k - 1].text == "+" && t[k - 2].text == "+") ||
                   (t[k - 1].text == "-" && t[k - 2].text == "-"))) {
      w.how = "incremented";
      fn.writes.push_back(w);
      return;
    }
    std::size_t m = k + 1;
    while (m < end && text(m) == "[") m = skip_balanced(m, "[", "]");
    if (m >= end) return;
    const std::string& op = t[m].text;
    // Plain assignment (`=` not followed by `=`, which would be `==`).
    if (op == "=" && text(m + 1) != "=") {
      w.how = "assigned";
      fn.writes.push_back(w);
      return;
    }
    // Compound assignment: `+=` lexes as `+` `=`.
    static const std::set<std::string> kCompound = {"+", "-", "*", "/",
                                                    "%", "&", "|", "^"};
    if (kCompound.count(op) != 0 && text(m + 1) == "=" && text(m + 2) != "=") {
      w.how = "assigned";
      fn.writes.push_back(w);
      return;
    }
    // Postfix increment/decrement.
    if ((op == "+" && text(m + 1) == "+") ||
        (op == "-" && text(m + 1) == "-")) {
      w.how = "incremented";
      fn.writes.push_back(w);
      return;
    }
    // Mutating member call.
    if ((op == "." || op == "->") && m + 2 < end && is_ident(t[m + 1]) &&
        kMutatingCalls.count(t[m + 1].text) != 0 && text(m + 2) == "(") {
      w.how = "mutated via " + t[m + 1].text + "()";
      fn.writes.push_back(w);
      return;
    }
  }

  /// `static` inside a body: record the declared variable. Returns the index
  /// of the last token consumed.
  std::size_t parse_static_local(const FunctionDecl& fn, std::size_t i,
                                 std::size_t end) {
    VarDecl v;
    v.var_scope = VarScope::static_local;
    v.is_static = true;
    v.func = fn.name;
    v.owner = fn.owner;
    v.line = t[i].line;
    std::size_t j = i + 1;
    int angle = 0;
    std::vector<Token> run;
    for (; j < end; ++j) {
      const std::string& x = t[j].text;
      track_angles(t, j, angle);
      if (angle == 0 && (x == "=" || x == ";" || x == "{" || x == "(")) break;
      if (x == "const" || x == "constexpr") { v.is_const = true; continue; }
      if (x == "thread_local") { v.is_thread_local = true; continue; }
      if (kSpecifiers.count(x) != 0) continue;
      run.push_back(t[j]);
    }
    if (run.empty()) return j;
    if (is_ident(run.back())) {
      v.name = run.back().text;
      v.line = run.back().line;
      run.pop_back();
    }
    for (const auto& tok : run) {
      v.type.push_back(tok.text);
      if (kSyncTypes.count(tok.text) != 0) v.is_sync_primitive = true;
    }
    if (!v.name.empty()) tu.vars.push_back(v);
    // Leave the initializer to the flat scan (it may contain calls).
    return j;
  }

  /// Inside the argument list of post_at/post_in/schedule_at/schedule_in,
  /// record every lambda body as an event-handler range.
  void scan_scheduler_args(const FunctionDecl& fn, std::size_t open_paren,
                           int call_line) {
    int paren = 0;
    for (std::size_t j = open_paren; j < n; ++j) {
      const std::string& x = t[j].text;
      if (x == "(") { ++paren; continue; }
      if (x == ")") {
        --paren;
        if (paren == 0) return;
        continue;
      }
      if (x == "[" && paren >= 1) {
        // Lambda intro vs subscript: a subscript follows a value (identifier,
        // `)`, `]`, string, number); an intro follows `(`/`,`/operators.
        const Token& prev = t[j - 1];
        const bool subscript = is_ident(prev) || prev.kind == TokKind::number ||
                               prev.kind == TokKind::string ||
                               prev.text == ")" || prev.text == "]";
        if (subscript) continue;
        std::size_t k = skip_balanced(j, "[", "]");  // past capture list
        if (k < n && text(k) == "(") k = skip_balanced(k, "(", ")");
        while (k < n && text(k) != "{" && text(k) != ")" && text(k) != ",") ++k;
        if (k >= n || text(k) != "{") continue;
        const std::size_t body_end = skip_balanced(k, "{", "}");
        tu.handlers.push_back({k + 1, body_end > 0 ? body_end - 1 : k + 1,
                               call_line, fn.owner});
        j = body_end > 0 ? body_end - 1 : k;
      }
    }
  }

  // -------------------------------------------------------------------------
  // Declarations at namespace / class scope

  /// Parse one declaration starting at i. Always advances.
  std::size_t parse_decl(std::size_t i) {
    bool has_nodiscard = false;
    bool is_friend = false;
    bool is_static = false, is_const = false, is_thread_local = false;
    std::size_t j = i;

    // Leading attributes and specifiers, in any order.
    while (j < n) {
      if (t[j].text == "[[") {
        std::size_t a = j + 1;
        while (a < n && t[a].text != "]]") {
          if (t[a].text == "nodiscard") has_nodiscard = true;
          ++a;
        }
        j = a < n ? a + 1 : n;
        continue;
      }
      if (is_ident(t[j]) && kSpecifiers.count(t[j].text) != 0) {
        if (t[j].text == "friend") is_friend = true;
        if (t[j].text == "static") is_static = true;
        if (t[j].text == "const" || t[j].text == "constexpr") is_const = true;
        if (t[j].text == "thread_local") is_thread_local = true;
        ++j;
        continue;
      }
      break;
    }
    if (j >= n) return n;
    if (is_friend && (text(j) == "class" || text(j) == "struct")) {
      return skip_to_semi(j);
    }

    // Walk the declarator: collect type tokens until a function name,
    // a `;` (variable / multi-declarator), or an initializer.
    std::vector<Token> run;
    int angle = 0;
    for (; j < n; ++j) {
      const std::string& x = t[j].text;
      track_angles(t, j, angle);
      if (angle > 0) { run.push_back(t[j]); continue; }

      if (x == "operator") {
        return parse_function(i, j, run, has_nodiscard, /*is_operator=*/true);
      }
      if (x == "~" && j + 2 < n && is_ident(t[j + 1]) && text(j + 2) == "(") {
        return parse_function(i, j + 1, run, has_nodiscard, false);
      }
      if (is_ident(t[j]) && j + 1 < n && text(j + 1) == "(" &&
          kNotCallable.count(x) == 0 && kSpecifiers.count(x) == 0) {
        return parse_function(i, j, run, has_nodiscard, false);
      }
      if (x == ";") {
        record_var(run, is_static, is_const, is_thread_local);
        return j + 1;
      }
      if (x == ",") {  // multi-declarator: record under the last declarator
        const std::size_t semi = skip_to_semi(j);
        for (std::size_t b = semi >= 2 ? semi - 2 : 0; b > i; --b) {
          if (is_ident(t[b])) { run.push_back(t[b]); break; }
        }
        record_var(run, is_static, is_const, is_thread_local);
        return semi;
      }
      if (x == "=") {
        const std::size_t semi = skip_to_semi(j);
        record_var(run, is_static, is_const, is_thread_local);
        return semi;
      }
      if (x == "{") {
        // Brace-init variable (`ucontext_t ctx_{};`) when preceded by the
        // declarator name; otherwise an unrecognized block — skip it.
        const std::size_t after = skip_balanced(j, "{", "}");
        if (!run.empty() && is_ident(run.back())) {
          std::size_t semi = after;
          if (semi < n && text(semi) == ";") ++semi;
          record_var(run, is_static, is_const, is_thread_local);
          return semi;
        }
        return after;
      }
      if (x == ":" && run.size() == 1 &&
          (run[0].text == "public" || run[0].text == "private" ||
           run[0].text == "protected")) {
        return j + 1;  // access specifier
      }
      if (x == "}") return j;  // enclosing scope close: let the main loop see it
      run.push_back(t[j]);
    }
    return n;
  }

  void record_var(std::vector<Token>& run, bool is_static, bool is_const,
                  bool is_thread_local) {
    // Arrays: `char buf[24]` — drop the subscript.
    while (!run.empty() && !is_ident(run.back())) run.pop_back();
    if (run.size() < 2 || !is_ident(run.back())) return;
    VarDecl v;
    v.name = run.back().text;
    v.line = run.back().line;
    v.var_scope = in_class() ? VarScope::class_member : VarScope::namespace_scope;
    if (in_class()) v.owner = scopes.back().name;
    v.is_static = is_static;
    v.is_const = is_const;
    v.is_thread_local = is_thread_local;
    run.pop_back();
    for (const auto& tok : run) {
      if (kSpecifiers.count(tok.text) != 0) continue;
      v.type.push_back(tok.text);
      if (kSyncTypes.count(tok.text) != 0) v.is_sync_primitive = true;
    }
    if (v.type.empty()) return;
    if (v.type.size() == 1 &&
        (v.type[0] == "using" || v.type[0] == "return")) {
      return;
    }
    tu.vars.push_back(v);
  }

  /// Parse a function declaration/definition whose name token is at `name_i`
  /// (for operators, `name_i` is the `operator` keyword). `run` holds the
  /// tokens before the name: the return type plus any name qualification.
  std::size_t parse_function(std::size_t decl_start, std::size_t name_i,
                             std::vector<Token> run, bool has_nodiscard,
                             bool is_operator) {
    (void)decl_start;
    FunctionDecl fn;
    fn.has_nodiscard = has_nodiscard;
    fn.is_operator = is_operator;
    fn.scope = scope_name();
    fn.line = t[name_i].line;

    std::size_t j = name_i;
    if (is_operator) {
      fn.name = "operator";
      ++j;
      if (text(j) == "(" && text(j + 1) == ")") {  // operator()
        fn.name += "()";
        j += 2;
      } else {
        while (j < n && text(j) != "(") {
          fn.name += text(j);
          ++j;
        }
      }
    } else {
      fn.name = text(j);
      if (t[name_i].text.empty()) return name_i + 1;
      if (name_i > 0 && t[name_i - 1].text == "~") fn.name = "~" + fn.name;
      fn.qualified_name = name_i > 0 && t[name_i - 1].text == "::";
      ++j;
    }
    // Strip trailing `Class ::` qualification off the collected run so the
    // remainder is just the return type; the innermost qualifier is the
    // owning class of an out-of-line definition.
    std::string qual;
    while (run.size() >= 2 && run.back().text == "::") {
      run.pop_back();
      if (!run.empty() && is_ident(run.back())) {
        if (qual.empty()) qual = run.back().text;
        run.pop_back();
      }
    }
    if (!qual.empty()) {
      fn.owner = qual;
    } else if (in_class()) {
      fn.owner = scopes.back().name;
    }
    for (const auto& tok : run) {
      if (kSpecifiers.count(tok.text) != 0) continue;
      fn.return_type.push_back(tok.text);
    }

    if (j >= n || text(j) != "(") return name_i + 1;
    j = parse_params(j, fn.params);

    // Post-qualifiers and trailing return type.
    while (j < n) {
      const std::string& x = t[j].text;
      if (x == "const" || x == "noexcept" || x == "override" || x == "final" ||
          x == "mutable" || x == "&" || x == "&&") {
        ++j;
        if (x == "noexcept" && j < n && text(j) == "(") {
          j = skip_balanced(j, "(", ")");
        }
        continue;
      }
      if (x == "->") {
        fn.return_type.clear();
        ++j;
        while (j < n && text(j) != "{" && text(j) != ";") {
          fn.return_type.push_back(text(j));
          ++j;
        }
        continue;
      }
      break;
    }

    if (j < n && text(j) == "=") {  // = default / = delete / = 0
      tu.functions.push_back(fn);
      return skip_to_semi(j);
    }
    if (j < n && text(j) == ";") {
      tu.functions.push_back(fn);
      return j + 1;
    }
    if (j < n && text(j) == ":") {  // constructor initializer list
      ++j;
      while (j < n) {
        const std::string& x = t[j].text;
        if (x == "(") { j = skip_balanced(j, "(", ")"); continue; }
        if (x == "{") {
          if (j > 0 && is_ident(t[j - 1])) {  // member brace-init
            j = skip_balanced(j, "{", "}");
            continue;
          }
          break;  // the body
        }
        ++j;
      }
    }
    if (j < n && text(j) == "{") {
      const std::size_t body_end = skip_balanced(j, "{", "}");
      fn.is_definition = true;
      fn.body_begin = j + 1;
      fn.body_end = body_end > 0 ? body_end - 1 : j + 1;
      scan_body(fn, fn.body_begin, fn.body_end);
      tu.functions.push_back(fn);
      return body_end;
    }
    tu.functions.push_back(fn);
    return j < n ? j + 1 : n;
  }

  // -------------------------------------------------------------------------
  // Top-level walk

  void run() {
    std::size_t i = 0;
    while (i < n) {
      const std::string& x = t[i].text;
      if (x == "}") {
        if (!scopes.empty()) scopes.pop_back();
        ++i;
        continue;
      }
      if (x == ";") { ++i; continue; }
      if (x == "namespace") {
        std::size_t j = i + 1;
        std::string name;
        while (j < n && (is_ident(t[j]) || t[j].text == "::")) {
          if (is_ident(t[j])) {
            if (!name.empty()) name += "::";
            name += t[j].text;
          }
          ++j;
        }
        if (j < n && t[j].text == "{") {
          scopes.push_back({Scope::ns, name});
          i = j + 1;
        } else {
          i = skip_to_semi(i);  // namespace alias
        }
        continue;
      }
      if (x == "template") {
        std::size_t j = i + 1;
        if (j < n && t[j].text == "<") {
          int depth = 0;
          for (; j < n; ++j) {
            if (t[j].text == "<") ++depth;
            else if (t[j].text == ">") {
              --depth;
              if (depth == 0) { ++j; break; }
            }
          }
        }
        i = j;
        continue;
      }
      if (x == "using" || x == "typedef" || x == "static_assert") {
        i = skip_to_semi(i);
        continue;
      }
      if (x == "extern" && i + 1 < n && t[i + 1].kind == TokKind::string) {
        if (i + 2 < n && text(i + 2) == "{") {
          scopes.push_back({Scope::other, ""});
          i += 3;
        } else {
          i = skip_to_semi(i);
        }
        continue;
      }
      if (x == "enum") {
        i = skip_to_semi(i);
        continue;
      }
      if ((x == "class" || x == "struct" || x == "union") &&
          !(i > 0 && (t[i - 1].text == "friend"))) {
        std::size_t j = i + 1;
        while (j < n && t[j].text == "[[") {
          while (j < n && t[j].text != "]]") ++j;
          ++j;
        }
        std::string name;
        while (j < n && (is_ident(t[j]) || t[j].text == "::")) {
          if (is_ident(t[j]) && t[j].text != "final") name = t[j].text;
          if (t[j].text == "final") { ++j; break; }
          ++j;
        }
        if (j < n && t[j].text == ":") {  // base clause
          int a = 0;
          for (; j < n; ++j) {
            track_angles(t, j, a);
            if (a == 0 && t[j].text == "{") break;
          }
        }
        if (j < n && t[j].text == "{") {
          scopes.push_back({Scope::cls, name});
          i = j + 1;
          continue;
        }
        if (j < n && t[j].text == ";") { i = j + 1; continue; }
        // Elaborated type in a variable declaration: fall through.
        i = parse_decl(i);
        continue;
      }
      i = parse_decl(i);
    }
  }
};

}  // namespace

TranslationUnit parse_tu(std::string file, LexedFile lexed) {
  TranslationUnit tu;
  tu.file = std::move(file);
  tu.lex = std::move(lexed);
  Parser p(tu);
  p.run();
  return tu;
}

std::string fn_key(const FunctionDecl& fn) {
  return fn.owner.empty() ? fn.name : fn.owner + "::" + fn.name;
}

namespace {

/// Candidate node ids for a call site: same-class definition alone when a
/// plain call has one, every same-named definition otherwise, the bare
/// callee name when nothing in the project defines it.
std::set<std::string> resolve_call(const Project& project,
                                   const std::string& caller_owner,
                                   const CallSite& call) {
  const auto it = project.defs_by_name.find(call.callee);
  if (it == project.defs_by_name.end()) return {call.callee};
  if (!call.member && !call.qualified && !caller_owner.empty()) {
    const std::string same = caller_owner + "::" + call.callee;
    if (it->second.count(same) != 0) return {same};
  }
  return it->second;
}

}  // namespace

void build_call_graph(Project& project) {
  project.call_graph.clear();
  project.defs_by_name.clear();
  for (const auto& tu : project.tus) {
    for (const auto& fn : tu.functions) {
      if (!fn.is_definition) continue;
      project.defs_by_name[fn.name].insert(fn_key(fn));
    }
  }
  for (const auto& tu : project.tus) {
    for (const auto& fn : tu.functions) {
      if (!fn.is_definition) continue;
      auto& callees = project.call_graph[fn_key(fn)];
      for (const auto& c : fn.calls) {
        const auto targets = resolve_call(project, fn.owner, c);
        callees.insert(targets.begin(), targets.end());
      }
    }
  }
}

std::set<std::string> resolve_call_targets(const Project& project,
                                           const std::string& caller_owner,
                                           const CallSite& call) {
  return resolve_call(project, caller_owner, call);
}

bool call_blocks(const Project& project, const std::string& caller_owner,
                 const CallSite& call) {
  // Anything *named* like a blocking API blocks by fiat — member calls such
  // as `trigger.wait()` have no resolvable definition site type.
  if (project.blocking_seeds.count(call.callee) != 0) return true;
  for (const auto& target : resolve_call(project, caller_owner, call)) {
    if (project.blocking.count(target) != 0) return true;
  }
  return false;
}

void blocking_closure(Project& project, const std::set<std::string>& seeds) {
  project.blocking_seeds = seeds;
  std::set<std::string> blocking;
  // Every definition whose unqualified name is a seed is a root (the sim's
  // sleep_for / Trigger::wait / transport-level wait all genuinely block).
  for (const auto& [name, keys] : project.defs_by_name) {
    if (seeds.count(name) != 0) blocking.insert(keys.begin(), keys.end());
  }
  project.blocking = std::move(blocking);
  bool changed = true;
  while (changed) {
    changed = false;
    for (const auto& tu : project.tus) {
      for (const auto& fn : tu.functions) {
        if (!fn.is_definition) continue;
        const std::string key = fn_key(fn);
        if (project.blocking.count(key) != 0) continue;
        for (const auto& c : fn.calls) {
          if (call_blocks(project, fn.owner, c)) {
            project.blocking.insert(key);
            changed = true;
            break;
          }
        }
      }
    }
  }
}

}  // namespace icsim_lint
