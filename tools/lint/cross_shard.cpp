// cross-shard-conformance pass — the partition manifest as a checked
// contract.
//
// PR 8's shared-state pass classifies every shared-mutable site shard /
// lock / forbid and writes partition-manifest.json; PR 9's parallel engine
// (src/par/) consumes that inventory.  This pass closes the loop: the
// manifest stops being documentation and becomes a ratchet the analyzer
// enforces on every scan.
//
//   (A) lookahead provenance — every ParEngine::post_cross delay argument
//       must dataflow from the lookahead constant (wire_latency +
//       switch_latency, or a lookahead()/lookahead_of() accessor),
//       propagated through local assignments and function returns.  A
//       cross-partition event closer than one lookahead window would break
//       the barrier-window protocol's safety argument (the runtime
//       ICSIM_CHECK only sees exercised paths).
//   (B) shard indexing — in the partitioned tier (src/par/ and par_*
//       fixtures), every write to a site the manifest classifies `shard`
//       must be subscripted by a single executing-partition identifier
//       (casts and parens stripped).  An unsubscripted write or index
//       arithmetic (`state[self + 1]`) is a cross-partition mutation that
//       bypasses post_cross.
//   (C) guarded-by inference — when some writer of a site locks an
//       adjacent sync primitive, *every* writer must hold that guard:
//       either it locks the mutex itself or every call path reaching it
//       runs through a lock-holding caller (a monotone fixpoint over the
//       reversed call graph).

#include <algorithm>
#include <cctype>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "rules.hpp"

namespace icsim_lint {

namespace {

std::string basename_of(const std::string& path) {
  const auto slash = path.rfind('/');
  return slash == std::string::npos ? path : path.substr(slash + 1);
}

std::string stem_of(const std::string& path) {
  const std::string base = basename_of(path);
  const auto dot = base.rfind('.');
  return dot == std::string::npos ? base : base.substr(0, dot);
}

std::string lower(std::string s) {
  for (char& c : s) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return s;
}

bool lookahead_named(const std::string& ident) {
  return lower(ident).find("lookahead") != std::string::npos;
}

/// Tokens transparent to index/cast reduction: wrappers that never change
/// which partition an index denotes.
bool cast_noise(const Token& tok) {
  static const std::set<std::string> kPunct = {"(", ")", "<", ">", "::"};
  static const std::set<std::string> kIdents = {
      "static_cast", "std",      "size_t",  "uint64_t", "uint32_t",
      "int64_t",     "int32_t",  "uint8_t", "int8_t",   "unsigned",
      "long",        "int",      "short",   "size_type"};
  if (tok.kind == TokKind::punct) return kPunct.count(tok.text) != 0;
  return kIdents.count(tok.text) != 0;
}

}  // namespace

bool partition_tier(const std::string& file) {
  if (file.find("/par/") != std::string::npos) return true;
  const std::string base = basename_of(file);
  return base.rfind("par_", 0) == 0;
}

IndexShape write_index_shape(const TranslationUnit& tu, const WriteSite& w) {
  const auto& t = tu.lex.tokens;
  std::size_t i = w.tok + 1;
  if (i >= t.size() || t[i].text != "[") return IndexShape::none;
  // First subscript's token range.
  int depth = 0;
  std::size_t close = i;
  for (; close < t.size(); ++close) {
    if (t[close].text == "[") ++depth;
    else if (t[close].text == "]") {
      if (--depth == 0) break;
    }
  }
  // Reduce: drop cast/paren noise, then the remainder must be a single
  // identifier or a `.`/`->` member chain.
  std::vector<const Token*> rest;
  for (std::size_t k = i + 1; k < close; ++k) {
    if (cast_noise(t[k])) continue;
    rest.push_back(&t[k]);
  }
  if (rest.empty()) return IndexShape::compound;
  if (rest[0]->kind != TokKind::identifier) return IndexShape::compound;
  for (std::size_t k = 1; k < rest.size(); k += 2) {
    if (k + 1 >= rest.size()) return IndexShape::compound;
    if (rest[k]->text != "." && rest[k]->text != "->") {
      return IndexShape::compound;
    }
    if (rest[k + 1]->kind != TokKind::identifier) return IndexShape::compound;
  }
  return IndexShape::simple;
}

namespace {

// ---------------------------------------------------------------------------
// (A) post_cross lookahead provenance

class LookaheadScan {
 public:
  LookaheadScan(const Project& project, std::vector<Diagnostic>& diags)
      : p_(project), diags_(diags) {}

  void run() {
    // Seed: functions whose very name declares lookahead semantics
    // (ShardedFabric::lookahead_of, ParEngine::lookahead()).
    for (const auto& tu : p_.tus) {
      for (const auto& fn : tu.functions) {
        if (fn.is_definition && lookahead_named(fn.name)) {
          bearing_fns_.insert(fn.name);
        }
      }
    }
    // Fixpoint: a function whose return expression is lookahead-bearing
    // makes its name bearing for every caller.
    for (int round = 0; round < 10; ++round) {
      bool grew = false;
      for (const auto& tu : p_.tus) {
        for (const auto& fn : tu.functions) {
          if (!fn.is_definition ||
              bearing_fns_.count(fn.name) != 0) {
            continue;
          }
          const auto locals = bearing_locals(tu, fn);
          const auto& t = tu.lex.tokens;
          for (std::size_t j = fn.body_begin;
               j < fn.body_end && j < t.size(); ++j) {
            if (t[j].kind != TokKind::identifier || t[j].text != "return") {
              continue;
            }
            const std::size_t end = statement_end(t, j + 1, fn.body_end);
            if (expr_bearing(t, j + 1, end, locals)) {
              bearing_fns_.insert(fn.name);
              grew = true;
              break;
            }
          }
        }
      }
      if (!grew) break;
    }
    // Check every post_cross delay argument (index 2 of (from, to, t, fn)).
    for (const auto& tu : p_.tus) {
      for (const auto& fn : tu.functions) {
        if (!fn.is_definition) continue;
        const auto locals = bearing_locals(tu, fn);
        for (const auto& call : fn.calls) {
          if (call.callee != "post_cross") continue;
          const auto args = arg_ranges(tu.lex.tokens, call.tok + 1);
          if (args.size() < 4) continue;  // declaration echo / partial parse
          if (expr_bearing(tu.lex.tokens, args[2].first, args[2].second,
                           locals)) {
            continue;
          }
          report(diags_, tu, call.line, "cross-shard-conformance",
                 "post_cross",
                 "post_cross() delay does not trace to the lookahead "
                 "constant: the time argument must dataflow from "
                 "wire_latency + switch_latency (or a lookahead()/"
                 "lookahead_of() value) so every cross-partition event is "
                 "at least one conservative window ahead [" +
                     fn_key(fn) + "() at " + basename_of(tu.file) + ":" +
                     std::to_string(call.line) +
                     "]; route the delay through the lookahead accessor");
        }
      }
    }
  }

 private:
  static std::size_t statement_end(const std::vector<Token>& t, std::size_t i,
                                   std::size_t limit) {
    int paren = 0, brace = 0, bracket = 0;
    for (; i < limit && i < t.size(); ++i) {
      const std::string& x = t[i].text;
      if (x == "(") ++paren;
      else if (x == ")") --paren;
      else if (x == "{") ++brace;
      else if (x == "}") { if (brace == 0) return i; --brace; }
      else if (x == "[") ++bracket;
      else if (x == "]") --bracket;
      else if (x == ";" && paren == 0 && brace == 0 && bracket == 0) return i;
    }
    return std::min(limit, t.size());
  }

  static std::vector<std::pair<std::size_t, std::size_t>> arg_ranges(
      const std::vector<Token>& t, std::size_t open_paren) {
    std::vector<std::pair<std::size_t, std::size_t>> out;
    int paren = 0, bracket = 0, brace = 0;
    std::size_t start = open_paren + 1;
    for (std::size_t k = open_paren; k < t.size(); ++k) {
      const std::string& x = t[k].text;
      if (x == "(") { ++paren; continue; }
      if (x == ")") {
        --paren;
        if (paren == 0) {
          if (k > start) out.emplace_back(start, k);
          break;
        }
        continue;
      }
      if (x == "[") ++bracket;
      else if (x == "]") --bracket;
      else if (x == "{") ++brace;
      else if (x == "}") --brace;
      else if (x == "," && paren == 1 && bracket == 0 && brace == 0) {
        out.emplace_back(start, k);
        start = k + 1;
      }
    }
    return out;
  }

  bool expr_bearing(const std::vector<Token>& t, std::size_t b, std::size_t e,
                    const std::set<std::string>& locals) const {
    for (std::size_t k = b; k < e && k < t.size(); ++k) {
      if (t[k].kind != TokKind::identifier) continue;
      const std::string& x = t[k].text;
      if (x == "wire_latency" || x == "switch_latency") return true;
      if (lookahead_named(x)) return true;
      if (locals.count(x) != 0) return true;
      if (k + 1 < t.size() && t[k + 1].text == "(" &&
          bearing_fns_.count(x) != 0) {
        return true;
      }
    }
    return false;
  }

  /// Locals whose value dataflows from a lookahead-bearing term, by two
  /// forward passes over the assignments in the body (second pass picks up
  /// chains assigned out of order).
  std::set<std::string> bearing_locals(const TranslationUnit& tu,
                                       const FunctionDecl& fn) const {
    const auto& t = tu.lex.tokens;
    std::set<std::string> locals;
    for (int pass = 0; pass < 2; ++pass) {
      for (std::size_t j = fn.body_begin;
           j < fn.body_end && j < t.size(); ++j) {
        if (t[j].kind != TokKind::identifier) continue;
        std::size_t m = j + 1;
        while (m < fn.body_end && m < t.size() && t[m].text == "[") {
          int depth = 0;
          for (; m < t.size(); ++m) {
            if (t[m].text == "[") ++depth;
            else if (t[m].text == "]" && --depth == 0) { ++m; break; }
          }
        }
        if (m >= t.size()) continue;
        std::size_t rhs = 0;
        if (t[m].text == "=" && (m + 1 >= t.size() || t[m + 1].text != "=")) {
          rhs = m + 1;
        } else {
          static const std::set<std::string> kCompound = {"+", "-", "*", "/",
                                                          "%", "&", "|", "^"};
          if (kCompound.count(t[m].text) != 0 && m + 1 < t.size() &&
              t[m + 1].text == "=" &&
              (m + 2 >= t.size() || t[m + 2].text != "=")) {
            rhs = m + 2;
          }
        }
        if (rhs == 0) continue;
        const std::size_t end = statement_end(t, rhs, fn.body_end);
        if (expr_bearing(t, rhs, end, locals)) locals.insert(t[j].text);
      }
    }
    return locals;
  }

  const Project& p_;
  std::vector<Diagnostic>& diags_;
  std::set<std::string> bearing_fns_;  // unqualified names
};

// ---------------------------------------------------------------------------
// (B)/(C) manifest-site write discipline

/// Writers of a manifest site, matched by name plus the same file-affinity
/// the shared-state pass uses (static locals bind to their file; namespace
/// vars to their TU or sibling header/impl).
struct Writer {
  const TranslationUnit* tu;
  const FunctionDecl* fn;
  const WriteSite* w;
};

std::vector<Writer> writers_of(const Project& p, const ManifestSite& site) {
  std::vector<Writer> out;
  for (const auto& tu : p.tus) {
    const bool same_file =
        tu.file == site.file || stem_of(tu.file) == stem_of(site.file);
    if (!same_file) continue;
    for (const auto& fn : tu.functions) {
      if (!fn.is_definition) continue;
      for (const auto& w : fn.writes) {
        if (w.name == site.variable) out.push_back({&tu, &fn, &w});
      }
    }
  }
  return out;
}

void shard_index_check(const Project& p,
                       const std::vector<ManifestSite>& manifest,
                       std::vector<Diagnostic>& diags) {
  for (const auto& site : manifest) {
    if (site.cls != PartitionClass::shard) continue;
    for (const auto& wr : writers_of(p, site)) {
      if (!partition_tier(wr.tu->file)) continue;
      const IndexShape shape = write_index_shape(*wr.tu, *wr.w);
      if (shape == IndexShape::simple) continue;
      const std::string detail =
          shape == IndexShape::none
              ? "the write is not subscripted at all, so every partition "
                "mutates the same instance"
              : "the index expression does not reduce to a single "
                "executing-partition identifier (arithmetic on the index "
                "reaches another shard's slot)";
      report(diags, *wr.tu, wr.w->line, "cross-shard-conformance",
             site.variable,
             "write to '" + site.variable +
                 "' (classified shard in the partition manifest, " +
                 basename_of(site.file) + ":" + std::to_string(site.line) +
                 ") is not indexed by the executing partition: " + detail +
                 " [" + fn_key(*wr.fn) + "() at " +
                 basename_of(wr.tu->file) + ":" +
                 std::to_string(wr.w->line) +
                 "]; cross-partition mutation must route through "
                 "post_cross()");
    }
  }
}

/// Does this function's body construct a lock on `mutex_name`?
bool locks_mutex(const TranslationUnit& tu, const FunctionDecl& fn,
                 const std::string& mutex_name) {
  if (!fn.body_has_lock) return false;
  const auto& t = tu.lex.tokens;
  for (std::size_t k = fn.body_begin; k < fn.body_end && k < t.size(); ++k) {
    if (t[k].kind == TokKind::identifier && t[k].text == mutex_name) {
      return true;
    }
  }
  return false;
}

void guarded_by_check(const Project& p,
                      const std::vector<ManifestSite>& manifest,
                      std::vector<Diagnostic>& diags) {
  // Reversed call graph over definitions, for the caller-holds inference.
  std::map<std::string, std::set<std::string>> callers;
  std::set<std::string> defined;
  for (const auto& tu : p.tus) {
    for (const auto& fn : tu.functions) {
      if (fn.is_definition) defined.insert(fn_key(fn));
    }
  }
  for (const auto& [from, tos] : p.call_graph) {
    for (const auto& to : tos) {
      if (defined.count(to) != 0) callers[to].insert(from);
    }
  }

  for (const auto& site : manifest) {
    const auto writers = writers_of(p, site);
    if (writers.empty()) continue;

    // Candidate guards: sync primitives declared in the site's file, with
    // static locals bound to the writing function's scope.  The inferred
    // guard is the one an actual writer locks.
    std::string guard;
    for (const auto& tu : p.tus) {
      if (tu.file != site.file && stem_of(tu.file) != stem_of(site.file)) {
        continue;
      }
      for (const auto& v : tu.vars) {
        if (!v.is_sync_primitive) continue;
        for (const auto& wr : writers) {
          if (locks_mutex(*wr.tu, *wr.fn, v.name)) {
            guard = v.name;
            break;
          }
        }
        if (!guard.empty()) break;
      }
      if (!guard.empty()) break;
    }
    if (guard.empty()) continue;  // no lock discipline in evidence

    // guarded(fn): locks the guard itself, or every caller is guarded —
    // the monotone fixpoint grows from the direct lockers.
    std::set<std::string> guarded;
    for (const auto& tu : p.tus) {
      for (const auto& fn : tu.functions) {
        if (fn.is_definition && locks_mutex(tu, fn, guard)) {
          guarded.insert(fn_key(fn));
        }
      }
    }
    bool grew = true;
    while (grew) {
      grew = false;
      for (const auto& [callee, froms] : callers) {
        if (guarded.count(callee) != 0 || froms.empty()) continue;
        bool all = true;
        for (const auto& f : froms) {
          if (guarded.count(f) == 0) { all = false; break; }
        }
        if (all) {
          guarded.insert(callee);
          grew = true;
        }
      }
    }

    for (const auto& wr : writers) {
      const std::string key = fn_key(*wr.fn);
      if (guarded.count(key) != 0) continue;
      report(diags, *wr.tu, wr.w->line, "cross-shard-conformance",
             site.variable,
             "write to '" + site.variable + "' (" + basename_of(site.file) +
                 ":" + std::to_string(site.line) +
                 ") without holding its guarding mutex '" + guard + "': " +
                 key +
                 "() neither locks it nor is reached only through "
                 "lock-holding callers, so the lock classification in the "
                 "partition manifest is unsound [guarded-by inference over "
                 "the call graph]; take '" + guard +
                 "' before the write or reclassify the site");
    }
  }
}

}  // namespace

void run_conformance_rules(const Project& project,
                           const std::vector<ManifestSite>& manifest,
                           std::vector<Diagnostic>& diags) {
  LookaheadScan(project, diags).run();
  shard_index_check(project, manifest, diags);
  guarded_by_check(project, manifest, diags);
}

}  // namespace icsim_lint
