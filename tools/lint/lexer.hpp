#pragma once
// icsim_lint lexer — turns a C++ source file into the token stream the
// analyzer passes operate on.
//
// Comments feed the suppression table (`// icsim-lint: allow(<rule>)`);
// string and char literals become opaque `string` tokens; preprocessor
// lines are skipped wholesale (includes and macros are not rule targets).
// Deliberately libclang-free: a lightweight lexer plus the declaration
// parser in ir.hpp is enough for the model-safety rules and keeps the tool
// a dependency-free binary that builds everywhere the simulator builds.

#include <string>
#include <vector>

namespace icsim_lint {

enum class TokKind { identifier, number, string, punct };

struct Token {
  TokKind kind;
  std::string text;
  int line;
};

struct Suppression {
  int line;
  std::string rule;  // "*" allows every rule
};

struct LexedFile {
  std::vector<Token> tokens;
  std::vector<Suppression> suppressions;
};

/// Lex one source file.
LexedFile lex(const std::string& src);

}  // namespace icsim_lint
