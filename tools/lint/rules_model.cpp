// Model-safety rule packs (PR 5).
//
// host-state-leak   — host pointer values (container keys, hashes, integer
//                     casts, addresses folded into digests/seeds) must never
//                     influence model behavior: ASLR and allocator layout
//                     would leak into simulated time (the PR 4 reg-cache bug
//                     class).
// parallel-purity   — mutable namespace-scope / static state reachable from
//                     scenario code must be const, thread_local, a sync
//                     primitive, or mutex-guarded: the sweep driver runs
//                     independent simulations on concurrent threads.
// unit-discipline   — public signatures must not smuggle durations/rates as
//                     raw integers, and sim::Time must not round-trip
//                     through double (to_*() back into a Time factory).
// blocking-context  — fiber-blocking APIs (sleep_for, Trigger::wait, ...)
//                     must be unreachable from event-handler lambdas posted
//                     to the engine queue, which run outside any fiber.

#include <set>

#include "rules.hpp"

namespace icsim_lint {

namespace {

bool path_contains(const std::string& path, const char* needle) {
  return path.find(needle) != std::string::npos;
}

bool is_keyed_container(const std::string& name) {
  static const std::set<std::string> kinds = {
      "map",           "set",           "multimap",           "multiset",
      "unordered_map", "unordered_set", "unordered_multimap", "unordered_multiset"};
  return kinds.count(name) != 0;
}

bool integral_name(const std::string& name) {
  static const std::set<std::string> names = {
      "uintptr_t", "intptr_t", "size_t",   "uint64_t", "int64_t",
      "uint32_t",  "int32_t",  "ptrdiff_t", "long",     "int",
      "unsigned",  "short"};
  return names.count(name) != 0;
}

bool has_suffix(const std::string& name, const std::string& suffix) {
  return name.size() > suffix.size() &&
         name.compare(name.size() - suffix.size(), suffix.size(), suffix) == 0;
}

// ---------------------------------------------------------------------------
// host-state-leak

void rule_host_state_leak(const TranslationUnit& tu,
                          std::vector<Diagnostic>& diags) {
  const auto& t = tu.lex.tokens;
  const std::size_t n = t.size();
  for (std::size_t i = 0; i < n; ++i) {
    if (t[i].kind != TokKind::identifier) continue;
    const std::string& x = t[i].text;

    // (a) Container keyed by a pointer: std::map<T*, ...> / std::set<T*>.
    //     Iteration order (ordered) or hash placement (unordered) of host
    //     addresses feeds model behavior — the PR 4 reg-cache bug family.
    //     Fix: key on a deterministic logical id (ib::logical_buffer style).
    if (is_keyed_container(x) && i + 1 < n && t[i + 1].text == "<") {
      int depth = 0;
      std::string key_head;
      bool pointer_key = false;
      for (std::size_t j = i + 1; j < n; ++j) {
        if (t[j].text == "<") { ++depth; continue; }
        if (t[j].text == ">") {
          --depth;
          if (depth == 0) break;
          continue;
        }
        if (depth == 1 && t[j].text == ",") break;  // end of key type
        if (depth == 1) {
          if (t[j].kind == TokKind::identifier && key_head.empty()) {
            key_head = t[j].text;
          }
          if (t[j].text == "*") pointer_key = true;
        }
      }
      if (pointer_key) {
        report(diags, tu, t[i].line, "host-state-leak",
               x + "<" + key_head + "*>",
               "container '" + x + "<" + key_head +
                   "*, ...>' is keyed by a host pointer; its ordering/"
                   "placement depends on ASLR and the allocator, so any "
                   "model behavior derived from it is nondeterministic — "
                   "key on a stable logical id instead");
        continue;
      }
    }

    // (b) Pointer value converted to an integer.
    if ((x == "reinterpret_cast" || x == "bit_cast") && i + 1 < n &&
        t[i + 1].text == "<") {
      int depth = 0;
      std::string last_ident;
      bool to_pointer = false;
      for (std::size_t j = i + 1; j < n; ++j) {
        if (t[j].text == "<") { ++depth; continue; }
        if (t[j].text == ">") {
          --depth;
          if (depth == 0) break;
          continue;
        }
        if (t[j].kind == TokKind::identifier) last_ident = t[j].text;
        if (t[j].text == "*") to_pointer = true;
      }
      if (!to_pointer && integral_name(last_ident)) {
        report(diags, tu, t[i].line, "host-state-leak",
               x + "<" + last_ident + ">",
               x + " of a pointer to '" + last_ident +
                   "' materializes a host address as a number; if it feeds "
                   "sim::Time, an RNG seed, or a container key the run "
                   "depends on ASLR");
        continue;
      }
    }

    // (c) std::hash over a pointer type.
    if (x == "hash" && i + 1 < n && t[i + 1].text == "<") {
      int depth = 0;
      bool ptr = false;
      std::string head;
      for (std::size_t j = i + 1; j < n; ++j) {
        if (t[j].text == "<") { ++depth; continue; }
        if (t[j].text == ">") {
          --depth;
          if (depth == 0) break;
          continue;
        }
        if (t[j].kind == TokKind::identifier && head.empty()) head = t[j].text;
        if (t[j].text == "*") ptr = true;
      }
      if (ptr) {
        report(diags, tu, t[i].line, "host-state-leak", "hash<" + head + "*>",
               "std::hash of a pointer hashes the host address itself; the "
                   "result is ASLR-dependent and must not reach model state");
      }
    }

    // (d) Address-of / this folded into a digest or RNG seed.
    if ((x == "seed" || x == "fold" || x == "mix" || x == "hash_combine") &&
        i + 1 < n && t[i + 1].text == "(") {
      int depth = 0;
      for (std::size_t j = i + 1; j < n; ++j) {
        if (t[j].text == "(") { ++depth; continue; }
        if (t[j].text == ")") {
          --depth;
          if (depth == 0) break;
          continue;
        }
        const bool arg_head =
            t[j - 1].text == "(" || (t[j - 1].text == "," && depth == 1);
        if (arg_head && (t[j].text == "this" ||
                         (t[j].text == "&" && j + 1 < n &&
                          t[j + 1].kind == TokKind::identifier))) {
          report(diags, tu, t[j].line, "host-state-leak", x + "(&)",
                 "'" + x +
                     "' consumes an object address; folding host pointers "
                     "into seeds/digests makes them ASLR-dependent");
          break;
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// parallel-purity

void rule_parallel_purity(const TranslationUnit& tu,
                          std::vector<Diagnostic>& diags) {
  for (const auto& v : tu.vars) {
    if (v.is_const || v.is_thread_local || v.is_sync_primitive) continue;
    if (v.var_scope == VarScope::class_member && !v.is_static) continue;
    if (v.var_scope == VarScope::static_local) {
      // A static local in a function that takes a lock is treated as
      // mutex-guarded (the cached-matrix pattern in apps/npb/makea.cpp).
      bool guarded = false;
      for (const auto& fn : tu.functions) {
        if (fn.name == v.func && fn.body_has_lock) guarded = true;
      }
      if (guarded) continue;
      report(diags, tu, v.line, "parallel-purity", v.name,
             "function-local 'static " + v.name +
                 "' is mutable shared state without a lock; the sweep driver "
                 "runs scenarios on concurrent threads — make it const, "
                 "thread_local, or mutex-guarded");
      continue;
    }
    if (v.var_scope == VarScope::namespace_scope ||
        (v.var_scope == VarScope::class_member && v.is_static)) {
      report(diags, tu, v.line, "parallel-purity", v.name,
             "namespace-scope/static '" + v.name +
                 "' is mutable shared state; scenario code must be a pure "
                 "function of (scenario, seed) — make it const, "
                 "thread_local, or mutex-guarded");
    }
  }
}

// ---------------------------------------------------------------------------
// unit-discipline

bool time_suffixed(const std::string& name) {
  for (const char* s : {"_ns", "_us", "_ms", "_ps", "_sec", "_secs"}) {
    if (has_suffix(name, s)) return true;
  }
  return false;
}
bool bw_suffixed(const std::string& name) {
  for (const char* s : {"_bw", "_bps", "_gbps", "_mbps"}) {
    if (has_suffix(name, s)) return true;
  }
  return false;
}

void rule_unit_discipline(const TranslationUnit& tu,
                          std::vector<Diagnostic>& diags) {
  if (path_contains(tu.file, "sim/time.")) return;

  // (a) Integer-typed parameters carrying a unit in their name. (double/
  //     float time parameters are the legacy raw-time-param rule; this pack
  //     extends the discipline to integer smuggling and fractional bytes.)
  for (const auto& fn : tu.functions) {
    for (const auto& p : fn.params) {
      if (p.name.empty() || p.type.empty()) continue;
      std::string base;
      for (auto it = p.type.rbegin(); it != p.type.rend(); ++it) {
        if (*it != "&" && *it != "*") { base = *it; break; }
      }
      const bool is_int = integral_name(base);
      const bool is_fp = base == "double" || base == "float";
      if (is_int && (time_suffixed(p.name) || bw_suffixed(p.name))) {
        report(diags, tu, p.line, "unit-discipline", p.name,
               "parameter '" + p.name + "' of " + fn.name +
                   "() smuggles a duration/rate as raw " + base +
                   "; public signatures must take sim::Time / sim::Bandwidth");
      } else if (is_fp && has_suffix(p.name, "_bytes")) {
        report(diags, tu, p.line, "unit-discipline", p.name,
               "parameter '" + p.name + "' of " + fn.name +
                   "() is a fractional byte count; sizes are integers and "
                   "rates are sim::Bandwidth");
      }
    }
  }

  // (b) Time round-trips: Time::ns(x.to_ns() * k) re-enters Time through a
  //     double, double-rounding the picosecond count. Scale Time directly.
  const auto& t = tu.lex.tokens;
  const std::size_t n = t.size();
  static const std::set<std::string> factories = {"ns", "us", "ms", "sec"};
  static const std::set<std::string> exporters = {"to_ns", "to_us", "to_ms",
                                                  "to_seconds"};
  for (std::size_t i = 0; i + 3 < n; ++i) {
    if (t[i].text != "Time" || t[i + 1].text != "::") continue;
    if (factories.count(t[i + 2].text) == 0 || t[i + 3].text != "(") continue;
    int depth = 0;
    for (std::size_t j = i + 3; j < n; ++j) {
      if (t[j].text == "(") { ++depth; continue; }
      if (t[j].text == ")") {
        --depth;
        if (depth == 0) break;
        continue;
      }
      if (t[j].kind == TokKind::identifier && exporters.count(t[j].text) != 0 &&
          (t[j - 1].text == "." || t[j - 1].text == "->")) {
        report(diags, tu, t[j].line, "unit-discipline",
               "Time::" + t[i + 2].text,
               "sim::Time exported with " + t[j].text +
                   "() re-enters Time::" + t[i + 2].text +
                   "(): the double round-trip double-rounds picoseconds; "
                   "scale the Time directly (operator*) or add Times");
        break;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// blocking-context

void rule_blocking_context(const TranslationUnit& tu, const Project& project,
                           std::vector<Diagnostic>& diags) {
  const auto& t = tu.lex.tokens;
  for (const auto& h : tu.handlers) {
    for (std::size_t j = h.begin; j < h.end && j + 1 < t.size(); ++j) {
      if (t[j].kind != TokKind::identifier || t[j + 1].text != "(") continue;
      const std::string& callee = t[j].text;
      CallSite cs;
      cs.callee = callee;
      cs.line = t[j].line;
      cs.tok = j;
      cs.member = j > 0 && (t[j - 1].text == "." || t[j - 1].text == "->");
      cs.qualified = j > 0 && t[j - 1].text == "::";
      if (!call_blocks(project, h.owner, cs)) continue;
      report(diags, tu, t[j].line, "blocking-context", callee,
             "event-handler lambda (posted to the engine queue) calls '" +
                 callee +
                 "', which can reach a fiber-blocking API (sleep_for / "
                 "sleep_until / Trigger::wait / Fiber::yield); engine "
                 "callbacks run outside any fiber — resume a fiber or post a "
                 "completion instead");
    }
  }
}

}  // namespace

void run_model_rules(const TranslationUnit& tu, const Project& project,
                     std::vector<Diagnostic>& diags) {
  rule_host_state_leak(tu, diags);
  rule_parallel_purity(tu, diags);
  rule_unit_discipline(tu, diags);
  rule_blocking_context(tu, project, diags);
}

}  // namespace icsim_lint
