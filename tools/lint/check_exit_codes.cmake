# Asserts the icsim_lint exit-code contract exactly (ctest's WILL_FAIL can
# only say "nonzero", which is precisely the conflation the contract fixes):
#   0  clean scan
#   1  unbaselined findings
#   2  usage / IO / parse error
# and smoke-tests SARIF emission. Run via:
#   cmake -DLINT=<binary> -DTESTDATA=<dir> -DWORKDIR=<dir> -P check_exit_codes.cmake

function(expect_exit code result label)
  if(NOT result EQUAL code)
    message(FATAL_ERROR "${label}: expected exit ${code}, got ${result}")
  endif()
  message(STATUS "${label}: exit ${result} (ok)")
endfunction()

# 0 — clean fixture.
execute_process(COMMAND "${LINT}" "${TESTDATA}/clean.cc"
                RESULT_VARIABLE r OUTPUT_QUIET ERROR_QUIET)
expect_exit(0 "${r}" "clean scan")

# 1 — findings.
execute_process(COMMAND "${LINT}" "${TESTDATA}/violations.cc"
                RESULT_VARIABLE r OUTPUT_QUIET ERROR_QUIET)
expect_exit(1 "${r}" "findings")

# 2 — IO error (missing input), even when another input has findings: the
# analyzer being broken must outrank the findings it did produce.
execute_process(COMMAND "${LINT}" "${TESTDATA}/violations.cc"
                        "${TESTDATA}/no_such_file.cc"
                RESULT_VARIABLE r OUTPUT_QUIET ERROR_QUIET)
expect_exit(2 "${r}" "IO error")

# 2 — malformed baseline is a parse error, not a finding.
file(WRITE "${WORKDIR}/bad_baseline.txt" "just-one-field\n")
execute_process(COMMAND "${LINT}" --baseline "${WORKDIR}/bad_baseline.txt"
                        "${TESTDATA}/clean.cc"
                RESULT_VARIABLE r OUTPUT_QUIET ERROR_QUIET)
expect_exit(2 "${r}" "malformed baseline")

# Baseline round-trip: --write-baseline on the violations fixture, then a
# rescan against it must be clean (exit 0).
execute_process(COMMAND "${LINT}" "${TESTDATA}/violations.cc"
                        --write-baseline "${WORKDIR}/roundtrip_baseline.txt"
                RESULT_VARIABLE r OUTPUT_QUIET ERROR_QUIET)
expect_exit(1 "${r}" "write-baseline scan")
execute_process(COMMAND "${LINT}" --baseline "${WORKDIR}/roundtrip_baseline.txt"
                        "${TESTDATA}/violations.cc"
                RESULT_VARIABLE r OUTPUT_QUIET ERROR_QUIET)
expect_exit(0 "${r}" "baseline round-trip")

# 1 — the PR 4 reg-cache bug shape, reconnected interprocedurally by the
# determinism-taint pass, must fail with exactly 1 (a finding, not analyzer
# breakage): this is the acceptance gate for the taint pass.
execute_process(COMMAND "${LINT}" "${TESTDATA}/taint_regcache.cc"
                RESULT_VARIABLE r OUTPUT_QUIET ERROR_QUIET)
expect_exit(1 "${r}" "taint reg-cache fixture")

# 0 — partition-safety near-misses (locked shared state on the event path,
# deterministic-key reg cache) must stay clean.
execute_process(COMMAND "${LINT}" "${TESTDATA}/partition_clean.cc"
                RESULT_VARIABLE r OUTPUT_QUIET ERROR_QUIET)
expect_exit(0 "${r}" "partition clean fixture")

# Manifest smoke: the shared-state pass must inventory the guarded static in
# partition_clean.cc as `lock` (no diagnostic, but a manifest site), and the
# scan stays exit 0 — the manifest records state, it does not gate.
execute_process(COMMAND "${LINT}" --manifest "${WORKDIR}/smoke_manifest.json"
                        "${TESTDATA}/partition_clean.cc"
                RESULT_VARIABLE r OUTPUT_QUIET ERROR_QUIET)
expect_exit(0 "${r}" "manifest scan")
file(READ "${WORKDIR}/smoke_manifest.json" manifest)
if(NOT manifest MATCHES "\"schema\": \"icsim-partition-manifest/1\"")
  message(FATAL_ERROR "manifest missing schema marker")
endif()
if(NOT manifest MATCHES "\"variable\": \"posted_events\"")
  message(FATAL_ERROR "manifest missing the guarded static-local site")
endif()
if(NOT manifest MATCHES "\"classification\": \"lock\"")
  message(FATAL_ERROR "guarded static-local not classified lock")
endif()
message(STATUS "manifest smoke: ok")

# SARIF smoke: findings still exit 1, and the log must be valid enough to
# carry the version marker and at least one result.
execute_process(COMMAND "${LINT}" --sarif "${WORKDIR}/smoke.sarif"
                        "${TESTDATA}/violations.cc"
                RESULT_VARIABLE r OUTPUT_QUIET ERROR_QUIET)
expect_exit(1 "${r}" "sarif scan")
file(READ "${WORKDIR}/smoke.sarif" sarif)
if(NOT sarif MATCHES "\"version\": \"2\\.1\\.0\"")
  message(FATAL_ERROR "SARIF log missing version 2.1.0 marker")
endif()
if(NOT sarif MATCHES "\"ruleId\"")
  message(FATAL_ERROR "SARIF log carries no results")
endif()
message(STATUS "sarif smoke: ok")

# 1 — the closure-lifetime and cross-shard-conformance fixtures must fail
# with exactly 1 (findings, not analyzer breakage).
foreach(fixture closure_uaf.cc closure_cancel.cc par_cross_write.cc
        lock_unguarded.cc)
  execute_process(COMMAND "${LINT}" "${TESTDATA}/${fixture}"
                  RESULT_VARIABLE r OUTPUT_QUIET ERROR_QUIET)
  expect_exit(1 "${r}" "${fixture}")
endforeach()

# 0 — their near-miss counterparts stay clean.
foreach(fixture closure_clean.cc par_cross_clean.cc)
  execute_process(COMMAND "${LINT}" "${TESTDATA}/${fixture}"
                  RESULT_VARIABLE r OUTPUT_QUIET ERROR_QUIET)
  expect_exit(0 "${r}" "${fixture}")
endforeach()

# Manifest ratchet: a freshly generated manifest passes --manifest-check,
# a tampered copy is drift (exit 1), and a missing file is an IO error
# (exit 2) — staleness must not masquerade as analyzer breakage or
# vice versa.
execute_process(COMMAND "${LINT}" --manifest "${WORKDIR}/ratchet_manifest.json"
                        "${TESTDATA}/partition_clean.cc"
                RESULT_VARIABLE r OUTPUT_QUIET ERROR_QUIET)
expect_exit(0 "${r}" "ratchet manifest write")
execute_process(COMMAND "${LINT}" --manifest-check
                        "${WORKDIR}/ratchet_manifest.json"
                        "${TESTDATA}/partition_clean.cc"
                RESULT_VARIABLE r OUTPUT_QUIET ERROR_QUIET)
expect_exit(0 "${r}" "manifest-check fresh")
file(READ "${WORKDIR}/ratchet_manifest.json" ratchet)
string(REPLACE "\"classification\": \"lock\"" "\"classification\": \"shard\""
       ratchet "${ratchet}")
file(WRITE "${WORKDIR}/ratchet_stale.json" "${ratchet}")
execute_process(COMMAND "${LINT}" --manifest-check
                        "${WORKDIR}/ratchet_stale.json"
                        "${TESTDATA}/partition_clean.cc"
                RESULT_VARIABLE r OUTPUT_QUIET ERROR_QUIET)
expect_exit(1 "${r}" "manifest-check stale")
execute_process(COMMAND "${LINT}" --manifest-check
                        "${WORKDIR}/ratchet_missing.json"
                        "${TESTDATA}/partition_clean.cc"
                RESULT_VARIABLE r OUTPUT_QUIET ERROR_QUIET)
expect_exit(2 "${r}" "manifest-check missing file")
message(STATUS "manifest ratchet: ok")
