#include "lexer.hpp"

#include <algorithm>
#include <sstream>

namespace icsim_lint {

namespace {

bool ident_start(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_';
}
bool ident_char(char c) { return ident_start(c) || (c >= '0' && c <= '9'); }

/// Record `// icsim-lint: allow(rule1, rule2)` comments.
void scan_comment(const std::string& text, int line, LexedFile& out) {
  const std::string marker = "icsim-lint:";
  auto pos = text.find(marker);
  if (pos == std::string::npos) return;
  pos = text.find("allow", pos);
  if (pos == std::string::npos) return;
  const auto open = text.find('(', pos);
  const auto close = text.find(')', open == std::string::npos ? pos : open);
  if (open == std::string::npos || close == std::string::npos) return;
  std::string inner = text.substr(open + 1, close - open - 1);
  std::string rule;
  std::istringstream ss(inner);
  while (std::getline(ss, rule, ',')) {
    rule.erase(std::remove_if(rule.begin(), rule.end(),
                              [](char c) { return c == ' ' || c == '\t'; }),
               rule.end());
    if (!rule.empty()) out.suppressions.push_back({line, rule});
  }
}

}  // namespace

LexedFile lex(const std::string& src) {
  LexedFile out;
  int line = 1;
  std::size_t i = 0;
  const std::size_t n = src.size();
  bool at_line_start = true;

  auto peek = [&](std::size_t k) -> char { return i + k < n ? src[i + k] : '\0'; };

  while (i < n) {
    const char c = src[i];
    if (c == '\n') {
      ++line;
      ++i;
      at_line_start = true;
      continue;
    }
    if (c == ' ' || c == '\t' || c == '\r' || c == '\v' || c == '\f') {
      ++i;
      continue;
    }
    if (at_line_start && c == '#') {  // preprocessor line (with continuations)
      while (i < n && src[i] != '\n') {
        if (src[i] == '\\' && peek(1) == '\n') {
          ++line;
          i += 2;
          continue;
        }
        ++i;
      }
      continue;
    }
    at_line_start = false;
    if (c == '/' && peek(1) == '/') {
      const std::size_t start = i;
      while (i < n && src[i] != '\n') ++i;
      scan_comment(src.substr(start, i - start), line, out);
      continue;
    }
    if (c == '/' && peek(1) == '*') {
      const int start_line = line;
      const std::size_t start = i;
      i += 2;
      while (i < n && !(src[i] == '*' && peek(1) == '/')) {
        if (src[i] == '\n') ++line;
        ++i;
      }
      i = i < n ? i + 2 : n;
      scan_comment(src.substr(start, i - start), start_line, out);
      continue;
    }
    if (c == '"' || c == '\'') {
      if (c == '"' && i > 0 && src[i - 1] == 'R') {  // raw string R"delim(...)delim"
        const auto open = src.find('(', i);
        if (open != std::string::npos) {
          std::string delim = ")";
          delim.append(src, i + 1, open - i - 1);
          delim += '"';
          const auto close = src.find(delim, open);
          const std::size_t end = close == std::string::npos ? n : close + delim.size();
          line += static_cast<int>(std::count(src.begin() + static_cast<long>(i),
                                              src.begin() + static_cast<long>(end), '\n'));
          i = end;
          out.tokens.push_back({TokKind::string, "\"\"", line});
          continue;
        }
      }
      const char quote = c;
      ++i;
      while (i < n && src[i] != quote) {
        if (src[i] == '\\') ++i;
        if (src[i] == '\n') ++line;
        ++i;
      }
      if (i < n) ++i;
      out.tokens.push_back({TokKind::string, quote == '"' ? "\"\"" : "''", line});
      continue;
    }
    if (ident_start(c)) {
      const std::size_t start = i;
      while (i < n && ident_char(src[i])) ++i;
      out.tokens.push_back({TokKind::identifier, src.substr(start, i - start), line});
      continue;
    }
    if (c >= '0' && c <= '9') {
      const std::size_t start = i;
      while (i < n && (ident_char(src[i]) || src[i] == '.' ||
                       ((src[i] == '+' || src[i] == '-') && i > start &&
                        (src[i - 1] == 'e' || src[i - 1] == 'E' ||
                         src[i - 1] == 'p' || src[i - 1] == 'P')))) {
        ++i;
      }
      out.tokens.push_back({TokKind::number, src.substr(start, i - start), line});
      continue;
    }
    // Punctuation; `::` is one token so qualified names are easy to walk.
    if (c == ':' && peek(1) == ':') {
      out.tokens.push_back({TokKind::punct, "::", line});
      i += 2;
      continue;
    }
    if (c == '-' && peek(1) == '>') {
      out.tokens.push_back({TokKind::punct, "->", line});
      i += 2;
      continue;
    }
    if (c == '[' && peek(1) == '[') {
      out.tokens.push_back({TokKind::punct, "[[", line});
      i += 2;
      continue;
    }
    if (c == ']' && peek(1) == ']') {
      out.tokens.push_back({TokKind::punct, "]]", line});
      i += 2;
      continue;
    }
    out.tokens.push_back({TokKind::punct, std::string(1, c), line});
    ++i;
  }
  return out;
}

}  // namespace icsim_lint
