#include "output.hpp"

#include <fstream>
#include <sstream>

namespace icsim_lint {

namespace {

std::string trim(const std::string& s) {
  std::size_t a = 0, b = s.size();
  while (a < b && (s[a] == ' ' || s[a] == '\t')) ++a;
  while (b > a && (s[b - 1] == ' ' || s[b - 1] == '\t' || s[b - 1] == '\r')) --b;
  return s.substr(a, b - a);
}

/// `file` matches when the diagnostic path ends with the entry path at a
/// component boundary (entries are repo-relative, diagnostics may be
/// absolute).
bool path_matches(const std::string& diag_path, const std::string& entry_path) {
  if (diag_path == entry_path) return true;
  if (diag_path.size() <= entry_path.size()) return false;
  if (diag_path.compare(diag_path.size() - entry_path.size(),
                        entry_path.size(), entry_path) != 0) {
    return false;
  }
  const char before = diag_path[diag_path.size() - entry_path.size() - 1];
  return before == '/';
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string relative_to(const std::string& path, const std::string& root) {
  if (!root.empty() && path.size() > root.size() &&
      path.compare(0, root.size(), root) == 0 && path[root.size()] == '/') {
    return path.substr(root.size() + 1);
  }
  // Fall back to the repo-conventional suffix so SARIF paths stay stable.
  const auto pos = path.rfind("/src/");
  if (pos != std::string::npos) return path.substr(pos + 1);
  return path;
}

}  // namespace

bool load_baseline(const std::string& path, Baseline& out, std::string& error) {
  std::ifstream in(path);
  if (!in) {
    error = "cannot read baseline file: " + path;
    return false;
  }
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const std::string body = trim(line);
    if (body.empty() || body[0] == '#') continue;
    BaselineEntry e;
    std::istringstream ss(body);
    std::string field;
    std::vector<std::string> fields;
    while (std::getline(ss, field, '|')) fields.push_back(trim(field));
    if (fields.size() < 4 || fields[0].empty() || fields[1].empty() ||
        fields[2].empty() || fields[3].empty()) {
      error = path + ":" + std::to_string(lineno) +
              ": malformed baseline entry (want rule|path|symbol|justification)";
      return false;
    }
    e.rule = fields[0];
    e.file = fields[1];
    e.symbol = fields[2];
    e.justification = fields[3];
    out.entries.push_back(e);
  }
  return true;
}

void apply_baseline(const Baseline& baseline, std::vector<Diagnostic>& diags) {
  for (auto& d : diags) {
    for (const auto& e : baseline.entries) {
      if (e.rule == d.rule && e.symbol == d.symbol &&
          path_matches(d.file, e.file)) {
        d.baselined = true;
        e.used = true;
        break;
      }
    }
  }
}

std::vector<const BaselineEntry*> stale_entries(const Baseline& baseline) {
  std::vector<const BaselineEntry*> out;
  for (const auto& e : baseline.entries) {
    if (!e.used) out.push_back(&e);
  }
  return out;
}

bool write_baseline(const std::string& path,
                    const std::vector<Diagnostic>& diags) {
  std::ofstream out(path);
  if (!out) return false;
  out << "# icsim_lint baseline — accepted findings with written justification.\n"
         "# Format: rule|path|symbol|justification  (matching ignores line "
         "numbers)\n";
  for (const auto& d : diags) {
    if (d.baselined) continue;
    const auto pos = d.file.rfind("/src/");
    const std::string file =
        pos != std::string::npos ? d.file.substr(pos + 1) : d.file;
    out << d.rule << "|" << file << "|" << d.symbol
        << "|TODO: justify or fix\n";
  }
  return static_cast<bool>(out);
}

std::string manifest_json(const std::vector<ManifestSite>& sites,
                          const std::string& root) {
  std::ostringstream out;
  std::size_t shard = 0, lock = 0, forbid = 0;
  for (const auto& s : sites) {
    if (s.cls == PartitionClass::shard) ++shard;
    else if (s.cls == PartitionClass::lock) ++lock;
    else ++forbid;
  }
  out << "{\n"
         "  \"schema\": \"icsim-partition-manifest/1\",\n"
         "  \"generated_by\": \"icsim_lint shared-state pass\",\n"
         "  \"summary\": {\"sites\": " << sites.size()
      << ", \"shard\": " << shard << ", \"lock\": " << lock
      << ", \"forbid\": " << forbid << "},\n"
         "  \"sites\": [\n";
  for (std::size_t i = 0; i < sites.size(); ++i) {
    const auto& s = sites[i];
    out << "    {\n"
        << "      \"variable\": \"" << json_escape(s.variable) << "\",\n"
        << "      \"kind\": \"" << json_escape(s.var_kind) << "\",\n"
        << "      \"type\": \"" << json_escape(s.type) << "\",\n"
        << "      \"file\": \"" << json_escape(relative_to(s.file, root))
        << "\",\n"
        << "      \"line\": " << s.line << ",\n"
        << "      \"classification\": \"" << to_string(s.cls) << "\",\n"
        << "      \"reachable_from_event_context\": "
        << (s.reachable ? "true" : "false") << ",\n"
        << "      \"call_path\": [";
    for (std::size_t j = 0; j < s.call_path.size(); ++j) {
      out << "\"" << json_escape(s.call_path[j]) << "\""
          << (j + 1 < s.call_path.size() ? ", " : "");
    }
    out << "],\n"
        << "      \"reason\": \"" << json_escape(s.reason) << "\"\n"
        << "    }" << (i + 1 < sites.size() ? ",\n" : "\n");
  }
  out << "  ]\n"
         "}\n";
  return out.str();
}

bool write_manifest(const std::string& path,
                    const std::vector<ManifestSite>& sites,
                    const std::string& root) {
  std::ofstream out(path);
  if (!out) return false;
  out << manifest_json(sites, root);
  return static_cast<bool>(out);
}

bool write_sarif(const std::string& path, const std::vector<Diagnostic>& diags,
                 const std::string& root) {
  std::ofstream out(path);
  if (!out) return false;
  out << "{\n"
         "  \"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\",\n"
         "  \"version\": \"2.1.0\",\n"
         "  \"runs\": [\n"
         "    {\n"
         "      \"tool\": {\n"
         "        \"driver\": {\n"
         "          \"name\": \"icsim_lint\",\n"
         "          \"version\": \"2.0.0\",\n"
         "          \"informationUri\": "
         "\"https://example.invalid/icsim/tools/lint\",\n"
         "          \"rules\": [\n";
  const auto& catalog = rule_catalog();
  for (std::size_t i = 0; i < catalog.size(); ++i) {
    out << "            {\"id\": \"" << catalog[i].id
        << "\", \"shortDescription\": {\"text\": \""
        << json_escape(catalog[i].summary) << "\"}}"
        << (i + 1 < catalog.size() ? ",\n" : "\n");
  }
  out << "          ]\n"
         "        }\n"
         "      },\n"
         "      \"results\": [\n";
  for (std::size_t i = 0; i < diags.size(); ++i) {
    const auto& d = diags[i];
    out << "        {\n"
        << "          \"ruleId\": \"" << json_escape(d.rule) << "\",\n"
        << "          \"level\": \"" << (d.baselined ? "note" : "error")
        << "\",\n"
        << "          \"message\": {\"text\": \"" << json_escape(d.message)
        << "\"},\n";
    if (d.baselined) {
      out << "          \"suppressions\": [{\"kind\": \"external\", "
             "\"justification\": \"baselined in tools/lint/baseline.txt\"}],\n";
    }
    out << "          \"locations\": [\n"
           "            {\n"
           "              \"physicalLocation\": {\n"
           "                \"artifactLocation\": {\"uri\": \""
        << json_escape(relative_to(d.file, root)) << "\"},\n"
        << "                \"region\": {\"startLine\": " << d.line << "}\n"
        << "              }\n"
           "            }\n"
           "          ]\n"
           "        }"
        << (i + 1 < diags.size() ? ",\n" : "\n");
  }
  out << "      ]\n"
         "    }\n"
         "  ]\n"
         "}\n";
  return static_cast<bool>(out);
}

}  // namespace icsim_lint
