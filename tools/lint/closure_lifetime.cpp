// closure-lifetime pass — lambda captures flowing into deferred-execution
// sinks.
//
// A DES closure runs when the engine reaches its timestamp, long after the
// frame that armed it has returned.  The classic bug class is a lambda that
// captures a stack variable by reference (or materializes a pointer to one)
// and is then handed to Engine::post_at / post_in / schedule_at /
// schedule_in, ParEngine::post_cross, a resource-acquire callback, or a
// fiber spawn.  ASan only sees the paths a given scenario exercises; this
// pass sees every arming site.
//
// Capture classification (docs/MODEL.md §15 has the full table):
//   [x], [x = expr]    by value — clean (the closure owns its copy);
//   [&x]               error: aliases the enclosing frame.  When `x` is
//                      itself a reference the frame slot is not the hazard,
//                      but the capture silently aliases a caller-owned
//                      object with no lifetime tie to the deferred event —
//                      init-capture the address by value (`p = &x`) so the
//                      aliasing is explicit and audited;
//   [p = &x]           error when `x` is a by-value local/parameter (a
//                      pointer to the dying frame); clean when `x` is a
//                      reference (pointer to the caller-owned referent —
//                      the sanctioned fix idiom);
//   [&]                error when the lambda body uses an enclosing
//                      local/parameter (reported per offending name);
//   [this]             clean at fire-and-forget sinks (post_at / post_in /
//                      post_cross / acquire: ownership convention — handler
//                      objects outlive the drain); at cancellable sinks
//                      (schedule_at / schedule_in) it is a finding unless
//                      the arming frame cancels the returned EventHandle
//                      before returning or ~Owner() cancels its handles;
//   [*this]            by-value copy — clean.
//
// Lambdas are found both as direct sink arguments and as named locals
// (`auto cont = [...]; ... post_cross(p, q, t, std::move(cont));` — the
// ShardedFabric::forward shape).

#include <algorithm>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "rules.hpp"

namespace icsim_lint {

namespace {

/// Sinks whose callable argument runs after the enclosing frame returned.
/// `acquire` is the FifoResource completion callback; `Fiber` / `spawn`
/// cover fiber bodies (resumed from the scheduler, never from the arming
/// frame).
const std::set<std::string>& deferred_sinks() {
  static const std::set<std::string> sinks = {
      "post_at",    "post_in", "schedule_at", "schedule_in",
      "post_cross", "acquire", "spawn",       "Fiber"};
  return sinks;
}

bool cancellable_sink(const std::string& s) {
  return s == "schedule_at" || s == "schedule_in";
}

struct Capture {
  enum Kind {
    by_value,       // [x], [x = expr]
    by_ref,         // [&x]
    ref_init,       // [&x = expr] — reference into the initializer
    ptr_init,       // [p = &x]
    this_ptr,       // [this]
    star_this,      // [*this]
    default_ref,    // [&]
    default_value,  // [=]
  } kind = by_value;
  std::string name;  // captured name; for ptr_init/ref_init the referent
  int line = 0;
};

struct Lambda {
  std::vector<Capture> captures;
  std::size_t intro = 0;       // index of `[`
  std::size_t body_begin = 0;  // first token inside `{`
  std::size_t body_end = 0;    // index of the closing `}`
  int line = 0;
};

/// An enclosing-frame variable (parameter or detected local).
struct FrameVar {
  bool is_ref = false;  // declared `T&` — the referent is caller-owned
  bool is_param = false;
};

const std::set<std::string>& keyword_like() {
  static const std::set<std::string> kw = {
      "if",     "for",      "while",  "switch",   "return", "sizeof",
      "catch",  "new",      "delete", "throw",    "else",   "do",
      "case",   "break",    "continue", "goto",   "struct", "class",
      "const",  "constexpr", "static", "auto",    "using",  "typedef",
      "public", "private",  "protected", "template", "typename", "operator",
      "true",   "false",    "nullptr", "this",    "void"};
  return kw;
}

class FnScan {
 public:
  FnScan(const Project& project, const TranslationUnit& tu,
         const FunctionDecl& fn, std::vector<Diagnostic>& diags)
      : p_(project), tu_(tu), fn_(fn), diags_(diags), t_(tu.lex.tokens) {}

  void run() {
    collect_frame_vars();
    collect_lambdas();
    scan_sinks();
  }

 private:
  [[nodiscard]] std::string text(std::size_t i) const {
    return i < t_.size() ? t_[i].text : "";
  }
  [[nodiscard]] bool is_ident(std::size_t i) const {
    return i < t_.size() && t_[i].kind == TokKind::identifier;
  }

  std::size_t skip_balanced(std::size_t i, const char* open,
                            const char* close) const {
    int depth = 0;
    for (; i < t_.size(); ++i) {
      if (t_[i].text == open) ++depth;
      else if (t_[i].text == close) {
        --depth;
        if (depth == 0) return i + 1;
      }
    }
    return t_.size();
  }

  [[nodiscard]] std::string base() const {
    const auto slash = tu_.file.rfind('/');
    return slash == std::string::npos ? tu_.file : tu_.file.substr(slash + 1);
  }
  [[nodiscard]] std::string key() const { return fn_key(fn_); }

  // -- frame variables ------------------------------------------------------

  void collect_frame_vars() {
    for (const auto& prm : fn_.params) {
      if (prm.name.empty()) continue;
      FrameVar v;
      v.is_param = true;
      v.is_ref = std::find(prm.type.begin(), prm.type.end(), "&") !=
                 prm.type.end();
      frame_.emplace(prm.name, v);
    }
    // Locals, by the two-token declaration heuristic: `Type name =/;/{`,
    // `Type & name =`, `Type * name =/;`.  Misses are fine — an unknown
    // name in a by-ref capture is still an enclosing-frame variable by
    // language rules; this table only refines the message and classifies
    // `p = &x` init-captures.
    for (std::size_t k = fn_.body_begin;
         k + 2 < fn_.body_end && k + 2 < t_.size(); ++k) {
      if (!is_ident(k) || keyword_like().count(t_[k].text) != 0) continue;
      if (k > 0 && (t_[k - 1].text == "." || t_[k - 1].text == "->" ||
                    t_[k - 1].text == "::")) {
        continue;  // member/qualified chain, not a declaration head
      }
      const std::string& nx = text(k + 1);
      if (is_ident(k + 1) && keyword_like().count(nx) == 0) {
        const std::string& after = text(k + 2);
        if (after == "=" || after == ";" || after == "{") {
          frame_.emplace(t_[k + 1].text, FrameVar{});
        }
        continue;
      }
      if ((nx == "&" || nx == "*") && is_ident(k + 2)) {
        const std::string& after = text(k + 3);
        if (after == "=" || after == ";" || after == "{" || after == ")") {
          FrameVar v;
          v.is_ref = nx == "&";
          frame_.emplace(t_[k + 2].text, v);
        }
      }
    }
  }

  // -- lambda collection ----------------------------------------------------

  /// `[` at i opens a lambda (not a subscript, not an attribute).
  [[nodiscard]] bool lambda_intro(std::size_t i) const {
    if (text(i) != "[") return false;
    if (i == 0) return false;
    const Token& prev = t_[i - 1];
    return !(prev.kind == TokKind::identifier ||
             prev.kind == TokKind::number || prev.kind == TokKind::string ||
             prev.text == ")" || prev.text == "]");
  }

  void collect_lambdas() {
    for (std::size_t j = fn_.body_begin;
         j < fn_.body_end && j < t_.size(); ++j) {
      if (!lambda_intro(j)) continue;
      Lambda lam;
      lam.intro = j;
      lam.line = t_[j].line;
      const std::size_t close = skip_balanced(j, "[", "]");  // past `]`
      parse_captures(j + 1, close > 0 ? close - 1 : j + 1, lam.captures);
      std::size_t k = close;
      if (k < t_.size() && text(k) == "(") k = skip_balanced(k, "(", ")");
      while (k < t_.size() && text(k) != "{" && text(k) != ")" &&
             text(k) != "," && text(k) != ";") {
        ++k;
      }
      if (k >= t_.size() || text(k) != "{") continue;
      const std::size_t body_close = skip_balanced(k, "{", "}");
      lam.body_begin = k + 1;
      lam.body_end = body_close > 0 ? body_close - 1 : k + 1;
      by_intro_[lam.intro] = lambdas_.size();
      // `auto cont = [...]` — remember the variable so a later
      // `post_cross(..., std::move(cont))` resolves to this lambda.
      if (j >= 2 && t_[j - 1].text == "=" && is_ident(j - 2)) {
        by_name_[t_[j - 2].text] = lambdas_.size();
      }
      lambdas_.push_back(lam);
    }
  }

  void parse_captures(std::size_t b, std::size_t e,
                      std::vector<Capture>& out) const {
    std::vector<std::vector<std::size_t>> pieces(1);
    int depth = 0;
    for (std::size_t j = b; j < e && j < t_.size(); ++j) {
      const std::string& x = t_[j].text;
      if (x == "(" || x == "{" || x == "[") ++depth;
      else if (x == ")" || x == "}" || x == "]") --depth;
      if (x == "," && depth == 0) {
        pieces.emplace_back();
        continue;
      }
      pieces.back().push_back(j);
    }
    for (const auto& piece : pieces) {
      if (piece.empty()) continue;
      Capture c;
      c.line = t_[piece.front()].line;
      const std::string& first = t_[piece.front()].text;
      if (piece.size() == 1) {
        if (first == "&") c.kind = Capture::default_ref;
        else if (first == "=") c.kind = Capture::default_value;
        else if (first == "this") c.kind = Capture::this_ptr;
        else if (t_[piece[0]].kind == TokKind::identifier) {
          c.kind = Capture::by_value;
          c.name = first;
        } else {
          continue;
        }
        out.push_back(c);
        continue;
      }
      if (first == "*" && text(piece[1]) == "this") {
        c.kind = Capture::star_this;
        out.push_back(c);
        continue;
      }
      if (first == "&") {
        if (piece.size() == 2 && is_ident(piece[1])) {
          c.kind = Capture::by_ref;
          c.name = t_[piece[1]].text;
          c.line = t_[piece[1]].line;
          out.push_back(c);
          continue;
        }
        if (piece.size() >= 3 && is_ident(piece[1]) &&
            text(piece[2]) == "=") {
          // `&x = expr` — a reference into the initializer expression.
          c.kind = Capture::ref_init;
          for (std::size_t m = 3; m < piece.size(); ++m) {
            if (is_ident(piece[m])) { c.name = t_[piece[m]].text; break; }
          }
          out.push_back(c);
          continue;
        }
        continue;
      }
      if (is_ident(piece[0]) && piece.size() >= 3 && text(piece[1]) == "=") {
        // Init-capture: `x = expr`.  Only `x = &name` (or addressof) turns
        // into a pointer classification; everything else copies by value.
        c.kind = Capture::by_value;
        c.name = first;
        if (text(piece[2]) == "&" && piece.size() >= 4 && is_ident(piece[3])) {
          c.kind = Capture::ptr_init;
          c.name = t_[piece[3]].text;
        } else if (text(piece[2]) == "addressof" ||
                   (piece.size() >= 6 && text(piece[4]) == "addressof")) {
          for (std::size_t m = 2; m < piece.size(); ++m) {
            if (text(piece[m]) == "(" && m + 1 < piece.size() &&
                is_ident(piece[m + 1])) {
              c.kind = Capture::ptr_init;
              c.name = t_[piece[m + 1]].text;
              break;
            }
          }
        }
        out.push_back(c);
        continue;
      }
      if (is_ident(piece[0])) {
        c.kind = Capture::by_value;
        c.name = first;
        out.push_back(c);
      }
    }
  }

  // -- sink calls -----------------------------------------------------------

  std::vector<std::pair<std::size_t, std::size_t>> arg_ranges(
      std::size_t open_paren) const {
    std::vector<std::pair<std::size_t, std::size_t>> out;
    int paren = 0, bracket = 0, brace = 0;
    std::size_t start = open_paren + 1;
    for (std::size_t k = open_paren; k < t_.size(); ++k) {
      const std::string& x = t_[k].text;
      if (x == "(") { ++paren; continue; }
      if (x == ")") {
        --paren;
        if (paren == 0) {
          if (k > start) out.emplace_back(start, k);
          break;
        }
        continue;
      }
      if (x == "[") ++bracket;
      else if (x == "]") --bracket;
      else if (x == "{") ++brace;
      else if (x == "}") --brace;
      else if (x == "," && paren == 1 && bracket == 0 && brace == 0) {
        out.emplace_back(start, k);
        start = k + 1;
      }
    }
    return out;
  }

  void scan_sinks() {
    for (std::size_t j = fn_.body_begin;
         j < fn_.body_end && j < t_.size(); ++j) {
      if (!is_ident(j) || text(j + 1) != "(") continue;
      const std::string& sink = t_[j].text;
      if (deferred_sinks().count(sink) == 0) continue;
      if (sink == "Fiber" && j > 0 && t_[j - 1].text == "~") continue;
      const auto args = arg_ranges(j + 1);
      for (const auto& [b, e] : args) {
        const Lambda* lam = arg_lambda(b, e);
        if (lam != nullptr) classify(*lam, sink, j);
      }
    }
    // make_unique<...Fiber...>(lambda, ...) — the fiber body outlives the
    // arming frame exactly like a posted closure.
    for (std::size_t j = fn_.body_begin;
         j < fn_.body_end && j < t_.size(); ++j) {
      if (!is_ident(j) || t_[j].text != "make_unique" || text(j + 1) != "<") {
        continue;
      }
      bool fiber = false;
      int depth = 0;
      std::size_t k = j + 1;
      for (; k < t_.size(); ++k) {
        if (t_[k].text == "<") { ++depth; continue; }
        if (t_[k].text == ">") { if (--depth == 0) { ++k; break; } continue; }
        if (t_[k].text == "Fiber") fiber = true;
      }
      if (!fiber || text(k) != "(") continue;
      for (const auto& [b, e] : arg_ranges(k)) {
        const Lambda* lam = arg_lambda(b, e);
        if (lam != nullptr) classify(*lam, "Fiber", j);
      }
    }
  }

  /// The lambda an argument range passes: a literal at the argument's top
  /// level, or a named lambda local (`cont` / `std::move(cont)`).
  const Lambda* arg_lambda(std::size_t b, std::size_t e) const {
    int depth = 0;
    for (std::size_t k = b; k < e && k < t_.size(); ++k) {
      const std::string& x = t_[k].text;
      if (x == "(" || x == "{") { ++depth; continue; }
      if (x == ")" || x == "}") { --depth; continue; }
      if (x == "[" && depth == 0) {
        const auto it = by_intro_.find(k);
        if (it != by_intro_.end()) return &lambdas_[it->second];
        ++depth;  // a subscript — balanced by its `]`
        continue;
      }
      if (x == "]") { --depth; continue; }
    }
    // `name` or `std::move(name)` where name is a recorded lambda local.
    std::vector<std::size_t> idents;
    for (std::size_t k = b; k < e && k < t_.size(); ++k) {
      if (is_ident(k) && t_[k].text != "std" && t_[k].text != "move") {
        idents.push_back(k);
      }
    }
    if (idents.size() == 1) {
      const auto it = by_name_.find(t_[idents[0]].text);
      if (it != by_name_.end()) return &lambdas_[it->second];
    }
    return nullptr;
  }

  // -- classification -------------------------------------------------------

  void classify(const Lambda& lam, const std::string& sink,
                std::size_t sink_tok) {
    const int sink_line = t_[sink_tok].line;
    for (const auto& c : lam.captures) {
      switch (c.kind) {
        case Capture::by_value:
        case Capture::star_this:
          break;
        case Capture::by_ref:
        case Capture::ref_init:
          report_by_ref(c, sink, sink_line, lam.line);
          break;
        case Capture::ptr_init: {
          const auto it = frame_.find(c.name);
          if (it != frame_.end() && !it->second.is_ref) {
            report(diags_, tu_, c.line, "closure-lifetime", c.name,
                   "init-capture materializes a pointer to stack " +
                       std::string(it->second.is_param ? "parameter"
                                                       : "local") +
                       " '" + c.name + "' of " + key() +
                       "() in a closure deferred via " + sink +
                       "() [capture '= &" + c.name + "' (" + base() + ":" +
                       std::to_string(c.line) + ") -> " + sink + "() at " +
                       base() + ":" + std::to_string(sink_line) +
                       " -> fires after " + key() +
                       "() returns]; copy the value, or point at a "
                       "caller-owned object");
          }
          break;
        }
        case Capture::default_ref: {
          // Evidence-based: report each enclosing local/parameter the
          // lambda body actually touches.
          std::set<std::string> seen;
          for (std::size_t m = lam.body_begin;
               m < lam.body_end && m < t_.size(); ++m) {
            if (!is_ident(m)) continue;
            const auto it = frame_.find(t_[m].text);
            if (it == frame_.end() || !seen.insert(t_[m].text).second) {
              continue;
            }
            Capture implied;
            implied.kind = Capture::by_ref;
            implied.name = t_[m].text;
            implied.line = lam.line;
            report_by_ref(implied, sink, sink_line, lam.line,
                          /*via_default=*/true);
          }
          break;
        }
        case Capture::this_ptr:
        case Capture::default_value:
          if (c.kind == Capture::default_value && fn_.owner.empty()) break;
          if (!cancellable_sink(sink)) break;  // ownership convention
          if (!receiver_cancelled(sink_tok) && !dtor_cancels(fn_.owner)) {
            const std::string how =
                c.kind == Capture::this_ptr ? "'this' captured"
                                            : "default '=' capture (implicit "
                                              "this) flows";
            report(diags_, tu_, c.line, "closure-lifetime", "this",
                   how + " into a cancellable event armed via " + sink +
                       "() but never cancelled: " + key() +
                       "() does not cancel the returned EventHandle before "
                       "returning and " +
                       (fn_.owner.empty() ? "no destructor"
                                          : "~" + fn_.owner + "()") +
                       " cancels no handles [arm at " + base() + ":" +
                       std::to_string(sink_line) +
                       "]; a destroyed owner leaves a live event with a "
                       "dangling this — cancel in the destructor or before "
                       "the frame returns");
          }
          break;
      }
    }
  }

  void report_by_ref(const Capture& c, const std::string& sink, int sink_line,
                     int lam_line, bool via_default = false) {
    const auto it = frame_.find(c.name);
    const bool known = it != frame_.end();
    const bool is_ref = known && it->second.is_ref;
    const bool is_param = known && it->second.is_param;
    const std::string how =
        via_default ? "default '&' capture pulls in '" + c.name + "'"
                    : "'&" + c.name + "' captured by reference";
    const std::string chain =
        " [lambda at " + base() + ":" + std::to_string(lam_line) + " -> " +
        sink + "() at " + base() + ":" + std::to_string(sink_line) +
        " -> fires after " + key() + "() returns]";
    if (is_ref) {
      report(diags_, tu_, c.line, "closure-lifetime", c.name,
             how + " in a closure deferred via " + sink + "(): '" + c.name +
                 "' is a reference " +
                 (is_param ? "parameter" : "binding") + " of " + key() +
                 "(), so the capture silently aliases a caller-owned object "
                 "with no lifetime tie to the deferred event" +
                 chain +
                 "; init-capture the address by value ('p = &" + c.name +
                 "') to make the aliasing explicit, and cancel the event "
                 "when the referent dies");
    } else {
      report(diags_, tu_, c.line, "closure-lifetime", c.name,
             how + " in a closure deferred via " + sink + "(): '" + c.name +
                 "' is a " +
                 (is_param ? "parameter" : "stack local") + " of " + key() +
                 "() and is destroyed when the frame returns, before the "
                 "event can fire" +
                 chain + "; capture by value instead");
    }
  }

  /// The arming frame cancels the handle it received: `h = ...sink(...)`
  /// followed by `h.cancel()` later in the same body.
  bool receiver_cancelled(std::size_t sink_tok) const {
    std::size_t i = sink_tok;
    while (i >= 2 && (t_[i - 1].text == "." || t_[i - 1].text == "->") &&
           is_ident(i - 2)) {
      i -= 2;
    }
    if (i < 2 || t_[i - 1].text != "=" || !is_ident(i - 2)) return false;
    if (i >= 3 && t_[i - 3].text == "=") return false;  // `==`
    const std::string recv = t_[i - 2].text;
    for (std::size_t m = fn_.body_begin;
         m + 3 < fn_.body_end && m + 3 < t_.size(); ++m) {
      if (t_[m].text == recv &&
          (t_[m + 1].text == "." || t_[m + 1].text == "->") &&
          t_[m + 2].text == "cancel" && t_[m + 3].text == "(") {
        return true;
      }
    }
    return false;
  }

  /// ~Owner() (anywhere in the project) cancels at least one EventHandle.
  bool dtor_cancels(const std::string& owner) const {
    if (owner.empty()) return false;
    const std::string dtor = "~" + owner;
    for (const auto& tu : p_.tus) {
      for (const auto& fn : tu.functions) {
        if (!fn.is_definition || fn.name != dtor || fn.owner != owner) {
          continue;
        }
        for (const auto& call : fn.calls) {
          if (call.callee == "cancel") return true;
        }
      }
    }
    return false;
  }

  const Project& p_;
  const TranslationUnit& tu_;
  const FunctionDecl& fn_;
  std::vector<Diagnostic>& diags_;
  const std::vector<Token>& t_;
  std::map<std::string, FrameVar> frame_;
  std::vector<Lambda> lambdas_;
  std::map<std::size_t, std::size_t> by_intro_;  // `[` token -> lambda index
  std::map<std::string, std::size_t> by_name_;   // local name -> lambda index
};

}  // namespace

void run_closure_rules(const Project& project,
                       std::vector<Diagnostic>& diags) {
  for (const auto& tu : project.tus) {
    for (const auto& fn : tu.functions) {
      if (!fn.is_definition) continue;
      FnScan(project, tu, fn, diags).run();
    }
  }
}

}  // namespace icsim_lint
