// icsim_trace — inspector and smoke-harness for .icst replay traces.
//
//   icsim_trace dump <file>                 parse and re-emit as text
//   icsim_trace stats <file|dir>...         per-trace op/byte summaries
//   icsim_trace validate <file|dir>...      parse + consistency check
//   icsim_trace convert <in> <out>          transcode (--binary for framed)
//   icsim_trace capture <dir> [--net ib|el] capture a built-in pingpong
//   icsim_trace replay <dir> [--net ib|el]  replay a trace set
//
// `capture` and `replay` print a single machine-readable line
// (`digest=<hex> events=<n> ranks=<n>`) so CI can diff capture vs replay
// digests without any test framework.

#include <array>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "core/cluster.hpp"
#include "replay/capture.hpp"
#include "replay/format.hpp"
#include "replay/replay.hpp"

namespace {

using icsim::replay::Op;
using icsim::replay::RankTrace;
using icsim::replay::TraceOp;
using icsim::replay::TraceProgram;

int usage() {
  std::fprintf(
      stderr,
      "usage: icsim_trace <command> ...\n"
      "  dump <file>                 parse a trace and re-emit it as text\n"
      "  stats <file|dir>...         op counts and byte totals per trace\n"
      "  validate <file|dir>...      parse + consistency-check, exit 1 on "
      "failure\n"
      "  convert <in> <out>          rewrite a trace (--binary for framed "
      "encoding)\n"
      "  capture <dir> [--net ib|el] run a built-in pingpong, capturing to "
      "<dir>\n"
      "  replay <dir> [--net ib|el]  replay the trace set in <dir>\n");
  return 2;
}

/// Expand an argument into trace files: a directory yields its *.icst
/// members (sorted), anything else is taken as a file path.
std::vector<std::string> expand(const std::string& arg) {
  std::error_code ec;
  if (!std::filesystem::is_directory(arg, ec)) return {arg};
  std::vector<std::string> files;
  for (std::filesystem::directory_iterator it(arg, ec), end; !ec && it != end;
       it.increment(ec)) {
    if (it->is_regular_file() && it->path().extension() == ".icst") {
      files.push_back(it->path().string());
    }
  }
  std::sort(files.begin(), files.end());
  return files;
}

int cmd_dump(const std::string& path) {
  const RankTrace t = icsim::replay::parse_file(path);
  icsim::replay::write_text(std::cout, t);
  return 0;
}

int cmd_stats(const std::vector<std::string>& args) {
  for (const std::string& arg : args) {
    for (const std::string& path : expand(arg)) {
      const RankTrace t = icsim::replay::parse_file(path);
      std::map<std::string, std::uint64_t> counts;
      std::uint64_t p2p_bytes = 0;
      std::int64_t compute_ps = 0;
      for (const TraceOp& o : t.ops) {
        ++counts[icsim::replay::op_name(o.op)];
        if (o.op == Op::send || o.op == Op::isend) {
          p2p_bytes += static_cast<std::uint64_t>(o.bytes);
        }
        if (o.op == Op::sendrecv) {
          p2p_bytes += static_cast<std::uint64_t>(o.bytes);
        }
        if (o.op == Op::compute) compute_ps += o.duration.picoseconds();
      }
      std::printf("%s: rank %d/%d, %zu ops, %llu p2p send bytes, %.3f ms "
                  "compute\n",
                  path.c_str(), t.rank, t.size, t.ops.size(),
                  static_cast<unsigned long long>(p2p_bytes),
                  static_cast<double>(compute_ps) / 1e9);
      for (const auto& [name, n] : counts) {
        std::printf("  %-10s %llu\n", name.c_str(),
                    static_cast<unsigned long long>(n));
      }
    }
  }
  return 0;
}

int cmd_validate(const std::vector<std::string>& args) {
  int checked = 0;
  for (const std::string& arg : args) {
    std::error_code ec;
    if (std::filesystem::is_directory(arg, ec)) {
      // Directories are validated as complete programs (rank coverage and
      // world-size consistency), not just file by file.
      const TraceProgram p = TraceProgram::load_dir(arg);
      std::printf("%s: ok (%d ranks, %zu ops)\n", arg.c_str(), p.size(),
                  p.total_ops());
      ++checked;
    } else {
      const RankTrace t = icsim::replay::parse_file(arg);
      std::printf("%s: ok (rank %d/%d, %zu ops)\n", arg.c_str(), t.rank,
                  t.size, t.ops.size());
      ++checked;
    }
  }
  if (checked == 0) {
    std::fprintf(stderr, "icsim_trace: nothing to validate\n");
    return 2;
  }
  return 0;
}

int cmd_convert(const std::string& in, const std::string& out, bool binary) {
  const RankTrace t = icsim::replay::parse_file(in);
  std::ofstream f(out, std::ios::binary);
  if (!f) {
    std::fprintf(stderr, "icsim_trace: cannot write %s\n", out.c_str());
    return 1;
  }
  if (binary) {
    icsim::replay::write_binary(f, t);
  } else {
    icsim::replay::write_text(f, t);
  }
  return f.good() ? 0 : 1;
}

icsim::core::ClusterConfig config_for(const std::string& net, int nodes,
                                      int ppn) {
  if (net == "ib") return icsim::core::ib_cluster(nodes, ppn);
  if (net == "el") return icsim::core::elan_cluster(nodes, ppn);
  throw std::runtime_error("unknown fabric '" + net + "' (want ib or el)");
}

/// The built-in capture workload: a 2-rank pingpong plus one collective
/// round, small enough for CI but touching p2p, nonblocking and
/// collective paths.
void smoke_workload(icsim::mpi::Mpi& m) {
  std::array<char, 4096> buf{};
  const int peer = 1 - m.rank();
  for (const std::size_t bytes : {64UL, 1024UL, 4096UL}) {
    for (int rep = 0; rep < 4; ++rep) {
      if (m.rank() == 0) {
        m.send(buf.data(), bytes, peer, 7);
        m.recv(buf.data(), buf.size(), peer, 7);
      } else {
        m.recv(buf.data(), buf.size(), peer, 7);
        m.send(buf.data(), bytes, peer, 7);
      }
    }
  }
  auto r = m.irecv(buf.data(), buf.size(), peer, 9);
  auto s = m.isend(buf.data(), 256, peer, 9);
  m.wait(s);
  m.wait(r);
  double v = 1.0;
  (void)m.allreduce(v, icsim::mpi::ReduceOp::sum);
  m.barrier();
}

int cmd_capture(const std::string& dir, const std::string& net) {
  icsim::core::ClusterConfig cc = config_for(net, 2, 1);
  cc.mpi_trace_dir = dir;
  icsim::core::Cluster cluster(cc);
  (void)cluster.run(smoke_workload);
  const auto st = cluster.stats();
  std::printf("digest=%016llx events=%llu ranks=%d\n",
              static_cast<unsigned long long>(st.event_digest),
              static_cast<unsigned long long>(st.events_processed),
              cluster.ranks());
  return 0;
}

int cmd_replay(const std::string& dir, const std::string& net) {
  const TraceProgram program = TraceProgram::load_dir(dir);
  icsim::core::ClusterConfig cc =
      config_for(net, program.nodes(), program.ppn());
  icsim::core::Cluster cluster(cc);
  (void)cluster.run([&program](icsim::mpi::Mpi& m) { program.run_rank(m); });
  const auto st = cluster.stats();
  std::printf("digest=%016llx events=%llu ranks=%d\n",
              static_cast<unsigned long long>(st.event_digest),
              static_cast<unsigned long long>(st.events_processed),
              cluster.ranks());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  std::vector<std::string> args;
  bool binary = false;
  std::string net = "ib";
  for (int i = 2; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--binary") {
      binary = true;
    } else if (a == "--net") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "icsim_trace: --net needs a value\n");
        return 2;
      }
      net = argv[++i];
    } else {
      args.push_back(a);
    }
  }

  try {
    if (cmd == "dump" && args.size() == 1) return cmd_dump(args[0]);
    if (cmd == "stats" && !args.empty()) return cmd_stats(args);
    if (cmd == "validate" && !args.empty()) return cmd_validate(args);
    if (cmd == "convert" && args.size() == 2) {
      return cmd_convert(args[0], args[1], binary);
    }
    if (cmd == "capture" && args.size() == 1) return cmd_capture(args[0], net);
    if (cmd == "replay" && args.size() == 1) return cmd_replay(args[0], net);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "icsim_trace: %s\n", e.what());
    return 1;
  }
  return usage();
}
