#!/usr/bin/env python3
"""Compare two bench snapshots and flag events/sec regressions.

Usage:
    tools/bench_compare.py BENCH_7.json BENCH_6.json [--threshold 0.10]
                           [--strict]

Reads the ``events_per_sec`` of the new and old snapshots written by
``tools/bench_snapshot.py`` and reports the relative change.  A drop larger
than ``--threshold`` (default 10%) emits a GitHub Actions ``::warning``
annotation; with ``--strict`` it becomes a hard failure instead.

The snapshot series is append-only in its group set, so events/sec stays
meaningful across snapshots: it measures aggregate simulator throughput
(simulation events retired per wall-clock second), not per-group work.
"""

import argparse
import json
import sys


def load(path):
    with open(path) as f:
        snap = json.load(f)
    for key in ("snapshot", "events_per_sec"):
        if key not in snap or snap[key] is None:
            sys.exit(f"bench_compare: {path} has no usable '{key}'")
    return snap


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("new", help="newer BENCH_<n>.json")
    ap.add_argument("old", help="older BENCH_<m>.json to compare against")
    ap.add_argument("--threshold", type=float, default=0.10,
                    help="relative events/sec drop that triggers the "
                         "warning (default 0.10)")
    ap.add_argument("--strict", action="store_true",
                    help="exit nonzero on regression instead of warning")
    args = ap.parse_args()

    new, old = load(args.new), load(args.old)
    n, o = new["events_per_sec"], old["events_per_sec"]
    change = (n - o) / o
    print(f"snapshot {old['snapshot']}: {o} events/s "
          f"({old.get('points', '?')} points)")
    print(f"snapshot {new['snapshot']}: {n} events/s "
          f"({new.get('points', '?')} points)")
    print(f"change: {change:+.1%} (threshold -{args.threshold:.0%})")

    if change < -args.threshold:
        msg = (f"simulator throughput regressed {-change:.1%}: "
               f"{o} -> {n} events/s "
               f"(snapshot {old['snapshot']} -> {new['snapshot']})")
        if args.strict:
            sys.exit(f"bench_compare: {msg}")
        # GitHub Actions annotation; plain stdout elsewhere.
        print(f"::warning title=bench regression::{msg}")
    else:
        print("ok: within threshold")


if __name__ == "__main__":
    main()
