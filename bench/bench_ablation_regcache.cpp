// Ablation: registration-cache capacity (DESIGN.md section 6, item 4).
//
// The Figure 1(b) InfiniBand bandwidth collapse at 4 MB is registration
// thrash: the Pallas pair of 4 MB application buffers exceeds MVAPICH
// 0.9.2's pinning budget, so buffers are deregistered and re-pinned every
// iteration.  The paper notes it was "reportedly fixed in subsequent
// versions of MVAPICH" — i.e., with a larger cache.  This bench sweeps the
// capacity and shows the dip appearing and disappearing.

#include <cstdio>

#include "core/cluster.hpp"
#include "core/report.hpp"
#include "microbench/pingpong.hpp"

int main() {
  using namespace icsim;

  microbench::PingPongOptions opt;
  opt.sizes = {1 << 20, 2 << 20, 4 << 20, 8 << 20};
  opt.repetitions = 8;
  opt.warmup = 2;

  const std::uint64_t capacities_mb[] = {3, 7, 32, 256};

  std::printf("Ablation: registration-cache capacity vs large-message "
              "ping-pong bandwidth (InfiniBand, MB/s)\n\n");
  core::Table t({"msg bytes", "cache 3MB", "cache 7MB", "cache 32MB",
                 "cache 256MB"});
  std::vector<std::vector<microbench::PingPongPoint>> curves;
  for (const auto mb : capacities_mb) {
    core::ClusterConfig cc = core::ib_cluster(2);
    cc.hca.reg_cache_capacity = mb << 20;
    curves.push_back(microbench::run_pingpong(cc, opt));
  }
  t.print_header();
  for (std::size_t i = 0; i < opt.sizes.size(); ++i) {
    t.print_row({core::fmt_int(static_cast<long>(opt.sizes[i])),
                 core::fmt(curves[0][i].bandwidth_mbs, 0),
                 core::fmt(curves[1][i].bandwidth_mbs, 0),
                 core::fmt(curves[2][i].bandwidth_mbs, 0),
                 core::fmt(curves[3][i].bandwidth_mbs, 0)});
  }
  std::printf("\n(7 MB is the calibrated MVAPICH 0.9.2 budget: the 4 MB dip "
              "of Figure 1(b); 32+ MB is the 'subsequent versions' fix)\n");
  return 0;
}
