// Extension: direct large-scale simulation vs the paper's extrapolation.
//
// Section 7 names system scale as the study's biggest limitation — the
// testbed stopped at 32 Elan-4 nodes and Figure 8 had to ASSUME the 8..32
// node trends continue.  A simulator does not have that limitation: here
// we run the membrane study directly at 64..256 nodes and compare the
// measured efficiencies with what the Figure 8 trend fit predicts from the
// first 32 nodes alone.
//
// Thin wrapper over the ext_scale scenario group (see src/driver/).

#include "driver/sweep_main.hpp"
#include "scenarios/scenarios.hpp"

int main(int argc, char** argv) {
  icsim::driver::Registry reg;
  icsim::bench::register_ext_scale(reg);
  return icsim::driver::sweep_main(reg, argc, argv);
}
