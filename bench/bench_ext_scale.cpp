// Extension: direct large-scale simulation vs the paper's extrapolation.
//
// Section 7 names system scale as the study's biggest limitation — the
// testbed stopped at 32 Elan-4 nodes and Figure 8 had to ASSUME the 8..32
// node trends continue.  A simulator does not have that limitation: here
// we run the membrane study directly at 64..256 nodes and compare the
// measured efficiencies with what the Figure 8 trend fit predicts from the
// first 32 nodes alone.

#include <cstdio>
#include <cstdlib>

#include "apps/lammps/md.hpp"
#include "core/cluster.hpp"
#include "core/extrapolate.hpp"
#include "core/report.hpp"

namespace {

double run_case(icsim::core::Network net, int nodes,
                const icsim::apps::md::MdConfig& mc) {
  using namespace icsim;
  core::ClusterConfig cc = net == core::Network::infiniband
                               ? core::ib_cluster(nodes, 1)
                               : core::elan_cluster(nodes, 1);
  core::Cluster cluster(cc);
  double seconds = 0.0;
  cluster.run([&](mpi::Mpi& mpi) {
    const auto r = apps::md::run_md(mpi, mc);
    if (mpi.rank() == 0) seconds = r.loop_seconds;
  });
  return seconds;
}

}  // namespace

int main() {
  using namespace icsim;

  apps::md::MdConfig mc = apps::md::membrane_config();
  mc.cells_x = mc.cells_y = mc.cells_z = 6;
  mc.steps = 20;
  int max_nodes = 256;
  if (std::getenv("ICSIM_FAST") != nullptr) {
    mc.cells_x = mc.cells_y = mc.cells_z = 5;
    mc.steps = 8;
    max_nodes = 64;
  }

  std::printf("Extension: membrane study simulated directly beyond the "
              "testbed's 32 nodes, vs the Figure 8 trend fit\n\n");

  const double ib1 = run_case(core::Network::infiniband, 1, mc);
  const double ib8 = run_case(core::Network::infiniband, 8, mc);
  const double ib32 = run_case(core::Network::infiniband, 32, mc);
  const double el1 = run_case(core::Network::quadrics, 1, mc);
  const double el8 = run_case(core::Network::quadrics, 8, mc);
  const double el32 = run_case(core::Network::quadrics, 32, mc);
  const auto ib_trend = core::fit_scaled_trend(ib1, 8, ib8, 32, ib32);
  const auto el_trend = core::fit_scaled_trend(el1, 8, el8, 32, el32);

  core::Table t({"nodes", "IB eff%", "IB trend%", "El eff%", "El trend%"});
  t.print_header();
  for (int nodes = 64; nodes <= max_nodes; nodes *= 2) {
    const double ib = run_case(core::Network::infiniband, nodes, mc);
    const double el = run_case(core::Network::quadrics, nodes, mc);
    t.print_row({core::fmt_int(nodes), core::fmt(100.0 * ib1 / ib, 1),
                 core::fmt(100.0 * ib_trend.efficiency_at(nodes), 1),
                 core::fmt(100.0 * el1 / el, 1),
                 core::fmt(100.0 * el_trend.efficiency_at(nodes), 1)});
  }
  std::printf("\nReading: where measured and trend columns agree, the "
              "paper's 'assume the trend continues' extrapolation was "
              "sound in this model; deviations quantify its optimism.\n");
  return 0;
}
