#pragma once
// Scenario registration for every figure / extension study of the
// reproduction.  Each register_* call adds one output group (two for the
// fault study) of self-contained sweep points to the registry; the
// per-figure bench binaries call exactly one of them, icsim_sweep calls
// register_all().  Registration order is fixed here — it defines the
// aggregated output order (see driver/scenario.hpp).
//
// All registration functions read ICSIM_FAST at registration time to pick
// reduced problem sizes, mirroring what the original bench binaries did.

#include "driver/scenario.hpp"

namespace icsim::bench {

void register_fig1_latency(driver::Registry& r);
void register_fig1_bandwidth(driver::Registry& r);
void register_fig1_beff(driver::Registry& r);
void register_fig2_ljs(driver::Registry& r);
void register_fig3_membrane(driver::Registry& r);
void register_fig4_sweep3d(driver::Registry& r);
void register_fig5_sweep3d_inputs(driver::Registry& r);
void register_fig6_npb_cg(driver::Registry& r);
void register_fig7_cost(driver::Registry& r);
void register_fig8_extrapolation(driver::Registry& r);
void register_fig8_simulated(driver::Registry& r);  // parallel engine (src/par/)
void register_ext_threeway(driver::Registry& r);
void register_ext_npb_suite(driver::Registry& r);
void register_ext_scale(driver::Registry& r);
void register_ext_loggp(driver::Registry& r);
void register_ext_collectives(driver::Registry& r);
void register_ext_faults(driver::Registry& r);  // ext_faults_ber + _spine
void register_replay(driver::Registry& r);      // examples/traces/* x fabrics
void register_traffic(driver::Registry& r);     // traffic + traffic_degraded

/// Everything above, in figure order.
void register_all(driver::Registry& r);

}  // namespace icsim::bench
