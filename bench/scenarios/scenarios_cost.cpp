// Figure 7 / Tables 2-3 scenario group: network cost per port vs system
// size for the four build-outs the paper compares.
//
// Paper shape targets: Quadrics Elan-4 is the most expensive line; IB from
// 96-port switches is cost-comparable (~6.5% network-per-node delta at
// large scale); the newer 24-port + 288-port builds drop the cost
// dramatically.  With a $2,500 node, total-system deltas are ~4% (vs the
// 96-port build) and ~51% (vs the 24/288 build).
//
// These points evaluate a closed-form price model — no simulation, so
// events and digest stay zero (constant, hence still deterministic).

#include <string>
#include <vector>

#include "common.hpp"
#include "cost/cost_model.hpp"
#include "scenarios.hpp"

namespace icsim::bench {

void register_fig7_cost(driver::Registry& reg) {
  auto& g = reg.group("fig7_cost",
                      "Figure 7: network cost per port (USD) vs nodes");
  g.finalize = [](std::vector<driver::PointResult>&) {
    const cost::IbPrices ib;
    const cost::QuadricsPrices qs;
    std::vector<std::string> out;
    out.push_back("Table 2 (InfiniBand list prices, April 2004; [i] = "
                  "inferred, see pricing.hpp):");
    out.push_back(line("  HCS 400 4X HCA $%.0f | 4X copper cable $%.0f | "
                       "96-port [i] $%.0f | 24-port [i] $%.0f | "
                       "288-port [i] $%.0f",
                       ib.hca, ib.host_cable, ib.sw96_port, ib.sw24_port,
                       ib.sw288_port));
    out.push_back("Table 3 (Quadrics Elan-4 list prices):");
    out.push_back(line("  QM-500 adapter [i] $%.0f | node chassis $%.0f | "
                       "top switch $%.0f | QM580 clock $%.0f | "
                       "5m cable $%.0f | 3m cable $%.0f",
                       qs.adapter, qs.node_chassis, qs.top_switch,
                       qs.clock_source, qs.cable_5m, qs.cable_3m));
    const int n = 1024;
    const double q = cost::total_system_per_node(cost::quadrics_network(n), n);
    const double i96 = cost::total_system_per_node(cost::ib96_network(n), n);
    const double i24 =
        cost::total_system_per_node(cost::ib_24_288_network(n, false), n);
    out.push_back(line("Section 5 anchors at %d nodes ($2500/node): "
                       "network/node Elan $%.0f vs IB-96 $%.0f -> %.1f%% "
                       "delta (paper ~6.5%%)",
                       n, cost::quadrics_network(n).per_node(n),
                       cost::ib96_network(n).per_node(n),
                       100.0 * (cost::quadrics_network(n).per_node(n) /
                                    cost::ib96_network(n).per_node(n) -
                                1.0)));
    out.push_back(line("  total system: Elan/IB-96 = %.2f (paper ~1.04), "
                       "Elan/IB-24+288 = %.2f (paper ~1.51)",
                       q / i96, q / i24));
    return out;
  };

  for (const int n :
       {8, 16, 32, 64, 96, 128, 256, 288, 512, 1024, 2048, 4096}) {
    reg.add("fig7_cost", std::to_string(n) + "n", [n]() {
      driver::PointResult r;
      r.add("nodes", n, 0);
      r.add("Elan-4", cost::quadrics_network(n).per_node(n), 0);
      r.add("IB 96p", cost::ib96_network(n).per_node(n), 0);
      r.add("IB 24/288", cost::ib_24_288_network(n, false).per_node(n), 0);
      r.add("IB 24/288 fb", cost::ib_24_288_network(n, true).per_node(n), 0);
      return r;
    });
  }
}

}  // namespace icsim::bench
