// Open-loop traffic scenario groups (no paper figure — the 2004 study's
// workloads are closed-loop; this asks how each fabric behaves as the
// *serving* substrate the roadmap targets, where load is offered at a
// configured rate and the figure of merit is the sojourn-time tail).
//
// `traffic` sweeps offered load from 10% to 120% on both networks, across
// six traffic shapes: Poisson-uniform, bursty MMPP-uniform, hotspot,
// incast, all-to-all shuffle, and RPC fan-out/fan-in.  `load = 1.0` is
// one client/server pair's *measured* closed-loop serving capacity at the
// configured request size (traffic::calibrated_capacity_Bps) — not the
// raw link rate, which serving-sized messages cannot reach.  Below
// saturation the tails stay flat; the knee sits near half of one pair's
// capacity (every rank both serves and injects), and past it delivery
// collapses while tails diverge — incast soonest, because N clients share
// one receiver's capacity.
//
// `traffic_degraded` pins the PR-2 saturating flow sets across leaf 0's
// up-cables at rate-paced 90% load in 64 kB streaming requests (wires,
// not hosts, are the bottleneck, and the clean tail stays flat) and
// overlays a cable-cut window (expressed in the ICSIM_FAULTS grammar,
// exercising the parser) over the middle of the run.  The 4-ary Elan tree
// must reroute the displaced flow onto a busy cable, so its p99 degrades
// measurably; the 12-port IB Clos has idle parallel cables and absorbs
// the cut.

#include <cstddef>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "common.hpp"
#include "fault/plan.hpp"
#include "scenarios.hpp"
#include "traffic/workload.hpp"

namespace icsim::bench {

namespace {

struct TrafficShape {
  const char* tag;
  traffic::ArrivalKind arrival;
  traffic::PatternConfig pattern;
};

std::vector<TrafficShape> traffic_shapes() {
  using traffic::ArrivalKind;
  using traffic::PatternKind;
  std::vector<TrafficShape> shapes;
  shapes.push_back({"uniform", ArrivalKind::poisson, {}});
  {
    TrafficShape s{"burst", ArrivalKind::mmpp, {}};
    shapes.push_back(s);
  }
  {
    TrafficShape s{"hotspot", ArrivalKind::poisson, {}};
    s.pattern.kind = PatternKind::hotspot;
    shapes.push_back(s);
  }
  {
    TrafficShape s{"incast", ArrivalKind::poisson, {}};
    s.pattern.kind = PatternKind::incast;
    shapes.push_back(s);
  }
  {
    TrafficShape s{"shuffle", ArrivalKind::poisson, {}};
    s.pattern.kind = PatternKind::shuffle;
    shapes.push_back(s);
  }
  {
    TrafficShape s{"rpc", ArrivalKind::poisson, {}};
    s.pattern.kind = PatternKind::rpc;
    shapes.push_back(s);
  }
  return shapes;
}

constexpr double kLoads[] = {0.1, 0.3, 0.5, 0.7, 0.9, 1.2};
constexpr core::Network kTrafficNets[] = {core::Network::infiniband,
                                          core::Network::quadrics};

int traffic_nodes() { return fast_mode() ? 8 : 16; }
int traffic_requests() { return fast_mode() ? 64 : 256; }

traffic::TrafficConfig shape_config(const TrafficShape& shape, double load) {
  traffic::TrafficConfig cfg;
  cfg.arrival.kind = shape.arrival;
  cfg.pattern = shape.pattern;
  cfg.load = load;
  cfg.requests_per_client = traffic_requests();
  cfg.client_backlog_cap = 64;  // saturation surfaces as counted drops
  if (cfg.pattern.kind == traffic::PatternKind::rpc) {
    cfg.service = sim::Time::us(2.0);
  }
  return cfg;
}

/// Run one open-loop point: fresh cluster, fresh workload, stats to metrics.
driver::PointResult run_traffic_point(core::Network net, int nodes,
                                      const traffic::TrafficConfig& cfg,
                                      const fault::FaultPlan& faults = {}) {
  driver::PointResult r;
  traffic::Workload w(cfg, net, nodes);
  core::ClusterConfig cc = cluster_for(net, nodes);
  cc.faults = faults;
  run_cluster(r, cc, [&w](mpi::Mpi& m) { w.rank_main(m); });
  const traffic::RunStats s = w.stats();
  r.add("offered MB/s", s.offered_mbs, 1);
  r.add("delivered MB/s", s.delivered_mbs, 1);
  r.add("delivery", s.delivery_ratio(), 3);
  r.add("p50 us", s.p50_us, 1);
  r.add("p99 us", s.p99_us, 1);
  r.add("p999 us", s.p999_us, 1);
  r.add("mean us", s.mean_us, 1);
  r.add("max us", s.max_us, 1);
  r.add("late", static_cast<double>(s.stragglers), 0);
  r.add("drops", static_cast<double>(s.dropped), 0);
  return r;
}

// ---- degraded-fabric study: the PR-2 saturating flow sets (every up-cable
// of leaf switch 0 carries one flow), re-expressed as a `pairs` pattern.

struct FlowSet {
  int nodes = 0;
  std::vector<std::pair<int, int>> flows;
};

FlowSet degraded_flows(core::Network net) {
  if (net == core::Network::quadrics) {
    // 4-ary tree, leaves of 4: all four up-cables of leaf 0 busy.
    return {20, {{0, 16}, {1, 5}, {2, 10}, {3, 15}}};
  }
  // 12-port Clos, leaves of 12: 3 of 12 up-cables busy — idle spares exist.
  return {48, {{0, 13}, {1, 25}, {2, 37}}};
}

/// The up-cable the second flow's default route climbs through.  Topology
/// inspection on a throwaway cluster; its stats are not folded anywhere.
fault::LinkRef victim_cable(core::Network net, const FlowSet& fs) {
  core::Cluster cluster(cluster_for(net, fs.nodes));
  const auto& topo = cluster.fabric().topology();
  const auto& [src, dst] = fs.flows[1];
  for (const auto& h : topo.route(src, dst)) {
    if (h.kind == net::Hop::Kind::switch_to_switch &&
        h.to.level > h.from.level) {
      return fault::LinkRef::between(h.from, h.to);
    }
  }
  throw std::logic_error("flow route never climbs");
}

traffic::TrafficConfig degraded_config(const FlowSet& fs) {
  traffic::TrafficConfig cfg;
  // Rate-paced arrivals isolate the fabric effect: the clean tail is flat,
  // so the queueing a cut induces surfaces directly in p99 instead of
  // drowning under Poisson burst excursions.
  cfg.arrival.kind = traffic::ArrivalKind::fixed;
  cfg.pattern.kind = traffic::PatternKind::pairs;
  cfg.pattern.flows = fs.flows;
  cfg.load = 0.9;
  // Streaming-sized requests: the wires, not the hosts, must be the
  // bottleneck for a missing cable to matter (PR-2's saturating flows are
  // 64KB for the same reason).
  cfg.request_bytes = 65536;
  cfg.requests_per_client = fast_mode() ? 48 : 128;
  return cfg;
}

/// The cut window in the ICSIM_FAULTS grammar — the degraded point goes
/// through the same string form a user would export, so the sweep also
/// exercises FaultPlan::parse.
std::string cut_spec(core::Network net, const FlowSet& fs,
                     sim::Time horizon) {
  const fault::LinkRef cable = victim_cable(net, fs);
  return line("link %s down@%.3fus:%.3fus", cable.to_string().c_str(),
              0.3 * horizon.to_us(), 0.6 * horizon.to_us());
}

}  // namespace

void register_traffic(driver::Registry& reg) {
  const std::vector<TrafficShape> shapes = traffic_shapes();
  const std::size_t nshapes = shapes.size();
  const std::size_t nloads = std::size(kLoads);

  auto& group = reg.group(
      "traffic", line("Extension: open-loop traffic, %d nodes, %d req/client "
                      "(sojourn from scheduled arrival)",
                      traffic_nodes(), traffic_requests()));
  group.finalize = [nshapes, nloads](std::vector<driver::PointResult>& pts) {
    // Net-major, shape-major, load-minor.  Anchor: at 120% offered load the
    // N->1 incast tail separates the two fabrics.
    const std::size_t per_net = nshapes * nloads;
    const std::size_t incast_hi = 3 * nloads + (nloads - 1);  // shapes[3]
    std::vector<std::string> notes;
    if (pts.size() >= 2 * per_net) {
      const double ib = pts[incast_hi].value("p99 us");
      const double el = pts[per_net + incast_hi].value("p99 us");
      if (ib > 0.0) {
        notes.push_back(line(
            "anchor: incast@120%%: p99 %.1fus (ib) vs %.1fus (el), el/ib "
            "= %.2f — the saturated tails diverge",
            ib, el, el / ib));
      }
    }
    notes.emplace_back(
        "anchor: delivery ~1.0 and a flat tail at 10-30% load; the knee "
        "sits near half of one pair's calibrated capacity (every rank both "
        "serves and injects), and past it delivery collapses while the "
        "tail grows superlinearly");
    return notes;
  };

  for (const auto net : kTrafficNets) {
    for (std::size_t si = 0; si < nshapes; ++si) {
      for (const double load : kLoads) {
        const TrafficShape& shape = shapes[si];
        reg.add("traffic",
                line("%s/%s/%03d", net_tag(net), shape.tag,
                     static_cast<int>(load * 100.0 + 0.5)),
                [net, shape, load]() {
                  return run_traffic_point(net, traffic_nodes(),
                                           shape_config(shape, load));
                });
      }
    }
  }

  auto& dgroup = reg.group(
      "traffic_degraded",
      "Extension: 90% open-loop load across leaf 0's cut, cable down "
      "30%..60% of the run (ICSIM_FAULTS grammar)");
  dgroup.finalize = [](std::vector<driver::PointResult>& pts) {
    // Per net: clean, cut.  The ratio quantifies how much of the cut each
    // topology's spare capacity hides.
    std::vector<std::string> notes;
    for (std::size_t c = 0; c + 1 < pts.size(); c += 2) {
      const double clean = pts[c].value("p99 us");
      const double cut = pts[c + 1].value("p99 us");
      if (clean > 0.0) pts[c + 1].add("p99 vs clean", cut / clean, 2);
    }
    notes.emplace_back(
        "anchor: the cut window degrades Elan's p99 (displaced flow shares "
        "a busy 4-ary cable) while the IB Clos absorbs it on idle spares");
    return notes;
  };
  for (const auto net : kTrafficNets) {
    reg.add("traffic_degraded", std::string(net_tag(net)) + "/clean",
            [net]() {
              const FlowSet fs = degraded_flows(net);
              return run_traffic_point(net, fs.nodes, degraded_config(fs));
            });
    reg.add("traffic_degraded", std::string(net_tag(net)) + "/cut",
            [net]() {
              const FlowSet fs = degraded_flows(net);
              const traffic::TrafficConfig cfg = degraded_config(fs);
              const sim::Time horizon =
                  traffic::build_plan(cfg, net, fs.nodes).horizon;
              const fault::FaultPlan plan =
                  fault::FaultPlan::parse(cut_spec(net, fs, horizon));
              return run_traffic_point(net, fs.nodes, cfg, plan);
            });
  }
}

}  // namespace icsim::bench
