// Trace-replay scenario group: every trace set under examples/traces/ (or
// $ICSIM_REPLAY_TRACES) becomes two sweep points — the same captured
// workload driven through the InfiniBand and the Elan-4 stacks.  This is
// the scenario-breadth mechanism of ROADMAP item 3: any communication log
// is a scenario, no C++ app model required.
//
// Each point loads its trace set on demand inside the point closure, so
// the group is parallel-safe for any -j N (no shared mutable state).

#include <filesystem>
#include <string>
#include <vector>

#include "common.hpp"
#include "replay/replay.hpp"
#include "scenarios.hpp"

namespace icsim::bench {

namespace {

/// The trace root is resolved once at registration: $ICSIM_REPLAY_TRACES
/// when set, else the first of examples/traces (repo-root cwd) and
/// ../examples/traces (build-dir cwd) that exists.
[[nodiscard]] std::string trace_root() {
  if (const char* env = std::getenv("ICSIM_REPLAY_TRACES");
      env != nullptr && *env != '\0') {
    return env;
  }
  for (const char* candidate : {"examples/traces", "../examples/traces"}) {
    std::error_code ec;
    if (std::filesystem::is_directory(candidate, ec)) return candidate;
  }
  return "";
}

[[nodiscard]] driver::PointResult replay_point(const std::string& dir,
                                               core::Network net) {
  const auto program = replay::TraceProgram::load_dir(dir);
  driver::PointResult r;
  core::ClusterConfig cc = cluster_for(net, program.nodes(), program.ppn());
  double seconds = 0.0;
  run_cluster(r, cc, [&](mpi::Mpi& m) {
    const double t0 = m.wtime();
    program.run_rank(m);
    if (m.rank() == 0) seconds = m.wtime() - t0;
  });
  r.add("time_s", seconds, 6);
  r.add("ranks", static_cast<double>(program.size()), 0);
  r.add("ops", static_cast<double>(program.total_ops()), 0);
  return r;
}

}  // namespace

void register_replay(driver::Registry& reg) {
  const std::string root = trace_root();
  std::vector<std::string> sets;
  if (!root.empty()) {
    std::error_code ec;
    for (std::filesystem::directory_iterator it(root, ec), end;
         !ec && it != end; it.increment(ec)) {
      if (it->is_directory()) sets.push_back(it->path().filename().string());
    }
  }
  std::sort(sets.begin(), sets.end());

  auto& g = reg.group(
      "replay",
      sets.empty()
          ? std::string("Trace replay: no trace sets found (set "
                        "ICSIM_REPLAY_TRACES or create examples/traces/)")
          : line("Trace replay: %d trace set(s) under %s, each on both "
                 "fabrics",
                 static_cast<int>(sets.size()), root.c_str()));
  g.finalize = [](std::vector<driver::PointResult>&) {
    return std::vector<std::string>{
        "replayed captures reproduce the captured run's event digest "
        "exactly on the matching fabric (docs/MODEL.md section 11)"};
  };
  for (const std::string& set : sets) {
    const std::string dir = root + "/" + set;
    for (const core::Network net :
         {core::Network::infiniband, core::Network::quadrics}) {
      reg.add("replay", set + "/" + net_tag(net),
              [dir, net]() { return replay_point(dir, net); });
    }
  }
}

}  // namespace icsim::bench
