// NAS Parallel Benchmark scenario groups: the Figure 6 CG class A study
// and the ext_npb_suite communication-spectrum slice.
//
// Paper shape targets: class A is fixed-size and cache-resident, so both
// networks' efficiency drops rapidly with process count while Quadrics
// maintains a distinct, slightly growing advantage; the runs verify zeta
// against the NPB reference, proving the simulated MPI moves real data.
// The suite's expected spectrum: EP ~1.0, IS close (bandwidth-bound), MG
// in between, CG largest (latency/message-rate-bound).

#include <cmath>
#include <functional>
#include <string>
#include <vector>

#include "apps/mg/mg.hpp"
#include "apps/npb/cg.hpp"
#include "apps/npb/ep.hpp"
#include "apps/npb/ft.hpp"
#include "apps/npb/is.hpp"
#include "common.hpp"
#include "scenarios.hpp"

namespace icsim::bench {

namespace {

[[nodiscard]] driver::PointResult cg_point(core::Network net, int nodes,
                                           int ppn,
                                           const apps::npb::CgConfig& cfg) {
  driver::PointResult r;
  apps::npb::CgResult res;
  run_cluster(r, cluster_for(net, nodes, ppn), [&](mpi::Mpi& mpi) {
    const auto x = apps::npb::run_cg(mpi, cfg);
    if (mpi.rank() == 0) res = x;
  });
  r.add("MOps/p", res.mops_per_process, 1);
  r.add("zeta", res.zeta, 9);
  return r;
}

}  // namespace

void register_fig6_npb_cg(driver::Registry& reg) {
  apps::npb::CgConfig cfg;
  cfg.cls = apps::npb::class_A();
  double zeta_ref = 17.130235054029;
  if (fast_mode()) {
    cfg.cls = apps::npb::class_S();
    zeta_ref = 8.5971775078648;
  }
  // Process counts are powers of two (NPB requirement); the paper ran the
  // same ladder in 1 PPN (processes = nodes) and 2 PPN modes.
  const std::vector<int> procs = {1, 2, 4, 8, 16, 32, 64};

  auto& g = reg.group(
      "fig6_npb_cg",
      line("Figure 6: NAS CG class %s, MOps/s/process and efficiency",
           cfg.cls.name));
  const std::size_t n = procs.size();
  g.finalize = [n, zeta_ref](std::vector<driver::PointResult>& pts) {
    // Curve-major: ib1 [0, n), el1 [n, 2n), then the shorter 2 PPN curves.
    double zeta_seen = 0.0;
    for (std::size_t c = 0; c < 2 && c * n < pts.size(); ++c) {
      const double base = pts[c * n].value("MOps/p");
      for (std::size_t i = 0; i < n && c * n + i < pts.size(); ++i) {
        auto& p = pts[c * n + i];
        p.add("eff%", base > 0.0 ? 100.0 * p.value("MOps/p") / base : 0.0, 1);
        if (c == 1) zeta_seen = p.value("zeta");
      }
    }
    std::vector<std::string> out;
    out.push_back(line("zeta = %.12f (NPB reference %.12f) %s", zeta_seen,
                       zeta_ref,
                       std::abs(zeta_seen - zeta_ref) < 1e-9 ? "VERIFIED"
                                                             : "MISMATCH"));
    out.push_back("paper anchors: both networks drop rapidly in efficiency; "
                  "Quadrics holds a distinct, slightly growing advantage");
    return out;
  };

  struct Curve {
    core::Network net;
    int ppn;
    const char* tag;
  };
  const Curve curves[] = {
      {core::Network::infiniband, 1, "ib1"},
      {core::Network::quadrics, 1, "el1"},
      {core::Network::infiniband, 2, "ib2"},
      {core::Network::quadrics, 2, "el2"},
  };
  for (const auto& curve : curves) {
    for (const int p : procs) {
      if (curve.ppn == 2 && p < 2) continue;  // 2 PPN: half the nodes
      reg.add("fig6_npb_cg",
              std::string(curve.tag) + "/p" + std::to_string(p),
              [curve, p, cfg]() {
                return cg_point(curve.net, p / curve.ppn, curve.ppn, cfg);
              });
    }
  }
}

void register_ext_npb_suite(driver::Registry& reg) {
  const bool fast = fast_mode();
  const int nodes = 16;

  apps::npb::EpConfig ep;
  ep.cls = apps::npb::ep_class_S();
  apps::npb::IsConfig is;
  is.cls = fast ? apps::npb::is_class_S() : apps::npb::is_class_W();
  apps::npb::CgConfig cg;
  cg.cls = fast ? apps::npb::class_S() : apps::npb::class_W();
  apps::mg::MgConfig mg;
  mg.n = fast ? 32 : 64;
  mg.vcycles = 4;
  apps::npb::FtConfig ft;
  ft.cls = fast ? apps::npb::FtClass{"T", 32, 32, 32, 3}
                : apps::npb::ft_class_S();

  struct Kernel {
    const char* tag;
    std::function<double(mpi::Mpi&)> run;
  };
  const std::vector<Kernel> kernels = {
      {"ep", [ep](mpi::Mpi& m) { return apps::npb::run_ep(m, ep).seconds; }},
      {"mg", [mg](mpi::Mpi& m) { return apps::mg::run_mg(m, mg).seconds; }},
      {"ft", [ft](mpi::Mpi& m) { return apps::npb::run_ft(m, ft).seconds; }},
      {"is", [is](mpi::Mpi& m) { return apps::npb::run_is(m, is).seconds; }},
      {"cg", [cg](mpi::Mpi& m) { return apps::npb::run_cg(m, cg).seconds; }},
  };

  auto& g = reg.group(
      "ext_npb_suite",
      line("Extension: NPB slice at %d processes, 1 PPN", nodes));
  const std::size_t nk = kernels.size();
  g.finalize = [nk](std::vector<driver::PointResult>& pts) {
    // Kernel-major pairs: (ib, el) per kernel.
    for (std::size_t k = 0; 2 * k + 1 < pts.size() && k < nk; ++k) {
      const double el = pts[2 * k + 1].value("seconds");
      if (el > 0.0) {
        pts[2 * k + 1].add("IB/Elan", pts[2 * k].value("seconds") / el, 2);
      }
    }
    return std::vector<std::string>{
        "expected spectrum: EP ~1.0 (no communication), IS close "
        "(bandwidth-bound), MG in between, CG largest (latency/message-"
        "rate-bound) — the network only matters as much as the "
        "communication pattern lets it."};
  };

  for (const auto& kernel : kernels) {
    for (const auto net :
         {core::Network::infiniband, core::Network::quadrics}) {
      reg.add("ext_npb_suite",
              std::string(kernel.tag) + "/" + net_tag(net),
              [net, nodes, kernel]() {
                driver::PointResult r;
                double seconds = 0.0;
                run_cluster(r, cluster_for(net, nodes, 1),
                            [&](mpi::Mpi& mpi) {
                              const double s = kernel.run(mpi);
                              if (mpi.rank() == 0) seconds = s;
                            });
                r.add("seconds", seconds, 4);
                return r;
              });
    }
  }
}

}  // namespace icsim::bench
