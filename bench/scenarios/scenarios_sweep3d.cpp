// Sweep3D scenario groups: the Figure 4 fixed-size 150^3 study and the
// Figure 5 multi-input InfiniBand study that cleared the 25-node anomaly.
//
// Paper shape targets: superlinear speedup from 1 to 4 processors (the
// unscaled problem starts fitting in cache); Elan-4 clearly ahead at 9 and
// 16 nodes; with 4-process normalization the efficiency curves of
// different grid sizes lie close together and decay smoothly — no jump.

#include <string>
#include <vector>

#include "apps/sweep3d/sweep.hpp"
#include "common.hpp"
#include "core/report.hpp"
#include "scenarios.hpp"

namespace icsim::bench {

namespace {

[[nodiscard]] driver::PointResult sweep_point(
    core::Network net, int nodes, int ppn,
    const apps::sweep::SweepConfig& sc) {
  driver::PointResult r;
  apps::sweep::SweepResult res;
  run_cluster(r, cluster_for(net, nodes, ppn), [&](mpi::Mpi& mpi) {
    const auto x = apps::sweep::run_sweep3d(mpi, sc);
    if (mpi.rank() == 0) res = x;
  });
  r.add("solve_s", res.solve_seconds, 3);
  r.add("grind_ns", res.grind_ns, 1);
  return r;
}

}  // namespace

void register_fig4_sweep3d(driver::Registry& reg) {
  apps::sweep::SweepConfig sc;
  sc.nx = sc.ny = sc.nz = 150;
  sc.iterations = 2;
  if (fast_mode()) {
    sc.nx = sc.ny = sc.nz = 50;
    sc.iterations = 1;
  }
  const std::vector<int> node_counts = {1, 4, 9, 16, 25, 32};

  auto& g = reg.group(
      "fig4_sweep3d",
      line("Figure 4: Sweep3D %d^3 fixed-size study, 1 PPN", sc.nx));
  const std::size_t n = node_counts.size();
  g.finalize = [n, node_counts](std::vector<driver::PointResult>& pts) {
    // Net-major: [0, n) InfiniBand, [n, 2n) Elan; then the 8x2 PPN check.
    for (std::size_t c = 0; c < 2 && c * n < pts.size(); ++c) {
      const double base = pts[c * n].value("solve_s");
      for (std::size_t i = 0; i < n && c * n + i < pts.size(); ++i) {
        auto& p = pts[c * n + i];
        p.add("eff%",
              100.0 * core::fixed_efficiency(base, 1, p.value("solve_s"),
                                             node_counts[i]),
              1);
      }
    }
    std::vector<std::string> out;
    if (pts.size() > 2 * n) {
      // The paper presents only 1 PPN "as the 2 PPN data is similar" — a
      // sign of a high computation-to-communication ratio.  Check that.
      const double ib2 = pts[2 * n].value("solve_s");   // 8 nodes x 2 PPN
      const double ib1b = pts[3].value("solve_s");      // 16 nodes x 1 PPN
      out.push_back(line("2 PPN check at 16 processes: 8 nodes x 2 PPN "
                         "%.3f s vs 16 nodes x 1 PPN %.3f s (+%.1f%%; "
                         "paper: 'similar')",
                         ib2, ib1b, 100.0 * (ib2 / ib1b - 1.0)));
    }
    out.push_back("paper anchors: superlinear 1->4 (cache); Elan-4 clearly "
                  "ahead at 9 and 16 nodes");
    return out;
  };

  for (const auto net :
       {core::Network::infiniband, core::Network::quadrics}) {
    for (const int nodes : node_counts) {
      reg.add("fig4_sweep3d",
              std::string(net_tag(net)) + "/" + std::to_string(nodes) + "n",
              [net, nodes, sc]() { return sweep_point(net, nodes, 1, sc); });
    }
  }
  reg.add("fig4_sweep3d", "ib/8n2ppn",
          [sc]() {
            return sweep_point(core::Network::infiniband, 8, 2, sc);
          });
}

void register_fig5_sweep3d_inputs(driver::Registry& reg) {
  std::vector<int> grids = {100, 150, 200};
  if (fast_mode()) grids = {50, 80};
  const std::vector<int> node_counts = {4, 9, 16, 25, 32};

  auto& g = reg.group("fig5_sweep3d_inputs",
                      "Figure 5: Sweep3D on InfiniBand, several inputs, "
                      "efficiency normalized at 4 processes");
  const std::size_t n = node_counts.size();
  g.finalize = [n, node_counts](std::vector<driver::PointResult>& pts) {
    for (std::size_t c = 0; c * n < pts.size(); ++c) {
      const double base = pts[c * n].value("solve_s");
      for (std::size_t i = 0; i < n && c * n + i < pts.size(); ++i) {
        auto& p = pts[c * n + i];
        p.add("eff%",
              100.0 * core::fixed_efficiency(base, 4, p.value("solve_s"),
                                             node_counts[i]),
              1);
      }
    }
    return std::vector<std::string>{
        "paper anchor: all inputs continue the same smooth trend (the "
        "150^3 25-node jump was an input anomaly)"};
  };

  for (const int grid : grids) {
    for (const int nodes : node_counts) {
      reg.add("fig5_sweep3d_inputs",
              "g" + std::to_string(grid) + "/" + std::to_string(nodes) + "n",
              [grid, nodes]() {
                apps::sweep::SweepConfig sc;
                sc.nx = sc.ny = sc.nz = grid;
                sc.iterations = 1;
                return sweep_point(core::Network::infiniband, nodes, 1, sc);
              });
    }
  }
}

}  // namespace icsim::bench
