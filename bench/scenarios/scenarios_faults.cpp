// Fault-injection scenario groups (no paper figure — the 2004 study ran
// on healthy fabrics; this asks how each technology's recovery machinery
// behaves when the fabric is not).
//
// ext_faults_ber sweeps a per-link bit-error rate over ping-pong +
// streaming on two nodes: both networks must complete every transfer —
// InfiniBand by RC timeout/retransmission, Elan-4 by hardware link-level
// retry — with bounded slowdown at BER <= 1e-6.
//
// ext_faults_spine saturates every up-cable of one leaf switch, then fails
// one of those cables (whole-run and mid-run).  Chunks reroute over the
// surviving climbs; on the 4-ary Elan tree the displaced flow must share a
// busy cable so the cut bandwidth measurably drops, while the 12-port IB
// Clos has idle parallel cables and absorbs the failure.
//
// The mid-run point needs the clean completion time to place its failure
// window at 30%..60%; to stay self-contained it re-runs the clean flows
// itself and folds both runs into its digest.

#include <cstdio>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "common.hpp"
#include "fault/plan.hpp"
#include "scenarios.hpp"

namespace icsim::bench {

namespace {

struct FaultRun {
  double elapsed_us = 0.0;
  double bandwidth_mbs = 0.0;  // aggregate payload bandwidth
  core::Cluster::RunStats stats;
};

constexpr std::size_t kPingPongBytes = 4096;
constexpr std::size_t kStreamBytes = 65536;

// Two-node ping-pong + streaming window under one fault plan; counters come
// from the same cluster so retries line up with the timings.
FaultRun run_two_node(core::Network net, const fault::FaultPlan& plan) {
  core::ClusterConfig cc = cluster_for(net, 2);
  cc.faults = plan;
  core::Cluster cluster(cc);

  constexpr int kReps = 200;
  constexpr int kWindow = 16;
  constexpr int kBatches = 10;
  FaultRun out;
  cluster.run([&](mpi::Mpi& mpi) {
    const int peer = 1 - mpi.rank();
    std::vector<std::byte> sbuf(kStreamBytes), rbuf(kStreamBytes);
    for (int i = 0; i < kReps; ++i) {
      if (mpi.rank() == 0) {
        mpi.send(sbuf.data(), kPingPongBytes, peer, i);
        mpi.recv(rbuf.data(), rbuf.size(), peer, kReps + i);
      } else {
        mpi.recv(rbuf.data(), rbuf.size(), peer, i);
        mpi.send(sbuf.data(), kPingPongBytes, peer, kReps + i);
      }
    }
    const double t0 = mpi.wtime();
    std::vector<mpi::Request> reqs(kWindow);
    for (int b = 0; b < kBatches; ++b) {
      for (int w = 0; w < kWindow; ++w) {
        const int tag = 2 * kReps + b * kWindow + w;
        reqs[static_cast<std::size_t>(w)] =
            mpi.rank() == 0
                ? mpi.isend(sbuf.data(), kStreamBytes, peer, tag)
                : mpi.irecv(rbuf.data(), rbuf.size(), peer, tag);
      }
      mpi.waitall(reqs);
    }
    if (mpi.rank() == 0) {
      const double elapsed = mpi.wtime() - t0;
      out.bandwidth_mbs = static_cast<double>(kBatches) * kWindow *
                          static_cast<double>(kStreamBytes) / elapsed / 1e6;
    }
  });
  out.elapsed_us = cluster.engine().now().to_us();
  out.stats = cluster.stats();
  return out;
}

// The sender -> receiver flows that saturate leaf 0's up-cables: every
// sender sits on leaf switch 0 and targets a subtree reached through a
// different up-cable (D-mod-k picks the climb from the destination's
// digits), so each flow monopolizes one cable of the leaf's cut.
struct FlowSet {
  int nodes = 0;
  std::vector<std::pair<int, int>> flows;
};

FlowSet saturating_flows(core::Network net) {
  if (net == core::Network::quadrics) {
    // 4-ary tree, leaves of 4: destinations with distinct digit-1 values
    // (16 has digit 0 -- only reachable with >16 nodes).  All 4 up-cables
    // of leaf 0 carry one full-rate flow.
    return {20, {{0, 16}, {1, 5}, {2, 10}, {3, 15}}};
  }
  // 12-port Clos, leaves of 12: far leaves start at 12, one flow per
  // distinct destination leaf.  Only 3 of the 12 up-cables are busy, which
  // is exactly the point: the reroute after a failure finds an idle one.
  return {48, {{0, 13}, {1, 25}, {2, 37}}};
}

FaultRun run_flows(core::Network net, const FlowSet& fs,
                   const fault::FaultPlan& plan) {
  constexpr int kMsgs = 64;
  constexpr int kWindow = 16;
  core::ClusterConfig cc = cluster_for(net, fs.nodes);
  cc.faults = plan;
  core::Cluster cluster(cc);

  cluster.run([&](mpi::Mpi& mpi) {
    const int me = mpi.rank();
    int peer = -1;
    bool sender = false;
    for (const auto& [s, d] : fs.flows) {
      if (me == s) { sender = true; peer = d; }
      if (me == d) { peer = s; }
    }
    if (peer < 0) return;  // bystander rank
    std::vector<std::byte> buf(kStreamBytes);
    std::vector<mpi::Request> reqs(kWindow);
    for (int b = 0; b < kMsgs / kWindow; ++b) {
      for (int w = 0; w < kWindow; ++w) {
        const int tag = b * kWindow + w;
        reqs[static_cast<std::size_t>(w)] =
            sender ? mpi.isend(buf.data(), kStreamBytes, peer, tag)
                   : mpi.irecv(buf.data(), buf.size(), peer, tag);
      }
      mpi.waitall(reqs);
    }
  });

  FaultRun out;
  out.elapsed_us = cluster.engine().now().to_us();
  out.bandwidth_mbs = static_cast<double>(fs.flows.size()) * kMsgs *
                      static_cast<double>(kStreamBytes) /
                      (out.elapsed_us / 1e6) / 1e6;
  out.stats = cluster.stats();
  return out;
}

// The up-cable the second flow's default route climbs through (the cable
// the failure scenarios take down).  Built from a throwaway cluster whose
// stats are NOT folded into the point — topology inspection only.
fault::LinkRef victim_cable(core::Network net, const FlowSet& fs) {
  core::Cluster cluster(cluster_for(net, fs.nodes));
  const auto& topo = cluster.fabric().topology();
  const auto& [src, dst] = fs.flows[1];
  for (const auto& h : topo.route(src, dst)) {
    if (h.kind == net::Hop::Kind::switch_to_switch &&
        h.to.level > h.from.level) {
      return fault::LinkRef::between(h.from, h.to);  // first climb cable
    }
  }
  throw std::logic_error("flow route never climbs");
}

std::string fmt_ber(double ber) {
  if (ber == 0.0) return "0";
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.0e", ber);
  return buf;
}

std::uint64_t retries_of(core::Network net, const core::Cluster::RunStats& s) {
  return net == core::Network::infiniband ? s.rc_retries : s.elan_link_retries;
}

void add_fault_metrics(driver::PointResult& r, core::Network net,
                       const FaultRun& run) {
  const std::uint64_t lost = run.stats.rc_retry_exhausted +
                             run.stats.elan_link_retry_exhausted +
                             run.stats.watchdog_timeouts;
  r.add("run us", run.elapsed_us, 2);
  r.add("MB/s", run.bandwidth_mbs, 2);
  r.add("corrupted", static_cast<double>(run.stats.chunks_corrupted), 0);
  r.add("rerouted", static_cast<double>(run.stats.chunks_rerouted), 0);
  r.add("retries", static_cast<double>(retries_of(net, run.stats)), 0);
  r.add("lost", static_cast<double>(lost), 0);
}

constexpr double kBers[] = {0.0, 1e-8, 1e-7, 1e-6};
constexpr core::Network kFaultNets[] = {core::Network::infiniband,
                                        core::Network::quadrics};

}  // namespace

void register_ext_faults(driver::Registry& reg) {
  auto& ber_group = reg.group(
      "ext_faults_ber",
      line("Extension: BER sweep, 2 nodes (ping-pong %zuB x200 + streaming "
           "%zuB x160)",
           kPingPongBytes, kStreamBytes));
  const std::size_t nber = std::size(kBers);
  ber_group.finalize = [nber](std::vector<driver::PointResult>& pts) {
    // Net-major; first point of each net is the BER=0 baseline.
    for (std::size_t c = 0; c * nber < pts.size(); ++c) {
      const double clean_us = pts[c * nber].value("run us");
      for (std::size_t i = 0; i < nber && c * nber + i < pts.size(); ++i) {
        auto& p = pts[c * nber + i];
        if (clean_us > 0.0) p.add("slowdown", p.value("run us") / clean_us, 2);
      }
    }
    return std::vector<std::string>{
        "anchor: both fabrics complete every transfer at BER<=1e-6 with "
        "bounded slowdown (lost=0)"};
  };
  for (const auto net : kFaultNets) {
    for (const double ber : kBers) {
      reg.add("ext_faults_ber",
              std::string(net_tag(net)) + "/ber" + fmt_ber(ber),
              [net, ber]() {
                driver::PointResult r;
                fault::FaultPlan plan;
                plan.ber = ber;
                plan.seed = 20040914;  // fixed seed: reruns reproduce exactly
                const FaultRun run = run_two_node(net, plan);
                fold_run(r, run.stats);
                add_fault_metrics(r, net, run);
                return r;
              });
    }
  }

  auto& spine_group = reg.group(
      "ext_faults_spine",
      "Extension: full-rate flows across leaf 0's cut, failing one up-cable");
  spine_group.finalize = [](std::vector<driver::PointResult>&) {
    return std::vector<std::string>{
        "anchors: a failed up-cable reroutes (rerouted>0, lost=0); with "
        "every parallel cable busy the 4-ary Elan tree pays measurable cut "
        "bandwidth, while the 12-port IB Clos absorbs it"};
  };
  for (const auto net : kFaultNets) {
    reg.add("ext_faults_spine", std::string(net_tag(net)) + "/clean",
            [net]() {
              driver::PointResult r;
              const FaultRun run = run_flows(net, saturating_flows(net), {});
              fold_run(r, run.stats);
              add_fault_metrics(r, net, run);
              return r;
            });
    reg.add("ext_faults_spine", std::string(net_tag(net)) + "/down",
            [net]() {
              driver::PointResult r;
              const FlowSet fs = saturating_flows(net);
              const fault::LinkRef cable = victim_cable(net, fs);
              fault::FaultPlan whole;  // cable dead for the entire run
              whole.link_windows.push_back(
                  {cable, sim::Time::zero(), sim::Time::zero()});
              const FaultRun run = run_flows(net, fs, whole);
              fold_run(r, run.stats);
              add_fault_metrics(r, net, run);
              return r;
            });
    reg.add("ext_faults_spine", std::string(net_tag(net)) + "/midrun",
            [net]() {
              driver::PointResult r;
              const FlowSet fs = saturating_flows(net);
              const fault::LinkRef cable = victim_cable(net, fs);
              const FaultRun clean = run_flows(net, fs, {});
              fold_run(r, clean.stats);
              fault::FaultPlan midrun;  // fails ~30%, repaired ~60% of clean
              midrun.link_windows.push_back(
                  {cable, sim::Time::us(0.3 * clean.elapsed_us),
                   sim::Time::us(0.6 * clean.elapsed_us)});
              const FaultRun run = run_flows(net, fs, midrun);
              fold_run(r, run.stats);
              add_fault_metrics(r, net, run);
              return r;
            });
  }
}

}  // namespace icsim::bench
