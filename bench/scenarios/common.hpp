#pragma once
// Shared helpers for scenario implementations.

#include <cstdio>
#include <cstdlib>
#include <functional>
#include <string>

#include "core/cluster.hpp"
#include "driver/scenario.hpp"
#include "sim/check.hpp"

namespace icsim::bench {

[[nodiscard]] inline bool fast_mode() {
  return std::getenv("ICSIM_FAST") != nullptr;
}

[[nodiscard]] inline core::ClusterConfig cluster_for(core::Network net,
                                                     int nodes, int ppn = 1) {
  switch (net) {
    case core::Network::infiniband: return core::ib_cluster(nodes, ppn);
    case core::Network::quadrics: return core::elan_cluster(nodes, ppn);
    case core::Network::myrinet: return core::myrinet_cluster(nodes, ppn);
  }
  return core::ib_cluster(nodes, ppn);
}

/// Short tag used in point names ("ib/1024", "el/32n", ...).
[[nodiscard]] inline const char* net_tag(core::Network net) {
  switch (net) {
    case core::Network::infiniband: return "ib";
    case core::Network::quadrics: return "el";
    case core::Network::myrinet: return "my";
  }
  return "?";
}

/// Fold one finished simulation's stats into a point: events accumulate,
/// digests chain through FNV-1a so multi-cluster points stay order-exact.
inline void fold_run(driver::PointResult& r,
                     const core::Cluster::RunStats& st) {
  r.events += st.events_processed;
  sim::check::Fnv1a f;
  f.fold(r.digest);
  f.fold(st.event_digest);
  r.digest = f.value();
}

/// Build a fresh cluster from `cc`, run `rank_main` across its ranks, and
/// fold the run's stats into `r`.  Returns the cluster's final RunStats for
/// scenarios that also report counters.
template <typename Fn>
core::Cluster::RunStats run_cluster(driver::PointResult& r,
                                    const core::ClusterConfig& cc,
                                    Fn&& rank_main) {
  core::Cluster cluster(cc);
  (void)cluster.run(std::function<void(mpi::Mpi&)>(std::forward<Fn>(rank_main)));
  const core::Cluster::RunStats st = cluster.stats();
  fold_run(r, st);
  return st;
}

/// printf-style line, for finalize summary vectors.
template <typename... Args>
[[nodiscard]] std::string line(const char* fmt, Args... args) {
  char buf[512];
  std::snprintf(buf, sizeof buf, fmt, args...);
  return buf;
}

}  // namespace icsim::bench
