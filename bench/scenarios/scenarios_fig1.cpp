// Figure 1 scenario groups: (a) ping-pong latency, (b,c) ping-pong +
// streaming bandwidth with the Elan:IB ratio, (d) effective bandwidth.
//
// Paper shape targets: Elan-4 latency about half of InfiniBand's at small
// sizes; a sharp InfiniBand jump between 1 KB and 2 KB (MVAPICH
// eager->rendezvous); Elan-4 ahead at every size in bandwidth (552 vs
// 249 MB/s at 8 KB ping-pong, >5x streaming ratio at small sizes); b_eff
// flat-ish with Elan-4 above InfiniBand everywhere.
//
// Each sweep point runs one (network, message size | node count) cell on a
// fresh 2-node (or n-node, for b_eff) cluster, so the driver can schedule
// them on any worker.  Ratios against the sibling network and the paper
// anchors are computed in the group finalize hooks from completed points.

#include <cstddef>
#include <vector>

#include "common.hpp"
#include "microbench/beff.hpp"
#include "microbench/pingpong.hpp"
#include "scenarios.hpp"

namespace icsim::bench {

namespace {

constexpr core::Network kNets[] = {core::Network::infiniband,
                                   core::Network::quadrics};

[[nodiscard]] std::string size_point_name(core::Network net,
                                          std::size_t bytes) {
  return std::string(net_tag(net)) + "/" + std::to_string(bytes);
}

}  // namespace

void register_fig1_latency(driver::Registry& reg) {
  const bool fast = fast_mode();
  const auto sizes = microbench::pallas_sizes(fast ? (64u << 10) : (4u << 20));
  const int reps = fast ? 10 : 50;
  const int warmup = fast ? 2 : 5;

  auto& g = reg.group("fig1_latency",
                      "Figure 1(a): ping-pong latency (us), 2 nodes, 1 PPN");
  const std::size_t n = sizes.size();
  g.finalize = [n](std::vector<driver::PointResult>& pts) {
    // Points are net-major: [0, n) InfiniBand, [n, 2n) Elan.
    for (std::size_t i = 0; i < n && n + i < pts.size(); ++i) {
      const double ib = pts[i].value("us");
      const double el = pts[n + i].value("us");
      if (el > 0.0) pts[n + i].add("IB/Elan", ib / el, 2);
    }
    std::vector<std::string> out;
    if (pts.size() >= n + 1 && pts[n].value("us") > 0.0) {
      out.push_back(line("0-byte latency ratio IB/Elan: %.2fx (paper ~2x)",
                         pts[0].value("us") / pts[n].value("us")));
    }
    out.push_back("paper anchors: Elan-4 ~= 1/2 IB at small sizes; IB jump "
                  "between 1KB and 2KB (eager->rendezvous)");
    return out;
  };

  for (const auto net : kNets) {
    for (const std::size_t bytes : sizes) {
      reg.add("fig1_latency", size_point_name(net, bytes),
              [net, bytes, reps, warmup]() {
                driver::PointResult r;
                microbench::PingPongOptions opt;
                opt.sizes = {bytes};
                opt.repetitions = reps;
                opt.warmup = warmup;
                core::Cluster::RunStats st;
                opt.stats = &st;
                const auto pts =
                    microbench::run_pingpong(cluster_for(net, 2), opt);
                fold_run(r, st);
                r.add("bytes", static_cast<double>(bytes), 0);
                r.add("us", pts.at(0).latency_us, 3);
                r.add("MB/s", pts.at(0).bandwidth_mbs, 1);
                return r;
              });
    }
  }
}

void register_fig1_bandwidth(driver::Registry& reg) {
  const bool fast = fast_mode();
  auto sizes = microbench::pallas_sizes(fast ? (64u << 10) : (4u << 20));
  sizes.erase(sizes.begin());  // skip 0 bytes
  const int reps = fast ? 10 : 50;
  const int warmup = fast ? 2 : 5;
  const int batches = fast ? 4 : 10;

  auto& g = reg.group(
      "fig1_bandwidth",
      "Figure 1(b,c): ping-pong + streaming bandwidth (MB/s), 2 nodes, 1 PPN");
  const std::size_t n = sizes.size();
  g.finalize = [n](std::vector<driver::PointResult>& pts) {
    double max_stream_ratio = 0.0;
    double anchor_ib = 0.0, anchor_el = 0.0;
    for (std::size_t i = 0; i < n && n + i < pts.size(); ++i) {
      const auto& ib = pts[i];
      auto& el = pts[n + i];
      const double rpp = ib.value("pp MB/s") > 0.0
                             ? el.value("pp MB/s") / ib.value("pp MB/s")
                             : 0.0;
      const double rst = ib.value("strm MB/s") > 0.0
                             ? el.value("strm MB/s") / ib.value("strm MB/s")
                             : 0.0;
      el.add("ratio pp", rpp, 2);
      el.add("ratio strm", rst, 2);
      if (ib.value("bytes") <= 1024.0 && rst > max_stream_ratio) {
        max_stream_ratio = rst;
      }
      if (ib.value("bytes") == 8192.0) {
        anchor_ib = ib.value("pp MB/s");
        anchor_el = el.value("pp MB/s");
      }
    }
    std::vector<std::string> out;
    out.push_back(line("8 KB anchor: Elan-4 %.0f MB/s vs IB %.0f MB/s "
                       "(paper: 552 vs 249)",
                       anchor_el, anchor_ib));
    out.push_back(line("max streaming ratio at <=1KB: %.1fx (paper: >5x)",
                       max_stream_ratio));
    return out;
  };

  for (const auto net : kNets) {
    for (const std::size_t bytes : sizes) {
      reg.add("fig1_bandwidth", size_point_name(net, bytes),
              [net, bytes, reps, warmup, batches]() {
                driver::PointResult r;
                core::Cluster::RunStats st;

                microbench::PingPongOptions pp;
                pp.sizes = {bytes};
                pp.repetitions = reps;
                pp.warmup = warmup;
                pp.stats = &st;
                const auto ppres =
                    microbench::run_pingpong(cluster_for(net, 2), pp);
                fold_run(r, st);

                microbench::StreamingOptions strm;
                strm.sizes = {bytes};
                strm.window = 64;
                strm.batches = batches;
                strm.warmup_batches = 2;
                strm.stats = &st;
                const auto stres =
                    microbench::run_streaming(cluster_for(net, 2), strm);
                fold_run(r, st);

                r.add("bytes", static_cast<double>(bytes), 0);
                r.add("pp MB/s", ppres.at(0).bandwidth_mbs, 1);
                r.add("strm MB/s", stres.at(0).bandwidth_mbs, 1);
                return r;
              });
    }
  }
}

void register_fig1_beff(driver::Registry& reg) {
  const bool fast = fast_mode();
  const std::vector<int> node_counts =
      fast ? std::vector<int>{2, 4, 8} : std::vector<int>{2, 4, 8, 16, 24, 32};
  microbench::BeffOptions opt;
  opt.lmax = fast ? (64u << 10) : (1u << 20);
  opt.repetitions = 2;
  opt.random_patterns = fast ? 1 : 2;

  auto& g = reg.group("fig1_beff",
                      "Figure 1(d): b_eff per process (MB/s), 1 PPN");
  const std::size_t n = node_counts.size();
  g.finalize = [n](std::vector<driver::PointResult>& pts) {
    for (std::size_t i = 0; i < n && n + i < pts.size(); ++i) {
      const double ib = pts[i].value("b_eff/p");
      if (ib > 0.0) {
        pts[n + i].add("Elan/IB", pts[n + i].value("b_eff/p") / ib, 2);
      }
    }
    return std::vector<std::string>{
        "paper anchor: flat-ish trend, Elan-4 above InfiniBand; b_eff is "
        "dominated by short-message bandwidth"};
  };

  for (const auto net : kNets) {
    for (const int nodes : node_counts) {
      reg.add("fig1_beff",
              std::string(net_tag(net)) + "/" + std::to_string(nodes) + "n",
              [net, nodes, opt]() {
                driver::PointResult r;
                microbench::BeffOptions o = opt;
                core::Cluster::RunStats st;
                o.stats = &st;
                const auto res =
                    microbench::run_beff(cluster_for(net, nodes), o);
                fold_run(r, st);
                r.add("nodes", nodes, 0);
                r.add("b_eff/p", res.beff_per_process_mbs, 1);
                return r;
              });
    }
  }
}

}  // namespace icsim::bench
