// LAMMPS-based scenario groups: the Figure 2 (LJS) and Figure 3 (membrane)
// scaled-speedup studies, the Figure 8 extrapolation to 8192 processors,
// and the ext_scale study that simulates 64..256 nodes directly to test
// the Figure 8 trend assumption.
//
// Paper shape targets: flat curves on an ideal network; 1 PPN beats 2 PPN
// on both networks with InfiniBand's gap much wider (host-based progress);
// membrane Elan-4 93%/91% vs IB 84%/77% at 32 nodes; nearly 40% efficiency
// gap at 1024 nodes if the 8->32-node trends continue.

#include <string>
#include <vector>

#include "apps/lammps/md.hpp"
#include "common.hpp"
#include "core/extrapolate.hpp"
#include "core/report.hpp"
#include "scenarios.hpp"

namespace icsim::bench {

namespace {

/// One (network, nodes, ppn) LAMMPS run as a sweep point.
[[nodiscard]] driver::PointResult md_point(core::Network net, int nodes,
                                           int ppn,
                                           const apps::md::MdConfig& mc) {
  driver::PointResult r;
  double seconds = 0.0;
  run_cluster(r, cluster_for(net, nodes, ppn), [&](mpi::Mpi& mpi) {
    const auto res = apps::md::run_md(mpi, mc);
    if (mpi.rank() == 0) seconds = res.loop_seconds;
  });
  r.add("loop_s", seconds, 4);
  return r;
}

struct Curve {
  core::Network net;
  int ppn;
  const char* tag;  // "ib1", "ib2", "el1", "el2"
};

constexpr Curve kCurves[] = {
    {core::Network::infiniband, 1, "ib1"},
    {core::Network::infiniband, 2, "ib2"},
    {core::Network::quadrics, 1, "el1"},
    {core::Network::quadrics, 2, "el2"},
};

[[nodiscard]] apps::md::MdConfig scaled_config(apps::md::MdConfig mc) {
  mc.cells_x = mc.cells_y = mc.cells_z = 8;
  mc.steps = 30;
  if (fast_mode()) {
    mc.cells_x = mc.cells_y = mc.cells_z = 5;
    mc.steps = 12;
  }
  return mc;
}

/// Shared registration for the Fig. 2 / Fig. 3 scaled studies: four curves
/// (network x PPN) over the node ladder, efficiency vs each curve's 1-node
/// point appended in finalize.
void register_scaled_study(driver::Registry& reg, const std::string& group,
                           const std::string& title,
                           const apps::md::MdConfig& mc,
                           std::vector<std::string> (*summarize)(
                               const std::vector<driver::PointResult>&,
                               std::size_t nodes_per_curve)) {
  const std::vector<int> node_counts = {1, 2, 4, 8, 16, 32};
  auto& g = reg.group(group, title);
  const std::size_t n = node_counts.size();
  g.finalize = [n, summarize](std::vector<driver::PointResult>& pts) {
    for (std::size_t c = 0; c * n < pts.size(); ++c) {
      const double base = pts[c * n].value("loop_s");
      for (std::size_t i = 0; i < n && c * n + i < pts.size(); ++i) {
        auto& p = pts[c * n + i];
        p.add("eff%",
              100.0 * core::scaled_efficiency(base, p.value("loop_s")), 1);
      }
    }
    return summarize(pts, n);
  };
  for (const auto& curve : kCurves) {
    for (const int nodes : node_counts) {
      reg.add(group,
              std::string(curve.tag) + "/" + std::to_string(nodes) + "n",
              [curve, nodes, mc]() {
                return md_point(curve.net, nodes, curve.ppn, mc);
              });
    }
  }
}

}  // namespace

void register_fig2_ljs(driver::Registry& reg) {
  const apps::md::MdConfig mc = scaled_config(apps::md::ljs_config());
  register_scaled_study(
      reg, "fig2_ljs",
      line("Figure 2: LAMMPS LJS scaled study, %d cells/rank, %d steps",
           mc.cells_x, mc.steps),
      mc,
      [](const std::vector<driver::PointResult>&, std::size_t) {
        return std::vector<std::string>{
            "paper anchors: 1 PPN > 2 PPN on both; Elan-4 marginally ahead "
            "at 1 PPN; IB's 1->2 PPN gap much wider than Elan's"};
      });
}

void register_fig3_membrane(driver::Registry& reg) {
  const apps::md::MdConfig mc = scaled_config(apps::md::membrane_config());
  register_scaled_study(
      reg, "fig3_membrane",
      line("Figure 3: LAMMPS membrane scaled study, %d cells/rank, %d steps",
           mc.cells_x, mc.steps),
      mc,
      [](const std::vector<driver::PointResult>& pts, std::size_t n) {
        // Curve order ib1, ib2, el1, el2; last point of each is 32 nodes.
        const auto eff32 = [&](std::size_t c) {
          return c * n + n - 1 < pts.size() ? pts[c * n + n - 1].value("eff%")
                                            : 0.0;
        };
        return std::vector<std::string>{
            line("32-node efficiency, measured vs paper: Elan %.0f%%/%.0f%% "
                 "(paper 93/91), IB %.0f%%/%.0f%% (paper 84/77)",
                 eff32(2), eff32(3), eff32(0), eff32(1))};
      });
}

namespace {

constexpr int kAnchorNodes[] = {1, 8, 32};

/// Fit the Figure 8 trend from a net's three measured anchor points, laid
/// out consecutively starting at `base` in the group's point vector.
[[nodiscard]] core::ScalingTrend anchor_trend(
    const std::vector<driver::PointResult>& pts, std::size_t base) {
  return core::fit_scaled_trend(pts[base].value("loop_s"), 8,
                                pts[base + 1].value("loop_s"), 32,
                                pts[base + 2].value("loop_s"));
}

}  // namespace

void register_fig8_extrapolation(driver::Registry& reg) {
  const apps::md::MdConfig mc = scaled_config(apps::md::membrane_config());

  auto& g = reg.group("fig8_extrapolation",
                      "Figure 8: membrane study (2 PPN) measured to 32 "
                      "nodes, then extrapolated");
  g.finalize = [](std::vector<driver::PointResult>& pts) {
    std::vector<std::string> out;
    if (pts.size() < 6) return out;
    const auto ib_trend = anchor_trend(pts, 0);
    const auto el_trend = anchor_trend(pts, 3);
    const double ib1 = pts[0].value("loop_s");
    const double ib8 = pts[1].value("loop_s");
    const double ib32 = pts[2].value("loop_s");
    const double el1 = pts[3].value("loop_s");
    const double el8 = pts[4].value("loop_s");
    const double el32 = pts[5].value("loop_s");
    double gap_1024 = 0.0, rel_1024 = 0.0;
    for (int nodes = 8; nodes <= 4096; nodes *= 2) {
      const double ti = nodes == 8    ? ib8
                        : nodes == 32 ? ib32
                                      : ib_trend.time_at(nodes, ib1);
      const double te = nodes == 8    ? el8
                        : nodes == 32 ? el32
                                      : el_trend.time_at(nodes, el1);
      const double ei = 100.0 * ib1 / ti;
      const double ee = 100.0 * el1 / te;
      if (nodes == 1024) {
        gap_1024 = ee - ei;
        rel_1024 = (ee - ei) / ee * 100.0;
      }
      out.push_back(line("%5d nodes %6d procs  IB %8.4fs %5.1f%%  "
                         "El %8.4fs %5.1f%%  gap %+5.1f pts%s",
                         nodes, 2 * nodes, ti, ei, te, ee, ee - ei,
                         nodes <= 32 ? "  (measured)" : ""));
    }
    out.push_back(line("at 1024 nodes: efficiency gap %.1f points (%.0f%% of "
                       "the Elan-4 efficiency; paper reports 'nearly 40%%')",
                       gap_1024, rel_1024));
    return out;
  };

  for (const auto net :
       {core::Network::infiniband, core::Network::quadrics}) {
    for (const int nodes : kAnchorNodes) {
      reg.add("fig8_extrapolation",
              std::string(net_tag(net)) + "/" + std::to_string(nodes) + "n",
              [net, nodes, mc]() { return md_point(net, nodes, 2, mc); });
    }
  }
}

void register_ext_scale(driver::Registry& reg) {
  apps::md::MdConfig mc = apps::md::membrane_config();
  mc.cells_x = mc.cells_y = mc.cells_z = 6;
  mc.steps = 20;
  int max_nodes = 256;
  if (fast_mode()) {
    mc.cells_x = mc.cells_y = mc.cells_z = 5;
    mc.steps = 8;
    max_nodes = 64;
  }
  std::vector<int> direct;
  for (int nodes = 64; nodes <= max_nodes; nodes *= 2) direct.push_back(nodes);

  auto& g = reg.group("ext_scale",
                      "Extension: membrane study simulated directly beyond "
                      "the testbed's 32 nodes, vs the Figure 8 trend fit");
  const std::size_t per_net = 3 + direct.size();
  g.finalize = [per_net](std::vector<driver::PointResult>& pts) {
    for (std::size_t c = 0; c * per_net < pts.size(); ++c) {
      const std::size_t base = c * per_net;
      const auto trend = anchor_trend(pts, base);
      const double t1 = pts[base].value("loop_s");
      for (std::size_t i = 3; i < per_net && base + i < pts.size(); ++i) {
        auto& p = pts[base + i];
        p.add("eff%", 100.0 * t1 / p.value("loop_s"), 1);
        p.add("trend%",
              100.0 * trend.efficiency_at(static_cast<int>(p.value("nodes"))),
              1);
      }
    }
    return std::vector<std::string>{
        "Reading: where measured eff% and trend% agree, the paper's "
        "'assume the trend continues' extrapolation was sound in this "
        "model; deviations quantify its optimism."};
  };

  for (const auto net :
       {core::Network::infiniband, core::Network::quadrics}) {
    std::vector<int> ladder(std::begin(kAnchorNodes), std::end(kAnchorNodes));
    ladder.insert(ladder.end(), direct.begin(), direct.end());
    for (const int nodes : ladder) {
      reg.add("ext_scale",
              std::string(net_tag(net)) + "/" + std::to_string(nodes) + "n",
              [net, nodes, mc]() {
                driver::PointResult r = md_point(net, nodes, 1, mc);
                r.add("nodes", nodes, 0);
                return r;
              });
    }
  }
}

}  // namespace icsim::bench
