// Extension scenario groups: the three-way Liu et al. comparison, the
// LogGP characterization, and the collective-latency companion table.
//
// Expected shapes: Elan-4 fastest at small messages, 4X InfiniBand's fat
// links win raw bandwidth over Myrinet (~3.5x), Myrinet capped near
// 240 MB/s by its 2 Gb/s links; Elan-4 lowest on every LogGP axis except
// G; each collective column pair keeps roughly the Figure 1(a) latency
// ratio, growing with log(nodes).

#include <string>
#include <vector>

#include "apps/npb/cg.hpp"
#include "common.hpp"
#include "core/loggp.hpp"
#include "microbench/pingpong.hpp"
#include "scenarios.hpp"

namespace icsim::bench {

namespace {

constexpr core::Network kThreeNets[] = {core::Network::infiniband,
                                        core::Network::quadrics,
                                        core::Network::myrinet};

}  // namespace

void register_ext_threeway(driver::Registry& reg) {
  const std::vector<std::size_t> sizes = {0,     64,    1024,
                                          8192,  65536, 1u << 20};
  const int reps = 40, warmup = 4;

  auto& g = reg.group("ext_threeway",
                      "Extension: three-way micro-benchmark comparison "
                      "(cf. Liu et al. [11]) + NAS CG class W, 16 procs");
  g.finalize = [](std::vector<driver::PointResult>&) {
    return std::vector<std::string>{
        "paper-era anchors: Elan-4 lowest latency; IB highest bandwidth; "
        "Myrinet capped ~240 MB/s by its 2 Gb/s links"};
  };

  for (const auto net : kThreeNets) {
    for (const std::size_t bytes : sizes) {
      reg.add("ext_threeway",
              std::string(net_tag(net)) + "/" + std::to_string(bytes),
              [net, bytes, reps, warmup]() {
                driver::PointResult r;
                microbench::PingPongOptions opt;
                opt.sizes = {bytes};
                opt.repetitions = reps;
                opt.warmup = warmup;
                core::Cluster::RunStats st;
                opt.stats = &st;
                const auto pts =
                    microbench::run_pingpong(cluster_for(net, 2), opt);
                fold_run(r, st);
                r.add("bytes", static_cast<double>(bytes), 0);
                r.add("us", pts.at(0).latency_us, 2);
                r.add("MB/s", pts.at(0).bandwidth_mbs, 0);
                return r;
              });
    }
  }
  // The predecessor study's application-level check.
  for (const auto net : kThreeNets) {
    reg.add("ext_threeway", std::string("cg/") + net_tag(net), [net]() {
      driver::PointResult r;
      apps::npb::CgConfig cfg;
      cfg.cls = apps::npb::class_W();
      apps::npb::CgResult res;
      run_cluster(r, cluster_for(net, 16, 1), [&](mpi::Mpi& mpi) {
        const auto x = apps::npb::run_cg(mpi, cfg);
        if (mpi.rank() == 0) res = x;
      });
      r.add("MOps/p", res.mops_per_process, 1);
      r.add("zeta", res.zeta, 9);
      return r;
    });
  }
}

void register_ext_loggp(driver::Registry& reg) {
  auto& g = reg.group("ext_loggp",
                      "Extension: LogGP characterization (2 nodes, 1 PPN)");
  g.finalize = [](std::vector<driver::PointResult>&) {
    return std::vector<std::string>{
        "Reading: o and g are where host-based MPI stacks lose; L reflects "
        "NIC processing + fabric hops; G is the PCI-X / link ceiling."};
  };
  for (const auto net : kThreeNets) {
    reg.add("ext_loggp", net_tag(net), [net]() {
      driver::PointResult r;
      const auto p = core::measure_loggp(cluster_for(net, 2));
      r.add("L us", p.L_us, 2);
      r.add("o_send us", p.o_send_us, 2);
      r.add("o_recv us", p.o_recv_us, 2);
      r.add("g us", p.g_us, 2);
      r.add("G ns/B", p.G_ns_per_byte, 2);
      r.add("rtt/2 us", p.half_rtt_us, 2);
      return r;
    });
  }
}

void register_ext_collectives(driver::Registry& reg) {
  auto& g = reg.group("ext_collectives",
                      "Extension: collective latency (us), 1 PPN (barrier | "
                      "allreduce 8B | bcast 1KB | alltoall 128B/peer)");
  g.finalize = [](std::vector<driver::PointResult>&) {
    return std::vector<std::string>{
        "paper-shape expectation: every column pair keeps roughly the "
        "Figure 1(a) latency ratio, growing with log(nodes)"};
  };

  for (const auto net :
       {core::Network::infiniband, core::Network::quadrics}) {
    for (const int nodes : {2, 4, 8, 16, 32}) {
      reg.add("ext_collectives",
              std::string(net_tag(net)) + "/" + std::to_string(nodes) + "n",
              [net, nodes]() {
                driver::PointResult r;
                double tb = 0.0, tr = 0.0, tc = 0.0, ta = 0.0;
                run_cluster(r, cluster_for(net, nodes, 1),
                            [&](mpi::Mpi& mpi) {
                  constexpr int kReps = 30;
                  const int n = mpi.size();
                  std::vector<double> vec(128);
                  std::vector<double> a2a_in(static_cast<std::size_t>(n) * 16);
                  std::vector<double> a2a_out(static_cast<std::size_t>(n) * 16);

                  auto timed = [&](auto&& op) {
                    mpi.barrier();
                    const double t0 = mpi.wtime();
                    for (int i = 0; i < kReps; ++i) op();
                    // A root can run ahead of the receivers (its sends
                    // complete locally); the honest cost is the slowest
                    // participant's.
                    const double mine = (mpi.wtime() - t0) / kReps * 1e6;
                    return mpi.allreduce(mine, mpi::ReduceOp::max);
                  };

                  const double b = timed([&] { mpi.barrier(); });
                  const double rr = timed(
                      [&] { (void)mpi.allreduce(1.0, mpi::ReduceOp::sum); });
                  const double c =
                      timed([&] { mpi.bcast(vec.data(), vec.size(), 0); });
                  const double a = timed([&] {
                    mpi.alltoall(a2a_in.data(), 16, a2a_out.data());
                  });
                  if (mpi.rank() == 0) {
                    tb = b;
                    tr = rr;
                    tc = c;
                    ta = a;
                  }
                });
                r.add("barrier", tb, 1);
                r.add("allreduce", tr, 1);
                r.add("bcast", tc, 1);
                r.add("alltoall", ta, 1);
                return r;
              });
    }
  }
}

}  // namespace icsim::bench
