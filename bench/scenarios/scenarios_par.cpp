// fig8_simulated scenario group: the Figure 8 extrapolation actually
// *simulated* instead of trend-fitted — barrier and 8-byte allreduce on
// both fabrics at 1024..8192 nodes, run on the conservatively synchronized
// parallel engine (src/par/).
//
// Where fig8_extrapolation continues the 8->32-node application trends by
// formula, these points build the full fat tree at target scale and let the
// calibrated per-message overheads and per-hop switch latencies compound
// through a real event schedule.  Shape targets: Elan-4's collectives stay
// roughly 2x ahead of InfiniBand at every size (its 35 ns vs 200 ns switch
// hop and cheap PIO post vs 1.8 us WQE fetch), and both grow ~log2(n)
// rounds deep, so the absolute gap widens with scale.
//
// Determinism: each point reports the parallel engine's canonical
// partition-merge digest, which is byte-identical for any intra-run thread
// count — CI re-runs this group under ICSIM_PAR_THREADS=1,2,4,8 and diffs
// the sweep JSON (docs/MODEL.md section 14).  threads_used is deliberately
// NOT a metric: it is host policy, and sweep output must be
// machine-invariant.

#include <string>
#include <vector>

#include "common.hpp"
#include "par/par_cluster.hpp"
#include "scenarios.hpp"

namespace icsim::bench {

namespace {

struct ParPoint {
  core::Network net;
  int nodes;
  par::Collective op;
};

driver::PointResult run_par_point(const ParPoint& pt) {
  driver::PointResult r;
  core::ClusterConfig cc = cluster_for(pt.net, pt.nodes);
  par::ParCluster cluster(cc);
  par::CollectiveSpec spec;
  spec.op = pt.op;
  spec.bytes = 8;
  spec.iterations = 2;
  const par::ParRunStats st = cluster.run(spec);

  r.add("nodes", pt.nodes, 0);
  r.add("us/iter", st.simulated_us / spec.iterations, 2);
  r.add("messages", static_cast<double>(st.messages), 0);
  r.add("chunks", static_cast<double>(st.fabric_chunks), 0);
  r.add("windows", static_cast<double>(st.windows), 0);
  r.add("cross_posts", static_cast<double>(st.cross_posts), 0);
  r.add("partitions", st.partitions, 0);
  r.events += st.events_processed;
  sim::check::Fnv1a f;
  f.fold(r.digest);
  f.fold(st.event_digest);
  r.digest = f.value();
  return r;
}

}  // namespace

void register_fig8_simulated(driver::Registry& reg) {
  auto& g = reg.group("fig8_simulated",
                      "Figure 8 (simulated): collectives at 1024-8192 nodes "
                      "on the parallel engine (us per op)");
  g.finalize = [](std::vector<driver::PointResult>& pts) {
    std::vector<std::string> out;
    // Points are registered net-major, op-minor over the same node list, so
    // pair IB and Elan entries positionally: the Elan half follows the IB
    // half in registry order.
    const std::size_t half = pts.size() / 2;
    double worst = 0.0, best = 1e300;
    for (std::size_t i = 0; i < half && half + i < pts.size(); ++i) {
      const double ib_us = pts[i].value("us/iter");
      const double el_us = pts[half + i].value("us/iter");
      if (el_us <= 0.0) continue;
      const double ratio = ib_us / el_us;
      pts[i].add("vs Elan", ratio, 2);
      if (ratio > worst) worst = ratio;
      if (ratio < best) best = ratio;
    }
    out.push_back(line("IB/Elan latency ratio across ops and sizes: "
                       "%.2fx .. %.2fx (paper's switch+overhead gap "
                       "compounds with log2(n) rounds)",
                       best, worst));
    return out;
  };

  const bool fast = fast_mode();
  const std::vector<int> sizes =
      fast ? std::vector<int>{256, 1024}
           : std::vector<int>{1024, 2048, 4096, 8192};
  for (const core::Network net :
       {core::Network::infiniband, core::Network::quadrics}) {
    for (const int n : sizes) {
      for (const par::Collective op :
           {par::Collective::barrier, par::Collective::allreduce}) {
        const std::string name = std::string(net_tag(net)) + "/" +
                                 std::to_string(n) + "/" +
                                 par::to_string(op);
        reg.add("fig8_simulated", name,
                [pt = ParPoint{net, n, op}] { return run_par_point(pt); });
      }
    }
  }
}

}  // namespace icsim::bench
