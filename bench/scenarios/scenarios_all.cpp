#include "scenarios.hpp"

namespace icsim::bench {

void register_all(driver::Registry& r) {
  register_fig1_latency(r);
  register_fig1_bandwidth(r);
  register_fig1_beff(r);
  register_fig2_ljs(r);
  register_fig3_membrane(r);
  register_fig4_sweep3d(r);
  register_fig5_sweep3d_inputs(r);
  register_fig6_npb_cg(r);
  register_fig7_cost(r);
  register_fig8_extrapolation(r);
  register_fig8_simulated(r);
  register_ext_threeway(r);
  register_ext_npb_suite(r);
  register_ext_scale(r);
  register_ext_loggp(r);
  register_ext_collectives(r);
  register_ext_faults(r);
  register_replay(r);
  register_traffic(r);
}

}  // namespace icsim::bench
