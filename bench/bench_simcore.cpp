// google-benchmark microbenchmarks of the simulator substrate itself:
// event-queue throughput, fiber context switching, fabric packet rate,
// matcher scans and registration-cache operations.  These guard the
// harness's own performance — a full Figure 3 reproduction schedules tens
// of millions of events.

#include <benchmark/benchmark.h>

#include "ib/reg_cache.hpp"
#include "mpi/matcher.hpp"
#include "net/fabric.hpp"
#include "sim/engine.hpp"
#include "sim/fiber.hpp"

namespace {

using namespace icsim;

void BM_EventSchedule(benchmark::State& state) {
  sim::Engine e;
  std::int64_t t = 0;
  for (auto _ : state) {
    e.schedule_at(sim::Time::ps(++t), [] {});
    if (t % 1024 == 0) e.run();
  }
  e.run();
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EventSchedule);

// The handle-free fast path (no cancellation tombstone allocated): what
// every internal model callback uses.
void BM_EventPost(benchmark::State& state) {
  sim::Engine e;
  std::int64_t t = 0;
  for (auto _ : state) {
    e.post_at(sim::Time::ps(++t), [] {});
    if (t % 1024 == 0) e.run();
  }
  e.run();
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EventPost);

void BM_EventDispatch(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    sim::Engine e;
    for (int i = 0; i < 4096; ++i) {
      e.schedule_at(sim::Time::ps(i), [] {});
    }
    state.ResumeTiming();
    e.run();
  }
  state.SetItemsProcessed(state.iterations() * 4096);
}
BENCHMARK(BM_EventDispatch);

void BM_FiberSwitch(benchmark::State& state) {
  sim::Fiber f([] {
    for (;;) sim::Fiber::yield();
  });
  for (auto _ : state) {
    f.resume();
  }
  state.SetItemsProcessed(state.iterations() * 2);  // two switches each
}
BENCHMARK(BM_FiberSwitch);

void BM_FabricChunk(benchmark::State& state) {
  sim::Engine e;
  net::FabricConfig cfg;
  cfg.radix_down = 4;
  cfg.levels = 3;
  net::Fabric f(e, cfg, 64);
  int i = 0;
  for (auto _ : state) {
    f.inject(i % 64, (i + 17) % 64, 2048, nullptr);
    ++i;
    if (i % 256 == 0) e.run();
  }
  e.run();
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FabricChunk);

void BM_MatcherArrivePosted(benchmark::State& state) {
  const auto depth = static_cast<int>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    mpi::Matcher m;
    for (int i = 0; i < depth; ++i) {
      mpi::PostedRecv r;
      r.src = i;
      r.tag = i;
      r.id = static_cast<std::uint64_t>(i);
      (void)m.post(r);
    }
    mpi::Envelope e;
    e.src = depth - 1;
    e.tag = depth - 1;
    state.ResumeTiming();
    benchmark::DoNotOptimize(m.arrive(e));
  }
}
BENCHMARK(BM_MatcherArrivePosted)->Arg(8)->Arg(64)->Arg(512);

void BM_RegCacheHit(benchmark::State& state) {
  ib::RegistrationCache c(64 << 20, 4096, sim::Time::us(25), sim::Time::us(1),
                          sim::Time::us(15), sim::Time::us(0.55));
  const std::uint64_t buf = ib::logical_buffer(true, 1, 0, 0);
  (void)c.acquire(buf, 8192);
  for (auto _ : state) {
    benchmark::DoNotOptimize(c.acquire(buf, 8192));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RegCacheHit);

}  // namespace

BENCHMARK_MAIN();
