// Table 1: the evaluated platform — compute nodes, both interconnects and
// their MPI stacks — as configured in this reproduction's calibration.

#include <cstdio>

#include "core/cluster.hpp"

int main() {
  using namespace icsim;
  const auto node = core::poweredge1750();
  const auto ibf = core::ib_fabric(32);
  const auto elf = core::elan_fabric(32);
  const auto hca = core::voltaire_hca400();
  const auto elan = core::elan4_qm500();
  const auto mv = core::mvapich_092();

  std::printf("Table 1: evaluated platform (simulated)\n\n");
  std::printf("Node: Dell PowerEdge 1750 class — %d CPUs, PCI-X %.0f MB/s "
              "(+%.0f ns/burst), host copy %.1f GB/s, SMP compute slowdown "
              "x%.2f\n",
              node.cpus, node.pcix_bandwidth.mb_per_second(),
              static_cast<double>(node.pcix_dma_overhead.to_ns()),
              node.memory_copy_bandwidth.bytes_per_second() / 1e9,
              node.smp_compute_slowdown);

  std::printf("\n4X InfiniBand: Voltaire HCA 400 + ISR 9600 class fabric\n");
  std::printf("  link %.2f GB/s data, switch hop %.0f ns, MTU %u B, "
              "fat tree radix %d x %d levels\n",
              ibf.link_bandwidth.bytes_per_second() / 1e9,
              ibf.switch_latency.to_ns(), ibf.mtu_bytes, ibf.radix_down,
              ibf.levels);
  std::printf("  HCA: WQE %.2f us, reg %.0f us + %.2f us/page, pin cache "
              "%.1f MB, QP connect %.0f us\n",
              hca.send_wqe_cost.to_us(), hca.reg_base_cost.to_us(),
              hca.reg_per_page.to_us(),
              static_cast<double>(hca.reg_cache_capacity) / 1e6,
              hca.qp_connect_cost.to_us());
  std::printf("  MPI: MVAPICH 0.9.2 model — eager <= %zu B, ring %d slots x "
              "%u B per peer, progress only inside MPI calls\n",
              mv.eager_threshold, mv.ring_slots, mv.vbuf_bytes);

  std::printf("\nQuadrics Elan-4: QM-500 + QS5A class fabric\n");
  std::printf("  link %.2f GB/s data, switch hop %.0f ns, fat tree radix %d "
              "x %d levels\n",
              elf.link_bandwidth.bytes_per_second() / 1e9,
              elf.switch_latency.to_ns(), elf.radix_down, elf.levels);
  std::printf("  NIC: thread tx %.2f us / rx %.2f us + %.0f ns per match "
              "entry, inline %u B, get threshold %u B, no registration\n",
              elan.nic_tx_cost.to_us(), elan.nic_rx_base.to_us(),
              elan.match_per_entry.to_ns(), elan.inline_bytes,
              elan.get_threshold);
  std::printf("  MPI: Quadrics Tports model — NIC matching, independent "
              "progress, connectionless\n");
  return 0;
}
