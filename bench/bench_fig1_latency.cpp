// Figure 1(a): ping-pong latency vs message size, 4X InfiniBand vs Quadrics
// Elan-4, two nodes, 1 PPN, Pallas method.
//
// Paper shape targets: Elan-4 latency about half of InfiniBand's at small
// sizes; a sharp InfiniBand jump between 1 KB and 2 KB where MVAPICH
// switches from its eager to its rendezvous protocol; both then track
// message size.

#include <cstdint>
#include <cstdio>

#include "core/report.hpp"
#include "microbench/pingpong.hpp"

int main() {
  using namespace icsim;

  microbench::PingPongOptions opt;
  opt.sizes = microbench::pallas_sizes(4 << 20);
  opt.repetitions = 50;
  opt.warmup = 5;

  std::printf("Figure 1(a): ping-pong latency (us), 2 nodes, 1 PPN\n\n");
  std::uint64_t ib_digest = 0, elan_digest = 0;
  opt.event_digest = &ib_digest;
  const auto ib = microbench::run_pingpong(core::ib_cluster(2), opt);
  opt.event_digest = &elan_digest;
  const auto elan = microbench::run_pingpong(core::elan_cluster(2), opt);

  core::Table t({"bytes", "IB us", "Elan4 us", "IB/Elan"});
  t.print_header();
  for (std::size_t i = 0; i < ib.size(); ++i) {
    t.print_row({core::fmt_int(static_cast<long>(ib[i].bytes)),
                 core::fmt(ib[i].latency_us),
                 core::fmt(elan[i].latency_us),
                 core::fmt(ib[i].latency_us / elan[i].latency_us)});
  }

  std::printf("\npaper anchors: Elan-4 ~= 1/2 IB at small sizes; IB jump "
              "between 1KB and 2KB (eager->rendezvous)\n");
  std::printf("event digests (reruns must match): ib=%016llx elan=%016llx\n",
              static_cast<unsigned long long>(ib_digest),
              static_cast<unsigned long long>(elan_digest));
  return 0;
}
