// Figure 1(a): ping-pong latency vs message size, 4X InfiniBand vs Quadrics
// Elan-4, two nodes, 1 PPN, Pallas method.
//
// Paper shape targets: Elan-4 latency about half of InfiniBand's at small
// sizes; a sharp InfiniBand jump between 1 KB and 2 KB where MVAPICH
// switches from its eager to its rendezvous protocol; both then track
// message size.
//
// Thin wrapper over the fig1_latency scenario group: the points run
// through the parallel sweep driver, so -j N / --json / --csv work here
// exactly as in icsim_sweep (see src/driver/).

#include "driver/sweep_main.hpp"
#include "scenarios/scenarios.hpp"

int main(int argc, char** argv) {
  icsim::driver::Registry reg;
  icsim::bench::register_fig1_latency(reg);
  return icsim::driver::sweep_main(reg, argc, argv);
}
