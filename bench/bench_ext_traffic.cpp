// Extension: open-loop traffic generation (no paper figure — the 2004
// study's workloads are closed-loop; this drives both fabrics as a serving
// substrate, where requests arrive at a configured rate whether or not
// earlier ones finished and the figure of merit is the sojourn-time tail).
//
// Group `traffic` sweeps offered load 10%..120% of the *measured* serving
// capacity at the configured request size (a closed-loop calibration run
// inside the plan build — line rate is unreachable at serving sizes) over
// six traffic shapes (Poisson-uniform, MMPP burst, hotspot, incast,
// shuffle, RPC fan-out/fan-in) on both networks, reporting offered vs
// delivered throughput and p50/p99/p999 sojourn latency.
//
// Group `traffic_degraded` offers rate-paced 90% load in 64 kB streaming
// requests across leaf 0's up-cables and cuts one cable for the middle of
// the run (via the ICSIM_FAULTS grammar): the 4-ary Elan tree's tail
// degrades ~2.3x, the 12-port IB Clos reroutes onto idle spares.
//
// Thin wrapper over both traffic scenario groups (see src/driver/).

#include "driver/sweep_main.hpp"
#include "scenarios/scenarios.hpp"

int main(int argc, char** argv) {
  icsim::driver::Registry reg;
  icsim::bench::register_traffic(reg);
  return icsim::driver::sweep_main(reg, argc, argv);
}
