// Extension: the three-way comparison of the paper's predecessor study
// (Liu et al., reference [11]: InfiniBand vs Myrinet vs Quadrics) —
// regenerated with this paper's Elan-4 in place of Elan-3, plus NAS CG at
// 16 processes as the predecessor's application-level check.
//
// Expected ordering (Liu et al. + this paper): Elan-4 fastest at small
// messages; 4X InfiniBand's fat links win raw bandwidth over Myrinet by
// ~3.5x; Myrinet's 16 kB copy blocks keep its curve smooth but its 2 Gb/s
// links cap it near 240 MB/s.

#include <cstdio>

#include "apps/npb/cg.hpp"
#include "core/cluster.hpp"
#include "core/report.hpp"
#include "microbench/pingpong.hpp"

int main() {
  using namespace icsim;

  microbench::PingPongOptions opt;
  opt.sizes = {0, 64, 1024, 8192, 65536, 1 << 20};
  opt.repetitions = 40;
  opt.warmup = 4;

  const auto ib = microbench::run_pingpong(core::ib_cluster(2), opt);
  const auto el = microbench::run_pingpong(core::elan_cluster(2), opt);
  const auto my = microbench::run_pingpong(core::myrinet_cluster(2), opt);

  std::printf("Extension: three-way micro-benchmark comparison "
              "(cf. Liu et al. [11])\n\n");
  core::Table t({"bytes", "IB us", "Elan4 us", "Myri us", "IB MB/s",
                 "Elan4 MB/s", "Myri MB/s"});
  t.print_header();
  for (std::size_t i = 0; i < opt.sizes.size(); ++i) {
    t.print_row({core::fmt_int(static_cast<long>(opt.sizes[i])),
                 core::fmt(ib[i].latency_us), core::fmt(el[i].latency_us),
                 core::fmt(my[i].latency_us), core::fmt(ib[i].bandwidth_mbs, 0),
                 core::fmt(el[i].bandwidth_mbs, 0),
                 core::fmt(my[i].bandwidth_mbs, 0)});
  }

  std::printf("\nNAS CG class W at 16 processes (MOps/s/process):\n");
  apps::npb::CgConfig cfg;
  cfg.cls = apps::npb::class_W();
  for (const auto net : {core::Network::infiniband, core::Network::quadrics,
                         core::Network::myrinet}) {
    core::ClusterConfig cc = net == core::Network::infiniband
                                 ? core::ib_cluster(16, 1)
                             : net == core::Network::quadrics
                                 ? core::elan_cluster(16, 1)
                                 : core::myrinet_cluster(16, 1);
    core::Cluster cluster(cc);
    apps::npb::CgResult r;
    cluster.run([&](mpi::Mpi& mpi) {
      const auto res = apps::npb::run_cg(mpi, cfg);
      if (mpi.rank() == 0) r = res;
    });
    std::printf("  %-16s %8.1f MOps/s/proc  (zeta %.9f)\n",
                core::to_string(net), r.mops_per_process, r.zeta);
  }
  std::printf("\npaper-era anchors: Elan-4 lowest latency; IB highest "
              "bandwidth; Myrinet capped ~240 MB/s by its 2 Gb/s links\n");
  return 0;
}
