// Extension: the three-way comparison of the paper's predecessor study
// (Liu et al., reference [11]: InfiniBand vs Myrinet vs Quadrics) —
// regenerated with this paper's Elan-4 in place of Elan-3, plus NAS CG at
// 16 processes as the predecessor's application-level check.
//
// Expected ordering (Liu et al. + this paper): Elan-4 fastest at small
// messages; 4X InfiniBand's fat links win raw bandwidth over Myrinet by
// ~3.5x; Myrinet's 16 kB copy blocks keep its curve smooth but its 2 Gb/s
// links cap it near 240 MB/s.
//
// Thin wrapper over the ext_threeway scenario group (see src/driver/).

#include "driver/sweep_main.hpp"
#include "scenarios/scenarios.hpp"

int main(int argc, char** argv) {
  icsim::driver::Registry reg;
  icsim::bench::register_ext_threeway(reg);
  return icsim::driver::sweep_main(reg, argc, argv);
}
