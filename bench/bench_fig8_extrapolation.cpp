// Figure 8: the LAMMPS membrane study extrapolated to 8192 processors,
// assuming the 8->32-node trends continue exactly (the paper notes this is
// probably optimistic for Elan-4).
//
// Paper shape targets: a difference of nearly 40% in scaling efficiency at
// 1024 nodes; "Quadrics might be able to be competitive for some
// applications at scale, if current trends continue."
//
// Thin wrapper over the fig8_extrapolation scenario group: the six anchor
// points (net x {1, 8, 32} nodes) are measured as sweep points, the trend
// fit and the 8..4096-node table come from the group finalize hook (see
// src/driver/).

#include "driver/sweep_main.hpp"
#include "scenarios/scenarios.hpp"

int main(int argc, char** argv) {
  icsim::driver::Registry reg;
  icsim::bench::register_fig8_extrapolation(reg);
  return icsim::driver::sweep_main(reg, argc, argv);
}
