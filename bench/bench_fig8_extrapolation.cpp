// Figure 8: the LAMMPS membrane study extrapolated to 8192 processors,
// assuming the 8->32-node trends continue exactly (the paper notes this is
// probably optimistic for Elan-4).
//
// Paper shape targets: a difference of nearly 40% in scaling efficiency at
// 1024 nodes; "Quadrics might be able to be competitive for some
// applications at scale, if current trends continue."

#include <cstdio>
#include <cstdlib>

#include "apps/lammps/md.hpp"
#include "core/cluster.hpp"
#include "core/extrapolate.hpp"
#include "core/report.hpp"

namespace {

double run_case(icsim::core::Network net, int nodes,
                const icsim::apps::md::MdConfig& mc) {
  using namespace icsim;
  core::ClusterConfig cc = net == core::Network::infiniband
                               ? core::ib_cluster(nodes, 2)
                               : core::elan_cluster(nodes, 2);
  core::Cluster cluster(cc);
  double seconds = 0.0;
  cluster.run([&](mpi::Mpi& mpi) {
    const auto r = apps::md::run_md(mpi, mc);
    if (mpi.rank() == 0) seconds = r.loop_seconds;
  });
  return seconds;
}

}  // namespace

int main() {
  using namespace icsim;

  apps::md::MdConfig mc = apps::md::membrane_config();
  mc.cells_x = mc.cells_y = mc.cells_z = 8;
  mc.steps = 30;
  if (std::getenv("ICSIM_FAST") != nullptr) {
    mc.cells_x = mc.cells_y = mc.cells_z = 5;
    mc.steps = 12;
  }

  std::printf("Figure 8: membrane study (2 PPN) measured to 32 nodes, then "
              "extrapolated\n\n");
  // Measure the anchor points.
  const double ib1 = run_case(core::Network::infiniband, 1, mc);
  const double ib8 = run_case(core::Network::infiniband, 8, mc);
  const double ib32 = run_case(core::Network::infiniband, 32, mc);
  const double el1 = run_case(core::Network::quadrics, 1, mc);
  const double el8 = run_case(core::Network::quadrics, 8, mc);
  const double el32 = run_case(core::Network::quadrics, 32, mc);

  const auto ib_trend = core::fit_scaled_trend(ib1, 8, ib8, 32, ib32);
  const auto el_trend = core::fit_scaled_trend(el1, 8, el8, 32, el32);

  core::Table t({"nodes", "procs", "IB time s", "El time s", "IB eff%",
                 "El eff%", "gap pts"});
  t.print_header();
  double gap_1024 = 0.0, rel_1024 = 0.0;
  for (int nodes = 8; nodes <= 4096; nodes *= 2) {
    const bool measured = nodes <= 32;
    const double ti = measured ? (nodes == 8 ? ib8 : nodes == 32 ? ib32
                                    : ib_trend.time_at(nodes, ib1))
                               : ib_trend.time_at(nodes, ib1);
    const double te = measured ? (nodes == 8 ? el8 : nodes == 32 ? el32
                                    : el_trend.time_at(nodes, el1))
                               : el_trend.time_at(nodes, el1);
    const double ei = 100.0 * ib1 / ti;
    const double ee = 100.0 * el1 / te;
    if (nodes == 1024) {
      gap_1024 = ee - ei;
      rel_1024 = (ee - ei) / ee * 100.0;
    }
    t.print_row({core::fmt_int(nodes), core::fmt_int(2L * nodes),
                 core::fmt(ti, 4), core::fmt(te, 4), core::fmt(ei, 1),
                 core::fmt(ee, 1), core::fmt(ee - ei, 1)});
  }
  std::printf("\nat 1024 nodes: efficiency gap %.1f points (%.0f%% of the "
              "Elan-4 efficiency; paper reports 'nearly 40%%')\n",
              gap_1024, rel_1024);
  return 0;
}
