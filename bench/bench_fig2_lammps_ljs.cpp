// Figure 2: LAMMPS LJS scaled-speedup study — (a) loop time, (b) scaling
// efficiency — for both networks at 1 and 2 processes per node.
//
// Paper shape targets: on an ideal network the curves are flat (constant
// work per process).  1 PPN beats 2 PPN on both networks; Elan-4 leads
// marginally at 1 PPN; the gap between the InfiniBand 1 PPN and 2 PPN
// curves is much wider than Elan's (host-based progress + on-node traffic
// crossing PCI-X + memory-bus copies), which is the paper's key LJS
// observation.

#include <cstdio>
#include <cstdlib>

#include "apps/lammps/md.hpp"
#include "core/cluster.hpp"
#include "core/report.hpp"

namespace {

double run_case(icsim::core::Network net, int nodes, int ppn,
                const icsim::apps::md::MdConfig& mc) {
  using namespace icsim;
  core::ClusterConfig cc = net == core::Network::infiniband
                               ? core::ib_cluster(nodes, ppn)
                               : core::elan_cluster(nodes, ppn);
  core::Cluster cluster(cc);
  double seconds = 0.0;
  cluster.run([&](mpi::Mpi& mpi) {
    const auto r = apps::md::run_md(mpi, mc);
    if (mpi.rank() == 0) seconds = r.loop_seconds;
  });
  return seconds;
}

}  // namespace

int main() {
  using namespace icsim;

  apps::md::MdConfig mc = apps::md::ljs_config();
  mc.cells_x = mc.cells_y = mc.cells_z = 8;
  mc.steps = 30;
  if (std::getenv("ICSIM_FAST") != nullptr) {
    mc.cells_x = mc.cells_y = mc.cells_z = 5;
    mc.steps = 12;
  }

  const int node_counts[] = {1, 2, 4, 8, 16, 32};
  std::printf("Figure 2: LAMMPS LJS scaled study, %d cells/rank, %d steps\n\n",
              mc.cells_x, mc.steps);
  core::Table t({"nodes", "IB 1ppn s", "IB 2ppn s", "El 1ppn s", "El 2ppn s",
                 "IB1 eff%", "IB2 eff%", "El1 eff%", "El2 eff%"});
  t.print_header();

  double base[4] = {0, 0, 0, 0};
  for (const int nodes : node_counts) {
    const double v[4] = {
        run_case(core::Network::infiniband, nodes, 1, mc),
        run_case(core::Network::infiniband, nodes, 2, mc),
        run_case(core::Network::quadrics, nodes, 1, mc),
        run_case(core::Network::quadrics, nodes, 2, mc),
    };
    if (nodes == 1) {
      for (int i = 0; i < 4; ++i) base[i] = v[i];
    }
    t.print_row({core::fmt_int(nodes), core::fmt(v[0], 4), core::fmt(v[1], 4),
                 core::fmt(v[2], 4), core::fmt(v[3], 4),
                 core::fmt(100.0 * core::scaled_efficiency(base[0], v[0]), 1),
                 core::fmt(100.0 * core::scaled_efficiency(base[1], v[1]), 1),
                 core::fmt(100.0 * core::scaled_efficiency(base[2], v[2]), 1),
                 core::fmt(100.0 * core::scaled_efficiency(base[3], v[3]), 1)});
  }
  std::printf("\npaper anchors: 1 PPN > 2 PPN on both; Elan-4 marginally "
              "ahead at 1 PPN; IB's 1->2 PPN gap much wider than Elan's\n");
  return 0;
}
