// Figure 2: LAMMPS LJS scaled-speedup study — (a) loop time, (b) scaling
// efficiency — for both networks at 1 and 2 processes per node.
//
// Paper shape targets: on an ideal network the curves are flat (constant
// work per process).  1 PPN beats 2 PPN on both networks; Elan-4 leads
// marginally at 1 PPN; the gap between the InfiniBand 1 PPN and 2 PPN
// curves is much wider than Elan's (host-based progress + on-node traffic
// crossing PCI-X + memory-bus copies), which is the paper's key LJS
// observation.
//
// Thin wrapper over the fig2_ljs scenario group (see src/driver/).

#include "driver/sweep_main.hpp"
#include "scenarios/scenarios.hpp"

int main(int argc, char** argv) {
  icsim::driver::Registry reg;
  icsim::bench::register_fig2_ljs(reg);
  return icsim::driver::sweep_main(reg, argc, argv);
}
