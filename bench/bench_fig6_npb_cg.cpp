// Figure 6: NAS CG class A — (a) MOps/second/process, (b) scaling
// efficiency — both networks, 1 and 2 PPN.
//
// Class A is fixed-size and cache-resident, so the computation-to-
// communication ratio is low: both networks' efficiency drops rapidly as
// the process count grows.  Paper shape targets: Quadrics maintains a
// distinct advantage that grows slightly with node count.
//
// The runs also verify zeta against the NPB reference for class A
// (17.130235054029) — the simulated MPI moves real data.

#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "apps/npb/cg.hpp"
#include "core/cluster.hpp"
#include "core/report.hpp"

namespace {

icsim::apps::npb::CgResult run_case(icsim::core::Network net, int nodes,
                                    int ppn,
                                    const icsim::apps::npb::CgConfig& cfg) {
  using namespace icsim;
  core::ClusterConfig cc = net == core::Network::infiniband
                               ? core::ib_cluster(nodes, ppn)
                               : core::elan_cluster(nodes, ppn);
  core::Cluster cluster(cc);
  apps::npb::CgResult result;
  cluster.run([&](mpi::Mpi& mpi) {
    const auto r = apps::npb::run_cg(mpi, cfg);
    if (mpi.rank() == 0) result = r;
  });
  return result;
}

}  // namespace

int main() {
  using namespace icsim;

  apps::npb::CgConfig cfg;
  cfg.cls = apps::npb::class_A();
  double zeta_ref = 17.130235054029;
  if (std::getenv("ICSIM_FAST") != nullptr) {
    cfg.cls = apps::npb::class_S();
    zeta_ref = 8.5971775078648;
  }

  // Process counts are powers of two (NPB requirement); the paper ran the
  // same ladder in 1 PPN (processes = nodes) and 2 PPN modes.
  const int procs[] = {1, 2, 4, 8, 16, 32, 64};
  std::printf("Figure 6: NAS CG class %s, MOps/s/process and efficiency\n\n",
              cfg.cls.name);
  core::Table t({"procs", "IB1 MOps/p", "El1 MOps/p", "IB2 MOps/p",
                 "El2 MOps/p", "IB1 eff%", "El1 eff%"});
  t.print_header();

  double base_ib = 0.0, base_el = 0.0;
  double zeta_seen = 0.0;
  for (const int p : procs) {
    const auto ib1 = run_case(core::Network::infiniband, p, 1, cfg);
    const auto el1 = run_case(core::Network::quadrics, p, 1, cfg);
    // 2 PPN: same process count on half the nodes.
    const bool has2 = p >= 2;
    const auto ib2 = has2 ? run_case(core::Network::infiniband, p / 2, 2, cfg)
                          : ib1;
    const auto el2 = has2 ? run_case(core::Network::quadrics, p / 2, 2, cfg)
                          : el1;
    if (p == 1) {
      base_ib = ib1.mops_per_process;
      base_el = el1.mops_per_process;
    }
    zeta_seen = el1.zeta;
    t.print_row({core::fmt_int(p), core::fmt(ib1.mops_per_process, 1),
                 core::fmt(el1.mops_per_process, 1),
                 core::fmt(ib2.mops_per_process, 1),
                 core::fmt(el2.mops_per_process, 1),
                 core::fmt(100.0 * ib1.mops_per_process / base_ib, 1),
                 core::fmt(100.0 * el1.mops_per_process / base_el, 1)});
  }
  std::printf("\nzeta = %.12f (NPB reference %.12f) %s\n", zeta_seen, zeta_ref,
              std::abs(zeta_seen - zeta_ref) < 1e-9 ? "VERIFIED" : "MISMATCH");
  std::printf("paper anchors: both networks drop rapidly in efficiency; "
              "Quadrics holds a distinct, slightly growing advantage\n");
  return 0;
}
