// Figure 6: NAS CG class A — (a) MOps/second/process, (b) scaling
// efficiency — both networks, 1 and 2 PPN.
//
// Class A is fixed-size and cache-resident, so the computation-to-
// communication ratio is low: both networks' efficiency drops rapidly as
// the process count grows.  Paper shape targets: Quadrics maintains a
// distinct advantage that grows slightly with node count.
//
// The runs also verify zeta against the NPB reference for class A
// (17.130235054029) — the simulated MPI moves real data.
//
// Thin wrapper over the fig6_npb_cg scenario group (see src/driver/).

#include "driver/sweep_main.hpp"
#include "scenarios/scenarios.hpp"

int main(int argc, char** argv) {
  icsim::driver::Registry reg;
  icsim::bench::register_fig6_npb_cg(reg);
  return icsim::driver::sweep_main(reg, argc, argv);
}
