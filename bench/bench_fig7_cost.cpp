// Tables 2 and 3 plus Figure 7: list prices and cost per port vs network
// size for the four build-outs the paper compares.
//
// Paper shape targets: Quadrics Elan-4 is the most expensive line; IB from
// 96-port switches is cost-comparable (the network-per-node difference is
// about 6.5% at large scale, "comparable to the difference in application
// performance"); the newer 24-port + 288-port builds drop the cost
// dramatically.  With a $2,500 node, total-system deltas are ~4% (vs the
// 96-port build) and ~51% (vs the 24/288 build).
//
// Thin wrapper over the fig7_cost scenario group (see src/driver/).

#include "driver/sweep_main.hpp"
#include "scenarios/scenarios.hpp"

int main(int argc, char** argv) {
  icsim::driver::Registry reg;
  icsim::bench::register_fig7_cost(reg);
  return icsim::driver::sweep_main(reg, argc, argv);
}
