// Tables 2 and 3 plus Figure 7: list prices and cost per port vs network
// size for the four build-outs the paper compares.
//
// Paper shape targets: Quadrics Elan-4 is the most expensive line; IB from
// 96-port switches is cost-comparable (the network-per-node difference is
// about 6.5% at large scale, "comparable to the difference in application
// performance"); the newer 24-port + 288-port builds drop the cost
// dramatically.  With a $2,500 node, total-system deltas are ~4% (vs the
// 96-port build) and ~51% (vs the 24/288 build).

#include <cstdio>

#include "core/report.hpp"
#include "cost/cost_model.hpp"

int main() {
  using namespace icsim;
  const cost::IbPrices ib;
  const cost::QuadricsPrices qs;

  std::printf("Table 2: InfiniBand list prices (April 2004; [i] = inferred, "
              "see pricing.hpp)\n");
  std::printf("  HCS 400 4X HCA            $%8.0f\n", ib.hca);
  std::printf("  4X copper cable           $%8.0f\n", ib.host_cable);
  std::printf("  96-port switch        [i] $%8.0f\n", ib.sw96_port);
  std::printf("  24-port switch        [i] $%8.0f\n", ib.sw24_port);
  std::printf("  288-port switch       [i] $%8.0f\n\n", ib.sw288_port);

  std::printf("Table 3: Quadrics Elan-4 list prices\n");
  std::printf("  QM-500 network adapter[i] $%8.0f\n", qs.adapter);
  std::printf("  Node-level chassis        $%8.0f\n", qs.node_chassis);
  std::printf("  Top-level switch          $%8.0f\n", qs.top_switch);
  std::printf("  QM580 clock source        $%8.0f\n", qs.clock_source);
  std::printf("  QM581-05 5m link cable    $%8.0f\n", qs.cable_5m);
  std::printf("  QM581-03 3m link cable    $%8.0f\n\n", qs.cable_3m);

  std::printf("Figure 7: network cost per port (USD) vs nodes\n\n");
  core::Table t({"nodes", "Elan-4", "IB 96p", "IB 24/288", "IB 24/288 fb"});
  t.print_header();
  for (const int n : {8, 16, 32, 64, 96, 128, 256, 288, 512, 1024, 2048, 4096}) {
    t.print_row({core::fmt_int(n),
                 core::fmt(cost::quadrics_network(n).per_node(n), 0),
                 core::fmt(cost::ib96_network(n).per_node(n), 0),
                 core::fmt(cost::ib_24_288_network(n, false).per_node(n), 0),
                 core::fmt(cost::ib_24_288_network(n, true).per_node(n), 0)});
  }

  const int n = 1024;
  const double q = cost::total_system_per_node(cost::quadrics_network(n), n);
  const double i96 = cost::total_system_per_node(cost::ib96_network(n), n);
  const double i24 =
      cost::total_system_per_node(cost::ib_24_288_network(n, false), n);
  std::printf("\nSection 5 anchors at %d nodes ($2500/node):\n", n);
  std::printf("  network/node: Elan $%.0f vs IB-96 $%.0f -> %.1f%% delta "
              "(paper ~6.5%%)\n",
              cost::quadrics_network(n).per_node(n),
              cost::ib96_network(n).per_node(n),
              100.0 * (cost::quadrics_network(n).per_node(n) /
                           cost::ib96_network(n).per_node(n) - 1.0));
  std::printf("  total system: Elan/IB-96 = %.2f (paper ~1.04), "
              "Elan/IB-24+288 = %.2f (paper ~1.51)\n",
              q / i96, q / i24);
  return 0;
}
