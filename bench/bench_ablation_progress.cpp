// Ablation: independent progress (DESIGN.md section 6, item 1).
//
// The paper's central hypothesis for the application-level gaps is that
// MVAPICH makes progress only inside MPI calls while the Elan-4 NIC
// progresses independently (Section 3.3.3); reference [6] of the paper
// (Brightwell & Underwood, ICS'04) measures exactly this with an overlap
// micro-benchmark, reproduced here: each of two ranks posts
// irecv+isend of a large message, computes for T, then waits.  The
// "exposed" communication time is total - T.  A transport with
// independent progress drives the rendezvous during the compute phase, so
// exposed time collapses as T grows; one without it cannot start the bulk
// transfer until the wait, so exposed time stays near the full transfer
// cost.  Flipping our MVAPICH model's one ablation bit reproduces the
// contrast.

#include <cstdio>
#include <vector>

#include "core/cluster.hpp"
#include "core/report.hpp"

namespace {

/// Exposed communication time (us) for a bidirectional `bytes` exchange
/// with `compute_us` of computation between post and wait.
double exposed_us(const icsim::core::ClusterConfig& cc, std::size_t bytes,
                  double compute_us) {
  using namespace icsim;
  core::Cluster cluster(cc);
  double result = 0.0;
  cluster.run([&](mpi::Mpi& mpi) {
    if (mpi.rank() > 1) return;
    const int peer = 1 - mpi.rank();
    std::vector<std::byte> sbuf(bytes), rbuf(bytes);
    constexpr int kReps = 20;
    // Warm-up exchange aligns the pair and the registration cache.
    mpi.sendrecv(sbuf.data(), bytes, peer, 0, rbuf.data(), bytes, peer, 0);
    const double t0 = mpi.wtime();
    for (int i = 0; i < kReps; ++i) {
      mpi::Request rr = mpi.irecv(rbuf.data(), bytes, peer, 1);
      mpi::Request sr = mpi.isend(sbuf.data(), bytes, peer, 1);
      mpi.compute(sim::Time::sec(compute_us * 1e-6));
      mpi.wait(sr);
      mpi.wait(rr);
    }
    if (mpi.rank() == 0) {
      result = ((mpi.wtime() - t0) / kReps - compute_us * 1e-6) * 1e6;
    }
  });
  return result;
}

}  // namespace

int main() {
  using namespace icsim;
  constexpr std::size_t kBytes = 128 * 1024;

  core::ClusterConfig ib = core::ib_cluster(2);
  core::ClusterConfig ibp = core::ib_cluster(2);
  ibp.mvapich.independent_progress = true;
  core::ClusterConfig el = core::elan_cluster(2);

  std::printf("Ablation: independent progress — exposed communication time "
              "(us) for a %zu kB bidirectional exchange\n\n", kBytes / 1024);
  core::Table t({"compute us", "IB stock", "IB +indep", "Elan-4"});
  t.print_header();
  for (const double comp : {0.0, 50.0, 100.0, 200.0, 400.0, 800.0}) {
    t.print_row({core::fmt(comp, 0), core::fmt(exposed_us(ib, kBytes, comp), 1),
                 core::fmt(exposed_us(ibp, kBytes, comp), 1),
                 core::fmt(exposed_us(el, kBytes, comp), 1)});
  }
  std::printf("\nReading: with enough compute to hide behind, Elan-4 and the "
              "+independent-progress InfiniBand expose almost nothing, while "
              "stock MVAPICH still pays the bulk transfer at wait time — the "
              "paper's Section 3.3.3/3.3.5 mechanism in isolation.\n");
  return 0;
}
