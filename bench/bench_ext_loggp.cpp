// Extension: LogGP parameters of the three modeled networks — the era's
// standard vocabulary for "why does this network help applications"
// (cf. the paper's reference [15], Martin et al.).
//
// Expected shape: Elan-4 lowest on every axis except G (both PCI-X-bound
// study networks converge there); InfiniBand's g (per-message gap) is its
// weak spot — the offloaded NIC sustains several times the message rate;
// Myrinet's G is ~4x the others (2 Gb/s links).

#include <cstdio>

#include "core/loggp.hpp"
#include "core/report.hpp"

int main() {
  using namespace icsim;

  std::printf("Extension: LogGP characterization (2 nodes, 1 PPN)\n\n");
  core::Table t({"network", "L us", "o_send us", "o_recv us", "g us",
                 "G ns/B", "rtt/2 us"});
  t.print_header();
  for (const auto net : {core::Network::infiniband, core::Network::quadrics,
                         core::Network::myrinet}) {
    core::ClusterConfig cc = net == core::Network::infiniband
                                 ? core::ib_cluster(2)
                             : net == core::Network::quadrics
                                 ? core::elan_cluster(2)
                                 : core::myrinet_cluster(2);
    const auto p = core::measure_loggp(cc);
    t.print_row({core::to_string(net), core::fmt(p.L_us), core::fmt(p.o_send_us),
                 core::fmt(p.o_recv_us), core::fmt(p.g_us),
                 core::fmt(p.G_ns_per_byte), core::fmt(p.half_rtt_us)});
  }
  std::printf("\nReading: o and g are where host-based MPI stacks lose; L "
              "reflects NIC processing + fabric hops; G is the PCI-X / link "
              "ceiling.\n");
  return 0;
}
