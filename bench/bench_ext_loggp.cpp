// Extension: LogGP parameters of the three modeled networks — the era's
// standard vocabulary for "why does this network help applications"
// (cf. the paper's reference [15], Martin et al.).
//
// Expected shape: Elan-4 lowest on every axis except G (both PCI-X-bound
// study networks converge there); InfiniBand's g (per-message gap) is its
// weak spot — the offloaded NIC sustains several times the message rate;
// Myrinet's G is ~4x the others (2 Gb/s links).
//
// Thin wrapper over the ext_loggp scenario group (see src/driver/).

#include "driver/sweep_main.hpp"
#include "scenarios/scenarios.hpp"

int main(int argc, char** argv) {
  icsim::driver::Registry reg;
  icsim::bench::register_ext_loggp(reg);
  return icsim::driver::sweep_main(reg, argc, argv);
}
