// Ablation: MVAPICH eager threshold (DESIGN.md section 6, item 3).
//
// Section 4.1 of the paper: the latency jump between 1 kB and 2 kB is the
// eager->rendezvous switch, and moving it is a trade against pinned
// memory, because every peer gets a dedicated RDMA ring whose slot size
// must hold an eager message — "the buffer space ... grows with the number
// of processes and with the maximum size of a short message."  This bench
// sweeps the threshold and reports both the latency curve and the pinned
// ring memory a 64-rank job would dedicate per process.

#include <cstdio>

#include "core/cluster.hpp"
#include "core/report.hpp"
#include "microbench/pingpong.hpp"

int main() {
  using namespace icsim;

  const std::size_t thresholds[] = {512, 1024, 4096, 16384};
  microbench::PingPongOptions opt;
  opt.sizes = {256, 512, 1024, 2048, 4096, 8192, 16384, 32768};
  opt.repetitions = 40;
  opt.warmup = 5;

  std::printf("Ablation: eager threshold vs latency and pinned ring memory "
              "(InfiniBand)\n\n");
  std::vector<std::vector<microbench::PingPongPoint>> curves;
  for (const std::size_t th : thresholds) {
    core::ClusterConfig cc = core::ib_cluster(2);
    cc.mvapich.eager_threshold = th;
    cc.mvapich.vbuf_bytes = static_cast<std::uint32_t>(th) + 64;
    curves.push_back(microbench::run_pingpong(cc, opt));
  }

  core::Table t({"bytes", "eager512 us", "eager1K us", "eager4K us",
                 "eager16K us"});
  t.print_header();
  for (std::size_t i = 0; i < opt.sizes.size(); ++i) {
    t.print_row({core::fmt_int(static_cast<long>(opt.sizes[i])),
                 core::fmt(curves[0][i].latency_us),
                 core::fmt(curves[1][i].latency_us),
                 core::fmt(curves[2][i].latency_us),
                 core::fmt(curves[3][i].latency_us)});
  }

  std::printf("\npinned eager-ring memory per process in a 64-rank job:\n");
  for (const std::size_t th : thresholds) {
    const double mb = static_cast<double>(th + 64) * 32 /*slots*/ * 2 * 63 / 1e6;
    std::printf("  threshold %6zu B -> %6.1f MB\n", th, mb);
  }
  std::printf("(the Section 4.1 trade-off: a higher threshold helps "
              "mid-size latency but pins memory linear in job size)\n");
  return 0;
}
