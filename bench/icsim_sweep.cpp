// icsim_sweep: every figure and extension study of the reproduction in
// one binary, run through the parallel sweep driver.
//
//   icsim_sweep --list                 # what can run
//   icsim_sweep -j8                    # everything, 8 workers
//   icsim_sweep -j4 fig1_latency fig4_sweep3d --json out.json
//
// Output (stdout, --json, --csv) is byte-identical for any -j value: each
// sweep point is a self-contained simulation and aggregation happens in
// registration order after all points finish (see src/driver/).

#include "driver/sweep_main.hpp"
#include "scenarios/scenarios.hpp"

int main(int argc, char** argv) {
  icsim::driver::Registry reg;
  icsim::bench::register_all(reg);
  return icsim::driver::sweep_main(reg, argc, argv);
}
