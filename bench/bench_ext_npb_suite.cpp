// Extension: a broader NPB slice (the paper's future work asks for "a
// greater breadth of applications").  Four kernels spanning the
// communication spectrum, both networks, 16 processes:
//
//   EP — embarrassingly parallel: one allreduce; both networks ~ideal.
//   MG — multigrid: mixed message sizes (big fine-level faces, tiny
//        coarse-level ones).
//   IS — integer sort: bulk alltoallv, bandwidth-bound; InfiniBand's fat
//        links close most of the gap here.
//   CG — conjugate gradient: many mid-size latency-sensitive exchanges;
//        Quadrics' best case (the paper's Figure 6).
//
// The interesting output is the Elan:IB time ratio per kernel.

#include <cstdio>
#include <cstdlib>

#include "apps/mg/mg.hpp"
#include "apps/npb/cg.hpp"
#include "apps/npb/ep.hpp"
#include "apps/npb/ft.hpp"
#include "apps/npb/is.hpp"
#include "core/cluster.hpp"
#include "core/report.hpp"

namespace {

using icsim::core::Network;

template <typename Fn>
double run_seconds(Network net, int nodes, Fn&& fn) {
  using namespace icsim;
  core::ClusterConfig cc = net == Network::infiniband
                               ? core::ib_cluster(nodes, 1)
                               : core::elan_cluster(nodes, 1);
  core::Cluster cluster(cc);
  double seconds = 0.0;
  cluster.run([&](mpi::Mpi& mpi) {
    const double s = fn(mpi);
    if (mpi.rank() == 0) seconds = s;
  });
  return seconds;
}

}  // namespace

int main() {
  using namespace icsim;
  const bool fast = std::getenv("ICSIM_FAST") != nullptr;
  const int nodes = 16;

  apps::npb::EpConfig ep;
  ep.cls = apps::npb::ep_class_S();
  apps::npb::IsConfig is;
  is.cls = fast ? apps::npb::is_class_S() : apps::npb::is_class_W();
  apps::npb::CgConfig cg;
  cg.cls = fast ? apps::npb::class_S() : apps::npb::class_W();
  apps::mg::MgConfig mg;
  mg.n = fast ? 32 : 64;
  mg.vcycles = 4;
  apps::npb::FtConfig ft;
  ft.cls = fast ? apps::npb::FtClass{"T", 32, 32, 32, 3} : apps::npb::ft_class_S();

  struct Row {
    const char* name;
    double ib, el;
  };
  std::vector<Row> rows;

  rows.push_back({"EP (class S)",
                  run_seconds(Network::infiniband, nodes,
                              [&](mpi::Mpi& m) { return apps::npb::run_ep(m, ep).seconds; }),
                  run_seconds(Network::quadrics, nodes,
                              [&](mpi::Mpi& m) { return apps::npb::run_ep(m, ep).seconds; })});
  rows.push_back({"MG (proxy)",
                  run_seconds(Network::infiniband, nodes,
                              [&](mpi::Mpi& m) { return apps::mg::run_mg(m, mg).seconds; }),
                  run_seconds(Network::quadrics, nodes,
                              [&](mpi::Mpi& m) { return apps::mg::run_mg(m, mg).seconds; })});
  rows.push_back({"FT",
                  run_seconds(Network::infiniband, nodes,
                              [&](mpi::Mpi& m) { return apps::npb::run_ft(m, ft).seconds; }),
                  run_seconds(Network::quadrics, nodes,
                              [&](mpi::Mpi& m) { return apps::npb::run_ft(m, ft).seconds; })});
  rows.push_back({"IS",
                  run_seconds(Network::infiniband, nodes,
                              [&](mpi::Mpi& m) { return apps::npb::run_is(m, is).seconds; }),
                  run_seconds(Network::quadrics, nodes,
                              [&](mpi::Mpi& m) { return apps::npb::run_is(m, is).seconds; })});
  rows.push_back({"CG",
                  run_seconds(Network::infiniband, nodes,
                              [&](mpi::Mpi& m) { return apps::npb::run_cg(m, cg).seconds; }),
                  run_seconds(Network::quadrics, nodes,
                              [&](mpi::Mpi& m) { return apps::npb::run_cg(m, cg).seconds; })});

  std::printf("Extension: NPB slice at %d processes, 1 PPN\n\n", nodes);
  core::Table t({"kernel", "IB s", "Elan-4 s", "IB/Elan"});
  t.print_header();
  for (const auto& r : rows) {
    t.print_row({r.name, core::fmt(r.ib, 4), core::fmt(r.el, 4),
                 core::fmt(r.ib / r.el)});
  }
  std::printf("\nexpected spectrum: EP ~1.0 (no communication), IS close "
              "(bandwidth-bound), MG in between, CG largest (latency/"
              "message-rate-bound) — the network only matters as much as "
              "the communication pattern lets it.\n");
  return 0;
}
