// Extension: a broader NPB slice (the paper's future work asks for "a
// greater breadth of applications").  Five kernels spanning the
// communication spectrum, both networks, 16 processes:
//
//   EP — embarrassingly parallel: one allreduce; both networks ~ideal.
//   MG — multigrid: mixed message sizes (big fine-level faces, tiny
//        coarse-level ones).
//   FT — 3-D FFT: transposes dominated by alltoall.
//   IS — integer sort: bulk alltoallv, bandwidth-bound; InfiniBand's fat
//        links close most of the gap here.
//   CG — conjugate gradient: many mid-size latency-sensitive exchanges;
//        Quadrics' best case (the paper's Figure 6).
//
// The interesting output is the Elan:IB time ratio per kernel.
//
// Thin wrapper over the ext_npb_suite scenario group (see src/driver/).

#include "driver/sweep_main.hpp"
#include "scenarios/scenarios.hpp"

int main(int argc, char** argv) {
  icsim::driver::Registry reg;
  icsim::bench::register_ext_npb_suite(reg);
  return icsim::driver::sweep_main(reg, argc, argv);
}
