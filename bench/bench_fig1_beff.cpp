// Figure 1(d): Effective Bandwidth (b_eff) per process vs number of
// processes, 1 PPN.
//
// Paper shape targets: an ideal machine would be flat; Elan-4 sits clearly
// above InfiniBand at every size because b_eff's logarithmic average is
// dominated by sub-kilobyte messages, where Elan's latency/message-rate
// advantage is largest; both decay mildly as the fabric is loaded.

#include <cstdio>

#include "core/report.hpp"
#include "microbench/beff.hpp"

int main() {
  using namespace icsim;

  microbench::BeffOptions opt;
  opt.lmax = 1 << 20;
  opt.repetitions = 2;
  opt.random_patterns = 2;

  std::printf("Figure 1(d): b_eff per process (MB/s), 1 PPN\n\n");
  core::Table t({"nodes", "IB b_eff/p", "Elan b_eff/p", "Elan/IB"});
  t.print_header();
  for (const int nodes : {2, 4, 8, 16, 24, 32}) {
    const auto ib = microbench::run_beff(core::ib_cluster(nodes), opt);
    const auto el = microbench::run_beff(core::elan_cluster(nodes), opt);
    t.print_row({core::fmt_int(nodes), core::fmt(ib.beff_per_process_mbs, 1),
                 core::fmt(el.beff_per_process_mbs, 1),
                 core::fmt(el.beff_per_process_mbs / ib.beff_per_process_mbs)});
  }
  std::printf("\npaper anchor: flat-ish trend, Elan-4 above InfiniBand; "
              "b_eff is dominated by short-message bandwidth\n");
  return 0;
}
