// Figure 1(d): Effective Bandwidth (b_eff) per process vs number of
// processes, 1 PPN.
//
// Paper shape targets: an ideal machine would be flat; Elan-4 sits clearly
// above InfiniBand at every size because b_eff's logarithmic average is
// dominated by sub-kilobyte messages, where Elan's latency/message-rate
// advantage is largest; both decay mildly as the fabric is loaded.
//
// Thin wrapper over the fig1_beff scenario group (see src/driver/).

#include "driver/sweep_main.hpp"
#include "scenarios/scenarios.hpp"

int main(int argc, char** argv) {
  icsim::driver::Registry reg;
  icsim::bench::register_fig1_beff(reg);
  return icsim::driver::sweep_main(reg, argc, argv);
}
