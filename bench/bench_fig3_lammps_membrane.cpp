// Figure 3: LAMMPS membrane scaled-speedup study — (a) loop time,
// (b) scaling efficiency.
//
// Paper shape targets: the Elan-4 1 PPN and 2 PPN curves sit almost on top
// of each other and stay nearly flat from 8 to 32 nodes (93% / 91%
// efficiency at 32 nodes) — the workload's nonblocking halo exchange
// overlaps with the interior force computation, and the NIC-resident
// protocol lets that overlap actually happen.  InfiniBand, whose MPI makes
// progress only inside library calls, shows a much larger 1 PPN / 2 PPN
// gap and tails off (84% / 77% at 32 nodes).
//
// Thin wrapper over the fig3_membrane scenario group (see src/driver/).

#include "driver/sweep_main.hpp"
#include "scenarios/scenarios.hpp"

int main(int argc, char** argv) {
  icsim::driver::Registry reg;
  icsim::bench::register_fig3_membrane(reg);
  return icsim::driver::sweep_main(reg, argc, argv);
}
