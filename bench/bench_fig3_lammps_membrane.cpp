// Figure 3: LAMMPS membrane scaled-speedup study — (a) loop time,
// (b) scaling efficiency.
//
// Paper shape targets: the Elan-4 1 PPN and 2 PPN curves sit almost on top
// of each other and stay nearly flat from 8 to 32 nodes (93% / 91%
// efficiency at 32 nodes) — the workload's nonblocking halo exchange
// overlaps with the interior force computation, and the NIC-resident
// protocol lets that overlap actually happen.  InfiniBand, whose MPI makes
// progress only inside library calls, shows a much larger 1 PPN / 2 PPN
// gap and tails off (84% / 77% at 32 nodes).

#include <cstdio>
#include <cstdlib>

#include "apps/lammps/md.hpp"
#include "core/cluster.hpp"
#include "core/report.hpp"

namespace {

double run_case(icsim::core::Network net, int nodes, int ppn,
                const icsim::apps::md::MdConfig& mc) {
  using namespace icsim;
  core::ClusterConfig cc = net == core::Network::infiniband
                               ? core::ib_cluster(nodes, ppn)
                               : core::elan_cluster(nodes, ppn);
  core::Cluster cluster(cc);
  double seconds = 0.0;
  cluster.run([&](mpi::Mpi& mpi) {
    const auto r = apps::md::run_md(mpi, mc);
    if (mpi.rank() == 0) seconds = r.loop_seconds;
  });
  return seconds;
}

}  // namespace

int main() {
  using namespace icsim;

  apps::md::MdConfig mc = apps::md::membrane_config();
  mc.cells_x = mc.cells_y = mc.cells_z = 8;
  mc.steps = 30;
  if (std::getenv("ICSIM_FAST") != nullptr) {
    mc.cells_x = mc.cells_y = mc.cells_z = 5;
    mc.steps = 12;
  }

  const int node_counts[] = {1, 2, 4, 8, 16, 32};
  std::printf(
      "Figure 3: LAMMPS membrane scaled study, %d cells/rank, %d steps\n\n",
      mc.cells_x, mc.steps);
  core::Table t({"nodes", "IB 1ppn s", "IB 2ppn s", "El 1ppn s", "El 2ppn s",
                 "IB1 eff%", "IB2 eff%", "El1 eff%", "El2 eff%"});
  t.print_header();

  double base[4] = {0, 0, 0, 0};
  double eff32[4] = {0, 0, 0, 0};
  for (const int nodes : node_counts) {
    const double v[4] = {
        run_case(core::Network::infiniband, nodes, 1, mc),
        run_case(core::Network::infiniband, nodes, 2, mc),
        run_case(core::Network::quadrics, nodes, 1, mc),
        run_case(core::Network::quadrics, nodes, 2, mc),
    };
    if (nodes == 1) {
      for (int i = 0; i < 4; ++i) base[i] = v[i];
    }
    double eff[4];
    for (int i = 0; i < 4; ++i) {
      eff[i] = 100.0 * core::scaled_efficiency(base[i], v[i]);
    }
    if (nodes == 32) {
      for (int i = 0; i < 4; ++i) eff32[i] = eff[i];
    }
    t.print_row({core::fmt_int(nodes), core::fmt(v[0], 4), core::fmt(v[1], 4),
                 core::fmt(v[2], 4), core::fmt(v[3], 4), core::fmt(eff[0], 1),
                 core::fmt(eff[1], 1), core::fmt(eff[2], 1),
                 core::fmt(eff[3], 1)});
  }
  std::printf("\n32-node efficiency, measured vs paper: "
              "Elan %0.0f%%/%0.0f%% (paper 93/91), IB %0.0f%%/%0.0f%% "
              "(paper 84/77)\n",
              eff32[2], eff32[3], eff32[0], eff32[1]);
  return 0;
}
