// Figure 5: Sweep3D with various input sizes on InfiniBand, scaling
// efficiency normalized at the 4-process point.
//
// The paper ran extra input sets on InfiniBand (after the Elan-4 partition
// was dismantled) to decide whether the 25-node jump of Figure 4 was real;
// the additional inputs continued the existing trend, so the 150^3 point
// was declared an input anomaly.  Shape target here: with 4-process
// normalization the efficiency curves for different grid sizes lie close
// together and decay smoothly — no jump.
//
// Thin wrapper over the fig5_sweep3d_inputs scenario group (see
// src/driver/).

#include "driver/sweep_main.hpp"
#include "scenarios/scenarios.hpp"

int main(int argc, char** argv) {
  icsim::driver::Registry reg;
  icsim::bench::register_fig5_sweep3d_inputs(reg);
  return icsim::driver::sweep_main(reg, argc, argv);
}
