// Figure 5: Sweep3D with various input sizes on InfiniBand, scaling
// efficiency normalized at the 4-process point.
//
// The paper ran extra input sets on InfiniBand (after the Elan-4 partition
// was dismantled) to decide whether the 25-node jump of Figure 4 was real;
// the additional inputs continued the existing trend, so the 150^3 point
// was declared an input anomaly.  Shape target here: with 4-process
// normalization the efficiency curves for different grid sizes lie close
// together and decay smoothly — no jump.

#include <cstdio>
#include <cstdlib>
#include <vector>

#include "apps/sweep3d/sweep.hpp"
#include "core/cluster.hpp"
#include "core/report.hpp"

namespace {

double run_case(int nodes, const icsim::apps::sweep::SweepConfig& sc) {
  using namespace icsim;
  core::Cluster cluster(core::ib_cluster(nodes, 1));
  double seconds = 0.0;
  cluster.run([&](mpi::Mpi& mpi) {
    const auto r = apps::sweep::run_sweep3d(mpi, sc);
    if (mpi.rank() == 0) seconds = r.solve_seconds;
  });
  return seconds;
}

}  // namespace

int main() {
  using namespace icsim;

  std::vector<int> grids = {100, 150, 200};
  if (std::getenv("ICSIM_FAST") != nullptr) grids = {50, 80};

  const int node_counts[] = {4, 9, 16, 25, 32};
  std::printf("Figure 5: Sweep3D on InfiniBand, several inputs, efficiency "
              "normalized at 4 processes\n\n");
  std::vector<std::string> headers = {"nodes"};
  for (const int g : grids) headers.push_back(std::to_string(g) + "^3 eff%");
  core::Table t(headers);
  t.print_header();

  std::vector<double> base(grids.size(), 0.0);
  for (const int nodes : node_counts) {
    std::vector<std::string> row = {core::fmt_int(nodes)};
    for (std::size_t g = 0; g < grids.size(); ++g) {
      apps::sweep::SweepConfig sc;
      sc.nx = sc.ny = sc.nz = grids[g];
      sc.iterations = 1;
      const double s = run_case(nodes, sc);
      if (nodes == 4) base[g] = s;
      row.push_back(core::fmt(
          100.0 * core::fixed_efficiency(base[g], 4, s, nodes), 1));
    }
    t.print_row(row);
  }
  std::printf("\npaper anchor: all inputs continue the same smooth trend "
              "(the 150^3 25-node jump was an input anomaly)\n");
  return 0;
}
