// Extension: collective-operation latency vs node count — the standard
// companion table to Figure 1 in interconnect comparisons of the era.
// All collectives here are the MPICH-style point-to-point algorithms both
// real MPIs used, so the network's latency/message-rate advantages
// compound logarithmically (or linearly, for alltoall) with scale.
//
// Thin wrapper over the ext_collectives scenario group (see src/driver/).

#include "driver/sweep_main.hpp"
#include "scenarios/scenarios.hpp"

int main(int argc, char** argv) {
  icsim::driver::Registry reg;
  icsim::bench::register_ext_collectives(reg);
  return icsim::driver::sweep_main(reg, argc, argv);
}
