// Extension: collective-operation latency vs node count — the standard
// companion table to Figure 1 in interconnect comparisons of the era.
// All collectives here are the MPICH-style point-to-point algorithms both
// real MPIs used, so the network's latency/message-rate advantages
// compound logarithmically (or linearly, for alltoall) with scale.

#include <cstdio>
#include <vector>

#include "core/cluster.hpp"
#include "core/report.hpp"

namespace {

using icsim::core::Network;

struct CollTimes {
  double barrier_us, allreduce_us, bcast_us, alltoall_us;
};

CollTimes run_case(Network net, int nodes) {
  using namespace icsim;
  core::ClusterConfig cc = net == Network::infiniband
                               ? core::ib_cluster(nodes, 1)
                               : core::elan_cluster(nodes, 1);
  core::Cluster cluster(cc);
  CollTimes result{};
  cluster.run([&](mpi::Mpi& mpi) {
    constexpr int kReps = 30;
    const int n = mpi.size();
    std::vector<double> vec(128);
    std::vector<double> a2a_in(static_cast<std::size_t>(n) * 16);
    std::vector<double> a2a_out(static_cast<std::size_t>(n) * 16);

    auto timed = [&](auto&& op) {
      mpi.barrier();
      const double t0 = mpi.wtime();
      for (int i = 0; i < kReps; ++i) op();
      // A root can run ahead of the receivers (its sends complete
      // locally); the honest cost is the slowest participant's.
      const double mine = (mpi.wtime() - t0) / kReps * 1e6;
      return mpi.allreduce(mine, mpi::ReduceOp::max);
    };

    const double tb = timed([&] { mpi.barrier(); });
    const double tr = timed([&] { (void)mpi.allreduce(1.0, mpi::ReduceOp::sum); });
    const double tc = timed([&] { mpi.bcast(vec.data(), vec.size(), 0); });
    const double ta = timed([&] { mpi.alltoall(a2a_in.data(), 16, a2a_out.data()); });
    if (mpi.rank() == 0) result = {tb, tr, tc, ta};
  });
  return result;
}

}  // namespace

int main() {
  using namespace icsim;
  std::printf("Extension: collective latency (us), 1 PPN "
              "(barrier | allreduce 8B | bcast 1KB | alltoall 128B/peer)\n\n");
  core::Table t({"nodes", "IB barr", "El barr", "IB ared", "El ared",
                 "IB bcast", "El bcast", "IB a2a", "El a2a"});
  t.print_header();
  for (const int nodes : {2, 4, 8, 16, 32}) {
    const auto ib = run_case(Network::infiniband, nodes);
    const auto el = run_case(Network::quadrics, nodes);
    t.print_row({core::fmt_int(nodes), core::fmt(ib.barrier_us, 1),
                 core::fmt(el.barrier_us, 1), core::fmt(ib.allreduce_us, 1),
                 core::fmt(el.allreduce_us, 1), core::fmt(ib.bcast_us, 1),
                 core::fmt(el.bcast_us, 1), core::fmt(ib.alltoall_us, 1),
                 core::fmt(el.alltoall_us, 1)});
  }
  std::printf("\npaper-shape expectation: every column pair keeps roughly "
              "the Figure 1(a) latency ratio, growing with log(nodes)\n");
  return 0;
}
