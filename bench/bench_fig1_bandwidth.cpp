// Figure 1(b) and 1(c): ping-pong + streaming bandwidth vs message size,
// and the Elan-4 : InfiniBand bandwidth ratio.
//
// Paper shape targets: Elan-4 ahead at every size with both methods; at
// 8 KB ping-pong, Elan-4 552 MB/s vs InfiniBand 249 MB/s (about 2x); the
// streaming ratio exceeds 5x at small sizes; both networks asymptote to
// similar peaks (PCI-X bound); InfiniBand collapses at 4 MB (registration
// thrash in MVAPICH 0.9.2, fixed in later releases).

#include <cstdio>

#include "core/report.hpp"
#include "microbench/pingpong.hpp"

int main() {
  using namespace icsim;

  microbench::PingPongOptions ppopt;
  ppopt.sizes = microbench::pallas_sizes(4 << 20);
  ppopt.repetitions = 50;
  ppopt.warmup = 5;

  microbench::StreamingOptions stopt;
  stopt.sizes = ppopt.sizes;
  stopt.window = 64;
  stopt.batches = 10;
  stopt.warmup_batches = 2;

  std::printf("Figure 1(b,c): bandwidth (MB/s), 2 nodes, 1 PPN\n\n");
  const auto ib_pp = microbench::run_pingpong(core::ib_cluster(2), ppopt);
  const auto el_pp = microbench::run_pingpong(core::elan_cluster(2), ppopt);
  const auto ib_st = microbench::run_streaming(core::ib_cluster(2), stopt);
  const auto el_st = microbench::run_streaming(core::elan_cluster(2), stopt);

  core::Table t({"bytes", "IB pp", "Elan pp", "IB strm", "Elan strm",
                 "ratio pp", "ratio strm"});
  t.print_header();
  double max_stream_ratio = 0.0;
  for (std::size_t i = 1; i < ib_pp.size(); ++i) {  // skip 0 bytes
    const double rpp = el_pp[i].bandwidth_mbs / ib_pp[i].bandwidth_mbs;
    const double rst = el_st[i].bandwidth_mbs / ib_st[i].bandwidth_mbs;
    if (ib_pp[i].bytes <= 1024 && rst > max_stream_ratio) max_stream_ratio = rst;
    t.print_row({core::fmt_int(static_cast<long>(ib_pp[i].bytes)),
                 core::fmt(ib_pp[i].bandwidth_mbs, 1),
                 core::fmt(el_pp[i].bandwidth_mbs, 1),
                 core::fmt(ib_st[i].bandwidth_mbs, 1),
                 core::fmt(el_st[i].bandwidth_mbs, 1), core::fmt(rpp),
                 core::fmt(rst)});
  }

  // 8 KB anchor row (paper: 552 vs 249 MB/s).
  for (std::size_t i = 0; i < ib_pp.size(); ++i) {
    if (ib_pp[i].bytes == 8192) {
      std::printf("\n8 KB anchor: Elan-4 %.0f MB/s vs IB %.0f MB/s "
                  "(paper: 552 vs 249)\n",
                  el_pp[i].bandwidth_mbs, ib_pp[i].bandwidth_mbs);
    }
  }
  std::printf("max streaming ratio at <=1KB: %.1fx (paper: >5x)\n",
              max_stream_ratio);
  return 0;
}
