// Figure 1(b) and 1(c): ping-pong + streaming bandwidth vs message size,
// and the Elan-4 : InfiniBand bandwidth ratio.
//
// Paper shape targets: Elan-4 ahead at every size with both methods; at
// 8 KB ping-pong, Elan-4 552 MB/s vs InfiniBand 249 MB/s (about 2x); the
// streaming ratio exceeds 5x at small sizes; both networks asymptote to
// similar peaks (PCI-X bound); InfiniBand collapses at 4 MB (registration
// thrash in MVAPICH 0.9.2, fixed in later releases).
//
// Thin wrapper over the fig1_bandwidth scenario group (see src/driver/).

#include "driver/sweep_main.hpp"
#include "scenarios/scenarios.hpp"

int main(int argc, char** argv) {
  icsim::driver::Registry reg;
  icsim::bench::register_fig1_bandwidth(reg);
  return icsim::driver::sweep_main(reg, argc, argv);
}
