// Ablation: offloaded matching on a slow NIC processor (DESIGN.md
// section 6, item 2).
//
// Section 3.3.4: offload removes host overhead but "can also force the
// traversal of long queues on a slow processor on the network interface"
// (the paper cites Underwood & Brightwell's queue-depth study).  We sweep
// the Elan NIC's per-entry match cost while holding a deep posted-receive
// queue, and watch small-message latency degrade — the flip side of
// offload that host-based matching does not have.

#include <cstdio>
#include <vector>

#include "core/cluster.hpp"
#include "core/report.hpp"

namespace {

/// Small-message latency with `depth` posted receives ahead of the one
/// that matches (forcing the matcher to scan past them).
double latency_with_queue_depth(const icsim::core::ClusterConfig& cc,
                                int depth) {
  using namespace icsim;
  core::Cluster cluster(cc);
  double result = 0.0;
  cluster.run([&](mpi::Mpi& mpi) {
    if (mpi.rank() > 1) return;
    const int peer = 1 - mpi.rank();
    char byte = 0;
    std::vector<mpi::Request> decoys;
    std::vector<char> sink(1);
    // Receives that never match (tag 999 from a silent source).
    for (int i = 0; i < depth; ++i) {
      decoys.push_back(mpi.irecv(sink.data(), 1, peer, 999));
    }
    constexpr int kReps = 50;
    const double t0 = mpi.wtime();
    for (int i = 0; i < kReps; ++i) {
      if (mpi.rank() == 0) {
        mpi.send(&byte, 1, peer, 1);
        mpi.recv(&byte, 1, peer, 1);
      } else {
        mpi.recv(&byte, 1, peer, 1);
        mpi.send(&byte, 1, peer, 1);
      }
    }
    if (mpi.rank() == 0) {
      result = (mpi.wtime() - t0) / (2.0 * kReps) * 1e6;
    }
    // Unblock the decoys so the run can end.
    for (int i = 0; i < depth; ++i) mpi.send(&byte, 1, peer, 999);
    for (auto& d : decoys) mpi.wait(d);
  });
  return result;
}

}  // namespace

int main() {
  using namespace icsim;

  std::printf("Ablation: NIC match cost x posted-queue depth "
              "(1-byte ping-pong latency, us)\n\n");
  const double entry_ns[] = {0.0, 40.0, 200.0, 1000.0};
  core::Table t({"queue depth", "elan 0ns", "elan 40ns", "elan 200ns",
                 "elan 1us", "IB host"});
  t.print_header();
  for (const int depth : {0, 16, 64, 256}) {
    std::vector<std::string> row = {core::fmt_int(depth)};
    for (const double ns : entry_ns) {
      core::ClusterConfig cc = core::elan_cluster(2);
      cc.elan.match_per_entry = sim::Time::ns(ns);
      row.push_back(core::fmt(latency_with_queue_depth(cc, depth), 2));
    }
    row.push_back(core::fmt(latency_with_queue_depth(core::ib_cluster(2), depth), 2));
    t.print_row(row);
  }
  std::printf("\nReading: with deep queues and a slow NIC matcher, offload "
              "latency degrades toward (and past) host-based matching — "
              "Section 3.3.4's caveat.\n");
  return 0;
}
