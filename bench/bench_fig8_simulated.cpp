// Figure 8, simulated: barrier and 8-byte allreduce at 1024-8192 nodes on
// both fabrics, executed on the conservatively synchronized parallel
// engine (src/par/) instead of trend-fitting the 8->32-node application
// anchors.
//
// The intra-run thread count is host policy (ClusterConfig::
// intra_run_threads, overridable via ICSIM_PAR_THREADS): the reported
// event digests are byte-identical for any value — CI runs this binary at
// 1/2/4/8 threads and diffs the JSON.
//
// Thin wrapper over the fig8_simulated scenario group.

#include "driver/sweep_main.hpp"
#include "scenarios/scenarios.hpp"

int main(int argc, char** argv) {
  icsim::driver::Registry reg;
  icsim::bench::register_fig8_simulated(reg);
  return icsim::driver::sweep_main(reg, argc, argv);
}
