// Extension: fault injection & reliability comparison (no paper figure —
// the 2004 study ran on healthy fabrics; this asks how each technology's
// recovery machinery behaves when the fabric is not).
//
// Part 1 (group ext_faults_ber) sweeps a per-link bit-error rate over
// ping-pong and streaming on two nodes.  Both networks must complete every
// transfer — InfiniBand by software-visible RC timeout/retransmission (the
// requester re-reads the chunk over PCI-X), Elan-4 by hardware link-level
// retry out of the link buffer — with bounded slowdown at BER <= 1e-6.
//
// Part 2 (group ext_faults_spine) saturates every up-cable of one leaf
// switch with full-rate flows to distinct subtrees, then fails one of
// those cables: once for the whole run, once mid-run (down at ~30% of the
// clean completion time, repaired at ~60%).  Chunks reroute over the
// surviving climbs (no lost messages, no deadlock).  On the 4-ary Elan
// tree the displaced flow must share a busy cable, so the bandwidth across
// the leaf's cut measurably drops; the 12-port InfiniBand Clos has idle
// parallel cables for this flow count and absorbs the failure — redundancy
// the counters make visible either way.
//
// Thin wrapper over both fault scenario groups (see src/driver/).

#include "driver/sweep_main.hpp"
#include "scenarios/scenarios.hpp"

int main(int argc, char** argv) {
  icsim::driver::Registry reg;
  icsim::bench::register_ext_faults(reg);
  return icsim::driver::sweep_main(reg, argc, argv);
}
