// Extension: fault injection & reliability comparison (no paper figure —
// the 2004 study ran on healthy fabrics; this asks how each technology's
// recovery machinery behaves when the fabric is not).
//
// Part 1 sweeps a per-link bit-error rate over ping-pong and streaming on
// two nodes.  Both networks must complete every transfer — InfiniBand by
// software-visible RC timeout/retransmission (the requester re-reads the
// chunk over PCI-X), Elan-4 by hardware link-level retry out of the link
// buffer — with bounded slowdown at BER <= 1e-6.
//
// Part 2 saturates every up-cable of one leaf switch with full-rate flows
// to distinct subtrees, then fails one of those cables: once for the whole
// run, once mid-run (down at ~30% of the clean completion time, repaired at
// ~60%).  Chunks reroute over the surviving climbs (no lost messages, no
// deadlock).  On the 4-ary Elan tree the displaced flow must share a busy
// cable, so the bandwidth across the leaf's cut measurably drops; the
// 12-port InfiniBand Clos has idle parallel cables for this flow count and
// absorbs the failure — redundancy the counters make visible either way.

#include <cstdio>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/cluster.hpp"
#include "core/report.hpp"
#include "fault/plan.hpp"
#include "microbench/pingpong.hpp"

namespace {

using namespace icsim;

struct FaultRun {
  double elapsed_us = 0.0;
  double bandwidth_mbs = 0.0;  // aggregate payload bandwidth
  core::Cluster::RunStats stats;
};

constexpr std::size_t kPingPongBytes = 4096;
constexpr std::size_t kStreamBytes = 65536;

// Two-node ping-pong + streaming window under one fault plan; counters come
// from the same cluster so retries line up with the timings.
FaultRun run_two_node(core::Network net, const fault::FaultPlan& plan) {
  core::ClusterConfig cc = net == core::Network::infiniband
                               ? core::ib_cluster(2)
                               : core::elan_cluster(2);
  cc.faults = plan;
  core::Cluster cluster(cc);

  constexpr int kReps = 200;
  constexpr int kWindow = 16;
  constexpr int kBatches = 10;
  FaultRun out;
  cluster.run([&](mpi::Mpi& mpi) {
    const int peer = 1 - mpi.rank();
    std::vector<std::byte> sbuf(kStreamBytes), rbuf(kStreamBytes);
    for (int i = 0; i < kReps; ++i) {
      if (mpi.rank() == 0) {
        mpi.send(sbuf.data(), kPingPongBytes, peer, i);
        mpi.recv(rbuf.data(), rbuf.size(), peer, kReps + i);
      } else {
        mpi.recv(rbuf.data(), rbuf.size(), peer, i);
        mpi.send(sbuf.data(), kPingPongBytes, peer, kReps + i);
      }
    }
    const double t0 = mpi.wtime();
    std::vector<mpi::Request> reqs(kWindow);
    for (int b = 0; b < kBatches; ++b) {
      for (int w = 0; w < kWindow; ++w) {
        const int tag = 2 * kReps + b * kWindow + w;
        reqs[static_cast<std::size_t>(w)] =
            mpi.rank() == 0
                ? mpi.isend(sbuf.data(), kStreamBytes, peer, tag)
                : mpi.irecv(rbuf.data(), rbuf.size(), peer, tag);
      }
      mpi.waitall(reqs);
    }
    if (mpi.rank() == 0) {
      const double elapsed = mpi.wtime() - t0;
      out.bandwidth_mbs = static_cast<double>(kBatches) * kWindow *
                          static_cast<double>(kStreamBytes) / elapsed / 1e6;
    }
  });
  out.elapsed_us = cluster.engine().now().to_us();
  out.stats = cluster.stats();
  return out;
}

// The sender -> receiver flows that saturate leaf 0's up-cables: every
// sender sits on leaf switch 0 and targets a subtree reached through a
// different up-cable (D-mod-k picks the climb from the destination's
// digits), so each flow monopolizes one cable of the leaf's cut.
struct FlowSet {
  int nodes = 0;
  std::vector<std::pair<int, int>> flows;
};

FlowSet saturating_flows(core::Network net) {
  if (net == core::Network::quadrics) {
    // 4-ary tree, leaves of 4: destinations with distinct digit-1 values
    // (16 has digit 0 -- only reachable with >16 nodes).  All 4 up-cables
    // of leaf 0 carry one full-rate flow.
    return {20, {{0, 16}, {1, 5}, {2, 10}, {3, 15}}};
  }
  // 12-port Clos, leaves of 12: far leaves start at 12, one flow per
  // distinct destination leaf.  Only 3 of the 12 up-cables are busy, which
  // is exactly the point: the reroute after a failure finds an idle one.
  return {48, {{0, 13}, {1, 25}, {2, 37}}};
}

FaultRun run_flows(core::Network net, const FlowSet& fs,
                   const fault::FaultPlan& plan) {
  constexpr int kMsgs = 64;
  constexpr int kWindow = 16;
  core::ClusterConfig cc = net == core::Network::infiniband
                               ? core::ib_cluster(fs.nodes)
                               : core::elan_cluster(fs.nodes);
  cc.faults = plan;
  core::Cluster cluster(cc);

  cluster.run([&](mpi::Mpi& mpi) {
    const int me = mpi.rank();
    int peer = -1;
    bool sender = false;
    for (const auto& [s, d] : fs.flows) {
      if (me == s) { sender = true; peer = d; }
      if (me == d) { peer = s; }
    }
    if (peer < 0) return;  // bystander rank
    std::vector<std::byte> buf(kStreamBytes);
    std::vector<mpi::Request> reqs(kWindow);
    for (int b = 0; b < kMsgs / kWindow; ++b) {
      for (int w = 0; w < kWindow; ++w) {
        const int tag = b * kWindow + w;
        reqs[static_cast<std::size_t>(w)] =
            sender ? mpi.isend(buf.data(), kStreamBytes, peer, tag)
                   : mpi.irecv(buf.data(), buf.size(), peer, tag);
      }
      mpi.waitall(reqs);
    }
  });

  FaultRun out;
  out.elapsed_us = cluster.engine().now().to_us();
  out.bandwidth_mbs = static_cast<double>(fs.flows.size()) * kMsgs *
                      static_cast<double>(kStreamBytes) /
                      (out.elapsed_us / 1e6) / 1e6;
  out.stats = cluster.stats();
  return out;
}

// The up-cable the second flow's default route climbs through (the cable
// the failure scenarios take down).
fault::LinkRef victim_cable(core::Network net, const FlowSet& fs) {
  core::ClusterConfig cc = net == core::Network::infiniband
                               ? core::ib_cluster(fs.nodes)
                               : core::elan_cluster(fs.nodes);
  core::Cluster cluster(cc);
  const auto& topo = cluster.fabric().topology();
  const auto& [src, dst] = fs.flows[1];
  for (const auto& h : topo.route(src, dst)) {
    if (h.kind == net::Hop::Kind::switch_to_switch &&
        h.to.level > h.from.level) {
      return fault::LinkRef::between(h.from, h.to);  // first climb cable
    }
  }
  throw std::logic_error("flow route never climbs");
}

std::string fmt_ber(double ber) {
  if (ber == 0.0) return "0";
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.0e", ber);
  return buf;
}

std::uint64_t retries_of(core::Network net, const core::Cluster::RunStats& s) {
  return net == core::Network::infiniband ? s.rc_retries : s.elan_link_retries;
}

void ber_sweep(core::Network net) {
  std::printf("\n%s: BER sweep, 2 nodes (ping-pong %zuB x200 + streaming "
              "%zuB x160)\n",
              core::to_string(net), kPingPongBytes, kStreamBytes);
  core::Table t({"BER", "run us", "slowdown", "stream MB/s", "corrupted",
                 "retries", "exhausted"});
  t.print_header();
  double clean_us = 0.0;
  for (const double ber : {0.0, 1e-8, 1e-7, 1e-6}) {
    fault::FaultPlan plan;
    plan.ber = ber;
    plan.seed = 20040914;  // any fixed seed: reruns reproduce exactly
    const FaultRun r = run_two_node(net, plan);
    if (ber == 0.0) clean_us = r.elapsed_us;
    const std::uint64_t exhausted = r.stats.rc_retry_exhausted +
                                    r.stats.elan_link_retry_exhausted +
                                    r.stats.watchdog_timeouts;
    t.print_row({fmt_ber(ber), core::fmt(r.elapsed_us),
                 core::fmt(r.elapsed_us / clean_us),
                 core::fmt(r.bandwidth_mbs),
                 core::fmt_int(static_cast<long>(r.stats.chunks_corrupted)),
                 core::fmt_int(static_cast<long>(retries_of(net, r.stats))),
                 core::fmt_int(static_cast<long>(exhausted))});
  }
}

void spine_failure(core::Network net) {
  const FlowSet fs = saturating_flows(net);
  const fault::LinkRef cable = victim_cable(net, fs);
  std::printf("\n%s: %zu full-rate flows across leaf 0's cut, %d nodes, "
              "failing cable %s\n",
              core::to_string(net), fs.flows.size(), fs.nodes,
              cable.to_string().c_str());

  const FaultRun clean = run_flows(net, fs, {});

  fault::FaultPlan whole;  // cable dead for the entire run
  whole.link_windows.push_back({cable, sim::Time::zero(), sim::Time::zero()});
  const FaultRun degraded = run_flows(net, fs, whole);

  fault::FaultPlan midrun;  // fails at ~30%, repaired at ~60% of clean time
  midrun.link_windows.push_back({cable,
                                 sim::Time::us(0.3 * clean.elapsed_us),
                                 sim::Time::us(0.6 * clean.elapsed_us)});
  const FaultRun transient = run_flows(net, fs, midrun);

  core::Table t({"scenario", "run us", "cut MB/s", "rerouted", "retries",
                 "lost"});
  t.print_header();
  const auto row = [&](const char* name, const FaultRun& r) {
    const std::uint64_t lost = r.stats.rc_retry_exhausted +
                               r.stats.elan_link_retry_exhausted +
                               r.stats.watchdog_timeouts;
    t.print_row({name, core::fmt(r.elapsed_us), core::fmt(r.bandwidth_mbs),
                 core::fmt_int(static_cast<long>(r.stats.chunks_rerouted)),
                 core::fmt_int(static_cast<long>(retries_of(net, r.stats))),
                 core::fmt_int(static_cast<long>(lost))});
  };
  row("clean", clean);
  row("cable down (whole run)", degraded);
  row("down 30%..60% mid-run", transient);
}

}  // namespace

int main() {
  std::printf("Extension: fault injection & reliability "
              "(set ICSIM_TRACE=faults.json for trace + metrics output)\n");
  for (const auto net : {core::Network::infiniband, core::Network::quadrics}) {
    ber_sweep(net);
  }
  for (const auto net : {core::Network::infiniband, core::Network::quadrics}) {
    spine_failure(net);
  }
  std::printf("\nanchors: both fabrics complete every transfer at BER<=1e-6 "
              "with bounded slowdown;\na failed up-cable reroutes "
              "(rerouted>0, lost=0); with every parallel cable busy the "
              "4-ary\nElan tree pays measurable cut bandwidth, while the "
              "12-port IB Clos absorbs it\n");
  return 0;
}
