// Figure 4: Sweep3D 150^3 fixed-size study — (a) grind time,
// (b) scaling efficiency (1 PPN; the paper found 2 PPN similar because the
// computation-to-communication ratio is high).
//
// Paper shape targets: superlinear speedup from 1 to 4 processors (the
// unscaled problem starts fitting in cache); Elan-4 holds a significant
// efficiency advantage at 9 and 16 nodes.  (The paper's 25-node InfiniBand
// point jumped anomalously; the authors re-ran it and concluded that the
// input was an anomaly — we do not reproduce an anomaly.)
//
// Thin wrapper over the fig4_sweep3d scenario group (see src/driver/).

#include "driver/sweep_main.hpp"
#include "scenarios/scenarios.hpp"

int main(int argc, char** argv) {
  icsim::driver::Registry reg;
  icsim::bench::register_fig4_sweep3d(reg);
  return icsim::driver::sweep_main(reg, argc, argv);
}
