// Figure 4: Sweep3D 150^3 fixed-size study — (a) grind time,
// (b) scaling efficiency (1 PPN; the paper found 2 PPN similar because the
// computation-to-communication ratio is high).
//
// Paper shape targets: superlinear speedup from 1 to 4 processors (the
// unscaled problem starts fitting in cache); Elan-4 holds a significant
// efficiency advantage at 9 and 16 nodes.  (The paper's 25-node InfiniBand
// point jumped anomalously; the authors re-ran it and concluded that the
// input was an anomaly — we do not reproduce an anomaly.)

#include <cstdio>
#include <cstdlib>

#include "apps/sweep3d/sweep.hpp"
#include "core/cluster.hpp"
#include "core/report.hpp"

namespace {

icsim::apps::sweep::SweepResult run_case(icsim::core::Network net, int nodes,
                                         const icsim::apps::sweep::SweepConfig& sc,
                                         int ppn = 1) {
  using namespace icsim;
  core::ClusterConfig cc = net == core::Network::infiniband
                               ? core::ib_cluster(nodes, ppn)
                               : core::elan_cluster(nodes, ppn);
  core::Cluster cluster(cc);
  apps::sweep::SweepResult result;
  cluster.run([&](mpi::Mpi& mpi) {
    const auto r = apps::sweep::run_sweep3d(mpi, sc);
    if (mpi.rank() == 0) result = r;
  });
  return result;
}

}  // namespace

int main() {
  using namespace icsim;

  apps::sweep::SweepConfig sc;
  sc.nx = sc.ny = sc.nz = 150;
  sc.iterations = 2;
  if (std::getenv("ICSIM_FAST") != nullptr) {
    sc.nx = sc.ny = 50;
    sc.nz = 50;
    sc.iterations = 1;
  }

  const int node_counts[] = {1, 4, 9, 16, 25, 32};
  std::printf("Figure 4: Sweep3D %d^3 fixed-size study, 1 PPN\n\n", sc.nx);
  core::Table t({"nodes", "IB time s", "El time s", "IB grind ns",
                 "El grind ns", "IB eff%", "El eff%"});
  t.print_header();

  double base_ib = 0.0, base_el = 0.0;
  for (const int nodes : node_counts) {
    const auto ib = run_case(core::Network::infiniband, nodes, sc);
    const auto el = run_case(core::Network::quadrics, nodes, sc);
    if (nodes == 1) {
      base_ib = ib.solve_seconds;
      base_el = el.solve_seconds;
    }
    t.print_row(
        {core::fmt_int(nodes), core::fmt(ib.solve_seconds, 3),
         core::fmt(el.solve_seconds, 3), core::fmt(ib.grind_ns, 1),
         core::fmt(el.grind_ns, 1),
         core::fmt(100.0 * core::fixed_efficiency(base_ib, 1, ib.solve_seconds,
                                                  nodes), 1),
         core::fmt(100.0 * core::fixed_efficiency(base_el, 1, el.solve_seconds,
                                                  nodes), 1)});
  }
  // The paper presents only 1 PPN "as the 2 PPN data is similar" — a sign
  // of a high computation-to-communication ratio.  Check that claim.
  const auto ib2 = run_case(core::Network::infiniband, 8, sc, 2);
  const auto ib1b = run_case(core::Network::infiniband, 16, sc, 1);
  std::printf("\n2 PPN check at 16 processes: 8 nodes x 2 PPN %.3f s vs "
              "16 nodes x 1 PPN %.3f s (+%.1f%%; paper: 'similar')\n",
              ib2.solve_seconds, ib1b.solve_seconds,
              100.0 * (ib2.solve_seconds / ib1b.solve_seconds - 1.0));
  std::printf("paper anchors: superlinear 1->4 (cache); Elan-4 clearly "
              "ahead at 9 and 16 nodes\n");
  return 0;
}
