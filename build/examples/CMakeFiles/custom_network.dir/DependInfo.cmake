
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/custom_network.cpp" "examples/CMakeFiles/custom_network.dir/custom_network.cpp.o" "gcc" "examples/CMakeFiles/custom_network.dir/custom_network.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/icsim_core.dir/DependInfo.cmake"
  "/root/repo/build/src/microbench/CMakeFiles/icsim_microbench.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/CMakeFiles/icsim_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/mpi/CMakeFiles/icsim_mpi.dir/DependInfo.cmake"
  "/root/repo/build/src/ib/CMakeFiles/icsim_ib.dir/DependInfo.cmake"
  "/root/repo/build/src/elan/CMakeFiles/icsim_elan.dir/DependInfo.cmake"
  "/root/repo/build/src/cost/CMakeFiles/icsim_cost.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/icsim_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/icsim_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/mpi/CMakeFiles/icsim_mpi_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
