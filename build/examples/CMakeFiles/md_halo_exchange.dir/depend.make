# Empty dependencies file for md_halo_exchange.
# This may be replaced when dependencies are built.
