file(REMOVE_RECURSE
  "CMakeFiles/wavefront_sweep.dir/wavefront_sweep.cpp.o"
  "CMakeFiles/wavefront_sweep.dir/wavefront_sweep.cpp.o.d"
  "wavefront_sweep"
  "wavefront_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wavefront_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
