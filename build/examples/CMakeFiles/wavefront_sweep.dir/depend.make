# Empty dependencies file for wavefront_sweep.
# This may be replaced when dependencies are built.
