file(REMOVE_RECURSE
  "CMakeFiles/test_apps_md.dir/test_apps_md.cpp.o"
  "CMakeFiles/test_apps_md.dir/test_apps_md.cpp.o.d"
  "test_apps_md"
  "test_apps_md.pdb"
  "test_apps_md[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_apps_md.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
