# Empty compiler generated dependencies file for test_apps_md.
# This may be replaced when dependencies are built.
