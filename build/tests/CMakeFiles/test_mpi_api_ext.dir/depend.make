# Empty dependencies file for test_mpi_api_ext.
# This may be replaced when dependencies are built.
