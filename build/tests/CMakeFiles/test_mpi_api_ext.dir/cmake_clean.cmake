file(REMOVE_RECURSE
  "CMakeFiles/test_mpi_api_ext.dir/test_mpi_api_ext.cpp.o"
  "CMakeFiles/test_mpi_api_ext.dir/test_mpi_api_ext.cpp.o.d"
  "test_mpi_api_ext"
  "test_mpi_api_ext.pdb"
  "test_mpi_api_ext[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mpi_api_ext.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
