file(REMOVE_RECURSE
  "CMakeFiles/test_mpi_matcher.dir/test_mpi_matcher.cpp.o"
  "CMakeFiles/test_mpi_matcher.dir/test_mpi_matcher.cpp.o.d"
  "test_mpi_matcher"
  "test_mpi_matcher.pdb"
  "test_mpi_matcher[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mpi_matcher.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
