# Empty dependencies file for test_apps_ft.
# This may be replaced when dependencies are built.
