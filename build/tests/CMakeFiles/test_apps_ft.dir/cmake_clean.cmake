file(REMOVE_RECURSE
  "CMakeFiles/test_apps_ft.dir/test_apps_ft.cpp.o"
  "CMakeFiles/test_apps_ft.dir/test_apps_ft.cpp.o.d"
  "test_apps_ft"
  "test_apps_ft.pdb"
  "test_apps_ft[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_apps_ft.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
