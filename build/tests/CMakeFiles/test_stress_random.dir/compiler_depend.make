# Empty compiler generated dependencies file for test_stress_random.
# This may be replaced when dependencies are built.
