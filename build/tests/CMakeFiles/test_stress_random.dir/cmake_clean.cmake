file(REMOVE_RECURSE
  "CMakeFiles/test_stress_random.dir/test_stress_random.cpp.o"
  "CMakeFiles/test_stress_random.dir/test_stress_random.cpp.o.d"
  "test_stress_random"
  "test_stress_random.pdb"
  "test_stress_random[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_stress_random.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
