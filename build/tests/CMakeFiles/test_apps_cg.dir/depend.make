# Empty dependencies file for test_apps_cg.
# This may be replaced when dependencies are built.
