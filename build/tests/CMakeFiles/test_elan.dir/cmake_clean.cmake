file(REMOVE_RECURSE
  "CMakeFiles/test_elan.dir/test_elan.cpp.o"
  "CMakeFiles/test_elan.dir/test_elan.cpp.o.d"
  "test_elan"
  "test_elan.pdb"
  "test_elan[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_elan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
