# Empty dependencies file for test_elan.
# This may be replaced when dependencies are built.
