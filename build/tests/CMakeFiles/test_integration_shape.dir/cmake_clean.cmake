file(REMOVE_RECURSE
  "CMakeFiles/test_integration_shape.dir/test_integration_shape.cpp.o"
  "CMakeFiles/test_integration_shape.dir/test_integration_shape.cpp.o.d"
  "test_integration_shape"
  "test_integration_shape.pdb"
  "test_integration_shape[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_integration_shape.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
