# Empty compiler generated dependencies file for test_integration_shape.
# This may be replaced when dependencies are built.
