file(REMOVE_RECURSE
  "CMakeFiles/test_more_edges.dir/test_more_edges.cpp.o"
  "CMakeFiles/test_more_edges.dir/test_more_edges.cpp.o.d"
  "test_more_edges"
  "test_more_edges.pdb"
  "test_more_edges[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_more_edges.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
