# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_net[1]_include.cmake")
include("/root/repo/build/tests/test_node[1]_include.cmake")
include("/root/repo/build/tests/test_mpi[1]_include.cmake")
include("/root/repo/build/tests/test_apps_md[1]_include.cmake")
include("/root/repo/build/tests/test_apps_sweep[1]_include.cmake")
include("/root/repo/build/tests/test_apps_cg[1]_include.cmake")
include("/root/repo/build/tests/test_cost[1]_include.cmake")
include("/root/repo/build/tests/test_mpi_matcher[1]_include.cmake")
include("/root/repo/build/tests/test_ib[1]_include.cmake")
include("/root/repo/build/tests/test_elan[1]_include.cmake")
include("/root/repo/build/tests/test_mpi_collectives[1]_include.cmake")
include("/root/repo/build/tests/test_core[1]_include.cmake")
include("/root/repo/build/tests/test_integration_shape[1]_include.cmake")
include("/root/repo/build/tests/test_microbench[1]_include.cmake")
include("/root/repo/build/tests/test_myrinet[1]_include.cmake")
include("/root/repo/build/tests/test_apps_ext[1]_include.cmake")
include("/root/repo/build/tests/test_stress_random[1]_include.cmake")
include("/root/repo/build/tests/test_apps_ft[1]_include.cmake")
include("/root/repo/build/tests/test_mpi_api_ext[1]_include.cmake")
include("/root/repo/build/tests/test_more_edges[1]_include.cmake")
