file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_threeway.dir/bench_ext_threeway.cpp.o"
  "CMakeFiles/bench_ext_threeway.dir/bench_ext_threeway.cpp.o.d"
  "bench_ext_threeway"
  "bench_ext_threeway.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_threeway.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
