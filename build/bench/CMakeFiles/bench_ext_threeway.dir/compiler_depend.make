# Empty compiler generated dependencies file for bench_ext_threeway.
# This may be replaced when dependencies are built.
