# Empty compiler generated dependencies file for bench_fig4_sweep3d.
# This may be replaced when dependencies are built.
