# Empty compiler generated dependencies file for bench_ext_npb_suite.
# This may be replaced when dependencies are built.
