file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_loggp.dir/bench_ext_loggp.cpp.o"
  "CMakeFiles/bench_ext_loggp.dir/bench_ext_loggp.cpp.o.d"
  "bench_ext_loggp"
  "bench_ext_loggp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_loggp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
