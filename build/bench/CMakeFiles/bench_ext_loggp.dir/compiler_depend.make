# Empty compiler generated dependencies file for bench_ext_loggp.
# This may be replaced when dependencies are built.
