# Empty dependencies file for bench_fig2_lammps_ljs.
# This may be replaced when dependencies are built.
