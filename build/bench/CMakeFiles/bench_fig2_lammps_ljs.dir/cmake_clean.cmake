file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_lammps_ljs.dir/bench_fig2_lammps_ljs.cpp.o"
  "CMakeFiles/bench_fig2_lammps_ljs.dir/bench_fig2_lammps_ljs.cpp.o.d"
  "bench_fig2_lammps_ljs"
  "bench_fig2_lammps_ljs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_lammps_ljs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
