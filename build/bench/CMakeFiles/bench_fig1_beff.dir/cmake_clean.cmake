file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_beff.dir/bench_fig1_beff.cpp.o"
  "CMakeFiles/bench_fig1_beff.dir/bench_fig1_beff.cpp.o.d"
  "bench_fig1_beff"
  "bench_fig1_beff.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_beff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
