# Empty compiler generated dependencies file for bench_fig1_beff.
# This may be replaced when dependencies are built.
