# Empty dependencies file for bench_fig1_latency.
# This may be replaced when dependencies are built.
