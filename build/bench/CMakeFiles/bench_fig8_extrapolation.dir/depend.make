# Empty dependencies file for bench_fig8_extrapolation.
# This may be replaced when dependencies are built.
