# Empty dependencies file for bench_fig6_npb_cg.
# This may be replaced when dependencies are built.
