file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_npb_cg.dir/bench_fig6_npb_cg.cpp.o"
  "CMakeFiles/bench_fig6_npb_cg.dir/bench_fig6_npb_cg.cpp.o.d"
  "bench_fig6_npb_cg"
  "bench_fig6_npb_cg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_npb_cg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
