file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_progress.dir/bench_ablation_progress.cpp.o"
  "CMakeFiles/bench_ablation_progress.dir/bench_ablation_progress.cpp.o.d"
  "bench_ablation_progress"
  "bench_ablation_progress.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_progress.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
