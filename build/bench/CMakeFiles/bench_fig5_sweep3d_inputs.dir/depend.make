# Empty dependencies file for bench_fig5_sweep3d_inputs.
# This may be replaced when dependencies are built.
