file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_sweep3d_inputs.dir/bench_fig5_sweep3d_inputs.cpp.o"
  "CMakeFiles/bench_fig5_sweep3d_inputs.dir/bench_fig5_sweep3d_inputs.cpp.o.d"
  "bench_fig5_sweep3d_inputs"
  "bench_fig5_sweep3d_inputs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_sweep3d_inputs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
