file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_lammps_membrane.dir/bench_fig3_lammps_membrane.cpp.o"
  "CMakeFiles/bench_fig3_lammps_membrane.dir/bench_fig3_lammps_membrane.cpp.o.d"
  "bench_fig3_lammps_membrane"
  "bench_fig3_lammps_membrane.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_lammps_membrane.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
