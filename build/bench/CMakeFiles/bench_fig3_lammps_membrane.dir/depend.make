# Empty dependencies file for bench_fig3_lammps_membrane.
# This may be replaced when dependencies are built.
