# Empty dependencies file for icsim_sim.
# This may be replaced when dependencies are built.
