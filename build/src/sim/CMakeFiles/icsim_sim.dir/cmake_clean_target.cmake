file(REMOVE_RECURSE
  "libicsim_sim.a"
)
