file(REMOVE_RECURSE
  "CMakeFiles/icsim_sim.dir/engine.cpp.o"
  "CMakeFiles/icsim_sim.dir/engine.cpp.o.d"
  "CMakeFiles/icsim_sim.dir/fiber.cpp.o"
  "CMakeFiles/icsim_sim.dir/fiber.cpp.o.d"
  "CMakeFiles/icsim_sim.dir/time.cpp.o"
  "CMakeFiles/icsim_sim.dir/time.cpp.o.d"
  "libicsim_sim.a"
  "libicsim_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/icsim_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
