file(REMOVE_RECURSE
  "CMakeFiles/icsim_microbench.dir/beff.cpp.o"
  "CMakeFiles/icsim_microbench.dir/beff.cpp.o.d"
  "CMakeFiles/icsim_microbench.dir/pingpong.cpp.o"
  "CMakeFiles/icsim_microbench.dir/pingpong.cpp.o.d"
  "libicsim_microbench.a"
  "libicsim_microbench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/icsim_microbench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
