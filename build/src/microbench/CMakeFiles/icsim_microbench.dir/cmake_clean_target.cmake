file(REMOVE_RECURSE
  "libicsim_microbench.a"
)
