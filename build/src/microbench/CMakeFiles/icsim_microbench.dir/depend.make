# Empty dependencies file for icsim_microbench.
# This may be replaced when dependencies are built.
