file(REMOVE_RECURSE
  "libicsim_net.a"
)
