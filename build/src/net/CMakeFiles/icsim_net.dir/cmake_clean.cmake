file(REMOVE_RECURSE
  "CMakeFiles/icsim_net.dir/fabric.cpp.o"
  "CMakeFiles/icsim_net.dir/fabric.cpp.o.d"
  "CMakeFiles/icsim_net.dir/topology.cpp.o"
  "CMakeFiles/icsim_net.dir/topology.cpp.o.d"
  "libicsim_net.a"
  "libicsim_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/icsim_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
