# Empty compiler generated dependencies file for icsim_net.
# This may be replaced when dependencies are built.
