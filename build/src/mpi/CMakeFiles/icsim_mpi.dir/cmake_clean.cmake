file(REMOVE_RECURSE
  "CMakeFiles/icsim_mpi.dir/mpi.cpp.o"
  "CMakeFiles/icsim_mpi.dir/mpi.cpp.o.d"
  "CMakeFiles/icsim_mpi.dir/mvapich_transport.cpp.o"
  "CMakeFiles/icsim_mpi.dir/mvapich_transport.cpp.o.d"
  "CMakeFiles/icsim_mpi.dir/quadrics_transport.cpp.o"
  "CMakeFiles/icsim_mpi.dir/quadrics_transport.cpp.o.d"
  "libicsim_mpi.a"
  "libicsim_mpi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/icsim_mpi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
