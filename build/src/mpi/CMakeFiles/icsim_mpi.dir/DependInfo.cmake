
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mpi/mpi.cpp" "src/mpi/CMakeFiles/icsim_mpi.dir/mpi.cpp.o" "gcc" "src/mpi/CMakeFiles/icsim_mpi.dir/mpi.cpp.o.d"
  "/root/repo/src/mpi/mvapich_transport.cpp" "src/mpi/CMakeFiles/icsim_mpi.dir/mvapich_transport.cpp.o" "gcc" "src/mpi/CMakeFiles/icsim_mpi.dir/mvapich_transport.cpp.o.d"
  "/root/repo/src/mpi/quadrics_transport.cpp" "src/mpi/CMakeFiles/icsim_mpi.dir/quadrics_transport.cpp.o" "gcc" "src/mpi/CMakeFiles/icsim_mpi.dir/quadrics_transport.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mpi/CMakeFiles/icsim_mpi_base.dir/DependInfo.cmake"
  "/root/repo/build/src/ib/CMakeFiles/icsim_ib.dir/DependInfo.cmake"
  "/root/repo/build/src/elan/CMakeFiles/icsim_elan.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/icsim_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/icsim_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
