# Empty compiler generated dependencies file for icsim_mpi.
# This may be replaced when dependencies are built.
