file(REMOVE_RECURSE
  "libicsim_mpi.a"
)
