# Empty compiler generated dependencies file for icsim_mpi_base.
# This may be replaced when dependencies are built.
