file(REMOVE_RECURSE
  "libicsim_mpi_base.a"
)
