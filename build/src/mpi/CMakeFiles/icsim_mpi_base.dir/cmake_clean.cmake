file(REMOVE_RECURSE
  "CMakeFiles/icsim_mpi_base.dir/matcher.cpp.o"
  "CMakeFiles/icsim_mpi_base.dir/matcher.cpp.o.d"
  "libicsim_mpi_base.a"
  "libicsim_mpi_base.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/icsim_mpi_base.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
