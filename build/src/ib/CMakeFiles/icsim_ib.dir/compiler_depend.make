# Empty compiler generated dependencies file for icsim_ib.
# This may be replaced when dependencies are built.
