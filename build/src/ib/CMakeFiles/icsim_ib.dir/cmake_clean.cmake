file(REMOVE_RECURSE
  "CMakeFiles/icsim_ib.dir/hca.cpp.o"
  "CMakeFiles/icsim_ib.dir/hca.cpp.o.d"
  "CMakeFiles/icsim_ib.dir/reg_cache.cpp.o"
  "CMakeFiles/icsim_ib.dir/reg_cache.cpp.o.d"
  "libicsim_ib.a"
  "libicsim_ib.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/icsim_ib.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
