
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ib/hca.cpp" "src/ib/CMakeFiles/icsim_ib.dir/hca.cpp.o" "gcc" "src/ib/CMakeFiles/icsim_ib.dir/hca.cpp.o.d"
  "/root/repo/src/ib/reg_cache.cpp" "src/ib/CMakeFiles/icsim_ib.dir/reg_cache.cpp.o" "gcc" "src/ib/CMakeFiles/icsim_ib.dir/reg_cache.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/icsim_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/icsim_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
