file(REMOVE_RECURSE
  "libicsim_ib.a"
)
