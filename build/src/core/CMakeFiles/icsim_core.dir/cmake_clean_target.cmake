file(REMOVE_RECURSE
  "libicsim_core.a"
)
