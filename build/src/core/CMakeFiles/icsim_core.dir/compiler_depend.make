# Empty compiler generated dependencies file for icsim_core.
# This may be replaced when dependencies are built.
