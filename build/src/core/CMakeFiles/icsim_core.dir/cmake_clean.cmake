file(REMOVE_RECURSE
  "CMakeFiles/icsim_core.dir/cluster.cpp.o"
  "CMakeFiles/icsim_core.dir/cluster.cpp.o.d"
  "libicsim_core.a"
  "libicsim_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/icsim_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
