# Empty compiler generated dependencies file for icsim_elan.
# This may be replaced when dependencies are built.
