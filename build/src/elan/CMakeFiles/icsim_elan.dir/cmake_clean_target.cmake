file(REMOVE_RECURSE
  "libicsim_elan.a"
)
