file(REMOVE_RECURSE
  "CMakeFiles/icsim_elan.dir/tports.cpp.o"
  "CMakeFiles/icsim_elan.dir/tports.cpp.o.d"
  "libicsim_elan.a"
  "libicsim_elan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/icsim_elan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
