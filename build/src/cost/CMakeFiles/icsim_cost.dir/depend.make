# Empty dependencies file for icsim_cost.
# This may be replaced when dependencies are built.
