file(REMOVE_RECURSE
  "libicsim_cost.a"
)
