file(REMOVE_RECURSE
  "CMakeFiles/icsim_cost.dir/cost_model.cpp.o"
  "CMakeFiles/icsim_cost.dir/cost_model.cpp.o.d"
  "libicsim_cost.a"
  "libicsim_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/icsim_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
