# Empty dependencies file for icsim_apps.
# This may be replaced when dependencies are built.
