file(REMOVE_RECURSE
  "CMakeFiles/icsim_apps.dir/lammps/force.cpp.o"
  "CMakeFiles/icsim_apps.dir/lammps/force.cpp.o.d"
  "CMakeFiles/icsim_apps.dir/lammps/md.cpp.o"
  "CMakeFiles/icsim_apps.dir/lammps/md.cpp.o.d"
  "CMakeFiles/icsim_apps.dir/lammps/neighbor.cpp.o"
  "CMakeFiles/icsim_apps.dir/lammps/neighbor.cpp.o.d"
  "CMakeFiles/icsim_apps.dir/mg/mg.cpp.o"
  "CMakeFiles/icsim_apps.dir/mg/mg.cpp.o.d"
  "CMakeFiles/icsim_apps.dir/npb/cg.cpp.o"
  "CMakeFiles/icsim_apps.dir/npb/cg.cpp.o.d"
  "CMakeFiles/icsim_apps.dir/npb/ep.cpp.o"
  "CMakeFiles/icsim_apps.dir/npb/ep.cpp.o.d"
  "CMakeFiles/icsim_apps.dir/npb/ft.cpp.o"
  "CMakeFiles/icsim_apps.dir/npb/ft.cpp.o.d"
  "CMakeFiles/icsim_apps.dir/npb/is.cpp.o"
  "CMakeFiles/icsim_apps.dir/npb/is.cpp.o.d"
  "CMakeFiles/icsim_apps.dir/npb/makea.cpp.o"
  "CMakeFiles/icsim_apps.dir/npb/makea.cpp.o.d"
  "CMakeFiles/icsim_apps.dir/sweep3d/sweep.cpp.o"
  "CMakeFiles/icsim_apps.dir/sweep3d/sweep.cpp.o.d"
  "libicsim_apps.a"
  "libicsim_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/icsim_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
