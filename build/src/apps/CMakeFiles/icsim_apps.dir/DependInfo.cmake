
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/lammps/force.cpp" "src/apps/CMakeFiles/icsim_apps.dir/lammps/force.cpp.o" "gcc" "src/apps/CMakeFiles/icsim_apps.dir/lammps/force.cpp.o.d"
  "/root/repo/src/apps/lammps/md.cpp" "src/apps/CMakeFiles/icsim_apps.dir/lammps/md.cpp.o" "gcc" "src/apps/CMakeFiles/icsim_apps.dir/lammps/md.cpp.o.d"
  "/root/repo/src/apps/lammps/neighbor.cpp" "src/apps/CMakeFiles/icsim_apps.dir/lammps/neighbor.cpp.o" "gcc" "src/apps/CMakeFiles/icsim_apps.dir/lammps/neighbor.cpp.o.d"
  "/root/repo/src/apps/mg/mg.cpp" "src/apps/CMakeFiles/icsim_apps.dir/mg/mg.cpp.o" "gcc" "src/apps/CMakeFiles/icsim_apps.dir/mg/mg.cpp.o.d"
  "/root/repo/src/apps/npb/cg.cpp" "src/apps/CMakeFiles/icsim_apps.dir/npb/cg.cpp.o" "gcc" "src/apps/CMakeFiles/icsim_apps.dir/npb/cg.cpp.o.d"
  "/root/repo/src/apps/npb/ep.cpp" "src/apps/CMakeFiles/icsim_apps.dir/npb/ep.cpp.o" "gcc" "src/apps/CMakeFiles/icsim_apps.dir/npb/ep.cpp.o.d"
  "/root/repo/src/apps/npb/ft.cpp" "src/apps/CMakeFiles/icsim_apps.dir/npb/ft.cpp.o" "gcc" "src/apps/CMakeFiles/icsim_apps.dir/npb/ft.cpp.o.d"
  "/root/repo/src/apps/npb/is.cpp" "src/apps/CMakeFiles/icsim_apps.dir/npb/is.cpp.o" "gcc" "src/apps/CMakeFiles/icsim_apps.dir/npb/is.cpp.o.d"
  "/root/repo/src/apps/npb/makea.cpp" "src/apps/CMakeFiles/icsim_apps.dir/npb/makea.cpp.o" "gcc" "src/apps/CMakeFiles/icsim_apps.dir/npb/makea.cpp.o.d"
  "/root/repo/src/apps/sweep3d/sweep.cpp" "src/apps/CMakeFiles/icsim_apps.dir/sweep3d/sweep.cpp.o" "gcc" "src/apps/CMakeFiles/icsim_apps.dir/sweep3d/sweep.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mpi/CMakeFiles/icsim_mpi.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/icsim_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/ib/CMakeFiles/icsim_ib.dir/DependInfo.cmake"
  "/root/repo/build/src/elan/CMakeFiles/icsim_elan.dir/DependInfo.cmake"
  "/root/repo/build/src/mpi/CMakeFiles/icsim_mpi_base.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/icsim_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
