file(REMOVE_RECURSE
  "libicsim_apps.a"
)
