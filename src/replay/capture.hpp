#pragma once
// Capture side of trace-driven replay: mpi::Recorder implementations that
// accumulate a RankTrace per rank and write one `.icst` file each.
//
// Wiring lives in core::Cluster — set ClusterConfig::mpi_trace_dir (or
// export ICSIM_MPI_TRACE=<dir>) and a normal run of any app emits
// <dir>/rank<r>.icst for every rank.  Capture is pure observation: the
// instrumented run keeps its uninstrumented event_digest, and replaying the
// files reproduces that digest exactly (docs/MODEL.md §11).

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "mpi/recorder.hpp"
#include "replay/format.hpp"

namespace icsim::replay {

/// Accumulates one rank's top-level MPI ops into a RankTrace in memory.
class CaptureRecorder final : public mpi::Recorder {
 public:
  CaptureRecorder(int rank, int size) {
    trace_.rank = rank;
    trace_.size = size;
  }

  [[nodiscard]] const RankTrace& trace() const { return trace_; }
  [[nodiscard]] RankTrace& trace() { return trace_; }

  void on_compute(sim::Time duration) override {
    TraceOp o;
    o.op = Op::compute;
    o.duration = duration;
    trace_.ops.push_back(o);
  }
  void on_send(int dst, std::size_t bytes, int tag) override {
    push_p2p(Op::send, dst, bytes, tag);
  }
  void on_isend(int dst, std::size_t bytes, int tag) override {
    push_p2p(Op::isend, dst, bytes, tag);
  }
  void on_recv(int src, std::size_t capacity, int tag) override {
    push_p2p(Op::recv, src, capacity, tag);
  }
  void on_irecv(int src, std::size_t capacity, int tag) override {
    push_p2p(Op::irecv, src, capacity, tag);
  }
  void on_wait(std::uint64_t req) override { push_req(Op::wait, req); }
  void on_test(std::uint64_t req) override { push_req(Op::test, req); }
  void on_sendrecv(int dst, std::size_t send_bytes, int send_tag, int src,
                   std::size_t recv_capacity, int recv_tag) override {
    TraceOp o;
    o.op = Op::sendrecv;
    o.peer = dst;
    o.bytes = static_cast<std::int64_t>(send_bytes);
    o.tag = send_tag;
    o.peer2 = src;
    o.bytes2 = static_cast<std::int64_t>(recv_capacity);
    o.tag2 = recv_tag;
    trace_.ops.push_back(std::move(o));
  }
  void on_probe(int src, int tag) override { push_probe(Op::probe, src, tag); }
  void on_iprobe(int src, int tag) override {
    push_probe(Op::iprobe, src, tag);
  }

  void on_barrier() override {
    TraceOp o;
    o.op = Op::barrier;
    trace_.ops.push_back(o);
  }
  void on_bcast(int root, std::size_t bytes) override {
    push_rooted(Op::bcast, root, bytes);
  }
  void on_reduce(int root, std::size_t bytes, mpi::ReduceOp op) override {
    TraceOp o;
    o.op = Op::reduce;
    o.peer = root;
    o.bytes = static_cast<std::int64_t>(bytes);
    o.red = op;
    trace_.ops.push_back(std::move(o));
  }
  void on_allreduce(std::size_t bytes, mpi::ReduceOp op) override {
    push_reduction(Op::allreduce, bytes, op);
  }
  void on_allgather(std::size_t block_bytes) override {
    push_sized(Op::allgather, block_bytes);
  }
  void on_alltoall(std::size_t block_bytes) override {
    push_sized(Op::alltoall, block_bytes);
  }
  void on_alltoallv(std::vector<std::int64_t> send_bytes,
                    std::vector<std::int64_t> recv_bytes) override {
    TraceOp o;
    o.op = Op::alltoallv;
    o.send_bytes = std::move(send_bytes);
    o.recv_bytes = std::move(recv_bytes);
    trace_.ops.push_back(std::move(o));
  }
  void on_gather(int root, std::size_t bytes) override {
    push_rooted(Op::gather, root, bytes);
  }
  void on_scan(std::size_t bytes, mpi::ReduceOp op) override {
    push_reduction(Op::scan, bytes, op);
  }

 private:
  void push_p2p(Op op, int peer, std::size_t bytes, int tag) {
    TraceOp o;
    o.op = op;
    o.peer = peer;
    o.bytes = static_cast<std::int64_t>(bytes);
    o.tag = tag;
    trace_.ops.push_back(std::move(o));
  }
  void push_req(Op op, std::uint64_t req) {
    TraceOp o;
    o.op = op;
    o.req = req;
    trace_.ops.push_back(o);
  }
  void push_probe(Op op, int src, int tag) {
    TraceOp o;
    o.op = op;
    o.peer = src;
    o.tag = tag;
    trace_.ops.push_back(o);
  }
  void push_rooted(Op op, int root, std::size_t bytes) {
    TraceOp o;
    o.op = op;
    o.peer = root;
    o.bytes = static_cast<std::int64_t>(bytes);
    trace_.ops.push_back(std::move(o));
  }
  void push_sized(Op op, std::size_t bytes) {
    TraceOp o;
    o.op = op;
    o.bytes = static_cast<std::int64_t>(bytes);
    trace_.ops.push_back(std::move(o));
  }
  void push_reduction(Op op, std::size_t bytes, mpi::ReduceOp red) {
    TraceOp o;
    o.op = op;
    o.bytes = static_cast<std::int64_t>(bytes);
    o.red = red;
    trace_.ops.push_back(std::move(o));
  }

  RankTrace trace_;
};

/// Owns one CaptureRecorder per rank of a cluster run and writes the
/// per-rank `.icst` files at the end.
class CaptureSession {
 public:
  /// `meta` entries (net/nodes/ppn/...) are stamped into every rank file.
  CaptureSession(int nranks,
                 std::vector<std::pair<std::string, std::string>> meta);

  [[nodiscard]] int nranks() const { return static_cast<int>(recs_.size()); }
  [[nodiscard]] CaptureRecorder& recorder(int rank) { return recs_[rank]; }

  /// Write <dir>/rank<r>.icst for every rank, creating `dir` as needed.
  /// Text by default; framed binary when `binary` is set.
  void write(const std::string& dir, bool binary = false) const;

 private:
  std::vector<CaptureRecorder> recs_;
};

}  // namespace icsim::replay
