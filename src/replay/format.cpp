#include "replay/format.hpp"

#include <array>
#include <charconv>
#include <fstream>
#include <istream>
#include <iterator>
#include <limits>
#include <ostream>

namespace icsim::replay {

namespace {

constexpr std::array<const char*, kOpCount> kOpNames = {
    "compute",   "send",     "isend",     "recv",     "irecv",
    "wait",      "test",     "probe",     "iprobe",   "sendrecv",
    "barrier",   "bcast",    "reduce",    "allreduce", "allgather",
    "alltoall",  "alltoallv", "gather",   "scan"};

bool reduce_from_name(const std::string& name, mpi::ReduceOp* out) {
  if (name == "sum") { *out = mpi::ReduceOp::sum; return true; }
  if (name == "min") { *out = mpi::ReduceOp::min; return true; }
  if (name == "max") { *out = mpi::ReduceOp::max; return true; }
  if (name == "prod") { *out = mpi::ReduceOp::prod; return true; }
  return false;
}

std::string wildcard(long long v) {
  return v < 0 ? std::string("any") : std::to_string(v);
}

std::string csv(const std::vector<std::int64_t>& xs) {
  std::string out;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    if (i != 0) out += ',';
    out += std::to_string(xs[i]);
  }
  return out.empty() ? std::string("-") : out;
}

// ---------------------------------------------------------------------- text

class TextParser {
 public:
  TextParser(std::istream& is, std::string name)
      : is_(is), name_(std::move(name)) {}

  RankTrace run() {
    RankTrace t;
    std::vector<std::string> tok;
    if (!next_line(tok)) fail("empty input, expected 'icst 1' header");
    if (tok[0] != "icst") fail("expected 'icst <version>' header");
    need_arity(tok, 2);
    t.version = static_cast<int>(parse_int(tok[1], 0, 1 << 20));
    if (t.version != kTraceVersion) {
      fail("unsupported trace version " + tok[1] + " (this build reads " +
           std::to_string(kTraceVersion) + ")");
    }
    if (!next_line(tok) || tok[0] != "rank") {
      fail("expected 'rank <rank> <size>' after header");
    }
    need_arity(tok, 3);
    t.rank = static_cast<int>(parse_int(tok[1], 0, kMaxRanks));
    t.size = static_cast<int>(parse_int(tok[2], 1, kMaxRanks));
    bool ended = false;
    while (next_line(tok)) {
      if (ended) fail("trailing content after 'end'");
      if (tok[0] == "end") {
        need_arity(tok, 1);
        ended = true;
        continue;
      }
      if (tok[0] == "meta") {
        if (tok.size() < 3) fail("'meta' needs '<key> <value>'");
        std::string value = tok[2];
        for (std::size_t i = 3; i < tok.size(); ++i) value += " " + tok[i];
        t.meta.emplace_back(tok[1], std::move(value));
        continue;
      }
      t.ops.push_back(parse_op(tok));
    }
    if (!ended) fail("truncated trace: missing 'end' terminator");
    validate(t, name_);
    return t;
  }

 private:
  static constexpr long long kMaxRanks = 1 << 24;

  [[noreturn]] void fail(const std::string& msg) const {
    throw TraceError(name_ + ":" + std::to_string(lineno_) + ": " + msg);
  }

  /// Next non-blank, non-comment line, split on whitespace.  A token
  /// starting with '#' ends the line (trailing comment).
  bool next_line(std::vector<std::string>& tok) {
    std::string line;
    while (std::getline(is_, line)) {
      ++lineno_;
      if (!line.empty() && line.back() == '\r') line.pop_back();
      tok.clear();
      std::size_t i = 0;
      while (i < line.size()) {
        while (i < line.size() && (line[i] == ' ' || line[i] == '\t')) ++i;
        std::size_t j = i;
        while (j < line.size() && line[j] != ' ' && line[j] != '\t') ++j;
        if (j > i) {
          if (line[i] == '#') break;
          tok.emplace_back(line.substr(i, j - i));
        }
        i = j;
      }
      if (!tok.empty()) return true;
    }
    return false;
  }

  void need_arity(const std::vector<std::string>& tok, std::size_t n) const {
    if (tok.size() != n) {
      fail("'" + tok[0] + "' takes " + std::to_string(n - 1) +
           " argument(s), got " + std::to_string(tok.size() - 1));
    }
  }

  long long parse_int(const std::string& s, long long lo,
                      long long hi) const {
    long long v = 0;
    const auto* first = s.data();
    const auto* last = s.data() + s.size();
    auto [p, ec] = std::from_chars(first, last, v);
    if (ec != std::errc() || p != last) {
      fail("'" + s + "' is not an integer");
    }
    if (v < lo || v > hi) {
      fail("value " + s + " out of range [" + std::to_string(lo) + ", " +
           std::to_string(hi) + "]");
    }
    return v;
  }

  int parse_wild(const std::string& s) const {
    if (s == "any") return -1;
    return static_cast<int>(parse_int(s, 0, kMaxRanks));
  }

  std::vector<std::int64_t> parse_csv(const std::string& s) const {
    std::vector<std::int64_t> out;
    if (s == "-") return out;
    std::size_t start = 0;
    while (true) {
      const std::size_t comma = s.find(',', start);
      const std::string item =
          s.substr(start, comma == std::string::npos ? comma : comma - start);
      out.push_back(parse_int(item, 0, std::numeric_limits<std::int64_t>::max()));
      if (comma == std::string::npos) break;
      start = comma + 1;
    }
    return out;
  }

  mpi::ReduceOp parse_red(const std::string& s) const {
    mpi::ReduceOp op{};
    if (!reduce_from_name(s, &op)) {
      fail("'" + s + "' is not a reduction (sum|min|max|prod)");
    }
    return op;
  }

  TraceOp parse_op(const std::vector<std::string>& tok) const {
    constexpr auto kMaxI64 = std::numeric_limits<std::int64_t>::max();
    TraceOp o;
    if (!op_from_name(tok[0], &o.op)) fail("unknown opcode '" + tok[0] + "'");
    switch (o.op) {
      case Op::compute:
        need_arity(tok, 2);
        o.duration = sim::Time::ps(parse_int(tok[1], 0, kMaxI64));
        break;
      case Op::send:
      case Op::isend:
        need_arity(tok, 4);
        o.peer = static_cast<int>(parse_int(tok[1], 0, kMaxRanks));
        o.bytes = parse_int(tok[2], 0, kMaxI64);
        o.tag = static_cast<int>(parse_int(tok[3], 0, kMaxRanks));
        break;
      case Op::recv:
      case Op::irecv:
        need_arity(tok, 4);
        o.peer = parse_wild(tok[1]);
        o.bytes = parse_int(tok[2], 0, kMaxI64);
        o.tag = parse_wild(tok[3]);
        break;
      case Op::wait:
      case Op::test:
        need_arity(tok, 2);
        o.req = static_cast<std::uint64_t>(parse_int(tok[1], 0, kMaxI64));
        break;
      case Op::probe:
      case Op::iprobe:
        need_arity(tok, 3);
        o.peer = parse_wild(tok[1]);
        o.tag = parse_wild(tok[2]);
        break;
      case Op::sendrecv:
        need_arity(tok, 7);
        o.peer = static_cast<int>(parse_int(tok[1], 0, kMaxRanks));
        o.bytes = parse_int(tok[2], 0, kMaxI64);
        o.tag = static_cast<int>(parse_int(tok[3], 0, kMaxRanks));
        o.peer2 = parse_wild(tok[4]);
        o.bytes2 = parse_int(tok[5], 0, kMaxI64);
        o.tag2 = parse_wild(tok[6]);
        break;
      case Op::barrier:
        need_arity(tok, 1);
        break;
      case Op::bcast:
      case Op::gather:
        need_arity(tok, 3);
        o.peer = static_cast<int>(parse_int(tok[1], 0, kMaxRanks));
        o.bytes = parse_int(tok[2], 0, kMaxI64);
        break;
      case Op::reduce:
        need_arity(tok, 4);
        o.peer = static_cast<int>(parse_int(tok[1], 0, kMaxRanks));
        o.bytes = parse_int(tok[2], 0, kMaxI64);
        o.red = parse_red(tok[3]);
        break;
      case Op::allreduce:
      case Op::scan:
        need_arity(tok, 3);
        o.bytes = parse_int(tok[1], 0, kMaxI64);
        o.red = parse_red(tok[2]);
        break;
      case Op::allgather:
      case Op::alltoall:
        need_arity(tok, 2);
        o.bytes = parse_int(tok[1], 0, kMaxI64);
        break;
      case Op::alltoallv:
        need_arity(tok, 3);
        o.send_bytes = parse_csv(tok[1]);
        o.recv_bytes = parse_csv(tok[2]);
        break;
    }
    return o;
  }

  std::istream& is_;
  std::string name_;
  int lineno_ = 0;
};

// -------------------------------------------------------------------- binary

constexpr std::array<unsigned char, 8> kMagic = {0x89, 'I', 'C', 'S',
                                                 'T',  '1', '\r', '\n'};

void put_u8(std::string& b, std::uint8_t v) {
  b.push_back(static_cast<char>(v));
}
void put_u16(std::string& b, std::uint16_t v) {
  put_u8(b, static_cast<std::uint8_t>(v & 0xff));
  put_u8(b, static_cast<std::uint8_t>(v >> 8));
}
void put_u32(std::string& b, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    put_u8(b, static_cast<std::uint8_t>((v >> (8 * i)) & 0xff));
  }
}
void put_u64(std::string& b, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    put_u8(b, static_cast<std::uint8_t>((v >> (8 * i)) & 0xff));
  }
}
void put_i32(std::string& b, std::int32_t v) {
  put_u32(b, static_cast<std::uint32_t>(v));
}
void put_i64(std::string& b, std::int64_t v) {
  put_u64(b, static_cast<std::uint64_t>(v));
}

std::string encode_payload(const TraceOp& o) {
  std::string p;
  put_u8(p, static_cast<std::uint8_t>(o.op));
  switch (o.op) {
    case Op::compute:
      put_i64(p, o.duration.picoseconds());
      break;
    case Op::send:
    case Op::isend:
    case Op::recv:
    case Op::irecv:
      put_i32(p, o.peer);
      put_i64(p, o.bytes);
      put_i32(p, o.tag);
      break;
    case Op::wait:
    case Op::test:
      put_u64(p, o.req);
      break;
    case Op::probe:
    case Op::iprobe:
      put_i32(p, o.peer);
      put_i32(p, o.tag);
      break;
    case Op::sendrecv:
      put_i32(p, o.peer);
      put_i64(p, o.bytes);
      put_i32(p, o.tag);
      put_i32(p, o.peer2);
      put_i64(p, o.bytes2);
      put_i32(p, o.tag2);
      break;
    case Op::barrier:
      break;
    case Op::bcast:
    case Op::gather:
      put_i32(p, o.peer);
      put_i64(p, o.bytes);
      break;
    case Op::reduce:
      put_i32(p, o.peer);
      put_i64(p, o.bytes);
      put_u8(p, static_cast<std::uint8_t>(o.red));
      break;
    case Op::allreduce:
    case Op::scan:
      put_i64(p, o.bytes);
      put_u8(p, static_cast<std::uint8_t>(o.red));
      break;
    case Op::allgather:
    case Op::alltoall:
      put_i64(p, o.bytes);
      break;
    case Op::alltoallv:
      put_u32(p, static_cast<std::uint32_t>(o.send_bytes.size()));
      for (std::int64_t v : o.send_bytes) put_i64(p, v);
      for (std::int64_t v : o.recv_bytes) put_i64(p, v);
      break;
  }
  return p;
}

class BinaryParser {
 public:
  BinaryParser(std::string data, std::string name)
      : data_(std::move(data)), name_(std::move(name)) {}

  RankTrace run() {
    RankTrace t;
    for (unsigned char m : kMagic) {
      if (u8() != m) {
        throw TraceError(name_ + ": offset " + std::to_string(pos_ - 1) +
                         ": bad magic byte (not an .icst binary trace)");
      }
    }
    const std::uint32_t version = u32();
    if (version != static_cast<std::uint32_t>(kTraceVersion)) {
      fail("unsupported trace version " + std::to_string(version) +
           " (this build reads " + std::to_string(kTraceVersion) + ")");
    }
    t.version = static_cast<int>(version);
    t.rank = static_cast<int>(u32());
    t.size = static_cast<int>(u32());
    const std::uint32_t nmeta = u32();
    for (std::uint32_t i = 0; i < nmeta; ++i) {
      std::string key = str(u16());
      std::string value = str(u16());
      t.meta.emplace_back(std::move(key), std::move(value));
    }
    bool ended = false;
    while (!ended) {
      const std::size_t frame_at = pos_;
      const std::uint16_t len = u16();
      if (len == 0) {
        ended = true;
        break;
      }
      const std::string payload = str(len);
      t.ops.push_back(decode_payload(payload, frame_at));
    }
    if (pos_ != data_.size()) {
      fail("trailing " + std::to_string(data_.size() - pos_) +
           " byte(s) after end frame");
    }
    validate(t, name_);
    return t;
  }

 private:
  [[noreturn]] void fail(const std::string& msg) const {
    throw TraceError(name_ + ": offset " + std::to_string(pos_) + ": " + msg);
  }

  std::uint8_t u8() {
    if (pos_ >= data_.size()) fail("truncated trace: unexpected end of input");
    return static_cast<std::uint8_t>(data_[pos_++]);
  }
  std::uint16_t u16() {
    const std::uint16_t lo = u8();
    return static_cast<std::uint16_t>(lo | (u8() << 8));
  }
  std::uint32_t u32() {
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(u8()) << (8 * i);
    return v;
  }
  std::string str(std::size_t n) {
    if (data_.size() - pos_ < n) {
      fail("truncated trace: need " + std::to_string(n) + " byte(s), have " +
           std::to_string(data_.size() - pos_));
    }
    std::string s = data_.substr(pos_, n);
    pos_ += n;
    return s;
  }

  /// Decode one frame payload; `frame_at` is its offset for diagnostics.
  TraceOp decode_payload(const std::string& p, std::size_t frame_at) const {
    Decoder d{p, name_, frame_at};
    TraceOp o;
    const std::uint8_t code = d.u8();
    if (code >= kOpCount) {
      d.fail("unknown opcode " + std::to_string(code));
    }
    o.op = static_cast<Op>(code);
    switch (o.op) {
      case Op::compute:
        o.duration = sim::Time::ps(d.i64());
        break;
      case Op::send:
      case Op::isend:
      case Op::recv:
      case Op::irecv:
        o.peer = d.i32();
        o.bytes = d.i64();
        o.tag = d.i32();
        break;
      case Op::wait:
      case Op::test:
        o.req = d.u64();
        break;
      case Op::probe:
      case Op::iprobe:
        o.peer = d.i32();
        o.tag = d.i32();
        break;
      case Op::sendrecv:
        o.peer = d.i32();
        o.bytes = d.i64();
        o.tag = d.i32();
        o.peer2 = d.i32();
        o.bytes2 = d.i64();
        o.tag2 = d.i32();
        break;
      case Op::barrier:
        break;
      case Op::bcast:
      case Op::gather:
        o.peer = d.i32();
        o.bytes = d.i64();
        break;
      case Op::reduce:
        o.peer = d.i32();
        o.bytes = d.i64();
        o.red = d.red();
        break;
      case Op::allreduce:
      case Op::scan:
        o.bytes = d.i64();
        o.red = d.red();
        break;
      case Op::allgather:
      case Op::alltoall:
        o.bytes = d.i64();
        break;
      case Op::alltoallv: {
        const std::uint32_t n = d.u32();
        o.send_bytes.reserve(n);
        o.recv_bytes.reserve(n);
        for (std::uint32_t i = 0; i < n; ++i) o.send_bytes.push_back(d.i64());
        for (std::uint32_t i = 0; i < n; ++i) o.recv_bytes.push_back(d.i64());
        break;
      }
    }
    d.done(op_name(o.op));
    return o;
  }

  /// Bounds-checked reader over one frame payload.
  struct Decoder {
    const std::string& p;
    const std::string& name;
    std::size_t frame_at;
    std::size_t at = 0;

    [[noreturn]] void fail(const std::string& msg) const {
      throw TraceError(name + ": offset " + std::to_string(frame_at) + ": " +
                       msg);
    }
    std::uint8_t u8() {
      if (at >= p.size()) fail("frame payload too short");
      return static_cast<std::uint8_t>(p[at++]);
    }
    std::uint32_t u32() {
      std::uint32_t v = 0;
      for (int i = 0; i < 4; ++i) {
        v |= static_cast<std::uint32_t>(u8()) << (8 * i);
      }
      return v;
    }
    std::uint64_t u64() {
      std::uint64_t v = 0;
      for (int i = 0; i < 8; ++i) {
        v |= static_cast<std::uint64_t>(u8()) << (8 * i);
      }
      return v;
    }
    std::int32_t i32() { return static_cast<std::int32_t>(u32()); }
    std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
    mpi::ReduceOp red() {
      const std::uint8_t v = u8();
      if (v > 3) fail("invalid reduction code " + std::to_string(v));
      return static_cast<mpi::ReduceOp>(v);
    }
    void done(const char* op) const {
      if (at != p.size()) {
        fail(std::string("'") + op + "' frame has " +
             std::to_string(p.size() - at) + " excess byte(s)");
      }
    }
  };

  std::string data_;
  std::string name_;
  std::size_t pos_ = 0;
};

}  // namespace

// ------------------------------------------------------------------- shared

std::string RankTrace::meta_value(const std::string& key,
                                  const std::string& fallback) const {
  for (const auto& [k, v] : meta) {
    if (k == key) return v;
  }
  return fallback;
}

const char* op_name(Op op) { return kOpNames[static_cast<std::size_t>(op)]; }

bool op_from_name(const std::string& name, Op* out) {
  for (std::size_t i = 0; i < kOpNames.size(); ++i) {
    if (name == kOpNames[i]) {
      *out = static_cast<Op>(i);
      return true;
    }
  }
  return false;
}

const char* reduce_name(mpi::ReduceOp op) {
  switch (op) {
    case mpi::ReduceOp::sum: return "sum";
    case mpi::ReduceOp::min: return "min";
    case mpi::ReduceOp::max: return "max";
    case mpi::ReduceOp::prod: return "prod";
  }
  return "sum";
}

void validate(const RankTrace& t, const std::string& name) {
  const auto fail = [&](std::size_t op_index, const std::string& msg) {
    throw TraceError(name + ": op " + std::to_string(op_index) + " (" +
                     op_name(t.ops[op_index].op) + "): " + msg);
  };
  if (t.version != kTraceVersion) {
    throw TraceError(name + ": unsupported trace version " +
                     std::to_string(t.version));
  }
  if (t.size < 1) throw TraceError(name + ": world size must be >= 1");
  if (t.rank < 0 || t.rank >= t.size) {
    throw TraceError(name + ": rank " + std::to_string(t.rank) +
                     " outside world of size " + std::to_string(t.size));
  }
  const auto peer_ok = [&](int p) { return p >= 0 && p < t.size; };
  const auto wild_ok = [&](int p) { return p == -1 || peer_ok(p); };
  std::uint64_t issued = 0;  // nonblocking requests so far
  for (std::size_t i = 0; i < t.ops.size(); ++i) {
    const TraceOp& o = t.ops[i];
    if (o.bytes < 0 || o.bytes2 < 0) fail(i, "negative byte count");
    switch (o.op) {
      case Op::compute:
        if (o.duration < sim::Time::zero()) fail(i, "negative duration");
        break;
      case Op::send:
      case Op::isend:
        if (!peer_ok(o.peer)) {
          fail(i, "destination " + std::to_string(o.peer) +
                      " outside world of size " + std::to_string(t.size));
        }
        if (o.tag < 0) fail(i, "send tag must be >= 0");
        if (o.op == Op::isend) ++issued;
        break;
      case Op::recv:
      case Op::irecv:
        if (!wild_ok(o.peer)) {
          fail(i, "source " + std::to_string(o.peer) +
                      " outside world of size " + std::to_string(t.size));
        }
        if (o.tag < -1) fail(i, "receive tag must be >= 0 or 'any'");
        if (o.op == Op::irecv) ++issued;
        break;
      case Op::wait:
      case Op::test:
        if (o.req >= issued) {
          fail(i, "references request " + std::to_string(o.req) + " but only " +
                      std::to_string(issued) +
                      " nonblocking op(s) were issued before it");
        }
        break;
      case Op::probe:
      case Op::iprobe:
        if (!wild_ok(o.peer)) fail(i, "probe source outside world");
        if (o.tag < -1) fail(i, "probe tag must be >= 0 or 'any'");
        break;
      case Op::sendrecv:
        if (!peer_ok(o.peer)) fail(i, "destination outside world");
        if (o.tag < 0) fail(i, "send tag must be >= 0");
        if (!wild_ok(o.peer2)) fail(i, "source outside world");
        if (o.tag2 < -1) fail(i, "receive tag must be >= 0 or 'any'");
        break;
      case Op::barrier:
      case Op::allgather:
      case Op::alltoall:
      case Op::allreduce:
        break;
      case Op::bcast:
      case Op::reduce:
      case Op::gather:
        if (!peer_ok(o.peer)) {
          fail(i, "root " + std::to_string(o.peer) +
                      " outside world of size " + std::to_string(t.size));
        }
        break;
      case Op::scan:
        if (o.bytes != 1 && o.bytes != 2 && o.bytes != 4 && o.bytes != 8) {
          fail(i, "scan element width must be 1, 2, 4 or 8 bytes");
        }
        break;
      case Op::alltoallv:
        if (o.send_bytes.size() != static_cast<std::size_t>(t.size) ||
            o.recv_bytes.size() != static_cast<std::size_t>(t.size)) {
          fail(i, "per-peer byte lists must have exactly " +
                      std::to_string(t.size) + " entries");
        }
        for (std::int64_t v : o.send_bytes) {
          if (v < 0) fail(i, "negative byte count");
        }
        for (std::int64_t v : o.recv_bytes) {
          if (v < 0) fail(i, "negative byte count");
        }
        break;
    }
  }
}

void write_text(std::ostream& os, const RankTrace& t) {
  os << "icst " << t.version << "\n";
  os << "rank " << t.rank << " " << t.size << "\n";
  for (const auto& [k, v] : t.meta) os << "meta " << k << " " << v << "\n";
  for (const TraceOp& o : t.ops) {
    os << op_name(o.op);
    switch (o.op) {
      case Op::compute:
        os << " " << o.duration.picoseconds();
        break;
      case Op::send:
      case Op::isend:
        os << " " << o.peer << " " << o.bytes << " " << o.tag;
        break;
      case Op::recv:
      case Op::irecv:
        os << " " << wildcard(o.peer) << " " << o.bytes << " "
           << wildcard(o.tag);
        break;
      case Op::wait:
      case Op::test:
        os << " " << o.req;
        break;
      case Op::probe:
      case Op::iprobe:
        os << " " << wildcard(o.peer) << " " << wildcard(o.tag);
        break;
      case Op::sendrecv:
        os << " " << o.peer << " " << o.bytes << " " << o.tag << " "
           << wildcard(o.peer2) << " " << o.bytes2 << " " << wildcard(o.tag2);
        break;
      case Op::barrier:
        break;
      case Op::bcast:
      case Op::gather:
        os << " " << o.peer << " " << o.bytes;
        break;
      case Op::reduce:
        os << " " << o.peer << " " << o.bytes << " " << reduce_name(o.red);
        break;
      case Op::allreduce:
      case Op::scan:
        os << " " << o.bytes << " " << reduce_name(o.red);
        break;
      case Op::allgather:
      case Op::alltoall:
        os << " " << o.bytes;
        break;
      case Op::alltoallv:
        os << " " << csv(o.send_bytes) << " " << csv(o.recv_bytes);
        break;
    }
    os << "\n";
  }
  os << "end\n";
}

void write_binary(std::ostream& os, const RankTrace& t) {
  std::string b;
  for (unsigned char m : kMagic) put_u8(b, m);
  put_u32(b, static_cast<std::uint32_t>(t.version));
  put_u32(b, static_cast<std::uint32_t>(t.rank));
  put_u32(b, static_cast<std::uint32_t>(t.size));
  put_u32(b, static_cast<std::uint32_t>(t.meta.size()));
  for (const auto& [k, v] : t.meta) {
    put_u16(b, static_cast<std::uint16_t>(k.size()));
    b += k;
    put_u16(b, static_cast<std::uint16_t>(v.size()));
    b += v;
  }
  for (const TraceOp& o : t.ops) {
    const std::string p = encode_payload(o);
    put_u16(b, static_cast<std::uint16_t>(p.size()));
    b += p;
  }
  put_u16(b, 0);  // end frame
  os.write(b.data(), static_cast<std::streamsize>(b.size()));
}

RankTrace parse(std::istream& is, const std::string& name) {
  const int first = is.peek();
  if (first == std::istream::traits_type::eof()) {
    throw TraceError(name + ":1: empty input, expected 'icst 1' header");
  }
  if (static_cast<unsigned char>(first) == kMagic[0]) {
    std::string data(std::istreambuf_iterator<char>(is), {});
    return BinaryParser(std::move(data), name).run();
  }
  return TextParser(is, name).run();
}

RankTrace parse_file(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  if (!f) throw TraceError(path + ": cannot open trace file");
  return parse(f, path);
}

}  // namespace icsim::replay
