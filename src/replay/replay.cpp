#include "replay/replay.hpp"

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <filesystem>
#include <limits>
#include <numeric>

namespace icsim::replay {

namespace {

[[noreturn]] void fail(const std::string& name, const std::string& msg) {
  throw TraceError((name.empty() ? std::string("trace set") : name) + ": " +
                   msg);
}

int checked_count(std::int64_t bytes, const std::string& what) {
  if (bytes > std::numeric_limits<int>::max()) {
    throw TraceError(what + " byte count " + std::to_string(bytes) +
                     " exceeds the replay limit");
  }
  return static_cast<int>(bytes);
}

}  // namespace

TraceProgram TraceProgram::load_dir(const std::string& dir) {
  std::vector<std::string> paths;
  std::error_code ec;
  for (std::filesystem::directory_iterator it(dir, ec), end; !ec && it != end;
       it.increment(ec)) {
    if (!it->is_regular_file()) continue;
    if (it->path().extension() != ".icst") continue;
    paths.push_back(it->path().string());
  }
  if (ec) fail(dir, "cannot read trace directory (" + ec.message() + ")");
  if (paths.empty()) fail(dir, "no .icst files found");
  std::sort(paths.begin(), paths.end());
  std::vector<RankTrace> traces;
  traces.reserve(paths.size());
  for (const std::string& p : paths) traces.push_back(parse_file(p));
  return from_traces(std::move(traces), dir);
}

TraceProgram TraceProgram::from_traces(std::vector<RankTrace> ranks,
                                       const std::string& name) {
  if (ranks.empty()) fail(name, "no rank traces");
  std::sort(ranks.begin(), ranks.end(),
            [](const RankTrace& a, const RankTrace& b) {
              return a.rank < b.rank;
            });
  const int world = ranks.front().size;
  if (world != static_cast<int>(ranks.size())) {
    fail(name, "world size " + std::to_string(world) + " but " +
                   std::to_string(ranks.size()) + " rank trace(s) present");
  }
  for (std::size_t i = 0; i < ranks.size(); ++i) {
    const RankTrace& t = ranks[i];
    if (t.size != world) {
      fail(name, "rank " + std::to_string(t.rank) + " declares world size " +
                     std::to_string(t.size) + ", expected " +
                     std::to_string(world));
    }
    if (t.rank != static_cast<int>(i)) {
      fail(name, "rank " + std::to_string(i) + " is " +
                     (t.rank < static_cast<int>(i) ? "duplicated" : "missing"));
    }
  }
  TraceProgram p;
  p.ranks_ = std::move(ranks);
  return p;
}

int TraceProgram::ppn() const {
  const std::string v = ranks_.front().meta_value("ppn", "1");
  const int n = std::atoi(v.c_str());
  return n >= 1 ? n : 1;
}

std::size_t TraceProgram::total_ops() const {
  std::size_t n = 0;
  for (const RankTrace& t : ranks_) n += t.ops.size();
  return n;
}

void TraceProgram::run_rank(mpi::Mpi& m) const {
  assert(m.size() == size());
  const RankTrace& t = ranks_[static_cast<std::size_t>(m.rank())];

  // Live nonblocking requests and their pinned buffers, indexed by the
  // trace's implicit request numbering (k-th isend/irecv = request k).
  // Inner vectors never move on outer growth, so posted data pointers stay
  // valid until completion.
  std::vector<mpi::Request> live;
  std::vector<std::vector<unsigned char>> pinned;
  // Scratch for blocking ops and collectives; contents are irrelevant to
  // modeled timing, only sizes and envelopes matter.
  std::vector<unsigned char> a;
  std::vector<unsigned char> b;
  const auto grow = [](std::vector<unsigned char>& v, std::int64_t n) {
    const auto need = static_cast<std::size_t>(n);
    if (v.size() < need) v.resize(need);
    return v.data();
  };

  for (const TraceOp& o : t.ops) {
    switch (o.op) {
      case Op::compute:
        m.compute(o.duration);
        break;
      case Op::send:
        m.send(grow(a, o.bytes), static_cast<std::size_t>(o.bytes), o.peer,
               o.tag);
        break;
      case Op::recv:
        m.recv(grow(a, o.bytes), static_cast<std::size_t>(o.bytes), o.peer,
               o.tag);
        break;
      case Op::isend: {
        pinned.emplace_back(static_cast<std::size_t>(o.bytes));
        live.push_back(m.isend(pinned.back().data(),
                               static_cast<std::size_t>(o.bytes), o.peer,
                               o.tag));
        break;
      }
      case Op::irecv: {
        pinned.emplace_back(static_cast<std::size_t>(o.bytes));
        live.push_back(m.irecv(pinned.back().data(),
                               static_cast<std::size_t>(o.bytes), o.peer,
                               o.tag));
        break;
      }
      case Op::wait:
        m.wait(live[static_cast<std::size_t>(o.req)]);
        break;
      case Op::test:
        (void)m.test(live[static_cast<std::size_t>(o.req)]);
        break;
      case Op::probe:
        (void)m.probe(o.peer, o.tag);
        break;
      case Op::iprobe:
        (void)m.iprobe(o.peer, o.tag);
        break;
      case Op::sendrecv:
        m.sendrecv(grow(a, o.bytes), static_cast<std::size_t>(o.bytes), o.peer,
                   o.tag, grow(b, o.bytes2),
                   static_cast<std::size_t>(o.bytes2), o.peer2, o.tag2);
        break;
      case Op::barrier:
        m.barrier();
        break;
      case Op::bcast:
        m.bcast(grow(a, o.bytes), static_cast<std::size_t>(o.bytes), o.peer);
        break;
      case Op::reduce:
        m.reduce(grow(a, o.bytes), grow(b, o.bytes),
                 static_cast<std::size_t>(o.bytes), o.red, o.peer);
        break;
      case Op::allreduce:
        m.allreduce(grow(a, o.bytes), grow(b, o.bytes),
                    static_cast<std::size_t>(o.bytes), o.red);
        break;
      case Op::allgather:
        m.allgather(grow(a, o.bytes), static_cast<std::size_t>(o.bytes),
                    grow(b, o.bytes * m.size()));
        break;
      case Op::alltoall:
        m.alltoall(grow(a, o.bytes * m.size()),
                   static_cast<std::size_t>(o.bytes),
                   grow(b, o.bytes * m.size()));
        break;
      case Op::alltoallv: {
        const int world = m.size();
        std::vector<int> scount(static_cast<std::size_t>(world));
        std::vector<int> rcount(static_cast<std::size_t>(world));
        std::vector<int> sdispl(static_cast<std::size_t>(world));
        std::vector<int> rdispl(static_cast<std::size_t>(world));
        std::int64_t stotal = 0;
        std::int64_t rtotal = 0;
        for (int r = 0; r < world; ++r) {
          const auto ri = static_cast<std::size_t>(r);
          scount[ri] = checked_count(o.send_bytes[ri], "alltoallv send");
          rcount[ri] = checked_count(o.recv_bytes[ri], "alltoallv recv");
          sdispl[ri] = checked_count(stotal, "alltoallv send displacement");
          rdispl[ri] = checked_count(rtotal, "alltoallv recv displacement");
          stotal += o.send_bytes[ri];
          rtotal += o.recv_bytes[ri];
        }
        m.alltoallv(grow(a, stotal), scount, sdispl, grow(b, rtotal), rcount,
                    rdispl);
        break;
      }
      case Op::gather:
        m.gather(grow(a, o.bytes), static_cast<std::size_t>(o.bytes),
                 grow(b, o.bytes * m.size()), o.peer);
        break;
      case Op::scan:
        switch (o.bytes) {
          case 1: (void)m.scan<std::uint8_t>(0, o.red); break;
          case 2: (void)m.scan<std::uint16_t>(0, o.red); break;
          case 4: (void)m.scan<std::uint32_t>(0, o.red); break;
          default: (void)m.scan<std::uint64_t>(0, o.red); break;
        }
        break;
    }
  }
}

}  // namespace icsim::replay
