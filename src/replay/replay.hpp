#pragma once
// Replay side of trace-driven workloads: a TraceProgram is a complete
// multi-rank .icst trace set that can drive either transport (InfiniBand
// mvapich_transport or Elan-4 quadrics_transport) exactly like a built-in
// app — each rank's fiber walks its op list and issues the same top-level
// MPI calls the captured application made.
//
// Determinism contract: replaying a capture of app X on the same
// ClusterConfig (network, nodes, ppn, seed) produces the identical
// RunStats::event_digest as the original run of X.  Payload contents never
// influence modeled timing, so replay uses scratch buffers; envelopes
// (peer, bytes, tag), op order and compute durations are what matter.

#include <string>
#include <utility>
#include <vector>

#include "mpi/mpi.hpp"
#include "replay/format.hpp"

namespace icsim::replay {

class TraceProgram {
 public:
  /// Load every `*.icst` file in `dir` (sorted by filename) and assemble a
  /// program.  Throws TraceError on parse failures or an inconsistent set
  /// (missing/duplicate ranks, mismatched world sizes or meta).
  [[nodiscard]] static TraceProgram load_dir(const std::string& dir);

  /// Assemble from in-memory traces (same consistency checks).
  [[nodiscard]] static TraceProgram from_traces(std::vector<RankTrace> ranks,
                                                const std::string& name = "");

  [[nodiscard]] int size() const { return static_cast<int>(ranks_.size()); }
  /// Processes per node, from the `ppn` meta key (default 1).
  [[nodiscard]] int ppn() const;
  /// Node count implied by size() and ppn().
  [[nodiscard]] int nodes() const {
    return (size() + ppn() - 1) / ppn();
  }
  /// The fabric the trace was captured on ("ib" / "el" / ...), or "".
  [[nodiscard]] std::string net() const {
    return ranks_.front().meta_value("net");
  }
  [[nodiscard]] const RankTrace& rank(int r) const {
    return ranks_[static_cast<std::size_t>(r)];
  }
  /// Total op count across ranks (for stats/reporting).
  [[nodiscard]] std::size_t total_ops() const;

  /// Execute this program's op list for rank `m.rank()`.  Pass as the
  /// rank_main of core::Cluster::run.  Requires m.size() == size().
  void run_rank(mpi::Mpi& m) const;

 private:
  std::vector<RankTrace> ranks_;  // index == rank
};

}  // namespace icsim::replay
