#pragma once
// The .icst trace format (version 1): a per-rank log of top-level MPI
// operations, recorded by mpi::Recorder hooks (capture) and executed by
// replay::TraceProgram (replay).
//
// Two encodings share one in-memory representation (RankTrace):
//
//   * text  — one op per line, `#` comments, human-editable; starts with
//             the header line `icst 1`.
//   * binary — starts with the 8-byte magic 89 49 43 53 54 31 0D 0A
//             ("\x89ICST1\r\n", PNG-style corruption canary), then a fixed
//             header and length-framed records, all little-endian.
//
// Both round-trip losslessly: parse(write_text(t)) == t and
// parse(write_binary(t)) == t for every valid trace.  Malformed input is
// rejected with a TraceError carrying `<name>:<line>:` (text) or
// `<name>: offset <n>:` (binary) diagnostics.  The grammar is specified in
// docs/MODEL.md §11.

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "mpi/types.hpp"
#include "sim/time.hpp"

namespace icsim::replay {

inline constexpr int kTraceVersion = 1;

/// Trace opcodes.  Numeric values are the binary-encoding opcodes and must
/// never be reordered once released (append only).
enum class Op : std::uint8_t {
  compute = 0,
  send = 1,
  isend = 2,
  recv = 3,
  irecv = 4,
  wait = 5,
  test = 6,
  probe = 7,
  iprobe = 8,
  sendrecv = 9,
  barrier = 10,
  bcast = 11,
  reduce = 12,
  allreduce = 13,
  allgather = 14,
  alltoall = 15,
  alltoallv = 16,
  gather = 17,
  scan = 18,
};

inline constexpr int kOpCount = 19;

/// One recorded operation.  Field use depends on `op`; unused fields keep
/// their defaults so defaulted equality gives lossless round-trip checks.
struct TraceOp {
  Op op = Op::barrier;

  sim::Time duration{};        ///< compute
  int peer = -1;               ///< dst (sends), src (recvs/probes), root
  std::int64_t bytes = 0;      ///< payload bytes / recv capacity / block bytes
  int tag = 0;                 ///< -1 encodes the `any` wildcard on recvs
  int peer2 = -1;              ///< sendrecv: receive-side source
  std::int64_t bytes2 = 0;     ///< sendrecv: receive capacity
  int tag2 = 0;                ///< sendrecv: receive tag (-1 = any)
  std::uint64_t req = 0;       ///< wait/test: 0-based isend/irecv sequence no.
  mpi::ReduceOp red = mpi::ReduceOp::sum;
  std::vector<std::int64_t> send_bytes;  ///< alltoallv: bytes per destination
  std::vector<std::int64_t> recv_bytes;  ///< alltoallv: bytes per source

  bool operator==(const TraceOp&) const = default;
};

/// A complete single-rank trace.
struct RankTrace {
  int version = kTraceVersion;
  int rank = 0;
  int size = 1;
  /// Free-form provenance (net, nodes, ppn, app ...), order-preserving.
  std::vector<std::pair<std::string, std::string>> meta;
  std::vector<TraceOp> ops;

  bool operator==(const RankTrace&) const = default;

  /// First value stored under `key`, or `fallback` when absent.
  [[nodiscard]] std::string meta_value(const std::string& key,
                                       const std::string& fallback = "") const;
};

/// Parse/validation failure; what() starts with the input name and a line
/// number (text) or byte offset (binary).
class TraceError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Canonical lower-case mnemonic for an opcode ("allreduce", ...).
[[nodiscard]] const char* op_name(Op op);

/// Mnemonic -> opcode; returns false when `name` is not an opcode.
[[nodiscard]] bool op_from_name(const std::string& name, Op* out);

/// Canonical name for a reduction ("sum", "min", "max", "prod").
[[nodiscard]] const char* reduce_name(mpi::ReduceOp op);

void write_text(std::ostream& os, const RankTrace& t);
void write_binary(std::ostream& os, const RankTrace& t);

/// Parse either encoding (sniffed from the first byte) and validate.
/// `name` labels diagnostics (usually the file path).  Throws TraceError.
[[nodiscard]] RankTrace parse(std::istream& is, const std::string& name);

/// Convenience: open `path` (binary mode) and parse it.
[[nodiscard]] RankTrace parse_file(const std::string& path);

/// Structural validation shared by both parsers: header sanity, peer/root
/// ranges, wait/test referencing an already-issued request, alltoallv list
/// lengths, scan widths.  Throws TraceError; `name` labels diagnostics.
void validate(const RankTrace& t, const std::string& name);

}  // namespace icsim::replay
