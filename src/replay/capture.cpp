#include "replay/capture.hpp"

#include <filesystem>
#include <fstream>
#include <stdexcept>

namespace icsim::replay {

CaptureSession::CaptureSession(
    int nranks, std::vector<std::pair<std::string, std::string>> meta) {
  recs_.reserve(static_cast<std::size_t>(nranks));
  for (int r = 0; r < nranks; ++r) {
    recs_.emplace_back(r, nranks);
    recs_.back().trace().meta = meta;
  }
}

void CaptureSession::write(const std::string& dir, bool binary) const {
  std::filesystem::create_directories(dir);
  for (const CaptureRecorder& rec : recs_) {
    const std::string path =
        (std::filesystem::path(dir) /
         ("rank" + std::to_string(rec.trace().rank) + ".icst"))
            .string();
    std::ofstream f(path, std::ios::binary);
    if (!f) {
      throw std::runtime_error("cannot write trace file: " + path);
    }
    if (binary) {
      write_binary(f, rec.trace());
    } else {
      write_text(f, rec.trace());
    }
  }
}

}  // namespace icsim::replay
