#include "traffic/plan.hpp"

#include <algorithm>
#include <cstddef>
#include <set>
#include <stdexcept>
#include <string>
#include <vector>

#include "sim/rng.hpp"

namespace icsim::traffic {

const char* to_string(ArrivalKind k) {
  switch (k) {
    case ArrivalKind::fixed: return "fixed";
    case ArrivalKind::poisson: return "poisson";
    case ArrivalKind::mmpp: return "mmpp";
  }
  return "?";
}

const char* to_string(PatternKind k) {
  switch (k) {
    case PatternKind::uniform: return "uniform";
    case PatternKind::hotspot: return "hotspot";
    case PatternKind::incast: return "incast";
    case PatternKind::shuffle: return "shuffle";
    case PatternKind::rpc: return "rpc";
    case PatternKind::pairs: return "pairs";
  }
  return "?";
}

std::uint64_t Plan::offered_in_window() const {
  std::uint64_t n = 0;
  for (const auto& sched : clients) {
    for (const auto& rq : sched) {
      if (rq.arrival >= warmup && rq.arrival < horizon) ++n;
    }
  }
  return n;
}

namespace {

/// Interarrival-gap sampler (seconds), one per client stream.
class GapSampler {
 public:
  GapSampler(const ArrivalConfig& cfg, double rate)
      : cfg_(cfg),
        rate_(rate),
        mmpp_(cfg.kind == ArrivalKind::mmpp
                  ? sim::Mmpp::from_average(rate, cfg.burst_factor,
                                            cfg.burst_frac,
                                            cfg.burst_dwell_us * 1e-6)
                  : sim::Mmpp({1.0, 1.0, 1.0, 1.0})) {}

  [[nodiscard]] double next(sim::Rng& rng) {
    switch (cfg_.kind) {
      case ArrivalKind::fixed: return 1.0 / rate_;
      case ArrivalKind::poisson: return rng.exponential(rate_);
      case ArrivalKind::mmpp: return mmpp_.next_interarrival(rng);
    }
    return 1.0 / rate_;
  }

 private:
  ArrivalConfig cfg_;
  double rate_;
  sim::Mmpp mmpp_;
};

/// Destination chooser: all pattern randomness, drawn at plan time.
class DstChooser {
 public:
  DstChooser(const PatternConfig& cfg, int ranks, int me)
      : cfg_(cfg), ranks_(ranks), me_(me) {}

  [[nodiscard]] std::vector<int> next(sim::Rng& rng, int req_index) {
    switch (cfg_.kind) {
      case PatternKind::uniform: return {other_uniform(rng)};
      case PatternKind::hotspot: {
        // Hot draw: one of the k hot ranks (excluding self); a hot-only
        // degenerate case (self is the sole hot rank) falls through to the
        // uniform background.
        if (rng.canonical() < cfg_.hot_frac) {
          const int hot = std::min(cfg_.hot_count, ranks_);
          const int choices = hot - (me_ < hot ? 1 : 0);
          if (choices > 0) {
            int d = static_cast<int>(rng.pick(static_cast<std::size_t>(choices)));
            if (me_ < hot && d >= me_) ++d;
            return {d};
          }
        }
        return {other_uniform(rng)};
      }
      case PatternKind::incast: return {0};
      case PatternKind::shuffle:
        // Deterministic all-to-all: walk every peer round-robin, offset by
        // own rank so the fabric sees a rotating permutation, not N-to-1.
        return {(me_ + 1 + req_index % (ranks_ - 1)) % ranks_};
      case PatternKind::rpc: {
        const int fan = std::min(cfg_.fan_degree, ranks_ - 1);
        std::vector<int> dsts;
        dsts.reserve(static_cast<std::size_t>(fan));
        while (static_cast<int>(dsts.size()) < fan) {
          const int d = other_uniform(rng);
          if (std::find(dsts.begin(), dsts.end(), d) == dsts.end()) {
            dsts.push_back(d);
          }
        }
        return dsts;
      }
      case PatternKind::pairs: {
        for (const auto& [s, d] : cfg_.flows) {
          if (s == me_) return {d};
        }
        return {};  // not a flow source (build_plan gives it no schedule)
      }
    }
    return {other_uniform(rng)};
  }

 private:
  [[nodiscard]] int other_uniform(sim::Rng& rng) {
    int d = static_cast<int>(rng.pick(static_cast<std::size_t>(ranks_) - 1));
    if (d >= me_) ++d;
    return d;
  }

  PatternConfig cfg_;
  int ranks_;
  int me_;
};

void validate(const TrafficConfig& cfg, int ranks) {
  auto fail = [](const std::string& what) {
    throw std::invalid_argument("traffic::build_plan: " + what);
  };
  if (ranks < 2) fail("need at least 2 ranks");
  if (cfg.load <= 0.0) fail("load must be positive");
  if (cfg.requests_per_client <= 0) fail("requests_per_client must be > 0");
  if (cfg.request_bytes == 0) fail("request_bytes must be > 0");
  if (cfg.warmup_frac < 0.0 || cfg.warmup_frac >= 1.0) {
    fail("warmup_frac must be in [0, 1)");
  }
  if (cfg.pattern.kind == PatternKind::hotspot && cfg.pattern.hot_count < 1) {
    fail("hotspot needs hot_count >= 1");
  }
  if (cfg.pattern.kind == PatternKind::rpc && cfg.pattern.fan_degree < 1) {
    fail("rpc needs fan_degree >= 1");
  }
  if (cfg.pattern.kind == PatternKind::pairs) {
    if (cfg.pattern.flows.empty()) fail("pairs needs a flow list");
    for (const auto& [s, d] : cfg.pattern.flows) {
      if (s < 0 || s >= ranks || d < 0 || d >= ranks || s == d) {
        fail("pairs flow endpoints out of range");
      }
    }
  }
}

}  // namespace

double calibrated_capacity_Bps(core::Network net, std::size_t request_bytes) {
  // A closed-loop window keeps the pipe full without queueing unboundedly,
  // so the measured interval converges on the serving rate itself.  Tags
  // cycle a bounded window like the real serving loop, so the IB
  // registration cache sees a reusable pinned pool, not a fresh buffer per
  // request; the warmup rounds absorb the cold pins and the window ramp.
  constexpr int kRounds = 88;
  constexpr int kWarmup = 24;
  constexpr int kWindow = 16;
  constexpr int kTags = 16;

  core::ClusterConfig cc;
  cc.network = net;
  cc.nodes = 2;
  cc.env_overrides = false;  // a user's ICSIM_FAULTS/ICSIM_TRACE must not
                             // leak into the capacity measurement
  core::Cluster cluster(cc);
  sim::Time t0, t1;
  cluster.run([&](mpi::Mpi& m) {
    std::vector<std::byte> payload(std::max<std::size_t>(request_bytes, 1));
    if (m.rank() == 0) {
      std::vector<mpi::Request> reqs(kRounds), acks(kRounds);
      auto reap = [&](int i) {
        m.wait(reqs[i]);
        m.wait(acks[i]);
        if (i == kWarmup - 1) t0 = m.engine().now();
        if (i == kRounds - 1) t1 = m.engine().now();
      };
      for (int i = 0; i < kRounds; ++i) {
        if (i >= kWindow) reap(i - kWindow);
        acks[i] = m.irecv(payload.data(), 0, 1, i % kTags);
        reqs[i] = m.isend(payload.data(), request_bytes, 1, i % kTags);
      }
      for (int i = kRounds - kWindow; i < kRounds; ++i) reap(i);
    } else {
      std::vector<std::byte> buf(std::max<std::size_t>(request_bytes, 1));
      std::vector<mpi::Request> acks;
      acks.reserve(kRounds);
      for (int i = 0; i < kRounds; ++i) {
        (void)m.recv(buf.data(), buf.size(), 0, i % kTags);
        acks.push_back(m.isend(buf.data(), 0, 0, i % kTags));
      }
      m.waitall(acks);
    }
  });
  return static_cast<double>(kRounds - kWarmup) *
         static_cast<double>(request_bytes) / (t1 - t0).to_seconds();
}

Plan build_plan(const TrafficConfig& cfg, core::Network net, int ranks) {
  validate(cfg, ranks);

  Plan plan;
  plan.ranks = ranks;
  plan.clients.resize(static_cast<std::size_t>(ranks));
  plan.client_targets.resize(static_cast<std::size_t>(ranks));
  plan.server_sources.assign(static_cast<std::size_t>(ranks), 0);

  // Capacity base for the load axis: the *measured* serving rate at this
  // request size (see calibrated_capacity_Bps), not raw line rate.  The
  // remaining gap between the offered-load knee and 1.0 is then a real
  // contention result — shared servers, shared cables, ack amplification —
  // not an artifact of quoting loads against unreachable link speed.
  const double capacity_Bps = calibrated_capacity_Bps(net, cfg.request_bytes);

  const bool rpc = cfg.pattern.kind == PatternKind::rpc;
  const int fan = rpc ? std::min(cfg.pattern.fan_degree, ranks - 1) : 1;
  const std::uint64_t injected_per_request =
      static_cast<std::uint64_t>(fan) * cfg.request_bytes;
  plan.bytes_per_request =
      injected_per_request +
      (rpc ? static_cast<std::uint64_t>(fan) * cfg.response_bytes : 0);

  // Per-client injection rate in requests/sec.  Incast divides the single
  // receiver's serving capacity across the N-1 clients; everything else
  // offers `load` of one pair's capacity per client.
  double client_Bps = cfg.load * capacity_Bps;
  if (cfg.pattern.kind == PatternKind::incast) {
    client_Bps /= static_cast<double>(ranks - 1);
  }
  const double req_rate =
      client_Bps / static_cast<double>(injected_per_request);
  plan.per_client_mbs = client_Bps / 1e6;

  // The horizon is the *expected* schedule span — a fixed function of the
  // config, never of the random draws — so the measurement window is
  // identical across arrival processes at equal load.
  const double span_s =
      static_cast<double>(cfg.requests_per_client) / req_rate;
  plan.horizon = sim::Time::sec(span_s);
  plan.warmup = sim::Time::sec(span_s * cfg.warmup_frac);

  sim::Rng root(cfg.seed);
  std::vector<std::set<int>> targets(static_cast<std::size_t>(ranks));
  for (int r = 0; r < ranks; ++r) {
    // One child stream per rank, forked in rank order: rank k's schedule
    // does not depend on how many requests earlier ranks drew.
    sim::Rng rng = root.fork();
    const bool is_client =
        !(cfg.pattern.kind == PatternKind::incast && r == 0) &&
        !(cfg.pattern.kind == PatternKind::pairs &&
          std::none_of(cfg.pattern.flows.begin(), cfg.pattern.flows.end(),
                       [r](const auto& f) { return f.first == r; }));
    if (!is_client) continue;

    GapSampler gaps(cfg.arrival, req_rate);
    DstChooser dsts(cfg.pattern, ranks, r);
    auto& sched = plan.clients[static_cast<std::size_t>(r)];
    sched.reserve(static_cast<std::size_t>(cfg.requests_per_client));
    double t = 0.0;
    for (int i = 0; i < cfg.requests_per_client; ++i) {
      t += gaps.next(rng);
      PlannedRequest rq;
      rq.arrival = sim::Time::sec(t);
      rq.dsts = dsts.next(rng, i);
      for (const int d : rq.dsts) targets[static_cast<std::size_t>(r)].insert(d);
      sched.push_back(std::move(rq));
    }
  }

  for (int r = 0; r < ranks; ++r) {
    const auto& tset = targets[static_cast<std::size_t>(r)];
    plan.client_targets[static_cast<std::size_t>(r)].assign(tset.begin(),
                                                            tset.end());
    for (const int d : tset) {
      ++plan.server_sources[static_cast<std::size_t>(d)];
    }
  }
  return plan;
}

}  // namespace icsim::traffic
