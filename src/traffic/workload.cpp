#include "traffic/workload.hpp"

#include <algorithm>
#include <cstddef>
#include <vector>

#include "sim/blocking.hpp"
#include "sim/time.hpp"

namespace icsim::traffic {
namespace {

/// Requests travel in their own matching context so a server's wildcard
/// receive ring can never steal a response addressed to the client role of
/// the same rank (responses use the world context).
constexpr int kReqContext = 1;

/// Tags are the request id modulo this window, so a long run cycles through
/// a bounded tag set.  Correctness comes from per-source FIFO matching: the
/// i-th posted receive on one (source, tag, context) chain completes with
/// the i-th send on it, and a server answers requests in processing order,
/// so even concurrent same-tag requests pair with their own responses.  The
/// bounded set is also what lets the IB registration cache behave like the
/// reusable pinned buffer pool a real server keeps (the transport keys pins
/// by tag): a window much larger than the pool would re-pin every
/// rendezvous and pay the ~70us registration cost per request.
constexpr int kTagWindow = 32;

/// Response tags sit one window above the request tags.
constexpr int kRespBase = kTagWindow;

/// FIN tag; far outside both windows.
constexpr int kFinTag = 1 << 29;

/// Wildcard receives a server keeps posted at once.  Deep enough that a
/// burst does not go "unexpected" merely because the ring wrapped; the
/// matcher queues overflow anyway, so this is a performance knob, not a
/// correctness one.
constexpr int kServerRing = 64;

}  // namespace

Workload::Workload(const TrafficConfig& cfg, core::Network net, int ranks)
    : cfg_(cfg), plan_(build_plan(cfg, net, ranks)) {}

void Workload::record(sim::Time scheduled, sim::Time completed) {
  if (scheduled < plan_.warmup || scheduled >= plan_.horizon) return;
  if (completed <= plan_.horizon) {
    ++delivered_;
  } else {
    ++stragglers_;  // late, but still in the tail — omitting it would lie
  }
  const double us = (completed - scheduled).to_us();
  sojourn_sum_us_ += us;
  sojourn_us_.add(us);
}

void Workload::record_drop(sim::Time scheduled) {
  if (scheduled < plan_.warmup || scheduled >= plan_.horizon) return;
  ++dropped_;
}

void Workload::rank_main(mpi::Mpi& m) {
  const int me = m.rank();
  sim::Engine& eng = m.engine();
  const auto& sched = plan_.clients[static_cast<std::size_t>(me)];
  const int fin_quota = plan_.server_sources[static_cast<std::size_t>(me)];
  const bool rpc = cfg_.pattern.kind == PatternKind::rpc;
  // Every request is answered: RPCs with a payload, everything else with a
  // 0-byte ack.  Sojourn is measured at the client, scheduled arrival ->
  // last response's transport-layer completion — the client-observed
  // request-response time a serving SLO is written against.
  const std::size_t resp_bytes = rpc ? cfg_.response_bytes : 0;

  // ---- server side: a ring of preposted wildcard receives, processed in
  // posted order (per-source FIFO matching makes FIN counting exact: a FIN
  // is processed only after every earlier request from that client).
  struct Slot {
    mpi::Request rq;
    std::vector<std::byte> buf;
  };
  std::vector<Slot> ring;
  std::size_t head = 0;
  int fins_seen = 0;
  std::vector<mpi::Request> resp_sends;
  std::vector<std::byte> resp_payload(std::max<std::size_t>(resp_bytes, 1));
  if (fin_quota > 0) {
    ring.resize(kServerRing);
    for (Slot& s : ring) {
      s.buf.resize(std::max<std::size_t>(cfg_.request_bytes, 1));
      s.rq = m.irecv(s.buf.data(), s.buf.size(), mpi::kAnySource, mpi::kAnyTag,
                     kReqContext);
    }
  }

  // ---- client side
  struct Outstanding {
    sim::Time scheduled;
    std::vector<mpi::Request> sends;
    std::vector<mpi::Request> resps;
  };
  std::vector<Outstanding> out;
  std::vector<std::byte> req_payload(std::max<std::size_t>(cfg_.request_bytes, 1));
  std::vector<std::byte> resp_sink(std::max<std::size_t>(resp_bytes, 1));
  std::size_t next = 0;
  bool fins_sent = false;
  std::vector<mpi::Request> fin_sends;

  for (;;) {
    // Serve: drain completed ring slots in order.  m.test() is what drives
    // host-side (MVAPICH) progress — polling completion flags would stall
    // rendezvous transfers.
    while (fins_seen < fin_quota && m.test(ring[head].rq)) {
      Slot& s = ring[head];
      const mpi::Status st = s.rq.status();
      if (st.tag == kFinTag) {
        ++fins_seen;
      } else {
        if (cfg_.service > sim::Time::zero()) m.compute(cfg_.service);
        resp_sends.push_back(m.isend(resp_payload.data(), resp_bytes,
                                     st.source, kRespBase + st.tag));
      }
      if (fins_seen < fin_quota) {
        s.rq = m.irecv(s.buf.data(), s.buf.size(), mpi::kAnySource,
                       mpi::kAnyTag, kReqContext);
      } else {
        s.rq = mpi::Request{};  // done serving; leftover posted slots idle
      }
      head = (head + 1) % ring.size();
    }
    std::erase_if(resp_sends, [&m](mpi::Request& r) { return m.test(r); });

    // Harvest finished client requests: complete at fan-in, i.e. the latest
    // transport-layer completion among the responses.
    std::erase_if(out, [&](Outstanding& o) {
      for (mpi::Request& r : o.sends) {
        if (!m.test(r)) return false;
      }
      for (mpi::Request& r : o.resps) {
        if (!m.test(r)) return false;
      }
      sim::Time done = sim::Time::zero();
      for (mpi::Request& r : o.resps) {
        done = std::max(done, r.state()->completed_at);
      }
      record(o.scheduled, done);
      return true;
    });

    // Inject every request whose scheduled arrival has come — never gated on
    // completions; that is what "open loop" means.
    while (next < sched.size() && sched[next].arrival <= eng.now()) {
      const PlannedRequest& rq = sched[next];
      if (cfg_.client_backlog_cap != 0 &&
          out.size() >= cfg_.client_backlog_cap) {
        record_drop(rq.arrival);
        ++next;
        continue;
      }
      const int tag = static_cast<int>(next) % kTagWindow;
      Outstanding o;
      o.scheduled = rq.arrival;
      // Prepost the response receives so the replies land matched.  All
      // responses share one sink buffer — their content is not modeled.
      for (const int d : rq.dsts) {
        o.resps.push_back(
            m.irecv(resp_sink.data(), resp_sink.size(), d, kRespBase + tag));
      }
      for (const int d : rq.dsts) {
        o.sends.push_back(
            m.isend(req_payload.data(), cfg_.request_bytes, d, tag,
                    kReqContext));
      }
      out.push_back(std::move(o));
      ++next;
    }

    // Schedule exhausted: tell every server this client may target that
    // nothing further is coming (0-byte FIN).  Per-source FIFO orders the
    // FIN behind all real requests, dropped ones excepted by construction.
    if (!fins_sent && next >= sched.size()) {
      for (const int d : plan_.client_targets[static_cast<std::size_t>(me)]) {
        fin_sends.push_back(
            m.isend(req_payload.data(), 0, d, kFinTag, kReqContext));
      }
      fins_sent = true;
    }

    const bool serving = fins_seen < fin_quota;
    const bool in_flight = !out.empty() || !resp_sends.empty();
    if (!serving && !in_flight && next >= sched.size()) break;

    // Sleep: a pure injector with nothing in flight jumps straight to its
    // next arrival; anyone serving or awaiting completions wakes every poll
    // quantum to keep driving transport progress.
    if (next < sched.size()) {
      const sim::Time gap = sched[next].arrival - eng.now();
      sim::sleep_for(eng, serving || in_flight ? std::min(cfg_.poll, gap)
                                               : gap);
    } else {
      sim::sleep_for(eng, cfg_.poll);
    }
  }

  // Only the FIN sends can still be in flight here (each peer's ring stays
  // posted until it has our FIN, so this cannot deadlock).
  m.waitall(fin_sends);
}

RunStats Workload::stats() const {
  RunStats s;
  s.offered = plan_.offered_in_window();
  s.delivered = delivered_;
  s.stragglers = stragglers_;
  s.dropped = dropped_;
  const double window_s = (plan_.horizon - plan_.warmup).to_seconds();
  if (window_s > 0.0) {
    const auto bytes = static_cast<double>(plan_.bytes_per_request);
    s.offered_mbs = static_cast<double>(s.offered) * bytes / window_s / 1e6;
    s.delivered_mbs =
        static_cast<double>(s.delivered) * bytes / window_s / 1e6;
  }
  s.sojourn_us = sojourn_us_;
  if (sojourn_us_.total() > 0) {
    s.mean_us = sojourn_sum_us_ / static_cast<double>(sojourn_us_.total());
    s.p50_us = sojourn_us_.p50();
    s.p99_us = sojourn_us_.p99();
    s.p999_us = sojourn_us_.p999();
    s.max_us = sojourn_us_.max_seen();
  }
  return s;
}

}  // namespace icsim::traffic
