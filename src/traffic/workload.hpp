#pragma once
// Open-loop workload execution: runs a traffic::Plan on a Cluster.
//
// One Workload drives one run.  Build it, hand rank_main to Cluster::run,
// then read stats().  Every rank executes the same event loop, playing
// client (inject scheduled requests), server (absorb them, answer RPCs), or
// both, depending on what the plan assigned it.
//
// The loop is open-loop by construction: a request is posted when its
// *scheduled* arrival time comes, never gated on earlier completions (except
// through the optional admission cap, whose rejections are counted as
// drops).  Sojourn times are measured from the scheduled arrival to the
// transport-layer completion timestamp (RequestState::completed_at), so
// neither a busy injector nor a lazy harvest loop can hide queueing delay —
// the coordinated-omission-free measurement discipline.

#include <cstdint>

#include "core/cluster.hpp"
#include "mpi/mpi.hpp"
#include "sim/stats.hpp"
#include "traffic/plan.hpp"
#include "traffic/traffic.hpp"

namespace icsim::traffic {

class Workload {
 public:
  /// Materializes the plan up front (all randomness is consumed here).
  /// `ranks` must equal the cluster's rank count at run time.
  Workload(const TrafficConfig& cfg, core::Network net, int ranks);

  /// The SPMD body; pass as `[&](mpi::Mpi& m) { w.rank_main(m); }`.
  /// Single-run object: build a fresh Workload for each run.
  void rank_main(mpi::Mpi& m);

  /// Aggregate results; meaningful after Cluster::run returned.
  [[nodiscard]] RunStats stats() const;

  [[nodiscard]] const Plan& plan() const { return plan_; }
  [[nodiscard]] const TrafficConfig& config() const { return cfg_; }

 private:
  // Ranks share one engine thread (fibers), so plain members suffice as the
  // cross-rank lifecycle tracker.
  void record(sim::Time scheduled, sim::Time completed);
  void record_drop(sim::Time scheduled);

  TrafficConfig cfg_;
  Plan plan_;

  std::uint64_t delivered_ = 0;   ///< in-window, completed by the horizon
  std::uint64_t stragglers_ = 0;  ///< in-window, completed after the horizon
  std::uint64_t dropped_ = 0;     ///< in-window admission-cap rejections
  double sojourn_sum_us_ = 0.0;
  sim::Histogram sojourn_us_ = sim::Histogram::log_spaced(0.5, 1e7);
};

}  // namespace icsim::traffic
