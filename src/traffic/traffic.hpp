#pragma once
// Open-loop traffic generation with SLO-grade latency reporting.
//
// The paper's workloads are closed-loop: every rank computes, sends, and
// waits, so offered load collapses to match the fabric.  Serving traffic is
// the opposite regime — requests arrive at a configured rate whether or not
// earlier ones finished, and the figure of merit is the sojourn-time tail
// (p50/p99/p999), not completion time.  This subsystem drives either fabric
// with such arrivals:
//
//   * arrival processes  — fixed-rate, Poisson, and two-state MMPP (bursty),
//     sampled entirely at *plan-build* time from seed-deterministic
//     sim::Rng streams, so a run consumes no randomness and the event
//     digest is reproducible for any sweep -j N;
//   * spatial patterns   — uniform random, hotspot (k hot destinations),
//     incast (N -> 1), all-to-all shuffle, RPC fan-out/fan-in with
//     configurable fan degree and response sizes, and explicit flow pairs
//     (for degraded-fabric studies that pin flows across one cut);
//   * lifecycle tracking — per-request sojourn times measured from the
//     *scheduled* arrival (so coordinated omission cannot hide queueing)
//     into a log-bucketed sim::Histogram, plus offered vs delivered load
//     and a saturation/drop summary in traffic::RunStats.
//
// See docs/MODEL.md section 12 for the measurement methodology and the
// determinism contract.

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "sim/stats.hpp"
#include "sim/time.hpp"

namespace icsim::traffic {

/// When do requests arrive?  All three processes are parameterized by the
/// mean rate the plan derives from `TrafficConfig::load`; the knobs here
/// shape only the burstiness around that mean.
enum class ArrivalKind {
  fixed,    ///< deterministic interarrival gap (rate-paced injector)
  poisson,  ///< memoryless arrivals, the open-loop default
  mmpp,     ///< two-state Markov-modulated Poisson process (bursty)
};

struct ArrivalConfig {
  ArrivalKind kind = ArrivalKind::poisson;
  // MMPP shape (ignored by the other kinds):
  double burst_factor = 4.0;     ///< burst-state rate = factor * calm rate
  double burst_frac = 0.2;       ///< stationary fraction of time bursting
  double burst_dwell_us = 50.0;  ///< mean burst-state dwell time
};

/// Who talks to whom?
enum class PatternKind {
  uniform,  ///< each request targets a uniformly random other rank
  hotspot,  ///< a fraction of requests concentrates on k hot ranks
  incast,   ///< every rank targets rank 0 (N -> 1)
  shuffle,  ///< deterministic round-robin over all peers (all-to-all)
  rpc,      ///< fan-out to `fan_degree` servers, completion at fan-in
  pairs,    ///< explicit (src, dst) flow list; other ranks idle
};

[[nodiscard]] const char* to_string(ArrivalKind k);
[[nodiscard]] const char* to_string(PatternKind k);

struct PatternConfig {
  PatternKind kind = PatternKind::uniform;
  int hot_count = 2;      ///< hotspot: hot destinations are ranks [0, k)
  double hot_frac = 0.5;  ///< hotspot: fraction of traffic aimed at them
  int fan_degree = 4;     ///< rpc: servers per request
  std::vector<std::pair<int, int>> flows;  ///< pairs: the pinned flow list
};

struct TrafficConfig {
  ArrivalConfig arrival;
  PatternConfig pattern;
  /// Offered load as a fraction of the *measured* serving capacity at this
  /// request size (traffic::calibrated_capacity_Bps — a closed-loop 2-rank
  /// calibration through the real MPI stack; raw line rate is unreachable
  /// at serving-sized messages).  >1 oversubscribes: the fabric cannot keep
  /// up and the sojourn tail must diverge.
  double load = 0.5;
  std::uint32_t request_bytes = 1024;
  std::uint32_t response_bytes = 1024;  ///< rpc responses
  /// Per-request server CPU time charged before an RPC response is sent.
  sim::Time service = sim::Time::zero();
  /// Requests scheduled per client (warmup portion included).
  int requests_per_client = 256;
  /// Leading fraction of the schedule excluded from all statistics.
  double warmup_frac = 0.1;
  /// Client admission cap: a new arrival is dropped (and counted) when this
  /// many requests are already outstanding at the client.  0 = unbounded.
  std::uint32_t client_backlog_cap = 0;
  /// Server/client progress-loop polling quantum; bounds how stale a
  /// rank's event loop may be, not any measured timestamp (completion
  /// times come from the transport layer).
  sim::Time poll = sim::Time::us(2.0);
  std::uint64_t seed = 0x7aff1c;
};

/// What one traffic run reports.  Counters cover the measurement window
/// [warmup, horizon) only; sojourn quantiles are exact-tail log-bucketed
/// (sim::Histogram::log_spaced).
struct RunStats {
  std::uint64_t offered = 0;     ///< requests scheduled in the window
  std::uint64_t delivered = 0;   ///< completed by the horizon
  std::uint64_t stragglers = 0;  ///< completed only after the horizon
  std::uint64_t dropped = 0;     ///< admission-cap drops (saturation signal)
  double offered_mbs = 0.0;      ///< scheduled payload rate over the window
  double delivered_mbs = 0.0;    ///< completed payload rate over the window
  double mean_us = 0.0;
  double p50_us = 0.0;
  double p99_us = 0.0;
  double p999_us = 0.0;
  double max_us = 0.0;
  sim::Histogram sojourn_us = sim::Histogram::log_spaced(0.5, 1e7);

  /// delivered/offered in [0, 1]; 1.0 when nothing was scheduled.
  [[nodiscard]] double delivery_ratio() const {
    return offered == 0 ? 1.0
                        : static_cast<double>(delivered) /
                              static_cast<double>(offered);
  }
};

}  // namespace icsim::traffic
