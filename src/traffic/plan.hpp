#pragma once
// Deterministic traffic plans.
//
// A Plan is the fully materialized schedule of one open-loop run: every
// request's scheduled arrival time and destination set, for every client
// rank, drawn up front from seed-deterministic sim::Rng streams (one child
// stream per rank, forked in rank order).  The simulation itself consumes
// no randomness — which is what makes the event digest identical for any
// sweep thread count — and the termination protocol can be exact: a server
// knows precisely which clients may target it, so a FIN from each of them
// means no more traffic is coming.

#include <cstdint>
#include <vector>

#include "core/cluster.hpp"
#include "sim/time.hpp"
#include "traffic/traffic.hpp"

namespace icsim::traffic {

/// One scheduled request at one client.
struct PlannedRequest {
  sim::Time arrival;      ///< absolute scheduled arrival time
  std::vector<int> dsts;  ///< one server, or `fan_degree` of them for rpc
};

struct Plan {
  int ranks = 0;
  /// Per-client schedule, ascending arrival time; `id` of a request is its
  /// index here (embedded in message tags, so a server can look the
  /// scheduled arrival back up without per-request bookkeeping).
  std::vector<std::vector<PlannedRequest>> clients;
  /// Per-client sorted unique destination set (who gets this client's FIN).
  std::vector<std::vector<int>> client_targets;
  /// Per-rank count of clients whose target set includes it (how many FINs
  /// a server must collect before it may stop serving).
  std::vector<int> server_sources;
  /// Measurement window: statistics cover arrivals in [warmup, horizon).
  sim::Time warmup;
  sim::Time horizon;
  /// Payload bytes one request moves (fan_degree * (req + resp) for rpc).
  std::uint64_t bytes_per_request = 0;
  /// Derived per-client injection rate, for reporting.
  double per_client_mbs = 0.0;

  [[nodiscard]] bool is_client(int rank) const {
    return !clients[static_cast<std::size_t>(rank)].empty();
  }
  [[nodiscard]] bool is_server(int rank) const {
    return server_sources[static_cast<std::size_t>(rank)] > 0;
  }
  /// Requests scheduled inside the measurement window, across all clients.
  [[nodiscard]] std::uint64_t offered_in_window() const;
};

/// Measured serving capacity of `net` at this request size, in bytes/sec:
/// steady-state goodput of a deterministic two-rank closed-loop calibration
/// run (a window of 16 outstanding request/ack round trips through the real
/// MPI stack, so protocol choice, host overheads and matching are all
/// priced in).  build_plan normalizes `load` against this — load 1.0 means
/// "as fast as one client/server pair can actually serve requests of this
/// size", not raw line rate.  The distinction is the paper's own story:
/// Figure 1's bandwidth curves put achievable goodput at serving-sized
/// messages far below link speed (IB 8KB ~249 MB/s on a 1250 MB/s link),
/// so line-rate-normalized "load" would saturate the whole sweep.
[[nodiscard]] double calibrated_capacity_Bps(core::Network net,
                                             std::size_t request_bytes);

/// Materialize the schedule for `ranks` ranks on `net`'s calibrated fabric.
/// Deterministic: same (config, net, ranks) -> same plan, on any platform.
/// Throws std::invalid_argument on nonsensical configs (load <= 0, too few
/// ranks for the pattern, flow ranks out of range, ...).
[[nodiscard]] Plan build_plan(const TrafficConfig& cfg, core::Network net,
                              int ranks);

}  // namespace icsim::traffic
