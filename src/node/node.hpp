#pragma once
// Host node model: a dual-CPU server with a shared memory bus and a shared
// PCI-X segment for the high-speed interconnect.
//
// This reproduces the study's compute platform (Dell PowerEdge 1750: dual
// 3.06 GHz Xeon, ServerWorks GC-LE, 133 MHz / 64-bit PCI-X).  The shared
// resources are what make 1 PPN and 2 PPN behave differently:
//   * both ranks' host-side message copies contend on the memory bus;
//   * both ranks' NIC DMA traffic contends on the one PCI-X segment;
//   * concurrent compute phases slow each other down by a calibrated
//     memory-contention factor (the Xeons share one front-side bus).

#include <cstdint>
#include <functional>
#include <stdexcept>
#include <vector>

#include "sim/blocking.hpp"
#include "sim/engine.hpp"
#include "sim/resource.hpp"
#include "sim/time.hpp"

namespace icsim::node {

struct NodeConfig {
  int cpus = 2;
  /// Sustained host copy bandwidth (bounded by the FSB, not peak DDR).
  sim::Bandwidth memory_copy_bandwidth = sim::Bandwidth::gb_per_sec(1.5);
  sim::Time memory_copy_overhead = sim::Time::ns(80);  ///< per copy call
  /// 133 MHz x 64 bit PCI-X raw rate; per-DMA overhead covers bus
  /// arbitration and the read-request round trip.
  sim::Bandwidth pcix_bandwidth = sim::Bandwidth::mb_per_sec(1066.0);
  sim::Time pcix_dma_overhead = sim::Time::ns(250);
  /// Multiplier applied to a compute section while the sibling CPU is also
  /// computing (shared front-side bus).  1.0 disables the effect.
  double smp_compute_slowdown = 1.08;
};

class Node {
 public:
  Node(sim::Engine& engine, int id, const NodeConfig& config)
      : engine_(engine),
        id_(id),
        cfg_(config),
        membus_(engine, "membus", config.memory_copy_bandwidth,
                config.memory_copy_overhead),
        pcix_(engine, "pcix", config.pcix_bandwidth, config.pcix_dma_overhead) {
    if (config.cpus < 1) throw std::invalid_argument("Node: cpus must be >= 1");
  }

  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  [[nodiscard]] int id() const { return id_; }
  [[nodiscard]] int cpus() const { return cfg_.cpus; }
  [[nodiscard]] const NodeConfig& config() const { return cfg_; }

  /// Blocking (fiber) compute phase of modeled duration `d`.  While more
  /// than one CPU is inside a compute phase, the duration stretches by the
  /// configured SMP slowdown.
  void compute(sim::Time d) {
    const bool contended = active_compute_ > 0;
    ++active_compute_;
    const double factor =
        contended && cfg_.cpus > 1 ? cfg_.smp_compute_slowdown : 1.0;
    sim::sleep_for(engine_, d * factor);
    --active_compute_;
  }

  /// Blocking host memory copy (eager buffers, unexpected-message copies).
  void host_copy(std::uint64_t bytes) {
    sim::Fiber* const f = sim::Fiber::current();
    membus_.transfer(bytes, [f] { f->resume(); });
    sim::Fiber::yield();
  }

  /// Non-blocking host copy charged to the memory bus (NIC-driven copies).
  /// Completion is signalled through `done`; the returned time is advisory.
  sim::Time host_copy_async(std::uint64_t bytes, std::function<void()> done) {  // icsim-lint: allow(nodiscard-time)
    return membus_.transfer(bytes, std::move(done));
  }

  /// Asynchronous DMA across the PCI-X segment; returns completion time
  /// (advisory — completion is signalled through `done`).
  sim::Time dma(std::uint64_t bytes, std::function<void()> done) {  // icsim-lint: allow(nodiscard-time)
    return pcix_.transfer(bytes, std::move(done));
  }

  /// Zero-cost ordering point on the PCI-X FIFO: `done` fires once every
  /// transaction already queued has drained (PCI ordering semantics for a
  /// doorbell behind posted DMA), without consuming bus time itself.
  sim::Time pcix_ordered(std::function<void()> done) {  // icsim-lint: allow(nodiscard-time)
    return pcix_.transfer_ordered(std::move(done));
  }

  /// Fault injection: freeze the node's memory bus and PCI-X segment for
  /// `d` starting now — every copy/DMA posted during (or queued across) the
  /// window finishes after it (OS pause, thermal throttle, ECC scrub storm).
  void stall(sim::Time d) {
    membus_.stall(d);
    pcix_.stall(d);
  }

  /// True while any CPU is inside a compute phase (transports use this to
  /// model cache/FSB contention for host-side protocol processing).
  [[nodiscard]] bool any_compute_active() const { return active_compute_ > 0; }

  [[nodiscard]] sim::BandwidthResource& pcix() { return pcix_; }
  [[nodiscard]] sim::BandwidthResource& membus() { return membus_; }
  [[nodiscard]] sim::Engine& engine() { return engine_; }

 private:
  sim::Engine& engine_;
  int id_;
  NodeConfig cfg_;
  sim::BandwidthResource membus_;
  sim::BandwidthResource pcix_;
  int active_compute_ = 0;
};

}  // namespace icsim::node
