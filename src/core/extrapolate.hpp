#pragma once
// Scaling-trend extrapolation (paper Section 5, Figure 8).
//
// The paper extrapolates the membrane scaled study to 8192 processors by
// assuming the 8->32-node efficiency trend continues exactly.  We fit the
// same model: a constant multiplicative efficiency decay per doubling of
// the node count, anchored at the measured points.

#include <cmath>
#include <stdexcept>

namespace icsim::core {

struct ScalingTrend {
  int base_nodes = 8;
  double base_efficiency = 1.0;  ///< measured at base_nodes (fraction)
  double per_doubling = 1.0;     ///< efficiency multiplier per doubling

  /// Efficiency the trend predicts at `nodes` (>= base_nodes).
  [[nodiscard]] double efficiency_at(int nodes) const {
    const double doublings =
        std::log2(static_cast<double>(nodes) / base_nodes);
    return base_efficiency * std::pow(per_doubling, doublings);
  }

  /// Scaled-study time the trend predicts, given the 1-node time.
  [[nodiscard]] double time_at(int nodes, double t_single) const {
    return t_single / efficiency_at(nodes);
  }
};

/// Fit from a scaled-size study: times at 1, n1 and n2 nodes (n2 > n1).
[[nodiscard]] inline ScalingTrend fit_scaled_trend(double t_single, int n1,
                                                   double t_n1, int n2,
                                                   double t_n2) {
  if (n2 <= n1 || n1 < 1) {
    throw std::invalid_argument("fit_scaled_trend: need n2 > n1 >= 1");
  }
  ScalingTrend tr;
  tr.base_nodes = n1;
  tr.base_efficiency = t_single / t_n1;
  const double eff2 = t_single / t_n2;
  const double doublings = std::log2(static_cast<double>(n2) / n1);
  tr.per_doubling = std::pow(eff2 / tr.base_efficiency, 1.0 / doublings);
  return tr;
}

}  // namespace icsim::core
