#pragma once
// LogGP characterization of a simulated network.
//
// The cluster-networking literature of the study's era summarized an
// interconnect by the LogGP parameters (Culler et al.; the paper's
// reference [15] uses exactly this framework to relate latency, overhead
// and bandwidth to application performance):
//   L — wire/switch latency, o — host send/receive overhead,
//   g — per-message gap (1 / small-message rate),
//   G — per-byte gap (1 / peak bandwidth).
// This helper runs the standard measurement protocol against any cluster
// configuration and returns the fitted parameters, so model changes can be
// discussed in the community's vocabulary.

#include "core/cluster.hpp"
#include "microbench/pingpong.hpp"

namespace icsim::core {

struct LogGpParams {
  double L_us = 0.0;        ///< latency: RTT/2 minus the overheads
  double o_send_us = 0.0;   ///< host CPU time consumed by a small isend
  double o_recv_us = 0.0;   ///< host CPU time consumed by a matching recv
  double g_us = 0.0;        ///< per-message gap (streaming small messages)
  double G_ns_per_byte = 0.0;  ///< per-byte gap (streaming large messages)
  double half_rtt_us = 0.0;    ///< raw small-message one-way time
};

[[nodiscard]] inline LogGpParams measure_loggp(const ClusterConfig& config) {
  LogGpParams p;

  // Host overheads: simulated CPU time around the posting calls.
  {
    Cluster cluster(config);
    double os = 0.0, orecv = 0.0;
    cluster.run([&](mpi::Mpi& mpi) {
      if (mpi.rank() > 1) return;
      const int peer = 1 - mpi.rank();
      char b = 0;
      constexpr int kReps = 50;
      if (mpi.rank() == 0) {
        const double t0 = mpi.wtime();
        std::vector<mpi::Request> rs;
        for (int i = 0; i < kReps; ++i) rs.push_back(mpi.isend(&b, 1, peer, 1));
        os = (mpi.wtime() - t0) / kReps * 1e6;
        mpi.waitall(rs);
        // Receive overhead: messages already arrived; time the recv calls.
        mpi.recv(&b, 1, peer, 2);  // sync point: peer's burst is under way
        mpi.compute(sim::Time::sec(500e-6));       // let the burst land unexpected
        const double t1 = mpi.wtime();
        for (int i = 0; i < kReps; ++i) mpi.recv(&b, 1, peer, 3);
        orecv = (mpi.wtime() - t1) / kReps * 1e6;
      } else {
        for (int i = 0; i < kReps; ++i) mpi.recv(&b, 1, peer, 1);
        mpi.send(&b, 1, peer, 2);
        for (int i = 0; i < kReps; ++i) mpi.send(&b, 1, peer, 3);
      }
    });
    p.o_send_us = os;
    p.o_recv_us = orecv;
  }

  // Half round trip at 1 byte -> L = rtt/2 - o_s - o_r.
  {
    microbench::PingPongOptions o;
    o.sizes = {1};
    o.repetitions = 50;
    o.warmup = 5;
    const auto r = microbench::run_pingpong(config, o);
    p.half_rtt_us = r[0].latency_us;
    p.L_us = p.half_rtt_us - p.o_send_us - p.o_recv_us;
  }

  // g from the small-message streaming rate; G from the large-message one.
  {
    microbench::StreamingOptions o;
    o.sizes = {1, 1 << 20};
    o.window = 64;
    o.batches = 10;
    o.warmup_batches = 2;
    const auto r = microbench::run_streaming(config, o);
    p.g_us = 1e6 / r[0].msg_rate_per_sec;
    p.G_ns_per_byte = 1e3 / r[1].bandwidth_mbs;
  }
  return p;
}

}  // namespace icsim::core
