#pragma once
// Table/CSV reporting helpers shared by the figure-reproduction benches.

#include <cstdio>
#include <string>
#include <vector>

namespace icsim::core {

/// Fixed-width console table.  Columns are declared once; rows print as
/// they are added so long sweeps show progress.
class Table {
 public:
  explicit Table(std::vector<std::string> headers, int col_width = 14)
      : headers_(std::move(headers)), width_(col_width) {}

  void print_header() const {
    for (const auto& h : headers_) std::printf("%*s", width_, h.c_str());
    std::printf("\n");
    for (std::size_t i = 0; i < headers_.size(); ++i) {
      for (int j = 0; j < width_; ++j) std::printf("-");
    }
    std::printf("\n");
  }

  void print_row(const std::vector<std::string>& cells) const {
    for (const auto& c : cells) std::printf("%*s", width_, c.c_str());
    std::printf("\n");
  }

 private:
  std::vector<std::string> headers_;
  int width_;
};

[[nodiscard]] inline std::string fmt(double v, int precision = 2) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return buf;
}
[[nodiscard]] inline std::string fmt_int(long v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%ld", v);
  return buf;
}

/// Scaling efficiency for a *scaled-size* study (paper Section 2.2): with
/// constant work per process, ideal time is flat, so eff = t_base / t_p.
[[nodiscard]] inline double scaled_efficiency(double t_base, double t_p) {
  return t_base / t_p;
}

/// Scaling efficiency for a *fixed-size* study: ideal time halves as P
/// doubles, so eff = (t_base * p_base) / (t_p * p).
[[nodiscard]] inline double fixed_efficiency(double t_base, int p_base,
                                             double t_p, int p) {
  return (t_base * p_base) / (t_p * p);
}

}  // namespace icsim::core
