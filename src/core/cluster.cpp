#include "core/cluster.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <mutex>
#include <string>

#include "myrinet/gm.hpp"
#include "replay/capture.hpp"
#include "trace/export.hpp"

namespace icsim::core {

namespace {

/// "trace.json" -> "trace.2.json" for the nth tracing Cluster in a process,
/// so benches that build several clusters don't clobber the first trace.
std::string numbered(const std::string& path, int n) {
  if (n <= 1) return path;
  const auto dot = path.rfind('.');
  const auto slash = path.rfind('/');
  const bool has_ext = dot != std::string::npos &&
                       (slash == std::string::npos || dot > slash);
  const std::string stem = has_ext ? path.substr(0, dot) : path;
  const std::string ext = has_ext ? path.substr(dot) : "";
  return stem + "." + std::to_string(n) + ext;
}

std::string sibling(const std::string& path, const char* suffix) {
  const auto dot = path.rfind('.');
  const auto slash = path.rfind('/');
  const bool has_ext = dot != std::string::npos &&
                       (slash == std::string::npos || dot > slash);
  return (has_ext ? path.substr(0, dot) : path) + suffix;
}

}  // namespace

ClusterConfig myrinet_cluster(int nodes, int ppn) {
  ClusterConfig c;
  c.network = Network::myrinet;
  c.nodes = nodes;
  c.ppn = ppn;
  c.hca = myrinet::lanai9_nic();
  c.mvapich = myrinet::mpich_gm();
  return c;
}

net::FabricConfig fabric_config_for(Network net, int nodes) {
  switch (net) {
    case Network::infiniband: return ib_fabric(nodes);
    case Network::quadrics: return elan_fabric(nodes);
    case Network::myrinet: return myrinet::myrinet_fabric(nodes);
  }
  return ib_fabric(nodes);
}

Cluster::Cluster(const ClusterConfig& config) : cfg_(config) {
  if (cfg_.nodes < 1 || cfg_.ppn < 1) {
    throw std::invalid_argument("Cluster: nodes and ppn must be >= 1");
  }

  std::string path = cfg_.trace_path;
  std::size_t events = cfg_.trace_events;
  if (path.empty() && cfg_.env_overrides) {
    if (const char* env = std::getenv("ICSIM_TRACE"); env != nullptr && *env != '\0') {
      path = env;
      if (const char* n = std::getenv("ICSIM_TRACE_EVENTS"); n != nullptr) {
        events = static_cast<std::size_t>(std::strtoull(n, nullptr, 10));
      }
    }
  }
  if (!path.empty()) {
    // Per-path instance counter: a bench that builds several clusters with
    // the same ICSIM_TRACE value gets trace.json, trace.2.json, ...
    // (mutex: the sweep driver constructs clusters from worker threads).
    static std::mutex trace_mu;
    static std::map<std::string, int> trace_instances;
    {
      const std::lock_guard<std::mutex> lock(trace_mu);
      trace_path_ = numbered(path, ++trace_instances[path]);
    }
    trace_sink_ = std::make_unique<trace::RingBufferSink>(events);
    engine_.tracer().enable(*trace_sink_);
  }
  if (cfg_.faults.empty() && cfg_.env_overrides) {
    if (const char* env = std::getenv("ICSIM_FAULTS");
        env != nullptr && *env != '\0') {
      cfg_.faults = fault::FaultPlan::parse(env);
    }
  }
  if (cfg_.faults.watchdog > sim::Time::zero()) {
    cfg_.mvapich.watchdog_timeout = cfg_.faults.watchdog;
    cfg_.quadrics.watchdog_timeout = cfg_.faults.watchdog;
  }

  fabric_ = std::make_unique<net::Fabric>(
      engine_, fabric_config_for(cfg_.network, cfg_.nodes), cfg_.nodes);

  for (int n = 0; n < cfg_.nodes; ++n) {
    nodes_.push_back(std::make_unique<node::Node>(engine_, n, cfg_.node));
  }

  if (!cfg_.faults.empty()) {
    injector_ =
        std::make_unique<fault::FaultInjector>(engine_, cfg_.faults, cfg_.seed);
    injector_->install(*fabric_);
    std::vector<node::Node*> node_ptrs;
    node_ptrs.reserve(nodes_.size());
    for (auto& n : nodes_) node_ptrs.push_back(n.get());
    injector_->install_node_stalls(node_ptrs);
  }

  const int nranks = ranks();
  sim::Rng root_rng(cfg_.seed);

  if (cfg_.network == Network::infiniband || cfg_.network == Network::myrinet) {
    // Both stacks are "DMA NIC + host-progress MPI"; they differ only in
    // the calibrated parameters installed by their cluster constructors.
    for (int n = 0; n < cfg_.nodes; ++n) {
      hcas_.push_back(
          std::make_unique<ib::Hca>(engine_, *nodes_[static_cast<std::size_t>(n)],
                                    fabric_.get(), cfg_.hca));
    }
    for (int r = 0; r < nranks; ++r) {
      const int n = r / cfg_.ppn;  // block rank placement, as the study ran
      mv_transports_.push_back(std::make_unique<mpi::MvapichTransport>(
          engine_, r, *nodes_[static_cast<std::size_t>(n)],
          *hcas_[static_cast<std::size_t>(n)], cfg_.mvapich));
      transports_.push_back(mv_transports_.back().get());
    }
    std::vector<mpi::MvapichTransport*> world;
    world.reserve(mv_transports_.size());
    for (auto& t : mv_transports_) world.push_back(t.get());
    init_cost_ = mpi::MvapichTransport::init_world(world);
    if (cfg_.mvapich.independent_progress) {
      for (auto& t : mv_transports_) t->enable_independent_progress();
    }
  } else {
    for (int n = 0; n < cfg_.nodes; ++n) {
      elan_nics_.push_back(std::make_unique<elan::ElanNic>(
          engine_, *nodes_[static_cast<std::size_t>(n)], fabric_.get(),
          cfg_.elan));
    }
    elan_world_.nic_of_rank.resize(static_cast<std::size_t>(nranks));
    for (int r = 0; r < nranks; ++r) {
      const int n = r / cfg_.ppn;
      elan_world_.nic_of_rank[static_cast<std::size_t>(r)] =
          elan_nics_[static_cast<std::size_t>(n)].get();
    }
    for (auto& nic : elan_nics_) nic->set_world(&elan_world_);
    for (int r = 0; r < nranks; ++r) {
      const int n = r / cfg_.ppn;
      qs_transports_.push_back(std::make_unique<mpi::QuadricsTransport>(
          engine_, r, *nodes_[static_cast<std::size_t>(n)],
          *elan_nics_[static_cast<std::size_t>(n)], cfg_.quadrics));
      transports_.push_back(qs_transports_.back().get());
    }
    std::vector<mpi::QuadricsTransport*> world;
    world.reserve(qs_transports_.size());
    for (auto& t : qs_transports_) world.push_back(t.get());
    init_cost_ = mpi::QuadricsTransport::init_world(world);
  }

  for (int r = 0; r < nranks; ++r) {
    const int n = r / cfg_.ppn;
    mpis_.push_back(std::make_unique<mpi::Mpi>(
        engine_, *nodes_[static_cast<std::size_t>(n)],
        *transports_[static_cast<std::size_t>(r)], r, nranks, root_rng.fork()));
  }

  std::string capture_dir = cfg_.mpi_trace_dir;
  if (capture_dir.empty() && cfg_.env_overrides) {
    if (const char* env = std::getenv("ICSIM_MPI_TRACE");
        env != nullptr && *env != '\0') {
      capture_dir = env;
      if (const char* fmt = std::getenv("ICSIM_MPI_TRACE_FORMAT");
          fmt != nullptr && std::string(fmt) == "binary") {
        cfg_.mpi_trace_binary = true;
      }
    }
  }
  if (!capture_dir.empty()) {
    // Per-directory instance counter, like the ICSIM_TRACE path above: a
    // bench that builds several capturing clusters gets cap, cap.2, ...
    static std::mutex capture_mu;
    static std::map<std::string, int> capture_instances;
    {
      const std::lock_guard<std::mutex> lock(capture_mu);
      mpi_trace_dir_ = numbered(capture_dir, ++capture_instances[capture_dir]);
    }
    const char* net = cfg_.network == Network::infiniband ? "ib"
                      : cfg_.network == Network::quadrics ? "el"
                                                          : "my";
    capture_ = std::make_unique<replay::CaptureSession>(
        nranks, std::vector<std::pair<std::string, std::string>>{
                    {"net", net},
                    {"nodes", std::to_string(cfg_.nodes)},
                    {"ppn", std::to_string(cfg_.ppn)},
                    {"seed", std::to_string(cfg_.seed)}});
    for (int r = 0; r < nranks; ++r) {
      mpis_[static_cast<std::size_t>(r)]->set_recorder(
          &capture_->recorder(r));
    }
  }
}

Cluster::~Cluster() = default;

std::uint64_t Cluster::ib_ring_memory_per_rank() const {
  if (mv_transports_.empty()) return 0;
  return mv_transports_.front()->ring_memory_bytes();
}

Cluster::RunStats Cluster::stats() const {
  RunStats s;
  s.fabric_chunks = fabric_->chunks_sent();
  s.max_link_busy_us = fabric_->max_link_busy_time().to_us();
  s.events_processed = engine_.events_processed();
  s.event_digest = engine_.event_digest();
  s.chunks_corrupted = fabric_->chunks_corrupted();
  s.chunks_rerouted = fabric_->chunks_rerouted();
  s.chunks_dropped_link_down = fabric_->chunks_dropped_link_down();
  for (const auto& hca : hcas_) {
    s.hca_writes += hca->writes_posted();
    s.rc_retries += hca->rc_retries();
    s.rc_retry_exhausted += hca->rc_retry_exhausted();
    s.retransmitted_bytes += hca->retransmitted_bytes();
    const auto& rc = hca->reg_cache().stats();
    s.reg_hits += rc.hits;
    s.reg_misses += rc.misses;
    s.reg_evictions += rc.evictions;
  }
  for (const auto& nic : elan_nics_) {
    s.nic_buffer_high_water =
        std::max(s.nic_buffer_high_water, nic->nic_buffer_high_water());
    s.nic_thread_busy_us =
        std::max(s.nic_thread_busy_us, nic->nic_thread().busy_time().to_us());
    s.elan_link_retries += nic->link_retries();
    s.elan_link_retry_exhausted += nic->link_retry_exhausted();
  }
  for (const auto& t : mv_transports_) s.watchdog_timeouts += t->watchdog_timeouts();
  for (const auto& t : qs_transports_) s.watchdog_timeouts += t->watchdog_timeouts();
  return s;
}

void Cluster::publish_metrics(trace::MetricsRegistry& m, sim::Time elapsed) const {
  // Snapshot counters use assignment, not +=, so publishing into the
  // engine's own registry (where some are incremented live) stays correct.
  m.counter("sim.events_processed") = engine_.events_processed();
  m.counter("sim.schedule_past_clamped") = engine_.past_schedules_clamped();
  fabric_->publish_metrics(m, elapsed);

  if (!hcas_.empty()) {
    std::uint64_t writes = 0, hits = 0, misses = 0, evictions = 0;
    for (const auto& hca : hcas_) {
      writes += hca->writes_posted();
      const auto& rc = hca->reg_cache().stats();
      hits += rc.hits;
      misses += rc.misses;
      evictions += rc.evictions;
    }
    std::uint64_t retries = 0, exhausted = 0, rebytes = 0;
    for (const auto& hca : hcas_) {
      retries += hca->rc_retries();
      exhausted += hca->rc_retry_exhausted();
      rebytes += hca->retransmitted_bytes();
    }
    m.counter("ib.rc_retries") = retries;
    m.counter("ib.rc_retry_exhausted") = exhausted;
    m.counter("ib.retransmitted_bytes") = rebytes;
    m.counter("ib.hca.writes") = writes;
    m.counter("ib.regcache.hits") = hits;
    m.counter("ib.regcache.misses") = misses;
    m.counter("ib.regcache.evictions") = evictions;
    if (hits + misses > 0) {
      m.stat("ib.regcache.hit_rate")
          .add(static_cast<double>(hits) / static_cast<double>(hits + misses));
    }
    auto& uq = m.stat("mpi.max_unexpected_depth");
    for (const auto& t : mv_transports_) {
      uq.add(static_cast<double>(t->matcher().max_unexpected_depth()));
    }
  }
  if (!elan_nics_.empty()) {
    std::uint64_t high_water = 0;
    double nic_busy = 0.0;
    for (const auto& nic : elan_nics_) {
      high_water = std::max(high_water, nic->nic_buffer_high_water());
      nic_busy = std::max(nic_busy, nic->nic_thread().busy_time().to_us());
    }
    std::uint64_t retries = 0, exhausted = 0;
    for (const auto& nic : elan_nics_) {
      retries += nic->link_retries();
      exhausted += nic->link_retry_exhausted();
    }
    m.counter("elan.link_retries") = retries;
    m.counter("elan.link_retry_exhausted") = exhausted;
    m.counter("elan.nic_buffer_high_water") = high_water;
    m.stat("elan.nic_thread_busy_us").add(nic_busy);
    auto& uq = m.stat("elan.max_unexpected_depth");
    for (std::size_t r = 0; r < elan_world_.nic_of_rank.size(); ++r) {
      uq.add(static_cast<double>(
          elan_world_.nic_of_rank[r]->max_unexpected_depth(static_cast<int>(r))));
    }
  }
  std::uint64_t wd = 0;
  for (const auto& t : mv_transports_) wd += t->watchdog_timeouts();
  for (const auto& t : qs_transports_) wd += t->watchdog_timeouts();
  m.counter("mpi.watchdog_timeouts") = wd;
  if (injector_) injector_->publish_metrics(m);
}

void Cluster::write_trace_files(sim::Time elapsed) {
  if (trace_path_.empty()) return;
  trace::Tracer& tr = engine_.tracer();
  publish_metrics(tr.metrics(), elapsed);
  const std::vector<trace::Event> events = trace_sink_->snapshot();
  bool ok = true;
  {
    std::ofstream out(trace_path_);
    trace::write_chrome_trace(out, tr, events);
    ok = ok && out.good();
  }
  const std::string metrics_path = sibling(trace_path_, ".metrics.json");
  {
    std::ofstream out(metrics_path);
    out << tr.metrics().to_json() << '\n';
    ok = ok && out.good();
  }
  const std::string csv_path = sibling(trace_path_, ".counters.csv");
  {
    std::ofstream out(csv_path);
    trace::write_counters_csv(out, tr, events);
    ok = ok && out.good();
  }
  if (ok) {
    std::fprintf(stderr,
                 "[icsim] wrote %s (%llu events, %llu dropped), %s, %s\n",
                 trace_path_.c_str(),
                 static_cast<unsigned long long>(trace_sink_->recorded()),
                 static_cast<unsigned long long>(trace_sink_->dropped()),
                 metrics_path.c_str(), csv_path.c_str());
  } else {
    std::fprintf(stderr, "[icsim] warning: could not write trace files to %s\n",
                 trace_path_.c_str());
  }
}

sim::Time Cluster::run(const std::function<void(mpi::Mpi&)>& rank_main) {
  if (cfg_.intra_run_threads > 1) {
    // The fiber tier cannot honor the knob: ucontext fibers must resume on
    // their creating thread, and transport callbacks touch source- and
    // destination-side state in one engine.  Refuse loudly instead of
    // silently running serial — intra-run parallelism lives in
    // par::ParCluster (src/par/).
    throw std::invalid_argument(
        "Cluster::run: intra_run_threads > 1 is not supported on the fiber "
        "path; use par::ParCluster for intra-run parallel execution");
  }
  const int nranks = ranks();
  std::vector<std::unique_ptr<sim::Fiber>> fibers;
  fibers.reserve(static_cast<std::size_t>(nranks));
  int finished = 0;
  for (int r = 0; r < nranks; ++r) {
    mpi::Mpi& m = *mpis_[static_cast<std::size_t>(r)];
    // The fiber bodies run to completion inside engine_.run() below, so the
    // by-ref captures cannot outlive this frame (the deadlock check proves
    // every fiber finished before we return).
    fibers.push_back(std::make_unique<sim::Fiber>(
        // icsim-lint: allow(closure-lifetime)
        [this, &m, &rank_main, &finished] {
      if (cfg_.charge_init && init_cost_ > sim::Time::zero()) {
        sim::sleep_for(engine_, init_cost_);
      }
      rank_main(m);
      ++finished;
    }));
  }
  for (auto& f : fibers) f->resume();
  const sim::Time end = engine_.run();
  fabric_->audit_drained();  // conservation: injected == delivered + dropped
  write_trace_files(end);
  if (finished != nranks) {
    throw std::runtime_error(
        "Cluster::run: deadlock — " + std::to_string(nranks - finished) +
        " of " + std::to_string(nranks) + " ranks still blocked");
  }
  if (capture_) {
    capture_->write(mpi_trace_dir_, cfg_.mpi_trace_binary);
    std::fprintf(stderr, "[icsim] wrote %d MPI rank trace(s) to %s/\n",
                 nranks, mpi_trace_dir_.c_str());
  }
  return engine_.now();
}

}  // namespace icsim::core
