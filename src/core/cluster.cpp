#include "core/cluster.hpp"

#include <algorithm>
#include <string>

#include "myrinet/gm.hpp"

namespace icsim::core {

ClusterConfig myrinet_cluster(int nodes, int ppn) {
  ClusterConfig c;
  c.network = Network::myrinet;
  c.nodes = nodes;
  c.ppn = ppn;
  c.hca = myrinet::lanai9_nic();
  c.mvapich = myrinet::mpich_gm();
  return c;
}

Cluster::Cluster(const ClusterConfig& config) : cfg_(config) {
  if (cfg_.nodes < 1 || cfg_.ppn < 1) {
    throw std::invalid_argument("Cluster: nodes and ppn must be >= 1");
  }
  const net::FabricConfig fabric_cfg =
      cfg_.network == Network::infiniband ? ib_fabric(cfg_.nodes)
      : cfg_.network == Network::quadrics ? elan_fabric(cfg_.nodes)
                                          : myrinet::myrinet_fabric(cfg_.nodes);
  fabric_ = std::make_unique<net::Fabric>(engine_, fabric_cfg, cfg_.nodes);

  for (int n = 0; n < cfg_.nodes; ++n) {
    nodes_.push_back(std::make_unique<node::Node>(engine_, n, cfg_.node));
  }

  const int nranks = ranks();
  sim::Rng root_rng(cfg_.seed);

  if (cfg_.network == Network::infiniband || cfg_.network == Network::myrinet) {
    // Both stacks are "DMA NIC + host-progress MPI"; they differ only in
    // the calibrated parameters installed by their cluster constructors.
    for (int n = 0; n < cfg_.nodes; ++n) {
      hcas_.push_back(
          std::make_unique<ib::Hca>(engine_, *nodes_[static_cast<std::size_t>(n)],
                                    fabric_.get(), cfg_.hca));
    }
    for (int r = 0; r < nranks; ++r) {
      const int n = r / cfg_.ppn;  // block rank placement, as the study ran
      mv_transports_.push_back(std::make_unique<mpi::MvapichTransport>(
          engine_, r, *nodes_[static_cast<std::size_t>(n)],
          *hcas_[static_cast<std::size_t>(n)], cfg_.mvapich));
      transports_.push_back(mv_transports_.back().get());
    }
    std::vector<mpi::MvapichTransport*> world;
    world.reserve(mv_transports_.size());
    for (auto& t : mv_transports_) world.push_back(t.get());
    init_cost_ = mpi::MvapichTransport::init_world(world);
    if (cfg_.mvapich.independent_progress) {
      for (auto& t : mv_transports_) t->enable_independent_progress();
    }
  } else {
    for (int n = 0; n < cfg_.nodes; ++n) {
      elan_nics_.push_back(std::make_unique<elan::ElanNic>(
          engine_, *nodes_[static_cast<std::size_t>(n)], fabric_.get(),
          cfg_.elan));
    }
    elan_world_.nic_of_rank.resize(static_cast<std::size_t>(nranks));
    for (int r = 0; r < nranks; ++r) {
      const int n = r / cfg_.ppn;
      elan_world_.nic_of_rank[static_cast<std::size_t>(r)] =
          elan_nics_[static_cast<std::size_t>(n)].get();
    }
    for (auto& nic : elan_nics_) nic->set_world(&elan_world_);
    for (int r = 0; r < nranks; ++r) {
      const int n = r / cfg_.ppn;
      qs_transports_.push_back(std::make_unique<mpi::QuadricsTransport>(
          engine_, r, *nodes_[static_cast<std::size_t>(n)],
          *elan_nics_[static_cast<std::size_t>(n)], cfg_.quadrics));
      transports_.push_back(qs_transports_.back().get());
    }
    std::vector<mpi::QuadricsTransport*> world;
    world.reserve(qs_transports_.size());
    for (auto& t : qs_transports_) world.push_back(t.get());
    init_cost_ = mpi::QuadricsTransport::init_world(world);
  }

  for (int r = 0; r < nranks; ++r) {
    const int n = r / cfg_.ppn;
    mpis_.push_back(std::make_unique<mpi::Mpi>(
        engine_, *nodes_[static_cast<std::size_t>(n)],
        *transports_[static_cast<std::size_t>(r)], r, nranks, root_rng.fork()));
  }
}

Cluster::~Cluster() = default;

std::uint64_t Cluster::ib_ring_memory_per_rank() const {
  if (mv_transports_.empty()) return 0;
  return mv_transports_.front()->ring_memory_bytes();
}

Cluster::RunStats Cluster::stats() const {
  RunStats s;
  s.fabric_chunks = fabric_->chunks_sent();
  s.max_link_busy_us = fabric_->max_link_busy_time().to_us();
  s.events_processed = engine_.events_processed();
  for (const auto& hca : hcas_) {
    s.hca_writes += hca->writes_posted();
    const auto& rc = hca->reg_cache().stats();
    s.reg_hits += rc.hits;
    s.reg_misses += rc.misses;
    s.reg_evictions += rc.evictions;
  }
  for (const auto& nic : elan_nics_) {
    s.nic_buffer_high_water =
        std::max(s.nic_buffer_high_water, nic->nic_buffer_high_water());
    s.nic_thread_busy_us =
        std::max(s.nic_thread_busy_us, nic->nic_thread().busy_time().to_us());
  }
  return s;
}

sim::Time Cluster::run(const std::function<void(mpi::Mpi&)>& rank_main) {
  const int nranks = ranks();
  std::vector<std::unique_ptr<sim::Fiber>> fibers;
  fibers.reserve(static_cast<std::size_t>(nranks));
  int finished = 0;
  for (int r = 0; r < nranks; ++r) {
    mpi::Mpi& m = *mpis_[static_cast<std::size_t>(r)];
    fibers.push_back(std::make_unique<sim::Fiber>([this, &m, &rank_main,
                                                   &finished] {
      if (cfg_.charge_init && init_cost_ > sim::Time::zero()) {
        sim::sleep_for(engine_, init_cost_);
      }
      rank_main(m);
      ++finished;
    }));
  }
  for (auto& f : fibers) f->resume();
  engine_.run();
  if (finished != nranks) {
    throw std::runtime_error(
        "Cluster::run: deadlock — " + std::to_string(nranks - finished) +
        " of " + std::to_string(nranks) + " ranks still blocked");
  }
  return engine_.now();
}

}  // namespace icsim::core
