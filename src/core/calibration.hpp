#pragma once
// Calibrated platform configurations — the "Table 1" of this reproduction.
//
// Every constant here is either taken from the paper, from the product
// specifications of the hardware the paper used, or fitted so that the
// micro-benchmarks of Figure 1 land on the magnitudes the paper and Liu et
// al. (SC'03 / IEEE Micro 24(1)) report for the same parts:
//
//   target anchors (paper Section 4.1):
//     * small-message ping-pong latency: Elan-4 about half of InfiniBand
//       (about 2 us vs about 4.5-5.5 us);
//     * InfiniBand latency jump between 1 KB and 2 KB (eager->rendezvous);
//     * 8 KB ping-pong bandwidth: Elan-4 552 MB/s vs InfiniBand 249 MB/s;
//     * both asymptote near the PCI-X ceiling (about 850-900 MB/s);
//     * InfiniBand bandwidth collapse at 4 MB (registration thrash);
//     * streaming small-message bandwidth ratio above 5x in Elan's favor.
//
// The defaults produced here are what every figure reproduction uses; the
// ablation benches perturb individual fields.

#include "elan/config.hpp"
#include "ib/config.hpp"
#include "mpi/mvapich_transport.hpp"
#include "mpi/quadrics_transport.hpp"
#include "net/fabric.hpp"
#include "node/node.hpp"

namespace icsim::core {

/// Dell PowerEdge 1750 node (paper Table 1): dual 3.06 GHz Xeon, 533 MHz
/// FSB, ServerWorks GC-LE, one 133 MHz / 64-bit PCI-X segment for the NIC.
inline node::NodeConfig poweredge1750() {
  node::NodeConfig c;
  c.cpus = 2;
  c.memory_copy_bandwidth = sim::Bandwidth::gb_per_sec(1.5);
  c.memory_copy_overhead = sim::Time::ns(80);
  // 133 MHz x 64 bit is 1066 MB/s raw; sustained DMA on the GC-LE chipset
  // was measured well below that, hence the derated rate + per-burst cost.
  c.pcix_bandwidth = sim::Bandwidth::mb_per_sec(950.0);
  c.pcix_dma_overhead = sim::Time::ns(250);
  c.smp_compute_slowdown = 1.06;
  return c;
}

/// 4X InfiniBand fabric: 2.5 GHz x 4 lanes, 8b/10b -> 1 GB/s of data per
/// direction; Voltaire ISR 9600 internals are a two-level Clos of 24-port
/// crossbar chips (12 down / 12 up), so radix_down = 12.
inline net::FabricConfig ib_fabric(int nodes) {
  net::FabricConfig f;
  f.radix_down = 12;
  f.levels = 2;
  while (nodes > 1 && [&] {
    long cap = 1;
    for (int i = 0; i < f.levels; ++i) cap *= f.radix_down;
    return cap < nodes;
  }()) {
    ++f.levels;
  }
  f.link_bandwidth = sim::Bandwidth::gb_per_sec(1.0);
  f.switch_latency = sim::Time::ns(200);  // InfiniBand switch hop, that era
  f.wire_latency = sim::Time::ns(25);
  f.mtu_bytes = 2048;
  f.header_bytes = 40;  // LRH + BTH + CRCs
  return f;
}

/// QsNetII fabric: 4-ary fat tree of radix-8 Elite-4 crossbars; the QS5A
/// 64-port switch is the 3-level instance.  Link data rate about 1.06 GB/s
/// per direction; the Elite switch hop is much faster than InfiniBand's.
inline net::FabricConfig elan_fabric(int nodes) {
  net::FabricConfig f;
  f.radix_down = 4;
  f.levels = 3;
  while (nodes > 1 && [&] {
    long cap = 1;
    for (int i = 0; i < f.levels; ++i) cap *= f.radix_down;
    return cap < nodes;
  }()) {
    ++f.levels;
  }
  f.link_bandwidth = sim::Bandwidth::gb_per_sec(1.3);  // QsNetII link rate
  f.switch_latency = sim::Time::ns(35);  // Elite-4 crossbar hop
  f.wire_latency = sim::Time::ns(25);
  f.mtu_bytes = 1024;  // Elan packets are smaller than IB's MTU
  f.header_bytes = 24;
  return f;
}

inline ib::HcaConfig voltaire_hca400() { return ib::HcaConfig{}; }
inline elan::ElanConfig elan4_qm500() { return elan::ElanConfig{}; }
inline mpi::MvapichConfig mvapich_092() { return mpi::MvapichConfig{}; }
inline mpi::QuadricsConfig quadrics_mpi() { return mpi::QuadricsConfig{}; }

}  // namespace icsim::core
