#pragma once
// Cluster assembly: nodes + fabric + NICs + MPI ranks for one experiment.
//
// This is the reproduction of the study's two partitions.  A Cluster is
// built for one network type, one node count and one processes-per-node
// setting; run() executes an SPMD function in every rank (each rank is a
// fiber) and returns when all ranks have finished.

#include <functional>
#include <memory>
#include <stdexcept>
#include <vector>

#include "core/calibration.hpp"
#include "elan/tports.hpp"
#include "fault/injector.hpp"
#include "fault/plan.hpp"
#include "ib/hca.hpp"
#include "mpi/mpi.hpp"
#include "mpi/mvapich_transport.hpp"
#include "mpi/quadrics_transport.hpp"
#include "net/fabric.hpp"
#include "node/node.hpp"
#include "sim/engine.hpp"
#include "sim/fiber.hpp"
#include "trace/sink.hpp"

namespace icsim::replay {
class CaptureSession;
}

namespace icsim::core {

enum class Network {
  infiniband,
  quadrics,
  myrinet,  ///< extension: the third network of Liu et al. [11]
};

[[nodiscard]] inline const char* to_string(Network n) {
  switch (n) {
    case Network::infiniband: return "4X InfiniBand";
    case Network::quadrics: return "Quadrics Elan-4";
    case Network::myrinet: return "Myrinet 2000";
  }
  return "?";
}

struct ClusterConfig {
  Network network = Network::quadrics;
  int nodes = 2;
  int ppn = 1;  ///< MPI processes per node (the paper uses 1 and 2)
  node::NodeConfig node = poweredge1750();
  ib::HcaConfig hca = voltaire_hca400();
  mpi::MvapichConfig mvapich = mvapich_092();
  elan::ElanConfig elan = elan4_qm500();
  mpi::QuadricsConfig quadrics = quadrics_mpi();
  std::uint64_t seed = 0x5eed;
  /// Include MPI_Init cost (QP setup, ring pinning) in the timeline.
  bool charge_init = false;
  /// Opt-in tracing: when non-empty, run() writes a Chrome/Perfetto trace to
  /// this path, plus `<stem>.metrics.json` and `<stem>.counters.csv` next to
  /// it.  Left empty, the `ICSIM_TRACE` environment variable is consulted
  /// instead (value = output path), so any bench or example can emit a
  /// trace without a rebuild.  A second Cluster in the same process writes
  /// to `<stem>.2<ext>`, a third to `<stem>.3<ext>`, and so on.
  std::string trace_path;
  /// Ring-buffer capacity in events (newest kept); `ICSIM_TRACE_EVENTS`
  /// overrides when the path came from the environment.
  std::size_t trace_events = 1u << 20;
  /// Fault plan to install on the fabric (see fault/plan.hpp).  Left empty,
  /// the `ICSIM_FAULTS` environment variable is parsed instead, so any bench
  /// or example can run on a degraded fabric without a rebuild.  The plan's
  /// `watchdog` field, when set, arms both transports' watchdog timeouts.
  fault::FaultPlan faults;
  /// Opt-in MPI op capture for trace-driven replay (src/replay/): when
  /// non-empty, run() records every rank's top-level MPI calls and writes
  /// `<dir>/rank<r>.icst` on completion.  Left empty, the `ICSIM_MPI_TRACE`
  /// environment variable is consulted instead (value = output directory),
  /// so any app or bench can emit a replayable trace without a rebuild; a
  /// second capturing Cluster in the same process writes to `<dir>.2`, and
  /// so on.  Capture is pure observation — the run's event_digest is
  /// unchanged, and replaying the files reproduces it exactly.
  std::string mpi_trace_dir;
  /// Framed binary .icst instead of text (`ICSIM_MPI_TRACE_FORMAT=binary`
  /// when the directory came from the environment).
  bool mpi_trace_binary = false;
  /// Worker threads for intra-run parallel execution (the conservative
  /// parallel engine of src/par/).  Host policy only: the parallel tier's
  /// event_digest is byte-identical for any value, and `ICSIM_PAR_THREADS`
  /// overrides it without a rebuild (when env_overrides is on).  The
  /// fiber-based Cluster::run path is inherently serial — it throws when
  /// this is > 1; par::ParCluster is the consumer of this knob.
  int intra_run_threads = 1;
  /// Consult the `ICSIM_TRACE` / `ICSIM_FAULTS` / `ICSIM_MPI_TRACE`
  /// environment overrides above.  Auxiliary clusters built *inside* a run
  /// (topology inspection, the traffic layer's capacity calibration) turn
  /// this off so a user's fault spec or trace path applies only to the
  /// experiment itself.
  bool env_overrides = true;
};

[[nodiscard]] inline ClusterConfig ib_cluster(int nodes, int ppn = 1) {
  ClusterConfig c;
  c.network = Network::infiniband;
  c.nodes = nodes;
  c.ppn = ppn;
  return c;
}

[[nodiscard]] inline ClusterConfig elan_cluster(int nodes, int ppn = 1) {
  ClusterConfig c;
  c.network = Network::quadrics;
  c.nodes = nodes;
  c.ppn = ppn;
  return c;
}

/// Extension: Myrinet 2000 with MPICH-GM (see myrinet/gm.hpp).
[[nodiscard]] ClusterConfig myrinet_cluster(int nodes, int ppn = 1);

/// The calibrated fabric a Cluster of this network and size would build —
/// the single source of truth for fabric parameters, shared by Cluster's
/// constructor and by any layer that needs fabric facts without building a
/// cluster.  (Note: src/traffic/ sizes offered load against a *measured*
/// serving rate, traffic::calibrated_capacity_Bps, not raw link_bandwidth —
/// achievable goodput at serving-sized messages sits far below line rate.)
[[nodiscard]] net::FabricConfig fabric_config_for(Network net, int nodes);

class Cluster {
 public:
  explicit Cluster(const ClusterConfig& config);
  ~Cluster();
  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  [[nodiscard]] int ranks() const { return cfg_.nodes * cfg_.ppn; }
  [[nodiscard]] const ClusterConfig& config() const { return cfg_; }
  [[nodiscard]] sim::Engine& engine() { return engine_; }
  [[nodiscard]] net::Fabric& fabric() { return *fabric_; }
  [[nodiscard]] mpi::Mpi& mpi_of(int rank) { return *mpis_.at(static_cast<std::size_t>(rank)); }
  [[nodiscard]] node::Node& node_of_rank(int rank) {
    return *nodes_.at(static_cast<std::size_t>(rank / cfg_.ppn));
  }

  /// Run `rank_main` as an SPMD program across all ranks.  Returns the
  /// simulated time at which the last rank finished (advisory — tests that
  /// only inspect stats() may discard it).  Throws if any rank is still
  /// blocked when the event queue drains (communication deadlock).
  sim::Time run(const std::function<void(mpi::Mpi&)>& rank_main);  // icsim-lint: allow(nodiscard-time)

  /// Eager-ring memory a single InfiniBand rank pins (0 for Quadrics) —
  /// the Section 4.1 scalability observation about buffer space.
  [[nodiscard]] std::uint64_t ib_ring_memory_per_rank() const;

  /// Aggregate run statistics for post-run analysis.
  struct RunStats {
    std::uint64_t fabric_chunks = 0;       ///< wire chunks injected
    double max_link_busy_us = 0.0;         ///< hottest link's busy time
    std::uint64_t events_processed = 0;    ///< DES events
    /// FNV-1a fold of every executed event's (timestamp, sequence) pair.
    /// Two runs of the same workload with the same seeds must agree; see
    /// docs/MODEL.md section 8.
    std::uint64_t event_digest = 0;
    // InfiniBand side:
    std::uint64_t hca_writes = 0;          ///< RDMA writes posted
    std::uint64_t reg_hits = 0, reg_misses = 0, reg_evictions = 0;
    // Quadrics side:
    std::uint64_t nic_buffer_high_water = 0;  ///< unexpected bytes in SDRAM
    double nic_thread_busy_us = 0.0;          ///< busiest NIC thread
    // Fault/reliability (all zero on a clean fabric):
    std::uint64_t chunks_corrupted = 0;       ///< CRC-dropped wire chunks
    std::uint64_t chunks_rerouted = 0;        ///< took a non-default climb
    std::uint64_t chunks_dropped_link_down = 0;
    std::uint64_t rc_retries = 0;             ///< IB RC retransmissions
    std::uint64_t rc_retry_exhausted = 0;     ///< IB writes that gave up
    std::uint64_t retransmitted_bytes = 0;    ///< IB retransmission payload
    std::uint64_t elan_link_retries = 0;      ///< Elan hardware link retries
    std::uint64_t elan_link_retry_exhausted = 0;
    std::uint64_t watchdog_timeouts = 0;      ///< failed blocking waits
  };
  [[nodiscard]] RunStats stats() const;

  /// The installed fault injector, or nullptr when the plan is empty.
  [[nodiscard]] const fault::FaultInjector* injector() const {
    return injector_.get();
  }

  /// Fold end-of-run aggregates (link utilization, reg-cache hit rate,
  /// matcher queue depths, engine counters) into a metrics registry.
  /// Called automatically by run() when tracing; public for tests.
  void publish_metrics(trace::MetricsRegistry& m, sim::Time elapsed) const;

 private:
  void write_trace_files(sim::Time elapsed);

  ClusterConfig cfg_;
  sim::Engine engine_;
  std::unique_ptr<trace::RingBufferSink> trace_sink_;
  std::string trace_path_;  ///< resolved output path ("" = tracing off)
  std::unique_ptr<net::Fabric> fabric_;
  std::unique_ptr<fault::FaultInjector> injector_;
  std::vector<std::unique_ptr<node::Node>> nodes_;
  // InfiniBand stack:
  std::vector<std::unique_ptr<ib::Hca>> hcas_;
  std::vector<std::unique_ptr<mpi::MvapichTransport>> mv_transports_;
  // Quadrics stack:
  std::vector<std::unique_ptr<elan::ElanNic>> elan_nics_;
  elan::ElanWorld elan_world_;
  std::vector<std::unique_ptr<mpi::QuadricsTransport>> qs_transports_;

  std::vector<mpi::Transport*> transports_;
  std::vector<std::unique_ptr<mpi::Mpi>> mpis_;
  std::unique_ptr<replay::CaptureSession> capture_;
  std::string mpi_trace_dir_;  ///< resolved output directory ("" = off)
  sim::Time init_cost_ = sim::Time::zero();
};

}  // namespace icsim::core
