#pragma once
// NAS Parallel Benchmark FT (3-D FFT PDE solver) — extension kernel.
//
// Solves the 3-D heat equation spectrally: FFT the random initial state
// once, then each iteration scales the spectrum by the evolution factor
// exp(-4 alpha pi^2 |k|^2 t) and inverse-transforms to compute the NPB
// checksum.  The parallel structure is NPB's slab layout: x/y lines are
// local, the z dimension is gathered by a full complex-array TRANSPOSE
// (alltoall) — per iteration, every process exchanges its entire working
// set.  This is the most bandwidth-hungry pattern in the suite, bigger
// and burstier than IS.
//
// The initial state comes from the bit-faithful NPB randlc stream.  We do
// not embed the published checksum magnitudes (kept out of scope — see
// DESIGN.md); instead tests pin the strong invariants: inverse(forward) =
// identity to roundoff, Parseval's theorem, checksum invariance across
// decompositions and transports, and determinism.

#include <complex>
#include <cstdint>
#include <vector>

#include "mpi/mpi.hpp"

namespace icsim::apps::npb {

struct FtClass {
  const char* name = "S";
  int nx = 64, ny = 64, nz = 64;
  int niter = 6;
};

[[nodiscard]] inline FtClass ft_class_S() { return {"S", 64, 64, 64, 6}; }
[[nodiscard]] inline FtClass ft_class_W() { return {"W", 128, 128, 32, 6}; }
[[nodiscard]] inline FtClass ft_class_A() { return {"A", 256, 256, 128, 6}; }

struct FtConfig {
  FtClass cls = ft_class_S();
  double alpha = 1e-6;
  /// Compute cost per complex butterfly (FFT) / per point (evolve).
  double butterfly_ns = 7.0;
  double point_ns = 4.0;
};

struct FtResult {
  std::vector<std::complex<double>> checksums;  ///< one per iteration
  double seconds = 0.0;
  double mflops_per_process = 0.0;
  std::uint64_t transpose_bytes = 0;  ///< global alltoall traffic
};

FtResult run_ft(mpi::Mpi& mpi, const FtConfig& config);

/// In-place radix-2 complex FFT along a contiguous line (exposed for unit
/// tests).  `inverse` includes the 1/n scaling.
void fft_line(std::complex<double>* data, int n, bool inverse);

}  // namespace icsim::apps::npb
