#pragma once
// NAS Parallel Benchmark CG (paper Section 2.2.3).
//
// The benchmark estimates the largest eigenvalue of a random sparse SPD
// matrix with inverse power iteration: `niter` outer iterations, each
// solving A z = x with 25 unpreconditioned conjugate-gradient steps, then
// zeta = shift + 1 / (x . z).
//
// Parallelization follows NPB's 2-D blocked scheme: P = nprows x npcols
// (powers of two, npcols = nprows or 2*nprows).  Each processor owns an
// (n/nprows) x (n/npcols) block.  One q = A p step is:
//   1. local SpMV on the block;
//   2. allreduce of the partial result across the processor ROW
//      (recursive doubling, log2(npcols) exchanges);
//   3. one exchange with the transpose processor to convert the
//      row-distributed q into the column distribution the vectors use.
// Scalar reductions (dot products) are log2(npcols) scalar exchanges along
// the row.  This fixed-size, small-message pattern is why CG is the most
// communication-dominated of the paper's benchmarks.

#include <cstdint>

#include "apps/npb/makea.hpp"
#include "mpi/mpi.hpp"

namespace icsim::apps::npb {

struct CgCostModel {
  /// Per-nonzero SpMV cost (2 flops + irregular load, cache-resident —
  /// the paper chose class A so the data stays in cache).
  double spmv_nonzero_ns = 4.0;
  double vector_op_ns = 1.1;  ///< per element of axpy/dot work
};

struct CgConfig {
  CgClass cls = class_A();
  int cg_iterations = 25;  ///< inner CG steps per outer iteration
  CgCostModel cost;
};

struct CgResult {
  double zeta = 0.0;
  double seconds = 0.0;         ///< timed region (all outer iterations)
  double mops_total = 0.0;      ///< counted Mops across the job
  double mops_per_process = 0.0;
  double final_rnorm = 0.0;     ///< ||r|| of the last CG solve
  std::uint64_t comm_bytes = 0; ///< global bytes exchanged
};

CgResult run_cg(mpi::Mpi& mpi, const CgConfig& config);

}  // namespace icsim::apps::npb
