#include "apps/npb/ep.hpp"

#include <cmath>

#include "apps/npb/randlc.hpp"

namespace icsim::apps::npb {

namespace {
constexpr int kMk = 16;            // batch: 2^16 pairs
constexpr int kNk = 1 << kMk;
constexpr double kA = 1220703125.0;
constexpr double kS = 271828183.0;
}  // namespace

EpResult run_ep(mpi::Mpi& mpi, const EpConfig& cfg) {
  const std::int64_t nn = 1ll << (cfg.cls.m - kMk);  // number of batches

  // an = a^(2*NK) mod 2^46 by repeated squaring through randlc.
  double t1 = kA;
  for (int i = 0; i < kMk + 1; ++i) {
    double t2 = t1;
    (void)randlc(&t1, t2);
  }
  const double an = t1;

  double sx = 0.0, sy = 0.0;
  std::array<double, 10> q{};
  std::uint64_t my_numbers = 0;

  mpi.barrier();
  const double t0 = mpi.wtime();

  // Batches distributed cyclically across ranks (as NPB EP does).
  std::vector<double> x(2 * kNk);
  for (std::int64_t k = mpi.rank(); k < nn; k += mpi.size()) {
    // Seed for batch k: s * an^k (binary modpow through randlc).
    double seed = kS;
    double power = an;
    std::int64_t kk = k;
    for (;;) {
      const std::int64_t ik = kk / 2;
      if (2 * ik != kk) {
        double p = power;
        (void)randlc(&seed, p);
      }
      if (ik == 0) break;
      double p = power;
      (void)randlc(&power, p);
      kk = ik;
    }

    for (int i = 0; i < 2 * kNk; ++i) {
      x[static_cast<std::size_t>(i)] = randlc(&seed, kA);
    }
    my_numbers += 2 * kNk;

    for (int i = 0; i < kNk; ++i) {
      const double x1 = 2.0 * x[static_cast<std::size_t>(2 * i)] - 1.0;
      const double x2 = 2.0 * x[static_cast<std::size_t>(2 * i + 1)] - 1.0;
      const double t = x1 * x1 + x2 * x2;
      if (t <= 1.0) {
        const double f = std::sqrt(-2.0 * std::log(t) / t);
        const double gx = x1 * f;
        const double gy = x2 * f;
        const auto l = static_cast<std::size_t>(
            std::max(std::abs(gx), std::abs(gy)));
        q[l] += 1.0;
        sx += gx;
        sy += gy;
      }
    }
    mpi.compute(sim::Time::sec(static_cast<double>(2 * kNk) * cfg.per_number_ns * 1e-9));
  }

  // One combining step — EP's entire communication.
  std::array<double, 12> local{}, global{};
  for (std::size_t i = 0; i < 10; ++i) local[i] = q[i];
  local[10] = sx;
  local[11] = sy;
  mpi.allreduce(local.data(), global.data(), local.size(), mpi::ReduceOp::sum);

  mpi.barrier();
  const double t1s = mpi.wtime();

  EpResult r;
  r.sx = global[10];
  r.sy = global[11];
  for (std::size_t i = 0; i < 10; ++i) {
    r.counts[i] = static_cast<std::uint64_t>(global[i] + 0.5);
    r.gaussians += r.counts[i];
  }
  r.seconds = t1s - t0;
  const double total_numbers =
      static_cast<double>(nn) * 2.0 * kNk;  // all ranks combined
  r.mops_per_process = total_numbers / r.seconds / 1e6 / mpi.size();
  r.verified = std::abs((r.sx - cfg.cls.ref_sx) / cfg.cls.ref_sx) < 1e-8 &&
               std::abs((r.sy - cfg.cls.ref_sy) / cfg.cls.ref_sy) < 1e-8;
  return r;
}

}  // namespace icsim::apps::npb
