#pragma once
// The NAS Parallel Benchmarks linear congruential generator:
//   x_{k+1} = a * x_k  (mod 2^46)
// implemented in double precision exactly as the NPB reference (randlc),
// so the generated CG matrix is the reference one.

namespace icsim::apps::npb {

/// Multiplier that advances the stream by `n` steps in one randlc call:
/// a^n mod 2^46, computed by binary powering in the same arithmetic.
inline double lcg_pow(double a, long long n);

inline double randlc(double* x, double a) {
  constexpr double r23 = 0.5 / 4194304.0;   // 2^-23
  constexpr double r46 = r23 * r23;          // 2^-46
  constexpr double t23 = 8388608.0;          // 2^23
  constexpr double t46 = t23 * t23;          // 2^46

  double t1 = r23 * a;
  const double a1 = static_cast<double>(static_cast<long long>(t1));
  const double a2 = a - t23 * a1;

  t1 = r23 * (*x);
  const double x1 = static_cast<double>(static_cast<long long>(t1));
  const double x2 = *x - t23 * x1;

  t1 = a1 * x2 + a2 * x1;
  const double t2 = static_cast<double>(static_cast<long long>(r23 * t1));
  const double z = t1 - t23 * t2;
  const double t3 = t23 * z + a2 * x2;
  const double t4 = static_cast<double>(static_cast<long long>(r46 * t3));
  *x = t3 - t46 * t4;
  return r46 * (*x);
}

inline double lcg_pow(double a, long long n) {
  double base = a;
  double acc = 1.0;
  bool acc_set = false;
  while (n > 0) {
    if (n & 1) {
      if (!acc_set) {
        acc = base;
        acc_set = true;
      } else {
        (void)randlc(&acc, base);
      }
    }
    double b = base;
    (void)randlc(&base, b);
    n >>= 1;
  }
  return acc_set ? acc : 1.0;
}

}  // namespace icsim::apps::npb
