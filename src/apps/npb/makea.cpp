#include "apps/npb/makea.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <mutex>
#include <string>

#include "apps/npb/randlc.hpp"

namespace icsim::apps::npb {

namespace {

/// Random sparse vector with `nz` distinct nonzero locations in [1, n]
/// (NPB sprnvc): values and locations both come from the randlc stream.
void sprnvc(int n, int nz, std::vector<double>& v, std::vector<int>& iv,
            double* tran, double amult) {
  int nn1 = 1;
  while (nn1 < n) nn1 *= 2;

  v.clear();
  iv.clear();
  while (static_cast<int>(v.size()) < nz) {
    const double vecelt = randlc(tran, amult);
    const double vecloc = randlc(tran, amult);
    const int i = static_cast<int>(vecloc * nn1) + 1;
    if (i > n) continue;
    if (std::find(iv.begin(), iv.end(), i) != iv.end()) continue;
    v.push_back(vecelt);
    iv.push_back(i);
  }
}

/// Ensure component `i` has value `val` (NPB vecset).
void vecset(std::vector<double>& v, std::vector<int>& iv, int i, double val) {
  for (std::size_t k = 0; k < iv.size(); ++k) {
    if (iv[k] == i) {
      v[k] = val;
      return;
    }
  }
  v.push_back(val);
  iv.push_back(i);
}

}  // namespace

Csr make_cg_matrix(const CgClass& cls) {
  const int n = cls.n;
  double tran = 314159265.0;
  const double amult = 1220703125.0;
  (void)randlc(&tran, amult);  // NPB warms the stream once in init

  struct Triplet {
    int row, col;
    double val;
  };
  std::vector<Triplet> elts;
  elts.reserve(static_cast<std::size_t>(n) *
               static_cast<std::size_t>((cls.nonzer + 1) * (cls.nonzer + 1)));

  std::vector<double> vc;
  std::vector<int> ivc;
  double size = 1.0;
  const double ratio = std::pow(cls.rcond, 1.0 / n);

  for (int iouter = 1; iouter <= n; ++iouter) {
    sprnvc(n, cls.nonzer, vc, ivc, &tran, amult);
    vecset(vc, ivc, iouter, 0.5);
    for (std::size_t jv = 0; jv < ivc.size(); ++jv) {
      const int jcol = ivc[jv];
      const double scale = size * vc[jv];
      for (std::size_t iv = 0; iv < ivc.size(); ++iv) {
        elts.push_back(Triplet{ivc[iv], jcol, vc[iv] * scale});
      }
    }
    size *= ratio;
  }
  for (int i = 1; i <= n; ++i) {
    elts.push_back(Triplet{i, i, cls.rcond - cls.shift});
  }

  // Assemble CSR, summing duplicates (NPB sparse()).
  std::sort(elts.begin(), elts.end(), [](const Triplet& a, const Triplet& b) {
    return a.row != b.row ? a.row < b.row : a.col < b.col;
  });
  Csr m;
  m.n = n;
  m.rowptr.assign(static_cast<std::size_t>(n) + 1, 0);
  m.col.reserve(elts.size());
  m.val.reserve(elts.size());
  int cur_row = -1, cur_col = -1;
  for (const Triplet& t : elts) {
    if (t.row == cur_row && t.col == cur_col) {
      m.val.back() += t.val;
    } else {
      m.col.push_back(t.col - 1);  // to 0-based
      m.val.push_back(t.val);
      cur_row = t.row;
      cur_col = t.col;
    }
    m.rowptr[static_cast<std::size_t>(t.row)] = static_cast<int>(m.col.size());
  }
  // rowptr currently holds end offsets at row positions; fill gaps.
  for (int r = 1; r <= n; ++r) {
    m.rowptr[static_cast<std::size_t>(r)] = std::max(
        m.rowptr[static_cast<std::size_t>(r)], m.rowptr[static_cast<std::size_t>(r - 1)]);
  }
  return m;
}

const Csr& cached_cg_matrix(const CgClass& cls) {
  static std::mutex mu;
  static std::map<std::string, Csr> cache;
  std::scoped_lock lock(mu);
  auto [it, inserted] = cache.try_emplace(cls.name);
  if (inserted) it->second = make_cg_matrix(cls);
  return it->second;
}

}  // namespace icsim::apps::npb
