#pragma once
// NAS Parallel Benchmark IS (Integer Sort) — extension kernel.
//
// Ranks N integer keys drawn from the NPB random stream (each key is the
// average of four uniforms, giving the benchmark's Gaussian-ish key
// density).  Parallel structure follows NPB IS: every process generates
// its block of keys, counts them into per-destination buckets by key
// range, exchanges counts (alltoall) and then keys (alltoallv), and
// count-sorts its received range.  IS is the *bandwidth*-dominated
// counterpoint to CG's latency-dominated pattern: the alltoallv moves
// large blocks, which is where 4X InfiniBand's fat links pay off.
//
// Verification is NPB's "full verification" idea: the concatenated key
// ranges must be globally sorted (checked with a boundary exchange) and
// the key population must be conserved.

#include <cstdint>

#include "mpi/mpi.hpp"

namespace icsim::apps::npb {

struct IsClass {
  const char* name = "S";
  int total_keys_log2 = 16;
  int max_key_log2 = 11;
};

[[nodiscard]] inline IsClass is_class_S() { return {"S", 16, 11}; }
[[nodiscard]] inline IsClass is_class_W() { return {"W", 20, 16}; }
[[nodiscard]] inline IsClass is_class_A() { return {"A", 23, 19}; }

struct IsConfig {
  IsClass cls = is_class_S();
  int iterations = 10;  ///< NPB IS performs 10 ranking iterations
  double per_key_ns = 6.0;  ///< counting/ranking cost per key per pass
};

struct IsResult {
  double seconds = 0.0;
  double mkeys_per_sec_per_process = 0.0;
  std::uint64_t keys_total = 0;
  std::uint64_t comm_bytes = 0;
  bool sorted = false;          ///< global order verified
  bool conserved = false;       ///< key population conserved
};

IsResult run_is(mpi::Mpi& mpi, const IsConfig& config);

}  // namespace icsim::apps::npb
