#pragma once
// NPB CG sparse-matrix generation (the `makea` routine).
//
// Builds the benchmark's random sparse symmetric positive-definite matrix:
// a sum of n sparse outer products x_i x_i^T with geometrically decreasing
// weights (condition number rcond), plus (rcond - shift) on the diagonal.
// Follows the NPB 2.x serial algorithm, including its randlc sequences, so
// the matrix is deterministic and class-reproducible.

#include <cstddef>
#include <vector>

namespace icsim::apps::npb {

struct CgClass {
  const char* name = "S";
  int n = 1400;
  int nonzer = 7;
  int niter = 15;
  double shift = 10.0;
  double rcond = 0.1;
};

[[nodiscard]] inline CgClass class_S() { return {"S", 1400, 7, 15, 10.0, 0.1}; }
[[nodiscard]] inline CgClass class_W() { return {"W", 7000, 8, 15, 12.0, 0.1}; }
[[nodiscard]] inline CgClass class_A() { return {"A", 14000, 11, 15, 20.0, 0.1}; }
[[nodiscard]] inline CgClass class_B() { return {"B", 75000, 13, 75, 60.0, 0.1}; }

/// Compressed sparse row matrix (0-based indexing).
struct Csr {
  int n = 0;
  std::vector<int> rowptr;  ///< size n+1
  std::vector<int> col;
  std::vector<double> val;
  [[nodiscard]] std::size_t nnz() const { return col.size(); }
};

/// Generate the full benchmark matrix for a class (deterministic).
[[nodiscard]] Csr make_cg_matrix(const CgClass& cls);

/// Process-wide cache: ranks of one simulated job share the same matrix,
/// so it is generated once per class per process.  Read-only after build.
[[nodiscard]] const Csr& cached_cg_matrix(const CgClass& cls);

}  // namespace icsim::apps::npb
