#include "apps/npb/ft.hpp"

#include <cmath>
#include <stdexcept>

#include "apps/npb/randlc.hpp"

namespace icsim::apps::npb {

void fft_line(std::complex<double>* data, int n, bool inverse) {
  // Iterative radix-2 Cooley-Tukey with bit-reversal permutation.
  for (int i = 1, j = 0; i < n; ++i) {
    int bit = n >> 1;
    for (; (j & bit) != 0; bit >>= 1) j &= ~bit;
    j |= bit;
    if (i < j) std::swap(data[i], data[j]);
  }
  for (int len = 2; len <= n; len <<= 1) {
    const double ang = (inverse ? 2.0 : -2.0) * M_PI / len;
    const std::complex<double> wlen(std::cos(ang), std::sin(ang));
    for (int i = 0; i < n; i += len) {
      std::complex<double> w(1.0, 0.0);
      for (int k = 0; k < len / 2; ++k) {
        const std::complex<double> u = data[i + k];
        const std::complex<double> v = data[i + k + len / 2] * w;
        data[i + k] = u + v;
        data[i + k + len / 2] = u - v;
        w *= wlen;
      }
    }
  }
  if (inverse) {
    const double inv = 1.0 / n;
    for (int i = 0; i < n; ++i) data[i] *= inv;
  }
}

namespace {

using Cx = std::complex<double>;

double butterflies(int n) {  // per line
  double b = 0.0;
  for (int len = 2; len <= n; len <<= 1) b += n / 2.0;
  return b;
}

}  // namespace

FtResult run_ft(mpi::Mpi& mpi, const FtConfig& cfg) {
  const int nx = cfg.cls.nx, ny = cfg.cls.ny, nz = cfg.cls.nz;
  const int P = mpi.size();
  if (nz % P != 0 || nx % P != 0) {
    throw std::invalid_argument("run_ft: nx and nz must divide the process count");
  }
  const int zl = nz / P;  // z planes in slab layout
  const int xl = nx / P;  // x pencils in transposed layout
  const int z0 = mpi.rank() * zl;
  const int x0 = mpi.rank() * xl;

  // A: slab layout [z_local][y][x], x contiguous.
  std::vector<Cx> a(static_cast<std::size_t>(zl) * ny * nx);
  auto ia = [&](int z, int y, int x) {
    return (static_cast<std::size_t>(z) * ny + y) * static_cast<std::size_t>(nx) + x;
  };
  // B: transposed layout [x_local][y][z], z contiguous.
  std::vector<Cx> b(static_cast<std::size_t>(xl) * ny * nz);
  auto ib = [&](int x, int y, int z) {
    return (static_cast<std::size_t>(x) * ny + y) * static_cast<std::size_t>(nz) + z;
  };

  std::uint64_t transpose_bytes = 0;
  double flops = 0.0;

  // ---- helpers -------------------------------------------------------
  std::vector<Cx> line(static_cast<std::size_t>(std::max(ny, std::max(nx, nz))));
  auto charge_ffts = [&](double lines, int n) {
    const double bf = lines * butterflies(n);
    flops += 10.0 * bf;
    mpi.compute(sim::Time::sec(bf * cfg.butterfly_ns * 1e-9));
  };

  auto fft_xy = [&](bool inverse) {
    for (int z = 0; z < zl; ++z) {
      for (int y = 0; y < ny; ++y) {
        fft_line(&a[ia(z, y, 0)], nx, inverse);
      }
    }
    charge_ffts(static_cast<double>(zl) * ny, nx);
    for (int z = 0; z < zl; ++z) {
      for (int x = 0; x < nx; ++x) {
        for (int y = 0; y < ny; ++y) line[static_cast<std::size_t>(y)] = a[ia(z, y, x)];
        fft_line(line.data(), ny, inverse);
        for (int y = 0; y < ny; ++y) a[ia(z, y, x)] = line[static_cast<std::size_t>(y)];
      }
    }
    charge_ffts(static_cast<double>(zl) * nx, ny);
  };

  auto fft_z = [&](bool inverse) {
    for (int x = 0; x < xl; ++x) {
      for (int y = 0; y < ny; ++y) {
        fft_line(&b[ib(x, y, 0)], nz, inverse);
      }
    }
    charge_ffts(static_cast<double>(xl) * ny, nz);
  };

  // Transpose A (slab) -> B (pencil) or back: a full alltoall where the
  // block for peer p holds my z-planes restricted to p's x range.
  const std::size_t block = static_cast<std::size_t>(zl) * ny * xl;
  std::vector<Cx> sendbuf(block * static_cast<std::size_t>(P));
  std::vector<Cx> recvbuf(block * static_cast<std::size_t>(P));
  auto transpose_fwd = [&] {
    for (int p = 0; p < P; ++p) {
      std::size_t o = block * static_cast<std::size_t>(p);
      for (int z = 0; z < zl; ++z) {
        for (int y = 0; y < ny; ++y) {
          for (int x = 0; x < xl; ++x) {
            sendbuf[o++] = a[ia(z, y, p * xl + x)];
          }
        }
      }
    }
    mpi.alltoall(sendbuf.data(), block, recvbuf.data());
    transpose_bytes += sendbuf.size() * sizeof(Cx);
    for (int p = 0; p < P; ++p) {
      std::size_t o = block * static_cast<std::size_t>(p);
      for (int z = 0; z < zl; ++z) {
        for (int y = 0; y < ny; ++y) {
          for (int x = 0; x < xl; ++x) {
            b[ib(x, y, p * zl + z)] = recvbuf[o++];
          }
        }
      }
    }
  };
  auto transpose_bwd = [&] {
    for (int p = 0; p < P; ++p) {
      std::size_t o = block * static_cast<std::size_t>(p);
      for (int z = 0; z < zl; ++z) {
        for (int y = 0; y < ny; ++y) {
          for (int x = 0; x < xl; ++x) {
            sendbuf[o++] = b[ib(x, y, p * zl + z)];
          }
        }
      }
    }
    mpi.alltoall(sendbuf.data(), block, recvbuf.data());
    transpose_bytes += sendbuf.size() * sizeof(Cx);
    for (int p = 0; p < P; ++p) {
      std::size_t o = block * static_cast<std::size_t>(p);
      for (int z = 0; z < zl; ++z) {
        for (int y = 0; y < ny; ++y) {
          for (int x = 0; x < xl; ++x) {
            a[ia(z, y, p * xl + x)] = recvbuf[o++];
          }
        }
      }
    }
  };

  // ---- initial state from the NPB stream -----------------------------
  {
    double seed = 314159265.0;
    const double a_mult = 1220703125.0;
    const long long my_offset =
        2ll * static_cast<long long>(z0) * ny * nx;  // 2 draws per point
    if (my_offset > 0) {
      const double jump = lcg_pow(a_mult, my_offset);
      (void)randlc(&seed, jump);
    }
    for (int z = 0; z < zl; ++z) {
      for (int y = 0; y < ny; ++y) {
        for (int x = 0; x < nx; ++x) {
          const double re = randlc(&seed, a_mult);
          const double im = randlc(&seed, a_mult);
          a[ia(z, y, x)] = Cx(re, im);
        }
      }
    }
  }

  mpi.barrier();
  const double t0 = mpi.wtime();

  // Forward 3-D FFT into the spectrum (held in B / pencil layout).
  fft_xy(/*inverse=*/false);
  transpose_fwd();
  fft_z(/*inverse=*/false);
  std::vector<Cx> spectrum = b;  // U0

  // Per-point single-step evolution factor exp(-4 alpha pi^2 |k|^2).
  std::vector<double> step(b.size());
  for (int x = 0; x < xl; ++x) {
    const int gx = x0 + x;
    const int kx = gx <= nx / 2 ? gx : gx - nx;
    for (int y = 0; y < ny; ++y) {
      const int ky = y <= ny / 2 ? y : y - ny;
      for (int z = 0; z < nz; ++z) {
        const int kz = z <= nz / 2 ? z : z - nz;
        const double k2 = static_cast<double>(kx) * kx +
                          static_cast<double>(ky) * ky +
                          static_cast<double>(kz) * kz;
        step[ib(x, y, z)] = std::exp(-4.0 * cfg.alpha * M_PI * M_PI * k2);
      }
    }
  }

  FtResult result;
  for (int iter = 1; iter <= cfg.cls.niter; ++iter) {
    // Evolve the running spectrum one more time step.
    for (std::size_t i = 0; i < spectrum.size(); ++i) spectrum[i] *= step[i];
    flops += 2.0 * static_cast<double>(spectrum.size());
    mpi.compute(sim::Time::sec(static_cast<double>(spectrum.size()) * cfg.point_ns * 1e-9));

    // Inverse transform a copy to physical space for the checksum.
    b = spectrum;
    fft_z(/*inverse=*/true);
    transpose_bwd();
    fft_xy(/*inverse=*/true);

    // NPB checksum: 1024 strided samples of the physical field.
    Cx local(0.0, 0.0);
    for (int j = 1; j <= 1024; ++j) {
      const int q = j % nx;
      const int r = (3 * j) % ny;
      const int s = (5 * j) % nz;
      if (s >= z0 && s < z0 + zl) {
        local += a[ia(s - z0, r, q)];
      }
    }
    double in[2] = {local.real(), local.imag()};
    double out[2];
    mpi.allreduce(in, out, 2, mpi::ReduceOp::sum);
    result.checksums.emplace_back(out[0], out[1]);
  }

  mpi.barrier();
  result.seconds = mpi.wtime() - t0;
  const double total_flops = mpi.allreduce(flops, mpi::ReduceOp::sum);
  result.mflops_per_process = total_flops / result.seconds / 1e6 / P;
  const double tb = static_cast<double>(transpose_bytes);
  result.transpose_bytes =
      static_cast<std::uint64_t>(mpi.allreduce(tb, mpi::ReduceOp::sum));
  return result;
}

}  // namespace icsim::apps::npb
