#pragma once
// NAS Parallel Benchmark EP (Embarrassingly Parallel) — extension kernel.
//
// Generates 2^m pairs of Gaussian deviates with the Marsaglia polar
// method from the NPB linear congruential stream, accumulates the sums
// and the annulus counts, and combines them with one allreduce.  EP is
// the anti-CG: virtually no communication, so it pins the "both networks
// scale perfectly when the application doesn't talk" end of the spectrum.
// Our generator is bit-faithful, so the published NPB verification sums
// apply exactly.

#include <array>
#include <cstdint>

#include "mpi/mpi.hpp"

namespace icsim::apps::npb {

struct EpClass {
  const char* name = "S";
  int m = 24;  ///< 2^m pairs
  double ref_sx = 0.0, ref_sy = 0.0;  ///< NPB verification sums
};

[[nodiscard]] inline EpClass ep_class_S() {
  return {"S", 24, -3.247834652034740e+3, -6.958407078382297e+3};
}
[[nodiscard]] inline EpClass ep_class_W() {
  return {"W", 25, -2.863319731645753e+3, -6.320053679109499e+3};
}
[[nodiscard]] inline EpClass ep_class_A() {
  return {"A", 28, -4.295875165629892e+3, -1.580732573678431e+4};
}

struct EpConfig {
  EpClass cls = ep_class_S();
  /// Compute cost per generated random number (generation + transform).
  double per_number_ns = 18.0;
};

struct EpResult {
  double sx = 0.0, sy = 0.0;
  std::array<std::uint64_t, 10> counts{};  ///< annulus histogram
  std::uint64_t gaussians = 0;             ///< accepted pairs
  double seconds = 0.0;
  double mops_per_process = 0.0;
  bool verified = false;  ///< sums match the NPB reference to 1e-8
};

EpResult run_ep(mpi::Mpi& mpi, const EpConfig& config);

}  // namespace icsim::apps::npb
