#include "apps/npb/cg.hpp"

#include <cmath>
#include <cstring>
#include <stdexcept>
#include <vector>

namespace icsim::apps::npb {

namespace {

constexpr int kRowReduceTag = 400;
constexpr int kTransposeTag = 401;
constexpr int kScalarTag = 402;

struct Layout {
  int nprows = 1, npcols = 1;
  int prow = 0, pcol = 0;
  int row_lo = 0, row_hi = 0;
  int col_lo = 0, col_hi = 0;

  Layout(int nprocs, int rank, int n) {
    if ((nprocs & (nprocs - 1)) != 0) {
      throw std::invalid_argument("NPB CG requires a power-of-two process count");
    }
    int k = 0;
    while ((1 << k) < nprocs) ++k;
    nprows = 1 << (k / 2);
    npcols = nprocs / nprows;  // == nprows or 2*nprows
    if (n % npcols != 0 || n % nprows != 0) {
      throw std::invalid_argument(
          "NPB CG: n must divide evenly into the process grid");
    }
    prow = rank / npcols;
    pcol = rank % npcols;
    auto split = [n](int parts, int idx, int& lo, int& hi) {
      const int base = n / parts, rem = n % parts;
      lo = idx * base + std::min(idx, rem);
      hi = lo + base + (idx < rem ? 1 : 0);
    };
    split(nprows, prow, row_lo, row_hi);
    split(npcols, pcol, col_lo, col_hi);
  }

  [[nodiscard]] int rank_of(int r, int c) const { return r * npcols + c; }
  [[nodiscard]] int roww() const { return row_hi - row_lo; }
  [[nodiscard]] int colw() const { return col_hi - col_lo; }

  /// Transpose-exchange partner (see header).  For square grids this is
  /// the matrix transpose position; for npcols == 2*nprows each row block
  /// spans two column blocks and processors pair up accordingly.
  [[nodiscard]] int transpose_partner() const {
    if (npcols == nprows) return rank_of(pcol, prow);
    return rank_of(pcol / 2, 2 * prow + (pcol & 1));
  }
  /// Which half of the row-summed w this rank ships (rect grids).
  [[nodiscard]] int transpose_half() const {
    return npcols == nprows ? 0 : (pcol & 1);
  }
};

/// Local block of the benchmark matrix in CSR with local column indices.
struct LocalBlock {
  std::vector<int> rowptr;
  std::vector<int> col;
  std::vector<double> val;
  [[nodiscard]] std::size_t nnz() const { return col.size(); }
};

LocalBlock extract_block(const Csr& a, const Layout& l) {
  LocalBlock b;
  b.rowptr.assign(static_cast<std::size_t>(l.roww()) + 1, 0);
  for (int r = l.row_lo; r < l.row_hi; ++r) {
    for (int k = a.rowptr[static_cast<std::size_t>(r)];
         k < a.rowptr[static_cast<std::size_t>(r) + 1]; ++k) {
      const int c = a.col[static_cast<std::size_t>(k)];
      if (c >= l.col_lo && c < l.col_hi) {
        b.col.push_back(c - l.col_lo);
        b.val.push_back(a.val[static_cast<std::size_t>(k)]);
      }
    }
    b.rowptr[static_cast<std::size_t>(r - l.row_lo) + 1] =
        static_cast<int>(b.col.size());
  }
  return b;
}

}  // namespace

CgResult run_cg(mpi::Mpi& mpi, const CgConfig& cfg) {
  const Layout l(mpi.size(), mpi.rank(), cfg.cls.n);
  const Csr& a = cached_cg_matrix(cfg.cls);
  const LocalBlock blk = extract_block(a, l);
  const int colw = l.colw();
  const int roww = l.roww();
  const int l2npcols = [&] {
    int s = 0;
    while ((1 << s) < l.npcols) ++s;
    return s;
  }();

  std::vector<double> x(static_cast<std::size_t>(colw), 1.0);
  std::vector<double> z(static_cast<std::size_t>(colw));
  std::vector<double> p(static_cast<std::size_t>(colw));
  std::vector<double> q(static_cast<std::size_t>(colw));
  std::vector<double> r(static_cast<std::size_t>(colw));
  std::vector<double> w(static_cast<std::size_t>(roww));
  std::vector<double> wrecv(static_cast<std::size_t>(roww));

  std::uint64_t comm_bytes = 0;
  double flops = 0.0;

  // Scalar allreduce along the processor row (recursive doubling).
  auto rowsum_scalar = [&](double v) {
    for (int s = 0; s < l2npcols; ++s) {
      const int partner = l.rank_of(l.prow, l.pcol ^ (1 << s));
      double in = 0.0;
      mpi.sendrecv(&v, sizeof v, partner, kScalarTag, &in, sizeof in, partner,
                   kScalarTag);
      comm_bytes += sizeof v;
      v += in;
    }
    return v;
  };

  auto dot = [&](const std::vector<double>& u, const std::vector<double>& v) {
    double d = 0.0;
    for (int i = 0; i < colw; ++i) {
      d += u[static_cast<std::size_t>(i)] * v[static_cast<std::size_t>(i)];
    }
    flops += 2.0 * colw;
    mpi.compute(sim::Time::sec(2.0 * colw * cfg.cost.vector_op_ns * 1e-9));
    return rowsum_scalar(d);
  };

  // q_out = A * p_in : local SpMV, row allreduce, transpose exchange.
  auto matvec = [&](const std::vector<double>& pin, std::vector<double>& qout) {
    for (int i = 0; i < roww; ++i) {
      double sum = 0.0;
      for (int k = blk.rowptr[static_cast<std::size_t>(i)];
           k < blk.rowptr[static_cast<std::size_t>(i) + 1]; ++k) {
        sum += blk.val[static_cast<std::size_t>(k)] *
               pin[static_cast<std::size_t>(blk.col[static_cast<std::size_t>(k)])];
      }
      w[static_cast<std::size_t>(i)] = sum;
    }
    flops += 2.0 * static_cast<double>(blk.nnz());
    mpi.compute(sim::Time::sec(static_cast<double>(blk.nnz()) * cfg.cost.spmv_nonzero_ns * 1e-9));

    for (int s = 0; s < l2npcols; ++s) {
      const int partner = l.rank_of(l.prow, l.pcol ^ (1 << s));
      mpi.sendrecv(w.data(), w.size() * sizeof(double), partner, kRowReduceTag,
                   wrecv.data(), wrecv.size() * sizeof(double), partner,
                   kRowReduceTag);
      comm_bytes += w.size() * sizeof(double);
      for (int i = 0; i < roww; ++i) {
        w[static_cast<std::size_t>(i)] += wrecv[static_cast<std::size_t>(i)];
      }
      flops += static_cast<double>(roww);
      mpi.compute(sim::Time::sec(roww * cfg.cost.vector_op_ns * 1e-9));
    }

    const int partner = l.transpose_partner();
    const double* send_base =
        w.data() + static_cast<std::ptrdiff_t>(l.transpose_half()) * colw;
    if (partner == mpi.rank()) {
      std::memcpy(qout.data(), send_base, static_cast<std::size_t>(colw) * sizeof(double));
    } else {
      mpi.sendrecv(send_base, static_cast<std::size_t>(colw) * sizeof(double),
                   partner, kTransposeTag, qout.data(),
                   static_cast<std::size_t>(colw) * sizeof(double), partner,
                   kTransposeTag);
      comm_bytes += static_cast<std::size_t>(colw) * sizeof(double);
    }
  };

  // One CG solve of A z = x; returns ||x - A z||.
  auto cg_solve = [&] {
    std::fill(z.begin(), z.end(), 0.0);
    r = x;
    p = r;
    double rho = dot(r, r);
    for (int it = 0; it < cfg.cg_iterations; ++it) {
      matvec(p, q);
      const double d = dot(p, q);
      const double alpha = rho / d;
      for (int i = 0; i < colw; ++i) {
        z[static_cast<std::size_t>(i)] += alpha * p[static_cast<std::size_t>(i)];
        r[static_cast<std::size_t>(i)] -= alpha * q[static_cast<std::size_t>(i)];
      }
      flops += 4.0 * colw;
      mpi.compute(sim::Time::sec(4.0 * colw * cfg.cost.vector_op_ns * 1e-9));
      const double rho0 = rho;
      rho = dot(r, r);
      const double beta = rho / rho0;
      for (int i = 0; i < colw; ++i) {
        p[static_cast<std::size_t>(i)] =
            r[static_cast<std::size_t>(i)] + beta * p[static_cast<std::size_t>(i)];
      }
      flops += 2.0 * colw;
      mpi.compute(sim::Time::sec(2.0 * colw * cfg.cost.vector_op_ns * 1e-9));
    }
    // Residual of the solve: ||x - A z||.
    matvec(z, q);
    double part = 0.0;
    for (int i = 0; i < colw; ++i) {
      const double dif = x[static_cast<std::size_t>(i)] - q[static_cast<std::size_t>(i)];
      part += dif * dif;
    }
    flops += 3.0 * colw;
    mpi.compute(sim::Time::sec(3.0 * colw * cfg.cost.vector_op_ns * 1e-9));
    return std::sqrt(rowsum_scalar(part));
  };

  // Untimed warm-up iteration (as the NPB driver does), then the timed run.
  double zeta = 0.0, rnorm = 0.0;
  rnorm = cg_solve();
  {
    const double xz = dot(x, z);
    zeta = cfg.cls.shift + 1.0 / xz;
    const double znorm = std::sqrt(dot(z, z));
    for (int i = 0; i < colw; ++i) {
      x[static_cast<std::size_t>(i)] = z[static_cast<std::size_t>(i)] / znorm;
    }
  }
  std::fill(x.begin(), x.end(), 1.0);
  flops = 0.0;
  comm_bytes = 0;

  mpi.barrier();
  const double t0 = mpi.wtime();
  for (int outer = 1; outer <= cfg.cls.niter; ++outer) {
    rnorm = cg_solve();
    const double xz = dot(x, z);
    zeta = cfg.cls.shift + 1.0 / xz;
    const double znorm = std::sqrt(dot(z, z));
    for (int i = 0; i < colw; ++i) {
      x[static_cast<std::size_t>(i)] = z[static_cast<std::size_t>(i)] / znorm;
    }
    flops += 4.0 * colw;
    mpi.compute(sim::Time::sec(4.0 * colw * cfg.cost.vector_op_ns * 1e-9));
  }
  mpi.barrier();
  const double t1 = mpi.wtime();

  CgResult result;
  result.zeta = zeta;
  result.seconds = t1 - t0;
  result.final_rnorm = rnorm;
  const double total_flops = mpi.allreduce(flops, mpi::ReduceOp::sum);
  result.mops_total = total_flops / result.seconds / 1e6;
  result.mops_per_process = result.mops_total / mpi.size();
  const double cb = static_cast<double>(comm_bytes);
  result.comm_bytes =
      static_cast<std::uint64_t>(mpi.allreduce(cb, mpi::ReduceOp::sum));
  return result;
}

}  // namespace icsim::apps::npb
