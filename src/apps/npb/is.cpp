#include "apps/npb/is.hpp"

#include <algorithm>
#include <vector>

#include "apps/npb/randlc.hpp"

namespace icsim::apps::npb {

namespace {
constexpr double kA = 1220703125.0;
constexpr double kSeed = 314159265.0;
}  // namespace

IsResult run_is(mpi::Mpi& mpi, const IsConfig& cfg) {
  const int nprocs = mpi.size();
  const std::int64_t total_keys = 1ll << cfg.cls.total_keys_log2;
  const std::int64_t max_key = 1ll << cfg.cls.max_key_log2;
  const std::int64_t keys_per_proc = total_keys / nprocs;
  // Key range served by each destination process.
  const std::int64_t range = (max_key + nprocs - 1) / nprocs;

  // Generate my block of keys from the shared stream: my block starts
  // 4*keys_per_proc*rank draws into the sequence.
  double seed = kSeed;
  if (mpi.rank() > 0) {
    const double jump = lcg_pow(kA, 4ll * keys_per_proc * mpi.rank());
    (void)randlc(&seed, jump);
  }
  std::vector<int> keys(static_cast<std::size_t>(keys_per_proc));
  for (auto& k : keys) {
    const double r = randlc(&seed, kA) + randlc(&seed, kA) +
                     randlc(&seed, kA) + randlc(&seed, kA);
    k = static_cast<int>(r * 0.25 * static_cast<double>(max_key));
  }

  std::uint64_t comm_bytes = 0;
  std::vector<int> recv_keys;
  std::vector<std::int64_t> local_counts;

  mpi.barrier();
  const double t0 = mpi.wtime();

  for (int iter = 0; iter < cfg.iterations; ++iter) {
    // NPB IS perturbs a key each iteration to defeat caching tricks.
    const std::size_t slot = static_cast<std::size_t>(iter) % keys.size();
    keys[slot] = static_cast<int>((keys[slot] + iter) % max_key);

    // Count per destination bucket.
    std::vector<int> send_counts(static_cast<std::size_t>(nprocs), 0);
    for (const int k : keys) {
      ++send_counts[static_cast<std::size_t>(k / range)];
    }
    mpi.compute(sim::Time::sec(static_cast<double>(keys.size()) * cfg.per_key_ns * 1e-9));

    // Exchange counts, then the keys themselves.
    std::vector<int> recv_counts(static_cast<std::size_t>(nprocs), 0);
    mpi.alltoall(send_counts.data(), 1, recv_counts.data());

    std::vector<int> send_displs(static_cast<std::size_t>(nprocs), 0);
    std::vector<int> recv_displs(static_cast<std::size_t>(nprocs), 0);
    for (int p = 1; p < nprocs; ++p) {
      send_displs[static_cast<std::size_t>(p)] =
          send_displs[static_cast<std::size_t>(p - 1)] +
          send_counts[static_cast<std::size_t>(p - 1)];
      recv_displs[static_cast<std::size_t>(p)] =
          recv_displs[static_cast<std::size_t>(p - 1)] +
          recv_counts[static_cast<std::size_t>(p - 1)];
    }
    std::vector<int> outgoing(keys.size());
    {
      std::vector<int> cursor = send_displs;
      for (const int k : keys) {
        outgoing[static_cast<std::size_t>(
            cursor[static_cast<std::size_t>(k / range)]++)] = k;
      }
    }
    const int total_recv = recv_displs[static_cast<std::size_t>(nprocs - 1)] +
                           recv_counts[static_cast<std::size_t>(nprocs - 1)];
    recv_keys.assign(static_cast<std::size_t>(total_recv), 0);
    mpi.alltoallv(outgoing.data(), send_counts, send_displs, recv_keys.data(),
                  recv_counts, recv_displs);
    comm_bytes += outgoing.size() * sizeof(int);

    // Count-sort my key range.
    local_counts.assign(static_cast<std::size_t>(range), 0);
    const std::int64_t base = static_cast<std::int64_t>(mpi.rank()) * range;
    for (const int k : recv_keys) {
      ++local_counts[static_cast<std::size_t>(k - base)];
    }
    mpi.compute(sim::Time::sec(static_cast<double>(recv_keys.size()) * cfg.per_key_ns * 1e-9));
  }

  mpi.barrier();
  const double t1 = mpi.wtime();

  // --- Verification ---------------------------------------------------
  // Population conservation.
  const double got = static_cast<double>(recv_keys.size());
  const double total_got = mpi.allreduce(got, mpi::ReduceOp::sum);
  const bool conserved =
      static_cast<std::int64_t>(total_got + 0.5) == total_keys;

  // Global sortedness: my smallest key must be >= the previous rank's
  // largest (ranges are contiguous by construction; verify anyway).
  int my_min = recv_keys.empty() ? static_cast<int>(max_key) : *std::min_element(recv_keys.begin(), recv_keys.end());
  int my_max = recv_keys.empty() ? -1 : *std::max_element(recv_keys.begin(), recv_keys.end());
  bool sorted = true;
  if (nprocs > 1) {
    int prev_max = -1;
    const int up = mpi.rank() + 1, down = mpi.rank() - 1;
    if (mpi.rank() == 0) {
      mpi.send(&my_max, sizeof my_max, up, 77);
    } else if (mpi.rank() == nprocs - 1) {
      mpi.recv(&prev_max, sizeof prev_max, down, 77);
    } else {
      mpi.sendrecv(&my_max, sizeof my_max, up, 77, &prev_max,
                   sizeof prev_max, down, 77);
    }
    if (mpi.rank() > 0 && !recv_keys.empty() && prev_max > my_min) {
      sorted = false;
    }
    sorted = mpi.allreduce(sorted ? 1.0 : 0.0, mpi::ReduceOp::min) > 0.5;
  }

  IsResult r;
  r.seconds = t1 - t0;
  r.keys_total = static_cast<std::uint64_t>(total_keys);
  r.mkeys_per_sec_per_process = static_cast<double>(total_keys) *
                                cfg.iterations / r.seconds / 1e6 / nprocs;
  const double cb = static_cast<double>(comm_bytes);
  r.comm_bytes = static_cast<std::uint64_t>(mpi.allreduce(cb, mpi::ReduceOp::sum));
  r.sorted = sorted;
  r.conserved = conserved;
  return r;
}

}  // namespace icsim::apps::npb
