#include "apps/lammps/md.hpp"

#include <cmath>
#include <cstring>
#include <stdexcept>

namespace icsim::apps::md {

namespace {

constexpr int kBorderTag = 100;   // + pass index
constexpr int kForwardTag = 110;  // + pass index
constexpr int kMigrateTag = 120;  // + 2*dim + (dir>0)

/// Deterministic per-atom hash (splitmix64) so initial velocities depend
/// only on the global atom id, not on the decomposition.
std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}
double hash_uniform(std::uint64_t id, int component) {
  const std::uint64_t h = splitmix64(id * 3 + static_cast<std::uint64_t>(component));
  return (static_cast<double>(h >> 11) * (1.0 / 9007199254740992.0)) - 0.5;
}

}  // namespace

MdSimulation::MdSimulation(mpi::Mpi& mpi, const MdConfig& config)
    : mpi_(mpi), cfg_(config), grid_(mpi.size(), mpi.rank()) {
  lattice_a_ = std::cbrt(4.0 / cfg_.density);
  cutneigh_ = cfg_.cutoff + cfg_.skin;
  bonds_.chain_length = cfg_.chain_length;
  for (int d = 0; d < 3; ++d) {
    const int cells_d = d == 0 ? cfg_.cells_x : d == 1 ? cfg_.cells_y : cfg_.cells_z;
    bonds_.boxlen[d] = cells_d * lattice_a_ * grid_.dims(d);
  }

  const int cells[3] = {cfg_.cells_x, cfg_.cells_y, cfg_.cells_z};
  for (int d = 0; d < 3; ++d) {
    const double local_len = cells[d] * lattice_a_;
    if (local_len < cutneigh_) {
      throw std::invalid_argument(
          "MdSimulation: per-rank box smaller than the neighbour cutoff");
    }
    boxlen_[d] = local_len * grid_.dims(d);
    boxlo_[d] = grid_.coord(d) * local_len;
    boxhi_[d] = boxlo_[d] + local_len;
  }
}

void MdSimulation::create_lattice() {
  static constexpr double kBasis[4][3] = {
      {0.0, 0.0, 0.0}, {0.5, 0.5, 0.0}, {0.5, 0.0, 0.5}, {0.0, 0.5, 0.5}};
  const long NX = static_cast<long>(cfg_.cells_x) * grid_.px;
  const long NY = static_cast<long>(cfg_.cells_y) * grid_.py;
  for (int cz = grid_.cz * cfg_.cells_z; cz < (grid_.cz + 1) * cfg_.cells_z; ++cz) {
    for (int cy = grid_.cy * cfg_.cells_y; cy < (grid_.cy + 1) * cfg_.cells_y; ++cy) {
      for (int cx = grid_.cx * cfg_.cells_x; cx < (grid_.cx + 1) * cfg_.cells_x; ++cx) {
        for (int s = 0; s < 4; ++s) {
          const auto gid = static_cast<std::uint64_t>(
              ((static_cast<long>(cz) * NY + cy) * NX + cx) * 4 + s);
          atoms_.add_local((cx + kBasis[s][0]) * lattice_a_,
                           (cy + kBasis[s][1]) * lattice_a_,
                           (cz + kBasis[s][2]) * lattice_a_, 0.0, 0.0, 0.0, gid);
        }
      }
    }
  }
}

void MdSimulation::init_velocities() {
  for (int i = 0; i < atoms_.nlocal; ++i) {
    const std::uint64_t gid = atoms_.id[static_cast<std::size_t>(i)];
    atoms_.vx[static_cast<std::size_t>(i)] = hash_uniform(gid, 0);
    atoms_.vy[static_cast<std::size_t>(i)] = hash_uniform(gid, 1);
    atoms_.vz[static_cast<std::size_t>(i)] = hash_uniform(gid, 2);
  }
  // Zero the aggregate momentum, then rescale to the target temperature.
  double local[4] = {0.0, 0.0, 0.0, static_cast<double>(atoms_.nlocal)};
  for (int i = 0; i < atoms_.nlocal; ++i) {
    local[0] += atoms_.vx[static_cast<std::size_t>(i)];
    local[1] += atoms_.vy[static_cast<std::size_t>(i)];
    local[2] += atoms_.vz[static_cast<std::size_t>(i)];
  }
  double global[4];
  mpi_.allreduce(local, global, 4, mpi::ReduceOp::sum);
  const double n = global[3];
  for (int i = 0; i < atoms_.nlocal; ++i) {
    atoms_.vx[static_cast<std::size_t>(i)] -= global[0] / n;
    atoms_.vy[static_cast<std::size_t>(i)] -= global[1] / n;
    atoms_.vz[static_cast<std::size_t>(i)] -= global[2] / n;
  }
  double vsq_local = 0.0;
  for (int i = 0; i < atoms_.nlocal; ++i) {
    vsq_local += atoms_.vx[static_cast<std::size_t>(i)] * atoms_.vx[static_cast<std::size_t>(i)] +
                 atoms_.vy[static_cast<std::size_t>(i)] * atoms_.vy[static_cast<std::size_t>(i)] +
                 atoms_.vz[static_cast<std::size_t>(i)] * atoms_.vz[static_cast<std::size_t>(i)];
  }
  const double vsq = mpi_.allreduce(vsq_local, mpi::ReduceOp::sum);
  const double t_now = vsq / (3.0 * n);
  const double scale = std::sqrt(cfg_.initial_temp / t_now);
  for (int i = 0; i < atoms_.nlocal; ++i) {
    atoms_.vx[static_cast<std::size_t>(i)] *= scale;
    atoms_.vy[static_cast<std::size_t>(i)] *= scale;
    atoms_.vz[static_cast<std::size_t>(i)] *= scale;
  }
}

void MdSimulation::migrate() {
  atoms_.clear_ghosts();
  std::vector<double>&sendlo = mig_lo_, &sendhi = mig_hi_, &recvbuf = mig_rbuf_;
  for (int d = 0; d < 3; ++d) {
    double* coord = d == 0 ? atoms_.x.data() : d == 1 ? atoms_.y.data() : atoms_.z.data();
    if (grid_.dims(d) == 1) {
      // Single rank in this dimension: wrap in place.
      for (int i = 0; i < atoms_.nlocal; ++i) {
        if (coord[i] < boxlo_[d]) coord[i] += boxlen_[d];
        else if (coord[i] >= boxhi_[d]) coord[i] -= boxlen_[d];
      }
      continue;
    }
    sendlo.clear();
    sendhi.clear();
    // Collect leavers (PBC wrap applied as they cross the global edge).
    for (int i = 0; i < atoms_.nlocal;) {
      double c = coord[i];
      if (c < boxlo_[d] || c >= boxhi_[d]) {
        const bool low = c < boxlo_[d];
        if (low && grid_.coord(d) == 0) c += boxlen_[d];
        if (!low && grid_.coord(d) == grid_.dims(d) - 1) c -= boxlen_[d];
        auto& buf = low ? sendlo : sendhi;
        buf.push_back(d == 0 ? c : atoms_.x[static_cast<std::size_t>(i)]);
        buf.push_back(d == 1 ? c : atoms_.y[static_cast<std::size_t>(i)]);
        buf.push_back(d == 2 ? c : atoms_.z[static_cast<std::size_t>(i)]);
        buf.push_back(atoms_.vx[static_cast<std::size_t>(i)]);
        buf.push_back(atoms_.vy[static_cast<std::size_t>(i)]);
        buf.push_back(atoms_.vz[static_cast<std::size_t>(i)]);
        buf.push_back(static_cast<double>(atoms_.id[static_cast<std::size_t>(i)]));
        atoms_.remove_local(i);
        coord = d == 0 ? atoms_.x.data() : d == 1 ? atoms_.y.data() : atoms_.z.data();
      } else {
        ++i;
      }
    }
    // Exchange with both neighbours (7 doubles per atom).
    for (int dir = -1; dir <= 1; dir += 2) {
      const auto& sbuf = dir == -1 ? sendlo : sendhi;
      const int peer_to = grid_.neighbour(d, dir);
      const int peer_from = grid_.neighbour(d, -dir);
      const int tag = kMigrateTag + 2 * d + (dir > 0 ? 1 : 0);
      const std::size_t natoms_out = sbuf.size() / 7;
      mpi_.compute(sim::Time::sec(static_cast<double>(natoms_out) * cfg_.cost.pack_atom_ns * 1e-9));
      recvbuf.resize(static_cast<std::size_t>(atoms_.nlocal + 64) * 7 + sbuf.size() + 7000);
      const auto st = mpi_.sendrecv(sbuf.data(), sbuf.size() * sizeof(double),
                                    peer_to, tag, recvbuf.data(),
                                    recvbuf.size() * sizeof(double), peer_from,
                                    tag);
      halo_bytes_ += sbuf.size() * sizeof(double);
      const std::size_t nin = st.bytes / (7 * sizeof(double));
      mpi_.compute(sim::Time::sec(static_cast<double>(nin) * cfg_.cost.pack_atom_ns * 1e-9));
      for (std::size_t a = 0; a < nin; ++a) {
        const double* p = &recvbuf[a * 7];
        atoms_.add_local(p[0], p[1], p[2], p[3], p[4], p[5],
                         static_cast<std::uint64_t>(p[6]));
      }
    }
  }
}

void MdSimulation::borders() {
  atoms_.clear_ghosts();
  passes_.clear();
  std::vector<double>&sbuf = comm_sbuf_, &rbuf = comm_rbuf_;
  for (int d = 0; d < 3; ++d) {
    const int scan_limit = atoms_.nall;  // locals + ghosts from earlier dims
    for (int dir = -1; dir <= 1; dir += 2) {
      CommPass pass;
      pass.dim = d;
      pass.dir = dir;
      pass.peer = grid_.neighbour(d, dir);
      pass.shift = 0.0;
      if (dir == -1 && grid_.coord(d) == 0) pass.shift = boxlen_[d];
      if (dir == +1 && grid_.coord(d) == grid_.dims(d) - 1) pass.shift = -boxlen_[d];

      const double* coord =
          d == 0 ? atoms_.x.data() : d == 1 ? atoms_.y.data() : atoms_.z.data();
      const double edge = dir == -1 ? boxlo_[d] + cutneigh_ : boxhi_[d] - cutneigh_;
      for (int i = 0; i < scan_limit; ++i) {
        if ((dir == -1 && coord[i] < edge) || (dir == +1 && coord[i] >= edge)) {
          pass.send_idx.push_back(i);
        }
      }

      sbuf.clear();
      for (const int i : pass.send_idx) {
        sbuf.push_back(atoms_.x[static_cast<std::size_t>(i)] + (d == 0 ? pass.shift : 0.0));
        sbuf.push_back(atoms_.y[static_cast<std::size_t>(i)] + (d == 1 ? pass.shift : 0.0));
        sbuf.push_back(atoms_.z[static_cast<std::size_t>(i)] + (d == 2 ? pass.shift : 0.0));
        sbuf.push_back(static_cast<double>(atoms_.id[static_cast<std::size_t>(i)]));
      }
      mpi_.compute(sim::Time::sec(static_cast<double>(pass.send_idx.size()) *
                   cfg_.cost.pack_atom_ns * 1e-9));

      pass.ghost_first = atoms_.nall;
      if (pass.peer == mpi_.rank()) {
        // Periodic self-exchange: copy with shift, no MPI.
        for (std::size_t a = 0; a < pass.send_idx.size(); ++a) {
          atoms_.add_ghost(sbuf[a * 4], sbuf[a * 4 + 1], sbuf[a * 4 + 2],
                           static_cast<std::uint64_t>(sbuf[a * 4 + 3]));
        }
        pass.nrecv = static_cast<int>(pass.send_idx.size());
      } else {
        const int tag = kBorderTag + 2 * d + (dir > 0 ? 1 : 0);
        rbuf.resize(sbuf.size() + static_cast<std::size_t>(scan_limit + 64) * 4 + 4000);
        const auto st = mpi_.sendrecv(sbuf.data(), sbuf.size() * sizeof(double),
                                      pass.peer, tag, rbuf.data(),
                                      rbuf.size() * sizeof(double),
                                      grid_.neighbour(d, -dir), tag);
        halo_bytes_ += sbuf.size() * sizeof(double);
        pass.nrecv = static_cast<int>(st.bytes / (4 * sizeof(double)));
        mpi_.compute(sim::Time::sec(static_cast<double>(pass.nrecv) * cfg_.cost.pack_atom_ns * 1e-9));
        for (int a = 0; a < pass.nrecv; ++a) {
          const double* p = &rbuf[static_cast<std::size_t>(a) * 4];
          atoms_.add_ghost(p[0], p[1], p[2], static_cast<std::uint64_t>(p[3]));
        }
      }
      // NOTE: with two ranks in a dimension the low and high peers are the
      // same rank; the per-pass tags keep the streams separate.
      passes_.push_back(std::move(pass));
    }
  }
}

void MdSimulation::rebuild_id_map() {
  id_map_.clear();
  id_map_.reserve(static_cast<std::size_t>(atoms_.nall));
  for (int i = 0; i < atoms_.nall; ++i) {
    id_map_[atoms_.id[static_cast<std::size_t>(i)]] = i;
  }
}

void MdSimulation::rebuild_neighbors() {
  double lo[3], hi[3];
  for (int d = 0; d < 3; ++d) {
    lo[d] = boxlo_[d] - cutneigh_;
    hi[d] = boxhi_[d] + cutneigh_;
  }
  build_neighbor_list(atoms_, cutneigh_, lo, hi, list_);
  mpi_.compute(sim::Time::sec(static_cast<double>(list_.candidates_checked) *
               cfg_.cost.neigh_candidate_ns * 1e-9));
  all_locals_.resize(static_cast<std::size_t>(atoms_.nlocal));
  for (int i = 0; i < atoms_.nlocal; ++i) all_locals_[static_cast<std::size_t>(i)] = i;
  if (cfg_.overlap_comm) {
    classify_inner_atoms(atoms_, cutneigh_, boxlo_, boxhi_, inner_, boundary_);
  }
  if (cfg_.bonded_chains) rebuild_id_map();
}

void MdSimulation::forward() {
  std::vector<double>&sbuf = comm_sbuf_, &rbuf = comm_rbuf_;
  for (const CommPass& pass : passes_) {
    sbuf.clear();
    for (const int i : pass.send_idx) {
      sbuf.push_back(atoms_.x[static_cast<std::size_t>(i)] + (pass.dim == 0 ? pass.shift : 0.0));
      sbuf.push_back(atoms_.y[static_cast<std::size_t>(i)] + (pass.dim == 1 ? pass.shift : 0.0));
      sbuf.push_back(atoms_.z[static_cast<std::size_t>(i)] + (pass.dim == 2 ? pass.shift : 0.0));
    }
    mpi_.compute(sim::Time::sec(static_cast<double>(pass.send_idx.size()) *
                 cfg_.cost.pack_atom_ns * 1e-9));
    if (pass.peer == mpi_.rank()) {
      for (int a = 0; a < pass.nrecv; ++a) {
        const std::size_t g = static_cast<std::size_t>(pass.ghost_first + a);
        atoms_.x[g] = sbuf[static_cast<std::size_t>(a) * 3];
        atoms_.y[g] = sbuf[static_cast<std::size_t>(a) * 3 + 1];
        atoms_.z[g] = sbuf[static_cast<std::size_t>(a) * 3 + 2];
      }
      continue;
    }
    const int tag = kForwardTag + 2 * pass.dim + (pass.dir > 0 ? 1 : 0);
    rbuf.resize(static_cast<std::size_t>(pass.nrecv) * 3);
    mpi_.sendrecv(sbuf.data(), sbuf.size() * sizeof(double), pass.peer, tag,
                  rbuf.data(), rbuf.size() * sizeof(double),
                  grid_.neighbour(pass.dim, -pass.dir), tag);
    halo_bytes_ += sbuf.size() * sizeof(double);
    for (int a = 0; a < pass.nrecv; ++a) {
      const std::size_t g = static_cast<std::size_t>(pass.ghost_first + a);
      atoms_.x[g] = rbuf[static_cast<std::size_t>(a) * 3];
      atoms_.y[g] = rbuf[static_cast<std::size_t>(a) * 3 + 1];
      atoms_.z[g] = rbuf[static_cast<std::size_t>(a) * 3 + 2];
    }
  }
}

void MdSimulation::charge_force(std::uint64_t pair_before,
                                std::uint64_t bond_before) {
  const double secs =
      (static_cast<double>(force_.pair_evals - pair_before) *
           cfg_.cost.pair_eval_ns +
       static_cast<double>(force_.bond_evals - bond_before) *
           cfg_.cost.bond_eval_ns) *
      1e-9;
  mpi_.compute(sim::Time::sec(secs));
}

void MdSimulation::compute_force_plain() {
  force_.reset(atoms_.nall);
  compute_lj(atoms_, list_, all_locals_, cfg_.cutoff, force_);
  if (cfg_.bonded_chains) compute_bonds(atoms_, bonds_, id_map_, force_);
  charge_force(0, 0);
  pair_evals_total_ += force_.pair_evals;
}

void MdSimulation::compute_force_overlap() {
  // Inner atoms touch no ghosts, so their forces are computed (and their
  // compute time charged in slices) WHILE the six forward-comm passes are
  // in flight.  A network with independent progress hides nearly all of the
  // exchange behind this compute; one without it cannot (Section 3.3.5).
  force_.reset(atoms_.nall);
  compute_lj(atoms_, list_, inner_, cfg_.cutoff, force_);
  const double inner_secs = static_cast<double>(force_.pair_evals) *
                            cfg_.cost.pair_eval_ns * 1e-9;

  // Nonblocking forward exchange with compute slices between passes (the
  // passes stay sequential — each depends on the previous dimension's
  // ghosts — so one pair of persistent buffers suffices).
  const double slice = inner_secs / static_cast<double>(passes_.size());
  for (std::size_t p = 0; p < passes_.size(); ++p) {
    const CommPass& pass = passes_[p];
    auto& sbuf = comm_sbuf_;
    sbuf.clear();
    for (const int i : pass.send_idx) {
      sbuf.push_back(atoms_.x[static_cast<std::size_t>(i)] + (pass.dim == 0 ? pass.shift : 0.0));
      sbuf.push_back(atoms_.y[static_cast<std::size_t>(i)] + (pass.dim == 1 ? pass.shift : 0.0));
      sbuf.push_back(atoms_.z[static_cast<std::size_t>(i)] + (pass.dim == 2 ? pass.shift : 0.0));
    }
    mpi_.compute(sim::Time::sec(static_cast<double>(pass.send_idx.size()) *
                 cfg_.cost.pack_atom_ns * 1e-9));
    if (pass.peer == mpi_.rank()) {
      for (int a = 0; a < pass.nrecv; ++a) {
        const std::size_t g = static_cast<std::size_t>(pass.ghost_first + a);
        atoms_.x[g] = sbuf[static_cast<std::size_t>(a) * 3];
        atoms_.y[g] = sbuf[static_cast<std::size_t>(a) * 3 + 1];
        atoms_.z[g] = sbuf[static_cast<std::size_t>(a) * 3 + 2];
      }
      mpi_.compute(sim::Time::sec(slice));
      continue;
    }
    const int tag = kForwardTag + 2 * pass.dim + (pass.dir > 0 ? 1 : 0);
    auto& rbuf = comm_rbuf_;
    rbuf.resize(static_cast<std::size_t>(pass.nrecv) * 3);
    mpi::Request rr = mpi_.irecv(rbuf.data(), rbuf.size() * sizeof(double),
                                 grid_.neighbour(pass.dim, -pass.dir), tag);
    mpi::Request sr = mpi_.isend(sbuf.data(), sbuf.size() * sizeof(double),
                                 pass.peer, tag);
    halo_bytes_ += sbuf.size() * sizeof(double);
    mpi_.compute(sim::Time::sec(slice));  // overlap: inner force work proceeds meanwhile
    mpi_.wait(sr);
    mpi_.wait(rr);
    for (int a = 0; a < passes_[p].nrecv; ++a) {
      const std::size_t g = static_cast<std::size_t>(pass.ghost_first + a);
      atoms_.x[g] = rbuf[static_cast<std::size_t>(a) * 3];
      atoms_.y[g] = rbuf[static_cast<std::size_t>(a) * 3 + 1];
      atoms_.z[g] = rbuf[static_cast<std::size_t>(a) * 3 + 2];
    }
  }

  // Boundary atoms need the fresh ghosts; charged after the exchange.
  const std::uint64_t pair_before = force_.pair_evals;
  const std::uint64_t bond_before = force_.bond_evals;
  compute_lj(atoms_, list_, boundary_, cfg_.cutoff, force_);
  if (cfg_.bonded_chains) compute_bonds(atoms_, bonds_, id_map_, force_);
  charge_force(pair_before, bond_before);
  pair_evals_total_ += force_.pair_evals;
}

void MdSimulation::integrate_half(bool first) {
  const double half = 0.5 * cfg_.dt;
  for (int i = 0; i < atoms_.nlocal; ++i) {
    const auto s = static_cast<std::size_t>(i);
    atoms_.vx[s] += half * force_.fx[s];
    atoms_.vy[s] += half * force_.fy[s];
    atoms_.vz[s] += half * force_.fz[s];
    if (first) {
      atoms_.x[s] += cfg_.dt * atoms_.vx[s];
      atoms_.y[s] += cfg_.dt * atoms_.vy[s];
      atoms_.z[s] += cfg_.dt * atoms_.vz[s];
    }
  }
  mpi_.compute(sim::Time::sec(static_cast<double>(atoms_.nlocal) *
               cfg_.cost.integrate_atom_ns * 1e-9));
}

void MdSimulation::setup() {
  create_lattice();
  init_velocities();
  borders();
  rebuild_neighbors();
  compute_force_plain();
}

void MdSimulation::do_step(bool rebuild) {
  integrate_half(/*first=*/true);
  if (rebuild) {
    migrate();
    borders();
    rebuild_neighbors();
    compute_force_plain();
  } else if (cfg_.overlap_comm) {
    compute_force_overlap();
  } else {
    forward();
    compute_force_plain();
  }
  integrate_half(/*first=*/false);
}

double MdSimulation::kinetic_energy_global() {
  double ke = 0.0;
  for (int i = 0; i < atoms_.nlocal; ++i) {
    const auto s = static_cast<std::size_t>(i);
    ke += atoms_.vx[s] * atoms_.vx[s] + atoms_.vy[s] * atoms_.vy[s] +
          atoms_.vz[s] * atoms_.vz[s];
  }
  return 0.5 * mpi_.allreduce(ke, mpi::ReduceOp::sum);
}

double MdSimulation::potential_energy_global() {
  return mpi_.allreduce(force_.potential, mpi::ReduceOp::sum);
}

double MdSimulation::momentum_abs_global() {
  double local[3] = {0.0, 0.0, 0.0};
  for (int i = 0; i < atoms_.nlocal; ++i) {
    const auto s = static_cast<std::size_t>(i);
    local[0] += atoms_.vx[s];
    local[1] += atoms_.vy[s];
    local[2] += atoms_.vz[s];
  }
  double global[3];
  mpi_.allreduce(local, global, 3, mpi::ReduceOp::sum);
  return std::sqrt(global[0] * global[0] + global[1] * global[1] +
                   global[2] * global[2]);
}

MdResult MdSimulation::run() {
  setup();
  const double e0 = kinetic_energy_global() + potential_energy_global();

  mpi_.barrier();
  const double t0 = mpi_.wtime();
  for (int step = 1; step <= cfg_.steps; ++step) {
    do_step(step % cfg_.reneigh_every == 0);
  }
  mpi_.barrier();
  const double t1 = mpi_.wtime();

  MdResult r;
  r.loop_seconds = t1 - t0;
  r.final_kinetic = kinetic_energy_global();
  r.final_potential = potential_energy_global();
  const double e1 = r.final_kinetic + r.final_potential;
  r.total_energy_drift = std::abs(e1 - e0) / std::abs(e0);
  r.momentum_abs = momentum_abs_global();
  const double natoms_local = atoms_.nlocal;
  r.natoms_global = static_cast<std::uint64_t>(
      mpi_.allreduce(natoms_local, mpi::ReduceOp::sum) + 0.5);
  const double pe = static_cast<double>(pair_evals_total_);
  r.pair_evals = static_cast<std::uint64_t>(mpi_.allreduce(pe, mpi::ReduceOp::sum));
  const double hb = static_cast<double>(halo_bytes_);
  r.halo_bytes = static_cast<std::uint64_t>(mpi_.allreduce(hb, mpi::ReduceOp::sum));
  return r;
}

MdResult run_md(mpi::Mpi& mpi, const MdConfig& config) {
  MdSimulation sim(mpi, config);
  return sim.run();
}

}  // namespace icsim::apps::md
