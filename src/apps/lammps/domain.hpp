#pragma once
// Per-rank atom storage (structure of arrays).
//
// Indices [0, nlocal) are owned atoms; [nlocal, nall) are ghosts received
// from neighbouring ranks during the border exchange.

#include <cstdint>
#include <vector>

namespace icsim::apps::md {

struct Atoms {
  std::vector<double> x, y, z;     // positions (locals + ghosts)
  std::vector<double> vx, vy, vz;  // velocities (locals only meaningful)
  std::vector<std::uint64_t> id;   // global ids (locals + ghosts)
  int nlocal = 0;
  int nall = 0;  ///< nlocal + ghosts

  void clear_ghosts() {
    x.resize(static_cast<std::size_t>(nlocal));
    y.resize(static_cast<std::size_t>(nlocal));
    z.resize(static_cast<std::size_t>(nlocal));
    id.resize(static_cast<std::size_t>(nlocal));
    nall = nlocal;
  }

  /// Only valid while there are no ghosts (setup and migration phases).
  void add_local(double px, double py, double pz, double vvx, double vvy,
                 double vvz, std::uint64_t gid) {
    x.push_back(px);
    y.push_back(py);
    z.push_back(pz);
    id.push_back(gid);
    vx.push_back(vvx);
    vy.push_back(vvy);
    vz.push_back(vvz);
    ++nlocal;
    ++nall;
  }

  void add_ghost(double px, double py, double pz, std::uint64_t gid) {
    x.push_back(px);
    y.push_back(py);
    z.push_back(pz);
    id.push_back(gid);
    ++nall;
  }

  /// Remove local atom i (swap with last local); ghosts must be cleared.
  void remove_local(int i) {
    const int last = nlocal - 1;
    x[static_cast<std::size_t>(i)] = x[static_cast<std::size_t>(last)];
    y[static_cast<std::size_t>(i)] = y[static_cast<std::size_t>(last)];
    z[static_cast<std::size_t>(i)] = z[static_cast<std::size_t>(last)];
    vx[static_cast<std::size_t>(i)] = vx[static_cast<std::size_t>(last)];
    vy[static_cast<std::size_t>(i)] = vy[static_cast<std::size_t>(last)];
    vz[static_cast<std::size_t>(i)] = vz[static_cast<std::size_t>(last)];
    id[static_cast<std::size_t>(i)] = id[static_cast<std::size_t>(last)];
    x.pop_back();
    y.pop_back();
    z.pop_back();
    vx.pop_back();
    vy.pop_back();
    vz.pop_back();
    id.pop_back();
    --nlocal;
    --nall;
  }
};

}  // namespace icsim::apps::md
