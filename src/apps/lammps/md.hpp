#pragma once
// The mini molecular-dynamics application (LAMMPS stand-in).
//
// A real parallel MD code in the LAMMPS/miniMD mould: FCC lattice setup,
// velocity-Verlet integration, binned Verlet neighbour lists, truncated LJ
// forces (plus harmonic chain bonds for the membrane data set), 3-D spatial
// decomposition with the 6-pass ghost exchange (corner data forwarded
// dimension by dimension, exactly LAMMPS's scheme) and atom migration at
// every reneighbouring step.  Numerics are real — tests check energy
// conservation, momentum conservation and neighbour-list correctness —
// while compute time is charged through the calibrated cost model so the
// simulated clock reflects the study's 3.06 GHz Xeons.

#include <unordered_map>
#include <vector>

#include "apps/lammps/domain.hpp"
#include "apps/lammps/force.hpp"
#include "apps/lammps/grid.hpp"
#include "apps/lammps/md_config.hpp"
#include "apps/lammps/neighbor.hpp"
#include "mpi/mpi.hpp"

namespace icsim::apps::md {

class MdSimulation {
 public:
  MdSimulation(mpi::Mpi& mpi, const MdConfig& config);

  /// Execute the configured number of steps; returns global results.
  MdResult run();

  // Exposed for unit tests.
  [[nodiscard]] const Atoms& atoms() const { return atoms_; }
  [[nodiscard]] const NeighborList& neighbor_list() const { return list_; }
  void setup();                 ///< lattice + velocities + first exchange
  void do_step(bool rebuild);   ///< one velocity-Verlet step
  [[nodiscard]] double kinetic_energy_global();
  [[nodiscard]] double potential_energy_global();
  [[nodiscard]] double momentum_abs_global();

 private:
  struct CommPass {
    int dim = 0;
    int dir = -1;
    int peer = -1;
    double shift = 0.0;       ///< PBC offset applied to the dim coordinate
    std::vector<int> send_idx;  ///< indices (locals and earlier ghosts)
    int ghost_first = 0;      ///< where this pass's ghosts start
    int nrecv = 0;
  };

  void create_lattice();
  void init_velocities();
  void migrate();   ///< move strayed atoms to neighbour ranks
  void borders();   ///< rebuild ghost shells and the forward-comm plan
  void rebuild_neighbors();
  void forward();   ///< per-step ghost position update (synchronous)
  void compute_force_plain();
  void compute_force_overlap();  ///< inner compute overlapped with forward
  void charge_force(std::uint64_t pair_before, std::uint64_t bond_before);
  void integrate_half(bool first);
  void rebuild_id_map();

  mpi::Mpi& mpi_;
  MdConfig cfg_;
  ProcGrid grid_;
  double lattice_a_ = 0.0;
  double boxlo_[3]{}, boxhi_[3]{};  ///< local box
  double boxlen_[3]{};              ///< global box lengths
  double cutneigh_ = 0.0;

  Atoms atoms_;
  NeighborList list_;
  ForceAccum force_;
  std::vector<int> all_locals_, inner_, boundary_;
  std::unordered_map<std::uint64_t, int> id_map_;
  std::vector<CommPass> passes_;
  BondParams bonds_;

  // Persistent communication buffers (as LAMMPS keeps them): reusing the
  // same allocations step after step is what lets the InfiniBand pin-down
  // cache actually hit; reallocating every exchange would re-register
  // constantly (see ib::RegistrationCache).
  std::vector<double> comm_sbuf_, comm_rbuf_;   // borders/forward exchange
  std::vector<double> mig_lo_, mig_hi_, mig_rbuf_;  // migration

  std::uint64_t halo_bytes_ = 0;
  std::uint64_t pair_evals_total_ = 0;
};

/// Convenience entry point used by benches and examples.
MdResult run_md(mpi::Mpi& mpi, const MdConfig& config);

}  // namespace icsim::apps::md
