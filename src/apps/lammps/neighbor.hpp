#pragma once
// Verlet neighbour lists via spatial binning.
//
// Builds a FULL neighbour list (each pair appears in both atoms' lists) for
// owned atoms over owned+ghost positions.  Full lists double the pair
// computation but remove the reverse force communication, as miniMD's
// full-neighbour mode does; the cost model accounts for it.

#include <cstdint>
#include <vector>

#include "apps/lammps/domain.hpp"

namespace icsim::apps::md {

struct NeighborList {
  std::vector<int> first;   ///< CSR offsets, size nlocal+1
  std::vector<int> neigh;   ///< neighbour indices (into the atoms arrays)
  std::uint64_t candidates_checked = 0;  ///< stencil pairs distance-tested
};

/// Build the list for all owned atoms with interaction radius `cutneigh`
/// (= cutoff + skin).  `lo`/`hi` bound the region to bin (local box
/// extended by the ghost shell).
void build_neighbor_list(const Atoms& atoms, double cutneigh,
                         const double lo[3], const double hi[3],
                         NeighborList& list);

/// Split of owned atoms for communication/computation overlap: an atom is
/// "inner" when it is farther than `cutneigh` from every face of the local
/// box, so none of its neighbours can be ghosts.
void classify_inner_atoms(const Atoms& atoms, double cutneigh,
                          const double boxlo[3], const double boxhi[3],
                          std::vector<int>& inner, std::vector<int>& boundary);

}  // namespace icsim::apps::md
