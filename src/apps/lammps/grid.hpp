#pragma once
// 3-D process grid for spatial decomposition.

#include <array>
#include <cmath>
#include <stdexcept>

namespace icsim::apps::md {

/// Factor `nprocs` into the most cube-like px * py * pz grid (minimum
/// total surface), the same heuristic MPI_Dims_create-style codes use.
struct ProcGrid {
  int px = 1, py = 1, pz = 1;
  int rank = 0;
  int cx = 0, cy = 0, cz = 0;  ///< my coordinates

  ProcGrid(int nprocs, int rank_in) : rank(rank_in) {
    double best = 1e300;
    for (int x = 1; x <= nprocs; ++x) {
      if (nprocs % x != 0) continue;
      const int rest = nprocs / x;
      for (int y = 1; y <= rest; ++y) {
        if (rest % y != 0) continue;
        const int z = rest / y;
        const double surface = x * y + y * z + x * z;
        if (surface < best) {
          best = surface;
          px = x;
          py = y;
          pz = z;
        }
      }
    }
    if (px * py * pz != nprocs) throw std::logic_error("ProcGrid: bad factorization");
    cx = rank % px;
    cy = (rank / px) % py;
    cz = rank / (px * py);
  }

  [[nodiscard]] int rank_of(int x, int y, int z) const {
    const auto wrap = [](int v, int n) { return ((v % n) + n) % n; };
    return wrap(x, px) + wrap(y, py) * px + wrap(z, pz) * px * py;
  }

  /// Neighbour in dimension dim (0=x,1=y,2=z), dir -1/+1 (periodic).
  [[nodiscard]] int neighbour(int dim, int dir) const {
    switch (dim) {
      case 0: return rank_of(cx + dir, cy, cz);
      case 1: return rank_of(cx, cy + dir, cz);
      default: return rank_of(cx, cy, cz + dir);
    }
  }

  [[nodiscard]] int coord(int dim) const {
    return dim == 0 ? cx : dim == 1 ? cy : cz;
  }
  [[nodiscard]] int dims(int dim) const {
    return dim == 0 ? px : dim == 1 ? py : pz;
  }
};

}  // namespace icsim::apps::md
