#include "apps/lammps/force.hpp"

#include <cmath>

namespace icsim::apps::md {

void compute_lj(const Atoms& atoms, const NeighborList& list,
                const std::vector<int>& which, double cutoff, ForceAccum& f) {
  const double cutsq = cutoff * cutoff;
  // Energy shift so U(cutoff) = 0 (LAMMPS pair_style lj/cut convention
  // with shifting enabled keeps conservation clean at the cutoff).
  const double rc6 = 1.0 / (cutsq * cutsq * cutsq);
  const double eshift = 4.0 * rc6 * (rc6 - 1.0);

  for (const int i : which) {
    const double xi = atoms.x[static_cast<std::size_t>(i)];
    const double yi = atoms.y[static_cast<std::size_t>(i)];
    const double zi = atoms.z[static_cast<std::size_t>(i)];
    double fxi = 0.0, fyi = 0.0, fzi = 0.0;
    for (int k = list.first[static_cast<std::size_t>(i)];
         k < list.first[static_cast<std::size_t>(i) + 1]; ++k) {
      const int j = list.neigh[static_cast<std::size_t>(k)];
      const double dx = xi - atoms.x[static_cast<std::size_t>(j)];
      const double dy = yi - atoms.y[static_cast<std::size_t>(j)];
      const double dz = zi - atoms.z[static_cast<std::size_t>(j)];
      const double rsq = dx * dx + dy * dy + dz * dz;
      if (rsq >= cutsq) continue;
      ++f.pair_evals;
      const double r2i = 1.0 / rsq;
      const double r6i = r2i * r2i * r2i;
      // F/r = 48 eps (r^-12 - 0.5 r^-6) / r^2 in reduced units.
      const double fpair = 48.0 * r6i * (r6i - 0.5) * r2i;
      fxi += dx * fpair;
      fyi += dy * fpair;
      fzi += dz * fpair;
      // Half the pair energy; the other half is credited by j's owner.
      f.potential += 0.5 * (4.0 * r6i * (r6i - 1.0) - eshift);
    }
    f.fx[static_cast<std::size_t>(i)] += fxi;
    f.fy[static_cast<std::size_t>(i)] += fyi;
    f.fz[static_cast<std::size_t>(i)] += fzi;
  }
}

void compute_bonds(const Atoms& atoms, const BondParams& params,
                   const std::unordered_map<std::uint64_t, int>& id_to_index,
                   ForceAccum& f) {
  const auto chain = static_cast<std::uint64_t>(params.chain_length);
  for (int i = 0; i < atoms.nlocal; ++i) {
    const std::uint64_t gid = atoms.id[static_cast<std::size_t>(i)];
    const std::uint64_t pos_in_chain = gid % chain;
    for (int side = -1; side <= 1; side += 2) {
      if (side == -1 && pos_in_chain == 0) continue;
      if (side == 1 && pos_in_chain == chain - 1) continue;
      const std::uint64_t partner_id =
          side == -1 ? gid - 1 : gid + 1;
      const auto it = id_to_index.find(partner_id);
      if (it == id_to_index.end()) continue;  // partner beyond ghost shell
      const int j = it->second;
      double dx = atoms.x[static_cast<std::size_t>(i)] -
                  atoms.x[static_cast<std::size_t>(j)];
      double dy = atoms.y[static_cast<std::size_t>(i)] -
                  atoms.y[static_cast<std::size_t>(j)];
      double dz = atoms.z[static_cast<std::size_t>(i)] -
                  atoms.z[static_cast<std::size_t>(j)];
      if (params.boxlen[0] > 0.0) {
        dx -= params.boxlen[0] * std::round(dx / params.boxlen[0]);
        dy -= params.boxlen[1] * std::round(dy / params.boxlen[1]);
        dz -= params.boxlen[2] * std::round(dz / params.boxlen[2]);
      }
      const double r = std::sqrt(dx * dx + dy * dy + dz * dz);
      if (r <= 0.0) continue;
      ++f.bond_evals;
      const double dr = r - params.r0;
      // U = k dr^2, F = -2 k dr (r_hat), applied to i only (j's owner
      // applies the mirror force).
      const double fmag = -2.0 * params.k * dr / r;
      f.fx[static_cast<std::size_t>(i)] += fmag * dx;
      f.fy[static_cast<std::size_t>(i)] += fmag * dy;
      f.fz[static_cast<std::size_t>(i)] += fmag * dz;
      f.potential += 0.5 * params.k * dr * dr;
    }
  }
}

}  // namespace icsim::apps::md
