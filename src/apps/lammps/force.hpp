#pragma once
// Force kernels: truncated Lennard-Jones pairs and harmonic chain bonds.

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "apps/lammps/domain.hpp"
#include "apps/lammps/neighbor.hpp"

namespace icsim::apps::md {

struct ForceAccum {
  std::vector<double> fx, fy, fz;  ///< sized nall; only locals meaningful
  double potential = 0.0;          ///< this rank's share (half per pair)
  std::uint64_t pair_evals = 0;
  std::uint64_t bond_evals = 0;

  void reset(int nall) {
    fx.assign(static_cast<std::size_t>(nall), 0.0);
    fy.assign(static_cast<std::size_t>(nall), 0.0);
    fz.assign(static_cast<std::size_t>(nall), 0.0);
    potential = 0.0;
    pair_evals = 0;
    bond_evals = 0;
  }
};

/// LJ 12-6 with energy shift at the cutoff, evaluated from a full
/// neighbour list for the owned atoms listed in `which` (pass all locals,
/// or the inner/boundary split for overlapped runs).
void compute_lj(const Atoms& atoms, const NeighborList& list,
                const std::vector<int>& which, double cutoff, ForceAccum& f);

/// Harmonic springs between consecutive global ids within a chain:
/// U = k (r - r0)^2.  Each rank evaluates bonds for its owned atoms; a
/// bond between two locals is therefore evaluated from both ends with half
/// the energy credited each time, matching the LJ convention.
struct BondParams {
  int chain_length = 32;
  double k = 5.0;
  double r0 = 1.2;
  double boxlen[3] = {0.0, 0.0, 0.0};  ///< global box, for minimum image
};

/// Bond displacements use the minimum-image convention, so it does not
/// matter whether the partner index resolves to the local copy or to a
/// periodic ghost image — both owners compute the same |r| and mirror
/// forces, which is what keeps the integration symplectic.
void compute_bonds(const Atoms& atoms, const BondParams& params,
                   const std::unordered_map<std::uint64_t, int>& id_to_index,
                   ForceAccum& f);

}  // namespace icsim::apps::md
