#include "apps/lammps/neighbor.hpp"

#include <algorithm>
#include <cmath>

namespace icsim::apps::md {

void build_neighbor_list(const Atoms& atoms, double cutneigh,
                         const double lo[3], const double hi[3],
                         NeighborList& list) {
  const double cutsq = cutneigh * cutneigh;
  // Bin size >= cutneigh so a 27-stencil covers all candidates.
  int nb[3];
  double bin[3], origin[3];
  for (int d = 0; d < 3; ++d) {
    const double extent = hi[d] - lo[d];
    nb[d] = std::max(1, static_cast<int>(extent / cutneigh));
    bin[d] = extent / nb[d];
    origin[d] = lo[d];
  }
  const int nbins = nb[0] * nb[1] * nb[2];

  auto bin_of = [&](double X, double Y, double Z) {
    int bx = static_cast<int>((X - origin[0]) / bin[0]);
    int by = static_cast<int>((Y - origin[1]) / bin[1]);
    int bz = static_cast<int>((Z - origin[2]) / bin[2]);
    bx = std::clamp(bx, 0, nb[0] - 1);
    by = std::clamp(by, 0, nb[1] - 1);
    bz = std::clamp(bz, 0, nb[2] - 1);
    return (bz * nb[1] + by) * nb[0] + bx;
  };

  // Counting sort of all atoms (locals + ghosts) into bins.
  std::vector<int> bin_count(static_cast<std::size_t>(nbins) + 1, 0);
  std::vector<int> atom_bin(static_cast<std::size_t>(atoms.nall));
  for (int i = 0; i < atoms.nall; ++i) {
    const int b = bin_of(atoms.x[static_cast<std::size_t>(i)],
                         atoms.y[static_cast<std::size_t>(i)],
                         atoms.z[static_cast<std::size_t>(i)]);
    atom_bin[static_cast<std::size_t>(i)] = b;
    ++bin_count[static_cast<std::size_t>(b) + 1];
  }
  for (int b = 0; b < nbins; ++b) {
    bin_count[static_cast<std::size_t>(b) + 1] +=
        bin_count[static_cast<std::size_t>(b)];
  }
  std::vector<int> bin_atoms(static_cast<std::size_t>(atoms.nall));
  {
    std::vector<int> cursor(bin_count.begin(), bin_count.end() - 1);
    for (int i = 0; i < atoms.nall; ++i) {
      bin_atoms[static_cast<std::size_t>(
          cursor[static_cast<std::size_t>(atom_bin[static_cast<std::size_t>(i)])]++)] = i;
    }
  }

  list.first.assign(static_cast<std::size_t>(atoms.nlocal) + 1, 0);
  list.neigh.clear();
  list.candidates_checked = 0;

  for (int i = 0; i < atoms.nlocal; ++i) {
    const double xi = atoms.x[static_cast<std::size_t>(i)];
    const double yi = atoms.y[static_cast<std::size_t>(i)];
    const double zi = atoms.z[static_cast<std::size_t>(i)];
    const int b = atom_bin[static_cast<std::size_t>(i)];
    const int bx = b % nb[0];
    const int by = (b / nb[0]) % nb[1];
    const int bz = b / (nb[0] * nb[1]);
    for (int dz = -1; dz <= 1; ++dz) {
      const int zb = bz + dz;
      if (zb < 0 || zb >= nb[2]) continue;
      for (int dy = -1; dy <= 1; ++dy) {
        const int yb = by + dy;
        if (yb < 0 || yb >= nb[1]) continue;
        for (int dx = -1; dx <= 1; ++dx) {
          const int xb = bx + dx;
          if (xb < 0 || xb >= nb[0]) continue;
          const int nbin = (zb * nb[1] + yb) * nb[0] + xb;
          for (int k = bin_count[static_cast<std::size_t>(nbin)];
               k < bin_count[static_cast<std::size_t>(nbin) + 1]; ++k) {
            const int j = bin_atoms[static_cast<std::size_t>(k)];
            if (j == i) continue;
            ++list.candidates_checked;
            const double ddx = xi - atoms.x[static_cast<std::size_t>(j)];
            const double ddy = yi - atoms.y[static_cast<std::size_t>(j)];
            const double ddz = zi - atoms.z[static_cast<std::size_t>(j)];
            if (ddx * ddx + ddy * ddy + ddz * ddz <= cutsq) {
              list.neigh.push_back(j);
            }
          }
        }
      }
    }
    list.first[static_cast<std::size_t>(i) + 1] =
        static_cast<int>(list.neigh.size());
  }
}

void classify_inner_atoms(const Atoms& atoms, double cutneigh,
                          const double boxlo[3], const double boxhi[3],
                          std::vector<int>& inner, std::vector<int>& boundary) {
  inner.clear();
  boundary.clear();
  for (int i = 0; i < atoms.nlocal; ++i) {
    const double p[3] = {atoms.x[static_cast<std::size_t>(i)],
                         atoms.y[static_cast<std::size_t>(i)],
                         atoms.z[static_cast<std::size_t>(i)]};
    bool is_inner = true;
    for (int d = 0; d < 3; ++d) {
      if (p[d] - boxlo[d] < cutneigh || boxhi[d] - p[d] < cutneigh) {
        is_inner = false;
        break;
      }
    }
    (is_inner ? inner : boundary).push_back(i);
  }
}

}  // namespace icsim::apps::md
