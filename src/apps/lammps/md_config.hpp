#pragma once
// Configuration for the mini molecular-dynamics application (the LAMMPS
// stand-in; paper Section 2.2.1).
//
// Two data sets mirror the paper's:
//   * LJS — atomic Lennard-Jones fluid (the classic melt benchmark):
//     moderate cutoff, synchronous halo exchange (MPI_Sendrecv style);
//   * membrane — a bonded-chain system with a larger cutoff: higher
//     compute per atom and nonblocking halo exchange overlapped with the
//     interior force computation.  The paper observes that this workload's
//     overlap is exactly what separates the two networks (Section 4.2.1).
//
// Both are *scaled-size* studies: cells_per_rank is constant as ranks grow.

#include <cstdint>

namespace icsim::apps::md {

struct MdCostModel {
  // Per-operation compute charges for a 3.06 GHz Xeon of the study's era.
  double pair_eval_ns = 22.0;       ///< one LJ pair force evaluation
  double neigh_candidate_ns = 5.5;  ///< one stencil candidate distance check
  double integrate_atom_ns = 9.0;   ///< one velocity-Verlet half-step per atom
  double bond_eval_ns = 18.0;       ///< one bonded-spring evaluation
  double pack_atom_ns = 2.5;        ///< pack/unpack one atom for comm
};

struct MdConfig {
  // Per-rank problem size: unit cells per dimension (4 atoms per FCC cell).
  int cells_x = 8, cells_y = 8, cells_z = 8;
  double density = 0.8442;  ///< reduced density (LJ melt standard)
  double cutoff = 2.5;      ///< force cutoff, sigma units
  double skin = 0.30;       ///< neighbour-list skin
  double dt = 0.005;        ///< tau units
  double initial_temp = 1.44;
  int steps = 30;
  int reneigh_every = 10;   ///< neighbour rebuild + migration cadence

  // Membrane-style options.
  bool bonded_chains = false;  ///< FENE-like springs along x-ordered chains
  int chain_length = 32;
  bool overlap_comm = false;  ///< nonblocking halo exchange over inner force

  MdCostModel cost;
  std::uint64_t seed = 4711;
};

/// The paper's two data sets.
inline MdConfig ljs_config() {
  MdConfig c;
  return c;
}

inline MdConfig membrane_config() {
  MdConfig c;
  c.cutoff = 3.0;           // lipid-style longer-range interactions
  c.initial_temp = 1.0;
  c.bonded_chains = true;
  c.overlap_comm = true;    // the asynchronous-communication hypothesis
  return c;
}

struct MdResult {
  double loop_seconds = 0.0;      ///< simulated wall time of the MD loop
  std::uint64_t natoms_global = 0;
  double final_kinetic = 0.0;     ///< global kinetic energy
  double final_potential = 0.0;   ///< global potential energy
  double total_energy_drift = 0.0;  ///< |E_end - E_start| / |E_start|
  double momentum_abs = 0.0;      ///< |sum mv| (should stay ~0)
  std::uint64_t pair_evals = 0;   ///< global count (work accounting)
  std::uint64_t halo_bytes = 0;   ///< global bytes exchanged in halos
};

}  // namespace icsim::apps::md
