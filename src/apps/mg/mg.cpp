#include "apps/mg/mg.hpp"

#include <cmath>
#include <stdexcept>
#include <vector>

#include "apps/lammps/grid.hpp"

namespace icsim::apps::mg {

namespace {

constexpr int kHaloTag = 500;  // + 2*dim + dir

struct Level {
  int n = 0;                   // global edge
  int lx = 0, ly = 0, lz = 0;  // local interior extents
  double h2 = 0.0;             // grid spacing squared
  std::vector<double> u, f, tmp;
};

class MgSolver {
 public:
  MgSolver(mpi::Mpi& mpi, const MgConfig& cfg)
      : mpi_(mpi), cfg_(cfg), grid_(mpi.size(), mpi.rank()) {
    if ((cfg.n & (cfg.n - 1)) != 0) {
      throw std::invalid_argument("run_mg: n must be a power of two");
    }
    int n = cfg.n;
    while (true) {
      if (cfg.max_levels > 0 &&
          static_cast<int>(levels_.size()) >= cfg.max_levels) {
        break;
      }
      if (n % grid_.px != 0 || n % grid_.py != 0 || n % grid_.pz != 0) break;
      const int lx = n / grid_.px, ly = n / grid_.py, lz = n / grid_.pz;
      if (lx < cfg.min_local || ly < cfg.min_local || lz < cfg.min_local) break;
      Level l;
      l.n = n;
      l.lx = lx;
      l.ly = ly;
      l.lz = lz;
      l.h2 = 1.0 / (static_cast<double>(n) * n);
      const std::size_t sz = static_cast<std::size_t>(lx + 2) * (ly + 2) * (lz + 2);
      l.u.assign(sz, 0.0);
      l.f.assign(sz, 0.0);
      l.tmp.assign(sz, 0.0);
      levels_.push_back(std::move(l));
      if (n == 2) break;
      n /= 2;
    }
    if (levels_.empty()) {
      throw std::invalid_argument("run_mg: grid does not fit the process grid");
    }
    install_charge();
  }

  MgResult solve() {
    MgResult res;
    res.levels = static_cast<int>(levels_.size());

    mpi_.barrier();
    const double t0 = mpi_.wtime();
    res.rnorm0 = residual_norm(0);
    for (int c = 0; c < cfg_.vcycles; ++c) vcycle(0);
    res.rnorm = residual_norm(0);
    mpi_.barrier();
    res.seconds = mpi_.wtime() - t0;

    const double hb = static_cast<double>(halo_bytes_);
    res.halo_bytes =
        static_cast<std::uint64_t>(mpi_.allreduce(hb, mpi::ReduceOp::sum));
    const double ps = static_cast<double>(points_smoothed_);
    res.points_smoothed =
        static_cast<std::uint64_t>(mpi_.allreduce(ps, mpi::ReduceOp::sum));
    return res;
  }

 private:
  [[nodiscard]] static std::size_t idx(const Level& l, int i, int j, int k) {
    return (static_cast<std::size_t>(k) * (l.ly + 2) + j) *
               static_cast<std::size_t>(l.lx + 2) +
           static_cast<std::size_t>(i);
  }

  /// Two unit point charges of opposite sign, placed by global index.
  void install_charge() {
    Level& l = levels_.front();
    const int n = l.n;
    const double scale = static_cast<double>(n) * n;
    const int pts[2][3] = {{n / 4, n / 4, n / 4},
                           {3 * n / 4, 3 * n / 4, 3 * n / 4}};
    const double sign[2] = {1.0, -1.0};
    for (int p = 0; p < 2; ++p) {
      const int gi = pts[p][0], gj = pts[p][1], gk = pts[p][2];
      const int ox = grid_.cx * l.lx, oy = grid_.cy * l.ly, oz = grid_.cz * l.lz;
      if (gi >= ox && gi < ox + l.lx && gj >= oy && gj < oy + l.ly &&
          gk >= oz && gk < oz + l.lz) {
        l.f[idx(l, gi - ox + 1, gj - oy + 1, gk - oz + 1)] = sign[p] * scale;
      }
    }
  }

  /// Exchange 1-deep face halos of `field` at level `lv`.  Non-periodic:
  /// ghosts at the physical boundary stay zero (Dirichlet).
  void exchange(int lv, std::vector<double>& field) {
    Level& l = levels_[static_cast<std::size_t>(lv)];
    for (int d = 0; d < 3; ++d) {
      const int dims = grid_.dims(d);
      if (dims == 1) continue;  // non-periodic: both faces are physical
      const int coord = grid_.coord(d);
      for (int dir = -1; dir <= 1; dir += 2) {
        // In pass (d, dir) every rank ships its `dir` face and receives its
        // `-dir` ghost; ranks at the physical boundary do only one of the
        // two (Dirichlet ghosts stay zero there).
        const bool send_ok = !(dir == -1 && coord == 0) &&
                             !(dir == 1 && coord == dims - 1);
        const bool recv_ok = !(dir == 1 && coord == 0) &&
                             !(dir == -1 && coord == dims - 1);
        const int tag = kHaloTag + 2 * d + (dir > 0 ? 1 : 0);
        if (send_ok) {
          pack_face(l, field, d, dir, sbuf_);
          halo_bytes_ += sbuf_.size() * sizeof(double);
        }
        if (send_ok && recv_ok) {
          rbuf_.resize(sbuf_.size());
          mpi_.sendrecv(sbuf_.data(), sbuf_.size() * sizeof(double),
                        grid_.neighbour(d, dir), tag, rbuf_.data(),
                        rbuf_.size() * sizeof(double),
                        grid_.neighbour(d, -dir), tag);
          unpack_ghost(l, field, d, -dir, rbuf_);
        } else if (send_ok) {
          mpi_.send(sbuf_.data(), sbuf_.size() * sizeof(double),
                    grid_.neighbour(d, dir), tag);
        } else if (recv_ok) {
          const FaceRange r = face_range(l, d, dir, /*ghost_side=*/false);
          const std::size_t face = static_cast<std::size_t>(r.i1 - r.i0 + 1) *
                                   static_cast<std::size_t>(r.j1 - r.j0 + 1) *
                                   static_cast<std::size_t>(r.k1 - r.k0 + 1);
          rbuf_.resize(face);
          mpi_.recv(rbuf_.data(), rbuf_.size() * sizeof(double),
                    grid_.neighbour(d, -dir), tag);
          unpack_ghost(l, field, d, -dir, rbuf_);
        }
      }
    }
  }

  // Faces are exchanged dimension by dimension; a pass includes the ghost
  // layers of dimensions already exchanged, so edge and corner ghosts are
  // forwarded transitively (the cell-centred prolongation stencil reads
  // them).  Same scheme as the MD border exchange.
  struct FaceRange {
    int i0, i1, j0, j1, k0, k1;
  };

  [[nodiscard]] FaceRange face_range(const Level& l, int d, int dir,
                                     bool ghost_side) const {
    auto span = [&](int dd, int extent) -> std::pair<int, int> {
      if (dd == d) {
        if (ghost_side) return {dir == -1 ? 0 : extent + 1, dir == -1 ? 0 : extent + 1};
        return {dir == -1 ? 1 : extent, dir == -1 ? 1 : extent};
      }
      // Dimensions exchanged earlier travel with their ghosts.
      if (dd < d) return {0, extent + 1};
      return {1, extent};
    };
    const auto [i0, i1] = span(0, l.lx);
    const auto [j0, j1] = span(1, l.ly);
    const auto [k0, k1] = span(2, l.lz);
    return {i0, i1, j0, j1, k0, k1};
  }

  void pack_face(const Level& l, const std::vector<double>& field, int d,
                 int dir, std::vector<double>& buf) const {
    buf.clear();
    const FaceRange r = face_range(l, d, dir, /*ghost_side=*/false);
    for (int k = r.k0; k <= r.k1; ++k) {
      for (int j = r.j0; j <= r.j1; ++j) {
        for (int i = r.i0; i <= r.i1; ++i) buf.push_back(field[idx(l, i, j, k)]);
      }
    }
  }

  void unpack_ghost(const Level& l, std::vector<double>& field, int d, int dir,
                    const std::vector<double>& buf) const {
    const FaceRange r = face_range(l, d, dir, /*ghost_side=*/true);
    std::size_t p = 0;
    for (int k = r.k0; k <= r.k1; ++k) {
      for (int j = r.j0; j <= r.j1; ++j) {
        for (int i = r.i0; i <= r.i1; ++i) field[idx(l, i, j, k)] = buf[p++];
      }
    }
  }

  void smooth(int lv) {
    Level& l = levels_[static_cast<std::size_t>(lv)];
    exchange(lv, l.u);
    const double w = cfg_.damping;
    for (int k = 1; k <= l.lz; ++k) {
      for (int j = 1; j <= l.ly; ++j) {
        for (int i = 1; i <= l.lx; ++i) {
          const std::size_t c = idx(l, i, j, k);
          const double nb = l.u[c - 1] + l.u[c + 1] +
                            l.u[c - static_cast<std::size_t>(l.lx + 2)] +
                            l.u[c + static_cast<std::size_t>(l.lx + 2)] +
                            l.u[c - static_cast<std::size_t>(l.lx + 2) * (l.ly + 2)] +
                            l.u[c + static_cast<std::size_t>(l.lx + 2) * (l.ly + 2)];
          l.tmp[c] = (1.0 - w) * l.u[c] + w * (l.h2 * l.f[c] + nb) / 6.0;
        }
      }
    }
    std::swap(l.u, l.tmp);
    const auto pts = static_cast<std::uint64_t>(l.lx) * l.ly * l.lz;
    points_smoothed_ += pts;
    mpi_.compute(sim::Time::sec(static_cast<double>(pts) * cfg_.point_ns * 1e-9));
  }

  /// tmp = f - A u (requires fresh halos on u).
  void compute_residual(int lv) {
    Level& l = levels_[static_cast<std::size_t>(lv)];
    exchange(lv, l.u);
    for (int k = 1; k <= l.lz; ++k) {
      for (int j = 1; j <= l.ly; ++j) {
        for (int i = 1; i <= l.lx; ++i) {
          const std::size_t c = idx(l, i, j, k);
          const double nb = l.u[c - 1] + l.u[c + 1] +
                            l.u[c - static_cast<std::size_t>(l.lx + 2)] +
                            l.u[c + static_cast<std::size_t>(l.lx + 2)] +
                            l.u[c - static_cast<std::size_t>(l.lx + 2) * (l.ly + 2)] +
                            l.u[c + static_cast<std::size_t>(l.lx + 2) * (l.ly + 2)];
          l.tmp[c] = l.f[c] - (6.0 * l.u[c] - nb) / l.h2;
        }
      }
    }
    const auto pts = static_cast<std::uint64_t>(l.lx) * l.ly * l.lz;
    points_smoothed_ += pts;
    mpi_.compute(sim::Time::sec(static_cast<double>(pts) * cfg_.point_ns * 1e-9));
  }

  double residual_norm(int lv) {
    compute_residual(lv);
    Level& l = levels_[static_cast<std::size_t>(lv)];
    double s = 0.0;
    for (int k = 1; k <= l.lz; ++k) {
      for (int j = 1; j <= l.ly; ++j) {
        for (int i = 1; i <= l.lx; ++i) {
          const double v = l.tmp[idx(l, i, j, k)];
          s += v * v;
        }
      }
    }
    return std::sqrt(mpi_.allreduce(s, mpi::ReduceOp::sum)) /
           (static_cast<double>(l.n) * l.n * l.n);
  }

  void vcycle(int lv) {
    const bool coarsest = lv + 1 == static_cast<int>(levels_.size());
    for (int s = 0; s < cfg_.pre_smooth; ++s) smooth(lv);
    if (coarsest) {
      for (int s = 0; s < 16; ++s) smooth(lv);  // coarse "solve"
      return;
    }
    compute_residual(lv);

    // Full-weighting restriction of tmp (residual) into the coarse RHS.
    Level& fine = levels_[static_cast<std::size_t>(lv)];
    Level& coarse = levels_[static_cast<std::size_t>(lv) + 1];
    std::fill(coarse.u.begin(), coarse.u.end(), 0.0);
    for (int K = 1; K <= coarse.lz; ++K) {
      for (int J = 1; J <= coarse.ly; ++J) {
        for (int I = 1; I <= coarse.lx; ++I) {
          double s = 0.0;
          for (int dk = 0; dk < 2; ++dk) {
            for (int dj = 0; dj < 2; ++dj) {
              for (int di = 0; di < 2; ++di) {
                s += fine.tmp[idx(fine, 2 * I - 1 + di, 2 * J - 1 + dj,
                                  2 * K - 1 + dk)];
              }
            }
          }
          coarse.f[idx(coarse, I, J, K)] = s / 8.0;
        }
      }
    }

    vcycle(lv + 1);

    // Cell-centred linear prolongation of the coarse correction (needs
    // fresh coarse halos).
    exchange(lv + 1, coarse.u);
    for (int k = 1; k <= fine.lz; ++k) {
      const int K = (k + 1) / 2;
      const int sk = (k % 2 == 1) ? -1 : 1;
      for (int j = 1; j <= fine.ly; ++j) {
        const int J = (j + 1) / 2;
        const int sj = (j % 2 == 1) ? -1 : 1;
        for (int i = 1; i <= fine.lx; ++i) {
          const int I = (i + 1) / 2;
          const int si = (i % 2 == 1) ? -1 : 1;
          double v = 0.0;
          for (int dk = 0; dk < 2; ++dk) {
            const double wk = dk == 0 ? 0.75 : 0.25;
            for (int dj = 0; dj < 2; ++dj) {
              const double wj = dj == 0 ? 0.75 : 0.25;
              for (int di = 0; di < 2; ++di) {
                const double wi = di == 0 ? 0.75 : 0.25;
                v += wk * wj * wi *
                     coarse.u[idx(coarse, I + di * si, J + dj * sj, K + dk * sk)];
              }
            }
          }
          fine.u[idx(fine, i, j, k)] += v;
        }
      }
    }

    for (int s = 0; s < cfg_.post_smooth; ++s) smooth(lv);
  }

  mpi::Mpi& mpi_;
  MgConfig cfg_;
  md::ProcGrid grid_;
  std::vector<Level> levels_;
  std::vector<double> sbuf_, rbuf_;
  std::uint64_t halo_bytes_ = 0;
  std::uint64_t points_smoothed_ = 0;
};

}  // namespace

MgResult run_mg(mpi::Mpi& mpi, const MgConfig& config) {
  MgSolver solver(mpi, config);
  return solver.solve();
}

}  // namespace icsim::apps::mg
