#pragma once
// Geometric multigrid kernel (NPB-MG-class proxy) — extension kernel.
//
// A real V-cycle Poisson solver on a cube: damped-Jacobi smoothing on the
// 7-point Laplacian, full-weighting restriction and trilinear-style
// prolongation on cell-centred grids, 3-D block decomposition with 1-deep
// face halos exchanged at EVERY level.  Communication-wise this is the
// interesting middle ground between CG (small latency-bound messages) and
// IS (bulk bandwidth): fine levels move big faces, coarse levels move tiny
// ones, so both ends of Figure 1 matter at once.
//
// Unlike NPB MG we do not chase the published residual constant (that
// requires NPB's exact stencil weights and initial charge layout); the
// substitution is documented in DESIGN.md.  Verification instead pins the
// real invariants: the residual norm is decomposition- and
// transport-invariant to roundoff, and each V-cycle contracts it.

#include <cstdint>

#include "mpi/mpi.hpp"

namespace icsim::apps::mg {

struct MgConfig {
  int n = 64;       ///< global cube edge (power of two)
  int vcycles = 4;
  int pre_smooth = 2;
  int post_smooth = 2;
  double damping = 0.8;
  /// Stop coarsening when the local block edge would fall below this.
  int min_local = 2;
  /// Cap the hierarchy depth (0 = coarsen as far as min_local allows).
  /// Useful to compare decompositions on identical hierarchies.
  int max_levels = 0;
  double point_ns = 16.0;  ///< smoother cost per grid point per sweep
};

struct MgResult {
  double seconds = 0.0;
  double rnorm0 = 0.0;  ///< initial residual L2 norm
  double rnorm = 0.0;   ///< after the configured V-cycles
  int levels = 0;
  std::uint64_t halo_bytes = 0;  ///< global
  std::uint64_t points_smoothed = 0;
};

MgResult run_mg(mpi::Mpi& mpi, const MgConfig& config);

}  // namespace icsim::apps::mg
