#include "apps/sweep3d/sweep.hpp"

#include <array>
#include <cmath>
#include <cstring>
#include <stdexcept>
#include <vector>

namespace icsim::apps::sweep {

namespace {

constexpr int kFaceTagI = 300;
constexpr int kFaceTagJ = 301;

struct Decomp2d {
  int px = 1, py = 1;
  int cx = 0, cy = 0;
  int i0 = 0, i1 = 0, j0 = 0, j1 = 0;

  Decomp2d(int nprocs, int rank, int nx, int ny) {
    double best = 1e300;
    for (int x = 1; x <= nprocs; ++x) {
      if (nprocs % x != 0) continue;
      const int y = nprocs / x;
      const double badness = std::abs(std::log(static_cast<double>(x) / y));
      if (badness < best) {
        best = badness;
        px = x;
        py = y;
      }
    }
    cx = rank % px;
    cy = rank / px;
    auto split = [](int n, int parts, int idx, int& lo, int& hi) {
      const int base = n / parts, rem = n % parts;
      lo = idx * base + std::min(idx, rem);
      hi = lo + base + (idx < rem ? 1 : 0);
    };
    split(nx, px, cx, i0, i1);
    split(ny, py, cy, j0, j1);
  }

  [[nodiscard]] int rank_of(int x, int y) const { return x + y * px; }
};

struct Angle {
  double mu, eta, xi, w;
};

std::vector<Angle> make_angles(int per_octant) {
  std::vector<Angle> a(static_cast<std::size_t>(per_octant));
  for (int m = 0; m < per_octant; ++m) {
    const double xi = (m + 0.5) / per_octant;
    const double r = std::sqrt(std::max(0.0, 1.0 - xi * xi));
    const double phi = 0.5 * M_PI * (m + 0.5) / per_octant;
    a[static_cast<std::size_t>(m)] = {r * std::cos(phi), r * std::sin(phi), xi,
                                      1.0 / (8.0 * per_octant)};
  }
  return a;
}

}  // namespace

SweepResult run_sweep3d(mpi::Mpi& mpi, const SweepConfig& cfg) {
  const Decomp2d d(mpi.size(), mpi.rank(), cfg.nx, cfg.ny);
  const int it = d.i1 - d.i0;  // local i extent
  const int jt = d.j1 - d.j0;
  const int kt = cfg.nz;
  if (it <= 0 || jt <= 0) {
    throw std::invalid_argument("run_sweep3d: more processors than columns");
  }
  const auto angles = make_angles(cfg.angles_per_octant);
  const int mmi = cfg.mmi;
  const int nblk_m = (cfg.angles_per_octant + mmi - 1) / mmi;
  const int nblk_k = (kt + cfg.mk - 1) / cfg.mk;

  const std::size_t ncells =
      static_cast<std::size_t>(it) * static_cast<std::size_t>(jt) *
      static_cast<std::size_t>(kt);
  std::vector<double> flux(ncells, 0.0), source(ncells, cfg.fixed_source);
  auto cell = [&](int i, int j, int k) {
    return (static_cast<std::size_t>(k) * jt + j) * static_cast<std::size_t>(it) + i;
  };

  // Working-set-dependent compute cost (the fixed-size cache effect).
  const double ws_bytes = static_cast<double>(ncells) * 32.0;
  const double cost_mult =
      1.0 + cfg.cache_penalty * ws_bytes / (ws_bytes + cfg.cache_half_bytes);
  const double cell_cost_s = cfg.cell_angle_ns * cost_mult * 1e-9;

  // Inflow/outflow faces and the persistent k-coupling plane.
  std::vector<double> phii(static_cast<std::size_t>(mmi) * jt * cfg.mk);
  std::vector<double> phij(static_cast<std::size_t>(mmi) * it * cfg.mk);
  std::vector<double> phik(static_cast<std::size_t>(mmi) * it * jt);
  auto ii = [&](int m, int j, int k) {
    return (static_cast<std::size_t>(m) * jt + j) * static_cast<std::size_t>(cfg.mk) + k;
  };
  auto ij = [&](int m, int i, int k) {
    return (static_cast<std::size_t>(m) * it + i) * static_cast<std::size_t>(cfg.mk) + k;
  };
  auto ik = [&](int m, int i, int j) {
    return (static_cast<std::size_t>(m) * it + i) * static_cast<std::size_t>(jt) + j;
  };

  std::uint64_t cells_swept = 0;
  std::uint64_t face_bytes = 0;

  mpi.barrier();
  const double t0 = mpi.wtime();

  for (int iter = 0; iter < cfg.iterations; ++iter) {
    // Scattering source from the previous iteration's flux.
    for (std::size_t c = 0; c < ncells; ++c) {
      source[c] = cfg.fixed_source + cfg.scatter * cfg.sigma_t * flux[c];
      flux[c] = 0.0;
    }

    for (int oct = 0; oct < 8; ++oct) {
      const int di = (oct & 1) ? -1 : 1;
      const int dj = (oct & 2) ? -1 : 1;
      const int dk = (oct & 4) ? -1 : 1;
      const int up_i = d.cx - di;   // upstream processor column
      const int up_j = d.cy - dj;
      const int dn_i = d.cx + di;
      const int dn_j = d.cy + dj;
      const bool has_up_i = up_i >= 0 && up_i < d.px;
      const bool has_up_j = up_j >= 0 && up_j < d.py;
      const bool has_dn_i = dn_i >= 0 && dn_i < d.px;
      const bool has_dn_j = dn_j >= 0 && dn_j < d.py;

      for (int mb = 0; mb < nblk_m; ++mb) {
        const int m_lo = mb * mmi;
        const int m_hi = std::min(cfg.angles_per_octant, m_lo + mmi);
        const int mcount = m_hi - m_lo;
        std::fill(phik.begin(), phik.end(), 0.0);  // vacuum k boundary

        for (int kb = 0; kb < nblk_k; ++kb) {
          const int k_lo = dk > 0 ? kb * cfg.mk : kt - (kb + 1) * cfg.mk;
          const int k_from = std::max(0, k_lo);
          const int k_to = std::min(kt, k_lo + cfg.mk);
          const int kcount = k_to - k_from;

          // Inflow faces (vacuum at the global boundary).
          if (has_up_i) {
            mpi.recv(phii.data(), phii.size() * sizeof(double),
                     d.rank_of(up_i, d.cy), kFaceTagI);
          } else {
            std::fill(phii.begin(), phii.end(), 0.0);
          }
          if (has_up_j) {
            mpi.recv(phij.data(), phij.size() * sizeof(double),
                     d.rank_of(d.cx, up_j), kFaceTagJ);
          } else {
            std::fill(phij.begin(), phij.end(), 0.0);
          }

          // Sweep the block (real diamond-difference recursion).
          for (int mi = 0; mi < mcount; ++mi) {
            const Angle& a = angles[static_cast<std::size_t>(m_lo + mi)];
            const double denom = cfg.sigma_t + 2.0 * (a.mu + a.eta + a.xi);
            for (int kk = 0; kk < kcount; ++kk) {
              const int k = dk > 0 ? k_from + kk : k_to - 1 - kk;
              for (int jj = 0; jj < jt; ++jj) {
                const int j = dj > 0 ? jj : jt - 1 - jj;
                for (int iidx = 0; iidx < it; ++iidx) {
                  const int i = di > 0 ? iidx : it - 1 - iidx;
                  const double inc_i = phii[ii(mi, j, kk)];
                  const double inc_j = phij[ij(mi, i, kk)];
                  const double inc_k = phik[ik(mi, i, j)];
                  const double psi =
                      (source[cell(i, j, k)] +
                       2.0 * (a.mu * inc_i + a.eta * inc_j + a.xi * inc_k)) /
                      denom;
                  phii[ii(mi, j, kk)] = 2.0 * psi - inc_i;
                  phij[ij(mi, i, kk)] = 2.0 * psi - inc_j;
                  phik[ik(mi, i, j)] = 2.0 * psi - inc_k;
                  flux[cell(i, j, k)] += a.w * psi;
                }
              }
            }
          }
          const std::uint64_t updates = static_cast<std::uint64_t>(mcount) *
                                        static_cast<std::uint64_t>(kcount) *
                                        static_cast<std::uint64_t>(it) *
                                        static_cast<std::uint64_t>(jt);
          cells_swept += updates;
          mpi.compute(sim::Time::sec(static_cast<double>(updates) * cell_cost_s));

          // Outflow faces downstream.
          if (has_dn_i) {
            mpi.send(phii.data(), phii.size() * sizeof(double),
                     d.rank_of(dn_i, d.cy), kFaceTagI);
            face_bytes += phii.size() * sizeof(double);
          }
          if (has_dn_j) {
            mpi.send(phij.data(), phij.size() * sizeof(double),
                     d.rank_of(d.cx, dn_j), kFaceTagJ);
            face_bytes += phij.size() * sizeof(double);
          }
        }
      }
    }
  }

  mpi.barrier();
  const double t1 = mpi.wtime();

  SweepResult r;
  r.solve_seconds = t1 - t0;
  double fs = 0.0;
  for (const double f : flux) fs += f;
  r.flux_sum = mpi.allreduce(fs, mpi::ReduceOp::sum);
  const double swept = static_cast<double>(cells_swept);
  r.cells_swept = static_cast<std::uint64_t>(
      mpi.allreduce(swept, mpi::ReduceOp::sum));
  const double fb = static_cast<double>(face_bytes);
  r.face_bytes = static_cast<std::uint64_t>(mpi.allreduce(fb, mpi::ReduceOp::sum));
  r.grind_ns = r.solve_seconds * 1e9 / static_cast<double>(r.cells_swept);
  return r;
}

}  // namespace icsim::apps::sweep
