#pragma once
// Sweep3D: discrete-ordinates (Sn) neutron-transport wavefront sweep
// (paper Section 2.2.2; Koch, Baker & Alcouffe).
//
// Solves a one-group, time-independent Sn problem on an IJK grid with the
// KBA algorithm: a 2-D process decomposition over (i, j); the sweep for
// each of the 8 octants pipelines in blocks of `mk` k-planes and `mmi`
// angles, receiving inflow faces from the upstream i/j neighbours and
// sending outflow faces downstream.  The per-cell update is a real
// diamond-difference recursion (the numbers flow through the same data
// dependencies as the original), the scattering source is updated between
// iterations, and the global flux sum is a decomposition-invariant
// checksum used by the tests.
//
// This is a FIXED-size study: the grid does not grow with processors,
// which is why the paper sees a superlinear step from 1 to 4 processors —
// the per-process working set starts fitting in cache.  That effect is
// modeled by a working-set-dependent multiplier on the per-cell cost.

#include <cstdint>

#include "mpi/mpi.hpp"

namespace icsim::apps::sweep {

struct SweepConfig {
  int nx = 150, ny = 150, nz = 150;  ///< global IJK grid
  int mk = 10;    ///< k-planes per pipeline block
  int mmi = 3;    ///< angles per pipeline block
  int angles_per_octant = 6;  ///< S6-like
  int iterations = 4;         ///< source (scattering) iterations
  double sigma_t = 1.0;       ///< total cross section
  double scatter = 0.5;       ///< isotropic scattering ratio
  double fixed_source = 1.0;

  // Compute-cost model (3.06 GHz Xeon class).
  double cell_angle_ns = 95.0;  ///< per cell-angle update, cache-resident
  /// Out-of-cache penalty: multiplier = 1 + penalty * ws/(ws + half_bytes).
  /// Calibrated so the 150^3 problem shows the paper's superlinear step
  /// from 1 to 4 processors as the per-rank working set shrinks.
  double cache_penalty = 0.5;
  double cache_half_bytes = 4.0e7;
};

struct SweepResult {
  double solve_seconds = 0.0;
  double grind_ns = 0.0;      ///< time per cell-angle-iteration (the paper's metric)
  double flux_sum = 0.0;      ///< decomposition-invariant checksum
  std::uint64_t cells_swept = 0;  ///< global cell-angle updates
  std::uint64_t face_bytes = 0;   ///< global bytes moved on sweep faces
};

SweepResult run_sweep3d(mpi::Mpi& mpi, const SweepConfig& config);

}  // namespace icsim::apps::sweep
