#pragma once
// Scenario registry for the parallel sweep driver.
//
// Every figure of the reproduced study is a sweep: message sizes for
// Fig. 1, node counts for Figs. 2-6, price points for Figs. 7-8.  Each
// sweep point is registered as a self-contained Scenario: a closure that
// builds a *fresh* Engine/Cluster/workload, runs it, and returns a
// PointResult.  Nothing is shared between points, so the runner
// (runner.hpp) may execute them on any worker thread in any order — the
// simulation inside each point stays single-threaded and deterministic.
//
// Points belong to named groups (one group per figure).  A group may
// carry a `finalize` hook that runs serially after every point of the
// group has completed, in registry order: this is where cross-point
// derived values (scaling efficiencies against a 1-node baseline,
// Elan:IB ratios, trend fits) are computed, so they are identical no
// matter how the points were scheduled.
//
// Registration is explicit — main() calls register_<group>(registry) in a
// fixed order — rather than via static initializers, whose cross-TU order
// the language leaves unspecified and which would break the "aggregate in
// registry order" determinism contract.

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace icsim::driver {

/// One named value produced by a sweep point.  `precision` is how many
/// decimal places the console table shows; JSON/CSV always serialize with
/// full round-trip precision.
struct Metric {
  std::string name;
  double value = 0.0;
  int precision = 2;
};

/// Everything one sweep point reports back.  `wall_ms` is filled by the
/// runner and deliberately excluded from the deterministic serializations.
struct PointResult {
  std::vector<Metric> metrics;          ///< ordered as the scenario added them
  std::uint64_t events = 0;             ///< DES events the point processed
  std::uint64_t digest = 0;             ///< Engine::event_digest of the run
  std::string error;                    ///< non-empty: the scenario threw
  double wall_ms = 0.0;                 ///< host wall clock (not serialized)

  void add(std::string name, double value, int precision = 2) {
    metrics.push_back({std::move(name), value, precision});
  }
  [[nodiscard]] const Metric* find(const std::string& name) const {
    for (const auto& m : metrics) {
      if (m.name == name) return &m;
    }
    return nullptr;
  }
  [[nodiscard]] double value(const std::string& name, double fallback = 0.0) const {
    const Metric* m = find(name);
    return m != nullptr ? m->value : fallback;
  }
};

/// A registered sweep point: group it belongs to, unique name within the
/// group, and the factory closure that runs it from scratch.
struct Scenario {
  std::string group;
  std::string name;
  std::function<PointResult()> run;
};

/// Per-group metadata.  `finalize` receives the group's completed points
/// (registry order) and may append derived metrics to them; the strings it
/// returns are printed after the group's table and serialized as the
/// group's summary.
struct Group {
  std::string name;
  std::string title;
  std::function<std::vector<std::string>(std::vector<PointResult>&)> finalize;
};

class Registry {
 public:
  /// Get-or-create a group.  First call fixes its position in the output;
  /// `title` and `finalize` of later calls apply only if still unset.
  Group& group(const std::string& name, const std::string& title = "");

  /// Register one sweep point.  Creates the group on first use.
  void add(const std::string& group, std::string name,
           std::function<PointResult()> run);

  [[nodiscard]] const std::vector<Group>& groups() const { return groups_; }
  [[nodiscard]] const std::vector<Scenario>& scenarios() const { return scenarios_; }

  /// Scenario indices for the named groups (all scenarios when `names` is
  /// empty), preserving registry order.  Throws std::invalid_argument on an
  /// unknown group name, listing what is registered.
  [[nodiscard]] std::vector<std::size_t> select(
      const std::vector<std::string>& names) const;

  [[nodiscard]] bool has_group(const std::string& name) const;

 private:
  std::vector<Group> groups_;
  std::vector<Scenario> scenarios_;
};

}  // namespace icsim::driver
