#pragma once
// Shared command line for sweep binaries.
//
// icsim_sweep registers every scenario group and hands argc/argv to
// sweep_main(); each per-figure bench binary registers just its own
// group(s) and does the same, which is what makes them thin wrappers.
//
//   usage: <prog> [options] [group ...]
//     -j N, -jN     worker threads (0 = all hardware threads; default 1)
//     --list        list registered groups (+ point counts) and exit
//     --json PATH   write the aggregated JSON report (PATH "-" = stdout)
//     --csv PATH    write the aggregated CSV report (PATH "-" = stdout)
//     --metrics PATH  write host-side perf metrics JSON (wall clock,
//                     events/sec) — intentionally NOT deterministic
//     --progress    per-point completion lines on stderr
//     --quiet       suppress the console tables
//
// With no group arguments every registered group runs.  Exit status: 0
// when every point succeeded, 1 when any point reported an error, 2 on a
// usage error.  Tables/JSON/CSV are byte-identical across -j values; all
// wall-clock reporting goes to stderr or the --metrics file.

#include "driver/scenario.hpp"

namespace icsim::driver {

int sweep_main(const Registry& registry, int argc, char** argv);

}  // namespace icsim::driver
