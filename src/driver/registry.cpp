#include "driver/scenario.hpp"

#include <stdexcept>

namespace icsim::driver {

Group& Registry::group(const std::string& name, const std::string& title) {
  for (auto& g : groups_) {
    if (g.name == name) {
      if (g.title.empty()) g.title = title;
      return g;
    }
  }
  groups_.push_back(Group{name, title, nullptr});
  return groups_.back();
}

void Registry::add(const std::string& group_name, std::string name,
                   std::function<PointResult()> run) {
  group(group_name);
  scenarios_.push_back(Scenario{group_name, std::move(name), std::move(run)});
}

bool Registry::has_group(const std::string& name) const {
  for (const auto& g : groups_) {
    if (g.name == name) return true;
  }
  return false;
}

std::vector<std::size_t> Registry::select(
    const std::vector<std::string>& names) const {
  if (names.empty()) {
    std::vector<std::size_t> all(scenarios_.size());
    for (std::size_t i = 0; i < all.size(); ++i) all[i] = i;
    return all;
  }
  for (const auto& n : names) {
    if (!has_group(n)) {
      std::string known;
      for (const auto& g : groups_) {
        if (!known.empty()) known += ", ";
        known += g.name;
      }
      throw std::invalid_argument("unknown scenario group '" + n +
                                  "' (registered: " + known + ")");
    }
  }
  // Registry order, not command-line order: the output must not depend on
  // how the caller spelled the selection.
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < scenarios_.size(); ++i) {
    for (const auto& n : names) {
      if (scenarios_[i].group == n) {
        out.push_back(i);
        break;
      }
    }
  }
  return out;
}

}  // namespace icsim::driver
