#include "driver/runner.hpp"

#include <atomic>
#include <chrono>  // host wall clock only; simulated time is sim::Time
#include <cstdio>
#include <mutex>
#include <thread>

#include "sim/check.hpp"
#include "sim/concurrency.hpp"

namespace icsim::driver {

namespace {

// Host wall clock for perf bookkeeping.  Never feeds the simulation or the
// deterministic serializations, so the determinism lint's wall-clock rule
// does not apply to these two readings.
double now_ms() {
  // icsim-lint: allow(wall-clock)
  const auto t = std::chrono::steady_clock::now().time_since_epoch();
  return std::chrono::duration<double, std::milli>(t).count();
}

std::string hex64(std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "%016llx", static_cast<unsigned long long>(v));
  return buf;
}

/// Full round-trip precision; %.17g prints the shortest-ish exact form and
/// is byte-stable for identical doubles, which is all the diff needs.
std::string num(double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

std::string fixed(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return buf;
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string csv_escape(const std::string& s) {
  if (s.find_first_of(",\"\n") == std::string::npos) return s;
  std::string out = "\"";
  for (const char c : s) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += '"';
  return out;
}

}  // namespace

std::size_t SweepReport::total_points() const {
  std::size_t n = 0;
  for (const auto& g : groups) n += g.points.size();
  return n;
}

std::size_t SweepReport::total_errors() const {
  std::size_t n = 0;
  for (const auto& g : groups) {
    for (const auto& p : g.points) {
      if (!p.error.empty()) ++n;
    }
  }
  return n;
}

SweepReport run_sweep(const Registry& registry,
                      const std::vector<std::string>& group_names,
                      const SweepOptions& options) {
  const std::vector<std::size_t> selected = registry.select(group_names);
  const auto& scenarios = registry.scenarios();

  unsigned jobs = options.jobs > 0 ? static_cast<unsigned>(options.jobs)
                                   : std::thread::hardware_concurrency();
  if (jobs == 0) jobs = 1;
  if (jobs > selected.size() && !selected.empty()) {
    jobs = static_cast<unsigned>(selected.size());
  }

  const double t_start = now_ms();
  std::vector<PointResult> results(selected.size());
  std::atomic<std::size_t> next{0};
  std::mutex progress_mu;

  auto worker = [&] {
    for (;;) {
      const std::size_t slot = next.fetch_add(1);
      if (slot >= selected.size()) return;
      const Scenario& sc = scenarios[selected[slot]];
      PointResult r;
      const double t0 = now_ms();
      try {
        r = sc.run();
      } catch (const std::exception& e) {
        r = PointResult{};
        r.error = e.what();
      } catch (...) {
        r = PointResult{};
        r.error = "unknown exception";
      }
      r.wall_ms = now_ms() - t0;
      if (options.progress) {
        const std::lock_guard<std::mutex> lock(progress_mu);
        std::fprintf(stderr, "[sweep] %s/%s: %.0f ms, %llu events%s%s\n",
                     sc.group.c_str(), sc.name.c_str(), r.wall_ms,
                     static_cast<unsigned long long>(r.events),
                     r.error.empty() ? "" : ", ERROR: ",
                     r.error.c_str());
      }
      results[slot] = std::move(r);
    }
  };

  // Nested-parallelism guard: announce the pool width so scenarios that
  // build an intra-run parallel engine (par::ParCluster) clamp their own
  // thread count — host scheduling only, never simulated results (see
  // sim/concurrency.hpp).
  sim::set_external_workers(static_cast<int>(jobs));
  if (jobs <= 1) {
    worker();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(jobs);
    for (unsigned i = 0; i < jobs; ++i) pool.emplace_back(worker);
    for (auto& t : pool) t.join();
  }
  sim::set_external_workers(1);

  // Aggregation: registry order throughout, never completion order.
  SweepReport report;
  report.jobs = static_cast<int>(jobs);
  sim::check::Fnv1a all;
  for (const auto& g : registry.groups()) {
    GroupReport gr;
    gr.name = g.name;
    gr.title = g.title;
    for (std::size_t slot = 0; slot < selected.size(); ++slot) {
      const Scenario& sc = scenarios[selected[slot]];
      if (sc.group != g.name) continue;
      gr.point_names.push_back(sc.name);
      gr.points.push_back(std::move(results[slot]));
    }
    if (gr.points.empty()) continue;  // group not selected
    if (g.finalize) gr.summary = g.finalize(gr.points);
    sim::check::Fnv1a gd;
    for (const auto& p : gr.points) gd.fold(p.digest);
    gr.digest = gd.value();
    all.fold(gr.digest);
    report.groups.push_back(std::move(gr));
  }
  report.digest = all.value();
  report.wall_ms = now_ms() - t_start;
  return report;
}

std::string SweepReport::to_json() const {
  std::string out = "{\n  \"groups\": [";
  bool first_g = true;
  for (const auto& g : groups) {
    out += first_g ? "\n" : ",\n";
    first_g = false;
    out += "    {\"name\": \"" + json_escape(g.name) + "\", \"title\": \"" +
           json_escape(g.title) + "\",\n     \"points\": [";
    for (std::size_t i = 0; i < g.points.size(); ++i) {
      const PointResult& p = g.points[i];
      out += i == 0 ? "\n" : ",\n";
      out += "      {\"name\": \"" + json_escape(g.point_names[i]) + "\"";
      if (!p.error.empty()) {
        out += ", \"error\": \"" + json_escape(p.error) + "\"}";
        continue;
      }
      out += ", \"events\": " + std::to_string(p.events) + ", \"digest\": \"" +
             hex64(p.digest) + "\", \"metrics\": {";
      for (std::size_t m = 0; m < p.metrics.size(); ++m) {
        if (m != 0) out += ", ";
        out += "\"" + json_escape(p.metrics[m].name) +
               "\": " + num(p.metrics[m].value);
      }
      out += "}}";
    }
    out += "\n     ],\n     \"summary\": [";
    for (std::size_t s = 0; s < g.summary.size(); ++s) {
      if (s != 0) out += ", ";
      out += "\"" + json_escape(g.summary[s]) + "\"";
    }
    out += "],\n     \"digest\": \"" + hex64(g.digest) + "\"}";
  }
  out += "\n  ],\n  \"digest\": \"" + hex64(digest) + "\"\n}\n";
  return out;
}

std::string SweepReport::to_csv() const {
  std::string out = "group,point,metric,value\n";
  for (const auto& g : groups) {
    for (std::size_t i = 0; i < g.points.size(); ++i) {
      const PointResult& p = g.points[i];
      const std::string prefix =
          csv_escape(g.name) + "," + csv_escape(g.point_names[i]) + ",";
      if (!p.error.empty()) {
        out += prefix + "error," + csv_escape(p.error) + "\n";
        continue;
      }
      for (const auto& m : p.metrics) {
        out += prefix + csv_escape(m.name) + "," + num(m.value) + "\n";
      }
      out += prefix + "events," + std::to_string(p.events) + "\n";
      out += prefix + "digest," + hex64(p.digest) + "\n";
    }
  }
  return out;
}

void SweepReport::print(std::FILE* out) const {
  constexpr int kWidth = 14;
  for (const auto& g : groups) {
    std::fprintf(out, "%s\n\n",
                 g.title.empty() ? g.name.c_str() : g.title.c_str());
    // Column set: union of the group's metric names, first-appearance order.
    std::vector<const Metric*> cols;  // representative (for precision)
    std::vector<std::string> names;
    for (const auto& p : g.points) {
      for (const auto& m : p.metrics) {
        bool known = false;
        for (const auto& n : names) {
          if (n == m.name) { known = true; break; }
        }
        if (!known) {
          names.push_back(m.name);
          cols.push_back(&m);
        }
      }
    }
    std::fprintf(out, "%*s", kWidth, "point");
    for (const auto& n : names) std::fprintf(out, "%*s", kWidth, n.c_str());
    std::fprintf(out, "\n");
    for (std::size_t i = 0; i < names.size() + 1; ++i) {
      for (int j = 0; j < kWidth; ++j) std::fprintf(out, "-");
    }
    std::fprintf(out, "\n");
    for (std::size_t i = 0; i < g.points.size(); ++i) {
      const PointResult& p = g.points[i];
      std::fprintf(out, "%*s", kWidth, g.point_names[i].c_str());
      if (!p.error.empty()) {
        std::fprintf(out, "  ERROR: %s\n", p.error.c_str());
        continue;
      }
      for (std::size_t c = 0; c < names.size(); ++c) {
        const Metric* m = p.find(names[c]);
        if (m == nullptr) {
          std::fprintf(out, "%*s", kWidth, "-");
        } else {
          std::fprintf(out, "%*s", kWidth,
                       fixed(m->value, m->precision).c_str());
        }
      }
      std::fprintf(out, "\n");
    }
    for (const auto& s : g.summary) std::fprintf(out, "%s\n", s.c_str());
    std::fprintf(out, "group digest: %s=%s\n\n", g.name.c_str(),
                 hex64(g.digest).c_str());
  }
  std::fprintf(out, "event digests (reruns must match): all=%s\n",
               hex64(digest).c_str());
}

void SweepReport::publish_metrics(trace::MetricsRegistry& m) const {
  m.counter("driver.points") = total_points();
  m.counter("driver.errors") = total_errors();
  m.counter("driver.jobs") = static_cast<std::uint64_t>(jobs);
  auto& wall = m.stat("driver.point_wall_ms");
  auto& rate = m.stat("driver.events_per_sec");
  std::uint64_t events = 0;
  for (const auto& g : groups) {
    for (const auto& p : g.points) {
      if (!p.error.empty()) continue;
      wall.add(p.wall_ms);
      events += p.events;
      if (p.wall_ms > 0.0) {
        rate.add(static_cast<double>(p.events) / (p.wall_ms / 1e3));
      }
    }
  }
  m.counter("driver.events_total") = events;
  m.stat("driver.sweep_wall_ms").add(wall_ms);
}

}  // namespace icsim::driver
