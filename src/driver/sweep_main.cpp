#include "driver/sweep_main.hpp"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "driver/runner.hpp"

namespace icsim::driver {

namespace {

void usage(const char* prog) {
  std::fprintf(stderr,
               "usage: %s [options] [group ...]\n"
               "  -j N, -jN      worker threads (0 = all hardware threads; "
               "default 1)\n"
               "  --list         list registered groups and exit\n"
               "  --json PATH    write aggregated JSON (\"-\" = stdout)\n"
               "  --csv PATH     write aggregated CSV (\"-\" = stdout)\n"
               "  --out PATH     write aggregated output; format from the\n"
               "                 extension (.json or .csv)\n"
               "  --metrics PATH write host perf metrics JSON (wall clock)\n"
               "  --progress     per-point completion lines on stderr\n"
               "  --quiet        suppress console tables\n",
               prog);
}

bool write_file_or_stdout(const std::string& path, const std::string& body) {
  if (path == "-") {
    std::fwrite(body.data(), 1, body.size(), stdout);
    return true;
  }
  std::ofstream out(path);
  out << body;
  return out.good();
}

}  // namespace

int sweep_main(const Registry& registry, int argc, char** argv) {
  SweepOptions opt;
  std::string json_path, csv_path, metrics_path;
  bool list = false, quiet = false;
  std::vector<std::string> groups;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto need_value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s: %s needs a value\n", argv[0], flag);
        return nullptr;
      }
      return argv[++i];
    };
    if (arg == "-h" || arg == "--help") {
      usage(argv[0]);
      return 0;
    } else if (arg == "--list") {
      list = true;
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (arg == "--progress") {
      opt.progress = true;
    } else if (arg == "-j") {
      const char* v = need_value("-j");
      if (v == nullptr) return 2;
      opt.jobs = std::atoi(v);
    } else if (arg.rfind("-j", 0) == 0 && arg.size() > 2) {
      opt.jobs = std::atoi(arg.c_str() + 2);
    } else if (arg == "--json") {
      const char* v = need_value("--json");
      if (v == nullptr) return 2;
      json_path = v;
    } else if (arg == "--csv") {
      const char* v = need_value("--csv");
      if (v == nullptr) return 2;
      csv_path = v;
    } else if (arg == "--out") {
      const char* v = need_value("--out");
      if (v == nullptr) return 2;
      const std::string path = v;
      const auto dot = path.rfind('.');
      const std::string ext = dot == std::string::npos ? "" : path.substr(dot);
      if (ext == ".json") {
        json_path = path;
      } else if (ext == ".csv") {
        csv_path = path;
      } else {
        std::fprintf(stderr,
                     "%s: --out needs a .json or .csv extension to pick the "
                     "format, got '%s'\n",
                     argv[0], path.c_str());
        return 2;
      }
    } else if (arg == "--metrics") {
      const char* v = need_value("--metrics");
      if (v == nullptr) return 2;
      metrics_path = v;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "%s: unknown option '%s'\n", argv[0], arg.c_str());
      usage(argv[0]);
      return 2;
    } else {
      groups.push_back(arg);
    }
  }

  if (list) {
    for (const auto& g : registry.groups()) {
      std::size_t points = 0;
      for (const auto& s : registry.scenarios()) {
        if (s.group == g.name) ++points;
      }
      std::printf("%-24s %4zu point%s  %s\n", g.name.c_str(), points,
                  points == 1 ? " " : "s", g.title.c_str());
    }
    return 0;
  }

  SweepReport report;
  try {
    report = run_sweep(registry, groups, opt);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s: %s\n", argv[0], e.what());
    return 2;
  }

  if (!quiet) report.print(stdout);
  bool io_ok = true;
  if (!json_path.empty()) {
    io_ok = write_file_or_stdout(json_path, report.to_json()) && io_ok;
  }
  if (!csv_path.empty()) {
    io_ok = write_file_or_stdout(csv_path, report.to_csv()) && io_ok;
  }

  trace::MetricsRegistry metrics;
  report.publish_metrics(metrics);
  if (!metrics_path.empty()) {
    io_ok = write_file_or_stdout(metrics_path, metrics.to_json() + "\n") && io_ok;
  }
  if (!io_ok) {
    std::fprintf(stderr, "%s: failed to write an output file\n", argv[0]);
  }

  // Host-side performance summary: stderr only, so stdout stays
  // byte-identical across thread counts.
  std::fprintf(stderr,
               "[sweep] %zu points, %zu errors, -j%d, %.0f ms wall, "
               "%llu events (%.1f Mev/s aggregate)\n",
               report.total_points(), report.total_errors(), report.jobs,
               report.wall_ms,
               static_cast<unsigned long long>(
                   metrics.counter("driver.events_total")),
               report.wall_ms > 0.0
                   ? static_cast<double>(
                         metrics.counter("driver.events_total")) /
                         report.wall_ms / 1e3
                   : 0.0);

  if (!io_ok) return 2;
  return report.ok() ? 0 : 1;
}

}  // namespace icsim::driver
