#pragma once
// Thread-pool sweep runner with deterministic aggregation.
//
// run_sweep() executes the selected scenarios across `jobs` worker
// threads.  Each point builds its own simulation from scratch (see
// scenario.hpp), so workers share nothing; results land in a slot
// pre-assigned by registry position.  After the pool drains, group
// finalize hooks run serially in registry order.  The consequence, and
// the contract CI enforces by diffing runs: every serialization below is
// byte-identical for the same registry and seeds, whatever the thread
// count or completion order.  Host wall-clock readings never enter the
// deterministic outputs — they are surfaced separately through
// trace::MetricsRegistry and stderr progress lines.

#include <cstdio>
#include <string>
#include <vector>

#include "driver/scenario.hpp"
#include "trace/metrics.hpp"

namespace icsim::driver {

struct SweepOptions {
  int jobs = 1;           ///< worker threads; 0 = hardware concurrency
  bool progress = false;  ///< per-point completion lines on stderr
};

struct GroupReport {
  std::string name;
  std::string title;
  std::vector<std::string> point_names;  ///< parallel to `points`
  std::vector<PointResult> points;       ///< registry order
  std::vector<std::string> summary;      ///< finalize() output
  std::uint64_t digest = 0;              ///< FNV fold of the points' digests
};

struct SweepReport {
  std::vector<GroupReport> groups;
  std::uint64_t digest = 0;  ///< FNV fold of the group digests
  double wall_ms = 0.0;      ///< total host wall clock (not serialized)
  int jobs = 1;

  [[nodiscard]] std::size_t total_points() const;
  [[nodiscard]] std::size_t total_errors() const;
  [[nodiscard]] bool ok() const { return total_errors() == 0; }

  /// Deterministic serializations (no wall-clock, no thread count).
  [[nodiscard]] std::string to_json() const;
  [[nodiscard]] std::string to_csv() const;

  /// Console tables + summaries + digest lines, same determinism contract.
  void print(std::FILE* out) const;

  /// Per-point wall clock and events/sec, plus totals — the host-side
  /// performance view, kept out of the deterministic outputs above.
  void publish_metrics(trace::MetricsRegistry& m) const;
};

/// Run the scenarios of the named groups (all groups when empty).
[[nodiscard]] SweepReport run_sweep(const Registry& registry,
                                    const std::vector<std::string>& groups,
                                    const SweepOptions& options = {});

}  // namespace icsim::driver
