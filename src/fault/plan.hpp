#pragma once
// Fault plans: a declarative, seed-reproducible description of what goes
// wrong with the fabric and when.
//
// A FaultPlan names links (endpoint links by node, switch-to-switch links
// by their two SwitchCoords — always undirected: a failed cable kills both
// directions), gives them scheduled down/up windows and bit-error rates,
// and adds node stall windows.  Plans are pure data: nothing happens until
// a fault::FaultInjector installs one into a fabric (see injector.hpp).
//
// Plans come from two places: built programmatically by benches/tests, or
// parsed from the ICSIM_FAULTS environment variable so any existing binary
// can run on a degraded fabric without a rebuild.  Spec grammar (clauses
// separated by ';', fields inside a clause by whitespace):
//
//   ber=REAL                    global per-link bit-error rate
//   seed=INT                    corruption-draw seed (default: cluster seed)
//   watchdog=TIME               arm the transport watchdogs with this budget
//   link LINK [down@T1[:T2]] [ber=REAL]
//                               down at T1 (up again at T2 if given), and/or
//                               a per-link BER override
//   stall NODE@T1+DUR           node NODE serves no DMA/memory traffic in
//                               [T1, T1+DUR)
//   LINK := nNODE               both endpoint links of node NODE
//         | sL.W-L.W            switch (level L, word W) <-> (level L, word W)
//   TIME := REAL('ns'|'us'|'ms'|'s')
//
// Example:
//   ICSIM_FAULTS="ber=1e-7; link s1.0-2.0 down@50us:150us; link n3 ber=1e-5;
//                 stall 2@20us+5us; watchdog=10ms"

#include <cstdint>
#include <string>
#include <vector>

#include "net/topology.hpp"
#include "sim/time.hpp"

namespace icsim::fault {

/// An undirected link of the fat tree: either the endpoint cable of one
/// node, or the cable between two adjacent switches.
struct LinkRef {
  enum class Kind { node, switch_pair };
  Kind kind = Kind::node;
  int node = -1;               ///< Kind::node
  net::SwitchCoord a{}, b{};   ///< Kind::switch_pair (order irrelevant)

  [[nodiscard]] static LinkRef endpoint(int node) {
    LinkRef l;
    l.kind = Kind::node;
    l.node = node;
    return l;
  }
  [[nodiscard]] static LinkRef between(net::SwitchCoord a, net::SwitchCoord b) {
    LinkRef l;
    l.kind = Kind::switch_pair;
    l.a = a;
    l.b = b;
    return l;
  }
  /// Does a directed hop traverse this (undirected) link?
  [[nodiscard]] bool covers(const net::Hop& hop) const;
  [[nodiscard]] std::string to_string() const;
};

/// Link goes down at `down`; comes back at `up`, or stays down forever when
/// `up <= down`.
struct LinkDownWindow {
  LinkRef link;
  sim::Time down = sim::Time::zero();
  sim::Time up = sim::Time::zero();
};

struct LinkBerOverride {
  LinkRef link;
  double ber = 0.0;
};

/// The node's DMA engines and memory bus serve nothing during the window
/// (OS pause, thermal throttle, failing-and-rebooting service processor).
struct NodeStallWindow {
  int node = -1;
  sim::Time start = sim::Time::zero();
  sim::Time duration = sim::Time::zero();
};

struct FaultPlan {
  /// Global per-link bit-error rate: each wire packet of b bits is
  /// independently corrupted with probability 1 - (1-ber)^b.
  double ber = 0.0;
  std::vector<LinkBerOverride> link_ber;
  std::vector<LinkDownWindow> link_windows;
  std::vector<NodeStallWindow> stalls;
  /// Seed for the corruption draws; 0 means "derive from the cluster seed".
  std::uint64_t seed = 0;
  /// When nonzero, core::Cluster arms both transports' watchdog timeouts
  /// with this budget so a lost-and-never-retried message surfaces as a
  /// counted error instead of a stuck fiber.
  sim::Time watchdog = sim::Time::zero();

  /// True when installing this plan would change nothing.
  [[nodiscard]] bool empty() const {
    return ber == 0.0 && link_ber.empty() && link_windows.empty() &&
           stalls.empty() && watchdog == sim::Time::zero();
  }

  /// Parse the ICSIM_FAULTS grammar above; throws std::invalid_argument
  /// with a position hint on malformed input.
  [[nodiscard]] static FaultPlan parse(const std::string& spec);
};

}  // namespace icsim::fault
