#include "fault/plan.hpp"

#include <cctype>
#include <cstdlib>
#include <sstream>
#include <stdexcept>

namespace icsim::fault {

namespace {

[[noreturn]] void bad(const std::string& what, const std::string& where) {
  throw std::invalid_argument("FaultPlan::parse: " + what + " in '" + where +
                              "'");
}

std::vector<std::string> split(const std::string& s, char sep) {
  std::vector<std::string> out;
  std::string cur;
  for (const char c : s) {
    if (c == sep) {
      out.push_back(cur);
      cur.clear();
    } else {
      cur += c;
    }
  }
  out.push_back(cur);
  return out;
}

std::vector<std::string> tokens_of(const std::string& clause) {
  std::vector<std::string> out;
  std::istringstream in(clause);
  std::string tok;
  while (in >> tok) out.push_back(tok);
  return out;
}

double parse_real(const std::string& tok) {
  std::size_t pos = 0;
  double v = 0.0;
  try {
    v = std::stod(tok, &pos);
  } catch (const std::exception&) {
    bad("expected a number", tok);
  }
  if (pos != tok.size()) bad("trailing characters after number", tok);
  return v;
}

std::uint64_t parse_u64(const std::string& tok) {
  std::size_t pos = 0;
  std::uint64_t v = 0;
  try {
    v = std::stoull(tok, &pos);
  } catch (const std::exception&) {
    bad("expected an integer", tok);
  }
  if (pos != tok.size()) bad("trailing characters after integer", tok);
  return v;
}

int parse_int(const std::string& tok) {
  return static_cast<int>(parse_u64(tok));
}

[[nodiscard]] sim::Time parse_time(const std::string& tok) {
  std::size_t pos = 0;
  double v = 0.0;
  try {
    v = std::stod(tok, &pos);
  } catch (const std::exception&) {
    bad("expected a time like 50us", tok);
  }
  const std::string unit = tok.substr(pos);
  if (unit == "ns") return sim::Time::ns(v);
  if (unit == "us") return sim::Time::us(v);
  if (unit == "ms") return sim::Time::ms(v);
  if (unit == "s") return sim::Time::sec(v);
  bad("unknown time unit (want ns/us/ms/s)", tok);
}

/// LINK := nNODE | sL.W-L.W
LinkRef parse_link(const std::string& tok) {
  if (tok.size() < 2) bad("link too short", tok);
  if (tok[0] == 'n') return LinkRef::endpoint(parse_int(tok.substr(1)));
  if (tok[0] != 's') bad("link must start with 'n' or 's'", tok);
  const auto sides = split(tok.substr(1), '-');
  if (sides.size() != 2) bad("switch link needs exactly one '-'", tok);
  net::SwitchCoord coord[2];
  for (int i = 0; i < 2; ++i) {
    const auto parts = split(sides[static_cast<std::size_t>(i)], '.');
    if (parts.size() != 2) bad("switch coordinate must be LEVEL.WORD", tok);
    coord[i].level = parse_int(parts[0]);
    coord[i].word = static_cast<std::uint32_t>(parse_u64(parts[1]));
  }
  return LinkRef::between(coord[0], coord[1]);
}

}  // namespace

bool LinkRef::covers(const net::Hop& hop) const {
  switch (hop.kind) {
    case net::Hop::Kind::node_to_switch:
    case net::Hop::Kind::switch_to_node:
      return kind == Kind::node && hop.node == node;
    case net::Hop::Kind::switch_to_switch:
      return kind == Kind::switch_pair &&
             ((hop.from == a && hop.to == b) || (hop.from == b && hop.to == a));
  }
  return false;
}

std::string LinkRef::to_string() const {
  if (kind == Kind::node) return "n" + std::to_string(node);
  return "s" + std::to_string(a.level) + "." + std::to_string(a.word) + "-" +
         std::to_string(b.level) + "." + std::to_string(b.word);
}

FaultPlan FaultPlan::parse(const std::string& spec) {
  FaultPlan plan;
  for (const std::string& clause : split(spec, ';')) {
    const auto toks = tokens_of(clause);
    if (toks.empty()) continue;  // tolerate empty / trailing clauses
    const std::string& head = toks[0];

    if (head.rfind("ber=", 0) == 0 && toks.size() == 1) {
      plan.ber = parse_real(head.substr(4));
      if (plan.ber < 0.0 || plan.ber >= 1.0) bad("ber must be in [0, 1)", head);
    } else if (head.rfind("seed=", 0) == 0 && toks.size() == 1) {
      plan.seed = parse_u64(head.substr(5));
    } else if (head.rfind("watchdog=", 0) == 0 && toks.size() == 1) {
      plan.watchdog = parse_time(head.substr(9));
    } else if (head == "link") {
      if (toks.size() < 3) bad("link clause needs a LINK and an action", clause);
      const LinkRef link = parse_link(toks[1]);
      for (std::size_t i = 2; i < toks.size(); ++i) {
        const std::string& f = toks[i];
        if (f.rfind("down@", 0) == 0) {
          LinkDownWindow w;
          w.link = link;
          const auto times = split(f.substr(5), ':');
          if (times.size() > 2) bad("down@ takes at most T1:T2", f);
          w.down = parse_time(times[0]);
          if (times.size() == 2) {
            w.up = parse_time(times[1]);
            if (w.up <= w.down) bad("up time must follow down time", f);
          }
          plan.link_windows.push_back(w);
        } else if (f.rfind("ber=", 0) == 0) {
          LinkBerOverride o;
          o.link = link;
          o.ber = parse_real(f.substr(4));
          if (o.ber < 0.0 || o.ber >= 1.0) bad("ber must be in [0, 1)", f);
          plan.link_ber.push_back(o);
        } else {
          bad("unknown link field (want down@T[:T] or ber=R)", f);
        }
      }
    } else if (head == "stall") {
      if (toks.size() != 2) bad("stall clause is 'stall NODE@T1+DUR'", clause);
      const auto at = split(toks[1], '@');
      if (at.size() != 2) bad("stall needs NODE@T1+DUR", toks[1]);
      const auto dur = split(at[1], '+');
      if (dur.size() != 2) bad("stall needs T1+DUR", toks[1]);
      NodeStallWindow w;
      w.node = parse_int(at[0]);
      w.start = parse_time(dur[0]);
      w.duration = parse_time(dur[1]);
      if (w.duration <= sim::Time::zero()) bad("stall duration must be > 0", toks[1]);
      plan.stalls.push_back(w);
    } else {
      bad("unknown clause", clause);
    }
  }
  return plan;
}

}  // namespace icsim::fault
