#pragma once
// FaultInjector: makes a FaultPlan happen to one fabric.
//
// The injector has two roles.  As the fabric's net::FaultHooks it answers
// per-hop BER queries and performs the deterministic corruption draws (one
// mt19937_64 stream seeded from the plan, independent of every application
// stream — a fault-free plan draws nothing, keeping runs bit-identical to a
// fabric without an injector).  As a scheduler it posts the plan's link
// down/up transitions and node stall windows onto the engine at install
// time, flipping fabric link state and freezing node resources when the
// simulation clock reaches them.

#include <cstdint>
#include <vector>

#include "fault/plan.hpp"
#include "net/fabric.hpp"
#include "node/node.hpp"
#include "sim/engine.hpp"
#include "sim/rng.hpp"

namespace icsim::fault {

class FaultInjector final : public net::FaultHooks {
 public:
  /// `fallback_seed` (typically the cluster seed) seeds the corruption
  /// stream when the plan does not pin its own seed.
  FaultInjector(sim::Engine& engine, FaultPlan plan,
                std::uint64_t fallback_seed);

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  /// Hook into `fabric` and schedule the plan's link down/up transitions.
  /// Validates every LinkRef against the fabric's topology and throws
  /// std::invalid_argument on out-of-range nodes or non-adjacent switches.
  /// The injector must outlive the fabric's use of it.
  void install(net::Fabric& fabric);

  /// Schedule the plan's node stall windows (`nodes` indexed by node id).
  void install_node_stalls(const std::vector<node::Node*>& nodes);

  [[nodiscard]] const FaultPlan& plan() const { return plan_; }

  // net::FaultHooks
  [[nodiscard]] double link_ber(const net::Hop& hop) const override;
  bool draw_corruption(double ber, std::uint64_t wire_bytes) override;

  [[nodiscard]] std::uint64_t link_down_events() const { return downs_; }
  [[nodiscard]] std::uint64_t link_up_events() const { return ups_; }
  [[nodiscard]] std::uint64_t node_stalls() const { return stalls_; }
  [[nodiscard]] std::uint64_t corruption_draws() const { return draws_; }

  void publish_metrics(trace::MetricsRegistry& m) const;

 private:
  void set_link_state(net::Fabric& fabric, const LinkRef& link, bool up);

  sim::Engine& engine_;
  FaultPlan plan_;
  sim::Rng rng_;
  std::uint64_t downs_ = 0;
  std::uint64_t ups_ = 0;
  std::uint64_t stalls_ = 0;
  std::uint64_t draws_ = 0;
  std::uint32_t trace_id_ = 0;
};

}  // namespace icsim::fault
