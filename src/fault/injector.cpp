#include "fault/injector.hpp"

#include <cmath>
#include <stdexcept>

#include "trace/trace.hpp"

namespace icsim::fault {

FaultInjector::FaultInjector(sim::Engine& engine, FaultPlan plan,
                             std::uint64_t fallback_seed)
    : engine_(engine),
      plan_(std::move(plan)),
      rng_(plan_.seed != 0 ? plan_.seed : fallback_seed) {}

double FaultInjector::link_ber(const net::Hop& hop) const {
  for (const LinkBerOverride& o : plan_.link_ber) {
    if (o.link.covers(hop)) return o.ber;
  }
  return plan_.ber;
}

bool FaultInjector::draw_corruption(double ber, std::uint64_t wire_bytes) {
  ++draws_;
  // P(any of b bits flips) = 1 - (1-ber)^b, computed without cancellation.
  const double bits = static_cast<double>(wire_bytes) * 8.0;
  const double p = -std::expm1(bits * std::log1p(-ber));
  return rng_.uniform_real() < p;
}

void FaultInjector::set_link_state(net::Fabric& fabric, const LinkRef& link,
                                   bool up) {
  if (link.kind == LinkRef::Kind::node) {
    fabric.set_node_link_state(link.node, up);
  } else {
    fabric.set_switch_link_state(link.a, link.b, up);
  }
}

void FaultInjector::install(net::Fabric& fabric) {
  const net::FatTreeTopology& topo = fabric.topology();
  const auto validate = [&](const LinkRef& link) {
    if (link.kind == LinkRef::Kind::node) {
      if (link.node < 0 || link.node >= fabric.num_nodes()) {
        throw std::invalid_argument("FaultPlan: link " + link.to_string() +
                                    " names a node outside the fabric");
      }
    } else if (!topo.adjacent(link.a, link.b)) {
      throw std::invalid_argument("FaultPlan: link " + link.to_string() +
                                  " is not a cable of this fat tree");
    }
  };
  for (const LinkBerOverride& o : plan_.link_ber) validate(o.link);
  for (const LinkDownWindow& w : plan_.link_windows) validate(w.link);

  if (plan_.ber > 0.0 || !plan_.link_ber.empty()) {
    fabric.set_fault_hooks(this);
  }

  for (const LinkDownWindow& w : plan_.link_windows) {
    // Pointer init-captures: a post_at closure outlives this frame, so it
    // must not alias the `fabric` reference slot (closure-lifetime rule).
    // The fabric itself is owned by the cluster and outlives the run.
    engine_.post_at(w.down, [this, fab = &fabric, link = w.link] {
      set_link_state(*fab, link, /*up=*/false);
      ++downs_;
      ICSIM_TRACE_WITH(engine_, tr) {
        if (trace_id_ == 0) {
          trace_id_ = tr.register_component(trace::Category::fault, "injector");
        }
        tr.instant(trace::Category::fault, trace_id_, "link_down",
                   engine_.now());
      }
    });
    if (w.up > w.down) {
      engine_.post_at(w.up, [this, fab = &fabric, link = w.link] {
        set_link_state(*fab, link, /*up=*/true);
        ++ups_;
        ICSIM_TRACE_WITH(engine_, tr) {
          if (trace_id_ == 0) {
            trace_id_ =
                tr.register_component(trace::Category::fault, "injector");
          }
          tr.instant(trace::Category::fault, trace_id_, "link_up",
                     engine_.now());
        }
      });
    }
  }
}

void FaultInjector::install_node_stalls(
    const std::vector<node::Node*>& nodes) {
  for (const NodeStallWindow& w : plan_.stalls) {
    if (w.node < 0 || static_cast<std::size_t>(w.node) >= nodes.size()) {
      throw std::invalid_argument("FaultPlan: stall names node " +
                                  std::to_string(w.node) +
                                  " outside the cluster");
    }
    node::Node* node = nodes[static_cast<std::size_t>(w.node)];
    engine_.post_at(w.start, [this, node, d = w.duration] {
      node->stall(d);
      ++stalls_;
      ICSIM_TRACE_WITH(engine_, tr) {
        if (trace_id_ == 0) {
          trace_id_ = tr.register_component(trace::Category::fault, "injector");
        }
        tr.span(trace::Category::fault, trace_id_, "node_stall",
                engine_.now(),
                engine_.now() + d);
      }
    });
  }
}

void FaultInjector::publish_metrics(trace::MetricsRegistry& m) const {
  m.counter("fault.link_down_events") = downs_;
  m.counter("fault.link_up_events") = ups_;
  m.counter("fault.node_stalls") = stalls_;
  m.counter("fault.corruption_draws") = draws_;
}

}  // namespace icsim::fault
