#pragma once
// 4X InfiniBand host channel adapter model.
//
// The HCA exposes the one operation the MVAPICH-style transport is built
// on: RDMA write with remote delivery notification by memory visibility
// (no remote CPU involvement).  Timing pipeline of one write:
//
//   [HCA processor: WQE fetch/execute]            (shared by both ranks)
//   -> per-chunk DMA read from host memory        (shared PCI-X)
//   -> per-chunk fabric traversal                 (links + switches)
//   -> per-chunk DMA write into remote host memory (remote PCI-X)
//   -> delivery handler runs when the last byte is visible
//
// Local completion (send buffer reusable) fires after the last chunk has
// left host memory plus CQE processing.  Same-node peers use HCA loopback —
// MVAPICH 0.9.2 had no shared-memory channel, so 2-PPN on-node traffic
// really did cross PCI-X twice; this is one of the 2-PPN effects the paper
// observes.

#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "ib/config.hpp"
#include "ib/reg_cache.hpp"
#include "net/fabric.hpp"
#include "node/node.hpp"
#include "sim/engine.hpp"
#include "sim/resource.hpp"

namespace icsim::ib {

/// What the receiving endpoint sees once an RDMA write has fully landed.
struct Delivery {
  int src_ep = -1;   ///< sending endpoint (global rank)
  int dst_ep = -1;   ///< receiving endpoint (global rank)
  std::uint64_t bytes = 0;
  std::shared_ptr<void> cargo;  ///< transport-defined message record
};

class Hca {
 public:
  using Handler = std::function<void(const Delivery&)>;

  /// `fabric` may be null for single-node (loopback-only) setups.
  Hca(sim::Engine& engine, node::Node& host, net::Fabric* fabric,
      const HcaConfig& config);

  /// Register the delivery handler for a local endpoint (rank).
  void attach(int endpoint, Handler handler);

  /// Register the transport-error handler for a local *sending* endpoint:
  /// fires when a write burns through the whole RC retry budget (the real
  /// HCA would move the QP to the error state and complete the WQE with a
  /// retry-exceeded status).  Optional; without one, exhaustion is only
  /// counted.
  void attach_error(int endpoint, Handler handler);

  /// Establish the reliable connection to a remote endpoint.  Returns the
  /// host time the connection setup costs (charged by the transport during
  /// init).  Calling rdma_write without connecting first throws.
  [[nodiscard]] sim::Time connect(int local_ep, const Hca* remote_hca,
                                  int remote_ep);

  /// Post an RDMA write of `bytes` from `src_ep` to `dst_ep` on `dst`.
  /// `on_local_complete` fires when the send buffer is reusable.
  /// The remote endpoint's handler fires when the last byte is visible in
  /// remote host memory.
  void rdma_write(int src_ep, Hca& dst, int dst_ep, std::uint64_t bytes,
                  std::shared_ptr<void> cargo,
                  std::function<void()> on_local_complete);

  [[nodiscard]] RegistrationCache& reg_cache() { return reg_cache_; }
  [[nodiscard]] node::Node& host() { return host_; }
  [[nodiscard]] const HcaConfig& config() const { return cfg_; }
  [[nodiscard]] std::uint64_t writes_posted() const { return writes_; }
  [[nodiscard]] sim::FifoResource& processor() { return processor_; }

  /// Chunks retransmitted after an RC transport timeout.
  [[nodiscard]] std::uint64_t rc_retries() const { return rc_retries_; }
  /// Bytes carried by those retransmissions.
  [[nodiscard]] std::uint64_t retransmitted_bytes() const {
    return retransmitted_bytes_;
  }
  /// Writes that exhausted the retry budget (QP would enter error state).
  [[nodiscard]] std::uint64_t rc_retry_exhausted() const {
    return rc_exhausted_;
  }

 private:
  struct InFlight {
    Delivery delivery;
    std::uint64_t remaining_chunks = 0;
    Hca* src = nullptr;
    Hca* dst = nullptr;
    sim::Time t_post;  ///< doorbell time, for the posted->visible trace span
  };

  /// Lazily registered trace component ("hca<node>").
  std::uint32_t trace_component();

  void start_dma_chain(const std::shared_ptr<InFlight>& msg, std::uint64_t bytes,
                       std::function<void()> on_local_complete);
  void send_chunk_to_wire(const std::shared_ptr<InFlight>& msg,
                          std::uint32_t chunk_bytes, int attempt);
  void retry_chunk(const std::shared_ptr<InFlight>& msg,
                   std::uint32_t chunk_bytes, int attempt);
  void chunk_arrived_at_dst(const std::shared_ptr<InFlight>& msg,
                            std::uint32_t chunk_bytes);

  sim::Engine& engine_;
  node::Node& host_;
  net::Fabric* fabric_;
  HcaConfig cfg_;
  sim::FifoResource processor_;
  RegistrationCache reg_cache_;
  std::unordered_map<int, Handler> handlers_;
  std::unordered_map<int, Handler> error_handlers_;
  std::unordered_map<std::uint64_t, bool> qp_up_;
  std::uint64_t writes_ = 0;
  std::uint64_t rc_retries_ = 0;
  std::uint64_t retransmitted_bytes_ = 0;
  std::uint64_t rc_exhausted_ = 0;
  std::uint32_t trace_id_ = 0;
};

}  // namespace icsim::ib
