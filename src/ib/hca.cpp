#include "ib/hca.hpp"

#include <cassert>
#include <cmath>
#include <stdexcept>
#include <string>
#include <utility>

#include "sim/check.hpp"
#include "trace/trace.hpp"

namespace icsim::ib {

namespace {
std::uint64_t qp_key(int local_ep, int remote_ep) {
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(local_ep)) << 32) |
         static_cast<std::uint32_t>(remote_ep);
}
}  // namespace

Hca::Hca(sim::Engine& engine, node::Node& host, net::Fabric* fabric,
         const HcaConfig& config)
    : engine_(engine),
      host_(host),
      fabric_(fabric),
      cfg_(config),
      processor_(engine, "hca-proc"),
      reg_cache_(config.reg_cache_capacity, config.page_bytes,
                 config.reg_base_cost, config.reg_per_page,
                 config.dereg_base_cost, config.dereg_per_page) {}

void Hca::attach(int endpoint, Handler handler) {
  handlers_[endpoint] = std::move(handler);
}

void Hca::attach_error(int endpoint, Handler handler) {
  error_handlers_[endpoint] = std::move(handler);
}

sim::Time Hca::connect(int local_ep, const Hca* remote_hca, int remote_ep) {
  (void)remote_hca;
  qp_up_[qp_key(local_ep, remote_ep)] = true;
  return cfg_.qp_connect_cost;
}

void Hca::rdma_write(int src_ep, Hca& dst, int dst_ep, std::uint64_t bytes,
                     std::shared_ptr<void> cargo,
                     std::function<void()> on_local_complete) {
  if (!qp_up_.count(qp_key(src_ep, dst_ep))) {
    throw std::logic_error("Hca::rdma_write: queue pair not connected");
  }
  ++writes_;
  auto msg = std::make_shared<InFlight>();
  msg->delivery = Delivery{src_ep, dst_ep, bytes, std::move(cargo)};
  msg->src = this;
  msg->dst = &dst;
  msg->t_post = engine_.now();
  msg->remaining_chunks =
      bytes == 0 ? 1 : (bytes + cfg_.chunk_bytes - 1) / cfg_.chunk_bytes;

  // WQE fetch/execute on the HCA processor, then the DMA pipeline.
  processor_.acquire(cfg_.send_wqe_cost,
                     [this, msg, bytes,
                      cb = std::move(on_local_complete)]() mutable {
                       start_dma_chain(msg, bytes, std::move(cb));
                     });
}

void Hca::start_dma_chain(const std::shared_ptr<InFlight>& msg,
                          std::uint64_t bytes,
                          std::function<void()> on_local_complete) {
  const std::uint64_t nchunks = msg->remaining_chunks;
  std::uint64_t remaining = bytes;
  for (std::uint64_t i = 0; i < nchunks; ++i) {
    const auto chunk = static_cast<std::uint32_t>(
        remaining > cfg_.chunk_bytes ? cfg_.chunk_bytes
                                     : (nchunks == 1 && bytes == 0 ? 0 : remaining));
    remaining -= chunk;
    const bool last = (i + 1 == nchunks);

    // DMA the chunk out of host memory, then hand it to the wire.
    host_.dma(chunk, [this, msg, chunk, last,
                      cb = last ? std::move(on_local_complete)
                                : std::function<void()>{}]() mutable {
      send_chunk_to_wire(msg, chunk, /*attempt=*/0);
      if (last && cb) {
        // Send buffer is reusable once the last byte left host memory;
        // completion surfaces after CQE processing on the HCA.  (A lossy
        // fabric may still be retransmitting from the HCA's retry state at
        // this point; we do not model the extra buffer hold.)
        ICSIM_TRACE_WITH(engine_, tr) {
          tr.span(trace::Category::hca, trace_component(), "dma_out",
                  msg->t_post, engine_.now());
        }
        processor_.acquire(cfg_.send_cqe_cost, std::move(cb));
      }
    });
  }
}

void Hca::send_chunk_to_wire(const std::shared_ptr<InFlight>& msg,
                             std::uint32_t chunk_bytes, int attempt) {
  Hca& dst = *msg->dst;
  if (&dst == this) {
    // Loopback: HCA turns the data around; it re-crosses PCI-X on the
    // way back into host memory.  Never touches the fabric, never fails.
    engine_.post_in(cfg_.loopback_latency, [this, msg, chunk_bytes] {
      chunk_arrived_at_dst(msg, chunk_bytes);
    });
    return;
  }
  fabric_->inject(host_.id(), dst.host_.id(), chunk_bytes,
                  [this, msg, chunk_bytes, attempt](net::DeliveryStatus st) {
                    if (st == net::DeliveryStatus::delivered) {
                      msg->dst->chunk_arrived_at_dst(msg, chunk_bytes);
                    } else {
                      retry_chunk(msg, chunk_bytes, attempt);
                    }
                  });
}

void Hca::retry_chunk(const std::shared_ptr<InFlight>& msg,
                      std::uint32_t chunk_bytes, int attempt) {
  // The requester never hears an ACK for the dropped packets; its transport
  // timer expires and it retransmits the chunk, backing off exponentially.
  if (attempt >= cfg_.rc_retry_limit) {
    ++rc_exhausted_;
    ICSIM_TRACE_WITH(engine_, tr) {
      tr.instant(trace::Category::hca, trace_component(), "rc_retry_exhausted",
                 engine_.now());
    }
    auto it = error_handlers_.find(msg->delivery.src_ep);
    if (it != error_handlers_.end()) it->second(msg->delivery);
    return;
  }
  ++rc_retries_;
  retransmitted_bytes_ += chunk_bytes;
  const sim::Time wait = cfg_.rc_timeout * std::pow(cfg_.rc_backoff, attempt);
  ICSIM_TRACE_WITH(engine_, tr) {
    tr.instant(trace::Category::hca, trace_component(), "rc_retry",
               engine_.now(), static_cast<double>(attempt + 1));
  }
  engine_.post_in(wait, [this, msg, chunk_bytes, attempt] {
    // Retransmission re-reads the chunk from host memory over PCI-X.
    host_.dma(chunk_bytes, [this, msg, chunk_bytes, attempt] {
      send_chunk_to_wire(msg, chunk_bytes, attempt + 1);
    });
  });
}

void Hca::chunk_arrived_at_dst(const std::shared_ptr<InFlight>& msg,
                               std::uint32_t chunk_bytes) {
  // This runs on the destination HCA: DMA the chunk into host memory.
  Hca& self = *msg->dst;
  self.host_.dma(chunk_bytes, [msg, &self] {
    assert(msg->remaining_chunks > 0);
    ICSIM_CHECK(msg->remaining_chunks > 0,
                "HCA write completed with more chunks than were posted");
    if (--msg->remaining_chunks == 0) {
      // Doorbell -> last byte visible in remote host memory, on the source
      // HCA's track: the full one-sided write pipeline.
      ICSIM_TRACE_WITH(self.engine_, tr) {
        tr.span(trace::Category::hca, msg->src->trace_component(),
                "rdma_write", msg->t_post,
                self.engine_.now());
      }
      auto it = self.handlers_.find(msg->delivery.dst_ep);
      if (it == self.handlers_.end()) {
        throw std::logic_error("Hca: delivery to unattached endpoint");
      }
      it->second(msg->delivery);
    }
  });
}

std::uint32_t Hca::trace_component() {
  if (trace_id_ == 0) {
    trace_id_ = engine_.tracer().register_component(
        trace::Category::hca, "hca" + std::to_string(host_.id()));
  }
  return trace_id_;
}

}  // namespace icsim::ib
