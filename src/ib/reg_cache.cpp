#include "ib/reg_cache.hpp"

#include "sim/check.hpp"

namespace icsim::ib {

sim::Time RegistrationCache::acquire(std::uint64_t buffer, std::uint64_t len) {
  const Key key{buffer, len};
  if (auto it = map_.find(key); it != map_.end()) {
    ++stats_.hits;
    lru_.splice(lru_.begin(), lru_, it->second);  // refresh recency
    return sim::Time::zero();
  }

  ++stats_.misses;
  sim::Time cost = reg_time(len);

  if (len >= capacity_) {
    // Cannot be cached at all: register now, deregister when done.
    cost += dereg_time(len);
    ++stats_.evictions;
    return cost;
  }

  while (stats_.registered_bytes + len > capacity_ && !lru_.empty()) {
    const Key victim = lru_.back();
    lru_.pop_back();
    map_.erase(victim);
    ICSIM_CHECK(stats_.registered_bytes >= victim.len,
                "reg cache pinned-byte accounting would go negative");
    stats_.registered_bytes -= victim.len;
    ++stats_.evictions;
    cost += dereg_time(victim.len);
  }

  lru_.push_front(key);
  map_.emplace(key, lru_.begin());
  stats_.registered_bytes += len;
  ICSIM_CHECK(stats_.registered_bytes <= capacity_,
              "reg cache pinned bytes exceed the pin-down budget");
  return cost;
}

}  // namespace icsim::ib
