#pragma once
// Memory-registration cache (pin-down cache).
//
// InfiniBand requires every buffer involved in RDMA to be registered
// (pinned and entered into the HCA's translation table); MVAPICH caches
// registrations keyed by (address, length) and evicts least-recently-used
// regions when the pinning budget is exceeded.  Section 3.3.2 of the paper
// discusses this cost, and the Figure 1(b) bandwidth collapse at 4 MB is
// registration thrash — reproduced here by the capacity bound.
//
// The simulated cache keys on a caller-supplied *logical buffer id* plus
// the length, never on host pointers: keying by the address of a simulated
// app's scratch vector would make hit/miss behaviour — and therefore
// simulated time — depend on ASLR and on what the host allocator happened
// to hand back, which breaks run-to-run and thread-count determinism.

#include <cstdint>
#include <list>
#include <unordered_map>

#include "sim/check.hpp"
#include "sim/time.hpp"

namespace icsim::ib {

/// Deterministic stand-in for the identity of the application buffer behind
/// a rendezvous transfer.  Codes of this era keep one persistent buffer per
/// logical exchange, so a transfer's envelope — direction, peer, tag,
/// context — identifies the region it would pin; recurring envelopes model
/// repeated pinning of the same buffer.
[[nodiscard]] constexpr std::uint64_t logical_buffer(bool send_side, int peer,
                                                     int tag, int context) {
  sim::check::Fnv1a f;
  f.fold(send_side ? 1u : 2u);
  f.fold(static_cast<std::uint32_t>(peer));
  f.fold(static_cast<std::uint32_t>(tag));
  f.fold(static_cast<std::uint32_t>(context));
  return f.value();
}

struct RegCacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  std::uint64_t registered_bytes = 0;  ///< currently pinned
};

class RegistrationCache {
 public:
  RegistrationCache(std::uint64_t capacity_bytes, std::uint32_t page_bytes,
                    sim::Time reg_base, sim::Time reg_per_page,
                    sim::Time dereg_base, sim::Time dereg_per_page)
      : capacity_(capacity_bytes),
        page_(page_bytes),
        reg_base_(reg_base),
        reg_per_page_(reg_per_page),
        dereg_base_(dereg_base),
        dereg_per_page_(dereg_per_page) {}

  /// Ensure the `len`-byte region identified by `buffer` (see
  /// logical_buffer above) is registered.  Returns the host time this costs
  /// now: zero on a cache hit, registration (plus any evictions needed to
  /// fit) on a miss.  Regions larger than the whole capacity register and
  /// immediately deregister every time — maximal thrash.
  [[nodiscard]] sim::Time acquire(std::uint64_t buffer, std::uint64_t len);

  /// Pin memory permanently outside the cache budget accounting (used for
  /// the preregistered eager rings at init).  Returns the registration time.
  [[nodiscard]] sim::Time pin_permanent(std::uint64_t len) const {
    return reg_base_ + reg_per_page_ * static_cast<std::int64_t>(pages(len));
  }

  [[nodiscard]] const RegCacheStats& stats() const { return stats_; }
  [[nodiscard]] std::uint64_t capacity() const { return capacity_; }

 private:
  struct Key {
    std::uint64_t buffer;
    std::uint64_t len;
    bool operator==(const Key&) const = default;
  };
  struct KeyHash {
    std::size_t operator()(const Key& k) const {
      return std::hash<std::uint64_t>{}(k.buffer) ^
             (std::hash<std::uint64_t>{}(k.len) << 1);
    }
  };

  [[nodiscard]] std::uint64_t pages(std::uint64_t len) const {
    return (len + page_ - 1) / page_;
  }
  [[nodiscard]] sim::Time reg_time(std::uint64_t len) const {
    return reg_base_ + reg_per_page_ * static_cast<std::int64_t>(pages(len));
  }
  [[nodiscard]] sim::Time dereg_time(std::uint64_t len) const {
    return dereg_base_ + dereg_per_page_ * static_cast<std::int64_t>(pages(len));
  }

  std::uint64_t capacity_;
  std::uint32_t page_;
  sim::Time reg_base_, reg_per_page_, dereg_base_, dereg_per_page_;

  std::list<Key> lru_;  // front = most recent
  std::unordered_map<Key, std::list<Key>::iterator, KeyHash> map_;
  RegCacheStats stats_;
};

}  // namespace icsim::ib
