#pragma once
// 4X InfiniBand HCA model parameters.
//
// Defaults are calibrated to the study's hardware: a Voltaire HCA 400 (a
// Mellanox InfiniHost derivative) on 133 MHz PCI-X, MVAPICH 0.9.2 era.
// Sources for the magnitudes: the paper's Section 4.1 numbers and Liu et
// al., "Performance comparison of MPI implementations over InfiniBand,
// Myrinet and Quadrics" (SC'03) / IEEE Micro 24(1), which measured the same
// generation of parts.  See core/calibration.hpp for the anchor table.

#include <cstdint>

#include "sim/time.hpp"

namespace icsim::ib {

struct HcaConfig {
  /// InfiniBand wire MTU (payload per packet).
  std::uint32_t mtu_bytes = 2048;
  /// Granularity at which the simulator moves a message through the DMA and
  /// fabric pipeline (coarser than the MTU to bound event counts; header
  /// overhead is still charged per MTU packet by the fabric).
  std::uint32_t chunk_bytes = 4096;

  /// HCA processor time to fetch and execute one send WQE.  This is also
  /// the InfiniHost-era message-rate bottleneck that the streaming
  /// benchmark exposes (Figure 1(c): >5x in Elan's favour at small sizes).
  sim::Time send_wqe_cost = sim::Time::us(1.8);
  /// HCA time to retire a send completion into the CQ.
  sim::Time send_cqe_cost = sim::Time::us(0.25);
  /// Latency for an HCA-internal loopback hop (same-node peers; MVAPICH
  /// 0.9.2 had no shared-memory channel, so on-node traffic crossed PCI-X).
  sim::Time loopback_latency = sim::Time::us(0.6);

  /// Memory registration: kernel pin + HCA TPT update.  The base covers the
  /// syscall; the per-page term covers get_user_pages on the 2.4-era kernel.
  sim::Time reg_base_cost = sim::Time::us(25.0);
  sim::Time reg_per_page = sim::Time::us(1.0);
  sim::Time dereg_base_cost = sim::Time::us(15.0);
  sim::Time dereg_per_page = sim::Time::us(0.55);
  std::uint32_t page_bytes = 4096;
  /// Pinning budget of the registration cache.  A 4 MB ping-pong needs
  /// ~8 MB of registered application buffers plus the preregistered eager
  /// rings, which overflows this and thrashes — the Figure 1(b) dip.
  std::uint64_t reg_cache_capacity = 7ull << 20;

  /// One-time cost to bring up a reliable-connection queue pair.
  sim::Time qp_connect_cost = sim::Time::us(80.0);

  /// Reliable-connection recovery.  A packet train dropped by a link-level
  /// CRC check (or swallowed by a dead link) is detected by the requester's
  /// transport timer and retransmitted: attempt n waits
  /// rc_timeout * rc_backoff^n, and after rc_retry_limit retransmissions the
  /// QP errors out (surfaced via attach_error).  Magnitudes follow the IBTA
  /// Local Ack Timeout / Retry Count model at 2004-era firmware defaults.
  sim::Time rc_timeout = sim::Time::us(20.0);
  double rc_backoff = 2.0;
  int rc_retry_limit = 7;
};

}  // namespace icsim::ib
