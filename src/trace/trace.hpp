#pragma once
// Instrumentation helpers for model code.
//
// Every macro is gated on the engine's tracer being enabled, so a disabled
// run pays exactly one well-predicted branch per site; defining
// ICSIM_TRACE_DISABLE at compile time removes even that.  Times are
// sim::Time end to end; the tracer converts to raw picoseconds only inside
// the serialized Event record.
//
// Usage pattern (component ids are lazily self-registered):
//
//   std::uint32_t trace_id_ = 0;   // member of the instrumented class
//   ...
//   ICSIM_TRACE_WITH(engine_, tr) {
//     if (trace_id_ == 0)
//       trace_id_ = tr.register_component(trace::Category::hca, "hca3");
//     tr.span(trace::Category::hca, trace_id_, "rdma_write", t0, t1);
//   }

#include "sim/engine.hpp"
#include "trace/tracer.hpp"

#ifdef ICSIM_TRACE_DISABLE
#define ICSIM_TRACE_WITH(engine, tr) \
  if constexpr (false)               \
    for (auto& tr = (engine).tracer(); false;)
#else
/// Open a block that runs only while tracing is enabled, with `tr` bound to
/// the engine's tracer:  ICSIM_TRACE_WITH(engine_, tr) { tr.instant(...); }
#define ICSIM_TRACE_WITH(engine, tr)                             \
  if (auto& tr = (engine).tracer(); !tr.enabled()) { /* skip */  \
  } else
#endif

/// One-line helpers for the common cases.  `t0`/`t1` are sim::Time.
#define ICSIM_TRACE_SPAN(engine, cat, comp, name, t0, t1)                     \
  ICSIM_TRACE_WITH(engine, icsim_tr_) {                                       \
    icsim_tr_.span((cat), (comp), (name), (t0), (t1));                        \
  }

#define ICSIM_TRACE_INSTANT(engine, cat, comp, name, value)                   \
  ICSIM_TRACE_WITH(engine, icsim_tr_) {                                       \
    icsim_tr_.instant((cat), (comp), (name), (engine).now(), (value));        \
  }

#define ICSIM_TRACE_COUNTER(engine, cat, comp, name, value)                   \
  ICSIM_TRACE_WITH(engine, icsim_tr_) {                                       \
    icsim_tr_.counter((cat), (comp), (name), (engine).now(), (value));        \
  }
