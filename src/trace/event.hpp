#pragma once
// Trace event records.
//
// One fixed-size POD per event so the ring-buffer recorder is a straight
// array store — no allocation, no string copies.  `name` must point at a
// string with static storage duration (literal or interned component name);
// exporters read it long after the instrumented call returned.
//
// Times are raw simulated picoseconds rather than sim::Time so this layer
// has no dependency on the engine (the engine depends on *us*: it owns the
// Tracer).  Exporters convert to the microseconds Chrome/Perfetto expect.

#include <cstdint>

namespace icsim::trace {

/// Which layer of the model emitted the event.  Exporters map each category
/// to one Perfetto "process" so the timeline groups by layer.
enum class Category : std::uint8_t {
  engine,    ///< the discrete-event engine itself
  link,      ///< fabric directed links (per-hop packet spans)
  node,      ///< host resources (memory bus, PCI-X)
  hca,       ///< InfiniBand HCA (doorbell -> completion)
  regcache,  ///< pin-down cache activity
  tports,    ///< Elan-4 NIC thread / STEN events
  mpi,       ///< transport + matcher activity, one track per rank
  app,       ///< application-level phases
  fault,     ///< fault injector activity (link down/up, stalls)
};
inline constexpr int kNumCategories = 9;

[[nodiscard]] constexpr const char* to_string(Category c) {
  switch (c) {
    case Category::engine: return "engine";
    case Category::link: return "net.link";
    case Category::node: return "node";
    case Category::hca: return "ib.hca";
    case Category::regcache: return "ib.regcache";
    case Category::tports: return "elan.tports";
    case Category::mpi: return "mpi";
    case Category::app: return "app";
    case Category::fault: return "fault";
  }
  return "?";
}

struct Event {
  enum class Kind : std::uint8_t {
    span,     ///< complete slice: [t_ps, t_ps + dur_ps) on one component
    instant,  ///< point-in-time marker
    counter,  ///< sampled value of a named series
  };

  Kind kind = Kind::instant;
  Category cat = Category::engine;
  std::uint32_t component = 0;  ///< id from Tracer::register_component
  const char* name = nullptr;   ///< static string
  std::int64_t t_ps = 0;        ///< simulated start time
  std::int64_t dur_ps = 0;      ///< span duration (0 otherwise)
  double value = 0.0;           ///< counter value (0 otherwise)
};

}  // namespace icsim::trace
