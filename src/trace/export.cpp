#include "trace/export.hpp"

#include <cinttypes>
#include <cstdio>
#include <string>

namespace icsim::trace {

namespace {

/// JSON string escaping for names (component names may contain '>' etc.,
/// which are legal, but be safe about quotes/backslashes/control chars).
std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Trace timestamps are microseconds; keep picosecond resolution by
/// printing six decimal places (1 ps = 1e-6 us).
std::string us_of_ps(std::int64_t ps) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%" PRId64 ".%06" PRId64,
                ps / 1'000'000, ps % 1'000'000);
  return buf;
}

int pid_of(Category cat) { return static_cast<int>(cat) + 1; }

}  // namespace

void write_chrome_trace(std::ostream& os, const Tracer& tracer,
                        const std::vector<Event>& events) {
  os << "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[";
  bool first = true;
  const auto emit_comma = [&] {
    if (!first) os << ",";
    first = false;
    os << "\n";
  };

  // Metadata: name the per-category processes and per-component threads.
  bool cat_seen[kNumCategories] = {};
  for (const auto& c : tracer.components()) cat_seen[static_cast<int>(c.cat)] = true;
  for (const auto& e : events) cat_seen[static_cast<int>(e.cat)] = true;
  for (int i = 0; i < kNumCategories; ++i) {
    if (!cat_seen[i]) continue;
    emit_comma();
    os << "{\"ph\":\"M\",\"pid\":" << (i + 1)
       << ",\"tid\":0,\"name\":\"process_name\",\"args\":{\"name\":\""
       << to_string(static_cast<Category>(i)) << "\"}}";
  }
  for (std::size_t i = 0; i < tracer.components().size(); ++i) {
    const Component& c = tracer.components()[i];
    emit_comma();
    os << "{\"ph\":\"M\",\"pid\":" << pid_of(c.cat) << ",\"tid\":" << (i + 1)
       << ",\"name\":\"thread_name\",\"args\":{\"name\":\""
       << json_escape(c.name) << "\"}}";
  }

  for (const auto& e : events) {
    emit_comma();
    const char* name = e.name != nullptr ? e.name : "?";
    os << "{\"pid\":" << pid_of(e.cat) << ",\"tid\":" << e.component
       << ",\"name\":\"" << json_escape(name) << "\",\"cat\":\""
       << to_string(e.cat) << "\",\"ts\":" << us_of_ps(e.t_ps);
    switch (e.kind) {
      case Event::Kind::span:
        os << ",\"ph\":\"X\",\"dur\":" << us_of_ps(e.dur_ps) << "}";
        break;
      case Event::Kind::instant:
        os << ",\"ph\":\"i\",\"s\":\"t\",\"args\":{\"value\":" << e.value
           << "}}";
        break;
      case Event::Kind::counter:
        os << ",\"ph\":\"C\",\"args\":{\"value\":" << e.value << "}}";
        break;
    }
  }
  os << "\n]}\n";
}

void write_counters_csv(std::ostream& os, const Tracer& tracer,
                        const std::vector<Event>& events) {
  os << "t_us,category,component,name,value\n";
  for (const auto& e : events) {
    if (e.kind != Event::Kind::counter) continue;
    const std::string comp =
        e.component >= 1 && e.component <= tracer.components().size()
            ? tracer.components()[e.component - 1].name
            : std::to_string(e.component);
    os << us_of_ps(e.t_ps) << "," << to_string(e.cat) << "," << comp << ","
       << (e.name != nullptr ? e.name : "?") << "," << e.value << "\n";
  }
}

}  // namespace icsim::trace
