#pragma once
// End-of-run aggregate metrics.
//
// A MetricsRegistry holds named counters, RunningStat accumulators and
// Histograms (reusing sim/stats.hpp) and serializes them as one JSON
// object.  Lookup by name is a map walk, so instrumented code should call
// counter()/stat() once and cache the returned reference — references are
// stable for the registry's lifetime (node-based containers).
//
// Unlike trace events, metrics are always collected: they are a handful of
// O(1) accumulators whose cost is invisible next to the event-queue work,
// and they give every run (traced or not) a machine-readable summary.

#include <cstdint>
#include <map>
#include <string>

#include "sim/stats.hpp"  // header-only: RunningStat, Histogram

namespace icsim::trace {

class MetricsRegistry {
 public:
  /// Monotonic counter, created at zero on first use.
  [[nodiscard]] std::uint64_t& counter(const std::string& name) {
    return counters_[name];
  }

  /// Streaming mean/min/max/stddev accumulator, created empty on first use.
  [[nodiscard]] sim::RunningStat& stat(const std::string& name) {
    return stats_[name];
  }

  /// Fixed-bucket histogram; [lo, hi) and bucket count apply only on first
  /// use — later calls with the same name return the existing instance.
  [[nodiscard]] sim::Histogram& histogram(const std::string& name, double lo,
                                          double hi, std::size_t buckets) {
    auto it = histograms_.find(name);
    if (it == histograms_.end()) {
      it = histograms_.emplace(name, sim::Histogram(lo, hi, buckets)).first;
    }
    return it->second;
  }

  [[nodiscard]] const std::map<std::string, std::uint64_t>& counters() const {
    return counters_;
  }
  [[nodiscard]] const std::map<std::string, sim::RunningStat>& stats() const {
    return stats_;
  }

  /// Serialize everything as a JSON object:
  ///   { "counters": {...}, "stats": {name: {count,mean,min,max,stddev,sum}},
  ///     "histograms": {name: {total, p50, p90, p99, buckets: [...]}} }
  [[nodiscard]] std::string to_json() const;

 private:
  std::map<std::string, std::uint64_t> counters_;
  std::map<std::string, sim::RunningStat> stats_;
  std::map<std::string, sim::Histogram> histograms_;
};

}  // namespace icsim::trace
