#pragma once
// Trace exporters.
//
//   * write_chrome_trace — the Chrome/Perfetto "trace event" JSON format
//     (open in https://ui.perfetto.dev or chrome://tracing).  Simulated
//     picoseconds become trace microseconds; each Category becomes a
//     process, each registered component a named thread, so the timeline
//     reads top-down as the layer diagram: mpi -> hca/tports -> links.
//   * write_counters_csv — every counter event as one flat CSV row, for
//     plotting utilization/queue-depth series without a trace viewer.
//
// Both take the event list (a RingBufferSink snapshot) plus the Tracer for
// the component table.

#include <ostream>
#include <vector>

#include "trace/event.hpp"
#include "trace/tracer.hpp"

namespace icsim::trace {

void write_chrome_trace(std::ostream& os, const Tracer& tracer,
                        const std::vector<Event>& events);

void write_counters_csv(std::ostream& os, const Tracer& tracer,
                        const std::vector<Event>& events);

}  // namespace icsim::trace
