#pragma once
// The recording front-end instrumented code talks to.
//
// A Tracer is owned by the sim::Engine, so every model component that holds
// an engine reference can emit events without extra plumbing.  Design rules:
//
//   * disabled is the common case and must cost one predictable branch —
//     all record helpers are inline and gated on `enabled()`;
//   * components name themselves once via register_component() and store
//     the returned id (a small integer, 0 = unregistered);
//   * event recording takes sim::Time (header-only) so this library never
//     links against the engine; timestamps decay to raw picoseconds only
//     inside the serialized Event record.
//
// The MetricsRegistry lives here too: metrics are always on (cheap
// accumulators), trace *events* only flow while a sink is installed.

#include <cstdint>
#include <string>
#include <vector>

#include "sim/time.hpp"
#include "trace/event.hpp"
#include "trace/metrics.hpp"
#include "trace/sink.hpp"

namespace icsim::trace {

/// A named timeline ("thread" in the Chrome trace): one NIC, one directed
/// link, one MPI rank...
struct Component {
  Category cat = Category::engine;
  std::string name;
};

class Tracer {
 public:
  Tracer() = default;
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  [[nodiscard]] bool enabled() const { return sink_ != nullptr; }

  /// Install a sink and start recording.  The sink is borrowed, not owned;
  /// it must outlive the tracer or a later disable() call.
  void enable(TraceSink& sink) { sink_ = &sink; }
  void disable() { sink_ = nullptr; }

  /// Register a timeline and get its id (>= 1; 0 means "not registered").
  /// Components do this lazily on their first event so an untraced run
  /// never builds the table.
  std::uint32_t register_component(Category cat, std::string name) {
    components_.push_back(Component{cat, std::move(name)});
    return static_cast<std::uint32_t>(components_.size());
  }
  [[nodiscard]] const std::vector<Component>& components() const {
    return components_;
  }

  /// Complete slice [t0, t1) on `comp`.  Call only when enabled().
  void span(Category cat, std::uint32_t comp, const char* name, sim::Time t0,
            sim::Time t1) {
    Event e;
    e.kind = Event::Kind::span;
    e.cat = cat;
    e.component = comp;
    e.name = name;
    e.t_ps = t0.picoseconds();
    e.dur_ps = t1 > t0 ? (t1 - t0).picoseconds() : 0;
    sink_->record(e);
  }

  void instant(Category cat, std::uint32_t comp, const char* name, sim::Time t,
               double value = 0.0) {
    Event e;
    e.kind = Event::Kind::instant;
    e.cat = cat;
    e.component = comp;
    e.name = name;
    e.t_ps = t.picoseconds();
    e.value = value;
    sink_->record(e);
  }

  void counter(Category cat, std::uint32_t comp, const char* name, sim::Time t,
               double value) {
    Event e;
    e.kind = Event::Kind::counter;
    e.cat = cat;
    e.component = comp;
    e.name = name;
    e.t_ps = t.picoseconds();
    e.value = value;
    sink_->record(e);
  }

  [[nodiscard]] MetricsRegistry& metrics() { return metrics_; }
  [[nodiscard]] const MetricsRegistry& metrics() const { return metrics_; }

 private:
  TraceSink* sink_ = nullptr;
  std::vector<Component> components_;
  MetricsRegistry metrics_;
};

}  // namespace icsim::trace
