#include "trace/metrics.hpp"

#include <cstdio>
#include <sstream>

namespace icsim::trace {

namespace {

/// %g prints doubles compactly but never as bare "inf"/"nan" (invalid
/// JSON); empty accumulators report zeros upstream so this is a backstop.
void put_double(std::ostringstream& os, double v) {
  if (v != v || v > 1e308 || v < -1e308) {
    os << "0";
    return;
  }
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.9g", v);
  os << buf;
}

}  // namespace

std::string MetricsRegistry::to_json() const {
  std::ostringstream os;
  os << "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, v] : counters_) {
    os << (first ? "" : ",") << "\n    \"" << name << "\": " << v;
    first = false;
  }
  os << "\n  },\n  \"stats\": {";
  first = true;
  for (const auto& [name, s] : stats_) {
    os << (first ? "" : ",") << "\n    \"" << name << "\": {\"count\": "
       << s.count() << ", \"mean\": ";
    put_double(os, s.mean());
    os << ", \"min\": ";
    put_double(os, s.min());
    os << ", \"max\": ";
    put_double(os, s.max());
    os << ", \"stddev\": ";
    put_double(os, s.stddev());
    os << ", \"sum\": ";
    put_double(os, s.sum());
    os << "}";
    first = false;
  }
  os << "\n  },\n  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : histograms_) {
    os << (first ? "" : ",") << "\n    \"" << name << "\": {\"total\": "
       << h.total() << ", \"lo\": ";
    put_double(os, h.lo());
    os << ", \"hi\": ";
    put_double(os, h.hi());
    os << ", \"p50\": ";
    put_double(os, h.quantile(0.5));
    os << ", \"p90\": ";
    put_double(os, h.quantile(0.9));
    os << ", \"p99\": ";
    put_double(os, h.quantile(0.99));
    os << ", \"buckets\": [";
    for (std::size_t i = 0; i < h.buckets().size(); ++i) {
      os << (i ? "," : "") << h.buckets()[i];
    }
    os << "]}";
    first = false;
  }
  os << "\n  }\n}\n";
  return os.str();
}

}  // namespace icsim::trace
