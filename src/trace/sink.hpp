#pragma once
// Trace sinks: where recorded events go.
//
// The recorder on the hot path is RingBufferSink: a fixed-capacity
// power-of-two ring written with a single relaxed atomic store per event
// (single-producer — the simulator is single-threaded — with the atomic
// head making concurrent snapshot() from another thread safe, e.g. a
// watchdog dumping a live run).  When the ring wraps, the oldest events are
// overwritten and counted as dropped; a trace keeps the most recent window,
// which is what you want when a run dies at the end.
//
// NullSink exists so `Tracer` always has a valid sink; the enabled() fast
// path means instrumented code never reaches it in the disabled case.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "trace/event.hpp"

namespace icsim::trace {

class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void record(const Event& e) = 0;
};

class NullSink final : public TraceSink {
 public:
  void record(const Event&) override {}
};

class RingBufferSink final : public TraceSink {
 public:
  /// `capacity` is rounded up to a power of two (min 64).
  explicit RingBufferSink(std::size_t capacity) {
    std::size_t c = 64;
    while (c < capacity) c <<= 1;
    buf_.resize(c);
    mask_ = c - 1;
  }

  void record(const Event& e) override {
    const std::uint64_t h = head_.load(std::memory_order_relaxed);
    buf_[static_cast<std::size_t>(h) & mask_] = e;
    head_.store(h + 1, std::memory_order_release);
  }

  [[nodiscard]] std::size_t capacity() const { return buf_.size(); }
  /// Events ever recorded (including overwritten ones).
  [[nodiscard]] std::uint64_t recorded() const {
    return head_.load(std::memory_order_acquire);
  }
  /// Events lost to wraparound.
  [[nodiscard]] std::uint64_t dropped() const {
    const std::uint64_t h = recorded();
    return h > buf_.size() ? h - buf_.size() : 0;
  }

  /// Copy out the retained events, oldest first.
  [[nodiscard]] std::vector<Event> snapshot() const {
    const std::uint64_t h = recorded();
    const std::uint64_t n = h > buf_.size() ? buf_.size() : h;
    std::vector<Event> out;
    out.reserve(static_cast<std::size_t>(n));
    for (std::uint64_t i = h - n; i < h; ++i) {
      out.push_back(buf_[static_cast<std::size_t>(i) & mask_]);
    }
    return out;
  }

 private:
  std::vector<Event> buf_;
  std::size_t mask_ = 0;
  std::atomic<std::uint64_t> head_{0};
};

}  // namespace icsim::trace
