#include "elan/tports.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>
#include <string>
#include <utility>

#include "sim/check.hpp"
#include "trace/trace.hpp"

namespace icsim::elan {

ElanNic::ElanNic(sim::Engine& engine, node::Node& host, net::Fabric* fabric,
                 const ElanConfig& config)
    : engine_(engine),
      host_(host),
      fabric_(fabric),
      cfg_(config),
      nic_thread_(engine, "elan-thread") {}

void ElanNic::attach_rank(int rank) { contexts_.emplace(rank, RxContext{}); }

std::size_t ElanNic::posted_depth(int rank) const {
  return contexts_.at(rank).matcher.posted_depth();
}

std::size_t ElanNic::max_unexpected_depth(int rank) const {
  return contexts_.at(rank).matcher.max_unexpected_depth();
}

void ElanNic::tx(int src_rank, int dst_rank, int tag, int context,
                 Payload payload, std::size_t bytes, TxCallback on_complete) {
  if (world_ == nullptr) throw std::logic_error("ElanNic: world not wired");
  auto msg = std::make_shared<Msg>();
  msg->src_rank = src_rank;
  msg->dst_rank = dst_rank;
  msg->tag = tag;
  msg->context = context;
  msg->bytes = bytes;
  msg->payload = std::move(payload);
  msg->on_tx_complete = std::move(on_complete);
  msg->src = this;
  msg->dst = world_->nic_of_rank.at(static_cast<std::size_t>(dst_rank));
  msg->mode = bytes > cfg_.get_threshold ? Mode::get : Mode::eager;
  msg->t_post = engine_.now();

  // Descriptor PIO across PCI-X (command word + any inline payload).
  const std::uint32_t pio_bytes =
      64 + static_cast<std::uint32_t>(std::min<std::size_t>(bytes, cfg_.inline_bytes));
  host_.dma(pio_bytes, [this, msg] {
    nic_thread_.acquire(cfg_.nic_tx_cost, [this, msg] { send_chunks(msg); });
  });
}

void ElanNic::send_chunks(const MsgPtr& msg) {
  if (msg->mode == Mode::get) {
    // Envelope only; payload stays in host memory until the remote NIC
    // pulls it.  tx completes when the pull finishes.
    inject_envelope_ordered(msg, 0, engine_.now(), /*completes_tx=*/false);
    return;
  }
  if (msg->bytes <= cfg_.inline_bytes) {
    // Data already reached the NIC with the descriptor PIO; the send buffer
    // is reusable once the envelope is on the wire.
    inject_envelope_ordered(msg, static_cast<std::uint32_t>(msg->bytes),
                            engine_.now(), /*completes_tx=*/true);
    return;
  }
  // Chunked DMA read from host memory; each chunk goes to the wire as soon
  // as it is on the NIC.  The first chunk doubles as the envelope (its
  // injection is ordered behind earlier messages; trailing data chunks can
  // inject as their DMA lands — the receive side tolerates data ahead of
  // the envelope by buffering bytes until the match).
  std::size_t remaining = msg->bytes;
  bool first = true;
  sim::Time last_done = sim::Time::zero();
  while (remaining > 0) {
    const auto chunk = static_cast<std::uint32_t>(
        std::min<std::size_t>(remaining, cfg_.chunk_bytes));
    remaining -= chunk;
    const bool last = remaining == 0;
    if (first) {
      first = false;
      const sim::Time env_dma_done = host_.dma(chunk, nullptr);
      inject_envelope_ordered(msg, chunk, env_dma_done,
                              /*completes_tx=*/last);
      last_done = env_dma_done;
      continue;
    }
    last_done = host_.dma(chunk, [this, msg, chunk, last] {
      wire_chunk(msg, chunk, /*is_envelope=*/false);
      if (last) complete_tx(msg);  // buffer fully read out of host memory
    });
  }
  tx_stream_free_ = std::max(tx_stream_free_, last_done);
}

void ElanNic::inject_envelope_ordered(const MsgPtr& msg,
                                      std::uint32_t payload_bytes,
                                      sim::Time not_before, bool completes_tx) {
  const sim::Time when = std::max({engine_.now(), tx_stream_free_, not_before});
  tx_stream_free_ = when;
  engine_.post_at(when, [this, msg, payload_bytes, completes_tx] {
    wire_chunk(msg, payload_bytes, /*is_envelope=*/true);
    if (completes_tx) complete_tx(msg);
  });
}

void ElanNic::wire_chunk(const MsgPtr& msg, std::uint32_t payload_bytes,
                         bool is_envelope) {
  // Envelope chunks carry the Tports header; the per-MTU wire headers are
  // charged by the fabric itself.
  const std::uint32_t wire_bytes =
      is_envelope ? std::max(payload_bytes + 40u, cfg_.ctrl_bytes) : payload_bytes;
  auto deliver = [msg, payload_bytes, is_envelope] {
    if (is_envelope) {
      msg->dst->on_envelope(msg);
      if (msg->mode == Mode::eager) msg->dst->on_data_chunk(msg, payload_bytes);
    } else {
      msg->dst->on_data_chunk(msg, payload_bytes);
    }
  };
  if (msg->dst->host_.id() == host_.id()) {
    engine_.post_in(cfg_.loopback_latency, std::move(deliver));
  } else {
    fabric_send(host_.id(), msg->dst->host_.id(), wire_bytes, /*attempt=*/0,
                std::move(deliver));
  }
}

void ElanNic::fabric_send(int from_node, int to_node, std::uint32_t wire_bytes,
                          int attempt, std::function<void()> deliver) {
  fabric_->inject(
      from_node, to_node, wire_bytes,
      [this, from_node, to_node, wire_bytes, attempt,
       deliver = std::move(deliver)](net::DeliveryStatus st) mutable {
        if (st == net::DeliveryStatus::delivered) {
          if (deliver) deliver();
          return;
        }
        if (attempt >= cfg_.link_retry_limit) {
          ++link_retry_exhausted_;
          ICSIM_TRACE_WITH(engine_, tr) {
            tr.instant(trace::Category::tports, trace_component(),
                       "link_retry_exhausted", engine_.now());
          }
          return;
        }
        ++link_retries_;
        ICSIM_TRACE_WITH(engine_, tr) {
          tr.instant(trace::Category::tports, trace_component(), "link_retry",
                     engine_.now(),
                     static_cast<double>(attempt + 1));
        }
        // Retransmit from the link buffer — no host DMA re-read; the fresh
        // inject() recomputes the route, so a failed link is avoided on the
        // very next attempt.
        engine_.post_in(cfg_.link_retry_delay,
                        [this, from_node, to_node, wire_bytes, attempt,
                         deliver = std::move(deliver)]() mutable {
                          fabric_send(from_node, to_node, wire_bytes,
                                      attempt + 1, std::move(deliver));
                        });
      });
}

std::uint32_t ElanNic::trace_component() {
  if (trace_id_ == 0) {
    trace_id_ = engine_.tracer().register_component(
        trace::Category::tports, "elan" + std::to_string(host_.id()));
  }
  return trace_id_;
}

void ElanNic::trace_match(const RxContext& ctx, sim::Time cost) {
  ICSIM_TRACE_WITH(engine_, tr) {
    const auto comp = trace_component();
    const auto now = engine_.now();
    tr.span(trace::Category::tports, comp, "match", now,
            now + cost);
    tr.counter(trace::Category::tports, comp, "unexpected_depth",
               now,
               static_cast<double>(ctx.matcher.unexpected_depth()));
    tr.counter(trace::Category::tports, comp, "posted_depth",
               now,
               static_cast<double>(ctx.matcher.posted_depth()));
    if (uq_depth_stat_ == nullptr) {
      uq_depth_stat_ = &tr.metrics().stat("elan.unexpected_depth");
    }
    uq_depth_stat_->add(static_cast<double>(ctx.matcher.unexpected_depth()));
  }
}

void ElanNic::on_envelope(const MsgPtr& msg) {
  auto ctx_it = contexts_.find(msg->dst_rank);
  if (ctx_it == contexts_.end()) {
    throw std::logic_error("ElanNic: envelope for unattached rank");
  }
  RxContext& ctx = ctx_it->second;
  msg->t_envelope = engine_.now();

  mpi::Envelope env;
  env.context = msg->context;
  env.src = msg->src_rank;
  env.tag = msg->tag;
  env.bytes = msg->bytes;
  env.id = next_id_++;

  auto result = ctx.matcher.arrive(env);
  const sim::Time cost = match_cost(result.scanned);
  trace_match(ctx, cost);
  if (result.match) {
    RxCallback cb = std::move(ctx.posted.at(result.match->id));
    ctx.posted.erase(result.match->id);
    nic_thread_.acquire(cost, [this, msg, cb = std::move(cb)]() mutable {
      arm_matched(msg, std::move(cb));
    });
  } else {
    // Unexpected: charge the scan; eager payload accumulates in NIC SDRAM.
    ctx.unexpected.emplace(env.id, msg);
    msg->match_id = env.id;
    nic_thread_.acquire(cost, [] {});
  }
}

void ElanNic::on_data_chunk(const MsgPtr& msg, std::uint32_t bytes) {
  // Runs on the destination NIC.
  ElanNic& self = *msg->dst;
  msg->bytes_arrived += bytes;
  ICSIM_CHECK(msg->bytes_arrived <= msg->bytes,
              "Elan rx: more payload arrived than the message carries");
  if (msg->matched) {
    self.dma_chunk_to_host(msg, bytes);
  } else {
    msg->bytes_buffered += bytes;
    self.buf_used_ += bytes;
    self.buf_high_water_ = std::max(self.buf_high_water_, self.buf_used_);
    ICSIM_CHECK(self.buf_used_ <= self.cfg_.nic_buffer_bytes,
                "Elan SDRAM unexpected-message buffer over capacity");
  }
}

void ElanNic::dma_chunk_to_host(const MsgPtr& msg, std::uint64_t bytes) {
  ElanNic& self = *msg->dst;
  self.host_.dma(bytes, [msg, bytes] {
    msg->bytes_dma_done += bytes;
    if (msg->bytes_dma_done >= msg->bytes && !msg->rx_completed) {
      msg->rx_completed = true;
      msg->dst->complete_rx(msg);
    }
  });
}

void ElanNic::rx(int dst_rank, int src_sel, int tag_sel, int context,
                 RxCallback on_complete) {
  RxContext& ctx = contexts_.at(dst_rank);
  mpi::PostedRecv p;
  p.context = context;
  p.src = src_sel;
  p.tag = tag_sel;
  p.id = next_id_++;

  auto result = ctx.matcher.post(p);
  const sim::Time cost = match_cost(result.scanned);
  trace_match(ctx, cost);
  if (result.match) {
    MsgPtr msg = ctx.unexpected.at(result.match->id);
    ctx.unexpected.erase(result.match->id);
    nic_thread_.acquire(cost, [this, msg, cb = std::move(on_complete)]() mutable {
      arm_matched(msg, std::move(cb));
    });
  } else {
    ctx.posted.emplace(p.id, std::move(on_complete));
    nic_thread_.acquire(cost, [] {});
  }
}

void ElanNic::arm_matched(const MsgPtr& msg, RxCallback cb) {
  msg->matched = true;
  msg->rx_cb = std::move(cb);
  if (msg->mode == Mode::get) {
    start_get(msg);
    return;
  }
  // Replay whatever already sits in NIC SDRAM as one DMA burst (this also
  // covers the envelope chunk's payload, which lands before the match
  // decision takes effect); chunks still in flight DMA individually from
  // on_data_chunk.  Zero-byte messages complete through the same path.
  const std::uint64_t burst = msg->bytes_buffered;
  msg->bytes_buffered = 0;
  ICSIM_CHECK(buf_used_ >= burst,
              "Elan SDRAM occupancy would go negative on replay");
  buf_used_ -= burst;
  if (burst > 0 || msg->bytes == 0) dma_chunk_to_host(msg, burst);
}

void ElanNic::start_get(const MsgPtr& msg) {
  // Runs on the destination NIC: request the payload from the source NIC.
  msg->bytes_arrived = 0;
  ElanNic* src = msg->src;
  ElanNic* dst = msg->dst;
  auto issue_pull = [src, msg] {
    src->nic_thread_.acquire(src->cfg_.nic_tx_cost, [src, msg] {
      // Source NIC DMAs the payload out of host memory and streams it.
      std::size_t remaining = msg->bytes;
      while (remaining > 0) {
        const auto chunk = static_cast<std::uint32_t>(
            std::min<std::size_t>(remaining, src->cfg_.chunk_bytes));
        remaining -= chunk;
        const bool last = remaining == 0;
        src->host_.dma(chunk, [src, msg, chunk, last] {
          src->wire_chunk(msg, chunk, /*is_envelope=*/false);
          if (last) src->complete_tx(msg);  // source buffer reusable
        });
      }
    });
  };
  if (src->host_.id() == dst->host_.id()) {
    engine_.post_in(cfg_.loopback_latency, issue_pull);
  } else {
    fabric_send(dst->host_.id(), src->host_.id(), cfg_.ctrl_bytes,
                /*attempt=*/0, std::move(issue_pull));
  }
}

void ElanNic::complete_rx(const MsgPtr& msg) {
  // Envelope arrival -> event write visible to the host: the NIC-resident
  // receive pipeline (match, SDRAM replay/get, DMA, completion event).
  ICSIM_TRACE_WITH(engine_, tr) {
    tr.span(trace::Category::tports, trace_component(), "rx",
            msg->t_envelope,
            engine_.now() + cfg_.completion_cost);
  }
  engine_.post_in(cfg_.completion_cost, [msg] {
    RxStatus st;
    st.src_rank = msg->src_rank;
    st.tag = msg->tag;
    st.bytes = msg->bytes;
    st.payload = msg->payload;
    msg->rx_cb(st);
  });
}

void ElanNic::complete_tx(const MsgPtr& msg) {
  // Host posted the descriptor -> send buffer reusable (STEN/DMA done).
  ICSIM_TRACE_WITH(engine_, tr) {
    tr.span(trace::Category::tports, msg->src->trace_component(), "tx",
            msg->t_post,
            engine_.now() + cfg_.completion_cost);
  }
  engine_.post_in(cfg_.completion_cost, [msg] {
    if (msg->on_tx_complete) msg->on_tx_complete();
  });
}

}  // namespace icsim::elan
