#pragma once
// Elan-4 NIC and Tagged Ports (Tports).
//
// Tports is the two-sided message-passing interface Quadrics MPI sits on
// (Section 3.1 of the paper).  Everything interesting happens on the NIC's
// thread processor, modeled as a FIFO resource shared by all ranks on the
// node:
//
//   * tag matching against the posted-receive queue runs on the NIC, with a
//     per-entry scan cost (offload, Section 3.3.4);
//   * unexpected messages are buffered in NIC SDRAM without host
//     involvement and replayed on a later matching post;
//   * messages above `get_threshold` ship only their envelope; once the
//     *receiver's* NIC matches it, the NIC pulls the payload with a remote
//     get — long transfers make progress with both hosts computing
//     (independent progress, Section 3.3.3, and overlap, Section 3.3.5);
//   * there is no memory registration: the NIC MMU translates host
//     addresses (Section 3.3.2).
//
// Completion is an event write to host memory; the host observes it without
// having to drive the protocol.

#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "elan/config.hpp"
#include "mpi/matcher.hpp"
#include "net/fabric.hpp"
#include "node/node.hpp"
#include "sim/engine.hpp"
#include "sim/resource.hpp"
#include "sim/stats.hpp"

namespace icsim::elan {

using Payload = std::shared_ptr<std::vector<std::byte>>;

/// Delivered-receive description handed to the receive callback.
struct RxStatus {
  int src_rank = -1;
  int tag = -1;
  std::size_t bytes = 0;
  Payload payload;  ///< actual message data (copy into the user buffer)
};

using RxCallback = std::function<void(const RxStatus&)>;
using TxCallback = std::function<void()>;

class ElanNic;

/// World wiring: which NIC serves each rank (set up by the cluster).
struct ElanWorld {
  std::vector<ElanNic*> nic_of_rank;
};

class ElanNic {
 public:
  ElanNic(sim::Engine& engine, node::Node& host, net::Fabric* fabric,
          const ElanConfig& config);

  void set_world(const ElanWorld* world) { world_ = world; }
  /// Create the receive context (Tport) for a local rank.
  void attach_rank(int rank);

  /// Transmit: called by the transport after it charged the host-side post
  /// cost.  `on_complete` fires when the send buffer is reusable.
  void tx(int src_rank, int dst_rank, int tag, int context, Payload payload,
          std::size_t bytes, TxCallback on_complete);

  /// Post a receive for a local rank (wildcards per mpi::Matcher rules).
  void rx(int dst_rank, int src_sel, int tag_sel, int context,
          RxCallback on_complete);

  /// Non-consuming query of the NIC-side unexpected queue (MPI_Iprobe).
  [[nodiscard]] std::optional<mpi::Envelope> probe(int dst_rank, int src_sel,
                                                   int tag_sel,
                                                   int context) const {
    mpi::PostedRecv p;
    p.context = context;
    p.src = src_sel;
    p.tag = tag_sel;
    return contexts_.at(dst_rank).matcher.probe(p);
  }

  [[nodiscard]] const ElanConfig& config() const { return cfg_; }
  [[nodiscard]] node::Node& host() { return host_; }
  [[nodiscard]] sim::FifoResource& nic_thread() { return nic_thread_; }
  [[nodiscard]] std::uint64_t nic_buffer_high_water() const { return buf_high_water_; }
  [[nodiscard]] std::size_t posted_depth(int rank) const;
  [[nodiscard]] std::size_t max_unexpected_depth(int rank) const;

  /// Packets this NIC's egress link retransmitted after a CRC drop.
  [[nodiscard]] std::uint64_t link_retries() const { return link_retries_; }
  /// Packets abandoned after the hardware retry budget (network error).
  [[nodiscard]] std::uint64_t link_retry_exhausted() const {
    return link_retry_exhausted_;
  }

 private:
  enum class Mode { eager, get };

  /// One message in flight (created at the source, shared with the
  /// destination NIC through the wire callbacks).
  struct Msg {
    int src_rank = -1, dst_rank = -1, tag = 0, context = 0;
    std::size_t bytes = 0;
    Mode mode = Mode::eager;
    Payload payload;
    TxCallback on_tx_complete;  // held at source until buffer reusable
    ElanNic* src = nullptr;
    ElanNic* dst = nullptr;
    // Destination-side state (byte-granular so partial arrivals work):
    std::uint64_t bytes_arrived = 0;
    std::uint64_t bytes_buffered = 0;  // sitting unexpected in NIC SDRAM
    std::uint64_t bytes_dma_done = 0;
    std::uint64_t match_id = 0;        // unexpected-queue key
    bool matched = false;              // a posted receive claimed it
    bool rx_completed = false;
    RxCallback rx_cb;  // set when matched
    sim::Time t_post;      // host posted the send (trace span start)
    sim::Time t_envelope;  // envelope reached the dst NIC (trace span start)
  };
  using MsgPtr = std::shared_ptr<Msg>;

  struct RxContext {
    mpi::Matcher matcher;
    std::unordered_map<std::uint64_t, RxCallback> posted;  // id -> callback
    std::unordered_map<std::uint64_t, MsgPtr> unexpected;  // id -> message
  };

  void send_chunks(const MsgPtr& msg);
  /// Inject an envelope no earlier than every previously transmitted
  /// byte of this NIC (per-pair Tports ordering on the single egress port).
  void inject_envelope_ordered(const MsgPtr& msg, std::uint32_t payload_bytes,
                               sim::Time not_before, bool completes_tx);
  void wire_chunk(const MsgPtr& msg, std::uint32_t payload_bytes,
                  bool is_envelope);
  /// Inject with hardware link-level retry: a packet dropped by a CRC check
  /// (or a just-failed link) is retransmitted from the link buffer after
  /// `link_retry_delay`, re-routing around downed links on each attempt.
  void fabric_send(int from_node, int to_node, std::uint32_t wire_bytes,
                   int attempt, std::function<void()> deliver);
  void on_envelope(const MsgPtr& msg);  // runs on dst NIC
  void on_data_chunk(const MsgPtr& msg, std::uint32_t bytes);
  void dma_chunk_to_host(const MsgPtr& msg, std::uint64_t bytes);
  /// Mark matched and replay any SDRAM-buffered bytes (runs on dst NIC).
  void arm_matched(const MsgPtr& msg, RxCallback cb);
  void start_get(const MsgPtr& msg);  // dst NIC pulls the payload
  void complete_rx(const MsgPtr& msg);
  void complete_tx(const MsgPtr& msg);
  [[nodiscard]] sim::Time match_cost(std::size_t scanned) const {
    return cfg_.nic_rx_base + cfg_.match_per_entry * static_cast<std::int64_t>(scanned);
  }
  /// Lazily registered trace component ("elan<node>").
  std::uint32_t trace_component();
  /// NIC-thread match span + unexpected/posted queue depth samples.
  void trace_match(const RxContext& ctx, sim::Time cost);

  sim::Engine& engine_;
  node::Node& host_;
  net::Fabric* fabric_;
  ElanConfig cfg_;
  sim::FifoResource nic_thread_;
  const ElanWorld* world_ = nullptr;
  std::unordered_map<int, RxContext> contexts_;  // local rank -> Tport
  std::uint64_t next_id_ = 1;
  std::uint64_t buf_used_ = 0;
  std::uint64_t buf_high_water_ = 0;
  std::uint64_t link_retries_ = 0;
  std::uint64_t link_retry_exhausted_ = 0;
  /// Instant after which a new envelope may enter the wire: the latest
  /// point at which bytes of earlier messages left host memory.  Keeps
  /// inline/get envelopes (which carry no bulk DMA) from overtaking the
  /// still-draining chunks of an earlier message.
  sim::Time tx_stream_free_ = sim::Time::zero();
  std::uint32_t trace_id_ = 0;
  sim::RunningStat* uq_depth_stat_ = nullptr;  ///< cached metrics accumulator
};

}  // namespace icsim::elan
