#pragma once
// Quadrics Elan-4 NIC model parameters.
//
// The defining architectural features (paper Section 3): a programmable
// thread processor on the NIC performs MPI tag matching and protocol
// processing (offload + independent progress); the NIC has an MMU and
// cooperates with the OS on address translation, so there is *no* memory
// registration; unexpected messages are buffered in NIC-local SDRAM.
// Magnitudes follow QsNetII product data and Liu et al.'s measurements of
// Elan-4 on the same PCI-X hosts.

#include <cstdint>

#include "sim/time.hpp"

namespace icsim::elan {

struct ElanConfig {
  /// DES pipeline granularity for DMA + wire movement.  Elan-4 pipelines at
  /// fine granularity, which is where its mid-size-message advantage over
  /// the InfiniBand stack comes from.
  std::uint32_t chunk_bytes = 2048;

  /// Host cost to write a tx/rx command descriptor to the NIC (PIO).
  sim::Time host_post_cost = sim::Time::us(0.22);
  /// NIC thread service time per transmit descriptor.
  sim::Time nic_tx_cost = sim::Time::us(0.15);
  /// NIC thread base cost to process one arriving envelope.
  sim::Time nic_rx_base = sim::Time::us(0.12);
  /// NIC thread cost per match-queue entry scanned (the "long queues on a
  /// slow network processor" effect of Section 3.3.4).
  sim::Time match_per_entry = sim::Time::ns(40);
  /// Event write to host memory + host pickup of a completion.
  sim::Time completion_cost = sim::Time::us(0.45);
  /// NIC-internal loopback latency for same-node peers.
  sim::Time loopback_latency = sim::Time::us(0.35);

  /// Payload carried inline in the descriptor PIO (no DMA read needed).
  std::uint32_t inline_bytes = 128;
  /// Elan SDRAM available for buffering unexpected messages.
  std::uint64_t nic_buffer_bytes = 32ull << 20;
  /// Above this size the sender ships only the envelope and the *receiver's
  /// NIC thread* pulls the payload with a remote get once matched — still
  /// fully offloaded, unlike InfiniBand's host-driven rendezvous.
  std::uint32_t get_threshold = 32768;
  /// Wire size of an envelope-only (get-mode) message or control packet.
  std::uint32_t ctrl_bytes = 64;

  /// Hardware link-level recovery: QsNetII CRC-checks every packet at each
  /// link stage and the sending link retransmits from its own buffer after
  /// a short turnaround — no host or NIC-thread involvement, which is why
  /// Elan rides out lossy links far more cheaply than the IB RC timeout
  /// path.  After link_retry_limit attempts the packet is abandoned (a real
  /// Elan would raise a network error to the kernel).
  sim::Time link_retry_delay = sim::Time::us(0.5);
  int link_retry_limit = 15;
};

}  // namespace icsim::elan
