#include "par/collective.hpp"

#include <stdexcept>
#include <utility>

namespace icsim::par {

namespace {
[[nodiscard]] int floor_log2(int n) {
  int r = 0;
  while ((1 << (r + 1)) <= n) ++r;
  return r;
}
[[nodiscard]] int ceil_log2(int n) {
  int r = floor_log2(n);
  return (1 << r) == n ? r : r + 1;
}
}  // namespace

CollectiveWorld::CollectiveWorld(ParEngine& engine, ShardedFabric& fabric,
                                 const ParNetParams& params)
    : par_(engine), fabric_(fabric), prm_(params) {
  const int n = fabric.num_nodes();
  ranks_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    auto r = std::make_unique<Rank>();
    r->id = i;
    r->part = fabric.partitioning().of_node(i);
    r->cpu = std::make_unique<sim::FifoResource>(
        par_.shard(r->part), "rank" + std::to_string(i) + ".cpu");
    ranks_.push_back(std::move(r));
  }
}

void CollectiveWorld::start(const CollectiveSpec& spec) {
  spec_ = spec;
  if (spec_.iterations < 1) spec_.iterations = 1;
  const int n = ranks();
  pow2_ranks_ = n < 1 ? 1 : (1 << floor_log2(n));
  rounds_ = spec_.op == Collective::barrier ? ceil_log2(n < 1 ? 1 : n)
                                            : floor_log2(n < 1 ? 1 : n);
  for (auto& r : ranks_) {
    Rank* rank = r.get();
    par_.shard(rank->part).post_at(sim::Time::zero(),
                                   [this, rank] { begin_iteration(*rank); });
  }
}

void CollectiveWorld::send(Rank& from, int to, int iter, int phase, int round,
                           std::uint32_t bytes) {
  ++from.sent;
  const std::uint32_t payload = bytes > 0 ? bytes : prm_.ctrl_bytes;
  const std::uint32_t nchunks =
      (payload + prm_.chunk_bytes - 1) / prm_.chunk_bytes;
  const std::uint64_t key = key_of(iter, phase, round);
  const int src = from.id;
  // The send occupies the rank's CPU/NIC for send_overhead, then the
  // chunk(s) enter the fabric back to back (the link FIFO serializes them).
  from.cpu->acquire(
      prm_.send_overhead,
      [this, src, to, key, payload, nchunks, phase]() {
        std::uint32_t left = payload;
        for (std::uint32_t c = 0; c < nchunks; ++c) {
          const std::uint32_t sz =
              left > prm_.chunk_bytes ? prm_.chunk_bytes : left;
          left -= sz;
          fabric_.inject(src, to, sz, [this, to, key, nchunks, phase] {
            on_chunk(to, key, nchunks, phase);
          });
        }
      });
}

void CollectiveWorld::on_chunk(int dst, std::uint64_t key,
                               std::uint32_t nchunks, int phase) {
  // Runs in dst's partition (ShardedFabric delivery contract).
  Rank& r = *ranks_[static_cast<std::size_t>(dst)];
  std::uint32_t& got = r.chunks_got[key];
  ++got;
  if (got < nchunks) return;
  r.chunks_got.erase(key);
  // Message complete: the receiver spends recv_overhead taking it off the
  // wire, plus the combining cost when this message carries a vector to
  // reduce (allreduce fold-in and doubling rounds; the fold-out result in
  // phase 2 is just copied).
  sim::Time cost = prm_.recv_overhead;
  if (spec_.op == Collective::allreduce && phase != 2) cost += prm_.reduce_cost;
  r.cpu->acquire(cost, [this, dst, key] {
    on_message(*ranks_[static_cast<std::size_t>(dst)], key);
  });
}

void CollectiveWorld::on_message(Rank& r, std::uint64_t key) {
  ++r.arrived[key];
  advance(r);
}

bool CollectiveWorld::take(Rank& r, int phase, int round) {
  const auto it = r.arrived.find(key_of(r.iter, phase, round));
  if (it == r.arrived.end() || it->second < 1) return false;
  if (--it->second == 0) r.arrived.erase(it);
  return true;
}

void CollectiveWorld::begin_iteration(Rank& r) {
  r.phase = 0;
  r.round = 0;
  const int n = ranks();
  if (spec_.op == Collective::barrier) {
    if (rounds_ > 0) {
      send(r, (r.id + 1) % n, r.iter, 0, 0, 0);  // round 0 distance is 2^0
    }
  } else if (r.id >= pow2_ranks_) {
    // Remainder rank: fold the value in, then wait for the fold-out result.
    send(r, r.id - pow2_ranks_, r.iter, 0, 0, spec_.bytes);
    r.phase = 2;
  }
  advance(r);
}

void CollectiveWorld::finish_iteration(Rank& r) {
  ++r.iter;
  if (r.iter >= spec_.iterations) {
    r.done = true;
    r.finished = par_.shard(r.part).now();
    return;
  }
  // Next iteration via a fresh event rather than recursion: with n == 1 (or
  // a degenerate op) an iteration completes synchronously and direct
  // recursion would be iterations deep.
  Rank* rank = &r;
  par_.shard(r.part).post_in(sim::Time::zero(),
                             [this, rank] { begin_iteration(*rank); });
}

void CollectiveWorld::advance(Rank& r) {
  const int n = ranks();
  if (spec_.op == Collective::barrier) {
    // Dissemination: consume round messages in order; entering round k
    // sends the distance-2^k message.
    while (r.round < rounds_ && take(r, 0, r.round)) {
      ++r.round;
      if (r.round < rounds_) {
        send(r, (r.id + (1 << r.round)) % n, r.iter, 0, r.round, 0);
      }
    }
    if (r.round >= rounds_) finish_iteration(r);
    return;
  }
  // Allreduce.
  const int rem = n - pow2_ranks_;
  for (;;) {
    if (r.phase == 0) {
      // Block rank: absorb the remainder rank's fold-in (if one maps here),
      // then enter the doubling rounds.
      if (r.id < rem && !take(r, 0, 0)) return;
      r.phase = 1;
      r.round = 0;
      if (rounds_ > 0) {
        send(r, r.id ^ 1, r.iter, 1, 0, spec_.bytes);  // round 0 partner
      }
      continue;
    }
    if (r.phase == 1) {
      while (r.round < rounds_ && take(r, 1, r.round)) {
        ++r.round;
        if (r.round < rounds_) {
          send(r, r.id ^ (1 << r.round), r.iter, 1, r.round, spec_.bytes);
        }
      }
      if (r.round < rounds_) return;  // waiting on the current partner
      r.phase = 2;
      continue;
    }
    // Phase 2: fold the result out to the remainder ranks.
    if (r.id < pow2_ranks_) {
      if (r.id < rem) send(r, r.id + pow2_ranks_, r.iter, 2, 0, spec_.bytes);
    } else if (!take(r, 2, 0)) {
      return;
    }
    finish_iteration(r);
    return;
  }
}

bool CollectiveWorld::all_done() const { return ranks_done() == ranks(); }

int CollectiveWorld::ranks_done() const {
  int n = 0;
  for (const auto& r : ranks_) n += r->done ? 1 : 0;
  return n;
}

sim::Time CollectiveWorld::completion_time() const {
  sim::Time t = sim::Time::zero();
  for (const auto& r : ranks_) {
    if (r->finished > t) t = r->finished;
  }
  return t;
}

std::uint64_t CollectiveWorld::messages_sent() const {
  std::uint64_t v = 0;
  for (const auto& r : ranks_) v += r->sent;
  return v;
}

}  // namespace icsim::par
