#include "par/partition.hpp"

#include <stdexcept>

namespace icsim::par {

Partitioning make_partitioning(const net::FatTreeTopology& topo, int num_nodes,
                               int parts) {
  if (num_nodes < 1) {
    throw std::invalid_argument("make_partitioning: need at least one node");
  }
  if (num_nodes > topo.capacity()) {
    throw std::invalid_argument(
        "make_partitioning: more nodes than the tree can attach");
  }
  if (parts < 1) parts = 1;

  // Leaf switches that actually have nodes attached.  Nodes attach densely
  // from word 0 (node x sits under leaf word x / k), so the populated leaf
  // range is [0, populated_leaves).
  const int k = topo.radix();
  const int populated_leaves = (num_nodes + k - 1) / k;
  if (parts > populated_leaves) parts = populated_leaves;
  if (parts > num_nodes) parts = num_nodes;

  Partitioning p;
  p.parts = parts;
  p.leaves_per_part = populated_leaves / parts;
  if (p.leaves_per_part < 1) p.leaves_per_part = 1;
  p.node_part.resize(static_cast<std::size_t>(num_nodes));
  for (int n = 0; n < num_nodes; ++n) {
    p.node_part[static_cast<std::size_t>(n)] =
        p.of_word(topo.leaf_switch_of(n).word);
  }
  return p;
}

}  // namespace icsim::par
