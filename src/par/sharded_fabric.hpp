#pragma once
// Partition-sharded fat-tree fabric for the parallel engine.
//
// Same timing model as net::Fabric — output-queued crossbars, one FIFO
// serialization resource per directed link, fixed switch pipeline latency,
// per-MTU header overhead — but every directed link lives in exactly one
// partition shard (the transmitter side's partition, see partition.hpp) and
// is served by that shard's private engine.  A chunk flows hop-by-hop; when
// the next hop's link belongs to another partition the continuation is
// handed over with ParEngine::post_cross.  The hand-off always carries
// wire_latency + switch_latency of simulated delay (the wire plus entering
// the next switch), which is exactly the engine's lookahead: lookahead_of()
// is the single source of that constant.
//
// Differences from net::Fabric, deliberate and documented:
//   * the delivery callback fires only on successful delivery, in the
//     *destination's* partition (it may touch destination state only);
//   * faults are limited to link-down windows evaluated as pure functions
//     of simulated time (race-free across shards): a blocked default route
//     is rerouted at injection, a chunk reaching a link inside a down
//     window mid-flight is dropped and counted, with no notification — the
//     par collective tier has no retry machinery, so plans that partition
//     the fabric mid-run deadlock (ParCluster::run detects and throws);
//   * no BER/corruption draws and no fault hooks: RNG state shared across
//     shards would be a determinism hazard, so ParCluster rejects plans
//     that ask for it.
//
// All counters are kept per shard (single-writer during the run) and only
// aggregated by the post-run accessors; audit_drained() checks the same
// chunk/byte conservation laws as net::Fabric.

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "fault/plan.hpp"
#include "net/fabric.hpp"
#include "net/topology.hpp"
#include "par/par_engine.hpp"
#include "par/partition.hpp"
#include "sim/resource.hpp"
#include "sim/time.hpp"

namespace icsim::par {

class ShardedFabric {
 public:
  /// `partitioning.parts` must equal `engine.partitions()`.
  ShardedFabric(ParEngine& engine, const net::FabricConfig& config,
                int num_nodes, Partitioning partitioning);

  /// The conservative lookahead this fabric supports: the minimum simulated
  /// delay of any cross-partition hop (wire propagation + entering the next
  /// switch).  ParEngine must be built with exactly this value.
  [[nodiscard]] static sim::Time lookahead_of(const net::FabricConfig& config) {
    return config.wire_latency + config.switch_latency;
  }

  /// Fires in the destination node's partition when the chunk's last byte
  /// arrives; must touch destination-partition state only.
  using DeliveredFn = std::function<void()>;

  /// Inject one chunk of `bytes` payload.  Must be called from event code
  /// running in src's partition.  Lost chunks (no fully-up route at
  /// injection, or a link that enters a down window mid-flight) are counted
  /// but NOT notified — see the header comment.
  void inject(int src, int dst, std::uint32_t bytes, DeliveredFn on_delivered);

  /// Install the link-down windows (from a fault::FaultPlan).  Windows are
  /// consulted as pure functions of simulated time by every shard; install
  /// before the run starts.
  void set_link_windows(std::vector<fault::LinkDownWindow> windows);

  /// Is the (undirected) cable this hop traverses inside a down window at
  /// simulated time `t`?
  [[nodiscard]] bool link_down_at(const net::Hop& hop, sim::Time t) const;

  [[nodiscard]] int num_nodes() const { return num_nodes_; }
  [[nodiscard]] const net::FatTreeTopology& topology() const { return topo_; }
  [[nodiscard]] const net::FabricConfig& config() const { return cfg_; }
  [[nodiscard]] const Partitioning& partitioning() const { return parts_; }

  /// Serialization time of a chunk including per-MTU header overhead
  /// (identical to net::Fabric::serialization_time).
  [[nodiscard]] sim::Time serialization_time(std::uint32_t bytes) const;

  // Aggregated counters — call only after ParEngine::run() returned (they
  // sum per-shard state that is written concurrently during the run).
  [[nodiscard]] std::uint64_t chunks_sent() const;
  [[nodiscard]] std::uint64_t chunks_delivered() const;
  [[nodiscard]] std::uint64_t chunks_dropped_link_down() const;
  [[nodiscard]] std::uint64_t chunks_rerouted() const;
  [[nodiscard]] std::uint64_t chunks_no_route() const;

  /// ICSIM_CHECK audit once the engine has drained: chunk and byte
  /// conservation across all shards, nothing left in flight.
  void audit_drained() const;

 private:
  struct DirectedLink {
    DirectedLink(sim::Engine& e, std::string name, net::Hop h)
        : tx(e, std::move(name)), hop(h) {}
    sim::FifoResource tx;
    net::Hop hop;
    std::uint64_t forwarded = 0;
  };
  /// Per-partition slice: links owned by this partition plus counters.
  /// Single-writer during the run (only the worker driving the shard's
  /// engine touches it); aggregated read-only afterwards.
  struct Shard {
    std::map<std::uint64_t, std::unique_ptr<DirectedLink>> links;
    std::uint64_t injected = 0;
    std::uint64_t delivered = 0;
    std::uint64_t down_drops = 0;
    std::uint64_t rerouted = 0;
    std::uint64_t no_route_drops = 0;
    std::uint64_t bytes_injected = 0;
    std::uint64_t bytes_delivered = 0;
    std::uint64_t bytes_dropped = 0;
    /// +1 at injection (source shard), -1 at the terminal event (whichever
    /// shard it lands in); the global sum must return to zero at drain.
    std::int64_t in_flight_delta = 0;
  };

  [[nodiscard]] std::uint64_t key_of(const net::Hop& hop) const;
  [[nodiscard]] std::string link_name(const net::Hop& hop) const;
  [[nodiscard]] std::uint64_t wire_bytes(std::uint32_t bytes) const;
  DirectedLink& link_for(Shard& shard, const net::Hop& hop);
  void forward(std::shared_ptr<std::vector<net::Hop>> route, std::size_t index,
               std::uint32_t bytes, DeliveredFn on_delivered);

  ParEngine& par_;
  net::FabricConfig cfg_;
  net::FatTreeTopology topo_;
  int num_nodes_;
  Partitioning parts_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::vector<fault::LinkDownWindow> windows_;  ///< immutable during the run
};

}  // namespace icsim::par
