#include "par/par_engine.hpp"

#include <algorithm>
#include <barrier>
#include <optional>
#include <stdexcept>
#include <thread>
#include <utility>

#include "sim/check.hpp"
#include "sim/concurrency.hpp"

namespace icsim::par {

ParEngine::ParEngine(const ParConfig& config) : lookahead_(config.lookahead) {
  if (config.partitions < 1) {
    throw std::invalid_argument("ParEngine: need at least one partition");
  }
  if (config.lookahead <= sim::Time::zero()) {
    throw std::invalid_argument("ParEngine: lookahead must be positive");
  }
  shards_.reserve(static_cast<std::size_t>(config.partitions));
  for (int p = 0; p < config.partitions; ++p) {
    shards_.push_back(std::make_unique<Shard>());
  }
  // Host policy: yield threads to the sweep pool, and never run more
  // workers than there are shards to drive.
  threads_ = sim::clamp_intra_run_threads(config.threads);
  if (threads_ > config.partitions) threads_ = config.partitions;
}

void ParEngine::post_cross(int from, int to, sim::Time t,
                           std::function<void()> fn) {
  // The conservative contract: nothing may cross a partition boundary with
  // less than the declared lookahead of simulated delay.  A violation here
  // is a modeling bug (the hand-off would have to be delivered into a
  // window that may already be running elsewhere).
  ICSIM_CHECK(t >= window_end_,
              "cross-partition post inside the current window (lookahead "
              "violation)");
  Shard& src = *shards_[static_cast<std::size_t>(from)];
  src.outbox.push_back(CrossMsg{t, to, src.out_seq++, std::move(fn)});
}

void ParEngine::run_window(int p) {
  shards_[static_cast<std::size_t>(p)]->engine.run_until(window_end_ -
                                                         sim::Time::ps(1));
}

void ParEngine::coordinate() {
  // Deliver every buffered cross-post in canonical order.  (t, src, seq) is
  // a total order — per-source sequence numbers are unique — so the
  // sequence numbers the destination engines hand out are independent of
  // worker scheduling, which is what keeps the merged digest thread-count
  // invariant.
  struct Ref {
    sim::Time t;
    int src;
    std::uint64_t seq;
    CrossMsg* msg;
  };
  std::vector<Ref> refs;
  for (int p = 0; p < partitions(); ++p) {
    for (CrossMsg& m : shards_[static_cast<std::size_t>(p)]->outbox) {
      refs.push_back(Ref{m.t, p, m.seq, &m});
    }
  }
  std::sort(refs.begin(), refs.end(), [](const Ref& a, const Ref& b) {
    if (a.t != b.t) return a.t < b.t;
    if (a.src != b.src) return a.src < b.src;
    return a.seq < b.seq;
  });
  for (Ref& r : refs) {
    shard(r.msg->to).post_at(r.t, std::move(r.msg->fn));
  }
  cross_posts_ += refs.size();
  for (auto& sh : shards_) sh->outbox.clear();

  // Open the next window at the earliest live event anywhere; quiesce when
  // every shard has drained.  next_event_time() drops (and counts) any
  // cancelled tombstones at the heads, so the window start is the time of
  // the next event that will actually execute.
  std::optional<sim::Time> start;
  for (auto& sh : shards_) {
    const std::optional<sim::Time> t = sh->engine.next_event_time();
    if (t.has_value() && (!start.has_value() || *t < *start)) start = t;
  }
  if (!start.has_value()) {
    done_ = true;
    return;
  }
  window_end_ = *start + lookahead_;
  ++windows_;
}

void ParEngine::run() {
  coordinate();  // open the first window from the initially scheduled events
  if (done_) return;

  if (threads_ <= 1) {
    // Same protocol, inline: identical window schedule, identical event
    // order, identical digest — single-threaded execution is just the
    // T == 1 point of the same algorithm.
    while (!done_) {
      for (int p = 0; p < partitions(); ++p) run_window(p);
      coordinate();
    }
    return;
  }

  // T workers drive a static round-robin slice of the shards each window;
  // the barrier's completion step is the single-threaded coordinator.  The
  // barrier provides the happens-before edges: outboxes written inside a
  // window are read by the coordinator only after every worker arrives, and
  // window_end_/done_ written by the coordinator are read by workers only
  // after it completes.
  std::barrier bar(threads_, [this]() noexcept { coordinate(); });
  auto worker = [this, &bar](int k) {
    for (;;) {
      for (int p = k; p < partitions(); p += threads_) run_window(p);
      bar.arrive_and_wait();
      if (done_) return;
    }
  };
  std::vector<std::thread> extra;
  extra.reserve(static_cast<std::size_t>(threads_ - 1));
  for (int k = 1; k < threads_; ++k) extra.emplace_back(worker, k);
  worker(0);
  for (std::thread& t : extra) t.join();
}

std::uint64_t ParEngine::event_digest() const {
  // Canonical partition merge: fold per-shard (digest, processed) in
  // partition index order.  Any reordering, extra, or missing event in any
  // shard changes the result.
  sim::check::Fnv1a f;
  for (const auto& sh : shards_) {
    f.fold(sh->engine.event_digest());
    f.fold(sh->engine.events_processed());
  }
  return f.value();
}

std::uint64_t ParEngine::events_processed() const {
  std::uint64_t total = 0;
  for (const auto& sh : shards_) total += sh->engine.events_processed();
  return total;
}

}  // namespace icsim::par
