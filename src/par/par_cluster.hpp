#pragma once
// Parallel cluster assembly: the intra-run-threaded counterpart of
// core::Cluster for large-scale collective extrapolation.
//
// A ParCluster takes the same core::ClusterConfig a Cluster does, but runs
// its workload on the conservatively synchronized ParEngine: the fabric is
// partition-sharded (sharded_fabric.hpp) and the ranks are event-driven
// state machines (collective.hpp) instead of fibers.  This is what makes
// 8192-node points tractable — the fiber tier allocates per-rank stacks and
// O(n^2) connection state, and its fibers pin the whole simulation to one
// thread.
//
// Scope: ppn == 1, InfiniBand or Quadrics, barrier/allreduce workloads, and
// fault plans consisting only of link-down windows (evaluated as pure time
// functions; BER draws and node stalls would need RNG/state shared across
// shards and are rejected).  The ClusterConfig::intra_run_threads knob
// selects the worker count — pure host policy: the run's event_digest is
// byte-identical for any thread count, and CI enforces -j1 == -j8 on the
// fig8_simulated scenarios (docs/MODEL.md section 14).
//
// Environment override: ICSIM_PAR_THREADS (honored when
// ClusterConfig::env_overrides is set, like ICSIM_TRACE / ICSIM_FAULTS)
// forces the thread count without a rebuild — how the CI digest matrix
// drives the same binary at 1/2/4/8 threads.

#include <cstdint>
#include <memory>

#include "core/cluster.hpp"
#include "par/collective.hpp"
#include "par/par_engine.hpp"
#include "par/sharded_fabric.hpp"

namespace icsim::par {

/// Per-message cost model derived from the network's NIC config: IB charges
/// the HCA's WQE fetch/execute per send and CQE retirement per receive;
/// Elan charges the PIO descriptor post + NIC thread tx service per send
/// and envelope processing + completion write per receive.  The chunk
/// granularity follows each stack's DES pipeline granularity.
[[nodiscard]] ParNetParams params_for(const core::ClusterConfig& config);

struct ParRunStats {
  std::uint64_t events_processed = 0;
  /// Canonical partition-merge digest (ParEngine::event_digest) —
  /// thread-count invariant; "same seed, same partitions => same digest".
  std::uint64_t event_digest = 0;
  std::uint64_t fabric_chunks = 0;
  std::uint64_t messages = 0;              ///< point-to-point sends
  std::uint64_t cross_posts = 0;           ///< partition hand-offs
  std::uint64_t windows = 0;               ///< barrier windows executed
  std::uint64_t chunks_rerouted = 0;
  std::uint64_t chunks_dropped_link_down = 0;
  double simulated_us = 0.0;               ///< last rank's completion time
  int partitions = 0;
  /// Worker threads actually used.  Host-dependent — keep it OUT of sweep
  /// metrics/digests (the determinism-taint boundary).
  int threads_used = 0;
};

class ParCluster {
 public:
  /// `partitions` <= 0 selects the default (kDefaultPartitions, clamped by
  /// the topology).  The partition count is part of the model's identity —
  /// the digest depends on it — so it must come from config/topology only.
  explicit ParCluster(const core::ClusterConfig& config, int partitions = 0);
  ParCluster(const ParCluster&) = delete;
  ParCluster& operator=(const ParCluster&) = delete;

  /// Fixed default shard count.  Deliberately a constant (not derived from
  /// the host): changing it changes per-shard event numbering and hence the
  /// digest.
  static constexpr int kDefaultPartitions = 8;

  /// Run the collective workload to completion and report.  One run per
  /// ParCluster (like core::Cluster, state is not reset).  Throws on
  /// communication deadlock (e.g. a fault plan that partitioned the
  /// fabric).
  ParRunStats run(const CollectiveSpec& spec);

  [[nodiscard]] int partitions() const { return engine_->partitions(); }
  [[nodiscard]] int threads_used() const { return engine_->threads_used(); }
  [[nodiscard]] ParEngine& engine() { return *engine_; }
  [[nodiscard]] ShardedFabric& fabric() { return *fabric_; }
  [[nodiscard]] const core::ClusterConfig& config() const { return cfg_; }

 private:
  core::ClusterConfig cfg_;
  std::unique_ptr<ParEngine> engine_;
  std::unique_ptr<ShardedFabric> fabric_;
  std::unique_ptr<CollectiveWorld> world_;
};

}  // namespace icsim::par
