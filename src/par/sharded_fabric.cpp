#include "par/sharded_fabric.hpp"

#include <cassert>
#include <stdexcept>
#include <utility>

#include "sim/check.hpp"

namespace icsim::par {

ShardedFabric::ShardedFabric(ParEngine& engine, const net::FabricConfig& config,
                             int num_nodes, Partitioning partitioning)
    : par_(engine),
      cfg_(config),
      topo_(config.radix_down, config.levels),
      num_nodes_(num_nodes),
      parts_(std::move(partitioning)) {
  if (num_nodes > topo_.capacity()) {
    throw std::invalid_argument(
        "ShardedFabric: more nodes than the tree can attach");
  }
  if (parts_.parts != engine.partitions()) {
    throw std::invalid_argument(
        "ShardedFabric: partitioning does not match the engine's shard count");
  }
  shards_.reserve(static_cast<std::size_t>(parts_.parts));
  for (int p = 0; p < parts_.parts; ++p) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

sim::Time ShardedFabric::serialization_time(std::uint32_t bytes) const {
  return cfg_.link_bandwidth.transfer_time(wire_bytes(bytes));
}

std::uint64_t ShardedFabric::wire_bytes(std::uint32_t bytes) const {
  const std::uint64_t packets =
      bytes == 0 ? 1 : (bytes + cfg_.mtu_bytes - 1) / cfg_.mtu_bytes;
  return static_cast<std::uint64_t>(bytes) + packets * cfg_.header_bytes;
}

std::uint64_t ShardedFabric::key_of(const net::Hop& hop) const {
  switch (hop.kind) {
    case net::Hop::Kind::node_to_switch:
      return (1ull << 63) | static_cast<std::uint64_t>(hop.node);
    case net::Hop::Kind::switch_to_node:
      return (1ull << 63) | (1ull << 62) | static_cast<std::uint64_t>(hop.node);
    case net::Hop::Kind::switch_to_switch:
      return (topo_.switch_id(hop.from) << 31) | topo_.switch_id(hop.to);
  }
  return 0;  // unreachable
}

std::string ShardedFabric::link_name(const net::Hop& hop) const {
  switch (hop.kind) {
    case net::Hop::Kind::node_to_switch:
      return "node" + std::to_string(hop.node) + "->sw";
    case net::Hop::Kind::switch_to_node:
      return "sw->node" + std::to_string(hop.node);
    case net::Hop::Kind::switch_to_switch:
      return "sw" + std::to_string(topo_.switch_id(hop.from)) + "->sw" +
             std::to_string(topo_.switch_id(hop.to));
  }
  return "link";
}

ShardedFabric::DirectedLink& ShardedFabric::link_for(Shard& shard,
                                                     const net::Hop& hop) {
  const std::uint64_t key = key_of(hop);
  auto it = shard.links.find(key);
  if (it == shard.links.end()) {
    it = shard.links
             .emplace(key, std::make_unique<DirectedLink>(
                               par_.shard(parts_.owner(hop)), link_name(hop),
                               hop))
             .first;
  }
  return *it->second;
}

void ShardedFabric::set_link_windows(
    std::vector<fault::LinkDownWindow> windows) {
  windows_ = std::move(windows);
}

bool ShardedFabric::link_down_at(const net::Hop& hop, sim::Time t) const {
  for (const fault::LinkDownWindow& w : windows_) {
    if (!w.link.covers(hop)) continue;
    const bool forever = w.up <= w.down;
    if (t >= w.down && (forever || t < w.up)) return true;
  }
  return false;
}

void ShardedFabric::forward(std::shared_ptr<std::vector<net::Hop>> route,
                            std::size_t index, std::uint32_t bytes,
                            DeliveredFn on_delivered) {
  const net::Hop& hop = (*route)[index];
  const int p = parts_.owner(hop);
  Shard& shard = *shards_[static_cast<std::size_t>(p)];
  sim::Engine& eng = par_.shard(p);

  // A link inside a down window swallows chunks already in flight (route
  // selection only protects the injection instant).  The loss is counted
  // here and never notified — see the header contract.
  if (!windows_.empty() && link_down_at(hop, eng.now())) {
    ++shard.down_drops;
    shard.bytes_dropped += bytes;
    --shard.in_flight_delta;
    return;
  }

  DirectedLink& link = link_for(shard, hop);
  const sim::Time ser = serialization_time(bytes);
  // Entering a switch costs its pipeline latency; the endpoint hop does not
  // (same rule as net::Fabric::forward).
  const sim::Time entry_latency = hop.kind == net::Hop::Kind::switch_to_node
                                      ? sim::Time::zero()
                                      : cfg_.switch_latency;
  const sim::Time tx_done = link.tx.acquire(ser);
  ++link.forwarded;
  const sim::Time arrival = tx_done + cfg_.wire_latency + entry_latency;

  if (index + 1 == route->size()) {
    // Final hop is switch_to_node, owned by the destination's partition —
    // delivery is always a local post, and the callback runs where the
    // destination's state lives.
    eng.post_at(arrival, [this, p, bytes,
                          on_delivered = std::move(on_delivered)]() mutable {
      Shard& dst = *shards_[static_cast<std::size_t>(p)];
      ++dst.delivered;
      dst.bytes_delivered += bytes;
      --dst.in_flight_delta;
      if (on_delivered) on_delivered();
    });
    return;
  }

  const int next_owner = parts_.owner((*route)[index + 1]);
  auto cont = [this, route = std::move(route), index, bytes,
               on_delivered = std::move(on_delivered)]() mutable {
    forward(std::move(route), index + 1, bytes, std::move(on_delivered));
  };
  if (next_owner == p) {
    eng.post_at(arrival, std::move(cont));
  } else {
    // The hand-off carries wire + switch latency of simulated delay —
    // exactly the engine's lookahead, so arrival >= window end always
    // (ParEngine::post_cross audits it).
    par_.post_cross(p, next_owner, arrival, std::move(cont));
  }
}

void ShardedFabric::inject(int src, int dst, std::uint32_t bytes,
                           DeliveredFn on_delivered) {
  assert(src != dst && "ShardedFabric::inject: local sends bypass the fabric");
  assert(src >= 0 && src < num_nodes_ && dst >= 0 && dst < num_nodes_);
  const int p = parts_.of_node(src);
  Shard& shard = *shards_[static_cast<std::size_t>(p)];
  ++shard.injected;
  shard.bytes_injected += bytes;
  ++shard.in_flight_delta;

  std::vector<net::Hop> path = topo_.route(src, dst);
  if (!windows_.empty()) {
    const sim::Time now = par_.shard(p).now();
    bool blocked = false;
    for (const net::Hop& hop : path) {
      if (link_down_at(hop, now)) {
        blocked = true;
        break;
      }
    }
    if (blocked) {
      path = topo_.route_avoiding(src, dst, [this, now](const net::Hop& hop) {
        return link_down_at(hop, now);
      });
      if (path.empty()) {
        // Fabric partitioned at the injection instant: the chunk is lost at
        // the source port (counted, never notified).
        ++shard.no_route_drops;
        ++shard.down_drops;
        shard.bytes_dropped += bytes;
        --shard.in_flight_delta;
        return;
      }
      ++shard.rerouted;
    }
  }
  forward(std::make_shared<std::vector<net::Hop>>(std::move(path)), 0, bytes,
          std::move(on_delivered));
}

std::uint64_t ShardedFabric::chunks_sent() const {
  std::uint64_t v = 0;
  for (const auto& s : shards_) v += s->injected;
  return v;
}
std::uint64_t ShardedFabric::chunks_delivered() const {
  std::uint64_t v = 0;
  for (const auto& s : shards_) v += s->delivered;
  return v;
}
std::uint64_t ShardedFabric::chunks_dropped_link_down() const {
  std::uint64_t v = 0;
  for (const auto& s : shards_) v += s->down_drops;
  return v;
}
std::uint64_t ShardedFabric::chunks_rerouted() const {
  std::uint64_t v = 0;
  for (const auto& s : shards_) v += s->rerouted;
  return v;
}
std::uint64_t ShardedFabric::chunks_no_route() const {
  std::uint64_t v = 0;
  for (const auto& s : shards_) v += s->no_route_drops;
  return v;
}

void ShardedFabric::audit_drained() const {
  std::int64_t in_flight = 0;
  std::uint64_t bytes_in = 0, bytes_out = 0, bytes_lost = 0;
  for (const auto& s : shards_) {
    in_flight += s->in_flight_delta;
    bytes_in += s->bytes_injected;
    bytes_out += s->bytes_delivered;
    bytes_lost += s->bytes_dropped;
  }
  ICSIM_CHECK(in_flight == 0,
              "sharded fabric drained with chunks still in flight");
  ICSIM_CHECK(chunks_sent() == chunks_delivered() + chunks_dropped_link_down(),
              "sharded fabric chunk conservation: injected != delivered + "
              "dropped");
  ICSIM_CHECK(bytes_in == bytes_out + bytes_lost,
              "sharded fabric byte conservation: injected != delivered + "
              "dropped");
}

}  // namespace icsim::par
