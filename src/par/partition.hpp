#pragma once
// Spatial partitioning of a fat tree for the conservative parallel engine.
//
// The cluster's nodes and switches are split into P contiguous slices by
// leaf-switch word: partition(w) = min(w / leaves_per_part, P - 1), and a
// node belongs to the partition of its leaf switch.  Upper-level switches
// inherit the partition of their word value (words at every level share the
// same n-1 digit space), so the mapping is a pure function of the topology
// and P — never of thread count, host, or environment.  That invariance is
// what lets the parallel engine promise a byte-identical event digest for
// any number of worker threads (docs/MODEL.md section 14).
//
// Node/leaf alignment is the load-bearing property: a node and its leaf
// switch are always co-located, so the endpoint hops of every route
// (node_to_switch, switch_to_node) are partition-internal.  Only
// switch-to-switch traversals can cross partitions, and each of those
// carries at least wire_latency + switch_latency of simulated delay — the
// engine's lookahead.

#include <vector>

#include "net/topology.hpp"

namespace icsim::par {

/// The node/switch -> partition map.  Built once per run by
/// make_partitioning(); all queries are O(1) table lookups.
struct Partitioning {
  int parts = 1;                ///< P, the number of partitions
  int leaves_per_part = 1;      ///< leaf words per slice (last slice larger)
  std::vector<int> node_part;   ///< node id -> partition

  /// Partition owning leaf/upper switch word `w`.
  [[nodiscard]] int of_word(std::uint32_t w) const {
    const int p = static_cast<int>(w) / leaves_per_part;
    return p < parts ? p : parts - 1;
  }
  [[nodiscard]] int of_node(int node) const {
    return node_part[static_cast<std::size_t>(node)];
  }
  [[nodiscard]] int of_switch(net::SwitchCoord c) const { return of_word(c.word); }

  /// Partition that owns (and therefore serializes) a directed hop: the
  /// transmitter side.  Endpoint hops belong to the node's partition; a
  /// switch-to-switch hop belongs to the sending switch's partition.
  [[nodiscard]] int owner(const net::Hop& hop) const {
    switch (hop.kind) {
      case net::Hop::Kind::node_to_switch:
      case net::Hop::Kind::switch_to_node:
        return of_node(hop.node);
      case net::Hop::Kind::switch_to_switch:
        return of_word(hop.from.word);
    }
    return 0;  // unreachable
  }
};

/// Build the partition map for `num_nodes` endpoints of `topo`, aiming for
/// `parts` slices.  The effective count is clamped to the number of leaf
/// switches actually populated (one slice cannot be thinner than one leaf)
/// and to num_nodes; it is deterministic given (topo, num_nodes, parts).
[[nodiscard]] Partitioning make_partitioning(const net::FatTreeTopology& topo,
                                             int num_nodes, int parts);

}  // namespace icsim::par
