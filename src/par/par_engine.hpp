#pragma once
// Conservatively synchronized parallel discrete-event engine.
//
// A ParEngine owns P partition shards, each a private single-threaded
// sim::Engine with its own queue, clock, sequence counter, and digest.  The
// shards advance in lockstep *windows* of width L, the lookahead — the
// minimum simulated delay any cross-partition interaction carries (for the
// fat-tree fabric: wire_latency + switch_latency, see sharded_fabric.hpp).
// Within a window [W, W+L) every shard runs its own events independently;
// any event one shard schedules into another is buffered in a per-source
// outbox and is guaranteed (ICSIM_CHECK-enforced) to carry a timestamp
// >= W+L, so no shard can receive work for simulated time it has already
// passed.  This is the classical null-message/conservative scheme collapsed
// onto a barrier: the barrier *is* the null message, carrying "nothing from
// me before W+L" from every shard to every other.
//
// Between windows a single coordinator (the barrier's completion step)
// delivers the buffered cross-posts in canonical order — sorted by
// (timestamp, source partition, per-source sequence) — so the sequence
// numbers each destination shard assigns are independent of which worker
// thread ran which shard and of how the OS scheduled them.  The merged
// event digest (per-shard digest + processed count folded in partition
// index order) is therefore byte-identical for ANY worker thread count:
// -j1 == -j8.  Tests, TSan CI, and the shared-state lint pass police this
// contract (docs/MODEL.md section 14).
//
// Thread-count is pure host policy: effective workers =
// sim::clamp_intra_run_threads(requested), never more than P.  It affects
// wall clock only, never simulated results.

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "sim/engine.hpp"
#include "sim/time.hpp"

namespace icsim::par {

struct ParConfig {
  /// Partition count P.  Part of the model's identity: the digest depends
  /// on it (each shard numbers its own events), so choose it from the
  /// workload/topology only — never from thread count or host properties.
  int partitions = 1;
  /// Requested worker threads; clamped against the driver's sweep pool via
  /// sim::clamp_intra_run_threads and against P.  Host policy only.
  int threads = 1;
  /// The synchronization horizon: minimum simulated delay of any
  /// cross-partition hand-off.  Must be positive.
  sim::Time lookahead = sim::Time::ns(1);
};

class ParEngine {
 public:
  explicit ParEngine(const ParConfig& config);
  ParEngine(const ParEngine&) = delete;
  ParEngine& operator=(const ParEngine&) = delete;

  [[nodiscard]] int partitions() const { return static_cast<int>(shards_.size()); }
  /// Effective worker threads this run will use (host-dependent; must never
  /// be folded into simulated time or reported metrics).
  [[nodiscard]] int threads_used() const { return threads_; }
  [[nodiscard]] sim::Time lookahead() const { return lookahead_; }

  /// The partition-private engine of shard `p`.  During run() a shard's
  /// engine may only be touched from the worker currently driving `p`.
  [[nodiscard]] sim::Engine& shard(int p) {
    return shards_[static_cast<std::size_t>(p)]->engine;
  }

  /// Schedule `fn` at absolute time `t` on shard `to`, called from shard
  /// `from`'s event code during a window.  The conservative contract —
  /// audited under ICSIM_CHECK — is t >= current window end: a violation
  /// means a model component hands simulated work across partitions faster
  /// than the declared lookahead, which would make results depend on the
  /// window schedule.  Delivery happens at the next barrier, in canonical
  /// (t, from, per-source seq) order.
  void post_cross(int from, int to, sim::Time t, std::function<void()> fn);

  /// Run all shards to global quiescence (every queue drained).  Spawns
  /// threads_used() - 1 extra workers; with one thread the same window
  /// protocol runs inline, executing the identical event schedule.
  void run();

  /// Canonical partition-merge digest: per-shard (event_digest,
  /// events_processed) folded in partition index order.  Byte-identical for
  /// any thread count — the determinism contract of this subsystem.
  [[nodiscard]] std::uint64_t event_digest() const;
  /// Total events executed across shards.
  [[nodiscard]] std::uint64_t events_processed() const;
  /// Cross-partition messages delivered through the barrier windows.
  [[nodiscard]] std::uint64_t cross_posts() const { return cross_posts_; }
  /// Barrier windows executed (deterministic: a function of event times and
  /// lookahead only).
  [[nodiscard]] std::uint64_t windows() const { return windows_; }

 private:
  struct CrossMsg {
    sim::Time t;
    int to;
    std::uint64_t seq;  ///< per-source counter: canonical tie-break
    std::function<void()> fn;
  };
  struct Shard {
    sim::Engine engine;
    /// Written only by the worker driving this shard during a window; read
    /// and cleared by the coordinator between barriers (the barrier is the
    /// synchronization edge — no locks needed).
    std::vector<CrossMsg> outbox;
    std::uint64_t out_seq = 0;
  };

  /// Run shard `p`'s events up to (excluding) the current window end.
  void run_window(int p);
  /// Single-threaded inter-window step: deliver outboxes canonically, then
  /// open the next window (or set done_).  Runs inside the barrier's
  /// completion function — exactly one thread executes it per window.
  void coordinate();

  std::vector<std::unique_ptr<Shard>> shards_;
  sim::Time lookahead_;
  int threads_;
  sim::Time window_end_ = sim::Time::zero();  ///< exclusive end of the window
  bool done_ = false;
  std::uint64_t windows_ = 0;
  std::uint64_t cross_posts_ = 0;
};

}  // namespace icsim::par
