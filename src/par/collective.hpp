#pragma once
// Event-driven collective workloads for the parallel engine.
//
// The fiber-based MPI tier (src/mpi/ + core::Cluster::run) cannot be
// partitioned: its ucontext fibers must resume on the thread that created
// them, and the transports' completion callbacks touch source- and
// destination-side state in one engine.  The parallel tier therefore runs
// collectives as *rank state machines*: each rank is plain per-partition
// data advanced by delivery events, so a rank's state is only ever touched
// by event code running in its own partition — no fibers, no shared
// mutable state, nothing for a worker thread to race on.
//
// Two operations, the ones the study's Figures scale with node count:
//   * barrier   — dissemination: ceil(log2 n) rounds, round k sends to
//                 (r + 2^k) mod n and waits on (r - 2^k) mod n;
//   * allreduce — recursive doubling over the largest power-of-two block,
//                 with fold-in/fold-out steps for the remainder ranks.
//
// Timing is an LogGP-style per-message model calibrated from the same NIC
// configs the full stacks use (params_for in par_cluster.hpp): a send
// serializes send_overhead on the rank's CPU, the chunk(s) traverse the
// sharded fabric, and the receiver serializes recv_overhead (+ reduce_cost
// when combining) before its state machine advances.  Coarser than the
// full HCA/Elan models — no eager/rendezvous switch, no registration
// cache, no NIC thread contention — but it preserves the two fabric- and
// overhead-level effects Figure 8's extrapolation rests on: per-message
// host/NIC overhead (IB's WQE cost vs Elan's PIO post) and per-hop switch
// latency compounding with tree depth.

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "par/par_engine.hpp"
#include "par/partition.hpp"
#include "par/sharded_fabric.hpp"
#include "sim/resource.hpp"
#include "sim/time.hpp"

namespace icsim::par {

enum class Collective { barrier, allreduce };

[[nodiscard]] inline const char* to_string(Collective c) {
  switch (c) {
    case Collective::barrier: return "barrier";
    case Collective::allreduce: return "allreduce";
  }
  return "?";
}

struct CollectiveSpec {
  Collective op = Collective::barrier;
  std::uint32_t bytes = 8;  ///< allreduce payload per rank (barrier ignores)
  int iterations = 1;       ///< back-to-back repetitions per rank
};

/// Per-message cost model of one network's host/NIC stack (see the header
/// comment; built from ib::HcaConfig / elan::ElanConfig by params_for).
struct ParNetParams {
  sim::Time send_overhead;  ///< CPU/NIC occupancy to put a message on the wire
  sim::Time recv_overhead;  ///< occupancy to take a delivery off the wire
  sim::Time reduce_cost;    ///< combining cost per received allreduce message
  std::uint32_t chunk_bytes = 2048;  ///< fabric pipeline granularity
  std::uint32_t ctrl_bytes = 64;     ///< wire size of a payload-less envelope
};

/// One rank per node (ppn == 1), each a state machine living in its node's
/// partition.  Construct, then start(); completion is reached when the
/// engine drains — check all_done() afterwards (a false return with a
/// drained engine is a communication deadlock, e.g. a fault plan that
/// partitioned the fabric).
class CollectiveWorld {
 public:
  CollectiveWorld(ParEngine& engine, ShardedFabric& fabric,
                  const ParNetParams& params);

  /// Schedule every rank's first iteration at t = 0.  Call once, before
  /// ParEngine::run().
  void start(const CollectiveSpec& spec);

  // Post-run accessors (aggregate per-rank state; single-threaded only).
  [[nodiscard]] bool all_done() const;
  /// Ranks that finished every iteration (== ranks() when all_done()).
  [[nodiscard]] int ranks_done() const;
  [[nodiscard]] int ranks() const { return static_cast<int>(ranks_.size()); }
  /// Simulated instant the last rank finished its last iteration.
  [[nodiscard]] sim::Time completion_time() const;
  /// Point-to-point messages sent across all ranks and iterations.
  [[nodiscard]] std::uint64_t messages_sent() const;

 private:
  struct Rank {
    int id = 0;
    int part = 0;
    std::unique_ptr<sim::FifoResource> cpu;  ///< serializes send/recv overhead
    int iter = 0;   ///< current iteration
    int phase = 0;  ///< allreduce: 0 fold-in, 1 doubling, 2 fold-out
    int round = 0;  ///< round within the phase
    bool done = false;
    sim::Time finished = sim::Time::zero();
    std::uint64_t sent = 0;
    /// Fully arrived messages by key, possibly ahead of this rank's
    /// progress (a fast peer's round k+1 message can land while we wait on
    /// round k); consumed as the state machine advances.
    std::map<std::uint64_t, int> arrived;
    /// Chunks received per in-flight multi-chunk message.
    std::map<std::uint64_t, std::uint32_t> chunks_got;
  };

  /// Unique key of the single message a rank expects at (iter, phase,
  /// round) — each slot has exactly one sender in both algorithms.
  [[nodiscard]] static std::uint64_t key_of(int iter, int phase, int round) {
    return (static_cast<std::uint64_t>(iter) << 10) |
           (static_cast<std::uint64_t>(phase) << 6) |
           static_cast<std::uint64_t>(round);
  }

  void send(Rank& from, int to, int iter, int phase, int round,
            std::uint32_t bytes);
  void on_chunk(int dst, std::uint64_t key, std::uint32_t nchunks, int phase);
  void on_message(Rank& r, std::uint64_t key);
  /// Advance `r` as far as arrived messages allow; performs the sends each
  /// new state requires.
  void advance(Rank& r);
  void begin_iteration(Rank& r);
  void finish_iteration(Rank& r);
  /// Consume the message for the given slot if it has arrived.
  [[nodiscard]] bool take(Rank& r, int phase, int round);

  ParEngine& par_;
  ShardedFabric& fabric_;
  ParNetParams prm_;
  CollectiveSpec spec_;
  int rounds_ = 0;     ///< barrier: ceil(log2 n); allreduce: log2 of block
  int pow2_ranks_ = 1; ///< largest power of two <= n (allreduce block)
  std::vector<std::unique_ptr<Rank>> ranks_;
};

}  // namespace icsim::par
