#include "par/par_cluster.hpp"

#include <cstdlib>
#include <stdexcept>
#include <string>

namespace icsim::par {

ParNetParams params_for(const core::ClusterConfig& config) {
  ParNetParams p;
  switch (config.network) {
    case core::Network::infiniband:
      p.send_overhead = config.hca.send_wqe_cost;
      p.recv_overhead = config.hca.send_cqe_cost;
      p.chunk_bytes = config.hca.chunk_bytes;
      break;
    case core::Network::quadrics:
      p.send_overhead = config.elan.host_post_cost + config.elan.nic_tx_cost;
      p.recv_overhead = config.elan.nic_rx_base + config.elan.completion_cost;
      p.chunk_bytes = config.elan.chunk_bytes;
      p.ctrl_bytes = config.elan.ctrl_bytes;
      break;
    case core::Network::myrinet:
      throw std::invalid_argument(
          "ParCluster: Myrinet is not calibrated for the parallel tier");
  }
  // Combining cost: one cache line's worth of ALU work per received vector,
  // charged on the host CPU for both stacks (the paper's collectives reduce
  // small payloads, so this term is latency- not bandwidth-relevant).
  p.reduce_cost = sim::Time::ns(50);
  return p;
}

ParCluster::ParCluster(const core::ClusterConfig& config, int partitions)
    : cfg_(config) {
  if (cfg_.ppn != 1) {
    throw std::invalid_argument(
        "ParCluster: the parallel tier models one rank per node (ppn == 1)");
  }
  // Fault-plan scope check: only link-down windows are representable as
  // pure functions of simulated time.  Everything else needs shared mutable
  // state across shards and is rejected rather than silently ignored.
  const fault::FaultPlan& fp = cfg_.faults;
  if (fp.ber != 0.0 || !fp.link_ber.empty() || !fp.stalls.empty() ||
      fp.watchdog != sim::Time::zero()) {
    throw std::invalid_argument(
        "ParCluster: fault plans are limited to link down/up windows in the "
        "parallel tier (no BER, stalls, or watchdog)");
  }

  const net::FabricConfig fc =
      core::fabric_config_for(cfg_.network, cfg_.nodes);
  const net::FatTreeTopology topo(fc.radix_down, fc.levels);
  if (partitions <= 0) partitions = kDefaultPartitions;
  Partitioning parts = make_partitioning(topo, cfg_.nodes, partitions);

  int threads = cfg_.intra_run_threads;
  if (cfg_.env_overrides) {
    if (const char* env = std::getenv("ICSIM_PAR_THREADS")) {
      threads = std::atoi(env);
      if (threads < 1) threads = 1;
    }
  }

  ParConfig pc;
  pc.partitions = parts.parts;
  pc.threads = threads;
  pc.lookahead = ShardedFabric::lookahead_of(fc);
  engine_ = std::make_unique<ParEngine>(pc);
  fabric_ = std::make_unique<ShardedFabric>(*engine_, fc, cfg_.nodes,
                                            std::move(parts));
  if (!fp.link_windows.empty()) {
    fabric_->set_link_windows(fp.link_windows);
  }
  world_ = std::make_unique<CollectiveWorld>(*engine_, *fabric_,
                                             params_for(cfg_));
}

ParRunStats ParCluster::run(const CollectiveSpec& spec) {
  world_->start(spec);
  engine_->run();
  fabric_->audit_drained();
  if (!world_->all_done()) {
    throw std::runtime_error(
        "ParCluster::run: deadlock — " +
        std::to_string(world_->ranks() - world_->ranks_done()) + " of " +
        std::to_string(world_->ranks()) + " ranks never finished");
  }
  ParRunStats st;
  st.events_processed = engine_->events_processed();
  st.event_digest = engine_->event_digest();
  st.fabric_chunks = fabric_->chunks_sent();
  st.messages = world_->messages_sent();
  st.cross_posts = engine_->cross_posts();
  st.windows = engine_->windows();
  st.chunks_rerouted = fabric_->chunks_rerouted();
  st.chunks_dropped_link_down = fabric_->chunks_dropped_link_down();
  st.simulated_us = world_->completion_time().to_us();
  st.partitions = engine_->partitions();
  st.threads_used = engine_->threads_used();
  return st;
}

}  // namespace icsim::par
