#include "mpi/mvapich_transport.hpp"

#include <cassert>
#include <cstring>
#include <stdexcept>
#include <string>

#include "trace/trace.hpp"

namespace icsim::mpi {

MvapichTransport::MvapichTransport(sim::Engine& engine, int rank,
                                   node::Node& node, ib::Hca& hca,
                                   const MvapichConfig& config)
    : engine_(engine), rank_(rank), node_(node), hca_(hca), cfg_(config) {
  if (config.eager_threshold + config.envelope_bytes > config.vbuf_bytes) {
    throw std::invalid_argument(
        "MvapichTransport: eager_threshold + envelope must fit in a vbuf");
  }
  hca_.attach(rank_, [this](const ib::Delivery& d) { on_delivery(d); });
}

sim::Time MvapichTransport::init_world(
    const std::vector<MvapichTransport*>& world) {
  sim::Time per_rank_cost = sim::Time::zero();
  for (MvapichTransport* t : world) {
    t->peers_ = world;
    t->peer_state_.assign(world.size(), PeerState{});
    sim::Time cost = sim::Time::zero();
    for (MvapichTransport* peer : world) {
      if (peer == t) continue;
      t->peer_state_[static_cast<std::size_t>(peer->rank_)].credits =
          t->cfg_.ring_slots;
      // Reliable connection + pinning of this peer's eager ring.
      cost += t->hca_.connect(t->rank_, &peer->hca_, peer->rank_);
      cost += t->hca_.reg_cache().pin_permanent(
          static_cast<std::uint64_t>(t->cfg_.ring_slots) * t->cfg_.vbuf_bytes);
    }
    per_rank_cost = cost > per_rank_cost ? cost : per_rank_cost;
  }
  return per_rank_cost;
}

std::uint64_t MvapichTransport::ring_memory_bytes() const {
  const auto peers = peers_.empty() ? 0 : peers_.size() - 1;
  return static_cast<std::uint64_t>(peers) * 2 /*tx+rx*/ *
         static_cast<std::uint64_t>(cfg_.ring_slots) * cfg_.vbuf_bytes;
}

void MvapichTransport::charge(sim::Time t) {
  assert(sim::Fiber::current() != nullptr);
  if (t > sim::Time::zero()) sim::sleep_for(engine_, t);
}

void MvapichTransport::charge_host(sim::Time t) {
  // The service fiber of the independent-progress ablation models *ideal*
  // offloaded progress, so it is exempt from the host cache/FSB penalty;
  // protocol work done by the application CPU is not.
  const bool in_service =
      service_fiber_ && sim::Fiber::current() == service_fiber_.get();
  if (!in_service && node_.any_compute_active()) {
    t = t * cfg_.smp_host_penalty;
  }
  charge(t);
}

std::uint32_t MvapichTransport::wire_bytes(const WireMsg& m) const {
  switch (m.kind) {
    case WireMsg::Kind::eager:
      return static_cast<std::uint32_t>(m.bytes + cfg_.envelope_bytes);
    case WireMsg::Kind::rndv_data:
      return static_cast<std::uint32_t>(m.bytes + 16);
    case WireMsg::Kind::rts:
    case WireMsg::Kind::cts:
    case WireMsg::Kind::credit:
      return cfg_.ctrl_bytes;
  }
  return cfg_.ctrl_bytes;
}

std::uint32_t MvapichTransport::trace_component() {
  if (trace_id_ == 0) {
    trace_id_ = engine_.tracer().register_component(
        trace::Category::mpi, "rank" + std::to_string(rank_));
  }
  return trace_id_;
}

void MvapichTransport::trace_match(std::size_t scanned) {
  ICSIM_TRACE_WITH(engine_, tr) {
    const auto comp = trace_component();
    const auto t = engine_.now();
    tr.counter(trace::Category::mpi, comp, "unexpected_depth", t,
               static_cast<double>(matcher_.unexpected_depth()));
    tr.counter(trace::Category::mpi, comp, "posted_depth", t,
               static_cast<double>(matcher_.posted_depth()));
    if (uq_depth_stat_ == nullptr) {
      uq_depth_stat_ = &tr.metrics().stat("mpi.unexpected_depth");
      match_scan_stat_ = &tr.metrics().stat("mpi.match_scanned");
    }
    uq_depth_stat_->add(static_cast<double>(matcher_.unexpected_depth()));
    match_scan_stat_->add(static_cast<double>(scanned));
  }
}

// ---------------------------------------------------------------- sending

void MvapichTransport::post_send(const SendArgs& args) {
  const sim::Time t0 = engine_.now();
  charge(cfg_.o_send);
  auto m = std::make_shared<WireMsg>();
  m->src = rank_;
  m->dst = args.dst;
  m->tag = args.tag;
  m->context = args.context;
  m->bytes = args.bytes;

  if (args.bytes <= cfg_.eager_threshold) {
    // Eager: copy into the preregistered vbuf (host memory bus), then the
    // send is locally complete the moment it is on (or queued for) the wire.
    m->kind = WireMsg::Kind::eager;
    m->payload = std::make_shared<std::vector<std::byte>>(
        args.data, args.data + args.bytes);
    if (args.bytes > 0) node_.host_copy(args.bytes);
    m->sender_rec = 0;
    m->req_on_dispatch = args.req;
    send_ring_message(m, /*complete_req_on_post=*/false);
  } else {
    // Rendezvous: keep the record, ship an RTS; the payload is read
    // zero-copy when the CTS arrives.
    m->kind = WireMsg::Kind::rts;
    m->sender_rec = next_id_++;
    rndv_sends_.emplace(m->sender_rec, PendingSendRec{args});
    send_ring_message(m, /*complete_req_on_post=*/false);
  }
  // Host-side posting work (overheads + vbuf copy), before the HCA takes
  // over — the "o_send" layer of the latency budget.
  ICSIM_TRACE_WITH(engine_, tr) {
    tr.span(trace::Category::mpi, trace_component(),
            args.bytes <= cfg_.eager_threshold ? "send.eager" : "send.rndv",
            t0, engine_.now());
  }
}

void MvapichTransport::send_ring_message(const WireMsgPtr& m,
                                         bool complete_req_on_post) {
  (void)complete_req_on_post;
  PeerState& peer = peer_state_[static_cast<std::size_t>(m->dst)];
  if (peer.credits == 0 || !peer.stalled.empty()) {
    // No ring slot at the receiver (or earlier traffic already queued —
    // dispatching now would break MPI ordering).  Park it.
    peer.stalled.push_back(m);
    return;
  }
  dispatch_ring_message(m);
}

void MvapichTransport::dispatch_ring_message(const WireMsgPtr& m) {
  PeerState& peer = peer_state_[static_cast<std::size_t>(m->dst)];
  if (m->kind != WireMsg::Kind::credit) {
    assert(peer.credits > 0);
    --peer.credits;
  }
  m->piggyback_credits = peer.freed;
  peer.freed = 0;
  MvapichTransport& dst = *peers_[static_cast<std::size_t>(m->dst)];
  hca_.rdma_write(rank_, dst.hca_, m->dst, wire_bytes(*m), m, nullptr);
  if (m->req_on_dispatch) {
    m->req_on_dispatch->finish();
    m->req_on_dispatch.reset();
  }
}

void MvapichTransport::flush_stalled(int peer_rank) {
  PeerState& peer = peer_state_[static_cast<std::size_t>(peer_rank)];
  while (peer.credits > 0 && !peer.stalled.empty()) {
    WireMsgPtr m = peer.stalled.front();
    peer.stalled.pop_front();
    dispatch_ring_message(m);
  }
}

// --------------------------------------------------------------- receiving

void MvapichTransport::post_recv(const RecvArgs& args) {
  charge(cfg_.o_recv);
  PostedRecv p;
  p.context = args.context;
  p.src = args.src;
  p.tag = args.tag;
  p.id = next_id_++;

  auto result = matcher_.post(p);
  charge(cfg_.o_match_per_entry * static_cast<std::int64_t>(result.scanned));
  trace_match(result.scanned);
  if (!result.match) {
    posted_recvs_.emplace(p.id, PostedRecvRec{args});
    return;
  }
  // Matched something already here (unexpected).
  WireMsgPtr m = unexpected_.at(result.match->id);
  unexpected_.erase(result.match->id);
  if (m->kind == WireMsg::Kind::eager) {
    deliver_eager_payload(m, PostedRecvRec{args});
  } else {
    assert(m->kind == WireMsg::Kind::rts);
    accept_rts(m, PostedRecvRec{args});
  }
}

void MvapichTransport::deliver_eager_payload(const WireMsgPtr& m,
                                             const PostedRecvRec& rec) {
  if (m->bytes > rec.args.capacity) {
    throw std::runtime_error("MPI truncation: eager message larger than recv buffer");
  }
  if (m->bytes > 0) {
    node_.host_copy(m->bytes);  // copy out of the ring/unexpected buffer
    std::memcpy(rec.args.data, m->payload->data(), m->bytes);
  }
  rec.args.req->finish(Status{m->src, m->tag, m->bytes});
}

void MvapichTransport::accept_rts(const WireMsgPtr& rts, PostedRecvRec rec) {
  if (rts->bytes > rec.args.capacity) {
    throw std::runtime_error("MPI truncation: rendezvous message larger than recv buffer");
  }
  charge_host(cfg_.rndv_accept_cost);
  // Pin the application receive buffer (pin-down cache).  Identified by its
  // transfer envelope, not its host address — see ib/reg_cache.hpp.
  const sim::Time reg = hca_.reg_cache().acquire(
      ib::logical_buffer(false, rts->src, rts->tag, rts->context), rts->bytes);
  ICSIM_TRACE_WITH(engine_, tr) {
    tr.instant(trace::Category::regcache, trace_component(),
               reg > sim::Time::zero() ? "pin.miss" : "pin.hit",
               engine_.now(), reg.to_us());
  }
  charge(reg);

  const std::uint64_t receiver_rec = next_id_++;
  posted_recvs_.emplace(receiver_rec, std::move(rec));

  auto cts = std::make_shared<WireMsg>();
  cts->kind = WireMsg::Kind::cts;
  cts->src = rank_;
  cts->dst = rts->src;
  cts->context = rts->context;
  cts->sender_rec = rts->sender_rec;
  cts->receiver_rec = receiver_rec;
  send_ring_message(cts, false);
}

// ------------------------------------------------------------- progress

void MvapichTransport::on_delivery(const ib::Delivery& d) {
  pending_.push_back(std::static_pointer_cast<WireMsg>(d.cargo));
  if (blocked_ != nullptr && !wake_scheduled_) {
    wake_scheduled_ = true;
    engine_.post_in(sim::Time::zero(), [this] {
      wake_scheduled_ = false;
      if (blocked_ != nullptr) blocked_->resume();
    });
  }
  wake_service();
}

void MvapichTransport::enable_independent_progress() {
  if (service_fiber_) return;
  service_fiber_ = std::make_unique<sim::Fiber>([this] { service_loop(); });
  service_fiber_->resume();  // parks immediately
}

void MvapichTransport::service_loop() {
  for (;;) {
    if (pending_.empty() && local_completions_.empty()) {
      service_parked_ = true;
      sim::Fiber::yield();
      service_parked_ = false;
    } else {
      progress();
      if (!pending_.empty() || !local_completions_.empty()) {
        // progress() was already running in the rank's fiber; let the
        // engine settle and retry instead of spinning.
        sim::sleep_for(engine_, sim::Time::ns(100));
      }
    }
  }
}

void MvapichTransport::wake_service() {
  if (service_fiber_ && service_parked_ && !service_wake_scheduled_) {
    service_wake_scheduled_ = true;
    engine_.post_in(sim::Time::zero(), [this] {
      service_wake_scheduled_ = false;
      if (service_parked_) service_fiber_->resume();
    });
  }
}

void MvapichTransport::progress() {
  if (in_progress_) return;
  in_progress_ = true;
  while (!pending_.empty() || !local_completions_.empty()) {
    while (!local_completions_.empty()) {
      auto req = local_completions_.front();
      local_completions_.pop_front();
      charge(sim::Time::us(0.15));  // CQ poll + completion bookkeeping
      req->finish();
    }
    if (pending_.empty()) break;
    WireMsgPtr m = pending_.front();
    pending_.pop_front();
    handle(m);
  }
  in_progress_ = false;
}

void MvapichTransport::handle(const WireMsgPtr& m) {
  charge_host(cfg_.o_arrival);
  // Ring-slot bookkeeping: eager/rts/cts occupied a slot we now release.
  PeerState& peer = peer_state_[static_cast<std::size_t>(m->src)];
  peer.credits += m->piggyback_credits;
  const bool took_slot = m->kind == WireMsg::Kind::eager ||
                         m->kind == WireMsg::Kind::rts ||
                         m->kind == WireMsg::Kind::cts;

  switch (m->kind) {
    case WireMsg::Kind::eager:
      handle_eager(m);
      break;
    case WireMsg::Kind::rts:
      handle_rts(m);
      break;
    case WireMsg::Kind::cts:
      handle_cts(m);
      break;
    case WireMsg::Kind::rndv_data:
      handle_rndv_data(m);
      break;
    case WireMsg::Kind::credit:
      break;  // piggyback already harvested above
  }

  if (took_slot) {
    PeerState& p2 = peer_state_[static_cast<std::size_t>(m->src)];
    ++p2.freed;
    if (p2.freed >= cfg_.ring_slots / 2) {
      // Owed credits and no reverse traffic to piggyback on: explicit update.
      auto credit = std::make_shared<WireMsg>();
      credit->kind = WireMsg::Kind::credit;
      credit->src = rank_;
      credit->dst = m->src;
      dispatch_ring_message(credit);
    }
  }
  if (m->piggyback_credits > 0) flush_stalled(m->src);
}

void MvapichTransport::handle_eager(const WireMsgPtr& m) {
  Envelope env;
  env.context = m->context;
  env.src = m->src;
  env.tag = m->tag;
  env.bytes = m->bytes;
  env.id = next_id_++;
  auto result = matcher_.arrive(env);
  charge(cfg_.o_match_per_entry * static_cast<std::int64_t>(result.scanned));
  trace_match(result.scanned);
  if (result.match) {
    auto it = posted_recvs_.find(result.match->id);
    assert(it != posted_recvs_.end());
    PostedRecvRec rec = std::move(it->second);
    posted_recvs_.erase(it);
    deliver_eager_payload(m, rec);
  } else {
    // Copy out of the ring slot into an unexpected buffer to free the slot.
    if (m->bytes > 0) node_.host_copy(m->bytes);
    unexpected_.emplace(env.id, m);
  }
}

void MvapichTransport::handle_rts(const WireMsgPtr& m) {
  Envelope env;
  env.context = m->context;
  env.src = m->src;
  env.tag = m->tag;
  env.bytes = m->bytes;
  env.id = next_id_++;
  auto result = matcher_.arrive(env);
  charge(cfg_.o_match_per_entry * static_cast<std::int64_t>(result.scanned));
  trace_match(result.scanned);
  if (result.match) {
    auto it = posted_recvs_.find(result.match->id);
    assert(it != posted_recvs_.end());
    PostedRecvRec rec = std::move(it->second);
    posted_recvs_.erase(it);
    accept_rts(m, std::move(rec));
  } else {
    unexpected_.emplace(env.id, m);
  }
}

void MvapichTransport::handle_cts(const WireMsgPtr& m) {
  auto it = rndv_sends_.find(m->sender_rec);
  assert(it != rndv_sends_.end());
  PendingSendRec rec = std::move(it->second);
  rndv_sends_.erase(it);

  charge_host(cfg_.cts_handle_cost);
  // Pin the send buffer, then RDMA-write the payload zero-copy.
  const sim::Time reg = hca_.reg_cache().acquire(
      ib::logical_buffer(true, rec.args.dst, rec.args.tag, rec.args.context),
      rec.args.bytes);
  ICSIM_TRACE_WITH(engine_, tr) {
    tr.instant(trace::Category::regcache, trace_component(),
               reg > sim::Time::zero() ? "pin.miss" : "pin.hit",
               engine_.now(), reg.to_us());
  }
  charge(reg);

  auto data = std::make_shared<WireMsg>();
  data->kind = WireMsg::Kind::rndv_data;
  data->src = rank_;
  data->dst = m->src;
  data->context = rec.args.context;
  data->tag = rec.args.tag;
  data->bytes = rec.args.bytes;
  data->receiver_rec = m->receiver_rec;
  data->payload = std::make_shared<std::vector<std::byte>>(
      rec.args.data, rec.args.data + rec.args.bytes);

  MvapichTransport& dst = *peers_[static_cast<std::size_t>(data->dst)];
  auto req = rec.args.req;
  hca_.rdma_write(rank_, dst.hca_, data->dst, wire_bytes(*data), data,
                  [this, req] {
                    // Local completion surfaces only when this rank polls
                    // the CQ from inside an MPI call.
                    local_completions_.push_back(req);
                    if (blocked_ != nullptr && !wake_scheduled_) {
                      wake_scheduled_ = true;
                      engine_.post_in(sim::Time::zero(), [this] {
                        wake_scheduled_ = false;
                        if (blocked_ != nullptr) blocked_->resume();
                      });
                    }
                    wake_service();
                  });
}

void MvapichTransport::handle_rndv_data(const WireMsgPtr& m) {
  auto it = posted_recvs_.find(m->receiver_rec);
  assert(it != posted_recvs_.end());
  PostedRecvRec rec = std::move(it->second);
  posted_recvs_.erase(it);
  // The RDMA write already placed the data in the user buffer; no copy.
  std::memcpy(rec.args.data, m->payload->data(), m->bytes);
  rec.args.req->finish(Status{m->src, m->tag, m->bytes});
}

// ------------------------------------------------------------ completion

void MvapichTransport::wait(RequestState& req) {
  const bool watchdog = cfg_.watchdog_timeout > sim::Time::zero();
  if (cfg_.independent_progress) {
    // Ablation mode: the service fiber drives the protocol; waiting is a
    // sleep on the completion event, as on an offloaded NIC.
    progress();
    if (!req.complete) {
      if (watchdog) {
        sim::EventHandle wd =
            engine_.schedule_in(cfg_.watchdog_timeout, [this, rp = &req] {
              if (!rp->complete) {
                ++watchdog_timeouts_;
                rp->fail();
              }
            });
        req.trigger.wait();
        wd.cancel();  // immediate cancel keeps the aliased request safe
      } else {
        req.trigger.wait();
      }
    }
    return;
  }
  progress();
  const sim::Time deadline = engine_.now() + cfg_.watchdog_timeout;
  while (!req.complete) {
    if (watchdog && engine_.now() >= deadline) {
      ++watchdog_timeouts_;
      req.fail();
      break;
    }
    blocked_ = sim::Fiber::current();
    assert(blocked_ != nullptr);
    sim::EventHandle wake;
    if (watchdog) {
      // Make sure the spin loop regains control at the deadline even if no
      // delivery ever arrives to wake it.
      wake = engine_.schedule_at(deadline, [this] {
        if (blocked_ != nullptr) blocked_->resume();
      });
    }
    sim::Fiber::yield();
    blocked_ = nullptr;
    wake.cancel();
    progress();
  }
}

bool MvapichTransport::test(RequestState& req) {
  progress();
  return req.complete;
}

bool MvapichTransport::iprobe(int src, int tag, int context, Status* st) {
  progress();  // host matching: unexpected queue is only fresh inside MPI
  PostedRecv probe_for;
  probe_for.context = context;
  probe_for.src = src;
  probe_for.tag = tag;
  const auto hit = matcher_.probe(probe_for);
  if (!hit) return false;
  if (st != nullptr) *st = Status{hit->src, hit->tag, hit->bytes};
  return true;
}

}  // namespace icsim::mpi
