#pragma once
// Quadrics-MPI-style transport over the Elan-4 Tports model.
//
// Tports already provides two-sided tagged messaging with matching,
// unexpected buffering and completion — all on the NIC — so this adapter is
// thin: it charges the host-side posting overheads, moves bytes between
// user buffers and Tports payloads, and sleeps on completion events.
// Blocking waits do NOT drive any protocol: the NIC makes progress whether
// or not this rank is inside an MPI call (independent progress), which is
// the paper's central contrast with the MVAPICH transport.

#include <memory>
#include <vector>

#include "elan/tports.hpp"
#include "mpi/transport.hpp"
#include "node/node.hpp"
#include "sim/engine.hpp"

namespace icsim::mpi {

struct QuadricsConfig {
  /// Host-side cost per MPI-level post on top of the NIC descriptor write.
  sim::Time o_send = sim::Time::us(0.12);
  sim::Time o_recv = sim::Time::us(0.12);
  /// Host cost to pick a completion out of the event queue.
  sim::Time o_complete = sim::Time::us(0.08);
  /// Watchdog for blocking waits: when nonzero, a wait with no completion
  /// for this long fails the request and counts a timeout instead of
  /// blocking forever.  Zero (default) keeps waits unbounded.
  sim::Time watchdog_timeout = sim::Time::zero();
};

class QuadricsTransport final : public Transport {
 public:
  QuadricsTransport(sim::Engine& engine, int rank, node::Node& node,
                    elan::ElanNic& nic, const QuadricsConfig& config)
      : engine_(engine), rank_(rank), node_(node), nic_(nic), cfg_(config) {
    nic_.attach_rank(rank_);
  }

  /// Tports is connectionless: init is just capability setup, a constant
  /// cost independent of job size (Section 3.3.1).
  [[nodiscard]] static sim::Time init_world(
      const std::vector<QuadricsTransport*>& world) {
    for (QuadricsTransport* t : world) t->world_size_ = static_cast<int>(world.size());
    return sim::Time::us(200);
  }

  void post_send(const SendArgs& args) override;
  void post_recv(const RecvArgs& args) override;
  void wait(RequestState& req) override;
  bool test(RequestState& req) override { return req.complete; }
  bool iprobe(int src, int tag, int context, Status* st) override {
    charge(cfg_.o_complete);  // host reads NIC queue state
    const auto hit = nic_.probe(rank_, src, tag, context);
    if (!hit) return false;
    if (st != nullptr) *st = Status{hit->src, hit->tag, hit->bytes};
    return true;
  }
  void progress() override {}  // independent progress: nothing to drive
  [[nodiscard]] int rank() const override { return rank_; }
  [[nodiscard]] int size() const override { return world_size_; }

  [[nodiscard]] elan::ElanNic& nic() { return nic_; }
  /// Requests failed by the wait watchdog on this rank.
  [[nodiscard]] std::uint64_t watchdog_timeouts() const {
    return watchdog_timeouts_;
  }

 private:
  void charge(sim::Time t) {
    if (t > sim::Time::zero()) sim::sleep_for(engine_, t);
  }
  /// Lazily registered trace component ("rank<r>").
  std::uint32_t trace_component();

  sim::Engine& engine_;
  int rank_;
  node::Node& node_;
  elan::ElanNic& nic_;
  QuadricsConfig cfg_;
  int world_size_ = 0;
  std::uint32_t trace_id_ = 0;
  std::uint64_t watchdog_timeouts_ = 0;
};

}  // namespace icsim::mpi
