#pragma once
// MPI message matching engine.
//
// Implements the standard two-queue scheme: a posted-receive queue and an
// unexpected-envelope queue, both searched in order, with wildcard source
// and tag on the receive side.  The *same* logic runs in two very different
// places in the two networks under study — on the host CPU inside MVAPICH's
// progress engine, and on the Elan-4 NIC thread inside Tports — so it is
// factored out here and each transport charges its own per-entry search
// cost using the scan counts this class reports.

#include <cstddef>
#include <cstdint>
#include <functional>
#include <list>
#include <optional>

#include "mpi/types.hpp"

namespace icsim::mpi {

/// A receive posted by the application, waiting for a matching envelope.
struct PostedRecv {
  int context = kWorldContext;
  int src = kAnySource;  ///< kAnySource matches any sender
  int tag = kAnyTag;     ///< kAnyTag matches any tag
  std::uint64_t id = 0;  ///< transport-assigned handle
};

/// The envelope of an arrived message (eager payload or rendezvous RTS).
struct Envelope {
  int context = kWorldContext;
  int src = 0;
  int tag = 0;
  std::size_t bytes = 0;
  std::uint64_t id = 0;  ///< transport-assigned handle
};

/// Outcome of a match attempt, with the number of queue entries the search
/// walked (transports convert this into host or NIC-thread time).
template <typename T>
struct MatchResult {
  std::optional<T> match;
  std::size_t scanned = 0;
};

class Matcher {
 public:
  /// An envelope arrived: search posted receives in post order.
  /// On a match the posted receive is consumed; otherwise the envelope is
  /// appended to the unexpected queue.
  MatchResult<PostedRecv> arrive(const Envelope& env);

  /// A receive was posted: search the unexpected queue in arrival order.
  /// On a match the envelope is consumed; otherwise the posting is appended
  /// to the posted queue.
  MatchResult<Envelope> post(const PostedRecv& recv);

  /// Non-destructive probe: would this posting match an unexpected message?
  [[nodiscard]] std::optional<Envelope> probe(const PostedRecv& recv) const;

  /// Remove a posted receive (used for cancel); true if found.
  bool cancel_posted(std::uint64_t id);

  [[nodiscard]] std::size_t posted_depth() const { return posted_.size(); }
  [[nodiscard]] std::size_t unexpected_depth() const { return unexpected_.size(); }
  [[nodiscard]] std::size_t max_unexpected_depth() const { return max_unexpected_; }

  [[nodiscard]] static bool matches(const PostedRecv& r, const Envelope& e) {
    return r.context == e.context && (r.src == kAnySource || r.src == e.src) &&
           (r.tag == kAnyTag || r.tag == e.tag);
  }

 private:
  std::list<PostedRecv> posted_;
  std::list<Envelope> unexpected_;
  std::size_t max_unexpected_ = 0;
};

}  // namespace icsim::mpi
