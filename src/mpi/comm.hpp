#pragma once
// Sub-communicators (MPI_Comm_split essentials).
//
// A Comm is a view over a subset of world ranks with its own matching
// context, so traffic inside one communicator can never match traffic in
// another even with identical tags.  Point-to-point goes through the
// owning rank's Mpi with rank translation; the collectives the
// applications need are reimplemented over the translated group.

#include <algorithm>
#include <cstring>
#include <memory>
#include <vector>

#include "mpi/mpi.hpp"

namespace icsim::mpi {

class Comm {
 public:
  /// The world communicator for a rank.
  explicit Comm(Mpi& mpi)
      : mpi_(&mpi), context_(kWorldContext), my_index_(mpi.rank()) {
    members_.resize(static_cast<std::size_t>(mpi.size()));
    for (int r = 0; r < mpi.size(); ++r) members_[static_cast<std::size_t>(r)] = r;
  }

  [[nodiscard]] int rank() const { return my_index_; }
  [[nodiscard]] int size() const { return static_cast<int>(members_.size()); }
  [[nodiscard]] Mpi& base() { return *mpi_; }

  /// MPI_Comm_split over THIS communicator (collective).  Ranks with the
  /// same color form a new communicator; `key` orders them (ties broken by
  /// old rank).  Returns the caller's new communicator.
  [[nodiscard]] Comm split(int color, int key) {
    // Gather (color, key) pairs across the group.
    std::vector<int> mine = {color, key};
    std::vector<int> all(static_cast<std::size_t>(2 * size()));
    allgather_int(mine.data(), 2, all.data());

    struct Entry {
      int color, key, old_index;
    };
    std::vector<Entry> same;
    for (int r = 0; r < size(); ++r) {
      const int c = all[static_cast<std::size_t>(2 * r)];
      if (c == color) {
        same.push_back({c, all[static_cast<std::size_t>(2 * r + 1)], r});
      }
    }
    std::stable_sort(same.begin(), same.end(), [](const Entry& a, const Entry& b) {
      return a.key != b.key ? a.key < b.key : a.old_index < b.old_index;
    });

    Comm result(*mpi_, /*private_tag=*/0);
    result.context_ = next_context_id();
    result.members_.clear();
    for (std::size_t i = 0; i < same.size(); ++i) {
      result.members_.push_back(
          members_[static_cast<std::size_t>(same[i].old_index)]);
      if (same[i].old_index == my_index_) {
        result.my_index_ = static_cast<int>(i);
      }
    }
    return result;
  }

  // ------------------------------------------------------- point to point

  void send(const void* data, std::size_t bytes, int dst, int tag) {
    mpi_->send(data, bytes, world_rank(dst), tag, context_);
  }
  Status recv(void* data, std::size_t capacity, int src = kAnySource,
              int tag = kAnyTag) {
    const int wsrc = src == kAnySource ? kAnySource : world_rank(src);
    Status st = mpi_->recv(data, capacity, wsrc, tag, context_);
    st.source = group_rank(st.source);
    return st;
  }
  Request isend(const void* data, std::size_t bytes, int dst, int tag) {
    return mpi_->isend(data, bytes, world_rank(dst), tag, context_);
  }
  Request irecv(void* data, std::size_t capacity, int src = kAnySource,
                int tag = kAnyTag) {
    const int wsrc = src == kAnySource ? kAnySource : world_rank(src);
    return mpi_->irecv(data, capacity, wsrc, tag, context_);
  }
  void wait(Request& r) { mpi_->wait(r); }

  // ---------------------------------------------------------- collectives

  void barrier() {
    const int tag = next_tag();
    char token = 0;
    for (int k = 1; k < size(); k <<= 1) {
      const int to = (my_index_ + k) % size();
      const int from = (my_index_ - k + size()) % size();
      mpi_->sendrecv(&token, 1, world_rank(to), tag, &token, 1,
                     world_rank(from), tag, context_);
    }
  }

  template <typename T>
  void bcast(T* data, std::size_t n, int root) {
    if (size() == 1) return;
    const int tag = next_tag();
    const int vrank = (my_index_ - root + size()) % size();
    int mask = 1;
    while (mask < size()) {
      if ((vrank & mask) != 0) {
        const int src = ((vrank - mask) + root) % size();
        (void)mpi_->recv(data, n * sizeof(T), world_rank(src), tag, context_);
        break;
      }
      mask <<= 1;
    }
    mask >>= 1;
    while (mask > 0) {
      if (vrank + mask < size()) {
        const int dst = (vrank + mask + root) % size();
        mpi_->send(data, n * sizeof(T), world_rank(dst), tag, context_);
      }
      mask >>= 1;
    }
  }

  template <typename T>
  [[nodiscard]] T allreduce(T value, ReduceOp op) {
    // Tree reduce to group root, then broadcast.
    const int tag = next_tag();
    T acc = value;
    int mask = 1;
    while (mask < size()) {
      if ((my_index_ & mask) != 0) {
        mpi_->send(&acc, sizeof(T), world_rank(my_index_ - mask), tag, context_);
        break;
      }
      if (my_index_ + mask < size()) {
        T in{};
        (void)mpi_->recv(&in, sizeof(T), world_rank(my_index_ + mask), tag,
                         context_);
        switch (op) {
          case ReduceOp::sum: acc = acc + in; break;
          case ReduceOp::min: acc = in < acc ? in : acc; break;
          case ReduceOp::max: acc = acc < in ? in : acc; break;
          case ReduceOp::prod: acc = acc * in; break;
        }
      }
      mask <<= 1;
    }
    bcast(&acc, 1, 0);
    return acc;
  }

 private:
  Comm(Mpi& mpi, int) : mpi_(&mpi) {}

  [[nodiscard]] int world_rank(int group_idx) const {
    return members_.at(static_cast<std::size_t>(group_idx));
  }
  [[nodiscard]] int group_rank(int world) const {
    for (std::size_t i = 0; i < members_.size(); ++i) {
      if (members_[i] == world) return static_cast<int>(i);
    }
    return kAnySource;
  }
  [[nodiscard]] int next_tag() { return static_cast<int>(seq_++ & 0xffffff); }

  /// Context id for a child communicator.  split() is collective and every
  /// member's Comm object carries identical logical state (context and
  /// split count), so all members derive the same id with no extra
  /// communication.  Sibling groups of one split share the id — they are
  /// rank-disjoint, so their traffic can never cross-match.  Ids live in a
  /// band below the collective-context offset.
  [[nodiscard]] int next_context_id() {
    ++splits_;
    return 10'000 + context_ * 131 + splits_ * 7919;
  }

  /// Ring allgather of `n` ints per member over this communicator.
  void allgather_int(const int* in, int n, int* out) {
    std::memcpy(out + static_cast<std::ptrdiff_t>(my_index_) * n, in,
                static_cast<std::size_t>(n) * sizeof(int));
    const int tag = next_tag();
    const int right = (my_index_ + 1) % size();
    const int left = (my_index_ - 1 + size()) % size();
    for (int step = 0; step < size() - 1; ++step) {
      const int send_block = (my_index_ - step + size()) % size();
      const int recv_block = (my_index_ - step - 1 + size()) % size();
      mpi_->sendrecv(out + static_cast<std::ptrdiff_t>(send_block) * n,
                     static_cast<std::size_t>(n) * sizeof(int),
                     world_rank(right), tag,
                     out + static_cast<std::ptrdiff_t>(recv_block) * n,
                     static_cast<std::size_t>(n) * sizeof(int),
                     world_rank(left), tag, context_);
    }
  }

  Mpi* mpi_;
  std::vector<int> members_;  ///< group index -> world rank
  int context_ = kWorldContext;
  int my_index_ = 0;
  int splits_ = 0;
  std::uint64_t seq_ = 0;
};

}  // namespace icsim::mpi
