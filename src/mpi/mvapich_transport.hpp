#pragma once
// MVAPICH-0.9.2-style MPI transport over the InfiniBand HCA model.
//
// Protocol structure (after Liu et al. and the MVAPICH 0.9.x design):
//   * eager: messages <= eager_threshold are copied into a preregistered
//     "vbuf" and RDMA-written into a per-peer ring of slots at the
//     receiver; flow control is credit-based (ring occupancy), credits
//     returned by piggyback or an explicit update;
//   * rendezvous: RTS control message -> receiver matches, registers the
//     application buffer (pin-down cache), replies CTS -> sender registers
//     and RDMA-writes the payload zero-copy -> completion notice.
//
// The property the paper hammers on: NOTHING here advances unless the
// owning rank is inside an MPI call.  Arrivals are queued raw and all
// protocol handling (matching, copies, CTS generation, completion
// detection) happens in progress(), which runs on the host CPU in the
// caller's fiber.  A rank that is computing does not match, does not send
// CTS, and does not notice completions (Sections 3.3.3-3.3.5).

#include <cstdint>
#include <deque>
#include <memory>
#include <unordered_map>
#include <vector>

#include "ib/hca.hpp"
#include "mpi/matcher.hpp"
#include "mpi/transport.hpp"
#include "node/node.hpp"
#include "sim/engine.hpp"
#include "sim/stats.hpp"

namespace icsim::mpi {

struct MvapichConfig {
  std::size_t eager_threshold = 1024;  ///< paper: latency jump between 1 and 2 KB
  int ring_slots = 32;                 ///< RDMA eager ring depth per peer
  std::uint32_t vbuf_bytes = 2048;
  sim::Time o_send = sim::Time::us(0.6);   ///< host cost to post a send
  sim::Time o_recv = sim::Time::us(0.30);  ///< host cost to post a receive
  sim::Time o_arrival = sim::Time::us(1.0);  ///< host cost per arrival processed
  sim::Time o_match_per_entry = sim::Time::ns(30);
  sim::Time rndv_accept_cost = sim::Time::us(0.4);  ///< RTS accept handling
  sim::Time cts_handle_cost = sim::Time::us(0.4);
  std::size_t envelope_bytes = 48;  ///< eager wire header
  std::uint32_t ctrl_bytes = 64;    ///< RTS/CTS/credit wire size
  /// Host-side protocol processing (matching, copies, rendezvous handling)
  /// runs on the application CPU and fights the sibling rank for the cache
  /// and front-side bus.  This multiplier applies to those charges while
  /// the other CPU is computing — the paper's 2-PPN "cache pollution and
  /// host load" effect (Section 4.2.1), which an offloaded NIC avoids.
  double smp_host_penalty = 1.8;
  /// ABLATION KNOB (off in the calibrated MVAPICH 0.9.2 model): process
  /// arrivals from a dedicated service context instead of only inside MPI
  /// calls.  This is the "independent progress" the paper says InfiniBand
  /// MPIs of the day lacked (Section 3.3.3); enabling it isolates how much
  /// of the application gap that one property explains.
  bool independent_progress = false;
  /// Watchdog for blocking waits: when nonzero, a wait that sees no
  /// completion for this long fails the request (RequestState::fail) and
  /// counts a timeout instead of blocking the fiber forever.  Zero (the
  /// default) keeps waits unbounded — the fault-free fast path is untouched.
  sim::Time watchdog_timeout = sim::Time::zero();
};

class MvapichTransport final : public Transport {
 public:
  MvapichTransport(sim::Engine& engine, int rank, node::Node& node,
                   ib::Hca& hca, const MvapichConfig& config);

  /// Wire up the full job: every rank connects a QP to every other rank and
  /// pins its eager rings (MVAPICH 0.9.2 connected eagerly at MPI_Init).
  /// Returns the per-rank init cost and records ring-memory statistics.
  [[nodiscard]] static sim::Time init_world(
      const std::vector<MvapichTransport*>& world);

  void post_send(const SendArgs& args) override;
  void post_recv(const RecvArgs& args) override;
  void wait(RequestState& req) override;
  bool test(RequestState& req) override;
  bool iprobe(int src, int tag, int context, Status* st) override;
  void progress() override;
  [[nodiscard]] int rank() const override { return rank_; }
  [[nodiscard]] int size() const override { return static_cast<int>(peers_.size()); }

  /// Registered eager-ring memory this rank dedicates to peers (the paper's
  /// point about buffer space scaling with job size).
  [[nodiscard]] std::uint64_t ring_memory_bytes() const;

  /// Spawn the service fiber that drives progress outside MPI calls
  /// (only when cfg.independent_progress is set; called by the cluster).
  void enable_independent_progress();
  [[nodiscard]] const MvapichConfig& config() const { return cfg_; }
  [[nodiscard]] ib::Hca& hca() { return hca_; }
  [[nodiscard]] const Matcher& matcher() const { return matcher_; }
  /// Requests failed by the wait watchdog on this rank.
  [[nodiscard]] std::uint64_t watchdog_timeouts() const {
    return watchdog_timeouts_;
  }

 private:
  struct WireMsg {
    enum class Kind { eager, rts, cts, rndv_data, credit };
    Kind kind = Kind::eager;
    int src = -1, dst = -1, tag = 0, context = kWorldContext;
    std::size_t bytes = 0;
    std::shared_ptr<std::vector<std::byte>> payload;
    std::uint64_t sender_rec = 0;    ///< sender-side rendezvous record
    std::uint64_t receiver_rec = 0;  ///< receiver-side posted-recv record
    int piggyback_credits = 0;
    /// Eager sends complete when the message is actually dispatched to the
    /// wire (WQE posted), not while parked waiting for ring credits.
    std::shared_ptr<RequestState> req_on_dispatch;
  };
  using WireMsgPtr = std::shared_ptr<WireMsg>;

  struct PendingSendRec {  ///< rendezvous send awaiting CTS
    SendArgs args;
  };
  struct PostedRecvRec {  ///< posted receive (matched later)
    RecvArgs args;
  };
  struct PeerState {
    int credits = 0;  ///< free slots in the ring at the peer
    int freed = 0;    ///< slots we consumed and released, owed back to peer
    std::deque<WireMsgPtr> stalled;  ///< ring messages waiting for credits
  };

  void on_delivery(const ib::Delivery& d);
  void handle(const WireMsgPtr& m);  // runs in the owner's fiber, may sleep
  void handle_eager(const WireMsgPtr& m);
  void handle_rts(const WireMsgPtr& m);
  void handle_cts(const WireMsgPtr& m);
  void handle_rndv_data(const WireMsgPtr& m);
  void accept_rts(const WireMsgPtr& rts, PostedRecvRec rec);
  void send_ring_message(const WireMsgPtr& m, bool complete_req_on_post);
  void dispatch_ring_message(const WireMsgPtr& m);
  void flush_stalled(int peer);
  void deliver_eager_payload(const WireMsgPtr& m, const PostedRecvRec& rec);
  void charge(sim::Time t);  // fiber sleep on this rank's host CPU
  void charge_host(sim::Time t);  // protocol work: SMP penalty applies
  [[nodiscard]] std::uint32_t wire_bytes(const WireMsg& m) const;
  /// Lazily registered trace component ("rank<r>").
  std::uint32_t trace_component();
  /// Queue-depth counters + match-scan metrics after a matcher operation.
  void trace_match(std::size_t scanned);

  sim::Engine& engine_;
  int rank_;
  node::Node& node_;
  ib::Hca& hca_;
  MvapichConfig cfg_;

  std::vector<MvapichTransport*> peers_;  // world, indexed by rank
  std::vector<PeerState> peer_state_;

  Matcher matcher_;
  std::unordered_map<std::uint64_t, PendingSendRec> rndv_sends_;
  std::unordered_map<std::uint64_t, PostedRecvRec> posted_recvs_;
  std::unordered_map<std::uint64_t, WireMsgPtr> unexpected_;  // env.id -> msg
  std::uint64_t next_id_ = 1;

  std::uint32_t trace_id_ = 0;
  std::uint64_t watchdog_timeouts_ = 0;
  sim::RunningStat* uq_depth_stat_ = nullptr;   ///< cached metrics accumulator
  sim::RunningStat* match_scan_stat_ = nullptr;

  std::deque<WireMsgPtr> pending_;  ///< arrived, awaiting host processing
  std::deque<std::shared_ptr<RequestState>> local_completions_;
  sim::Fiber* blocked_ = nullptr;
  bool wake_scheduled_ = false;
  bool in_progress_ = false;

  // Independent-progress ablation.
  std::unique_ptr<sim::Fiber> service_fiber_;
  bool service_parked_ = false;
  bool service_wake_scheduled_ = false;
  void service_loop();
  void wake_service();
};

}  // namespace icsim::mpi
