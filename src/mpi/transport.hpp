#pragma once
// Transport abstraction under the MPI API.
//
// One Transport instance exists per rank.  The two implementations embody
// the paper's Section 3 contrast:
//   * MvapichTransport (mvapich_transport.hpp): connection-oriented RDMA,
//     host-side matching, progress only inside MPI calls;
//   * QuadricsTransport (quadrics_transport.hpp): connectionless Tports,
//     NIC-side matching, independent progress.

#include <cstddef>
#include <memory>

#include "mpi/request.hpp"
#include "mpi/types.hpp"

namespace icsim::mpi {

struct SendArgs {
  int dst = 0;
  int tag = 0;
  int context = kWorldContext;
  const std::byte* data = nullptr;
  std::size_t bytes = 0;
  std::shared_ptr<RequestState> req;
};

struct RecvArgs {
  int src = kAnySource;
  int tag = kAnyTag;
  int context = kWorldContext;
  std::byte* data = nullptr;
  std::size_t capacity = 0;
  std::shared_ptr<RequestState> req;
};

class Transport {
 public:
  virtual ~Transport() = default;

  /// Start a nonblocking send/receive.  Both charge the host-side posting
  /// overhead to the calling fiber and return once posted.
  virtual void post_send(const SendArgs& args) = 0;
  virtual void post_recv(const RecvArgs& args) = 0;

  /// Block the calling fiber until the request completes.  How blocking
  /// behaves is the core transport difference: MVAPICH spins in the
  /// progress engine; Tports sleeps on the NIC's completion event.
  virtual void wait(RequestState& req) = 0;

  /// Nonblocking completion check (drives progress where required).
  virtual bool test(RequestState& req) = 0;

  /// MPI_Iprobe: is there a matchable message (without receiving it)?
  /// Fills `st` with the envelope on a hit.
  virtual bool iprobe(int src, int tag, int context, Status* st) = 0;

  /// Give the implementation a chance to advance protocol state.  No-op
  /// for transports with independent progress.
  virtual void progress() = 0;

  [[nodiscard]] virtual int rank() const = 0;
  [[nodiscard]] virtual int size() const = 0;
};

}  // namespace icsim::mpi
