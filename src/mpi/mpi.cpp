#include "mpi/mpi.hpp"

namespace icsim::mpi {

Request Mpi::isend(const void* data, std::size_t bytes, int dst, int tag,
                   int context) {
  assert(dst >= 0 && dst < size_);
  auto state = std::make_shared<RequestState>(engine_, RequestState::Kind::send);
  if (recording()) {
    state->trace_id = next_trace_req_++;
    recorder_->on_isend(dst, bytes, tag);
  }
  SendArgs args;
  args.dst = dst;
  args.tag = tag;
  args.context = context;
  args.data = static_cast<const std::byte*>(data);
  args.bytes = bytes;
  args.req = state;
  transport_.post_send(args);
  return Request(std::move(state));
}

Request Mpi::irecv(void* data, std::size_t capacity, int src, int tag,
                   int context) {
  assert(src == kAnySource || (src >= 0 && src < size_));
  auto state = std::make_shared<RequestState>(engine_, RequestState::Kind::recv);
  if (recording()) {
    state->trace_id = next_trace_req_++;
    recorder_->on_irecv(src, capacity, tag);
  }
  RecvArgs args;
  args.src = src;
  args.tag = tag;
  args.context = context;
  args.data = static_cast<std::byte*>(data);
  args.capacity = capacity;
  args.req = state;
  transport_.post_recv(args);
  return Request(std::move(state));
}

void Mpi::barrier() {
  if (recording()) recorder_->on_barrier();
  const RecordScope scope(*this);
  // Dissemination barrier: ceil(log2 P) rounds of pairwise exchanges.
  const int tag = next_coll_tag();
  char token = 0;
  for (int k = 1; k < size_; k <<= 1) {
    const int to = (rank_ + k) % size_;
    const int from = (rank_ - k + size_) % size_;
    sendrecv(&token, 1, to, tag, &token, 1, from, tag, coll_context());
  }
}

void Mpi::bcast_bytes(void* data, std::size_t bytes, int root) {
  if (recording()) recorder_->on_bcast(root, bytes);
  const RecordScope scope(*this);
  if (size_ == 1) return;
  const int tag = next_coll_tag();
  const int vrank = (rank_ - root + size_) % size_;
  int mask = 1;
  while (mask < size_) {
    if ((vrank & mask) != 0) {
      const int src = ((vrank - mask) + root) % size_;
      recv(data, bytes, src, tag, coll_context());
      break;
    }
    mask <<= 1;
  }
  mask >>= 1;
  while (mask > 0) {
    if (vrank + mask < size_) {
      const int dst = (vrank + mask + root) % size_;
      send(data, bytes, dst, tag, coll_context());
    }
    mask >>= 1;
  }
}

}  // namespace icsim::mpi
