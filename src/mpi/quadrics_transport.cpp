#include "mpi/quadrics_transport.hpp"

#include <cstring>
#include <stdexcept>

namespace icsim::mpi {

void QuadricsTransport::post_send(const SendArgs& args) {
  charge(cfg_.o_send);
  // Snapshot the payload: the NIC DMA engine reads the user buffer directly
  // (zero copy — no host memory-bus charge); the snapshot is only for data
  // fidelity inside the simulator.
  auto payload = std::make_shared<std::vector<std::byte>>(
      args.data, args.data + args.bytes);
  auto req = args.req;
  nic_.tx(rank_, args.dst, args.tag, args.context, std::move(payload),
          args.bytes, [req] { req->finish(); });
}

void QuadricsTransport::post_recv(const RecvArgs& args) {
  charge(cfg_.o_recv);
  auto req = args.req;
  std::byte* const dst = args.data;
  const std::size_t capacity = args.capacity;
  nic_.rx(rank_, args.src, args.tag, args.context,
          [req, dst, capacity](const elan::RxStatus& st) {
            if (st.bytes > capacity) {
              throw std::runtime_error(
                  "MPI truncation: message larger than recv buffer");
            }
            if (st.bytes > 0) {
              std::memcpy(dst, st.payload->data(), st.bytes);
            }
            req->finish(Status{st.src_rank, st.tag, st.bytes});
          });
}

void QuadricsTransport::wait(RequestState& req) {
  if (!req.complete) {
    req.trigger.wait();
  }
  charge(cfg_.o_complete);
}

}  // namespace icsim::mpi
