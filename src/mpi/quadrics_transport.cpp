#include "mpi/quadrics_transport.hpp"

#include <cstring>
#include <stdexcept>
#include <string>

#include "trace/trace.hpp"

namespace icsim::mpi {

std::uint32_t QuadricsTransport::trace_component() {
  if (trace_id_ == 0) {
    trace_id_ = engine_.tracer().register_component(
        trace::Category::mpi, "rank" + std::to_string(rank_));
  }
  return trace_id_;
}

void QuadricsTransport::post_send(const SendArgs& args) {
  const sim::Time t0 = engine_.now();
  charge(cfg_.o_send);
  // Snapshot the payload: the NIC DMA engine reads the user buffer directly
  // (zero copy — no host memory-bus charge); the snapshot is only for data
  // fidelity inside the simulator.
  auto payload = std::make_shared<std::vector<std::byte>>(
      args.data, args.data + args.bytes);
  auto req = args.req;
  nic_.tx(rank_, args.dst, args.tag, args.context, std::move(payload),
          args.bytes, [req] { req->finish(); });
  ICSIM_TRACE_WITH(engine_, tr) {
    tr.span(trace::Category::mpi, trace_component(), "send",
            t0, engine_.now());
  }
}

void QuadricsTransport::post_recv(const RecvArgs& args) {
  const sim::Time t0 = engine_.now();
  charge(cfg_.o_recv);
  auto req = args.req;
  std::byte* const dst = args.data;
  const std::size_t capacity = args.capacity;
  nic_.rx(rank_, args.src, args.tag, args.context,
          [req, dst, capacity](const elan::RxStatus& st) {
            if (st.bytes > capacity) {
              throw std::runtime_error(
                  "MPI truncation: message larger than recv buffer");
            }
            if (st.bytes > 0) {
              std::memcpy(dst, st.payload->data(), st.bytes);
            }
            req->finish(Status{st.src_rank, st.tag, st.bytes});
          });
  ICSIM_TRACE_WITH(engine_, tr) {
    tr.span(trace::Category::mpi, trace_component(), "recv.post",
            t0, engine_.now());
  }
}

void QuadricsTransport::wait(RequestState& req) {
  if (!req.complete) {
    if (cfg_.watchdog_timeout > sim::Time::zero()) {
      sim::EventHandle wd =
          engine_.schedule_in(cfg_.watchdog_timeout, [this, rp = &req] {
            if (!rp->complete) {
              ++watchdog_timeouts_;
              rp->fail();
            }
          });
      req.trigger.wait();
      wd.cancel();  // immediate cancel keeps the aliased request safe
    } else {
      req.trigger.wait();
    }
  }
  charge(cfg_.o_complete);
}

}  // namespace icsim::mpi
