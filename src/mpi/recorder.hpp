#pragma once
// Capture hook for trace-driven workload replay (src/replay/).
//
// A Recorder observes the *top-level* MPI API calls a rank makes — the ops
// an application issues, not the point-to-point traffic Mpi's collective
// algorithms generate internally (those are suppressed by a recursion
// guard, so a captured `allreduce` replays through the same collective
// code path and regenerates the identical wire traffic).  Recording is
// pure observation: no simulated time is charged and no engine state is
// touched, so an instrumented run produces the same RunStats::event_digest
// as an uninstrumented one.
//
// Nonblocking operations are identified by a per-rank sequence number: the
// k-th top-level isend/irecv of a rank is request k (0-based), and wait /
// test callbacks reference that number.  All callbacks are world-context:
// the only non-world contexts in this codebase are Mpi's internal
// collective contexts, which are never observed here.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "mpi/types.hpp"
#include "sim/time.hpp"

namespace icsim::mpi {

class Recorder {
 public:
  virtual ~Recorder() = default;

  virtual void on_compute(sim::Time duration) = 0;

  virtual void on_send(int dst, std::size_t bytes, int tag) = 0;
  virtual void on_isend(int dst, std::size_t bytes, int tag) = 0;
  virtual void on_recv(int src, std::size_t capacity, int tag) = 0;
  virtual void on_irecv(int src, std::size_t capacity, int tag) = 0;
  virtual void on_wait(std::uint64_t req) = 0;
  virtual void on_test(std::uint64_t req) = 0;
  virtual void on_sendrecv(int dst, std::size_t send_bytes, int send_tag,
                           int src, std::size_t recv_capacity,
                           int recv_tag) = 0;
  virtual void on_probe(int src, int tag) = 0;
  virtual void on_iprobe(int src, int tag) = 0;

  virtual void on_barrier() = 0;
  virtual void on_bcast(int root, std::size_t bytes) = 0;
  virtual void on_reduce(int root, std::size_t bytes, ReduceOp op) = 0;
  virtual void on_allreduce(std::size_t bytes, ReduceOp op) = 0;
  virtual void on_allgather(std::size_t block_bytes) = 0;
  virtual void on_alltoall(std::size_t block_bytes) = 0;
  virtual void on_alltoallv(std::vector<std::int64_t> send_bytes,
                            std::vector<std::int64_t> recv_bytes) = 0;
  virtual void on_gather(int root, std::size_t bytes) = 0;
  virtual void on_scan(std::size_t bytes, ReduceOp op) = 0;
};

}  // namespace icsim::mpi
