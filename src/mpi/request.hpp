#pragma once
// Nonblocking-operation state shared between the MPI API and transports.

#include <cstddef>
#include <memory>

#include "mpi/types.hpp"
#include "sim/blocking.hpp"

namespace icsim::mpi {

struct RequestState {
  enum class Kind { send, recv };

  RequestState(sim::Engine& engine, Kind k) : kind(k), trigger(engine) {}

  Kind kind;
  bool complete = false;
  bool failed = false;   ///< completed by a transport watchdog, not delivery
  Status status{};       ///< filled for receives
  sim::Trigger trigger;  ///< fired on completion

  void finish(const Status& st) {
    status = st;
    complete = true;
    trigger.fire();
  }
  void finish() {
    complete = true;
    trigger.fire();
  }
  /// Watchdog path: mark the operation errored-but-complete so the waiting
  /// fiber unblocks (a lost message surfaces as a counted failure instead of
  /// a deadlocked rank).  `status` keeps its defaults (source/tag -1).
  void fail() {
    failed = true;
    complete = true;
    trigger.fire();
  }
};

/// Cheap handle; a default-constructed Request is "null" and already
/// complete (like MPI_REQUEST_NULL).
class Request {
 public:
  Request() = default;
  explicit Request(std::shared_ptr<RequestState> s) : state_(std::move(s)) {}

  [[nodiscard]] bool valid() const { return state_ != nullptr; }
  [[nodiscard]] bool complete() const { return !state_ || state_->complete; }
  [[nodiscard]] RequestState* state() { return state_.get(); }
  [[nodiscard]] const Status& status() const { return state_->status; }

 private:
  std::shared_ptr<RequestState> state_;
};

}  // namespace icsim::mpi
