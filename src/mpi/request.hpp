#pragma once
// Nonblocking-operation state shared between the MPI API and transports.

#include <cstddef>
#include <cstdint>
#include <memory>

#include "mpi/types.hpp"
#include "sim/blocking.hpp"

namespace icsim::mpi {

struct RequestState {
  enum class Kind { send, recv };

  RequestState(sim::Engine& engine, Kind k)
      : kind(k), engine(&engine), trigger(engine) {}

  Kind kind;
  bool complete = false;
  bool failed = false;   ///< completed by a transport watchdog, not delivery
  Status status{};       ///< filled for receives
  sim::Engine* engine;   ///< for the completion timestamp below
  sim::Trigger trigger;  ///< fired on completion
  /// Simulated time at which the transport completed the operation.  A late
  /// wait()/test() observes the true completion instant, not the instant the
  /// fiber got around to asking — the open-loop traffic layer (src/traffic/)
  /// measures sojourn times from this, immune to harvest-loop lag.
  sim::Time completed_at = sim::Time::zero();
  /// Capture sequence number (see mpi/recorder.hpp): the k-th top-level
  /// isend/irecv of a recorded rank carries k here; -1 when no recorder is
  /// attached or the request was issued inside a collective.
  std::int64_t trace_id = -1;

  void finish(const Status& st) {
    status = st;
    complete = true;
    completed_at = engine->now();
    trigger.fire();
  }
  void finish() {
    complete = true;
    completed_at = engine->now();
    trigger.fire();
  }
  /// Watchdog path: mark the operation errored-but-complete so the waiting
  /// fiber unblocks (a lost message surfaces as a counted failure instead of
  /// a deadlocked rank).  `status` keeps its defaults (source/tag -1).
  void fail() {
    failed = true;
    complete = true;
    completed_at = engine->now();
    trigger.fire();
  }
};

/// Cheap handle; a default-constructed Request is "null" and already
/// complete (like MPI_REQUEST_NULL).
class Request {
 public:
  Request() = default;
  explicit Request(std::shared_ptr<RequestState> s) : state_(std::move(s)) {}

  [[nodiscard]] bool valid() const { return state_ != nullptr; }
  [[nodiscard]] bool complete() const { return !state_ || state_->complete; }
  [[nodiscard]] RequestState* state() { return state_.get(); }
  [[nodiscard]] const Status& status() const { return state_->status; }

 private:
  std::shared_ptr<RequestState> state_;
};

}  // namespace icsim::mpi
