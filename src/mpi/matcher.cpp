#include "mpi/matcher.hpp"

#include <algorithm>

namespace icsim::mpi {

MatchResult<PostedRecv> Matcher::arrive(const Envelope& env) {
  std::size_t scanned = 0;
  for (auto it = posted_.begin(); it != posted_.end(); ++it) {
    ++scanned;
    if (matches(*it, env)) {
      PostedRecv hit = *it;
      posted_.erase(it);
      return {hit, scanned};
    }
  }
  unexpected_.push_back(env);
  max_unexpected_ = std::max(max_unexpected_, unexpected_.size());
  return {std::nullopt, scanned};
}

MatchResult<Envelope> Matcher::post(const PostedRecv& recv) {
  std::size_t scanned = 0;
  for (auto it = unexpected_.begin(); it != unexpected_.end(); ++it) {
    ++scanned;
    if (matches(recv, *it)) {
      Envelope hit = *it;
      unexpected_.erase(it);
      return {hit, scanned};
    }
  }
  posted_.push_back(recv);
  return {std::nullopt, scanned};
}

std::optional<Envelope> Matcher::probe(const PostedRecv& recv) const {
  for (const auto& env : unexpected_) {
    if (matches(recv, env)) return env;
  }
  return std::nullopt;
}

bool Matcher::cancel_posted(std::uint64_t id) {
  for (auto it = posted_.begin(); it != posted_.end(); ++it) {
    if (it->id == id) {
      posted_.erase(it);
      return true;
    }
  }
  return false;
}

}  // namespace icsim::mpi
