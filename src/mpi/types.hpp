#pragma once
// Shared MPI-layer vocabulary types.

#include <cstddef>
#include <cstdint>

namespace icsim::mpi {

inline constexpr int kAnySource = -1;
inline constexpr int kAnyTag = -1;

/// Result of a completed receive.
struct Status {
  int source = -1;
  int tag = -1;
  std::size_t bytes = 0;
};

enum class ReduceOp { sum, min, max, prod };

/// Communicator context ids separate matching domains (MPI "contexts").
/// World point-to-point uses kWorldContext; collectives use a shifted
/// context so application tags can never collide with internal traffic.
inline constexpr int kWorldContext = 0;
inline constexpr int kCollectiveContextOffset = 1 << 20;

}  // namespace icsim::mpi
