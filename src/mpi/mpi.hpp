#pragma once
// The per-rank MPI programming interface used by all applications,
// micro-benchmarks and examples in this repository.
//
// It is a faithful subset of MPI's two-sided world: nonblocking point to
// point with tag/source matching and wildcards, the blocking wrappers, and
// the collectives the workloads need (implemented, as in MPICH of that
// era, on top of point-to-point: dissemination barrier, binomial
// broadcast/reduce, ring allgather, pairwise alltoall).  Every call runs in
// the owning rank's fiber; simulated time advances through the transport.

#include <cassert>
#include <cstddef>
#include <cstring>
#include <functional>
#include <span>
#include <vector>

#include "mpi/recorder.hpp"
#include "mpi/request.hpp"
#include "mpi/transport.hpp"
#include "mpi/types.hpp"
#include "node/node.hpp"
#include "sim/engine.hpp"
#include "sim/rng.hpp"

namespace icsim::mpi {

class Mpi {
 public:
  Mpi(sim::Engine& engine, node::Node& node, Transport& transport, int rank,
      int size, sim::Rng rng)
      : engine_(engine),
        node_(node),
        transport_(transport),
        rank_(rank),
        size_(size),
        rng_(rng) {}

  Mpi(const Mpi&) = delete;
  Mpi& operator=(const Mpi&) = delete;

  [[nodiscard]] int rank() const { return rank_; }
  [[nodiscard]] int size() const { return size_; }

  // ----------------------------------------------------------- point to point

  Request isend(const void* data, std::size_t bytes, int dst, int tag,
                int context = kWorldContext);
  Request irecv(void* data, std::size_t capacity, int src = kAnySource,
                int tag = kAnyTag, int context = kWorldContext);

  void send(const void* data, std::size_t bytes, int dst, int tag,
            int context = kWorldContext) {
    if (recording()) recorder_->on_send(dst, bytes, tag);
    const RecordScope scope(*this);
    Request r = isend(data, bytes, dst, tag, context);
    wait(r);
  }
  Status recv(void* data, std::size_t capacity, int src = kAnySource,
              int tag = kAnyTag, int context = kWorldContext) {
    if (recording()) recorder_->on_recv(src, capacity, tag);
    const RecordScope scope(*this);
    Request r = irecv(data, capacity, src, tag, context);
    wait(r);
    return r.status();
  }

  void wait(Request& r) {
    if (!r.valid()) return;
    if (recording() && r.state()->trace_id >= 0) {
      recorder_->on_wait(static_cast<std::uint64_t>(r.state()->trace_id));
    }
    const RecordScope scope(*this);
    transport_.wait(*r.state());
  }
  void waitall(std::span<Request> rs) {
    for (Request& r : rs) wait(r);
  }
  bool test(Request& r) {
    if (!r.valid()) return true;
    if (recording() && r.state()->trace_id >= 0) {
      recorder_->on_test(static_cast<std::uint64_t>(r.state()->trace_id));
    }
    const RecordScope scope(*this);
    return transport_.test(*r.state());
  }

  /// MPI_Iprobe: nonblocking check for a matchable incoming message.
  bool iprobe(int src = kAnySource, int tag = kAnyTag, Status* st = nullptr,
              int context = kWorldContext) {
    if (recording()) recorder_->on_iprobe(src, tag);
    const RecordScope scope(*this);
    return transport_.iprobe(src, tag, context, st);
  }

  /// MPI_Probe: block until a matching message can be received.
  Status probe(int src = kAnySource, int tag = kAnyTag,
               int context = kWorldContext) {
    if (recording()) recorder_->on_probe(src, tag);
    const RecordScope scope(*this);
    Status st;
    while (!iprobe(src, tag, &st, context)) {
      node_.compute(sim::Time::us(0.5));  // poll interval
    }
    return st;
  }

  /// Combined send+receive (deadlock-free, as MPI_Sendrecv).
  Status sendrecv(const void* sdata, std::size_t sbytes, int dst, int stag,
                  void* rdata, std::size_t rcap, int src, int rtag,
                  int context = kWorldContext) {
    if (recording()) {
      recorder_->on_sendrecv(dst, sbytes, stag, src, rcap, rtag);
    }
    const RecordScope scope(*this);
    Request rr = irecv(rdata, rcap, src, rtag, context);
    Request sr = isend(sdata, sbytes, dst, stag, context);
    wait(sr);
    wait(rr);
    return rr.status();
  }

  // Typed conveniences.
  template <typename T>
  void send(std::span<const T> data, int dst, int tag) {
    send(data.data(), data.size_bytes(), dst, tag);
  }
  template <typename T>
  Status recv(std::span<T> data, int src = kAnySource, int tag = kAnyTag) {
    return recv(data.data(), data.size_bytes(), src, tag);
  }

  // -------------------------------------------------------------- collectives

  void barrier();

  template <typename T>
  void bcast(T* data, std::size_t n, int root) {
    bcast_bytes(data, n * sizeof(T), root);
  }

  template <typename T>
  void reduce(const T* in, T* out, std::size_t n, ReduceOp op, int root) {
    if (recording()) recorder_->on_reduce(root, n * sizeof(T), op);
    const RecordScope scope(*this);
    // Binomial-tree reduce: leaves push partial results toward the root.
    std::vector<T> acc(in, in + n);
    std::vector<T> incoming(n);
    const int tag = next_coll_tag();
    const int vrank = (rank_ - root + size_) % size_;
    int mask = 1;
    while (mask < size_) {
      if ((vrank & mask) != 0) {
        const int peer = ((vrank - mask) % size_ + root) % size_;
        send(acc.data(), n * sizeof(T), peer, tag, coll_context());
        break;
      }
      const int vpeer = vrank + mask;
      if (vpeer < size_) {
        const int peer = (vpeer + root) % size_;
        recv(incoming.data(), n * sizeof(T), peer, tag, coll_context());
        combine(acc.data(), incoming.data(), n, op);
      }
      mask <<= 1;
    }
    if (rank_ == root && out != nullptr) {
      std::memcpy(out, acc.data(), n * sizeof(T));
    }
  }

  template <typename T>
  void allreduce(const T* in, T* out, std::size_t n, ReduceOp op) {
    if (recording()) recorder_->on_allreduce(n * sizeof(T), op);
    const RecordScope scope(*this);
    reduce(in, out, n, op, 0);
    bcast(out, n, 0);
  }
  template <typename T>
  [[nodiscard]] T allreduce(T value, ReduceOp op) {
    T out{};
    allreduce(&value, &out, 1, op);
    return out;
  }

  /// Ring allgather: `n` elements contributed per rank, `out` holds size*n.
  template <typename T>
  void allgather(const T* in, std::size_t n, T* out) {
    if (recording()) recorder_->on_allgather(n * sizeof(T));
    const RecordScope scope(*this);
    std::memcpy(out + static_cast<std::size_t>(rank_) * n, in, n * sizeof(T));
    const int tag = next_coll_tag();
    const int right = (rank_ + 1) % size_;
    const int left = (rank_ - 1 + size_) % size_;
    for (int step = 0; step < size_ - 1; ++step) {
      const int send_block = (rank_ - step + size_) % size_;
      const int recv_block = (rank_ - step - 1 + size_) % size_;
      sendrecv(out + static_cast<std::size_t>(send_block) * n, n * sizeof(T),
               right, tag, out + static_cast<std::size_t>(recv_block) * n,
               n * sizeof(T), left, tag, coll_context());
    }
  }

  /// Pairwise-exchange alltoall: `n` elements per destination rank.
  template <typename T>
  void alltoall(const T* in, std::size_t n, T* out) {
    if (recording()) recorder_->on_alltoall(n * sizeof(T));
    const RecordScope scope(*this);
    std::memcpy(out + static_cast<std::size_t>(rank_) * n,
                in + static_cast<std::size_t>(rank_) * n, n * sizeof(T));
    const int tag = next_coll_tag();
    for (int step = 1; step < size_; ++step) {
      const int to = (rank_ + step) % size_;
      const int from = (rank_ - step + size_) % size_;
      sendrecv(in + static_cast<std::size_t>(to) * n, n * sizeof(T), to, tag,
               out + static_cast<std::size_t>(from) * n, n * sizeof(T), from,
               tag, coll_context());
    }
  }

  /// Inclusive prefix reduction (MPI_Scan), chained rank by rank.
  template <typename T>
  [[nodiscard]] T scan(T value, ReduceOp op) {
    if (recording()) recorder_->on_scan(sizeof(T), op);
    const RecordScope scope(*this);
    const int tag = next_coll_tag();
    T acc = value;
    if (rank_ > 0) {
      T incoming{};
      recv(&incoming, sizeof(T), rank_ - 1, tag, coll_context());
      T tmp = incoming;
      combine(&tmp, &acc, 1, op);
      acc = tmp;
    }
    if (rank_ + 1 < size_) {
      send(&acc, sizeof(T), rank_ + 1, tag, coll_context());
    }
    return acc;
  }

  /// Variable-count alltoall (as MPI_Alltoallv): element counts and
  /// displacements per peer.  Implemented as pairwise exchanges with
  /// rotating partners, like the fixed-size version.
  template <typename T>
  void alltoallv(const T* in, const std::vector<int>& send_counts,
                 const std::vector<int>& send_displs, T* out,
                 const std::vector<int>& recv_counts,
                 const std::vector<int>& recv_displs) {
    assert(static_cast<int>(send_counts.size()) == size_);
    if (recording()) {
      std::vector<std::int64_t> sb(send_counts.size());
      std::vector<std::int64_t> rb(recv_counts.size());
      for (std::size_t i = 0; i < send_counts.size(); ++i) {
        sb[i] = static_cast<std::int64_t>(send_counts[i]) * sizeof(T);
      }
      for (std::size_t i = 0; i < recv_counts.size(); ++i) {
        rb[i] = static_cast<std::int64_t>(recv_counts[i]) * sizeof(T);
      }
      recorder_->on_alltoallv(std::move(sb), std::move(rb));
    }
    const RecordScope scope(*this);
    const int tag = next_coll_tag();
    const auto self = static_cast<std::size_t>(rank_);
    std::memcpy(out + recv_displs[self], in + send_displs[self],
                static_cast<std::size_t>(send_counts[self]) * sizeof(T));
    for (int step = 1; step < size_; ++step) {
      const auto to = static_cast<std::size_t>((rank_ + step) % size_);
      const auto from = static_cast<std::size_t>((rank_ - step + size_) % size_);
      sendrecv(in + send_displs[to],
               static_cast<std::size_t>(send_counts[to]) * sizeof(T),
               static_cast<int>(to), tag, out + recv_displs[from],
               static_cast<std::size_t>(recv_counts[from]) * sizeof(T),
               static_cast<int>(from), tag, coll_context());
    }
  }

  template <typename T>
  void gather(const T* in, std::size_t n, T* out, int root) {
    if (recording()) recorder_->on_gather(root, n * sizeof(T));
    const RecordScope scope(*this);
    const int tag = next_coll_tag();
    if (rank_ == root) {
      std::memcpy(out + static_cast<std::size_t>(rank_) * n, in, n * sizeof(T));
      for (int r = 0; r < size_; ++r) {
        if (r == root) continue;
        recv(out + static_cast<std::size_t>(r) * n, n * sizeof(T), r, tag,
             coll_context());
      }
    } else {
      send(in, n * sizeof(T), root, tag, coll_context());
    }
  }

  // ------------------------------------------------------------------- misc

  /// Simulated MPI_Wtime.
  [[nodiscard]] double wtime() const { return engine_.now().to_seconds(); }

  /// Charge modeled computation to this rank's CPU (SMP contention applies).
  void compute(sim::Time d) {
    if (recording()) recorder_->on_compute(d);
    node_.compute(d);
  }

  /// Attach (or detach, with nullptr) a capture recorder.  Observation only:
  /// the recorder never charges simulated time, so a recorded run keeps its
  /// uninstrumented event_digest.  See mpi/recorder.hpp.
  void set_recorder(Recorder* r) {
    recorder_ = r;
    rec_depth_ = 0;
    next_trace_req_ = 0;
  }

  [[nodiscard]] sim::Rng& rng() { return rng_; }
  [[nodiscard]] node::Node& node() { return node_; }
  [[nodiscard]] Transport& transport() { return transport_; }
  [[nodiscard]] sim::Engine& engine() { return engine_; }

 private:
  /// Marks the dynamic extent of one recorded top-level call so the
  /// point-to-point traffic a collective (or blocking wrapper) generates
  /// internally is not recorded a second time.
  struct RecordScope {
    explicit RecordScope(Mpi& m) : mpi(m) { ++mpi.rec_depth_; }
    ~RecordScope() { --mpi.rec_depth_; }
    RecordScope(const RecordScope&) = delete;
    RecordScope& operator=(const RecordScope&) = delete;
    Mpi& mpi;
  };
  [[nodiscard]] bool recording() const {
    return recorder_ != nullptr && rec_depth_ == 0;
  }

  void bcast_bytes(void* data, std::size_t bytes, int root);
  [[nodiscard]] int coll_context() const { return kCollectiveContextOffset; }
  int next_coll_tag() { return static_cast<int>(coll_seq_++ & 0xffffff); }

  template <typename T>
  static void combine(T* acc, const T* in, std::size_t n, ReduceOp op) {
    for (std::size_t i = 0; i < n; ++i) {
      switch (op) {
        case ReduceOp::sum: acc[i] = acc[i] + in[i]; break;
        case ReduceOp::min: acc[i] = in[i] < acc[i] ? in[i] : acc[i]; break;
        case ReduceOp::max: acc[i] = acc[i] < in[i] ? in[i] : acc[i]; break;
        case ReduceOp::prod: acc[i] = acc[i] * in[i]; break;
      }
    }
  }

  sim::Engine& engine_;
  node::Node& node_;
  Transport& transport_;
  int rank_;
  int size_;
  sim::Rng rng_;
  std::uint64_t coll_seq_ = 0;
  Recorder* recorder_ = nullptr;
  int rec_depth_ = 0;
  std::int64_t next_trace_req_ = 0;
};

}  // namespace icsim::mpi
