#pragma once
// Myrinet 2000 + GM model parameters (extension beyond the paper's two
// networks).
//
// The paper's predecessor study (Liu et al., reference [11]) compared
// InfiniBand, Quadrics AND Myrinet, and Section 3.3.2 of the paper uses
// MPICH-GM's behaviour — messages below 16 kB are copied through
// preregistered "copy blocks", which is why buffer-reuse benchmarks are
// flat below that size — as its canonical example of hiding registration
// cost.  This module adds the third network so that three-way comparison
// can be regenerated.
//
// Architecture (M3F-PCI64C class NIC, LANai 9 @ 133 MHz, GM 1.x,
// MPICH-GM): 2.0 Gbit/s links; 16-port crossbar switches in a Clos
// spreader; GM is CONNECTIONLESS (ports, not connections — send/receive
// tokens bound the queues, so per-process memory does not grow with job
// size); MPI matching runs on the HOST and progress happens only inside
// MPI calls, like MVAPICH and unlike Tports.

#include <cstdint>

#include "sim/time.hpp"

namespace icsim::myrinet {

struct GmNicConfig {
  /// DES pipeline granularity.
  std::uint32_t chunk_bytes = 4096;
  /// LANai processor time per send descriptor (a 133 MHz embedded CPU —
  /// much slower than the InfiniHost's engines at small messages).
  sim::Time lanai_tx_cost = sim::Time::us(1.1);
  /// LANai time to deliver an arriving message into a host receive chunk.
  sim::Time lanai_rx_cost = sim::Time::us(0.9);
  /// Host completion pickup from the GM event queue.
  sim::Time event_cost = sim::Time::us(0.3);
  sim::Time loopback_latency = sim::Time::us(0.7);
  /// GM receive tokens the process provides (global, not per peer).
  int recv_tokens = 256;
};

struct MpichGmConfig {
  /// MPICH-GM copy-block threshold: below this, both sides copy through
  /// preregistered chunks and registration cost never shows (paper 3.3.2).
  std::size_t eager_threshold = 16384;
  sim::Time o_send = sim::Time::us(0.5);
  sim::Time o_recv = sim::Time::us(0.35);
  sim::Time o_arrival = sim::Time::us(0.9);
  sim::Time o_match_per_entry = sim::Time::ns(30);
  sim::Time rndv_accept_cost = sim::Time::us(0.5);
  sim::Time cts_handle_cost = sim::Time::us(0.5);
  std::size_t envelope_bytes = 40;
  std::uint32_t ctrl_bytes = 48;
  double smp_host_penalty = 1.8;
};

}  // namespace icsim::myrinet
