#pragma once
// Myrinet 2000 + GM + MPICH-GM calibration (extension network).
//
// The paper's predecessor study (Liu et al., reference [11]) compared
// InfiniBand, Quadrics AND Myrinet, and Section 3.3.2 of this paper uses
// MPICH-GM's copy blocks — messages below 16 kB are staged through
// preregistered bounce buffers, so buffer-reuse benchmarks are flat below
// that size — as its canonical example of hiding registration cost.  This
// module adds the third network so the three-way comparison can be
// regenerated alongside the paper's two.
//
// Architecturally, GM/MPICH-GM sits in the same class as MVAPICH: a DMA
// NIC whose embedded processor (a 133 MHz LANai 9) moves bytes while MPI
// matching and rendezvous control run on the HOST, with progress only
// inside MPI calls.  The model therefore reuses the generic DMA-NIC
// (ib::Hca) and host-progress transport (mpi::MvapichTransport) machinery
// with Myrinet parameters:
//   * links carry 2.0 Gbit/s of data (250 MB/s) — an eighth of 4X IB;
//   * 16-port crossbars (radix 8 fat tree), wormhole routing, ~350 ns/hop;
//   * eager/copy-block threshold at 16 kB (both ends copy; no
//     registration below it — the Section 3.3.2 behaviour);
//   * GM is connectionless: "connection" setup is free, and since the
//     copy-block pool is global rather than per-peer, memory does not
//     scale with the job (unlike MVAPICH's rings); the per-peer credit
//     count here models the receive-token pool share.
// Calibration targets (Liu et al., IEEE Micro 24(1)): about 6.5-7 us MPI
// ping-pong latency and about 240 MB/s peak bandwidth.

#include "ib/config.hpp"
#include "mpi/mvapich_transport.hpp"
#include "net/fabric.hpp"

namespace icsim::myrinet {

/// Myrinet 2000 fabric: Clos of 16-port crossbars.
inline net::FabricConfig myrinet_fabric(int nodes) {
  net::FabricConfig f;
  f.radix_down = 8;
  f.levels = 2;  // 64 hosts per 2-level spreader
  while (nodes > 1 && [&] {
    long cap = 1;
    for (int i = 0; i < f.levels; ++i) cap *= f.radix_down;
    return cap < nodes;
  }()) {
    ++f.levels;
  }
  f.link_bandwidth = sim::Bandwidth::mb_per_sec(250.0);
  f.switch_latency = sim::Time::ns(350);
  f.wire_latency = sim::Time::ns(25);
  f.mtu_bytes = 4096;   // wormhole: no hard MTU; chunk granularity
  f.header_bytes = 8;   // tiny source-routed headers
  return f;
}

/// The LANai-9 NIC expressed as a generic DMA NIC.
inline ib::HcaConfig lanai9_nic() {
  ib::HcaConfig c;
  c.mtu_bytes = 4096;
  c.chunk_bytes = 4096;
  c.send_wqe_cost = sim::Time::us(2.1);   // slow embedded processor
  c.send_cqe_cost = sim::Time::us(0.4);
  c.loopback_latency = sim::Time::us(0.7);
  // GM registers memory through the same kernel mechanics as IB.
  c.reg_base_cost = sim::Time::us(25.0);
  c.reg_per_page = sim::Time::us(1.0);
  c.dereg_base_cost = sim::Time::us(15.0);
  c.dereg_per_page = sim::Time::us(0.55);
  c.page_bytes = 4096;
  c.reg_cache_capacity = 7ull << 20;
  c.qp_connect_cost = sim::Time::zero();  // connectionless GM ports
  return c;
}

/// MPICH-GM 1.2.5-era MPI stack on top of it.
inline mpi::MvapichConfig mpich_gm() {
  mpi::MvapichConfig c;
  c.eager_threshold = 16384;  // the 16 kB copy-block boundary
  c.vbuf_bytes = 16384 + 64;
  c.ring_slots = 64;  // share of the global receive-token pool
  c.o_send = sim::Time::us(0.6);
  c.o_recv = sim::Time::us(0.35);
  c.o_arrival = sim::Time::us(1.1);
  c.rndv_accept_cost = sim::Time::us(0.5);
  c.cts_handle_cost = sim::Time::us(0.5);
  c.envelope_bytes = 40;
  c.ctrl_bytes = 48;
  return c;
}

}  // namespace icsim::myrinet
