#include "cost/cost_model.hpp"

#include <stdexcept>

namespace icsim::cost {

namespace {
int ceil_div(int a, int b) { return (a + b - 1) / b; }
}  // namespace

NetworkCost quadrics_network(int nodes, const QuadricsPrices& p) {
  if (nodes < 1) throw std::invalid_argument("quadrics_network: nodes >= 1");
  NetworkCost c;
  c.adapters = nodes * p.adapter;
  const int chassis = ceil_div(nodes, p.node_chassis_ports);
  c.switch_count = chassis;
  c.switches = chassis * p.node_chassis;
  c.cable_count = nodes;  // host cables
  c.cables = nodes * p.cable_5m;
  if (chassis > 1) {
    // Federated configuration: top-level switches plus one uplink per node
    // for full bisection, and clock distribution.
    const int tops = ceil_div(chassis, p.top_switch_chassis);
    c.switch_count += tops;
    c.switches += tops * p.top_switch + p.clock_source;
    c.cable_count += nodes;
    c.cables += nodes * p.cable_3m;
  }
  return c;
}

NetworkCost ib96_network(int nodes, const IbPrices& p) {
  if (nodes < 1) throw std::invalid_argument("ib96_network: nodes >= 1");
  NetworkCost c;
  c.adapters = nodes * p.hca;
  c.cable_count = nodes;
  c.cables = nodes * p.host_cable;
  if (nodes <= 96) {
    c.switch_count = 1;
    c.switches = p.sw96_port;
    return c;
  }
  // Two-level fat tree of 96-port units: 48 down / 48 up per leaf.
  const int leaves = ceil_div(nodes, 48);
  const int spines = ceil_div(leaves * 48, 96);
  c.switch_count = leaves + spines;
  c.switches = static_cast<double>(leaves + spines) * p.sw96_port;
  c.cable_count += leaves * 48;
  c.cables += static_cast<double>(leaves) * 48 * p.switch_cable;
  return c;
}

NetworkCost ib_24_288_network(int nodes, bool full_bisection,
                              const IbPrices& p) {
  if (nodes < 1) throw std::invalid_argument("ib_24_288_network: nodes >= 1");
  NetworkCost c;
  c.adapters = nodes * p.hca;
  c.cable_count = nodes;
  c.cables = nodes * p.host_cable;
  if (nodes <= 24) {
    c.switch_count = 1;
    c.switches = p.sw24_port;
    return c;
  }
  if (nodes <= 288) {
    c.switch_count = 1;
    c.switches = p.sw288_port;
    return c;
  }
  const int down = full_bisection ? 12 : 16;
  const int up = full_bisection ? 12 : 8;
  const int leaves = ceil_div(nodes, down);
  const int spines = ceil_div(leaves * up, 288);
  c.switch_count = leaves + spines;
  c.switches = static_cast<double>(leaves) * p.sw24_port +
               static_cast<double>(spines) * p.sw288_port;
  c.cable_count += leaves * up;
  c.cables += static_cast<double>(leaves) * up * p.switch_cable;
  return c;
}

}  // namespace icsim::cost
