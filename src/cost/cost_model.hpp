#pragma once
// Network construction cost model (paper Section 5).
//
// Builds each network's bill of materials for a given node count:
//   * Quadrics Elan-4: QM-500 adapter + cable per node, 64-port node-level
//     chassis, and above 64 nodes a federated top level (top-level
//     switches + one uplink cable per node + clock distribution);
//   * InfiniBand from 96-port switches (the largest available when the
//     study began): one switch up to 96 nodes, then a two-level fat tree
//     of 96-port units (48 down / 48 up leaves);
//   * InfiniBand from 24-port edge + 288-port director switches ("now
//     available" in the paper): one director up to 288 nodes, then
//     24-port leaves with either 2:1 oversubscription (16 down / 8 up,
//     common practice) or full bisection (12 / 12).

#include "cost/pricing.hpp"

namespace icsim::cost {

struct NetworkCost {
  double adapters = 0.0;
  double switches = 0.0;
  double cables = 0.0;
  int switch_count = 0;
  int cable_count = 0;

  [[nodiscard]] double total() const { return adapters + switches + cables; }
  [[nodiscard]] double per_node(int nodes) const {
    return total() / nodes;
  }
};

[[nodiscard]] NetworkCost quadrics_network(int nodes,
                                           const QuadricsPrices& p = {});
[[nodiscard]] NetworkCost ib96_network(int nodes, const IbPrices& p = {});
[[nodiscard]] NetworkCost ib_24_288_network(int nodes, bool full_bisection,
                                            const IbPrices& p = {});

/// Network cost + compute-node cost (the paper's $2,500 lower bound).
[[nodiscard]] inline double total_system_per_node(const NetworkCost& net,
                                                  int nodes,
                                                  const NodePrice& np = {}) {
  return net.per_node(nodes) + np.node;
}

}  // namespace icsim::cost
