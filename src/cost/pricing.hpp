#pragma once
// List prices of the network components (paper Tables 2 and 3, current as
// of April 2004).
//
// Two switch prices are illegible in the archival scan of the paper; they
// are inferred so that the cost model reproduces the paper's own Section 5
// conclusions exactly:
//   * network cost per node differs by about 6.5% at large scale between
//     the two InfiniBand build-outs;
//   * with a $2,500 node, the Elan-4 total system cost exceeds the
//     InfiniBand system by about 4% when IB uses 96-port switches and by
//     about 51% when IB uses the newer 24-port + 288-port combination.
// Each inferred field is marked below.

namespace icsim::cost {

struct IbPrices {
  double hca = 995.0;          ///< Voltaire HCS 400 4X HCA (Table 2)
  double host_cable = 175.0;   ///< 4X copper cable (Table 2)
  double switch_cable = 175.0; ///< inter-switch cable
  double sw96_port = 74'500.0;  ///< ISR 9600 96-port switch [inferred]
  double sw24_port = 6'000.0;   ///< 24-port edge switch [inferred]
  double sw288_port = 88'000.0; ///< 288-port director [inferred]
};

struct QuadricsPrices {
  double adapter = 2'070.0;        ///< QM-500 network adapter [inferred]
  double node_chassis = 93'000.0;  ///< QS5A 64-port node-level chassis (Table 3)
  double top_switch = 110'500.0;   ///< top-level (federated) switch (Table 3)
  double clock_source = 1'800.0;   ///< QM580 clock source (Table 3)
  double cable_5m = 185.0;         ///< QM581-05 EOP link cable (Table 3)
  double cable_3m = 175.0;         ///< QM581-03 EOP link cable (Table 3)
  int node_chassis_ports = 64;
  /// Nodes-per-top-switch federation factor: each top-level switch
  /// federates up to 16 node-level chassis (1024 nodes).
  int top_switch_chassis = 16;
};

struct NodePrice {
  /// The paper's lower bound for a rack-mounted dual-processor node.
  double node = 2'500.0;
};

}  // namespace icsim::cost
