#include "net/topology.hpp"

#include <cassert>
#include <stdexcept>

namespace icsim::net {

FatTreeTopology::FatTreeTopology(int radix_down, int levels)
    : k_(radix_down), n_(levels) {
  if (k_ < 2) throw std::invalid_argument("FatTreeTopology: radix_down must be >= 2");
  if (n_ < 1) throw std::invalid_argument("FatTreeTopology: levels must be >= 1");
  pow_k_.resize(static_cast<std::size_t>(n_) + 1);
  pow_k_[0] = 1;
  for (int i = 1; i <= n_; ++i) {
    const std::uint64_t p = static_cast<std::uint64_t>(pow_k_[static_cast<std::size_t>(i - 1)]) *
                            static_cast<std::uint64_t>(k_);
    if (p > 1u << 30) throw std::invalid_argument("FatTreeTopology: too large");
    pow_k_[static_cast<std::size_t>(i)] = static_cast<std::uint32_t>(p);
  }
  capacity_ = static_cast<int>(pow_k_[static_cast<std::size_t>(n_)]);
  switches_per_level_ = static_cast<int>(pow_k_[static_cast<std::size_t>(n_ - 1)]);
}

std::uint32_t FatTreeTopology::digit(std::uint32_t value, int pos) const {
  return (value / pow_k_[static_cast<std::size_t>(pos)]) % static_cast<std::uint32_t>(k_);
}

std::uint32_t FatTreeTopology::with_digit(std::uint32_t value, int pos,
                                          std::uint32_t d) const {
  const std::uint32_t p = pow_k_[static_cast<std::size_t>(pos)];
  const std::uint32_t old = digit(value, pos);
  return value - old * p + d * p;
}

SwitchCoord FatTreeTopology::leaf_switch_of(int node) const {
  assert(node >= 0 && node < capacity_);
  // Leaf switch word = node digits x_{n-1}..x_1, i.e. node / k.
  return SwitchCoord{0, static_cast<std::uint32_t>(node) / static_cast<std::uint32_t>(k_)};
}

int FatTreeTopology::ancestor_level(int a, int b) const {
  assert(a != b);
  const auto ua = static_cast<std::uint32_t>(a);
  const auto ub = static_cast<std::uint32_t>(b);
  int lvl = 0;
  for (int pos = 1; pos < n_; ++pos) {
    if (digit(ua, pos) != digit(ub, pos)) lvl = pos;
  }
  return lvl;
}

std::vector<Hop> FatTreeTopology::route(int src, int dst) const {
  if (src == dst) throw std::invalid_argument("FatTreeTopology::route: src == dst");
  assert(src >= 0 && src < capacity_ && dst >= 0 && dst < capacity_);

  std::vector<Hop> hops;
  const int m = ancestor_level(src, dst);
  hops.reserve(static_cast<std::size_t>(2 * m + 2));

  SwitchCoord cur = leaf_switch_of(src);
  hops.push_back(Hop{Hop::Kind::node_to_switch, src, {}, cur});

  const auto udst = static_cast<std::uint32_t>(dst);
  // Climb: moving from level l to l+1 may change word digit l; D-mod-k picks
  // the destination's digit so the descent below is already aligned.
  // Word digit j corresponds to node digit j+1, so at level l we install the
  // destination's node digit l+1 into word position l.
  for (int l = 0; l < m; ++l) {
    SwitchCoord up{l + 1, with_digit(cur.word, l, digit(udst, l + 1))};
    hops.push_back(Hop{Hop::Kind::switch_to_switch, -1, cur, up});
    cur = up;
  }
  // Descend: from level l to l-1 the word digit l-1 must become the
  // destination's node digit l; the climb already installed digits below m.
  for (int l = m; l > 0; --l) {
    SwitchCoord down{l - 1, with_digit(cur.word, l - 1, digit(udst, l))};
    hops.push_back(Hop{Hop::Kind::switch_to_switch, -1, cur, down});
    cur = down;
  }
  assert(cur == leaf_switch_of(dst));
  hops.push_back(Hop{Hop::Kind::switch_to_node, dst, cur, {}});
  return hops;
}

int FatTreeTopology::switch_hops(int src, int dst) const {
  return 2 * ancestor_level(src, dst);
}

}  // namespace icsim::net
