#include "net/topology.hpp"

#include <cassert>
#include <stdexcept>

namespace icsim::net {

FatTreeTopology::FatTreeTopology(int radix_down, int levels)
    : k_(radix_down), n_(levels) {
  if (k_ < 2) throw std::invalid_argument("FatTreeTopology: radix_down must be >= 2");
  if (n_ < 1) throw std::invalid_argument("FatTreeTopology: levels must be >= 1");
  pow_k_.resize(static_cast<std::size_t>(n_) + 1);
  pow_k_[0] = 1;
  for (int i = 1; i <= n_; ++i) {
    const std::uint64_t p = static_cast<std::uint64_t>(pow_k_[static_cast<std::size_t>(i - 1)]) *
                            static_cast<std::uint64_t>(k_);
    if (p > 1u << 30) throw std::invalid_argument("FatTreeTopology: too large");
    pow_k_[static_cast<std::size_t>(i)] = static_cast<std::uint32_t>(p);
  }
  capacity_ = static_cast<int>(pow_k_[static_cast<std::size_t>(n_)]);
  switches_per_level_ = static_cast<int>(pow_k_[static_cast<std::size_t>(n_ - 1)]);
}

std::uint32_t FatTreeTopology::digit(std::uint32_t value, int pos) const {
  return (value / pow_k_[static_cast<std::size_t>(pos)]) % static_cast<std::uint32_t>(k_);
}

std::uint32_t FatTreeTopology::with_digit(std::uint32_t value, int pos,
                                          std::uint32_t d) const {
  const std::uint32_t p = pow_k_[static_cast<std::size_t>(pos)];
  const std::uint32_t old = digit(value, pos);
  return value - old * p + d * p;
}

SwitchCoord FatTreeTopology::leaf_switch_of(int node) const {
  assert(node >= 0 && node < capacity_);
  // Leaf switch word = node digits x_{n-1}..x_1, i.e. node / k.
  return SwitchCoord{0, static_cast<std::uint32_t>(node) / static_cast<std::uint32_t>(k_)};
}

int FatTreeTopology::ancestor_level(int a, int b) const {
  assert(a != b);
  const auto ua = static_cast<std::uint32_t>(a);
  const auto ub = static_cast<std::uint32_t>(b);
  int lvl = 0;
  for (int pos = 1; pos < n_; ++pos) {
    if (digit(ua, pos) != digit(ub, pos)) lvl = pos;
  }
  return lvl;
}

std::vector<Hop> FatTreeTopology::route(int src, int dst) const {
  if (src == dst) throw std::invalid_argument("FatTreeTopology::route: src == dst");
  assert(src >= 0 && src < capacity_ && dst >= 0 && dst < capacity_);

  std::vector<Hop> hops;
  const int m = ancestor_level(src, dst);
  hops.reserve(static_cast<std::size_t>(2 * m + 2));

  SwitchCoord cur = leaf_switch_of(src);
  hops.push_back(Hop{Hop::Kind::node_to_switch, src, {}, cur});

  const auto udst = static_cast<std::uint32_t>(dst);
  // Climb: moving from level l to l+1 may change word digit l; D-mod-k picks
  // the destination's digit so the descent below is already aligned.
  // Word digit j corresponds to node digit j+1, so at level l we install the
  // destination's node digit l+1 into word position l.
  for (int l = 0; l < m; ++l) {
    SwitchCoord up{l + 1, with_digit(cur.word, l, digit(udst, l + 1))};
    hops.push_back(Hop{Hop::Kind::switch_to_switch, -1, cur, up});
    cur = up;
  }
  // Descend: from level l to l-1 the word digit l-1 must become the
  // destination's node digit l; the climb already installed digits below m.
  for (int l = m; l > 0; --l) {
    SwitchCoord down{l - 1, with_digit(cur.word, l - 1, digit(udst, l))};
    hops.push_back(Hop{Hop::Kind::switch_to_switch, -1, cur, down});
    cur = down;
  }
  assert(cur == leaf_switch_of(dst));
  hops.push_back(Hop{Hop::Kind::switch_to_node, dst, cur, {}});
  return hops;
}

int FatTreeTopology::switch_hops(int src, int dst) const {
  return 2 * ancestor_level(src, dst);
}

std::vector<Hop> FatTreeTopology::route_avoiding(
    int src, int dst, const std::function<bool(const Hop&)>& down) const {
  if (src == dst) {
    throw std::invalid_argument("FatTreeTopology::route_avoiding: src == dst");
  }
  assert(src >= 0 && src < capacity_ && dst >= 0 && dst < capacity_);
  const int m = ancestor_level(src, dst);
  const auto udst = static_cast<std::uint32_t>(dst);

  // Build the route that climbs with word digits climb[0..m) and descends
  // along the (forced) destination digits.  The descent overwrites word
  // digits m-1..0 with the destination's node digits m..1 regardless of the
  // climb, so every climb choice lands on the destination's leaf switch.
  const auto build = [&](const std::vector<std::uint32_t>& climb) {
    std::vector<Hop> hops;
    hops.reserve(static_cast<std::size_t>(2 * m + 2));
    SwitchCoord cur = leaf_switch_of(src);
    hops.push_back(Hop{Hop::Kind::node_to_switch, src, {}, cur});
    for (int l = 0; l < m; ++l) {
      SwitchCoord up{l + 1, with_digit(cur.word, l, climb[static_cast<std::size_t>(l)])};
      hops.push_back(Hop{Hop::Kind::switch_to_switch, -1, cur, up});
      cur = up;
    }
    for (int l = m; l > 0; --l) {
      SwitchCoord desc{l - 1, with_digit(cur.word, l - 1, digit(udst, l))};
      hops.push_back(Hop{Hop::Kind::switch_to_switch, -1, cur, desc});
      cur = desc;
    }
    assert(cur == leaf_switch_of(dst));
    hops.push_back(Hop{Hop::Kind::switch_to_node, dst, cur, {}});
    return hops;
  };
  const auto all_up = [&](const std::vector<Hop>& hops) {
    for (const Hop& hop : hops) {
      if (down(hop)) return false;
    }
    return true;
  };

  std::vector<std::uint32_t> def(static_cast<std::size_t>(m));
  for (int l = 0; l < m; ++l) {
    def[static_cast<std::size_t>(l)] = digit(udst, l + 1);
  }
  if (auto hops = build(def); all_up(hops)) return hops;
  if (m == 0) return {};  // intra-leaf route is unique

  std::vector<std::uint32_t> climb(static_cast<std::size_t>(m), 0);
  while (true) {
    if (climb != def) {
      if (auto hops = build(climb); all_up(hops)) return hops;
    }
    int i = 0;
    for (; i < m; ++i) {
      if (++climb[static_cast<std::size_t>(i)] <
          static_cast<std::uint32_t>(k_)) {
        break;
      }
      climb[static_cast<std::size_t>(i)] = 0;
    }
    if (i == m) break;  // wrapped: all k^m climbs tried
  }
  return {};
}

bool FatTreeTopology::adjacent(SwitchCoord a, SwitchCoord b) const {
  if (a.level > b.level) std::swap(a, b);
  if (b.level != a.level + 1 || a.level < 0 || b.level >= n_) return false;
  const auto per_level = static_cast<std::uint32_t>(switches_per_level_);
  if (a.word >= per_level || b.word >= per_level) return false;
  for (int pos = 0; pos + 1 < n_; ++pos) {
    if (pos != a.level && digit(a.word, pos) != digit(b.word, pos)) return false;
  }
  return true;
}

}  // namespace icsim::net
