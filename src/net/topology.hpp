#pragma once
// k-ary n-tree (fat-tree) topology and deterministic routing.
//
// Both networks in the study are fat trees built from constant-radix
// crossbars: the Voltaire ISR 9600 is a two-level Clos of 24-port chips
// (12 down / 12 up per leaf), and Quadrics QsNetII is the classical 4-ary
// fat tree of radix-8 Elan switch chips.  We model both with the standard
// k-ary n-tree construction:
//
//   * k^n endpoints; n switch levels, k^(n-1) switches per level;
//   * a switch is identified by (level l, word w) where w has n-1 base-k
//     digits; switch (l, w) connects up to the k switches (l+1, w') whose
//     words agree with w in every digit except digit l;
//   * node x (digits x_{n-1}..x_0) attaches to leaf switch word
//     x_{n-1}..x_1 at down-port x_0.
//
// Routing is deterministic destination-based ("D-mod-k") up/down: climb to
// the nearest common ancestor level, choosing at each up-hop the switch
// whose free digit matches the destination's digit, then descend along the
// forced down-path.  This is the scheme InfiniBand subnet managers and the
// Elan route tables both approximate, it is deadlock-free, and it spreads
// load across the spine by destination.

#include <cstdint>
#include <functional>
#include <vector>

namespace icsim::net {

/// A switch in the tree, identified by level and base-k word.
struct SwitchCoord {
  int level = 0;
  std::uint32_t word = 0;

  friend bool operator==(const SwitchCoord&, const SwitchCoord&) = default;
};

/// One directed hop of a route.  Endpoint hops use kNode for one side.
struct Hop {
  enum class Kind { node_to_switch, switch_to_switch, switch_to_node };
  Kind kind{};
  // For node hops, `node` names the endpoint; for switch hops it is unused.
  int node = -1;
  SwitchCoord from{};  // valid unless kind == node_to_switch
  SwitchCoord to{};    // valid unless kind == switch_to_node
};

class FatTreeTopology {
 public:
  /// A tree of `levels` levels built from switches with `radix_down` down
  /// ports (and the same number of up ports, except the top level which
  /// folds its up ports back as extra capacity).
  FatTreeTopology(int radix_down, int levels);

  [[nodiscard]] int radix() const { return k_; }
  [[nodiscard]] int levels() const { return n_; }
  /// Maximum number of endpoints (k^n).
  [[nodiscard]] int capacity() const { return capacity_; }
  [[nodiscard]] int switches_per_level() const { return switches_per_level_; }
  [[nodiscard]] int total_switches() const { return n_ * switches_per_level_; }

  [[nodiscard]] SwitchCoord leaf_switch_of(int node) const;

  /// Level of the nearest common ancestor switch of two nodes; 0 means they
  /// share a leaf switch.
  [[nodiscard]] int ancestor_level(int a, int b) const;

  /// The full directed route src -> dst, including the two endpoint hops.
  /// src == dst is a contract violation (callers short-circuit self sends).
  [[nodiscard]] std::vector<Hop> route(int src, int dst) const;

  /// Number of switch-to-switch hops on the route (2 * ancestor_level).
  [[nodiscard]] int switch_hops(int src, int dst) const;

  /// Like route(), but skip routes that traverse a hop for which `down`
  /// returns true.  Every minimal route climbs to the ancestor level and
  /// descends, so the climb digits fully parameterize the k^m alternatives;
  /// the default D-mod-k route is tried first (fault-free fabrics reroute to
  /// themselves), then the remaining climbs in lexicographic order.  All
  /// candidates are up-then-down, so the deadlock-free property is
  /// preserved.  Returns {} when no fully-up route exists (in particular
  /// when an endpoint link is down).
  [[nodiscard]] std::vector<Hop> route_avoiding(
      int src, int dst, const std::function<bool(const Hop&)>& down) const;

  /// True when the two switches are joined by a cable of the tree.
  [[nodiscard]] bool adjacent(SwitchCoord a, SwitchCoord b) const;

  /// Compact unique id for a switch (used as a map key).
  [[nodiscard]] std::uint64_t switch_id(SwitchCoord c) const {
    return static_cast<std::uint64_t>(c.level) *
               static_cast<std::uint64_t>(switches_per_level_) +
           c.word;
  }

 private:
  [[nodiscard]] std::uint32_t digit(std::uint32_t value, int pos) const;
  [[nodiscard]] std::uint32_t with_digit(std::uint32_t value, int pos,
                                         std::uint32_t d) const;

  int k_;
  int n_;
  int capacity_;
  int switches_per_level_;
  std::vector<std::uint32_t> pow_k_;  // pow_k_[i] = k^i
};

}  // namespace icsim::net
