#pragma once
// Packet-level message fabric over a fat tree.
//
// Switches are modeled as output-queued crossbars: each directed link owns a
// FIFO serialization resource (the output queue + transmitter), and each
// switch traversal charges a fixed pipeline latency.  A message is injected
// by the NIC models in chunks; each chunk flows hop-by-hop, so chunks of a
// long message pipeline across the route while competing flows interleave on
// shared links.  Per-packet wire headers are charged as a bandwidth
// efficiency factor: a chunk's serialization time covers
// payload + ceil(payload / mtu) * header_bytes.
//
// The fabric carries no payload bytes — data movement is performed by the
// transport layers at delivery time — so it is a pure timing model.

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "net/topology.hpp"
#include "sim/engine.hpp"
#include "sim/resource.hpp"
#include "sim/time.hpp"
#include "trace/metrics.hpp"

namespace icsim::net {

struct FabricConfig {
  int radix_down = 4;  ///< k of the k-ary n-tree
  int levels = 3;      ///< n
  sim::Bandwidth link_bandwidth = sim::Bandwidth::gb_per_sec(1.0);
  sim::Time switch_latency = sim::Time::ns(100);  ///< per switch traversal
  sim::Time wire_latency = sim::Time::ns(20);     ///< per link propagation
  std::uint32_t mtu_bytes = 2048;                 ///< wire packet payload
  std::uint32_t header_bytes = 32;                ///< per wire packet
};

class Fabric {
 public:
  Fabric(sim::Engine& engine, const FabricConfig& config, int num_nodes);

  /// Inject one chunk of `bytes` payload; `on_delivered` fires when the last
  /// byte reaches the destination endpoint.  Returns the time at which the
  /// source link finishes serializing the chunk (NICs use this to pace DMA).
  /// src == dst is not routed here; transports loop back locally.
  sim::Time inject(int src, int dst, std::uint32_t bytes,
                   std::function<void()> on_delivered);

  [[nodiscard]] int num_nodes() const { return num_nodes_; }
  [[nodiscard]] const FatTreeTopology& topology() const { return topo_; }
  [[nodiscard]] const FabricConfig& config() const { return cfg_; }

  /// Total chunks injected (for instrumentation).
  [[nodiscard]] std::uint64_t chunks_sent() const { return chunks_; }

  /// Serialization time of a chunk including per-MTU header overhead.
  [[nodiscard]] sim::Time serialization_time(std::uint32_t bytes) const;

  /// Busy-time observed on the most utilized link (contention diagnostics).
  [[nodiscard]] sim::Time max_link_busy_time() const;

  /// Fold per-link utilization/traffic into `m` ("net.link_utilization"
  /// samples one value per directed link; utilization = busy / elapsed).
  void publish_metrics(trace::MetricsRegistry& m, sim::Time elapsed) const;

 private:
  struct DirectedLink {
    explicit DirectedLink(sim::Engine& e, std::string name)
        : tx(e, std::move(name)) {}
    sim::FifoResource tx;
    std::uint32_t trace_id = 0;  ///< lazily registered trace component
  };

  // Key layout: bit 63 set => endpoint link (node id in low bits, bit 62
  // selects direction); otherwise (from_switch_id << 31) | to_switch_id.
  [[nodiscard]] std::uint64_t key_of(const Hop& hop) const;
  DirectedLink& link_for(const Hop& hop);
  [[nodiscard]] std::string link_name(const Hop& hop) const;

  void forward(std::shared_ptr<std::vector<Hop>> route, std::size_t index,
               std::uint32_t bytes, std::function<void()> on_delivered,
               sim::Time* first_tx_done);

  sim::Engine& engine_;
  FabricConfig cfg_;
  FatTreeTopology topo_;
  int num_nodes_;
  std::unordered_map<std::uint64_t, std::unique_ptr<DirectedLink>> links_;
  std::uint64_t chunks_ = 0;
};

}  // namespace icsim::net
