#pragma once
// Packet-level message fabric over a fat tree.
//
// Switches are modeled as output-queued crossbars: each directed link owns a
// FIFO serialization resource (the output queue + transmitter), and each
// switch traversal charges a fixed pipeline latency.  A message is injected
// by the NIC models in chunks; each chunk flows hop-by-hop, so chunks of a
// long message pipeline across the route while competing flows interleave on
// shared links.  Per-packet wire headers are charged as a bandwidth
// efficiency factor: a chunk's serialization time covers
// payload + ceil(payload / mtu) * header_bytes.
//
// The fabric carries no payload bytes — data movement is performed by the
// transport layers at delivery time — so it is a pure timing model.

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <unordered_set>
#include <vector>

#include "net/topology.hpp"
#include "sim/engine.hpp"
#include "sim/resource.hpp"
#include "sim/time.hpp"
#include "trace/metrics.hpp"

namespace icsim::net {

struct FabricConfig {
  int radix_down = 4;  ///< k of the k-ary n-tree
  int levels = 3;      ///< n
  sim::Bandwidth link_bandwidth = sim::Bandwidth::gb_per_sec(1.0);
  sim::Time switch_latency = sim::Time::ns(100);  ///< per switch traversal
  sim::Time wire_latency = sim::Time::ns(20);     ///< per link propagation
  std::uint32_t mtu_bytes = 2048;                 ///< wire packet payload
  std::uint32_t header_bytes = 32;                ///< per wire packet
};

/// How a chunk's trip through the fabric ended.
enum class DeliveryStatus : std::uint8_t {
  delivered,  ///< last byte reached the destination endpoint
  corrupted,  ///< failed a link-level CRC and was discarded by a switch/NIC
  link_down,  ///< hit (or could not route around) a downed link
};

using DeliveryFn = std::function<void(DeliveryStatus)>;

/// Fault-model callbacks the fabric consults at serialization points.  Kept
/// abstract so net/ does not depend on fault/ (the injector implements it).
class FaultHooks {
 public:
  virtual ~FaultHooks() = default;
  /// Bit-error rate in effect on the (undirected) link this hop traverses.
  [[nodiscard]] virtual double link_ber(const Hop& hop) const = 0;
  /// Draw whether a wire packet train of `wire_bytes` survives a link with
  /// bit-error rate `ber` (> 0).  Consumes deterministic RNG state.
  virtual bool draw_corruption(double ber, std::uint64_t wire_bytes) = 0;
};

class Fabric {
 public:
  Fabric(sim::Engine& engine, const FabricConfig& config, int num_nodes);

  /// Inject one chunk of `bytes` payload; `on_complete` fires when the last
  /// byte reaches the destination endpoint (DeliveryStatus::delivered) or
  /// when the chunk is lost on the way (corrupted / link_down).  Returns the
  /// time at which the source link finishes serializing the chunk (NICs use
  /// this to pace DMA).  src == dst is not routed here; transports loop back
  /// locally.  The return is advisory — terminal status arrives via
  /// `on_complete`.
  sim::Time inject(int src, int dst, std::uint32_t bytes,  // icsim-lint: allow(nodiscard-time)
                   DeliveryFn on_complete);

  /// Install (or clear, with nullptr) the fault hooks.  Hooks are borrowed
  /// and must outlive the fabric; installing refreshes the cached per-link
  /// BER of every link seen so far.
  void set_fault_hooks(FaultHooks* hooks);

  /// Administratively fail / restore both directions of node's endpoint
  /// cable.  In-flight chunks that reach the dead link are dropped.
  void set_node_link_state(int node, bool up);
  /// Same for the cable between two adjacent switches.
  void set_switch_link_state(SwitchCoord a, SwitchCoord b, bool up);
  /// Is the (undirected) link this hop traverses currently up?
  [[nodiscard]] bool link_up(const Hop& hop) const;

  [[nodiscard]] int num_nodes() const { return num_nodes_; }
  [[nodiscard]] const FatTreeTopology& topology() const { return topo_; }
  [[nodiscard]] const FabricConfig& config() const { return cfg_; }

  /// Total chunks injected (for instrumentation).
  [[nodiscard]] std::uint64_t chunks_sent() const { return chunks_; }
  [[nodiscard]] std::uint64_t chunks_delivered() const { return delivered_; }
  [[nodiscard]] std::uint64_t chunks_corrupted() const { return corrupted_; }
  [[nodiscard]] std::uint64_t chunks_dropped_link_down() const {
    return down_drops_;
  }
  /// Chunks whose default D-mod-k route was blocked and that took an
  /// alternate climb instead.
  [[nodiscard]] std::uint64_t chunks_rerouted() const { return rerouted_; }
  /// Chunks dropped at injection because no fully-up route existed.
  [[nodiscard]] std::uint64_t chunks_no_route() const {
    return no_route_drops_;
  }

  /// Chunks injected but not yet delivered or dropped.
  [[nodiscard]] std::uint64_t chunks_in_flight() const { return in_flight_; }

  /// ICSIM_CHECK audit once the event queue has drained: chunk and payload-
  /// byte conservation (injected == delivered + corrupted + dropped, with
  /// nothing left in flight).  A violation means the fabric leaked or
  /// double-counted a chunk.  No-op when the auditor is off.
  void audit_drained() const;

  /// Serialization time of a chunk including per-MTU header overhead.
  [[nodiscard]] sim::Time serialization_time(std::uint32_t bytes) const;

  /// Busy-time observed on the most utilized link (contention diagnostics).
  [[nodiscard]] sim::Time max_link_busy_time() const;

  /// Fold per-link utilization/traffic into `m` ("net.link_utilization"
  /// samples one value per directed link; utilization = busy / elapsed).
  void publish_metrics(trace::MetricsRegistry& m, sim::Time elapsed) const;

 private:
  struct DirectedLink {
    DirectedLink(sim::Engine& e, std::string name, Hop h)
        : tx(e, std::move(name)), hop(h) {}
    sim::FifoResource tx;
    Hop hop;                     ///< the hop this link serializes
    double ber = 0.0;            ///< cached from the fault hooks
    std::uint64_t forwarded = 0;
    std::uint64_t corrupted = 0;
    std::uint32_t trace_id = 0;  ///< lazily registered trace component
  };

  // Key layout: bit 63 set => endpoint link (node id in low bits, bit 62
  // selects direction); otherwise (from_switch_id << 31) | to_switch_id.
  [[nodiscard]] std::uint64_t key_of(const Hop& hop) const;
  // Direction-independent key of the cable a hop traverses (both directions
  // of a cable fail together).
  [[nodiscard]] std::uint64_t cable_key_of(const Hop& hop) const;
  DirectedLink& link_for(const Hop& hop);
  [[nodiscard]] std::string link_name(const Hop& hop) const;
  /// Wire bytes of a chunk: payload plus per-MTU-packet headers.
  [[nodiscard]] std::uint64_t wire_bytes(std::uint32_t bytes) const;

  void forward(std::shared_ptr<std::vector<Hop>> route, std::size_t index,
               std::uint32_t bytes, DeliveryFn on_complete,
               sim::Time* first_tx_done);
  void finish(DeliveryFn& on_complete, DeliveryStatus status,
              std::uint32_t bytes);

  sim::Engine& engine_;
  FabricConfig cfg_;
  FatTreeTopology topo_;
  int num_nodes_;
  // Ordered map: metrics/fault hooks traverse the links, and hash-order
  // traversal would make that event emission nondeterministic.
  std::map<std::uint64_t, std::unique_ptr<DirectedLink>> links_;
  std::unordered_set<std::uint64_t> downed_;  ///< cable keys currently down
  FaultHooks* hooks_ = nullptr;
  std::uint64_t chunks_ = 0;
  std::uint64_t delivered_ = 0;
  std::uint64_t corrupted_ = 0;
  std::uint64_t down_drops_ = 0;
  std::uint64_t rerouted_ = 0;
  std::uint64_t no_route_drops_ = 0;
  // Conservation bookkeeping for the ICSIM_CHECK drain audit:
  std::uint64_t in_flight_ = 0;        ///< chunks injected, not yet final
  std::uint64_t bytes_injected_ = 0;   ///< payload bytes entering the fabric
  std::uint64_t bytes_delivered_ = 0;  ///< payload bytes reaching endpoints
  std::uint64_t bytes_dropped_ = 0;    ///< payload bytes lost (CRC/link-down)
};

}  // namespace icsim::net
