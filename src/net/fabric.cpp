#include "net/fabric.hpp"

#include <cassert>
#include <stdexcept>
#include <utility>

#include "sim/check.hpp"
#include "trace/trace.hpp"

namespace icsim::net {

Fabric::Fabric(sim::Engine& engine, const FabricConfig& config, int num_nodes)
    : engine_(engine),
      cfg_(config),
      topo_(config.radix_down, config.levels),
      num_nodes_(num_nodes) {
  if (num_nodes > topo_.capacity()) {
    throw std::invalid_argument("Fabric: more nodes than the tree can attach");
  }
}

sim::Time Fabric::serialization_time(std::uint32_t bytes) const {
  return cfg_.link_bandwidth.transfer_time(wire_bytes(bytes));
}

std::uint64_t Fabric::wire_bytes(std::uint32_t bytes) const {
  const std::uint64_t packets =
      bytes == 0 ? 1 : (bytes + cfg_.mtu_bytes - 1) / cfg_.mtu_bytes;
  return static_cast<std::uint64_t>(bytes) + packets * cfg_.header_bytes;
}

std::uint64_t Fabric::key_of(const Hop& hop) const {
  switch (hop.kind) {
    case Hop::Kind::node_to_switch:
      return (1ull << 63) | static_cast<std::uint64_t>(hop.node);
    case Hop::Kind::switch_to_node:
      return (1ull << 63) | (1ull << 62) | static_cast<std::uint64_t>(hop.node);
    case Hop::Kind::switch_to_switch:
      return (topo_.switch_id(hop.from) << 31) | topo_.switch_id(hop.to);
  }
  return 0;  // unreachable
}

std::uint64_t Fabric::cable_key_of(const Hop& hop) const {
  switch (hop.kind) {
    case Hop::Kind::node_to_switch:
    case Hop::Kind::switch_to_node:
      return (1ull << 63) | static_cast<std::uint64_t>(hop.node);
    case Hop::Kind::switch_to_switch: {
      std::uint64_t a = topo_.switch_id(hop.from);
      std::uint64_t b = topo_.switch_id(hop.to);
      if (a > b) std::swap(a, b);
      return (a << 31) | b;
    }
  }
  return 0;  // unreachable
}

std::string Fabric::link_name(const Hop& hop) const {
  switch (hop.kind) {
    case Hop::Kind::node_to_switch:
      return "node" + std::to_string(hop.node) + "->sw";
    case Hop::Kind::switch_to_node:
      return "sw->node" + std::to_string(hop.node);
    case Hop::Kind::switch_to_switch:
      return "sw" + std::to_string(topo_.switch_id(hop.from)) + "->sw" +
             std::to_string(topo_.switch_id(hop.to));
  }
  return "link";
}

Fabric::DirectedLink& Fabric::link_for(const Hop& hop) {
  const std::uint64_t key = key_of(hop);
  auto it = links_.find(key);
  if (it == links_.end()) {
    it = links_
             .emplace(key, std::make_unique<DirectedLink>(
                               engine_, link_name(hop), hop))
             .first;
    if (hooks_ != nullptr) it->second->ber = hooks_->link_ber(hop);
  }
  return *it->second;
}

void Fabric::set_fault_hooks(FaultHooks* hooks) {
  hooks_ = hooks;
  for (auto& [key, link] : links_) {
    (void)key;
    link->ber = hooks_ != nullptr ? hooks_->link_ber(link->hop) : 0.0;
  }
}

void Fabric::set_node_link_state(int node, bool up) {
  const std::uint64_t key =
      (1ull << 63) | static_cast<std::uint64_t>(node);
  if (up) {
    downed_.erase(key);
  } else {
    downed_.insert(key);
  }
}

void Fabric::set_switch_link_state(SwitchCoord a, SwitchCoord b, bool up) {
  if (!topo_.adjacent(a, b)) {
    throw std::invalid_argument("Fabric: " + std::to_string(a.level) + "." +
                                std::to_string(a.word) + " and " +
                                std::to_string(b.level) + "." +
                                std::to_string(b.word) +
                                " are not adjacent switches");
  }
  std::uint64_t ka = topo_.switch_id(a);
  std::uint64_t kb = topo_.switch_id(b);
  if (ka > kb) std::swap(ka, kb);
  const std::uint64_t key = (ka << 31) | kb;
  if (up) {
    downed_.erase(key);
  } else {
    downed_.insert(key);
  }
}

bool Fabric::link_up(const Hop& hop) const {
  return downed_.find(cable_key_of(hop)) == downed_.end();
}

void Fabric::finish(DeliveryFn& on_complete, DeliveryStatus status,
                    std::uint32_t bytes) {
  ICSIM_CHECK(in_flight_ > 0, "fabric chunk completed more than once");
  --in_flight_;
  switch (status) {
    case DeliveryStatus::delivered:
      ++delivered_;
      bytes_delivered_ += bytes;
      break;
    case DeliveryStatus::corrupted:
      ++corrupted_;
      bytes_dropped_ += bytes;
      break;
    case DeliveryStatus::link_down:
      ++down_drops_;
      bytes_dropped_ += bytes;
      break;
  }
  if (on_complete) on_complete(status);
}

void Fabric::audit_drained() const {
  ICSIM_CHECK(in_flight_ == 0, "fabric drained with chunks still in flight");
  ICSIM_CHECK(chunks_ == delivered_ + corrupted_ + down_drops_,
              "fabric chunk conservation: injected != delivered + dropped");
  ICSIM_CHECK(bytes_injected_ == bytes_delivered_ + bytes_dropped_,
              "fabric byte conservation: injected != delivered + dropped");
}

void Fabric::forward(std::shared_ptr<std::vector<Hop>> route, std::size_t index,
                     std::uint32_t bytes, DeliveryFn on_complete,
                     sim::Time* first_tx_done) {
  const Hop& hop = (*route)[index];

  // A link that failed while the chunk was already in flight swallows it.
  // (Injection-time failures are handled by rerouting in inject().)
  if (!downed_.empty() && !link_up(hop)) {
    if (first_tx_done != nullptr) *first_tx_done = engine_.now();
    finish(on_complete, DeliveryStatus::link_down, bytes);
    return;
  }

  DirectedLink& link = link_for(hop);

  const sim::Time ser = serialization_time(bytes);
  // Entering a switch costs its pipeline latency; the endpoint hop does not.
  const sim::Time entry_latency =
      hop.kind == Hop::Kind::switch_to_node ? sim::Time::zero() : cfg_.switch_latency;

  const sim::Time tx_done = link.tx.acquire(ser);
  if (first_tx_done != nullptr) *first_tx_done = tx_done;

  // Per-hop packet span: occupancy of this link's transmitter (queueing
  // excluded — the span covers serialization, which is what utilization
  // means; a gap between spans of consecutive hops is switch/wire latency).
  ICSIM_TRACE_WITH(engine_, tr) {
    if (link.trace_id == 0) {
      link.trace_id = tr.register_component(trace::Category::link,
                                            link.tx.name());
    }
    tr.span(trace::Category::link, link.trace_id, "pkt",
            tx_done - ser, tx_done);
  }

  // Link-level CRC: the packet train is corrupted in transit with the
  // link's BER.  The receiving switch/NIC detects and discards it at the
  // far end of the wire — no RNG draw ever happens on clean links.
  if (hooks_ != nullptr && link.ber > 0.0 &&
      hooks_->draw_corruption(link.ber, wire_bytes(bytes))) {
    ++link.corrupted;
    ICSIM_TRACE_WITH(engine_, tr) {
      tr.instant(trace::Category::link, link.trace_id, "crc_drop",
                 tx_done);
    }
    engine_.post_at(tx_done + cfg_.wire_latency,
                    [this, bytes, on_complete = std::move(on_complete)]() mutable {
                      finish(on_complete, DeliveryStatus::corrupted, bytes);
                    });
    return;
  }
  ++link.forwarded;

  const sim::Time arrival = tx_done + cfg_.wire_latency + entry_latency;
  const bool last = index + 1 == route->size();
  engine_.post_at(
      arrival, [this, route = std::move(route), index, bytes,
                on_complete = std::move(on_complete), last]() mutable {
        if (last) {
          finish(on_complete, DeliveryStatus::delivered, bytes);
        } else {
          forward(std::move(route), index + 1, bytes, std::move(on_complete),
                  nullptr);
        }
      });
}

sim::Time Fabric::inject(int src, int dst, std::uint32_t bytes,
                         DeliveryFn on_complete) {
  assert(src != dst && "Fabric::inject: local sends bypass the fabric");
  assert(src >= 0 && src < num_nodes_ && dst >= 0 && dst < num_nodes_);
  ++chunks_;
  ++in_flight_;
  bytes_injected_ += bytes;
  std::vector<Hop> path = topo_.route(src, dst);
  if (!downed_.empty()) {
    bool blocked = false;
    for (const Hop& hop : path) {
      if (!link_up(hop)) {
        blocked = true;
        break;
      }
    }
    if (blocked) {
      path = topo_.route_avoiding(
          src, dst, [this](const Hop& hop) { return !link_up(hop); });
      if (path.empty()) {
        // Fabric partitioned (endpoint cable down, or every climb blocked):
        // nothing a switch can do — the chunk is lost at the source port.
        engine_.post_in(sim::Time::zero(),
                        [this, bytes,
                         on_complete = std::move(on_complete)]() mutable {
                          ++no_route_drops_;
                          finish(on_complete, DeliveryStatus::link_down, bytes);
                        });
        return engine_.now();
      }
      ++rerouted_;
    }
  }
  auto route = std::make_shared<std::vector<Hop>>(std::move(path));
  sim::Time tx_done = sim::Time::zero();
  forward(std::move(route), 0, bytes, std::move(on_complete), &tx_done);
  return tx_done;
}

sim::Time Fabric::max_link_busy_time() const {
  sim::Time best = sim::Time::zero();
  for (const auto& [key, link] : links_) {
    (void)key;
    if (link->tx.busy_time() > best) best = link->tx.busy_time();
  }
  return best;
}

void Fabric::publish_metrics(trace::MetricsRegistry& m,
                             sim::Time elapsed) const {
  m.counter("net.chunks_sent") = chunks_;
  m.counter("net.chunks_delivered") = delivered_;
  m.counter("net.chunks_corrupted") = corrupted_;
  m.counter("net.chunks_dropped_link_down") = down_drops_;
  m.counter("net.chunks_rerouted") = rerouted_;
  m.counter("net.chunks_no_route") = no_route_drops_;
  m.counter("net.chunks_in_flight") = in_flight_;
  m.counter("net.links_used") = links_.size();
  m.counter("net.links_down") = downed_.size();
  auto& util = m.stat("net.link_utilization");
  auto& busy = m.stat("net.link_busy_us");
  const double span_s = elapsed.to_seconds();
  for (const auto& [key, link] : links_) {
    (void)key;
    busy.add(link->tx.busy_time().to_us());
    if (span_s > 0.0) {
      util.add(link->tx.busy_time().to_seconds() / span_s);
    }
  }
  if (corrupted_ > 0) {
    auto& per_link = m.stat("net.link_corrupted_chunks");
    for (const auto& [key, link] : links_) {
      (void)key;
      if (link->corrupted > 0) {
        per_link.add(static_cast<double>(link->corrupted));
      }
    }
  }
}

}  // namespace icsim::net
