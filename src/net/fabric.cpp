#include "net/fabric.hpp"

#include <cassert>
#include <stdexcept>
#include <utility>

#include "trace/trace.hpp"

namespace icsim::net {

Fabric::Fabric(sim::Engine& engine, const FabricConfig& config, int num_nodes)
    : engine_(engine),
      cfg_(config),
      topo_(config.radix_down, config.levels),
      num_nodes_(num_nodes) {
  if (num_nodes > topo_.capacity()) {
    throw std::invalid_argument("Fabric: more nodes than the tree can attach");
  }
}

sim::Time Fabric::serialization_time(std::uint32_t bytes) const {
  const std::uint64_t packets =
      bytes == 0 ? 1 : (bytes + cfg_.mtu_bytes - 1) / cfg_.mtu_bytes;
  const std::uint64_t wire_bytes =
      static_cast<std::uint64_t>(bytes) + packets * cfg_.header_bytes;
  return cfg_.link_bandwidth.transfer_time(wire_bytes);
}

std::uint64_t Fabric::key_of(const Hop& hop) const {
  switch (hop.kind) {
    case Hop::Kind::node_to_switch:
      return (1ull << 63) | static_cast<std::uint64_t>(hop.node);
    case Hop::Kind::switch_to_node:
      return (1ull << 63) | (1ull << 62) | static_cast<std::uint64_t>(hop.node);
    case Hop::Kind::switch_to_switch:
      return (topo_.switch_id(hop.from) << 31) | topo_.switch_id(hop.to);
  }
  return 0;  // unreachable
}

std::string Fabric::link_name(const Hop& hop) const {
  switch (hop.kind) {
    case Hop::Kind::node_to_switch:
      return "node" + std::to_string(hop.node) + "->sw";
    case Hop::Kind::switch_to_node:
      return "sw->node" + std::to_string(hop.node);
    case Hop::Kind::switch_to_switch:
      return "sw" + std::to_string(topo_.switch_id(hop.from)) + "->sw" +
             std::to_string(topo_.switch_id(hop.to));
  }
  return "link";
}

Fabric::DirectedLink& Fabric::link_for(const Hop& hop) {
  const std::uint64_t key = key_of(hop);
  auto it = links_.find(key);
  if (it == links_.end()) {
    it = links_.emplace(key,
                        std::make_unique<DirectedLink>(engine_, link_name(hop)))
             .first;
  }
  return *it->second;
}

void Fabric::forward(std::shared_ptr<std::vector<Hop>> route, std::size_t index,
                     std::uint32_t bytes, std::function<void()> on_delivered,
                     sim::Time* first_tx_done) {
  const Hop& hop = (*route)[index];
  DirectedLink& link = link_for(hop);

  const sim::Time ser = serialization_time(bytes);
  // Entering a switch costs its pipeline latency; the endpoint hop does not.
  const sim::Time entry_latency =
      hop.kind == Hop::Kind::switch_to_node ? sim::Time::zero() : cfg_.switch_latency;

  const sim::Time tx_done = link.tx.acquire(ser);
  if (first_tx_done != nullptr) *first_tx_done = tx_done;

  // Per-hop packet span: occupancy of this link's transmitter (queueing
  // excluded — the span covers serialization, which is what utilization
  // means; a gap between spans of consecutive hops is switch/wire latency).
  ICSIM_TRACE_WITH(engine_, tr) {
    if (link.trace_id == 0) {
      link.trace_id = tr.register_component(trace::Category::link,
                                            link.tx.name());
    }
    tr.span(trace::Category::link, link.trace_id, "pkt",
            (tx_done - ser).picoseconds(), tx_done.picoseconds());
  }

  const sim::Time arrival = tx_done + cfg_.wire_latency + entry_latency;
  const bool last = index + 1 == route->size();
  engine_.post_at(
      arrival, [this, route = std::move(route), index, bytes,
                on_delivered = std::move(on_delivered), last]() mutable {
        if (last) {
          if (on_delivered) on_delivered();
        } else {
          forward(std::move(route), index + 1, bytes, std::move(on_delivered),
                  nullptr);
        }
      });
}

sim::Time Fabric::inject(int src, int dst, std::uint32_t bytes,
                         std::function<void()> on_delivered) {
  assert(src != dst && "Fabric::inject: local sends bypass the fabric");
  assert(src >= 0 && src < num_nodes_ && dst >= 0 && dst < num_nodes_);
  ++chunks_;
  auto route = std::make_shared<std::vector<Hop>>(topo_.route(src, dst));
  sim::Time tx_done = sim::Time::zero();
  forward(std::move(route), 0, bytes, std::move(on_delivered), &tx_done);
  return tx_done;
}

sim::Time Fabric::max_link_busy_time() const {
  sim::Time best = sim::Time::zero();
  for (const auto& [key, link] : links_) {
    (void)key;
    if (link->tx.busy_time() > best) best = link->tx.busy_time();
  }
  return best;
}

void Fabric::publish_metrics(trace::MetricsRegistry& m,
                             sim::Time elapsed) const {
  m.counter("net.chunks_sent") = chunks_;
  m.counter("net.links_used") = links_.size();
  auto& util = m.stat("net.link_utilization");
  auto& busy = m.stat("net.link_busy_us");
  const double span_s = elapsed.to_seconds();
  for (const auto& [key, link] : links_) {
    (void)key;
    busy.add(link->tx.busy_time().to_us());
    if (span_s > 0.0) {
      util.add(link->tx.busy_time().to_seconds() / span_s);
    }
  }
}

}  // namespace icsim::net
