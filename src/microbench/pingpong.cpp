#include "microbench/pingpong.hpp"

#include <algorithm>
#include <cstring>
#include <stdexcept>

namespace icsim::microbench {

std::vector<std::size_t> pallas_sizes(std::size_t max_bytes) {
  std::vector<std::size_t> sizes{0};
  for (std::size_t s = 1; s <= max_bytes; s *= 2) sizes.push_back(s);
  return sizes;
}

std::vector<PingPongPoint> run_pingpong(const core::ClusterConfig& config,
                                        const PingPongOptions& options) {
  if (config.nodes * config.ppn < 2) {
    throw std::invalid_argument("run_pingpong: need at least 2 ranks");
  }
  core::Cluster cluster(config);
  std::vector<PingPongPoint> results;

  cluster.run([&](mpi::Mpi& mpi) {
    if (mpi.rank() > 1) return;  // extra ranks idle
    const int peer = 1 - mpi.rank();
    constexpr int kTag = 7;
    // Distinct send/receive buffers, as the Pallas benchmark allocates: at
    // 4 MB the pair of pinned application buffers overflows the MVAPICH
    // registration cache, which is the Figure 1(b) bandwidth collapse.
    const std::size_t cap = options.sizes.empty()
                                ? 1
                                : *std::max_element(options.sizes.begin(),
                                                    options.sizes.end()) + 1;
    std::vector<std::byte> sbuf(cap), rbuf(cap);
    // The pair self-synchronizes: warmup exchanges align the two ranks
    // before the timed region, so no global barrier is needed.
    for (const std::size_t bytes : options.sizes) {
      double t0 = 0.0;
      for (int i = -options.warmup; i < options.repetitions; ++i) {
        if (i == 0) t0 = mpi.wtime();
        if (mpi.rank() == 0) {
          mpi.send(sbuf.data(), bytes, peer, kTag);
          mpi.recv(rbuf.data(), rbuf.size(), peer, kTag);
        } else {
          mpi.recv(rbuf.data(), rbuf.size(), peer, kTag);
          mpi.send(sbuf.data(), bytes, peer, kTag);
        }
      }
      if (mpi.rank() == 0) {
        const double elapsed = mpi.wtime() - t0;
        const double one_way = elapsed / (2.0 * options.repetitions);
        PingPongPoint p;
        p.bytes = bytes;
        p.latency_us = one_way * 1e6;
        p.bandwidth_mbs =
            one_way > 0 ? static_cast<double>(bytes) / one_way / 1e6 : 0.0;
        results.push_back(p);
      }
    }
  });
  if (options.event_digest != nullptr) {
    *options.event_digest = cluster.stats().event_digest;
  }
  if (options.stats != nullptr) *options.stats = cluster.stats();
  return results;
}

std::vector<StreamingPoint> run_streaming(const core::ClusterConfig& config,
                                          const StreamingOptions& options) {
  if (config.nodes * config.ppn < 2) {
    throw std::invalid_argument("run_streaming: need at least 2 ranks");
  }
  core::Cluster cluster(config);
  std::vector<StreamingPoint> results;

  cluster.run([&](mpi::Mpi& mpi) {
    constexpr int kTag = 9;
    constexpr int kAckTag = 10;
    if (mpi.rank() > 1) return;
    const int peer = 1 - mpi.rank();
    std::vector<std::byte> buf(options.sizes.empty()
                                   ? 1
                                   : *std::max_element(options.sizes.begin(),
                                                       options.sizes.end()) + 1);
    std::vector<mpi::Request> reqs(static_cast<std::size_t>(options.window));
    char ack = 0;

    for (const std::size_t bytes : options.sizes) {
      double t0 = 0.0;
      for (int b = -options.warmup_batches; b < options.batches; ++b) {
        if (b == 0) t0 = mpi.wtime();
        if (mpi.rank() == 0) {
          for (int w = 0; w < options.window; ++w) {
            reqs[static_cast<std::size_t>(w)] =
                mpi.isend(buf.data(), bytes, peer, kTag);
          }
          mpi.waitall(reqs);
          mpi.recv(&ack, 1, peer, kAckTag);
        } else {
          for (int w = 0; w < options.window; ++w) {
            reqs[static_cast<std::size_t>(w)] =
                mpi.irecv(buf.data(), buf.size(), peer, kTag);
          }
          mpi.waitall(reqs);
          mpi.send(&ack, 1, peer, kAckTag);
        }
      }
      if (mpi.rank() == 0) {
        const double elapsed = mpi.wtime() - t0;
        const double total_msgs =
            static_cast<double>(options.batches) * options.window;
        StreamingPoint p;
        p.bytes = bytes;
        p.msg_rate_per_sec = total_msgs / elapsed;
        p.bandwidth_mbs = total_msgs * static_cast<double>(bytes) / elapsed / 1e6;
        results.push_back(p);
      }
    }
  });
  if (options.stats != nullptr) *options.stats = cluster.stats();
  return results;
}

}  // namespace icsim::microbench
