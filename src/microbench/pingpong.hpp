#pragma once
// Ping-pong and streaming micro-benchmarks (paper Section 2.1).
//
// Ping-pong is the Pallas MPI Benchmarks method: two ranks bounce one
// message; latency = round-trip / 2 averaged over many exchanges.
// Streaming is the non-blocking pattern of Liu et al. (IEEE Micro 24(1)):
// the receiver pre-posts a window of receives, the sender fires the whole
// window back-to-back, one ack closes the batch — this measures the
// ability to fill the message pipeline, which ping-pong hides.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/cluster.hpp"

namespace icsim::microbench {

struct PingPongPoint {
  std::size_t bytes = 0;
  double latency_us = 0.0;    ///< one-way
  double bandwidth_mbs = 0.0; ///< bytes / one-way time
};

struct PingPongOptions {
  std::vector<std::size_t> sizes;
  int repetitions = 100;
  int warmup = 10;
  /// When non-null, receives the run's RunStats::event_digest — the
  /// determinism fingerprint benches print so reruns can be diffed.
  std::uint64_t* event_digest = nullptr;
  /// When non-null, receives the full RunStats of the finished cluster
  /// (event count + digest; sweep scenarios fold these into PointResult).
  core::Cluster::RunStats* stats = nullptr;
};

/// Standard Pallas-style size ladder 0,1,2,...,max_bytes (powers of two).
[[nodiscard]] std::vector<std::size_t> pallas_sizes(std::size_t max_bytes);

/// Runs on ranks 0 and 1 of a fresh cluster built from `config`.
[[nodiscard]] std::vector<PingPongPoint> run_pingpong(
    const core::ClusterConfig& config, const PingPongOptions& options);

struct StreamingPoint {
  std::size_t bytes = 0;
  double bandwidth_mbs = 0.0;
  double msg_rate_per_sec = 0.0;
};

struct StreamingOptions {
  std::vector<std::size_t> sizes;
  int window = 64;   ///< receives pre-posted / sends in flight per batch
  int batches = 20;
  int warmup_batches = 2;
  /// When non-null, receives the full RunStats of the finished cluster.
  core::Cluster::RunStats* stats = nullptr;
};

[[nodiscard]] std::vector<StreamingPoint> run_streaming(
    const core::ClusterConfig& config, const StreamingOptions& options);

}  // namespace icsim::microbench
