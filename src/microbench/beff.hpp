#pragma once
// Effective Bandwidth (b_eff) benchmark (paper Section 2.1, refs [1, 21]).
//
// b_eff measures the aggregate communication bandwidth of the whole system
// rather than a single link.  Following the published benchmark design:
//   * 21 message lengths: 1, 2, 4, ..., 4096 bytes (13 geometric values)
//     and Lmax/128 ... Lmax in powers of two (8 values), Lmax = 1 MB;
//   * a set of communication patterns: ring orderings in 1-3 dimensions
//     plus randomly permuted rings;
//   * for each pattern and length, every process exchanges with its two
//     ring neighbours (MPI_Sendrecv method);
//   * per-pattern result is the *logarithmic* average over lengths of the
//     aggregate bandwidth — which is why b_eff is dominated by short
//     messages (the paper stresses this when reading Figure 1(d));
//   * b_eff is the arithmetic mean over patterns.
//
// Simplification vs the original: the original also tries Alltoallv and
// non-blocking methods and keeps the best; our transports' Sendrecv is the
// best method for both networks, so only it is used (noted in
// EXPERIMENTS.md).

#include <cstddef>
#include <vector>

#include "core/cluster.hpp"

namespace icsim::microbench {

struct BeffOptions {
  std::size_t lmax = 1 << 20;
  int repetitions = 3;
  int random_patterns = 2;
  std::uint64_t seed = 99;
  /// When non-null, receives the full RunStats of the finished cluster.
  core::Cluster::RunStats* stats = nullptr;
};

struct BeffResult {
  double beff_mbs = 0.0;            ///< aggregate b_eff of the system
  double beff_per_process_mbs = 0.0;
  std::vector<double> per_pattern_mbs;
  std::vector<std::size_t> lengths;
};

[[nodiscard]] std::vector<std::size_t> beff_lengths(std::size_t lmax);

[[nodiscard]] BeffResult run_beff(const core::ClusterConfig& config,
                                  const BeffOptions& options);

}  // namespace icsim::microbench
