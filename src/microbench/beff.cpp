#include "microbench/beff.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "sim/rng.hpp"

namespace icsim::microbench {

std::vector<std::size_t> beff_lengths(std::size_t lmax) {
  std::vector<std::size_t> lengths;
  for (std::size_t s = 1; s <= 4096; s *= 2) lengths.push_back(s);  // 13
  for (int d = 128; d >= 1; d /= 2) lengths.push_back(lmax / static_cast<std::size_t>(d));
  return lengths;  // 13 + 8 = 21
}

namespace {

/// Ring orderings: each pattern is a permutation `order` of the ranks; each
/// process exchanges with its successor and predecessor along the ring.
std::vector<std::vector<int>> make_patterns(int nprocs, int random_patterns,
                                            std::uint64_t seed) {
  std::vector<std::vector<int>> patterns;

  // 1-D ring: natural order.
  std::vector<int> natural(static_cast<std::size_t>(nprocs));
  std::iota(natural.begin(), natural.end(), 0);
  patterns.push_back(natural);

  // 2-D and 3-D rings: orderings that hop by row/plane strides, exercising
  // longer fabric routes (only meaningful when the grid is nontrivial).
  auto strided = [&](int stride) {
    std::vector<int> order;
    order.reserve(static_cast<std::size_t>(nprocs));
    std::vector<bool> used(static_cast<std::size_t>(nprocs), false);
    int start = 0;
    while (static_cast<int>(order.size()) < nprocs) {
      int cur = start;
      while (!used[static_cast<std::size_t>(cur)]) {
        used[static_cast<std::size_t>(cur)] = true;
        order.push_back(cur);
        cur = (cur + stride) % nprocs;
      }
      while (start < nprocs && used[static_cast<std::size_t>(start)]) ++start;
      if (start >= nprocs) break;
    }
    return order;
  };
  if (nprocs >= 4) {
    const int row = std::max(2, static_cast<int>(std::sqrt(nprocs)));
    patterns.push_back(strided(row));
  }
  if (nprocs >= 8) {
    const int plane = std::max(2, static_cast<int>(std::cbrt(nprocs)));
    patterns.push_back(strided(plane * plane));
  }

  sim::Rng rng(seed);
  for (int p = 0; p < random_patterns; ++p) {
    std::vector<int> perm = natural;
    rng.shuffle(perm);
    patterns.push_back(perm);
  }
  return patterns;
}

}  // namespace

BeffResult run_beff(const core::ClusterConfig& config,
                    const BeffOptions& options) {
  core::Cluster cluster(config);
  const int nprocs = cluster.ranks();
  const auto lengths = beff_lengths(options.lmax);
  const auto patterns = make_patterns(nprocs, options.random_patterns,
                                      options.seed);

  // position_in_pattern[p][rank] -> index, to find ring neighbours.
  std::vector<std::vector<int>> pos(patterns.size(),
                                    std::vector<int>(static_cast<std::size_t>(nprocs)));
  for (std::size_t p = 0; p < patterns.size(); ++p) {
    for (int i = 0; i < nprocs; ++i) {
      pos[p][static_cast<std::size_t>(patterns[p][static_cast<std::size_t>(i)])] = i;
    }
  }

  // elapsed[p][l] measured by rank 0 (barrier-synchronized).
  std::vector<std::vector<double>> elapsed(
      patterns.size(), std::vector<double>(lengths.size(), 0.0));

  cluster.run([&](mpi::Mpi& mpi) {
    std::vector<std::byte> sbuf(options.lmax), rbuf(options.lmax);
    for (std::size_t p = 0; p < patterns.size(); ++p) {
      const int me = pos[p][static_cast<std::size_t>(mpi.rank())];
      const int right = patterns[p][static_cast<std::size_t>((me + 1) % nprocs)];
      const int left =
          patterns[p][static_cast<std::size_t>((me - 1 + nprocs) % nprocs)];
      for (std::size_t l = 0; l < lengths.size(); ++l) {
        const std::size_t bytes = lengths[l];
        mpi.barrier();
        const double t0 = mpi.wtime();
        for (int r = 0; r < options.repetitions; ++r) {
          // Exchange with both neighbours, as the b_eff rings do.
          mpi.sendrecv(sbuf.data(), bytes, right, 21, rbuf.data(), rbuf.size(),
                       left, 21);
          mpi.sendrecv(sbuf.data(), bytes, left, 22, rbuf.data(), rbuf.size(),
                       right, 22);
        }
        mpi.barrier();
        if (mpi.rank() == 0) elapsed[p][l] = mpi.wtime() - t0;
      }
    }
  });

  BeffResult result;
  result.lengths = lengths;
  for (std::size_t p = 0; p < patterns.size(); ++p) {
    double log_sum = 0.0;
    for (std::size_t l = 0; l < lengths.size(); ++l) {
      // Aggregate bandwidth: every process moved 2 messages per rep in each
      // direction accounting: 2 sendrecvs = 2 sends per process per rep.
      const double total_bytes = 2.0 * options.repetitions *
                                 static_cast<double>(nprocs) *
                                 static_cast<double>(lengths[l]);
      const double bw = total_bytes / elapsed[p][l] / 1e6;  // MB/s
      log_sum += std::log(bw);
    }
    result.per_pattern_mbs.push_back(
        std::exp(log_sum / static_cast<double>(lengths.size())));
  }
  result.beff_mbs =
      std::accumulate(result.per_pattern_mbs.begin(),
                      result.per_pattern_mbs.end(), 0.0) /
      static_cast<double>(result.per_pattern_mbs.size());
  result.beff_per_process_mbs = result.beff_mbs / nprocs;
  if (options.stats != nullptr) *options.stats = cluster.stats();
  return result;
}

}  // namespace icsim::microbench
