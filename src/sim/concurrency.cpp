#include "sim/concurrency.hpp"

#include <atomic>
#include <thread>

namespace icsim::sim {

namespace {
// Host scheduling state, never model-visible (see header).  An atomic is
// the right discipline: the sweep pool writes it from the main thread while
// worker threads read it when a scenario builds a parallel engine.
std::atomic<int> g_external_workers{1};
}  // namespace

void set_external_workers(int workers) noexcept {
  g_external_workers.store(workers < 1 ? 1 : workers,
                           std::memory_order_relaxed);
}

int external_workers() noexcept {
  return g_external_workers.load(std::memory_order_relaxed);
}

int clamp_intra_run_threads(int requested) noexcept {
  if (requested < 1) requested = 1;
  const int external = external_workers();
  if (external <= 1) return requested;
  int hw = static_cast<int>(std::thread::hardware_concurrency());
  if (hw < 1) hw = 1;
  int grant = hw / external;
  if (grant < 1) grant = 1;
  return requested < grant ? requested : grant;
}

}  // namespace icsim::sim
