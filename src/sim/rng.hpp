#pragma once
// Deterministic random number generation.
//
// Every stochastic choice in the simulator (random-ring orderings in b_eff,
// initial particle velocities, NPB matrix generation, ...) draws from an
// explicitly seeded Rng so that a given seed reproduces a bit-identical run.

#include <cstdint>
#include <random>
#include <vector>

namespace icsim::sim {

/// Thin deterministic wrapper over std::mt19937_64 (whose output sequence is
/// specified by the standard, so runs reproduce across platforms).
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : gen_(seed) {}

  /// Uniform integer in [lo, hi] (inclusive).
  [[nodiscard]] std::uint64_t uniform_u64(std::uint64_t lo, std::uint64_t hi) {
    return std::uniform_int_distribution<std::uint64_t>(lo, hi)(gen_);
  }

  [[nodiscard]] int uniform_int(int lo, int hi) {
    return std::uniform_int_distribution<int>(lo, hi)(gen_);
  }

  /// Uniform real in [lo, hi).
  [[nodiscard]] double uniform_real(double lo = 0.0, double hi = 1.0) {
    return std::uniform_real_distribution<double>(lo, hi)(gen_);
  }

  [[nodiscard]] double normal(double mean = 0.0, double stddev = 1.0) {
    return std::normal_distribution<double>(mean, stddev)(gen_);
  }

  template <typename T>
  void shuffle(std::vector<T>& v) {
    std::shuffle(v.begin(), v.end(), gen_);
  }

  /// Derive an independent child stream (e.g. one per rank) from this one.
  [[nodiscard]] Rng fork() { return Rng(gen_()); }

  [[nodiscard]] std::mt19937_64& engine() { return gen_; }

 private:
  std::mt19937_64 gen_;
};

}  // namespace icsim::sim
