#pragma once
// Deterministic random number generation.
//
// Every stochastic choice in the simulator (random-ring orderings in b_eff,
// initial particle velocities, NPB matrix generation, ...) draws from an
// explicitly seeded Rng so that a given seed reproduces a bit-identical run.

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <random>
#include <vector>

namespace icsim::sim {

/// Thin deterministic wrapper over std::mt19937_64 (whose output sequence is
/// specified by the standard, so runs reproduce across platforms).
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : gen_(seed) {}

  /// Uniform integer in [lo, hi] (inclusive).
  [[nodiscard]] std::uint64_t uniform_u64(std::uint64_t lo, std::uint64_t hi) {
    return std::uniform_int_distribution<std::uint64_t>(lo, hi)(gen_);
  }

  [[nodiscard]] int uniform_int(int lo, int hi) {
    return std::uniform_int_distribution<int>(lo, hi)(gen_);
  }

  /// Uniform real in [lo, hi).
  [[nodiscard]] double uniform_real(double lo = 0.0, double hi = 1.0) {
    return std::uniform_real_distribution<double>(lo, hi)(gen_);
  }

  [[nodiscard]] double normal(double mean = 0.0, double stddev = 1.0) {
    return std::normal_distribution<double>(mean, stddev)(gen_);
  }

  /// Uniform double in [0, 1) built from the top 53 bits of one raw
  /// mt19937_64 draw.  Unlike the std:: distributions above (whose
  /// algorithms are implementation-defined), this mapping is pinned here,
  /// so streams that matter for the event digest — arrival schedules,
  /// destination draws — reproduce bit-identically across platforms.
  [[nodiscard]] double canonical() {
    return static_cast<double>(gen_() >> 11) * 0x1.0p-53;
  }

  /// Uniform index in [0, n), pinned to canonical() (and therefore to the
  /// raw mt19937_64 stream) for the same cross-platform reason.
  [[nodiscard]] std::size_t pick(std::size_t n) {
    assert(n > 0);
    auto i = static_cast<std::size_t>(canonical() * static_cast<double>(n));
    return i < n ? i : n - 1;
  }

  /// Exponential interarrival sample with the given rate (`rate` events per
  /// unit time; the mean is 1/rate).  Inverse-CDF on canonical(), so the
  /// stream is pinned to the mt19937_64 output, not a library algorithm.
  [[nodiscard]] double exponential(double rate) {
    assert(rate > 0.0);
    // canonical() is in [0, 1), so the log1p argument stays in (-1, 0] and
    // the sample in [0, inf) with no log(0) edge.
    return -std::log1p(-canonical()) / rate;
  }

  template <typename T>
  void shuffle(std::vector<T>& v) {
    std::shuffle(v.begin(), v.end(), gen_);
  }

  /// Derive an independent child stream (e.g. one per rank) from this one.
  [[nodiscard]] Rng fork() { return Rng(gen_()); }

  [[nodiscard]] std::mt19937_64& engine() { return gen_; }

 private:
  std::mt19937_64 gen_;
};

/// Two-state Markov-modulated Poisson process: arrivals are Poisson at
/// `rate0` in the calm state and `rate1` in the burst state, with
/// exponentially distributed state dwell times.  The classic bursty-arrival
/// model (used by the open-loop traffic layer, src/traffic/): time-averaged
/// rate is (dwell0*rate0 + dwell1*rate1) / (dwell0 + dwell1), but arrivals
/// cluster while the process sits in the burst state.
class Mmpp {
 public:
  struct Config {
    double rate0 = 1.0;        ///< calm-state arrival rate
    double rate1 = 4.0;        ///< burst-state arrival rate
    double mean_dwell0 = 1.0;  ///< mean time per calm-state visit
    double mean_dwell1 = 1.0;  ///< mean time per burst-state visit
  };

  explicit Mmpp(const Config& cfg) : cfg_(cfg) {
    assert(cfg.rate0 >= 0.0 && cfg.rate1 >= 0.0 &&
           (cfg.rate0 > 0.0 || cfg.rate1 > 0.0));
    assert(cfg.mean_dwell0 > 0.0 && cfg.mean_dwell1 > 0.0);
  }

  /// MMPP with the given time-averaged rate, burst-state rate multiplier
  /// (rate1 = burstiness * rate0) and fraction of time spent bursting.
  [[nodiscard]] static Mmpp from_average(double avg_rate, double burstiness,
                                         double burst_frac,
                                         double mean_burst_dwell) {
    assert(avg_rate > 0.0 && burstiness >= 1.0);
    assert(burst_frac > 0.0 && burst_frac < 1.0 && mean_burst_dwell > 0.0);
    Config c;
    // avg = (1-f)*rate0 + f*rate1 with rate1 = b*rate0.
    c.rate0 = avg_rate / (1.0 + burst_frac * (burstiness - 1.0));
    c.rate1 = burstiness * c.rate0;
    c.mean_dwell1 = mean_burst_dwell;
    // Dwell ratio fixes the stationary state split: f = d1 / (d0 + d1).
    c.mean_dwell0 = mean_burst_dwell * (1.0 - burst_frac) / burst_frac;
    return Mmpp(c);
  }

  [[nodiscard]] const Config& config() const { return cfg_; }
  [[nodiscard]] int state() const { return state_; }

  /// Time from the previous arrival to the next one.  Competing
  /// exponentials: within the current state the next arrival races the next
  /// state flip; a flip wins, time advances and the race reruns at the new
  /// rate.  All draws come from `rng`, so the walk is seed-deterministic.
  [[nodiscard]] double next_interarrival(Rng& rng) {
    double gap = 0.0;
    for (;;) {
      const double rate = state_ == 0 ? cfg_.rate0 : cfg_.rate1;
      const double dwell = state_ == 0 ? cfg_.mean_dwell0 : cfg_.mean_dwell1;
      const double to_flip = rng.exponential(1.0 / dwell);
      if (rate <= 0.0) {  // silent state: only the flip can happen
        gap += to_flip;
        state_ = 1 - state_;
        continue;
      }
      const double to_arrival = rng.exponential(rate);
      if (to_arrival <= to_flip) return gap + to_arrival;
      gap += to_flip;
      state_ = 1 - state_;
    }
  }

 private:
  Config cfg_;
  int state_ = 0;
};

}  // namespace icsim::sim
