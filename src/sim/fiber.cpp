#include "sim/fiber.hpp"

#include <sys/mman.h>
#include <unistd.h>

#include <cassert>
#include <cstdint>
#include <new>
#include <stdexcept>
#include <utility>

namespace icsim::sim {

namespace {
// thread_local, not a plain global: the sweep driver (src/driver) runs one
// independent simulation per worker thread, and each cluster's fibers are
// created, resumed and finished entirely on that thread.
thread_local Fiber* g_current = nullptr;

std::size_t page_size() {
  static const auto sz = static_cast<std::size_t>(::sysconf(_SC_PAGESIZE));
  return sz;
}

std::size_t round_up_pages(std::size_t bytes) {
  const std::size_t p = page_size();
  return (bytes + p - 1) / p * p;
}
}  // namespace

Fiber::Fiber(Fn fn, std::size_t stack_bytes) : fn_(std::move(fn)) {
  const std::size_t usable = round_up_pages(stack_bytes);
  stack_total_ = usable + page_size();  // +1 guard page at the low end
  stack_ = ::mmap(nullptr, stack_total_, PROT_READ | PROT_WRITE,
                  MAP_PRIVATE | MAP_ANONYMOUS | MAP_STACK, -1, 0);
  if (stack_ == MAP_FAILED) {
    stack_ = nullptr;
    throw std::bad_alloc();
  }
  if (::mprotect(stack_, page_size(), PROT_NONE) != 0) {
    ::munmap(stack_, stack_total_);
    stack_ = nullptr;
    throw std::runtime_error("Fiber: mprotect guard page failed");
  }

  if (::getcontext(&ctx_) != 0) {
    ::munmap(stack_, stack_total_);
    stack_ = nullptr;
    throw std::runtime_error("Fiber: getcontext failed");
  }
  ctx_.uc_stack.ss_sp = static_cast<char*>(stack_) + page_size();
  ctx_.uc_stack.ss_size = usable;
  ctx_.uc_link = &caller_ctx_;  // falling off the end returns to the resumer

  // The address only round-trips through makecontext's int-pair calling
  // convention back into a pointer; it never reaches model behavior.
  // icsim-lint: allow(host-state-leak)
  const auto self = reinterpret_cast<std::uintptr_t>(this);
  ::makecontext(&ctx_, reinterpret_cast<void (*)()>(&Fiber::trampoline), 2,
                static_cast<unsigned>(self >> 32),
                static_cast<unsigned>(self & 0xffffffffu));
}

Fiber::~Fiber() {
  // Destroying a suspended-but-unfinished fiber leaks whatever it holds on
  // its stack; models always run fibers to completion, so just release the
  // stack memory.
  if (stack_ != nullptr) {
    ::munmap(stack_, stack_total_);
  }
}

void Fiber::trampoline(unsigned hi, unsigned lo) {
  const auto self = (static_cast<std::uintptr_t>(hi) << 32) |
                    static_cast<std::uintptr_t>(lo);
  reinterpret_cast<Fiber*>(self)->body();
}

void Fiber::body() {
  try {
    fn_();
  } catch (...) {
    // Letting an exception unwind through makecontext is undefined
    // behaviour; park it and rethrow from resume() in the caller's context.
    pending_exception_ = std::current_exception();
  }
  finished_ = true;
  // uc_link switches back to caller_ctx_ when this function returns, but the
  // resume() bookkeeping below must run first; do the switch explicitly.
  Fiber* const self = this;
  g_current = nullptr;
  ::swapcontext(&self->ctx_, &self->caller_ctx_);
  assert(false && "resumed a finished fiber");
}

void Fiber::resume() {
  assert(!finished_ && "resume() on a finished fiber");
  assert(g_current != this && "resume() from inside the fiber itself");
  Fiber* const prev = g_current;
  g_current = this;
  started_ = true;
  ::swapcontext(&caller_ctx_, &ctx_);
  g_current = prev;
  if (pending_exception_) {
    auto ex = pending_exception_;
    pending_exception_ = nullptr;
    std::rethrow_exception(ex);
  }
}

void Fiber::yield() {
  Fiber* const self = g_current;
  assert(self != nullptr && "Fiber::yield() outside any fiber");
  g_current = nullptr;
  ::swapcontext(&self->ctx_, &self->caller_ctx_);
}

Fiber* Fiber::current() { return g_current; }

}  // namespace icsim::sim
