#include "sim/check.hpp"

#include <cstdio>
#include <cstdlib>

namespace icsim::sim::check {

namespace {

bool env_enabled() {
  const char* e = std::getenv("ICSIM_CHECK");
  return e != nullptr && *e != '\0' && !(e[0] == '0' && e[1] == '\0');
}

bool& state() {
  // Read once from the environment and only ever toggled by tests before
  // any engine runs; the sweep workers treat it as effectively const.
  // icsim-lint: allow(parallel-purity)
  static bool on = env_enabled();
  return on;
}

}  // namespace

bool enabled() noexcept { return state(); }

void set_enabled(bool on) noexcept { state() = on; }

void fail(const char* file, int line, const char* expr,
          const char* msg) noexcept {
  std::fprintf(stderr, "%s:%d: ICSIM_CHECK failed: %s (%s)\n", file, line,
               expr, msg);
  std::fflush(stderr);
  std::abort();
}

}  // namespace icsim::sim::check
