#pragma once
// Stackful user-level fibers.
//
// Each simulated MPI rank runs as a fiber, so application code is written in
// ordinary blocking style (MPI_Recv suspends the fiber; the discrete-event
// engine resumes it when the matching simulated transfer completes).  The
// whole simulation is single-threaded: exactly one fiber (or the main
// context) executes at any instant, which keeps runs deterministic.
//
// Implementation: POSIX ucontext with an mmap'd stack protected by a guard
// page, so a stack overflow in an application kernel faults instead of
// silently corrupting a neighbouring fiber.
//
// The "whole simulation" above means one Engine and its fibers.  Separate
// simulations may run on separate OS threads concurrently (the sweep
// driver does exactly that); the current-fiber pointer is thread-local, and
// a fiber must always be resumed on the thread that created it.

#include <cstddef>
#include <exception>
#include <functional>
#include <ucontext.h>

namespace icsim::sim {

class Fiber {
 public:
  using Fn = std::function<void()>;

  /// Create a suspended fiber that will run `fn` when first resumed.
  explicit Fiber(Fn fn, std::size_t stack_bytes = kDefaultStackBytes);
  ~Fiber();

  Fiber(const Fiber&) = delete;
  Fiber& operator=(const Fiber&) = delete;

  /// Switch from the current context into this fiber.  Returns when the
  /// fiber yields or finishes.  Must not be called on a finished fiber or
  /// from inside the fiber itself.  An exception that escapes the fiber's
  /// function is captured and rethrown here, in the resumer's context.
  void resume();

  /// Called from inside a fiber: suspend and return control to whoever
  /// called resume().  Undefined outside a fiber (asserts in debug).
  static void yield();

  /// The fiber currently executing, or nullptr when on the main context.
  [[nodiscard]] static Fiber* current();

  [[nodiscard]] bool finished() const { return finished_; }
  [[nodiscard]] bool running() const { return this == current(); }

  static constexpr std::size_t kDefaultStackBytes = 256 * 1024;

 private:
  static void trampoline(unsigned hi, unsigned lo);
  void body();

  Fn fn_;
  ucontext_t ctx_{};
  ucontext_t caller_ctx_{};
  void* stack_ = nullptr;
  std::size_t stack_total_ = 0;
  bool started_ = false;
  bool finished_ = false;
  std::exception_ptr pending_exception_;
};

}  // namespace icsim::sim
