#include "sim/time.hpp"

#include <cstdio>

namespace icsim::sim {

std::string Time::to_string() const {
  char buf[64];
  const double abs_ps = static_cast<double>(ps_ < 0 ? -ps_ : ps_);
  if (abs_ps >= 1e12) {
    std::snprintf(buf, sizeof buf, "%.6f s", to_seconds());
  } else if (abs_ps >= 1e9) {
    std::snprintf(buf, sizeof buf, "%.3f ms", to_ms());
  } else if (abs_ps >= 1e6) {
    std::snprintf(buf, sizeof buf, "%.3f us", to_us());
  } else {
    std::snprintf(buf, sizeof buf, "%.3f ns", to_ns());
  }
  return buf;
}

}  // namespace icsim::sim
