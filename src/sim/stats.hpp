#pragma once
// Streaming statistics accumulators used by benchmarks and instrumentation.

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

namespace icsim::sim {

/// Welford online mean/variance plus min/max.  O(1) memory.
class RunningStat {
 public:
  void add(double x) {
    ++n_;
    const double d = x - mean_;
    mean_ += d / static_cast<double>(n_);
    m2_ += d * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
    sum_ += x;
  }

  [[nodiscard]] std::uint64_t count() const { return n_; }
  [[nodiscard]] double mean() const { return n_ ? mean_ : 0.0; }
  [[nodiscard]] double sum() const { return sum_; }
  [[nodiscard]] double variance() const {
    // Welford's m2_ can land a few ulps below zero under catastrophic
    // cancellation (near-constant samples at large magnitude); clamping
    // keeps stddev() out of sqrt(-eps) = NaN territory.
    return n_ > 1 ? std::max(0.0, m2_) / static_cast<double>(n_ - 1) : 0.0;
  }
  [[nodiscard]] double stddev() const { return std::sqrt(variance()); }
  [[nodiscard]] double min() const { return n_ ? min_ : 0.0; }
  [[nodiscard]] double max() const { return n_ ? max_ : 0.0; }

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Fixed-bucket histogram over [lo, hi); out-of-range samples clamp to the
/// first/last bucket.  Used for per-message latency distributions.
///
/// Two bucket layouts:
///   * Scale::linear — equal-width buckets, the historical default.  Fine
///     for distributions whose spread is known a priori.
///   * Scale::log    — geometrically spaced buckets (requires lo > 0), so
///     relative resolution is constant across decades.  This is what tail
///     quantiles need: with linear buckets sized for the body, p999 of a
///     long-tailed latency distribution lands in one huge top bucket and
///     smears; log buckets keep p999 within a fixed relative error.
///
/// quantile() answers with the observation-clamped bucket upper edge, so
/// quantile(1.0) is exactly the largest sample seen and a tail quantile
/// never overshoots the data.
class Histogram {
 public:
  enum class Scale { linear, log };

  Histogram(double lo, double hi, std::size_t buckets,
            Scale scale = Scale::linear)
      : lo_(lo), hi_(hi), scale_(scale), counts_(buckets, 0) {
    if (scale_ == Scale::log) {
      // Log spacing needs a positive, non-degenerate range.
      lo_ = std::max(lo_, std::numeric_limits<double>::min());
      hi_ = std::max(hi_, lo_ * 2.0);
      log_ratio_ = std::log(hi_ / lo_);
    }
  }

  /// Geometrically spaced buckets over [lo, hi); `per_decade` buckets per
  /// factor of 10 (24/decade keeps any quantile within ~10% relative error).
  [[nodiscard]] static Histogram log_spaced(double lo, double hi,
                                            std::size_t per_decade = 24) {
    lo = std::max(lo, std::numeric_limits<double>::min());
    hi = std::max(hi, lo * 2.0);
    const double decades = std::log10(hi / lo);
    const auto buckets = static_cast<std::size_t>(
        std::ceil(decades * static_cast<double>(per_decade)));
    return {lo, hi, std::max<std::size_t>(buckets, 1), Scale::log};
  }

  void add(double x) {
    if (std::isnan(x)) {  // double->int64 cast of NaN is undefined
      ++nan_;
      return;
    }
    const double n = static_cast<double>(counts_.size());
    double f = 0.0;
    if (scale_ == Scale::linear) {
      f = (x - lo_) / (hi_ - lo_);
    } else if (x > lo_) {  // x <= lo clamps to the first bucket
      f = std::log(x / lo_) / log_ratio_;
    }
    auto i = static_cast<std::int64_t>(f * n);
    i = std::clamp<std::int64_t>(i, 0, static_cast<std::int64_t>(counts_.size()) - 1);
    ++counts_[static_cast<std::size_t>(i)];
    ++total_;
    min_seen_ = std::min(min_seen_, x);
    max_seen_ = std::max(max_seen_, x);
  }

  [[nodiscard]] std::uint64_t total() const { return total_; }
  /// NaN samples are not bucketable; they are dropped and counted here.
  [[nodiscard]] std::uint64_t nan_dropped() const { return nan_; }
  [[nodiscard]] const std::vector<std::uint64_t>& buckets() const { return counts_; }
  [[nodiscard]] double lo() const { return lo_; }
  [[nodiscard]] double hi() const { return hi_; }
  [[nodiscard]] Scale scale() const { return scale_; }
  /// Exact extrema of the samples (not bucket edges); 0 when empty.
  [[nodiscard]] double min_seen() const { return total_ ? min_seen_ : 0.0; }
  [[nodiscard]] double max_seen() const { return total_ ? max_seen_ : 0.0; }

  /// Upper edge of bucket i (edge 0 is lo(), edge buckets().size() is hi()).
  [[nodiscard]] double bucket_edge(std::size_t i) const {
    const double f =
        static_cast<double>(i) / static_cast<double>(counts_.size());
    if (scale_ == Scale::linear) return lo_ + (hi_ - lo_) * f;
    return lo_ * std::exp(log_ratio_ * f);
  }

  /// Value below which `q` (0..1) of the samples fall: the containing
  /// bucket's upper edge, clamped to the exact maximum observed so the far
  /// tail (q -> 1) is exact rather than a bucket-edge overestimate.  An
  /// empty histogram — or q so small that no bucket mass is required —
  /// answers lo(), not the first bucket's upper edge.
  [[nodiscard]] double quantile(double q) const {
    const auto target = static_cast<std::uint64_t>(q * static_cast<double>(total_));
    if (total_ == 0 || target == 0) return lo_;
    std::uint64_t seen = 0;
    for (std::size_t i = 0; i < counts_.size(); ++i) {
      seen += counts_[i];
      if (seen >= target) return std::min(bucket_edge(i + 1), max_seen_);
    }
    return std::min(hi_, max_seen_);
  }

  // SLO-grade shorthands.
  [[nodiscard]] double p50() const { return quantile(0.50); }
  [[nodiscard]] double p99() const { return quantile(0.99); }
  [[nodiscard]] double p999() const { return quantile(0.999); }

 private:
  double lo_;
  double hi_;
  Scale scale_;
  double log_ratio_ = 1.0;  ///< log(hi/lo), Scale::log only
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
  std::uint64_t nan_ = 0;
  double min_seen_ = std::numeric_limits<double>::infinity();
  double max_seen_ = -std::numeric_limits<double>::infinity();
};

}  // namespace icsim::sim
