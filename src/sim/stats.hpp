#pragma once
// Streaming statistics accumulators used by benchmarks and instrumentation.

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

namespace icsim::sim {

/// Welford online mean/variance plus min/max.  O(1) memory.
class RunningStat {
 public:
  void add(double x) {
    ++n_;
    const double d = x - mean_;
    mean_ += d / static_cast<double>(n_);
    m2_ += d * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
    sum_ += x;
  }

  [[nodiscard]] std::uint64_t count() const { return n_; }
  [[nodiscard]] double mean() const { return n_ ? mean_ : 0.0; }
  [[nodiscard]] double sum() const { return sum_; }
  [[nodiscard]] double variance() const {
    // Welford's m2_ can land a few ulps below zero under catastrophic
    // cancellation (near-constant samples at large magnitude); clamping
    // keeps stddev() out of sqrt(-eps) = NaN territory.
    return n_ > 1 ? std::max(0.0, m2_) / static_cast<double>(n_ - 1) : 0.0;
  }
  [[nodiscard]] double stddev() const { return std::sqrt(variance()); }
  [[nodiscard]] double min() const { return n_ ? min_ : 0.0; }
  [[nodiscard]] double max() const { return n_ ? max_ : 0.0; }

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Fixed-bucket histogram over [lo, hi); out-of-range samples clamp to the
/// first/last bucket.  Used for per-message latency distributions.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t buckets)
      : lo_(lo), hi_(hi), counts_(buckets, 0) {}

  void add(double x) {
    if (std::isnan(x)) {  // double->int64 cast of NaN is undefined
      ++nan_;
      return;
    }
    const double f = (x - lo_) / (hi_ - lo_);
    auto i = static_cast<std::int64_t>(f * static_cast<double>(counts_.size()));
    i = std::clamp<std::int64_t>(i, 0, static_cast<std::int64_t>(counts_.size()) - 1);
    ++counts_[static_cast<std::size_t>(i)];
    ++total_;
  }

  [[nodiscard]] std::uint64_t total() const { return total_; }
  /// NaN samples are not bucketable; they are dropped and counted here.
  [[nodiscard]] std::uint64_t nan_dropped() const { return nan_; }
  [[nodiscard]] const std::vector<std::uint64_t>& buckets() const { return counts_; }
  [[nodiscard]] double lo() const { return lo_; }
  [[nodiscard]] double hi() const { return hi_; }

  /// Value below which `q` (0..1) of the samples fall (bucket upper edge).
  /// An empty histogram — or q so small that no bucket mass is required —
  /// answers lo(), not the first bucket's upper edge.
  [[nodiscard]] double quantile(double q) const {
    const auto target = static_cast<std::uint64_t>(q * static_cast<double>(total_));
    if (total_ == 0 || target == 0) return lo_;
    std::uint64_t seen = 0;
    for (std::size_t i = 0; i < counts_.size(); ++i) {
      seen += counts_[i];
      if (seen >= target) {
        return lo_ + (hi_ - lo_) * static_cast<double>(i + 1) /
                         static_cast<double>(counts_.size());
      }
    }
    return hi_;
  }

 private:
  double lo_;
  double hi_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
  std::uint64_t nan_ = 0;
};

}  // namespace icsim::sim
